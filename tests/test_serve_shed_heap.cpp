// Regression tests for the O(log n) shed path: the heap-based victim
// selection must reproduce the original linear-scan semantics exactly —
// same SubmitResult per submit, same victims (observable through the
// FIFO pump order), and bit-identical shed_revenue — including under
// payment ties, where the younger request (higher seq) always loses.
#include <gtest/gtest.h>

#include <deque>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "helpers.hpp"
#include "serve/admission_controller.hpp"

namespace vnfr::serve {
namespace {

using vnfr::testing::make_request;
using vnfr::testing::small_instance;

std::string fresh_dir(const std::string& name) {
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

/// The pre-heap reference implementation of the overload guard: a plain
/// queue with a full linear scan per overflow, transcribed from the
/// original controller. Tracks only what shedding depends on.
struct ReferenceShedModel {
    struct Item {
        std::uint64_t seq;
        double payment;
    };
    std::size_t capacity;
    std::deque<Item> queue;
    std::uint64_t shed_count = 0;
    double shed_revenue = 0.0;
    std::vector<std::uint64_t> shed_seqs;

    SubmitResult submit(std::uint64_t seq, double payment) {
        if (queue.size() < capacity) {
            queue.push_back(Item{seq, payment});
            return SubmitResult::kQueued;
        }
        auto victim_it = queue.end();
        double victim_pay = payment;
        std::uint64_t victim_seq = seq;
        for (auto it = queue.begin(); it != queue.end(); ++it) {
            if (it->payment < victim_pay ||
                (it->payment == victim_pay && it->seq > victim_seq)) {
                victim_it = it;
                victim_pay = it->payment;
                victim_seq = it->seq;
            }
        }
        ++shed_count;
        shed_revenue += victim_pay;
        shed_seqs.push_back(victim_seq);
        if (victim_it == queue.end()) return SubmitResult::kShedIncoming;
        queue.erase(victim_it);
        queue.push_back(Item{seq, payment});
        return SubmitResult::kShedQueued;
    }

    std::vector<std::uint64_t> pump(std::size_t n) {
        std::vector<std::uint64_t> seqs;
        while (n-- > 0 && !queue.empty()) {
            seqs.push_back(queue.front().seq);
            queue.pop_front();
        }
        return seqs;
    }
};

/// Payments drawn from a tiny set so ties are the norm, not the
/// exception — the regime where victim tie-breaking matters most.
std::vector<workload::Request> tie_heavy_requests(std::size_t n,
                                                  std::uint64_t seed) {
    common::Rng rng(seed);
    std::vector<workload::Request> reqs;
    reqs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double payment = static_cast<double>(rng.uniform_int(1, 5));
        // Arrivals nondecreasing (instance validation requires it); the
        // payments are what the shed path keys on.
        const TimeSlot arrival = static_cast<TimeSlot>((i * 10) / n);
        reqs.push_back(make_request(static_cast<std::int64_t>(i),
                                    static_cast<std::int64_t>(i % 2), 0.95, arrival, 1,
                                    payment));
    }
    return reqs;
}

TEST(ServeShedHeap, MatchesTheLinearScanReferenceExactly) {
    const std::size_t n = 400;
    const core::Instance inst =
        small_instance({0.98, 0.99}, 50.0, 10, tie_heavy_requests(n, 0x7EAF));
    ServeConfig cfg;
    cfg.data_dir = fresh_dir("shed_ref");
    cfg.checkpoint_every = 64;
    cfg.queue_capacity = 5;
    AdmissionController controller(inst, core::Scheme::kOnsite, cfg);
    ReferenceShedModel model{cfg.queue_capacity, {}, 0, 0.0, {}};

    common::Rng drive_rng(0xD21E);
    std::size_t shed_incoming = 0;
    std::size_t shed_queued = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const SubmitResult got = controller.submit(i, inst.requests[i]);
        const SubmitResult want = model.submit(i, inst.requests[i].payment);
        ASSERT_EQ(got, want) << "submit " << i;
        if (want == SubmitResult::kShedIncoming) ++shed_incoming;
        if (want == SubmitResult::kShedQueued) ++shed_queued;
        // Irregular pump sizes move the queue through many shapes.
        if (drive_rng.uniform_int(0, 6) == 0) {
            const std::size_t burst =
                static_cast<std::size_t>(drive_rng.uniform_int(1, 7));
            const std::vector<ProcessedOutcome> outcomes = controller.pump(burst);
            const std::vector<std::uint64_t> expected = model.pump(burst);
            ASSERT_EQ(outcomes.size(), expected.size());
            for (std::size_t k = 0; k < outcomes.size(); ++k) {
                // FIFO pump order exposes exactly which victims were
                // evicted: a wrong victim would shift every later seq.
                ASSERT_EQ(outcomes[k].seq, expected[k]) << "pump after submit " << i;
            }
        }
    }
    const std::vector<ProcessedOutcome> rest = controller.drain();
    const std::vector<std::uint64_t> expected_rest = model.pump(model.queue.size());
    ASSERT_EQ(rest.size(), expected_rest.size());
    for (std::size_t k = 0; k < rest.size(); ++k) {
        EXPECT_EQ(rest[k].seq, expected_rest[k]);
    }

    // shed_revenue is a bit-exact sum in both implementations.
    const ServeMetrics m = controller.metrics();
    EXPECT_EQ(m.shed, model.shed_count);
    EXPECT_EQ(m.shed_revenue, model.shed_revenue);
    // Both victim kinds occurred, or the test lost its teeth.
    EXPECT_GT(shed_incoming, 0u);
    EXPECT_GT(shed_queued, 0u);
}

TEST(ServeShedHeap, TieBreakKeepsTheOlderRequest) {
    // Capacity 2; all payments equal: every overflow sheds the incoming
    // request (highest seq), never a queued one.
    std::vector<workload::Request> reqs;
    for (int i = 0; i < 6; ++i) {
        reqs.push_back(make_request(i, 0, 0.95, 0, 1, 3.0));
    }
    const core::Instance inst = small_instance({0.98}, 50.0, 4, std::move(reqs));
    ServeConfig cfg;
    cfg.data_dir = fresh_dir("shed_tie");
    cfg.queue_capacity = 2;
    AdmissionController controller(inst, core::Scheme::kOnsite, cfg);
    EXPECT_EQ(controller.submit(0, inst.requests[0]), SubmitResult::kQueued);
    EXPECT_EQ(controller.submit(1, inst.requests[1]), SubmitResult::kQueued);
    EXPECT_EQ(controller.submit(2, inst.requests[2]), SubmitResult::kShedIncoming);
    EXPECT_EQ(controller.submit(3, inst.requests[3]), SubmitResult::kShedIncoming);
    const std::vector<ProcessedOutcome> outcomes = controller.drain();
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_EQ(outcomes[0].seq, 0u);
    EXPECT_EQ(outcomes[1].seq, 1u);
}

TEST(ServeShedHeap, EvictsTheCheapestQueuedRequest) {
    std::vector<workload::Request> reqs;
    const double payments[] = {5.0, 2.0, 4.0, 3.0};
    for (int i = 0; i < 4; ++i) {
        reqs.push_back(make_request(i, 0, 0.95, 0, 1, payments[i]));
    }
    const core::Instance inst = small_instance({0.98}, 50.0, 4, std::move(reqs));
    ServeConfig cfg;
    cfg.data_dir = fresh_dir("shed_evict");
    cfg.queue_capacity = 3;
    AdmissionController controller(inst, core::Scheme::kOnsite, cfg);
    for (std::uint64_t i = 0; i < 3; ++i) {
        ASSERT_EQ(controller.submit(i, inst.requests[i]), SubmitResult::kQueued);
    }
    // Incoming pays 3.0 > queued minimum 2.0 (seq 1): seq 1 is evicted.
    EXPECT_EQ(controller.submit(3, inst.requests[3]), SubmitResult::kShedQueued);
    EXPECT_TRUE(controller.is_covered(1));  // the shed victim is durable
    const std::vector<ProcessedOutcome> outcomes = controller.drain();
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_EQ(outcomes[0].seq, 0u);
    EXPECT_EQ(outcomes[1].seq, 2u);
    EXPECT_EQ(outcomes[2].seq, 3u);
}

/// Heap memory stays bounded: long FIFO churn without overflow must not
/// accumulate stale entries without limit (the rebuild threshold).
TEST(ServeShedHeap, LongChurnRemainsCorrectAfterHeapRebuilds) {
    const std::size_t n = 3000;
    const core::Instance inst =
        small_instance({0.98, 0.99}, 50.0, 10, tie_heavy_requests(n, 0xC0DE));
    ServeConfig cfg;
    cfg.data_dir = fresh_dir("shed_churn");
    cfg.checkpoint_every = 512;
    cfg.queue_capacity = 64;
    AdmissionController controller(inst, core::Scheme::kOnsite, cfg);
    ReferenceShedModel model{cfg.queue_capacity, {}, 0, 0.0, {}};
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(controller.submit(i, inst.requests[i]),
                  model.submit(i, inst.requests[i].payment));
        if ((i + 1) % 48 == 0) {
            // Pump most of the queue: lots of stale heap entries.
            const auto outcomes = controller.pump(40);
            const auto expected = model.pump(40);
            ASSERT_EQ(outcomes.size(), expected.size());
        }
    }
    controller.drain();
    model.pump(model.queue.size());
    EXPECT_EQ(controller.metrics().shed, model.shed_count);
    EXPECT_EQ(controller.metrics().shed_revenue, model.shed_revenue);
}

}  // namespace
}  // namespace vnfr::serve
