#include "net/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "net/algorithms.hpp"

namespace vnfr::net {
namespace {

class GeneratorSeedTest : public ::testing::TestWithParam<int> {
  protected:
    common::Rng rng_{static_cast<std::uint64_t>(GetParam())};
};

TEST_P(GeneratorSeedTest, ErdosRenyiForcedConnected) {
    const Graph g = erdos_renyi(30, 0.05, rng_, true);
    EXPECT_EQ(g.node_count(), 30u);
    EXPECT_TRUE(is_connected(g));
}

TEST_P(GeneratorSeedTest, BarabasiAlbertConnectedAndSized) {
    const Graph g = barabasi_albert(40, 2, rng_);
    EXPECT_EQ(g.node_count(), 40u);
    EXPECT_TRUE(is_connected(g));
    // Seed clique C(3,2)=3 edges + 2 per subsequent node.
    EXPECT_EQ(g.edge_count(), 3u + 2u * 37u);
}

TEST_P(GeneratorSeedTest, WaxmanForcedConnected) {
    const Graph g = waxman(25, 0.8, 0.5, rng_, true);
    EXPECT_EQ(g.node_count(), 25u);
    EXPECT_TRUE(is_connected(g));
}

TEST_P(GeneratorSeedTest, WaxmanWeightsArePositiveDistances) {
    const Graph g = waxman(15, 0.9, 0.9, rng_, true);
    for (const Edge& e : g.edges()) {
        EXPECT_GT(e.weight, 0.0);
        EXPECT_LE(e.weight, std::sqrt(2.0) + 1e-9);  // unit square diagonal
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedTest, ::testing::Range(1, 9));

TEST(Generators, ErdosRenyiDeterministic) {
    common::Rng a(7);
    common::Rng b(7);
    const Graph g1 = erdos_renyi(20, 0.3, a);
    const Graph g2 = erdos_renyi(20, 0.3, b);
    ASSERT_EQ(g1.edge_count(), g2.edge_count());
    for (std::size_t i = 0; i < g1.edge_count(); ++i) {
        EXPECT_EQ(g1.edges()[i].a, g2.edges()[i].a);
        EXPECT_EQ(g1.edges()[i].b, g2.edges()[i].b);
    }
}

TEST(Generators, ErdosRenyiFullProbabilityIsComplete) {
    common::Rng rng(1);
    const Graph g = erdos_renyi(10, 1.0, rng, false);
    EXPECT_EQ(g.edge_count(), 45u);
}

TEST(Generators, ErdosRenyiZeroProbabilityUnforced) {
    common::Rng rng(1);
    const Graph g = erdos_renyi(10, 0.0, rng, false);
    EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Generators, ErdosRenyiRejectsBadProbability) {
    common::Rng rng(1);
    EXPECT_THROW(erdos_renyi(5, -0.1, rng), std::invalid_argument);
    EXPECT_THROW(erdos_renyi(5, 1.1, rng), std::invalid_argument);
}

TEST(Generators, BarabasiAlbertRejectsBadParameters) {
    common::Rng rng(1);
    EXPECT_THROW(barabasi_albert(5, 0, rng), std::invalid_argument);
    EXPECT_THROW(barabasi_albert(3, 3, rng), std::invalid_argument);
}

TEST(Generators, BarabasiAlbertHubsEmerge) {
    common::Rng rng(2);
    const Graph g = barabasi_albert(200, 2, rng);
    std::size_t max_degree = 0;
    for (std::size_t v = 0; v < g.node_count(); ++v) {
        max_degree = std::max(max_degree, g.degree(NodeId{static_cast<std::int64_t>(v)}));
    }
    // Preferential attachment produces hubs far above the mean degree (~4).
    EXPECT_GT(max_degree, 10u);
}

TEST(Generators, WaxmanRejectsBadParameters) {
    common::Rng rng(1);
    EXPECT_THROW(waxman(5, 0.0, 0.5, rng), std::invalid_argument);
    EXPECT_THROW(waxman(5, 0.5, 0.0, rng), std::invalid_argument);
    EXPECT_THROW(waxman(5, 1.5, 0.5, rng), std::invalid_argument);
}

TEST(Generators, RingStructure) {
    const Graph g = ring(6);
    EXPECT_EQ(g.node_count(), 6u);
    EXPECT_EQ(g.edge_count(), 6u);
    EXPECT_TRUE(is_connected(g));
    for (std::size_t v = 0; v < 6; ++v) {
        EXPECT_EQ(g.degree(NodeId{static_cast<std::int64_t>(v)}), 2u);
    }
    EXPECT_THROW(ring(2), std::invalid_argument);
}

TEST(Generators, GridStructure) {
    const Graph g = grid(3, 4);
    EXPECT_EQ(g.node_count(), 12u);
    // Horizontal: 3 rows x 3 = 9; vertical: 2 x 4 = 8.
    EXPECT_EQ(g.edge_count(), 17u);
    EXPECT_TRUE(is_connected(g));
    EXPECT_THROW(grid(0, 4), std::invalid_argument);
}

TEST(Generators, CompleteStructure) {
    const Graph g = complete(7);
    EXPECT_EQ(g.edge_count(), 21u);
    for (std::size_t v = 0; v < 7; ++v) {
        EXPECT_EQ(g.degree(NodeId{static_cast<std::int64_t>(v)}), 6u);
    }
}

}  // namespace
}  // namespace vnfr::net
