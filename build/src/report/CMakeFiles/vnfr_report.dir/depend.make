# Empty dependencies file for vnfr_report.
# This may be replaced when dependencies are built.
