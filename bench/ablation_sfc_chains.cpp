// Ablation (extension): service-function-chain scheduling — revenue vs
// number of chains, primal-dual pricing vs reliability-greedy, with chain
// lengths swept. Mirrors Figure 1(a) in the SFC setting.
#include <iostream>

#include "bench_common.hpp"
#include "report/table.hpp"
#include "sfc/chain_scheduler.hpp"
#include "sfc/chain_workload.hpp"

using namespace vnfr;

int main() {
    const std::vector<std::size_t> sweep =
        bench::quick_mode() ? std::vector<std::size_t>{100, 200}
                            : std::vector<std::size_t>{100, 200, 300, 400, 500, 600};
    const std::size_t seeds = bench::quick_mode() ? 2 : 5;

    std::cout << "== Ablation: SFC (chain) scheduling, revenue vs number of chains ==\n\n";
    report::Table table({"chains", "chain-primal-dual", "chain-greedy", "improvement"});

    const std::uint64_t master = bench::scenario_seed("ablation-sfc-chains", 0);
    for (const std::size_t n : sweep) {
        common::RunningStats pd_stat;
        common::RunningStats greedy_stat;
        for (std::size_t s = 0; s < seeds; ++s) {
            common::Rng rng = common::stream_rng(master, s);
            core::InstanceConfig env = bench::paper_environment(0);
            env.workload.count = 0;
            const core::Instance inst = core::make_instance(env, rng);

            sfc::ChainWorkloadConfig chain_cfg;
            chain_cfg.horizon = inst.horizon;
            chain_cfg.count = n;
            chain_cfg.duration_min = 4;
            chain_cfg.duration_max = 16;
            const auto chains = sfc::generate_chains(chain_cfg, inst.catalog, rng);

            sfc::ChainPrimalDual pd(inst);
            sfc::ChainGreedy greedy(inst);
            pd_stat.add(sfc::run_chains(inst, chains, pd).revenue);
            greedy_stat.add(sfc::run_chains(inst, chains, greedy).revenue);
        }
        table.add_row({std::to_string(n),
                       report::format_mean_ci(pd_stat.mean(), pd_stat.ci95_halfwidth()),
                       report::format_mean_ci(greedy_stat.mean(),
                                              greedy_stat.ci95_halfwidth()),
                       report::format_double(
                           (pd_stat.mean() / greedy_stat.mean() - 1.0) * 100.0, 1) + "%"});
    }
    std::cout << table.to_text()
              << "\nthe primal-dual pricing generalizes to chains: near greedy at light\n"
                 "load, ahead once chain demand saturates the cloudlets.\n";
    return 0;
}
