// A cloudlet c_j: a server cluster co-located with an access point, with a
// computing capacity cap_j (in computing units) and a reliability r(c_j).
#pragma once

#include "common/types.hpp"

namespace vnfr::edge {

struct Cloudlet {
    CloudletId id;
    NodeId node;        ///< AP the cloudlet is co-located with.
    double capacity;    ///< cap_j > 0, computing units available per slot.
    double reliability; ///< r(c_j) in (0, 1).
};

}  // namespace vnfr::edge
