#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "helpers.hpp"
#include "vnf/reliability.hpp"

namespace vnfr::core {
namespace {

using vnfr::testing::make_request;
using vnfr::testing::random_instance;
using vnfr::testing::small_instance;

TEST(TheoryBounds, HandComputedSingleRequest) {
    // One request (fw: c=1, r_f=0.95), one cloudlet r_c=0.99, R=0.9:
    // N = min replicas; a = N * 1.
    const Instance inst = small_instance({0.99}, 50.0, 10,
                                         {make_request(0, 0, 0.9, 0, 2, 5.0)});
    const TheoryBounds b = compute_onsite_bounds(inst);
    const int n = *vnf::min_onsite_replicas(0.99, 0.95, 0.9);
    EXPECT_DOUBLE_EQ(b.a_max, static_cast<double>(n));
    EXPECT_DOUBLE_EQ(b.a_min, static_cast<double>(n));
    EXPECT_DOUBLE_EQ(b.competitive_ratio, 1.0 + n);
    EXPECT_DOUBLE_EQ(b.pay_max, 5.0);
    EXPECT_DOUBLE_EQ(b.pay_min, 5.0);
    EXPECT_DOUBLE_EQ(b.d_max, 2.0);
    EXPECT_DOUBLE_EQ(b.cap_min, 50.0);
}

TEST(TheoryBounds, AMaxCoversExpensiveTypes) {
    // Type 1 (lb) needs c=2 per instance and is less reliable, so its a_ij
    // dominates type 0's.
    const Instance inst = small_instance({0.99}, 50.0, 10,
                                         {make_request(0, 0, 0.9, 0, 2, 5.0),
                                          make_request(1, 1, 0.9, 0, 2, 5.0)});
    const TheoryBounds b = compute_onsite_bounds(inst);
    const int n_fw = *vnf::min_onsite_replicas(0.99, 0.95, 0.9);
    const int n_lb = *vnf::min_onsite_replicas(0.99, 0.90, 0.9);
    EXPECT_DOUBLE_EQ(b.a_min, static_cast<double>(n_fw));
    EXPECT_DOUBLE_EQ(b.a_max, 2.0 * n_lb);
}

TEST(TheoryBounds, InfeasiblePairsExcluded) {
    // The 0.92-reliable cloudlet cannot serve R=0.95 requests; a_ values
    // must come from the feasible cloudlet only.
    const Instance inst = small_instance({0.99, 0.92}, 50.0, 10,
                                         {make_request(0, 0, 0.95, 0, 2, 5.0)});
    const TheoryBounds b = compute_onsite_bounds(inst);
    const int n = *vnf::min_onsite_replicas(0.99, 0.95, 0.95);
    EXPECT_DOUBLE_EQ(b.a_max, static_cast<double>(n));
}

TEST(TheoryBounds, ThrowsWhenNothingFeasible) {
    const Instance inst = small_instance({0.93}, 50.0, 10,
                                         {make_request(0, 0, 0.95, 0, 2, 5.0)});
    EXPECT_THROW(compute_onsite_bounds(inst), std::invalid_argument);
}

TEST(TheoryBounds, XiPositiveAndFinite) {
    common::Rng rng(89);
    const Instance inst = random_instance(rng, 40, 3, 10);
    const TheoryBounds b = compute_onsite_bounds(inst);
    EXPECT_GT(b.xi, 0.0);
    EXPECT_TRUE(std::isfinite(b.xi));
    EXPECT_GT(b.absolute_usage_bound, 0.0);
    EXPECT_NEAR(b.xi, b.absolute_usage_bound / b.cap_min, 1e-12);
}

TEST(TheoryBounds, XiGrowsWithPaymentSpread) {
    // Larger pay_max/pay_min spread loosens the violation bound (Lemma 8).
    const auto make = [](double pay_hi) {
        return small_instance({0.99}, 50.0, 10,
                              {make_request(0, 0, 0.9, 0, 2, 1.0),
                               make_request(1, 0, 0.9, 0, 2, pay_hi)});
    };
    const TheoryBounds narrow = compute_onsite_bounds(make(2.0));
    const TheoryBounds wide = compute_onsite_bounds(make(50.0));
    EXPECT_GT(wide.xi, narrow.xi);
}

TEST(TheoryBounds, CompetitiveRatioAboveOne) {
    common::Rng rng(97);
    const Instance inst = random_instance(rng, 30, 3, 10);
    const TheoryBounds b = compute_onsite_bounds(inst);
    EXPECT_GT(b.competitive_ratio, 1.0);
    EXPECT_DOUBLE_EQ(b.competitive_ratio, 1.0 + b.a_max);
    EXPECT_GE(b.a_max, b.a_min);
}

}  // namespace
}  // namespace vnfr::core
