// Random topology generators.
//
// The paper samples real Internet Topology Zoo graphs; the generators here
// produce synthetic AP networks of controllable size/shape for sweeps and
// property tests. All generators are deterministic given the Rng.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "net/graph.hpp"

namespace vnfr::net {

/// G(n, p) Erdos-Renyi graph. If `force_connected`, a random spanning tree
/// is laid down first so the result is always connected.
Graph erdos_renyi(std::size_t n, double p, common::Rng& rng, bool force_connected = true);

/// Barabasi-Albert preferential attachment: starts from a small clique and
/// attaches each new node to `m` existing nodes with probability
/// proportional to degree. Produces scale-free ISP-like graphs.
Graph barabasi_albert(std::size_t n, std::size_t m, common::Rng& rng);

/// Waxman random geometric graph on the unit square: nodes get uniform
/// coordinates; edge (u,v) exists with probability
/// alpha * exp(-d(u,v) / (beta * L)), L = max pairwise distance. Edge weight
/// is the Euclidean distance. If `force_connected`, a Euclidean MST-like
/// chain is added to connect components.
Graph waxman(std::size_t n, double alpha, double beta, common::Rng& rng,
             bool force_connected = true);

/// Ring of n nodes (n >= 3), unit weights.
Graph ring(std::size_t n);

/// rows x cols grid with unit weights.
Graph grid(std::size_t rows, std::size_t cols);

/// Complete graph on n nodes with unit weights.
Graph complete(std::size_t n);

}  // namespace vnfr::net
