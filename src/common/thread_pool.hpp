// A small fixed-size thread pool with a blocked-range parallel_for.
//
// Design constraints, in order:
//   1. Determinism of *results* must never depend on the pool: callers
//      write into pre-sized slots indexed by iteration number and reduce
//      in index order afterwards, so any interleaving yields identical
//      output (the experiment engine's thread-count-invariance contract).
//   2. Exception propagation: a throwing iteration never crashes a worker.
//      Exceptions are captured per block and the one from the *lowest*
//      block index is rethrown on the calling thread, so even failures are
//      reported deterministically.
//   3. No work stealing, no futures, no allocation per iteration — the
//      replications this pool runs are milliseconds to seconds each, so a
//      shared atomic block cursor is contention-free in practice.
//
// `thread_count` counts the calling thread: the pool spawns N-1 workers
// and the caller participates in every parallel_for, so thread_count == 1
// means strictly serial inline execution with zero spawned threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace vnfr::common {

class ThreadPool {
  public:
    /// Body of a blocked range: processes indices [begin, end).
    using BlockFn = std::function<void(std::size_t, std::size_t)>;
    /// Body of a single index.
    using IndexFn = std::function<void(std::size_t)>;

    /// `thread_count` = total threads that execute parallel_for bodies,
    /// including the caller; 0 picks default_thread_count().
    explicit ThreadPool(std::size_t thread_count = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t thread_count() const { return thread_count_; }

    /// Runs `body(lo, hi)` over [begin, end) split into blocks of at most
    /// `grain` indices. Blocks execute concurrently in unspecified order;
    /// the call returns after every block finished. If any block threw, the
    /// exception of the lowest-indexed failing block is rethrown here.
    /// Throws std::invalid_argument for grain == 0. Not reentrant: a
    /// parallel_for body must not submit to the same pool.
    void parallel_for_blocked(std::size_t begin, std::size_t end, std::size_t grain,
                              const BlockFn& body);

    /// Per-index convenience over parallel_for_blocked with an automatic
    /// grain (~4 blocks per thread, minimum 1 index).
    void parallel_for(std::size_t begin, std::size_t end, const IndexFn& body);

    /// VNFR_THREADS from the environment when it parses as a positive
    /// integer (clamped to [1, 4 * hardware]), else hardware concurrency,
    /// else 1. This is the single knob the benches and the experiment
    /// engine consult.
    static std::size_t default_thread_count();

  private:
    struct Job;

    void worker_loop();
    /// Claims and runs blocks of `job` until its cursor is exhausted.
    static void run_blocks(Job& job);

    std::size_t thread_count_;
    std::vector<std::thread> workers_;

    Mutex mutex_;
    CondVar job_cv_;   ///< workers: a job was posted / stop
    CondVar done_cv_;  ///< caller: all blocks finished
    /// Current job; null when idle.
    std::shared_ptr<Job> job_ VNFR_GUARDED_BY(mutex_);
    /// Bumped per posted job.
    std::uint64_t job_epoch_ VNFR_GUARDED_BY(mutex_) = 0;
    bool stopping_ VNFR_GUARDED_BY(mutex_) = false;
};

}  // namespace vnfr::common
