// Branch-and-bound for 0/1 integer programs over LinearProgram models.
//
// Replaces the CPLEX runs of the paper's evaluation. Best-first search,
// bounding by the simplex LP relaxation, branching on the most fractional
// binary. Exact (proven) on the small/medium instances used in tests; on
// larger instances, node/time limits make it return the best incumbent
// found together with a global upper bound, which is exactly what the
// revenue figures need.
#pragma once

#include <cstddef>
#include <vector>

#include "opt/lp.hpp"
#include "opt/simplex.hpp"

namespace vnfr::opt {

struct BnbOptions {
    std::size_t max_nodes{100000};
    double time_limit_seconds{60.0};
    double integrality_tolerance{1e-6};
    /// Prune nodes whose LP bound does not beat the incumbent by more than
    /// this (absolute) amount.
    double gap_tolerance{1e-7};
    SimplexOptions lp_options{};
};

struct IlpSolution {
    /// True when the search tree was exhausted: `objective` is the optimum.
    bool proven_optimal{false};
    bool has_incumbent{false};
    /// True when the root relaxation was infeasible.
    bool infeasible{false};
    double objective{0};   ///< incumbent value (valid when has_incumbent)
    double best_bound{0};  ///< global upper bound on the optimum
    std::vector<double> x; ///< incumbent solution
    std::size_t nodes_explored{0};
};

/// Solves max c^T x with the variables in `binary_vars` restricted to
/// {0, 1}; all other variables stay continuous in their bounds. Binary
/// variables must have bounds within [0, 1]. Throws std::invalid_argument
/// on malformed input.
IlpSolution solve_ilp(const LinearProgram& lp, const std::vector<std::size_t>& binary_vars,
                      const BnbOptions& options = {});

}  // namespace vnfr::opt
