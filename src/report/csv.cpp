#include "report/csv.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace vnfr::report {

std::string csv_escape(const std::string& cell) {
    const bool needs_quotes = cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes) return cell;
    std::string out = "\"";
    for (const char c : cell) {
        if (c == '"') out += "\"\"";
        else out += c;
    }
    out += '"';
    return out;
}

CsvWriter::CsvWriter(std::ostream& os) : os_(os) {}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
        os_ << csv_escape(cells[i]);
        if (i + 1 < cells.size()) os_ << ',';
    }
    os_ << '\n';
}

void CsvWriter::write_header(const std::vector<std::string>& header) {
    if (header_written_) throw std::logic_error("CsvWriter: header already written");
    if (header.empty()) throw std::invalid_argument("CsvWriter: empty header");
    columns_ = header.size();
    header_written_ = true;
    write_cells(header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
    if (!header_written_) throw std::logic_error("CsvWriter: header not written");
    if (cells.size() != columns_) throw std::invalid_argument("CsvWriter: column mismatch");
    write_cells(cells);
}

void CsvWriter::write_row(const std::vector<double>& values) {
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (const double v : values) {
        std::ostringstream os;
        os << v;
        cells.push_back(os.str());
    }
    write_row(cells);
}

}  // namespace vnfr::report
