file(REMOVE_RECURSE
  "libvnfr_vnf.a"
)
