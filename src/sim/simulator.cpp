#include "sim/simulator.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "sim/failure_model.hpp"

namespace vnfr::sim {

double SimulationReport::empirical_availability() const {
    const std::size_t total = served_request_slots + disrupted_request_slots;
    if (total == 0) return 0.0;
    return VNFR_CHECK_PROB(static_cast<double>(served_request_slots) /
                           static_cast<double>(total));
}

SimulationReport simulate(const core::Instance& instance, core::OnlineScheduler& scheduler,
                          const SimulatorConfig& config) {
    instance.validate();
    SimulationReport report;
    report.schedule.decisions.resize(instance.requests.size());
    report.timeline.reserve(static_cast<std::size_t>(instance.horizon));

    common::Rng failure_rng(config.failure_seed);

    // Admitted requests whose window covers the current slot, kept as
    // indices into instance.requests.
    std::vector<std::size_t> active;
    std::size_t next_request = 0;

    for (TimeSlot t = 0; t < instance.horizon; ++t) {
        SlotRecord record;
        record.slot = t;

        // Deliver this slot's arrivals in order.
        while (next_request < instance.requests.size() &&
               instance.requests[next_request].arrival == t) {
            const workload::Request& r = instance.requests[next_request];
            core::Decision d = scheduler.decide(r);
            ++record.arrivals;
            if (d.admitted) {
                ++record.admitted;
                ++report.schedule.admitted;
                report.schedule.revenue += r.payment;
                active.push_back(next_request);
            }
            report.schedule.decisions[next_request] = std::move(d);
            ++next_request;
        }

        // Retire requests whose window ended before this slot.
        std::erase_if(active, [&](std::size_t i) {
            return !instance.requests[i].covers(t);
        });
        record.active_requests = active.size();

        if (config.inject_failures) {
            for (const std::size_t i : active) {
                const bool served = sample_served(instance, instance.requests[i],
                                                  report.schedule.decisions[i].placement,
                                                  failure_rng);
                if (served) ++report.served_request_slots;
                else ++report.disrupted_request_slots;
            }
        }

        const edge::ResourceLedger& ledger = scheduler.ledger();
        double util = 0.0;
        for (std::size_t j = 0; j < ledger.cloudlet_count(); ++j) {
            const CloudletId c{static_cast<std::int64_t>(j)};
            VNFR_DCHECK(ledger.usage(c, t) >= 0.0, "ledger usage went negative at cloudlet ",
                        j, " slot ", t);
            util += ledger.usage(c, t) / ledger.capacity(c);
        }
        VNFR_CHECK_FINITE(util);
        record.mean_utilization =
            ledger.cloudlet_count() == 0 ? 0.0
                                         : util / static_cast<double>(ledger.cloudlet_count());
        report.timeline.push_back(record);
    }

    const edge::ResourceLedger& ledger = scheduler.ledger();
    report.schedule.max_overshoot = ledger.max_overshoot();
    for (std::size_t j = 0; j < ledger.cloudlet_count(); ++j) {
        const CloudletId c{static_cast<std::int64_t>(j)};
        for (TimeSlot t = 0; t < ledger.horizon(); ++t) {
            report.schedule.max_load_factor = std::max(
                report.schedule.max_load_factor, ledger.usage(c, t) / ledger.capacity(c));
        }
    }
    return report;
}

}  // namespace vnfr::sim
