file(REMOVE_RECURSE
  "CMakeFiles/vnfr_vnf.dir/catalog.cpp.o"
  "CMakeFiles/vnfr_vnf.dir/catalog.cpp.o.d"
  "CMakeFiles/vnfr_vnf.dir/reliability.cpp.o"
  "CMakeFiles/vnfr_vnf.dir/reliability.cpp.o.d"
  "libvnfr_vnf.a"
  "libvnfr_vnf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfr_vnf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
