#include "core/greedy.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "sim/failure_model.hpp"

namespace vnfr::core {
namespace {

using vnfr::testing::make_request;
using vnfr::testing::random_instance;
using vnfr::testing::small_instance;

TEST(OnsiteGreedy, PicksMostReliableCloudlet) {
    const Instance inst = small_instance({0.97, 0.999, 0.98}, 100.0, 10,
                                         {make_request(0, 0, 0.9, 0, 2, 5.0)});
    OnsiteGreedy scheduler(inst);
    const Decision d = scheduler.decide(inst.requests[0]);
    ASSERT_TRUE(d.admitted);
    EXPECT_EQ(d.placement.sites[0].cloudlet, CloudletId{1});
}

TEST(OnsiteGreedy, FallsBackWhenBestIsFull) {
    const Instance inst = small_instance({0.98, 0.999}, 3.0, 4,
                                         {make_request(0, 0, 0.9, 0, 4, 5.0),
                                          make_request(1, 0, 0.9, 0, 4, 5.0)});
    OnsiteGreedy scheduler(inst);
    const Decision first = scheduler.decide(inst.requests[0]);
    ASSERT_TRUE(first.admitted);
    EXPECT_EQ(first.placement.sites[0].cloudlet, CloudletId{1});
    // Cloudlet 1 is now nearly full (capacity 3, fw needs 2 replicas x 1 unit
    // at 0.999? depends on replica count) - the second must still be served
    // somewhere without violating capacity.
    const Decision second = scheduler.decide(inst.requests[1]);
    if (second.admitted) {
        EXPECT_DOUBLE_EQ(scheduler.ledger().max_overshoot(), 0.0);
    }
}

TEST(OnsiteGreedy, RejectsInfeasibleRequirement) {
    const Instance inst = small_instance({0.95}, 100.0, 10,
                                         {make_request(0, 0, 0.96, 0, 2, 5.0)});
    OnsiteGreedy scheduler(inst);
    EXPECT_FALSE(scheduler.decide(inst.requests[0]).admitted);
}

TEST(OnsiteGreedy, NeverViolatesCapacity) {
    common::Rng rng(53);
    for (int trial = 0; trial < 5; ++trial) {
        const Instance inst = random_instance(rng, 80, 3, 12, 8, 15);
        OnsiteGreedy scheduler(inst);
        const ScheduleResult result = run_online(inst, scheduler);
        EXPECT_DOUBLE_EQ(result.max_overshoot, 0.0);
        EXPECT_LE(result.max_load_factor, 1.0 + 1e-9);
    }
}

TEST(OnsiteGreedy, AdmittedPlacementsMeetRequirement) {
    common::Rng rng(59);
    const Instance inst = random_instance(rng, 60, 3, 12);
    OnsiteGreedy scheduler(inst);
    const ScheduleResult result = run_online(inst, scheduler);
    for (std::size_t i = 0; i < result.decisions.size(); ++i) {
        if (result.decisions[i].admitted) {
            EXPECT_GE(sim::analytic_availability(inst, inst.requests[i],
                                                 result.decisions[i].placement),
                      inst.requests[i].requirement - 1e-12);
        }
    }
}

TEST(OffsiteGreedy, UsesMostReliableCloudletsFirst) {
    const Instance inst = small_instance({0.95, 0.999, 0.97}, 100.0, 10,
                                         {make_request(0, 0, 0.9, 0, 2, 5.0)});
    OffsiteGreedy scheduler(inst);
    const Decision d = scheduler.decide(inst.requests[0]);
    ASSERT_TRUE(d.admitted);
    EXPECT_EQ(d.placement.sites[0].cloudlet, CloudletId{1});
}

TEST(OffsiteGreedy, AddsSitesUntilRequirementMet) {
    // vnf 1 (lb) has r_f = 0.90. One site: 0.9*0.96 = 0.864 < 0.9;
    // two sites: 1 - (1-0.864)^2 ~ 0.9815 >= 0.9.
    const Instance inst = small_instance({0.96, 0.96, 0.96}, 100.0, 10,
                                         {make_request(0, 1, 0.9, 0, 2, 5.0)});
    OffsiteGreedy scheduler(inst);
    const Decision d = scheduler.decide(inst.requests[0]);
    ASSERT_TRUE(d.admitted);
    EXPECT_EQ(d.placement.sites.size(), 2u);
}

TEST(OffsiteGreedy, RejectsWhenAllSitesCannotMeet) {
    const Instance inst = small_instance({0.91, 0.91}, 100.0, 10,
                                         {make_request(0, 1, 0.995, 0, 2, 5.0)});
    OffsiteGreedy scheduler(inst);
    EXPECT_FALSE(scheduler.decide(inst.requests[0]).admitted);
}

TEST(OffsiteGreedy, NeverViolatesCapacity) {
    common::Rng rng(61);
    for (int trial = 0; trial < 5; ++trial) {
        const Instance inst = random_instance(rng, 80, 4, 12, 8, 15);
        OffsiteGreedy scheduler(inst);
        const ScheduleResult result = run_online(inst, scheduler);
        EXPECT_DOUBLE_EQ(result.max_overshoot, 0.0);
    }
}

TEST(OffsiteGreedy, HotspotPathology) {
    // The failure mode called out in Section VI: greedy piles everything on
    // the most reliable cloudlets, so its most-reliable cloudlet saturates
    // at least as much as under the price-aware Algorithm 2.
    std::vector<workload::Request> requests;
    for (int i = 0; i < 50; ++i) requests.push_back(make_request(i, 0, 0.9, 0, 2, 3.0));
    const Instance inst = small_instance({0.999, 0.98, 0.97}, 30.0, 2, std::move(requests));

    OffsiteGreedy greedy(inst);
    run_online(inst, greedy);
    // Cloudlet 0 (most reliable) must be saturated by the greedy policy.
    EXPECT_GE(greedy.ledger().usage(CloudletId{0}, 0), 29.0);
}

TEST(Greedy, Names) {
    const Instance inst = small_instance({0.99}, 10.0, 5, {});
    EXPECT_EQ(OnsiteGreedy(inst).name(), "onsite-greedy");
    EXPECT_EQ(OffsiteGreedy(inst).name(), "offsite-greedy");
}

}  // namespace
}  // namespace vnfr::core
