#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace vnfr::common {
namespace {

TEST(Rng, SameSeedSameSequence) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a() == b()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, Uniform01InRange) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform01();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, Uniform01MeanNearHalf) {
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += rng.uniform01();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-5.0, 9.0);
        EXPECT_GE(v, -5.0);
        EXPECT_LT(v, 9.0);
    }
}

TEST(Rng, UniformRejectsInvertedRange) {
    Rng rng(3);
    EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, UniformIntCoversAllValues) {
    Rng rng(5);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(3, 8));
    EXPECT_EQ(seen.size(), 6u);
    EXPECT_EQ(*seen.begin(), 3);
    EXPECT_EQ(*seen.rbegin(), 8);
}

TEST(Rng, UniformIntSingleton) {
    Rng rng(5);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
    Rng rng(5);
    EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, UniformIntApproximatelyUniform) {
    Rng rng(17);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(rng.uniform_int(0, 9))];
    for (const int c : counts) {
        EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
    }
}

TEST(Rng, BernoulliExtremes) {
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliMatchesProbability) {
    Rng rng(13);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliRejectsBadProbability) {
    Rng rng(13);
    EXPECT_THROW(rng.bernoulli(-0.1), std::invalid_argument);
    EXPECT_THROW(rng.bernoulli(1.1), std::invalid_argument);
}

TEST(Rng, ExponentialMeanMatchesRate) {
    Rng rng(19);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialNonNegative) {
    Rng rng(19);
    for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(0.5), 0.0);
}

TEST(Rng, ExponentialRejectsBadRate) {
    Rng rng(19);
    EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
    EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, BoundedParetoStaysInRange) {
    Rng rng(23);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.bounded_pareto(1.5, 1.0, 50.0);
        EXPECT_GE(v, 1.0);
        EXPECT_LE(v, 50.0);
    }
}

TEST(Rng, BoundedParetoHeavyTail) {
    // With alpha = 1.2 most mass sits near the lower bound.
    Rng rng(29);
    int low = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        if (rng.bounded_pareto(1.2, 1.0, 100.0) < 5.0) ++low;
    }
    EXPECT_GT(low, n / 2);
}

TEST(Rng, BoundedParetoDegenerateRange) {
    Rng rng(29);
    EXPECT_DOUBLE_EQ(rng.bounded_pareto(2.0, 3.0, 3.0), 3.0);
}

TEST(Rng, BoundedParetoRejectsBadParameters) {
    Rng rng(29);
    EXPECT_THROW(rng.bounded_pareto(0.0, 1.0, 2.0), std::invalid_argument);
    EXPECT_THROW(rng.bounded_pareto(1.0, 0.0, 2.0), std::invalid_argument);
    EXPECT_THROW(rng.bounded_pareto(1.0, 3.0, 2.0), std::invalid_argument);
}

TEST(Rng, PoissonMeanMatches) {
    Rng rng(31);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) sum += rng.poisson(4.0);
    EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, PoissonRejectsBadMean) {
    Rng rng(31);
    EXPECT_THROW(rng.poisson(0.0), std::invalid_argument);
    EXPECT_THROW(rng.poisson(1000.0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
    Rng rng(37);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal(10.0, 3.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 3.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
    Rng rng(41);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto w = v;
    rng.shuffle(std::span<int>(w));
    std::sort(w.begin(), w.end());
    EXPECT_EQ(v, w);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
    Rng rng(43);
    const auto sample = rng.sample_without_replacement(20, 10);
    EXPECT_EQ(sample.size(), 10u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (const std::size_t s : sample) EXPECT_LT(s, 20u);
}

TEST(Rng, SampleWithoutReplacementFull) {
    Rng rng(43);
    const auto sample = rng.sample_without_replacement(5, 5);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleWithoutReplacementRejectsOverdraw) {
    Rng rng(43);
    EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, SplitProducesIndependentStreams) {
    Rng parent(47);
    Rng a = parent.split(0);
    Rng b = parent.split(1);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a() == b()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, SplitIsDeterministic) {
    Rng p1(47);
    Rng p2(47);
    Rng a = p1.split(5);
    Rng b = p2.split(5);
    for (int i = 0; i < 50; ++i) EXPECT_EQ(a(), b());
}

}  // namespace
}  // namespace vnfr::common
