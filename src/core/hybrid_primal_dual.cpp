#include "core/hybrid_primal_dual.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/math.hpp"
#include "vnf/reliability.hpp"

namespace vnfr::core {

namespace {

double estimate_onsite_demand(const Instance& instance) {
    double total = 0.0;
    std::size_t pairs = 0;
    for (const vnf::VnfType& type : instance.catalog.types()) {
        for (const edge::Cloudlet& c : instance.network.cloudlets()) {
            const double representative_r = std::min(0.95, c.reliability * 0.97);
            const auto n =
                vnf::min_onsite_replicas(c.reliability, type.reliability, representative_r);
            if (!n) continue;
            total += *n * type.compute_units;
            ++pairs;
        }
    }
    return pairs == 0 ? 1.0 : std::max(1.0, total / static_cast<double>(pairs));
}

double estimate_offsite_demand(const Instance& instance) {
    double total = 0.0;
    std::size_t pairs = 0;
    for (const vnf::VnfType& type : instance.catalog.types()) {
        for (const edge::Cloudlet& c : instance.network.cloudlets()) {
            const double sites = common::log1m(0.95) /
                                 vnf::offsite_log_failure(type.reliability, c.reliability);
            total += std::max(1.0, sites) * type.compute_units;
            ++pairs;
        }
    }
    return pairs == 0 ? 1.0 : std::max(1.0, total / static_cast<double>(pairs));
}

}  // namespace

HybridPrimalDual::HybridPrimalDual(const Instance& instance, HybridPrimalDualConfig config)
    : instance_(instance),
      ledger_(instance.network.capacities(), instance.horizon,
              edge::CapacityPolicy::kEnforce),
      lambda_onsite_(instance.network.cloudlet_count(),
                     std::vector<double>(static_cast<std::size_t>(instance.horizon), 0.0)),
      lambda_offsite_(instance.network.cloudlet_count(),
                      std::vector<double>(static_cast<std::size_t>(instance.horizon), 0.0)) {
    if (config.onsite_dual_capacity_scale < 0.0 || config.offsite_dual_capacity_scale < 0.0)
        throw std::invalid_argument("HybridPrimalDual: negative dual_capacity_scale");
    onsite_scale_ = config.onsite_dual_capacity_scale > 0.0
                        ? config.onsite_dual_capacity_scale
                        : estimate_onsite_demand(instance);
    offsite_scale_ = config.offsite_dual_capacity_scale > 0.0
                         ? config.offsite_dual_capacity_scale
                         : estimate_offsite_demand(instance);
}

std::optional<HybridPrimalDual::OnsiteOption> HybridPrimalDual::price_onsite(
    const workload::Request& request) const {
    const double compute = instance_.catalog.compute_units(request.vnf);
    const double vnf_rel = instance_.catalog.reliability(request.vnf);

    std::optional<OnsiteOption> best;
    double best_demand = std::numeric_limits<double>::infinity();
    for (const edge::Cloudlet& c : instance_.network.cloudlets()) {
        const auto n = vnf::min_onsite_replicas(c.reliability, vnf_rel, request.requirement);
        if (!n) continue;
        VNFR_CHECK(*n >= 1, "Eq. (3) replica count for request ", request.id.value,
                   " on cloudlet ", c.id.value);
        const double demand = *n * compute;
        if (!ledger_.fits(c.id, request.arrival, request.end(), demand)) continue;
        double price = 0.0;
        const auto& lam = lambda_onsite_[c.id.index()];
        for (TimeSlot t = request.arrival; t < request.end(); ++t) {
            VNFR_DCHECK(lam[static_cast<std::size_t>(t)] >= 0.0,
                        "onsite dual price lambda_", c.id.value, "(", t, ") went negative");
            price += demand * lam[static_cast<std::size_t>(t)];
        }
        VNFR_CHECK_FINITE(price);
        if (!best || price < best->price - 1e-12 ||
            (price < best->price + 1e-12 && demand < best_demand)) {
            best = OnsiteOption{c.id, *n, price};
            best_demand = demand;
        }
    }
    return best;
}

std::optional<HybridPrimalDual::OffsiteOption> HybridPrimalDual::price_offsite(
    const workload::Request& request) const {
    const double compute = instance_.catalog.compute_units(request.vnf);
    const double vnf_rel = VNFR_CHECK_PROB(instance_.catalog.reliability(request.vnf));
    const double log_target = common::log1m(request.requirement);
    VNFR_CHECK(log_target < 0.0, "requirement R_i must be positive for request ",
               request.id.value);

    struct Candidate {
        CloudletId cloudlet;
        double w;
    };
    std::vector<Candidate> candidates;
    for (const edge::Cloudlet& c : instance_.network.cloudlets()) {
        double lambda_sum = 0.0;
        const auto& lam = lambda_offsite_[c.id.index()];
        for (TimeSlot t = request.arrival; t < request.end(); ++t) {
            VNFR_DCHECK(lam[static_cast<std::size_t>(t)] >= 0.0,
                        "offsite dual price lambda_", c.id.value, "(", t,
                        ") went negative");
            lambda_sum += lam[static_cast<std::size_t>(t)];
        }
        const double log_pair = vnf::offsite_log_failure(vnf_rel, c.reliability);
        VNFR_CHECK(log_pair < 0.0, "offsite log-failure must be negative for cloudlet ",
                   c.id.value);
        const double w = VNFR_CHECK_FINITE(lambda_sum / -log_pair);
        if (request.payment + log_target * compute * w <= 0.0) continue;
        candidates.push_back({c.id, w});
    }
    std::sort(candidates.begin(), candidates.end(), [&](const Candidate& a, const Candidate& b) {
        if (a.w < b.w - 1e-12 || b.w < a.w - 1e-12) return a.w < b.w;
        const double ra = instance_.network.cloudlet(a.cloudlet).reliability;
        const double rb = instance_.network.cloudlet(b.cloudlet).reliability;
        if (!common::almost_equal(ra, rb)) return ra > rb;
        return a.cloudlet < b.cloudlet;
    });

    OffsiteOption option;
    double log_fail = 0.0;
    for (const Candidate& cand : candidates) {
        if (!ledger_.fits(cand.cloudlet, request.arrival, request.end(), compute)) continue;
        option.sites.push_back(cand.cloudlet);
        const auto& lam = lambda_offsite_[cand.cloudlet.index()];
        for (TimeSlot t = request.arrival; t < request.end(); ++t) {
            option.price += compute * lam[static_cast<std::size_t>(t)];
        }
        log_fail += vnf::offsite_log_failure(
            vnf_rel, instance_.network.cloudlet(cand.cloudlet).reliability);
        if (log_fail <= log_target) return option;
    }
    return std::nullopt;
}

void HybridPrimalDual::admit_onsite(const workload::Request& request,
                                    const OnsiteOption& option) {
    const double compute = instance_.catalog.compute_units(request.vnf);
    const double demand = option.replicas * compute;
    ledger_.reserve(option.cloudlet, request.arrival, request.end(), demand);
    const double cap =
        instance_.network.cloudlet(option.cloudlet).capacity * onsite_scale_;
    VNFR_CHECK(cap > 0.0, "dual update capacity for cloudlet ", option.cloudlet.value);
    const double mult = 1.0 + demand / cap;
    const double add = demand * request.payment / (request.duration * cap);
    auto& lam = lambda_onsite_[option.cloudlet.index()];
    for (TimeSlot t = request.arrival; t < request.end(); ++t) {
        auto& value = lam[static_cast<std::size_t>(t)];
        value = value * mult + add;
        VNFR_DCHECK(std::isfinite(value) && value >= 0.0, "Eq. (34) dual update for ",
                    option.cloudlet.value, " slot ", t);
    }
    ++onsite_admissions_;
}

void HybridPrimalDual::admit_offsite(const workload::Request& request,
                                     const OffsiteOption& option) {
    const double compute = instance_.catalog.compute_units(request.vnf);
    const double vnf_rel = instance_.catalog.reliability(request.vnf);
    const double log_target = common::log1m(request.requirement);
    for (const CloudletId j : option.sites) {
        ledger_.reserve(j, request.arrival, request.end(), compute);
        const edge::Cloudlet& cloudlet = instance_.network.cloudlet(j);
        const double ratio =
            log_target / vnf::offsite_log_failure(vnf_rel, cloudlet.reliability);
        VNFR_CHECK(ratio > 0.0, "Eq. (67) growth ratio for cloudlet ", j.value);
        const double cap = cloudlet.capacity * offsite_scale_;
        VNFR_CHECK(cap > 0.0, "dual update capacity for cloudlet ", j.value);
        const double mult = 1.0 + ratio * compute / cap;
        const double add = ratio * compute * request.payment / (request.duration * cap);
        auto& lam = lambda_offsite_[j.index()];
        for (TimeSlot t = request.arrival; t < request.end(); ++t) {
            auto& value = lam[static_cast<std::size_t>(t)];
            value = value * mult + add;
            VNFR_DCHECK(std::isfinite(value) && value >= 0.0,
                        "Eq. (67) dual update for ", j.value, " slot ", t);
        }
    }
    ++offsite_admissions_;
}

Decision HybridPrimalDual::decide(const workload::Request& request) {
    const std::optional<OnsiteOption> onsite = price_onsite(request);
    const std::optional<OffsiteOption> offsite = price_offsite(request);

    const double profit_on =
        onsite ? request.payment - onsite->price : -std::numeric_limits<double>::infinity();
    const double profit_off = offsite ? request.payment - offsite->price
                                      : -std::numeric_limits<double>::infinity();
    if (profit_on <= 0.0 && profit_off <= 0.0) {
        Decision rejected;
        if (onsite || offsite) {
            // At least one scheme could place the request; the prices said no.
            rejected.reject_reason = RejectReason::kPricedOut;
        } else {
            // Neither scheme found a placement. Infeasible only when even
            // the full cloudlet set cannot reach R off-site (the weaker of
            // the two schemes' feasibility conditions).
            const double vnf_rel = instance_.catalog.reliability(request.vnf);
            double log_fail_everything = 0.0;
            for (const edge::Cloudlet& c : instance_.network.cloudlets()) {
                log_fail_everything += vnf::offsite_log_failure(vnf_rel, c.reliability);
            }
            rejected.reject_reason =
                log_fail_everything <= common::log1m(request.requirement)
                    ? RejectReason::kNoCapacity
                    : RejectReason::kInfeasibleRequirement;
        }
        return rejected;
    }

    Decision d;
    d.admitted = true;
    if (profit_on >= profit_off) {
        admit_onsite(request, *onsite);
        d.placement = Placement{request.id, {Site{onsite->cloudlet, onsite->replicas}}};
    } else {
        admit_offsite(request, *offsite);
        Placement placement{request.id, {}};
        for (const CloudletId j : offsite->sites) placement.sites.push_back(Site{j, 1});
        d.placement = std::move(placement);
    }
    return d;
}

}  // namespace vnfr::core
