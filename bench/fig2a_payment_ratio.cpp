// Figure 2(a): impact of the payment-rate variation H = pr_max / pr_min.
//
// Protocol from Section VI.C: fix pr_max, lower pr_min to raise H; payment
// rates are uniform on [pr_min, pr_max]. Expected shape: revenue decreases
// as H grows (users pay less per unit of resource), with the impact
// pronounced for H in [1, 5] and diminishing afterwards because low-rate
// requests simply get rejected.
//
// The request count is fixed at the saturated end of the Figure 1 sweep so
// that admission control actually has to choose.
#include "bench_common.hpp"

using namespace vnfr;

int main() {
    const std::vector<double> sweep = bench::quick_mode()
                                          ? std::vector<double>{1, 5}
                                          : std::vector<double>{1, 2, 5, 10, 15, 20};
    const std::size_t requests = bench::quick_mode() ? 200 : 600;

    const std::vector<sim::Algorithm> algorithms{
        sim::Algorithm::kOnsitePrimalDual, sim::Algorithm::kOnsiteGreedy,
        sim::Algorithm::kOffsitePrimalDual, sim::Algorithm::kOffsiteGreedy};

    bench::print_thread_note();
    std::vector<bench::SeriesRow> rows;
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const double h = sweep[i];
        core::InstanceConfig env = bench::paper_environment(requests);
        env.workload.set_payment_ratio(h);

        sim::ExperimentConfig cfg;
        cfg.algorithms = algorithms;
        cfg.seeds = bench::quick_mode() ? 2 : 5;
        cfg.base_seed = bench::scenario_seed("fig2a", i);
        rows.push_back({h, sim::run_experiment(bench::make_factory(env), cfg)});
    }
    bench::print_series("Figure 2(a): revenue vs payment-rate ratio H (n = " +
                            std::to_string(requests) + ")",
                        "H", algorithms, rows, /*with_offline_bound=*/false);
    return 0;
}
