#include "sim/metrics.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/contracts.hpp"
#include "sim/failure_model.hpp"

namespace vnfr::sim {

PlacementStats placement_stats(const core::Instance& instance,
                               const std::vector<core::Decision>& decisions) {
    if (decisions.size() != instance.requests.size())
        throw std::invalid_argument("placement_stats: decisions/requests size mismatch");
    PlacementStats stats;
    stats.min_slack = std::numeric_limits<double>::infinity();
    double sites = 0.0;
    double replicas = 0.0;
    double hops = 0.0;
    double availability = 0.0;
    double access_hops = 0.0;
    std::size_t with_source = 0;
    for (std::size_t i = 0; i < decisions.size(); ++i) {
        const core::Decision& d = decisions[i];
        if (!d.admitted) continue;
        ++stats.admitted;
        sites += static_cast<double>(d.placement.sites.size());
        for (const core::Site& s : d.placement.sites) replicas += s.replicas;

        double pair_hops = 0.0;
        std::size_t pairs = 0;
        for (std::size_t a = 0; a < d.placement.sites.size(); ++a) {
            for (std::size_t b = a + 1; b < d.placement.sites.size(); ++b) {
                const int h = instance.network.hop_distance(d.placement.sites[a].cloudlet,
                                                            d.placement.sites[b].cloudlet);
                if (h >= 0) {
                    pair_hops += h;
                    ++pairs;
                }
            }
        }
        if (pairs > 0) hops += pair_hops / static_cast<double>(pairs);

        if (instance.requests[i].source.valid() && !d.placement.sites.empty()) {
            int nearest = -1;
            for (const core::Site& s : d.placement.sites) {
                const int h =
                    instance.network.hop_distance_from(instance.requests[i].source,
                                                       s.cloudlet);
                if (h >= 0 && (nearest < 0 || h < nearest)) nearest = h;
            }
            if (nearest >= 0) {
                access_hops += nearest;
                ++with_source;
            }
        }

        const double avail =
            VNFR_CHECK_PROB(analytic_availability(instance, instance.requests[i], d.placement));
        availability += avail;
        stats.min_slack = std::min(stats.min_slack, avail - instance.requests[i].requirement);
    }
    if (stats.admitted > 0) {
        const auto n = static_cast<double>(stats.admitted);
        stats.mean_sites = sites / n;
        stats.mean_replicas = replicas / n;
        stats.mean_pairwise_hops = hops / n;
        stats.mean_availability = availability / n;
        if (with_source > 0) {
            stats.mean_access_hops = access_hops / static_cast<double>(with_source);
        }
    } else {
        stats.min_slack = 0.0;
    }
    return stats;
}

std::vector<double> cloudlet_utilizations(const edge::ResourceLedger& ledger) {
    std::vector<double> out;
    out.reserve(ledger.cloudlet_count());
    for (std::size_t j = 0; j < ledger.cloudlet_count(); ++j) {
        out.push_back(ledger.mean_utilization(CloudletId{static_cast<std::int64_t>(j)}));
    }
    return out;
}

double total_revenue(const core::Instance& instance,
                     const std::vector<core::Decision>& decisions) {
    if (decisions.size() != instance.requests.size())
        throw std::invalid_argument("total_revenue: decisions/requests size mismatch");
    double revenue = 0.0;
    for (std::size_t i = 0; i < decisions.size(); ++i) {
        if (decisions[i].admitted) revenue += instance.requests[i].payment;
    }
    return revenue;
}

}  // namespace vnfr::sim
