// EXTENSION (not in the paper): a hybrid scheduler that chooses, per
// request, between the on-site and the off-site backup scheme.
//
// Section I of the paper frames the two schemes as a trade-off — on-site
// gives fast local failover but is capped by the cloudlet's own
// reliability; off-site survives cloudlet failures but pays inter-cloudlet
// traffic. A provider running both can pick whichever is cheaper *at
// current prices* for each request:
//
//   1. Price the best on-site option exactly as Algorithm 1 does
//      (arg-min_j sum_t N_ij c(f_i) lambda^on_tj over feasible cloudlets).
//   2. Price the best off-site option exactly as Algorithm 2 does
//      (cheapest-w_j site set meeting R_i), costing it at its own duals:
//      sum_{j in S} c(f_i) sum_t lambda^off_tj.
//   3. Admit via the affordable option with the larger profit
//      pay_i - price; update only the chosen scheme's duals.
//
// Both schemes share one capacity ledger (a cloudlet's compute serves both
// kinds of placements), which is always enforced.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "edge/resource_ledger.hpp"

namespace vnfr::core {

struct HybridPrimalDualConfig {
    /// Dual-capacity scales for the two pricing subsystems (see the
    /// corresponding fields on Onsite-/OffsitePrimalDualConfig); 0 = auto.
    double onsite_dual_capacity_scale{0.0};
    double offsite_dual_capacity_scale{0.0};
};

class HybridPrimalDual final : public OnlineScheduler {
  public:
    explicit HybridPrimalDual(const Instance& instance, HybridPrimalDualConfig config = {});

    Decision decide(const workload::Request& request) override;
    [[nodiscard]] const edge::ResourceLedger& ledger() const override { return ledger_; }
    [[nodiscard]] std::string_view name() const override { return "hybrid-primal-dual"; }

    /// How many admissions went to each scheme so far.
    [[nodiscard]] std::size_t onsite_admissions() const { return onsite_admissions_; }
    [[nodiscard]] std::size_t offsite_admissions() const { return offsite_admissions_; }

  private:
    struct OnsiteOption {
        CloudletId cloudlet;
        int replicas{0};
        double price{0};
    };
    struct OffsiteOption {
        std::vector<CloudletId> sites;
        double price{0};
    };

    [[nodiscard]] std::optional<OnsiteOption> price_onsite(
        const workload::Request& request) const;
    [[nodiscard]] std::optional<OffsiteOption> price_offsite(
        const workload::Request& request) const;
    void admit_onsite(const workload::Request& request, const OnsiteOption& option);
    void admit_offsite(const workload::Request& request, const OffsiteOption& option);

    const Instance& instance_;
    edge::ResourceLedger ledger_;
    double onsite_scale_{1.0};
    double offsite_scale_{1.0};
    std::vector<std::vector<double>> lambda_onsite_;   ///< [cloudlet][slot]
    std::vector<std::vector<double>> lambda_offsite_;  ///< [cloudlet][slot]
    std::size_t onsite_admissions_{0};
    std::size_t offsite_admissions_{0};
};

}  // namespace vnfr::core
