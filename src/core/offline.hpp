// Offline benchmark solvers (the paper's CPLEX runs).
//
// Builds the paper's ILP formulations and solves them with the in-repo
// simplex + branch-and-bound:
//   * on-site: Eqs. (4)-(8)   — objective (6), capacity (4), assignment (5)
//   * off-site: Eqs. (48)-(53) — the log-linearized reformulation of the
//     INP, with the per-request lower bound L_i = sum_j ln(1 - r_f r_cj)
//     (tighter than, and equivalent to, the paper's global constant L).
//
// The LP relaxation optimum is always reported: it upper-bounds the ILP
// optimum, so online-vs-OPT ratios computed against it are conservative.
// Branch-and-bound is optionally run on top (exact when it proves the tree,
// best-incumbent otherwise).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/instance.hpp"
#include "opt/branch_and_bound.hpp"
#include "opt/lp.hpp"
#include "opt/simplex.hpp"

namespace vnfr::core {

enum class Scheme { kOnsite, kOffsite };

/// The ILP/LP model of an instance plus the variable bookkeeping needed to
/// interpret a solution vector.
struct OfflineModel {
    opt::LinearProgram lp;
    /// x_vars[i] is the column of X_i.
    std::vector<std::size_t> x_vars;
    /// y_vars[i][j] is the column of Y_ij, or nullopt when placing request
    /// i on cloudlet j is a priori infeasible (on-site: r(c_j) <= R_i).
    std::vector<std::vector<std::optional<std::size_t>>> y_vars;
    /// All X and Y columns, i.e. the ILP's binary variables.
    std::vector<std::size_t> binaries;
};

OfflineModel build_onsite_model(const Instance& instance);

/// `anchor_rejected_requests` controls the paper's rows (51), which force
/// Y_ij = 0 whenever X_i = 0. They pin down the *solution* (no spurious
/// placements for rejected requests) but do not change the optimal *value*:
/// any feasible solution can drop a rejected request's placements without
/// affecting revenue or feasibility. They also make the LP heavily
/// degenerate (each pairs up with its row (50) over identical
/// coefficients), slowing the simplex by >20x at evaluation sizes — so the
/// value-only offline solver omits them.
OfflineModel build_offsite_model(const Instance& instance,
                                 bool anchor_rejected_requests = true);

struct OfflineConfig {
    /// When false only the LP relaxation is solved.
    bool run_ilp{true};
    opt::BnbOptions bnb{};
    opt::SimplexOptions lp{};
};

struct OfflineResult {
    bool lp_optimal{false};
    double lp_bound{0};  ///< LP relaxation optimum (upper bound on OPT)
    bool has_ilp{false};
    double ilp_value{0};  ///< best integral revenue found
    bool ilp_proven{false};
    std::size_t bnb_nodes{0};
};

/// Solves the offline problem for `instance` under `scheme`.
OfflineResult solve_offline(const Instance& instance, Scheme scheme,
                            const OfflineConfig& config = {});

}  // namespace vnfr::core
