#include "sim/scenarios.hpp"

namespace vnfr::sim {

core::InstanceConfig paper_environment(std::size_t request_count) {
    core::InstanceConfig cfg;
    cfg.topology = "geant";
    cfg.cloudlets.count = 8;
    // Capacities large relative to a single placement's demand (the regime
    // of the primal-dual analysis: cap >> a) but small enough that the
    // network is ~2.5x over-subscribed at n = 800, where the admission
    // policies separate.
    cfg.cloudlets.capacity_min = 40;
    cfg.cloudlets.capacity_max = 60;
    cfg.cloudlets.reliability_min = 0.95;
    cfg.cloudlets.reliability_max = 0.999;
    cfg.workload.horizon = 24;
    cfg.workload.count = request_count;
    cfg.workload.duration_min = 4;
    cfg.workload.duration_max = 16;
    cfg.workload.requirement_min = 0.90;
    cfg.workload.requirement_max = 0.97;
    cfg.workload.payment_rate_min = 1.0;
    cfg.workload.payment_rate_max = 5.0;
    return cfg;
}

core::InstanceConfig golden_environment(std::size_t request_count) {
    core::InstanceConfig cfg = paper_environment(request_count);
    cfg.cloudlets.count = 4;
    cfg.cloudlets.capacity_min = 20;
    cfg.cloudlets.capacity_max = 30;
    cfg.workload.horizon = 12;
    cfg.workload.duration_min = 2;
    cfg.workload.duration_max = 8;
    return cfg;
}

InstanceFactory make_config_factory(core::InstanceConfig config) {
    return [config](common::Rng& rng) { return core::make_instance(config, rng); };
}

}  // namespace vnfr::sim
