#include "net/shortest_path.hpp"

#include <algorithm>
#include <queue>
#include <set>
#include <stdexcept>

namespace vnfr::net {

namespace {

struct HeapEntry {
    double dist;
    NodeId node;
    friend bool operator>(const HeapEntry& a, const HeapEntry& b) { return a.dist > b.dist; }
};

/// Dijkstra that can mask out nodes and edges (needed by Yen's spur search).
ShortestPathTree dijkstra_masked(const Graph& g, NodeId source,
                                 const std::vector<bool>* banned_nodes,
                                 const std::set<std::pair<std::int64_t, std::int64_t>>* banned_edges) {
    if (!g.has_node(source)) throw std::invalid_argument("dijkstra: unknown source");
    const std::size_t n = g.node_count();
    ShortestPathTree tree;
    tree.source = source;
    tree.distance.assign(n, kUnreachable);
    tree.parent.assign(n, NodeId{});
    std::vector<bool> done(n, false);

    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
    tree.distance[source.index()] = 0.0;
    heap.push({0.0, source});
    while (!heap.empty()) {
        const auto [dist, u] = heap.top();
        heap.pop();
        if (done[u.index()]) continue;
        done[u.index()] = true;
        for (const Adjacency& adj : g.neighbors(u)) {
            const NodeId v = adj.neighbor;
            if (banned_nodes && (*banned_nodes)[v.index()]) continue;
            if (banned_edges) {
                const auto key = std::minmax(u.value, v.value);
                if (banned_edges->contains({key.first, key.second})) continue;
            }
            const double cand = dist + adj.weight;
            if (cand < tree.distance[v.index()]) {
                tree.distance[v.index()] = cand;
                tree.parent[v.index()] = u;
                heap.push({cand, v});
            }
        }
    }
    return tree;
}

}  // namespace

std::vector<NodeId> ShortestPathTree::path_to(NodeId target) const {
    if (!target.valid() || target.index() >= distance.size() ||
        distance[target.index()] == kUnreachable) {
        return {};
    }
    std::vector<NodeId> path;
    for (NodeId v = target; v.valid(); v = parent[v.index()]) {
        path.push_back(v);
        if (v == source) break;
    }
    std::reverse(path.begin(), path.end());
    return path;
}

ShortestPathTree dijkstra(const Graph& g, NodeId source) {
    return dijkstra_masked(g, source, nullptr, nullptr);
}

std::vector<int> bfs_hops(const Graph& g, NodeId source) {
    if (!g.has_node(source)) throw std::invalid_argument("bfs_hops: unknown source");
    std::vector<int> hops(g.node_count(), -1);
    std::queue<NodeId> q;
    hops[source.index()] = 0;
    q.push(source);
    while (!q.empty()) {
        const NodeId u = q.front();
        q.pop();
        for (const Adjacency& adj : g.neighbors(u)) {
            if (hops[adj.neighbor.index()] == -1) {
                hops[adj.neighbor.index()] = hops[u.index()] + 1;
                q.push(adj.neighbor);
            }
        }
    }
    return hops;
}

std::vector<std::vector<double>> all_pairs_distances(const Graph& g) {
    std::vector<std::vector<double>> out;
    out.reserve(g.node_count());
    for (std::size_t v = 0; v < g.node_count(); ++v) {
        out.push_back(dijkstra(g, NodeId{static_cast<std::int64_t>(v)}).distance);
    }
    return out;
}

std::vector<std::vector<int>> all_pairs_hops(const Graph& g) {
    std::vector<std::vector<int>> out;
    out.reserve(g.node_count());
    for (std::size_t v = 0; v < g.node_count(); ++v) {
        out.push_back(bfs_hops(g, NodeId{static_cast<std::int64_t>(v)}));
    }
    return out;
}

std::vector<WeightedPath> k_shortest_paths(const Graph& g, NodeId source, NodeId target,
                                           std::size_t k) {
    if (!g.has_node(source) || !g.has_node(target))
        throw std::invalid_argument("k_shortest_paths: unknown endpoint");
    std::vector<WeightedPath> result;
    if (k == 0) return result;

    const auto first_tree = dijkstra(g, source);
    auto first_nodes = first_tree.path_to(target);
    if (first_nodes.empty()) return result;
    result.push_back({std::move(first_nodes), first_tree.distance[target.index()]});

    // Candidate set ordered by weight, deduplicated by node sequence.
    auto cmp = [](const WeightedPath& a, const WeightedPath& b) {
        if (a.weight != b.weight) return a.weight < b.weight;
        return a.nodes < b.nodes;
    };
    std::set<WeightedPath, decltype(cmp)> candidates(cmp);

    while (result.size() < k) {
        const WeightedPath& prev = result.back();
        for (std::size_t i = 0; i + 1 < prev.nodes.size(); ++i) {
            const NodeId spur = prev.nodes[i];
            const std::vector<NodeId> root(prev.nodes.begin(),
                                           prev.nodes.begin() + static_cast<std::ptrdiff_t>(i) + 1);

            std::set<std::pair<std::int64_t, std::int64_t>> banned_edges;
            for (const WeightedPath& p : result) {
                if (p.nodes.size() > i &&
                    std::equal(root.begin(), root.end(), p.nodes.begin())) {
                    if (p.nodes.size() > i + 1) {
                        const auto key = std::minmax(p.nodes[i].value, p.nodes[i + 1].value);
                        banned_edges.insert({key.first, key.second});
                    }
                }
            }
            std::vector<bool> banned_nodes(g.node_count(), false);
            for (std::size_t j = 0; j < i; ++j) banned_nodes[prev.nodes[j].index()] = true;

            const auto spur_tree = dijkstra_masked(g, spur, &banned_nodes, &banned_edges);
            auto spur_path = spur_tree.path_to(target);
            if (spur_path.empty()) continue;

            WeightedPath total;
            total.nodes = root;
            total.nodes.insert(total.nodes.end(), spur_path.begin() + 1, spur_path.end());
            double w = spur_tree.distance[target.index()];
            for (std::size_t j = 0; j + 1 < root.size(); ++j) {
                w += *g.edge_weight(root[j], root[j + 1]);
            }
            total.weight = w;
            candidates.insert(std::move(total));
        }
        if (candidates.empty()) break;
        result.push_back(*candidates.begin());
        candidates.erase(candidates.begin());
    }
    return result;
}

}  // namespace vnfr::net
