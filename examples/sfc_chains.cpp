// Service function chains (extension): schedule multi-VNF chain requests
// on-site with per-function replica sizing, compare the primal-dual
// pricing against the reliability-greedy baseline, and show how replicas
// are distributed along a chain.
//
//   $ ./sfc_chains [num_chains] [seed]
#include <cstdlib>
#include <iostream>

#include "core/instance.hpp"
#include "report/table.hpp"
#include "sfc/chain_reliability.hpp"
#include "sfc/chain_scheduler.hpp"
#include "sfc/chain_workload.hpp"

using namespace vnfr;

int main(int argc, char** argv) {
    const std::size_t num_chains =
        argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 250;
    const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 5;

    common::Rng rng(seed);
    core::InstanceConfig cfg;
    cfg.topology = "nsfnet";
    cfg.cloudlets.count = 8;
    cfg.cloudlets.capacity_min = 60;
    cfg.cloudlets.capacity_max = 90;
    cfg.workload.count = 0;  // chain workload replaces single-VNF requests
    cfg.workload.horizon = 24;
    const core::Instance instance = core::make_instance(cfg, rng);

    sfc::ChainWorkloadConfig chain_cfg;
    chain_cfg.horizon = instance.horizon;
    chain_cfg.count = num_chains;
    const auto chains = sfc::generate_chains(chain_cfg, instance.catalog, rng);

    std::cout << "SFC scheduling (extension): nsfnet, " << instance.network.cloudlet_count()
              << " cloudlets, " << chains.size() << " chains of "
              << chain_cfg.chain_length_min << "-" << chain_cfg.chain_length_max
              << " functions\n\n";

    report::Table table({"algorithm", "revenue", "accepted", "peak load"});
    sfc::ChainPrimalDual pd(instance);
    sfc::ChainGreedy greedy(instance);
    sfc::ChainScheduleResult pd_result;
    for (sfc::ChainScheduler* s : {static_cast<sfc::ChainScheduler*>(&pd),
                                   static_cast<sfc::ChainScheduler*>(&greedy)}) {
        const sfc::ChainScheduleResult result = sfc::run_chains(instance, chains, *s);
        if (s == &pd) pd_result = result;
        table.add_row({std::string(s->name()), report::format_double(result.revenue, 1),
                       std::to_string(result.admitted) + "/" + std::to_string(chains.size()),
                       report::format_double(result.max_load_factor, 3)});
    }
    std::cout << table.to_text();

    std::cout << "\nsample chain placements (primal-dual):\n";
    report::Table placements({"chain", "functions (replicas)", "R", "availability"});
    std::size_t shown = 0;
    for (std::size_t i = 0; i < pd_result.decisions.size() && shown < 6; ++i) {
        const sfc::ChainDecision& d = pd_result.decisions[i];
        if (!d.admitted) continue;
        std::string desc;
        std::vector<double> rels;
        for (std::size_t k = 0; k < chains[i].functions.size(); ++k) {
            if (!desc.empty()) desc += " -> ";
            desc += instance.catalog.get(chains[i].functions[k]).name + "(x" +
                    std::to_string(d.placement.replicas[k]) + ")";
            rels.push_back(instance.catalog.reliability(chains[i].functions[k]));
        }
        const double avail = sfc::chain_onsite_availability(
            instance.network.cloudlet(d.placement.cloudlet).reliability, rels,
            d.placement.replicas);
        placements.add_row({std::to_string(chains[i].id.value), desc,
                            report::format_double(chains[i].requirement, 3),
                            report::format_double(avail, 4)});
        ++shown;
    }
    std::cout << placements.to_text()
              << "\nless reliable functions in a chain receive more replicas; every\n"
                 "admitted chain's availability clears its requirement.\n";
    return 0;
}
