#include "sfc/chain_workload.hpp"

#include <algorithm>
#include <stdexcept>

namespace vnfr::sfc {

std::vector<ChainRequest> generate_chains(const ChainWorkloadConfig& cfg,
                                          const vnf::Catalog& catalog, common::Rng& rng) {
    if (catalog.empty()) throw std::invalid_argument("generate_chains: empty catalog");
    if (cfg.horizon <= 0) throw std::invalid_argument("generate_chains: bad horizon");
    if (cfg.chain_length_min < 1 || cfg.chain_length_max < cfg.chain_length_min)
        throw std::invalid_argument("generate_chains: bad chain length range");
    if (cfg.duration_min < 1 || cfg.duration_max < cfg.duration_min ||
        cfg.duration_max > cfg.horizon)
        throw std::invalid_argument("generate_chains: bad duration range");
    if (cfg.requirement_min <= 0.0 || cfg.requirement_max >= 1.0 ||
        cfg.requirement_max < cfg.requirement_min)
        throw std::invalid_argument("generate_chains: bad requirement range");
    if (cfg.payment_rate_min <= 0.0 || cfg.payment_rate_max < cfg.payment_rate_min)
        throw std::invalid_argument("generate_chains: bad payment-rate range");

    std::vector<ChainRequest> out;
    out.reserve(cfg.count);
    for (std::size_t i = 0; i < cfg.count; ++i) {
        ChainRequest r;
        r.id = ChainId{static_cast<std::int64_t>(i)};
        const auto length = static_cast<std::size_t>(
            rng.uniform_int(static_cast<std::int64_t>(cfg.chain_length_min),
                            static_cast<std::int64_t>(cfg.chain_length_max)));
        if (length <= catalog.size()) {
            // Distinct functions, in selection order.
            const auto picks = rng.sample_without_replacement(catalog.size(), length);
            for (const std::size_t p : picks) {
                r.functions.push_back(VnfTypeId{static_cast<std::int64_t>(p)});
            }
        } else {
            for (std::size_t k = 0; k < length; ++k) {
                r.functions.push_back(
                    VnfTypeId{rng.uniform_int(0, static_cast<std::int64_t>(catalog.size()) - 1)});
            }
        }
        r.requirement = rng.uniform(cfg.requirement_min, cfg.requirement_max);
        r.duration =
            static_cast<TimeSlot>(rng.uniform_int(cfg.duration_min, cfg.duration_max));
        r.arrival = std::min(static_cast<TimeSlot>(rng.uniform_int(0, cfg.horizon - 1)),
                             cfg.horizon - r.duration);
        double base_compute = 0.0;
        for (const VnfTypeId f : r.functions) base_compute += catalog.compute_units(f);
        const double rate = rng.uniform(cfg.payment_rate_min, cfg.payment_rate_max);
        r.payment = rate * static_cast<double>(r.duration) * base_compute * r.requirement;
        out.push_back(std::move(r));
    }
    std::sort(out.begin(), out.end(), [](const ChainRequest& a, const ChainRequest& b) {
        if (a.arrival != b.arrival) return a.arrival < b.arrival;
        return a.id < b.id;
    });
    return out;
}

}  // namespace vnfr::sfc
