# Empty dependencies file for ablation_failover_dynamics.
# This may be replaced when dependencies are built.
