#include "opt/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vnfr::opt {

namespace {

/// Standard computational form shared by the two phases:
///     min cost^T z   s.t.  M z = b,  0 <= z_j <= ub_j
/// where z = [shifted structural vars | slacks/surplus | artificials].
/// Variable bounds are handled natively by the bounded-variable simplex —
/// they never become rows.
struct StandardForm {
    std::size_t rows{0};
    std::size_t structural_count{0};
    std::vector<std::vector<std::pair<std::size_t, double>>> columns;  ///< CSC
    std::vector<double> cost;       ///< phase-2 cost (min sense)
    std::vector<double> ub;         ///< per column; kInfinity when free above
    std::vector<char> artificial;   ///< per column
    std::vector<double> b;          ///< >= 0 after normalization
    std::vector<double> row_sign;   ///< +1/-1 applied during normalization
    std::size_t original_rows{0};
    std::vector<double> lower;      ///< per user variable (the shift)
};

StandardForm build_standard_form(const LinearProgram& lp) {
    StandardForm sf;
    const std::size_t n = lp.variable_count();
    sf.structural_count = n;
    sf.lower.resize(n);
    sf.rows = lp.row_count();
    sf.original_rows = lp.row_count();

    for (std::size_t j = 0; j < n; ++j) {
        sf.lower[j] = lp.lower_bound(j);
        if (lp.upper_bound(j) < sf.lower[j])
            throw std::invalid_argument("simplex: upper < lower");
    }

    struct WorkRow {
        Relation relation;
        double rhs;
    };
    std::vector<WorkRow> work(sf.rows);
    sf.b.resize(sf.rows);
    sf.row_sign.assign(sf.rows, 1.0);

    for (std::size_t k = 0; k < sf.rows; ++k) {
        const Row& r = lp.row(k);
        double rhs = r.rhs;
        for (const auto& [var, coeff] : r.terms) rhs -= coeff * sf.lower[var];
        Relation rel = r.relation;
        double sign = 1.0;
        if (rhs < 0.0) {
            sign = -1.0;
            rhs = -rhs;
            if (rel == Relation::kLe) rel = Relation::kGe;
            else if (rel == Relation::kGe) rel = Relation::kLe;
        }
        work[k] = WorkRow{rel, rhs};
        sf.row_sign[k] = sign;
        sf.b[k] = rhs;
    }

    // Structural columns (phase-2 cost = -c to minimize), shifted bounds.
    sf.columns.assign(n, {});
    sf.cost.assign(n, 0.0);
    sf.ub.assign(n, kInfinity);
    sf.artificial.assign(n, 0);
    for (std::size_t j = 0; j < n; ++j) {
        sf.cost[j] = -lp.objective_coefficient(j);
        const double u = lp.upper_bound(j);
        sf.ub[j] = u == kInfinity ? kInfinity : u - sf.lower[j];
    }
    for (std::size_t k = 0; k < lp.row_count(); ++k) {
        for (const auto& [var, coeff] : lp.row(k).terms) {
            sf.columns[var].push_back({k, sf.row_sign[k] * coeff});
        }
    }

    // Slack (<=) and surplus (>=) columns; artificials are appended when
    // the initial basis is installed.
    for (std::size_t k = 0; k < sf.rows; ++k) {
        const Relation rel = work[k].relation;
        if (rel == Relation::kLe) {
            sf.columns.push_back({{k, 1.0}});
            sf.cost.push_back(0.0);
            sf.ub.push_back(kInfinity);
            sf.artificial.push_back(0);
        } else if (rel == Relation::kGe) {
            sf.columns.push_back({{k, -1.0}});
            sf.cost.push_back(0.0);
            sf.ub.push_back(kInfinity);
            sf.artificial.push_back(0);
        }
    }
    return sf;
}

enum class VarStatus : char { kBasic, kAtLower, kAtUpper };

class RevisedSimplex {
  public:
    RevisedSimplex(StandardForm sf, const SimplexOptions& opt)
        : sf_(std::move(sf)), opt_(opt), m_(sf_.rows) {}

    LpSolution run(const LinearProgram& lp);

  private:
    enum class StepResult { kOptimal, kUnbounded, kMoved };

    void install_initial_basis();
    void refactorize();
    void compute_duals(const std::vector<double>& cost, std::vector<double>& y) const;
    StepResult step(const std::vector<double>& cost, bool blands);
    void drive_out_artificials();
    [[nodiscard]] double reduced_cost(std::size_t j, const std::vector<double>& cost,
                                      const std::vector<double>& y) const;
    void ftran(std::size_t j, std::vector<double>& w) const;
    void pivot(std::size_t entering, std::size_t leaving_row, double entering_value,
               VarStatus leaving_status, const std::vector<double>& w);
    [[nodiscard]] double objective_of(const std::vector<double>& cost) const;
    [[nodiscard]] double nonbasic_value(std::size_t j) const {
        return status_[j] == VarStatus::kAtUpper ? sf_.ub[j] : 0.0;
    }

    StandardForm sf_;
    SimplexOptions opt_;
    std::size_t m_;

    std::vector<std::size_t> basis_;  ///< column per row
    std::vector<VarStatus> status_;   ///< per column
    std::vector<double> binv_;        ///< dense row-major m x m
    std::vector<double> xb_;          ///< basic variable values
    std::vector<char> allowed_;       ///< columns allowed to enter
    std::size_t iterations_{0};
    std::size_t pivots_since_refactor_{0};
    // Scratch buffers reused across iterations.
    std::vector<double> y_scratch_;
    std::vector<double> w_scratch_;
};

void RevisedSimplex::install_initial_basis() {
    basis_.assign(m_, 0);
    std::vector<char> has_basic(m_, 0);

    // Slacks (+1 columns) form the natural starting basis where available.
    for (std::size_t j = sf_.structural_count; j < sf_.columns.size(); ++j) {
        const auto& col = sf_.columns[j];
        if (col.size() == 1 && col[0].second == 1.0 &&  // vnfr-lint: allow(float-eq) slack columns carry a literal 1.0 coefficient
            !has_basic[col[0].first]) {
            basis_[col[0].first] = j;
            has_basic[col[0].first] = 1;
        }
    }
    // Artificials cover >= and = rows.
    for (std::size_t k = 0; k < m_; ++k) {
        if (has_basic[k]) continue;
        sf_.columns.push_back({{k, 1.0}});
        sf_.cost.push_back(0.0);
        sf_.ub.push_back(kInfinity);
        sf_.artificial.push_back(1);
        basis_[k] = sf_.columns.size() - 1;
    }

    status_.assign(sf_.columns.size(), VarStatus::kAtLower);
    for (const std::size_t j : basis_) status_[j] = VarStatus::kBasic;

    binv_.assign(m_ * m_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) binv_[i * m_ + i] = 1.0;
    xb_ = sf_.b;  // all structural nonbasics start at lower (0)
}

void RevisedSimplex::refactorize() {
    // Invert the basis matrix with Gauss-Jordan and partial pivoting.
    std::vector<double> mat(m_ * m_, 0.0);
    for (std::size_t col = 0; col < m_; ++col) {
        for (const auto& [row, val] : sf_.columns[basis_[col]]) {
            mat[row * m_ + col] = val;
        }
    }
    std::vector<double> inv(m_ * m_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) inv[i * m_ + i] = 1.0;

    for (std::size_t col = 0; col < m_; ++col) {
        std::size_t pivot_row = col;
        double best = std::fabs(mat[col * m_ + col]);
        for (std::size_t r = col + 1; r < m_; ++r) {
            const double v = std::fabs(mat[r * m_ + col]);
            if (v > best) {
                best = v;
                pivot_row = r;
            }
        }
        if (best < 1e-12) throw std::runtime_error("simplex: singular basis");
        if (pivot_row != col) {
            for (std::size_t c = 0; c < m_; ++c) {
                std::swap(mat[pivot_row * m_ + c], mat[col * m_ + c]);
                std::swap(inv[pivot_row * m_ + c], inv[col * m_ + c]);
            }
        }
        const double p = mat[col * m_ + col];
        for (std::size_t c = 0; c < m_; ++c) {
            mat[col * m_ + c] /= p;
            inv[col * m_ + c] /= p;
        }
        for (std::size_t r = 0; r < m_; ++r) {
            if (r == col) continue;
            const double f = mat[r * m_ + col];
            if (f == 0.0) continue;  // vnfr-lint: allow(float-eq) exact-zero skip only avoids a no-op row update
            for (std::size_t c = 0; c < m_; ++c) {
                mat[r * m_ + c] -= f * mat[col * m_ + c];
                inv[r * m_ + c] -= f * inv[col * m_ + c];
            }
        }
    }
    binv_ = std::move(inv);

    // Recompute basic values: xb = B^-1 (b - sum_{j at upper} a_j ub_j).
    std::vector<double> rhs = sf_.b;
    for (std::size_t j = 0; j < sf_.columns.size(); ++j) {
        if (status_[j] != VarStatus::kAtUpper) continue;
        for (const auto& [row, val] : sf_.columns[j]) rhs[row] -= val * sf_.ub[j];
    }
    for (std::size_t i = 0; i < m_; ++i) {
        double v = 0.0;
        for (std::size_t r = 0; r < m_; ++r) v += binv_[i * m_ + r] * rhs[r];
        xb_[i] = v;
    }
    pivots_since_refactor_ = 0;
}

void RevisedSimplex::compute_duals(const std::vector<double>& cost,
                                   std::vector<double>& y) const {
    y.assign(m_, 0.0);
    for (std::size_t r = 0; r < m_; ++r) {
        const double cb = cost[basis_[r]];
        if (cb == 0.0) continue;  // vnfr-lint: allow(float-eq) exact-zero skip only avoids a no-op accumulation
        const double* row = &binv_[r * m_];
        for (std::size_t i = 0; i < m_; ++i) y[i] += cb * row[i];
    }
}

double RevisedSimplex::reduced_cost(std::size_t j, const std::vector<double>& cost,
                                    const std::vector<double>& y) const {
    double d = cost[j];
    for (const auto& [row, val] : sf_.columns[j]) d -= y[row] * val;
    return d;
}

void RevisedSimplex::ftran(std::size_t j, std::vector<double>& w) const {
    w.assign(m_, 0.0);
    for (const auto& [row, val] : sf_.columns[j]) {
        const std::size_t col = row;
        for (std::size_t i = 0; i < m_; ++i) w[i] += binv_[i * m_ + col] * val;
    }
}

double RevisedSimplex::objective_of(const std::vector<double>& cost) const {
    double v = 0.0;
    for (std::size_t i = 0; i < m_; ++i) v += cost[basis_[i]] * xb_[i];
    for (std::size_t j = 0; j < sf_.columns.size(); ++j) {
        if (status_[j] == VarStatus::kAtUpper) v += cost[j] * sf_.ub[j];
    }
    return v;
}

void RevisedSimplex::pivot(std::size_t entering, std::size_t leaving_row,
                           double entering_value, VarStatus leaving_status,
                           const std::vector<double>& w) {
    const double pivot_val = w[leaving_row];
    double* prow = &binv_[leaving_row * m_];
    for (std::size_t c = 0; c < m_; ++c) prow[c] /= pivot_val;
    for (std::size_t i = 0; i < m_; ++i) {
        if (i == leaving_row) continue;
        const double f = w[i];
        if (f == 0.0) continue;  // vnfr-lint: allow(float-eq) exact-zero skip only avoids a no-op row update
        double* irow = &binv_[i * m_];
        for (std::size_t c = 0; c < m_; ++c) irow[c] -= f * prow[c];
    }

    status_[basis_[leaving_row]] = leaving_status;
    status_[entering] = VarStatus::kBasic;
    basis_[leaving_row] = entering;
    xb_[leaving_row] = entering_value;
    ++pivots_since_refactor_;
}

void RevisedSimplex::drive_out_artificials() {
    std::vector<double> w;
    for (std::size_t i = 0; i < m_; ++i) {
        if (!sf_.artificial[basis_[i]]) continue;
        for (std::size_t j = 0; j < sf_.columns.size(); ++j) {
            if (status_[j] == VarStatus::kBasic || sf_.artificial[j]) continue;
            ftran(j, w);
            if (std::fabs(w[i]) > 1e-7) {
                // Zero-level swap: the artificial sits at ~0, so replacing
                // it with column j at its current bound value keeps x fixed.
                const double keep = nonbasic_value(j);
                // The entering variable stays at its bound value; only the
                // basis bookkeeping changes.
                status_[basis_[i]] = VarStatus::kAtLower;
                status_[j] = VarStatus::kBasic;
                basis_[i] = j;
                // Update the inverse for the swapped column.
                const double pivot_val = w[i];
                double* prow = &binv_[i * m_];
                for (std::size_t c = 0; c < m_; ++c) prow[c] /= pivot_val;
                for (std::size_t r = 0; r < m_; ++r) {
                    if (r == i) continue;
                    const double f = w[r];
                    if (f == 0.0) continue;  // vnfr-lint: allow(float-eq) exact-zero skip only avoids a no-op row update
                    double* rrow = &binv_[r * m_];
                    for (std::size_t c = 0; c < m_; ++c) rrow[c] -= f * prow[c];
                }
                xb_[i] = keep;
                ++pivots_since_refactor_;
                break;
            }
        }
    }
}

RevisedSimplex::StepResult RevisedSimplex::step(const std::vector<double>& cost,
                                                bool blands) {
    compute_duals(cost, y_scratch_);
    const std::vector<double>& y = y_scratch_;

    // Pricing. A nonbasic-at-lower column improves when d_j < 0 (increase);
    // a nonbasic-at-upper column improves when d_j > 0 (decrease).
    std::size_t entering = sf_.columns.size();
    double best = opt_.tolerance;
    for (std::size_t j = 0; j < sf_.columns.size(); ++j) {
        if (status_[j] == VarStatus::kBasic || !allowed_[j]) continue;
        if (sf_.ub[j] <= opt_.tolerance) continue;  // fixed at 0: can't move
        const double d = reduced_cost(j, cost, y);
        const double gain = status_[j] == VarStatus::kAtLower ? -d : d;
        if (blands) {
            if (gain > opt_.tolerance) {
                entering = j;
                break;
            }
        } else if (gain > best) {
            best = gain;
            entering = j;
        }
    }
    if (entering == sf_.columns.size()) return StepResult::kOptimal;

    // sigma = +1: entering increases from lower; -1: decreases from upper.
    const double sigma = status_[entering] == VarStatus::kAtLower ? 1.0 : -1.0;
    ftran(entering, w_scratch_);
    const std::vector<double>& w = w_scratch_;

    // Ratio test. x_B changes by -sigma * t * w as the entering variable
    // moves t >= 0 away from its bound. Limits: a basic variable hits 0, a
    // basic variable hits its finite upper bound, or the entering variable
    // reaches its own opposite bound (a "bound flip", no basis change).
    double t_max = sf_.ub[entering];  // kInfinity when the entering is free above
    std::size_t leaving = m_;         // m_ means "bound flip"
    VarStatus leaving_status = VarStatus::kAtLower;
    const auto consider = [&](std::size_t i, double t, VarStatus status) {
        if (t < t_max - 1e-12) {
            t_max = std::max(0.0, t);
            leaving = i;
            leaving_status = status;
            return;
        }
        // Tie: prefer a basis change only over another basis change (keeping
        // a pure bound flip is cheaper); Bland takes the smallest basis
        // column, Dantzig the larger pivot element for stability.
        if (t <= t_max + 1e-12 && leaving != m_) {
            const bool prefer = blands ? basis_[i] < basis_[leaving]
                                       : std::fabs(w[i]) > std::fabs(w[leaving]);
            if (prefer) {
                leaving = i;
                leaving_status = status;
            }
        }
    };
    for (std::size_t i = 0; i < m_; ++i) {
        const double delta = sigma * w[i];
        if (delta > opt_.tolerance) {
            // Basic variable i decreases toward 0.
            consider(i, std::max(0.0, xb_[i]) / delta, VarStatus::kAtLower);
        } else if (delta < -opt_.tolerance) {
            // Basic variable i increases toward its finite upper bound.
            const double u = sf_.ub[basis_[i]];
            if (u == kInfinity) continue;
            consider(i, std::max(0.0, u - xb_[i]) / (-delta), VarStatus::kAtUpper);
        }
    }
    if (t_max == kInfinity) return StepResult::kUnbounded;
    t_max = std::max(0.0, t_max);

    // Apply the move to the basic values.
    for (std::size_t i = 0; i < m_; ++i) {
        if (w[i] != 0.0) xb_[i] -= sigma * t_max * w[i];  // vnfr-lint: allow(float-eq) exact-zero skip only avoids a no-op move
    }

    if (leaving == m_) {
        // Bound flip: the entering variable runs to its opposite bound.
        status_[entering] = status_[entering] == VarStatus::kAtLower
                                ? VarStatus::kAtUpper
                                : VarStatus::kAtLower;
        return StepResult::kMoved;
    }

    // Entering becomes basic at its new value.
    const double entering_value =
        status_[entering] == VarStatus::kAtLower ? t_max : sf_.ub[entering] - t_max;
    pivot(entering, leaving, entering_value, leaving_status, w);
    return StepResult::kMoved;
}

LpSolution RevisedSimplex::run(const LinearProgram& lp) {
    LpSolution out;
    install_initial_basis();

    std::vector<double> phase1_cost(sf_.columns.size(), 0.0);
    bool any_artificial = false;
    for (std::size_t j = 0; j < sf_.columns.size(); ++j) {
        if (sf_.artificial[j]) {
            phase1_cost[j] = 1.0;
            any_artificial = true;
        }
    }
    allowed_.assign(sf_.columns.size(), 1);

    if (any_artificial) {
        std::size_t degenerate_run = 0;
        while (iterations_ < opt_.max_iterations) {
            if (pivots_since_refactor_ >= opt_.refactor_interval) refactorize();
            const double before = objective_of(phase1_cost);
            const StepResult res = step(phase1_cost, degenerate_run > opt_.degenerate_limit);
            ++iterations_;
            if (res == StepResult::kOptimal) break;
            if (res == StepResult::kUnbounded)
                throw std::runtime_error("simplex: phase-1 unbounded (bug)");
            degenerate_run = (before - objective_of(phase1_cost) > opt_.tolerance)
                                 ? 0
                                 : degenerate_run + 1;
        }
        const double infeasibility = objective_of(phase1_cost);
        if (iterations_ >= opt_.max_iterations && infeasibility > 1e-6) {
            out.status = SolveStatus::kIterationLimit;
            out.iterations = iterations_;
            return out;
        }
        if (infeasibility > 1e-6) {
            out.status = SolveStatus::kInfeasible;
            out.iterations = iterations_;
            return out;
        }
        for (std::size_t j = 0; j < sf_.columns.size(); ++j) {
            if (sf_.artificial[j]) allowed_[j] = 0;
        }
        drive_out_artificials();
    }

    std::size_t degenerate_run = 0;
    SolveStatus status = SolveStatus::kIterationLimit;
    while (iterations_ < opt_.max_iterations) {
        if (pivots_since_refactor_ >= opt_.refactor_interval) refactorize();
        const double before = objective_of(sf_.cost);
        const StepResult res = step(sf_.cost, degenerate_run > opt_.degenerate_limit);
        ++iterations_;
        if (res == StepResult::kOptimal) {
            status = SolveStatus::kOptimal;
            break;
        }
        if (res == StepResult::kUnbounded) {
            status = SolveStatus::kUnbounded;
            break;
        }
        degenerate_run =
            (before - objective_of(sf_.cost) > opt_.tolerance) ? 0 : degenerate_run + 1;
    }

    out.status = status;
    out.iterations = iterations_;
    if (status != SolveStatus::kOptimal) return out;

    // Recover user-space solution: x_j = lower_j + z_j.
    out.x.assign(lp.variable_count(), 0.0);
    for (std::size_t j = 0; j < lp.variable_count(); ++j) {
        out.x[j] = sf_.lower[j] + (status_[j] == VarStatus::kAtUpper ? sf_.ub[j] : 0.0);
    }
    for (std::size_t i = 0; i < m_; ++i) {
        if (basis_[i] < sf_.structural_count) {
            out.x[basis_[i]] = sf_.lower[basis_[i]] + xb_[i];
        }
    }
    out.objective = lp.objective_value(out.x);

    std::vector<double> y;
    compute_duals(sf_.cost, y);
    out.duals.assign(sf_.original_rows, 0.0);
    for (std::size_t k = 0; k < sf_.original_rows; ++k) {
        out.duals[k] = -sf_.row_sign[k] * y[k];
    }
    return out;
}

}  // namespace

LpSolution solve_lp(const LinearProgram& lp, const SimplexOptions& options) {
    if (lp.variable_count() == 0) {
        LpSolution out;
        out.status = SolveStatus::kOptimal;
        out.objective = 0.0;
        return out;
    }
    StandardForm sf = build_standard_form(lp);
    RevisedSimplex solver(std::move(sf), options);
    return solver.run(lp);
}

}  // namespace vnfr::opt
