// expect: header-guard, namespace
// Positive fixture: a header lacking the pragma-once guard (header-guard)
// that opens the repo namespace but never closes it with the required
// trailer comment (namespace). Both findings report line 1.

namespace vnfr::fixture {

inline int answer() { return 42; }

}
