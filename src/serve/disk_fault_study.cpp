#include "serve/disk_fault_study.hpp"

#include <cerrno>
#include <algorithm>
#include <optional>
#include <stdexcept>

#include "common/rng.hpp"
#include "core/verify.hpp"
#include "serve/admission_controller.hpp"
#include "serve/chaos_support.hpp"
#include "serve/vfs.hpp"
#include "serve/wal.hpp"
#include "serve/wal_scrubber.hpp"

namespace vnfr::serve {

namespace {

using chaos::assemble_decisions;
using chaos::DriveProgress;
using chaos::drive;
using chaos::metrics_equal;
using chaos::rebuild_queue;
using chaos::same_admitted;
using chaos::unique_admitted;

// All trial storage lives inside per-trial FaultyVfs instances, so the
// data directory is just a name in their flat namespace.
constexpr const char* kDataDir = "/faultdisk";

// RNG stream bases per trial family (disjoint from the other studies).
constexpr std::uint64_t kPatternStream = 1;
constexpr std::uint64_t kPowerCutStream = 2000;
constexpr std::uint64_t kDegradedStream = 3000;

// Plan-seed salts so no two trials share a fault stream.
constexpr std::uint64_t kPowerCutSalt = 0xD15C0C07ULL;
constexpr std::uint64_t kTransientSalt = 0xD15CF417ULL;

/// Proves the scrubber detects latent corruption: XOR one bit into a
/// durable byte of the oldest retained generation (scrubbed in strict
/// mode; a newest-generation flip could masquerade as a legal torn
/// tail), or of the snapshot when only one generation exists, then check
/// the scrub reports it — and reports clean again once flipped back.
bool prove_corruption_detection(FaultyVfs& disk) {
    std::string victim;
    for (const std::string& name : disk.list_dir(kDataDir)) {
        if (!name.starts_with("wal-") || !name.ends_with(".log")) continue;
        const std::string path = std::string(kDataDir) + "/" + name;
        if (disk.read_file(path).size() > kWalHeaderSize + 16) {
            victim = path;
            break;  // list_dir is sorted: first hit is the oldest gen
        }
    }
    const std::string newest = [&disk] {
        std::string last;
        for (const std::string& name : disk.list_dir(kDataDir)) {
            if (name.starts_with("wal-") && name.ends_with(".log")) {
                last = std::string(kDataDir) + "/" + name;
            }
        }
        return last;
    }();
    if (victim.empty() || victim == newest) {
        const std::string snapshot = std::string(kDataDir) + "/snapshot.bin";
        if (!disk.file_exists(snapshot)) return false;
        victim = snapshot;
    }
    // Flip a bit inside the first record region (never the header, whose
    // own CRC would also catch it but tests a different code path).
    const std::uint64_t offset = kWalHeaderSize + 5 < disk.read_file(victim).size()
                                     ? kWalHeaderSize + 5
                                     : 8;
    disk.corrupt_durable_byte(victim, offset, 0x10);
    const bool detected = !scrub_data_dir(disk, kDataDir).clean();
    disk.corrupt_durable_byte(victim, offset, 0x10);  // undo
    const bool clean_again = scrub_data_dir(disk, kDataDir).clean();
    return detected && clean_again;
}

}  // namespace

DiskFaultStudyResult run_disk_fault_study(const core::Instance& instance,
                                          const DiskFaultStudyConfig& config) {
    const std::vector<workload::Request>& requests = instance.requests;
    if (requests.empty()) {
        throw std::invalid_argument("disk fault study: instance has no requests");
    }

    // Same overload-inducing drain cadence as the crash studies: more
    // submissions than queue slots between drains, so faults land in
    // shed paths too.
    common::Rng pattern_rng =
        common::stream_rng(config.master_seed, kPatternStream);
    const std::size_t drain_every =
        config.queue_capacity +
        static_cast<std::size_t>(pattern_rng.uniform_int(
            1, static_cast<std::int64_t>(config.queue_capacity)));

    ServeConfig serve;
    serve.data_dir = kDataDir;
    serve.checkpoint_every = config.checkpoint_every;
    serve.queue_capacity = config.queue_capacity;
    serve.group_commit = config.group_commit;
    // Retain rotated generations: the scrubber then audits the full WAL
    // history of every trial, not just the live file.
    serve.retain_wals = true;
    serve.storage_retry.max_attempts =
        static_cast<int>(config.retry_max_attempts);

    DiskFaultStudyResult result;
    result.scheme = config.scheme;

    // Baseline: an uninterrupted run on a fault-free FaultyVfs. Its
    // mutating-op count is the power-cut domain; its write count scales
    // the degraded trials' ENOSPC onset.
    std::vector<AdmittedRecord> baseline_admitted;
    std::uint64_t baseline_writes = 0;
    {
        FaultyVfs disk;
        ServeConfig cfg = serve;
        cfg.vfs = &disk;
        AdmissionController baseline(instance, config.scheme, cfg);
        DriveProgress progress;
        drive(baseline, requests, 0, false, drain_every, progress);
        result.baseline_digest = baseline.state_digest();
        result.baseline_metrics = baseline.metrics();
        result.baseline_outcomes =
            baseline.metrics().processed + baseline.metrics().shed;
        baseline_admitted = baseline.admitted_records();
        result.baseline_capacity_ok =
            core::verify_schedule(instance,
                                  assemble_decisions(instance, baseline))
                .ok();
        result.baseline_mutating_ops = disk.op_count();
        baseline_writes = disk.stats().writes;
        result.baseline_scrub_clean = scrub_data_dir(disk, kDataDir).clean();
        result.corruption_detected = prove_corruption_detection(disk);
    }

    // Power-cut trials: cut at a mutating-op index, collapse the cache
    // to its durable view, revive, finish the trace, compare.
    const std::size_t cut_trials =
        config.exhaustive_power_cuts
            ? static_cast<std::size_t>(result.baseline_mutating_ops)
            : config.power_cut_points;
    for (std::size_t trial = 0; trial < cut_trials; ++trial) {
        common::Rng rng =
            common::stream_rng(config.master_seed, kPowerCutStream + trial);
        PowerCutTrial outcome;
        outcome.cut_at_op =
            config.exhaustive_power_cuts
                ? static_cast<std::uint64_t>(trial + 1)
                : static_cast<std::uint64_t>(rng.uniform_int(
                      1, static_cast<std::int64_t>(
                             std::max<std::uint64_t>(1, result.baseline_mutating_ops))));

        DiskFaultPlan plan;
        plan.seed = config.master_seed ^ (kPowerCutSalt + trial);
        plan.power_cut_at_op = outcome.cut_at_op;
        plan.power_cut_keeps_prefix = true;  // torn-tail crash shape
        FaultyVfs disk(plan);
        ServeConfig cfg = serve;
        cfg.vfs = &disk;

        DriveProgress progress;
        try {
            // The cut can fire inside the constructor (WAL creation is
            // mutating) — the victim scope covers both.
            AdmissionController victim(instance, config.scheme, cfg);
            drive(victim, requests, 0, false, drain_every, progress);
        } catch (const PowerLossInjected&) {
            outcome.cut_fired = true;
        }
        outcome.submitted_at_cut = progress.submitted;

        if (outcome.cut_fired) {
            // Reboot on the surviving bytes: recovery replays the
            // durable prefix (dropping any torn tail), the queue is
            // rebuilt through the normal submit path, an interrupted
            // drain refires first, then the trace completes.
            AdmissionController revived(instance, config.scheme, cfg);
            outcome.recovered_torn_tail_bytes =
                revived.recovery_stats().torn_tail_bytes;
            rebuild_queue(revived, requests, progress.submitted);
            DriveProgress rest;
            drive(revived, requests, progress.submitted, progress.in_drain,
                  drain_every, rest);

            outcome.digest_match =
                revived.state_digest() == result.baseline_digest;
            const ServeMetrics& m = revived.metrics();
            outcome.revenue_match =
                m.revenue == result.baseline_metrics.revenue &&
                m.shed_revenue == result.baseline_metrics.shed_revenue;
            outcome.metrics_match = metrics_equal(m, result.baseline_metrics);
            outcome.admitted_match =
                same_admitted(revived.admitted_records(), baseline_admitted);
            outcome.no_double_admits = unique_admitted(revived.admitted_records());
            outcome.capacity_ok =
                core::verify_schedule(instance,
                                      assemble_decisions(instance, revived))
                    .ok();
            outcome.scrub_clean = scrub_data_dir(disk, kDataDir).clean();
        }

        if (!outcome.ok()) ++result.failed_power_cut_trials;
        result.power_cut_trials.push_back(outcome);
    }

    // Transient-fault trials: seeded bursts of spurious EIO and short
    // writes; bounded retries must absorb all of them invisibly.
    for (std::size_t trial = 0; trial < config.transient_trials; ++trial) {
        TransientFaultTrial outcome;
        DiskFaultPlan plan;
        plan.seed = config.master_seed ^ (kTransientSalt + trial);
        plan.write_error_rate = 0.05;
        plan.sync_error_rate = 0.05;
        plan.short_write_rate = 0.03;
        plan.transient_failures = 1 + static_cast<int>(trial % 2);
        FaultyVfs disk(plan);
        ServeConfig cfg = serve;
        cfg.vfs = &disk;
        // A burst of length B eats B attempts per independent fire, so
        // the budget scales with the burst: a fixed budget would make
        // exhaustion — and a spurious degradation — likely over a long
        // trace once fresh draws chain onto burst continuations.
        cfg.storage_retry.max_attempts =
            static_cast<int>(config.retry_max_attempts) *
            plan.transient_failures;

        bool degraded = false;
        try {
            AdmissionController controller(instance, config.scheme, cfg);
            DriveProgress progress;
            drive(controller, requests, 0, false, drain_every, progress);
            outcome.stayed_healthy =
                controller.storage_health() == StorageHealth::kHealthy;
            outcome.retries_absorbed =
                controller.storage_stats().transient_retries;
            outcome.digest_match =
                controller.state_digest() == result.baseline_digest;
            const ServeMetrics& m = controller.metrics();
            outcome.revenue_match =
                m.revenue == result.baseline_metrics.revenue &&
                m.shed_revenue == result.baseline_metrics.shed_revenue;
            outcome.metrics_match = metrics_equal(m, result.baseline_metrics);
            outcome.admitted_match =
                same_admitted(controller.admitted_records(), baseline_admitted);
            outcome.capacity_ok =
                core::verify_schedule(instance,
                                      assemble_decisions(instance, controller))
                    .ok();
            outcome.scrub_clean = scrub_data_dir(disk, kDataDir).clean();
        } catch (const StorageDegradedError&) {
            degraded = true;  // a transient burst must never degrade
        }
        outcome.faults_injected = disk.stats().injected_errors;
        if (degraded) outcome.stayed_healthy = false;
        result.transient_faults_injected += outcome.faults_injected;
        result.transient_retries_absorbed += outcome.retries_absorbed;

        if (!outcome.ok()) ++result.failed_transient_trials;
        result.transient_trials.push_back(outcome);
    }

    // Degraded-mode trials: the disk runs out of space mid-trace. The
    // controller must degrade loudly, keep refusing (not dropping) while
    // full, recover once space frees up — via the explicit call on even
    // trials, via the automatic probe path on odd ones — and then finish
    // the trace to the exact baseline state. The queue survives
    // degradation in-process, so no rebuild happens.
    for (std::size_t trial = 0; trial < config.degraded_trials; ++trial) {
        common::Rng rng =
            common::stream_rng(config.master_seed, kDegradedStream + trial);
        DegradedModeTrial outcome;
        FaultyVfs disk;
        ServeConfig cfg = serve;
        cfg.vfs = &disk;
        cfg.degraded_probe_every = 8;

        // Let the controller get off the ground (the constructor issues
        // one write), then ENOSPC every write from a seeded index on.
        outcome.fail_from_write = static_cast<std::uint64_t>(rng.uniform_int(
            2, std::max<std::int64_t>(
                   3, static_cast<std::int64_t>(baseline_writes) / 2)));
        disk.script_fault(VfsOp::kWrite, outcome.fail_from_write, -1, ENOSPC,
                          /*transient=*/false);

        AdmissionController controller(instance, config.scheme, cfg);
        DriveProgress progress;
        bool threw = false;
        try {
            drive(controller, requests, 0, false, drain_every, progress);
        } catch (const StorageDegradedError&) {
            threw = true;
        }
        outcome.entered_degraded =
            threw && controller.storage_health() == StorageHealth::kDegraded;

        if (outcome.entered_degraded) {
            // While the disk is still full every operation is refused
            // loudly — including automatic probes that then fail.
            for (int i = 0; i < 3; ++i) {
                try {
                    (void)controller.pump(0);
                } catch (const StorageDegradedError&) {
                }
            }
            disk.clear_scripted_faults();  // the disk "frees space"
            if (trial % 2 == 0) {
                outcome.recovered = controller.try_recover_storage();
            } else {
                // pump(0) decides nothing but walks the degraded-probe
                // path: every probe_every-th refusal retries recovery.
                for (int i = 0;
                     i < 64 &&
                     controller.storage_health() == StorageHealth::kDegraded;
                     ++i) {
                    try {
                        (void)controller.pump(0);
                    } catch (const StorageDegradedError&) {
                    }
                }
                outcome.recovered =
                    controller.storage_health() == StorageHealth::kHealthy;
                outcome.recovered_via_probe = true;
            }
            outcome.degraded_refusals =
                controller.storage_stats().degraded_refusals;

            if (outcome.recovered) {
                // Same process: the queue survived the rollback, so the
                // trace resumes exactly where the drive stopped.
                DriveProgress rest;
                drive(controller, requests, progress.submitted,
                      progress.in_drain, drain_every, rest);

                outcome.digest_match =
                    controller.state_digest() == result.baseline_digest;
                const ServeMetrics& m = controller.metrics();
                outcome.revenue_match =
                    m.revenue == result.baseline_metrics.revenue &&
                    m.shed_revenue == result.baseline_metrics.shed_revenue;
                outcome.metrics_match =
                    metrics_equal(m, result.baseline_metrics);
                outcome.admitted_match = same_admitted(
                    controller.admitted_records(), baseline_admitted);
                outcome.no_double_admits =
                    unique_admitted(controller.admitted_records());
                outcome.capacity_ok =
                    core::verify_schedule(
                        instance, assemble_decisions(instance, controller))
                        .ok();
                outcome.scrub_clean = scrub_data_dir(disk, kDataDir).clean();
            }
        }

        if (!outcome.ok()) ++result.failed_degraded_trials;
        result.degraded_trials.push_back(outcome);
    }

    return result;
}

}  // namespace vnfr::serve
