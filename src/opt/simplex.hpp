// Two-phase revised primal simplex with a dense basis inverse.
//
// Solves LinearProgram instances (maximize form). Internally: shifts lower
// bounds to zero, lowers finite upper bounds to slack rows, normalizes
// rhs >= 0, and runs phase 1 (artificials) then phase 2. Anti-cycling by
// switching to Bland's rule after a run of degenerate pivots; periodic
// refactorization of the basis inverse bounds numerical drift.
//
// Scale target: a few thousand rows / ~10^4 columns — the offline LP
// relaxations of the paper's ILPs at the evaluation sizes (Section VI).
#pragma once

#include <cstddef>
#include <vector>

#include "opt/lp.hpp"

namespace vnfr::opt {

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct SimplexOptions {
    std::size_t max_iterations{200000};
    double tolerance{1e-8};
    /// Rebuild the basis inverse from scratch every this many pivots.
    std::size_t refactor_interval{1024};
    /// Switch to Bland's rule after this many consecutive degenerate pivots.
    std::size_t degenerate_limit{64};
};

struct LpSolution {
    SolveStatus status{SolveStatus::kIterationLimit};
    double objective{0};          ///< in the user's maximize sense
    std::vector<double> x;        ///< one value per LinearProgram variable
    std::vector<double> duals;    ///< one per original row, maximize sign
                                  ///< convention (<= rows have duals >= 0)
    std::size_t iterations{0};
};

/// Solves `lp`. Never throws on infeasible/unbounded inputs (reported via
/// status); throws std::invalid_argument only on malformed models.
LpSolution solve_lp(const LinearProgram& lp, const SimplexOptions& options = {});

}  // namespace vnfr::opt
