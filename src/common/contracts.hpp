// Contract macros guarding the numeric invariants of the schedulers.
//
// The primal-dual arithmetic fails silently, not loudly: a negative dual
// price, a probability drifting outside [0, 1] or a NaN reaching Eq. (34)
// produces plausible-but-wrong revenue curves instead of a crash. These
// macros make such states machine-checked at the point where the invariant
// is supposed to hold.
//
//   VNFR_CHECK(cond, msg...)   always-on invariant; msg... streamed into
//                              the failure report.
//   VNFR_DCHECK(cond, msg...)  same, but compiled out in NDEBUG builds
//                              unless VNFR_ENABLE_DCHECKS is defined
//                              (the sanitizer presets define it).
//   VNFR_CHECK_PROB(p)         p must be finite and in [0, 1] (tiny
//                              rounding slack); evaluates to p.
//   VNFR_CHECK_FINITE(x)       x must be finite; evaluates to x.
//
// What happens on failure is configurable per process via
// set_contract_mode() or the VNFR_CONTRACT_MODE environment variable
// (abort | throw | log). The default is kThrow, which surfaces as a
// ContractViolation that tests can assert on and the CLI reports cleanly.
#pragma once

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

namespace vnfr::common {

/// How a failed contract is reported.
enum class ContractMode {
    kAbort,  ///< print to stderr and std::abort() — best under a debugger
    kThrow,  ///< throw ContractViolation (default)
    kLog,    ///< log_error and keep running — for best-effort batch sweeps
};

/// Exception raised by failed contracts under ContractMode::kThrow.
class ContractViolation : public std::logic_error {
  public:
    explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// Override the failure behaviour; wins over the environment variable.
void set_contract_mode(ContractMode mode);

/// Current mode: an explicit set_contract_mode() value, else
/// VNFR_CONTRACT_MODE from the environment, else kThrow.
ContractMode contract_mode();

namespace detail {

/// Reports one violation according to contract_mode(). Returns only in
/// ContractMode::kLog.
void contract_fail(const char* macro, const char* expr, const char* file, int line,
                   const std::string& detail);

inline std::string contract_message() { return {}; }

template <typename... Args>
std::string contract_message(Args&&... args) {
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/// Slack for probabilities assembled from long products: values such as
/// 1 + 4e-16 are rounding, not bugs.
inline constexpr double kProbSlack = 1e-9;

double check_prob(double p, const char* expr, const char* file, int line);
double check_finite(double value, const char* expr, const char* file, int line);

}  // namespace detail

}  // namespace vnfr::common

/// Always-on invariant check. Extra arguments are streamed into the report:
///   VNFR_CHECK(lambda >= 0.0, "cloudlet ", j, " slot ", t);
#define VNFR_CHECK(cond, ...)                                                      \
    do {                                                                           \
        if (!(cond)) [[unlikely]] {                                                \
            ::vnfr::common::detail::contract_fail(                                 \
                "VNFR_CHECK", #cond, __FILE__, __LINE__,                           \
                ::vnfr::common::detail::contract_message(__VA_ARGS__));            \
        }                                                                          \
    } while (false)

/// Debug-only invariant: active when NDEBUG is unset (Debug builds) or when
/// VNFR_ENABLE_DCHECKS is defined (sanitizer presets). Compiled out
/// otherwise — the condition is not evaluated.
#if !defined(NDEBUG) || defined(VNFR_ENABLE_DCHECKS)
#define VNFR_DCHECK(cond, ...) VNFR_CHECK(cond, __VA_ARGS__)
#else
#define VNFR_DCHECK(cond, ...)           \
    do {                                 \
        (void)sizeof(!(cond));           \
    } while (false)
#endif

/// Checks `p` is a finite probability in [0, 1] (with rounding slack) and
/// evaluates to it, so it can wrap an expression in-place:
///   const double avail = VNFR_CHECK_PROB(one_minus_exp(log_fail));
#define VNFR_CHECK_PROB(p) \
    ::vnfr::common::detail::check_prob((p), #p, __FILE__, __LINE__)

/// Checks `x` is finite (no NaN/inf) and evaluates to it.
#define VNFR_CHECK_FINITE(x) \
    ::vnfr::common::detail::check_finite((x), #x, __FILE__, __LINE__)
