// Hot-standby side of the replication link: owns a standby-role
// AdmissionController, drains ship frames from the transport, validates
// stream continuity, applies records durably (the standby writes its own
// WAL before mutating scheduler state — durable-before-observable holds
// on both ends), and publishes its watermark back as the ack.
//
// Continuity model: the standby expects the next frame to start exactly
// at (expected generation, expected offset) in PRIMARY WAL coordinates.
// Anything else is classified and counted:
//   - stale    (ends at or before expected)   -> duplicate delivery; ignored
//   - future   (starts past expected)         -> a gap; discarded, resync latched
//   - corrupt  (frame or record CRC fails)    -> discarded, resync latched
// The resync latch stays up until every byte the standby has SEEN
// referenced beyond its watermark is applied — clearing it earlier would
// strand frames that were dropped behind a successfully applied
// retransmit (the shipper would never learn to rewind past them).
#pragma once

#include <cstdint>
#include <string>

#include "common/mutex.hpp"
#include "serve/admission_controller.hpp"
#include "serve/replication/ship_transport.hpp"

namespace vnfr::serve::replication {

struct StandbyStats {
    std::uint64_t frames_received{0};
    std::uint64_t frames_applied{0};
    std::uint64_t frames_stale{0};    ///< duplicates of already-applied bytes
    std::uint64_t frames_gap{0};      ///< future frames discarded (lost predecessor)
    std::uint64_t frames_corrupt{0};  ///< CRC/decode failures discarded
    std::uint64_t rotates_applied{0};
    std::uint64_t records_applied{0};
    std::uint64_t records_covered{0};  ///< retransmits the covered-set absorbed
    std::uint64_t acks_sent{0};
    std::uint64_t resync_requests{0};
};

class StandbyController {
  public:
    /// Builds the standby's own controller over `config` (standby role is
    /// forced on; submit/pump/drain refuse until promotion). The standby
    /// keeps its own data_dir — its WAL is its private durability, not a
    /// copy of the primary's files.
    StandbyController(const core::Instance& instance, core::Scheme scheme,
                      ServeConfig config, ShipTransport& transport);

    StandbyController(const StandbyController&) = delete;
    StandbyController& operator=(const StandbyController&) = delete;

    /// Drains every deliverable frame, applies what continues the stream,
    /// then publishes one ack carrying the updated watermark. Returns
    /// frames taken off the transport.
    std::size_t poll() VNFR_EXCLUDES(standby_mu_);

    /// The replication watermark in primary WAL coordinates (also the
    /// payload of the next ack).
    [[nodiscard]] ShipAck watermark() const VNFR_EXCLUDES(standby_mu_);

    [[nodiscard]] StandbyStats stats() const VNFR_EXCLUDES(standby_mu_);

    /// The wrapped controller — read-only observation before promotion;
    /// the FailoverCoordinator uses the mutable form to catch up and
    /// promote.
    [[nodiscard]] AdmissionController& controller() { return controller_; }
    [[nodiscard]] const AdmissionController& controller() const {
        return controller_;
    }

  private:
    struct StreamPos {
        std::uint64_t generation{0};
        std::uint64_t offset{kWalHeaderSize};

        [[nodiscard]] bool before(const StreamPos& other) const {
            return generation < other.generation ||
                   (generation == other.generation && offset < other.offset);
        }
    };

    mutable common::Mutex standby_mu_;
    ShipTransport* transport_;
    AdmissionController controller_;
    StreamPos expected_ VNFR_GUARDED_BY(standby_mu_);
    /// Furthest stream position any discarded future frame referenced;
    /// the resync latch clears once expected_ catches up to it.
    StreamPos resync_until_ VNFR_GUARDED_BY(standby_mu_);
    /// A corrupt frame's coordinates are unknowable, so it latches resync
    /// until the next in-order apply proves the shipper rewound past it.
    bool corrupt_pending_ VNFR_GUARDED_BY(standby_mu_){false};
    std::uint64_t applied_records_ VNFR_GUARDED_BY(standby_mu_){0};
    StandbyStats stats_ VNFR_GUARDED_BY(standby_mu_);
};

}  // namespace vnfr::serve::replication
