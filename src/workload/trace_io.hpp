// CSV persistence for request traces, so workloads can be exported,
// inspected and replayed byte-identically.
//
// Format (header line + one row per request):
//   id,vnf,requirement,arrival,duration,payment
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/request.hpp"

namespace vnfr::workload {

/// Writes a trace; throws std::runtime_error when the stream is bad.
void write_trace(std::ostream& os, const std::vector<Request>& requests);
void write_trace_file(const std::string& path, const std::vector<Request>& requests);

/// Reads a trace; throws std::runtime_error with the offending line number
/// on malformed input: missing header, truncated/over-long rows, unparsable
/// or non-finite numbers (NaN/inf), requirement outside (0,1), negative
/// arrival, non-positive duration or payment, and slots outside the 32-bit
/// TimeSlot range (including arrival + duration overflow).
std::vector<Request> read_trace(std::istream& is);
std::vector<Request> read_trace_file(const std::string& path);

}  // namespace vnfr::workload
