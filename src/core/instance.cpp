#include "core/instance.hpp"

#include <stdexcept>
#include <string>

#include "net/topology_zoo.hpp"

namespace vnfr::core {

void Instance::validate() const {
    if (network.cloudlet_count() == 0)
        throw std::invalid_argument("Instance: no cloudlets");
    if (catalog.empty()) throw std::invalid_argument("Instance: empty VNF catalog");
    if (horizon <= 0) throw std::invalid_argument("Instance: non-positive horizon");
    TimeSlot prev_arrival = 0;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const workload::Request& r = requests[i];
        if (!r.fits_horizon(horizon)) {
            throw std::invalid_argument("Instance: request " + std::to_string(i) +
                                        " does not fit the horizon");
        }
        if (!r.vnf.valid() || r.vnf.index() >= catalog.size()) {
            throw std::invalid_argument("Instance: request " + std::to_string(i) +
                                        " references unknown VNF type");
        }
        if (r.requirement <= 0.0 || r.requirement >= 1.0) {
            throw std::invalid_argument("Instance: request " + std::to_string(i) +
                                        " requirement outside (0,1)");
        }
        if (r.payment <= 0.0) {
            throw std::invalid_argument("Instance: request " + std::to_string(i) +
                                        " non-positive payment");
        }
        if (r.arrival < prev_arrival) {
            throw std::invalid_argument("Instance: requests not in arrival order at " +
                                        std::to_string(i));
        }
        if (r.source.valid() && !network.graph().has_node(r.source)) {
            throw std::invalid_argument("Instance: request " + std::to_string(i) +
                                        " has an unknown source AP");
        }
        prev_arrival = r.arrival;
    }
}

void InstanceConfig::set_reliability_ratio(double k) {
    if (k < 1.0) throw std::invalid_argument("set_reliability_ratio: K must be >= 1");
    cloudlets.reliability_min = cloudlets.reliability_max / k;
}

Instance make_instance(const InstanceConfig& config, common::Rng& rng) {
    Instance inst{edge::MecNetwork(net::load_topology(config.topology)),
                  vnf::Catalog::paper_default(rng), config.workload.horizon, {}};
    inst.network.attach_random_cloudlets(config.cloudlets, rng);
    inst.requests = workload::generate(config.workload, inst.catalog, rng);
    // Users issue requests through a uniformly random nearby AP.
    const auto node_count = static_cast<std::int64_t>(inst.network.graph().node_count());
    for (workload::Request& r : inst.requests) {
        r.source = NodeId{rng.uniform_int(0, node_count - 1)};
    }
    inst.validate();
    return inst;
}

}  // namespace vnfr::core
