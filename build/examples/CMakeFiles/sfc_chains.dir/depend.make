# Empty dependencies file for sfc_chains.
# This may be replaced when dependencies are built.
