# Empty compiler generated dependencies file for vnfr_edge.
# This may be replaced when dependencies are built.
