#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "vnf/catalog.hpp"
#include "vnf/reliability.hpp"

namespace vnfr::vnf {
namespace {

TEST(Catalog, AddAndGet) {
    Catalog cat;
    const VnfTypeId id = cat.add("firewall", 2.0, 0.95);
    EXPECT_EQ(cat.size(), 1u);
    const VnfType& t = cat.get(id);
    EXPECT_EQ(t.name, "firewall");
    EXPECT_DOUBLE_EQ(t.compute_units, 2.0);
    EXPECT_DOUBLE_EQ(t.reliability, 0.95);
    EXPECT_DOUBLE_EQ(cat.compute_units(id), 2.0);
    EXPECT_DOUBLE_EQ(cat.reliability(id), 0.95);
}

TEST(Catalog, RejectsBadEntries) {
    Catalog cat;
    EXPECT_THROW(cat.add("x", 0.0, 0.9), std::invalid_argument);
    EXPECT_THROW(cat.add("x", -1.0, 0.9), std::invalid_argument);
    EXPECT_THROW(cat.add("x", 1.0, 0.0), std::invalid_argument);
    EXPECT_THROW(cat.add("x", 1.0, 1.0), std::invalid_argument);
}

TEST(Catalog, GetUnknownThrows) {
    Catalog cat;
    cat.add("a", 1.0, 0.9);
    EXPECT_THROW((void)cat.get(VnfTypeId{5}), std::out_of_range);
    EXPECT_THROW((void)cat.get(VnfTypeId{}), std::out_of_range);
}

TEST(Catalog, PaperDefaultMatchesSectionVI) {
    common::Rng rng(1);
    const Catalog cat = Catalog::paper_default(rng);
    EXPECT_EQ(cat.size(), 10u);  // "10 types of VNFs"
    for (const VnfType& t : cat.types()) {
        EXPECT_GE(t.reliability, 0.9);
        EXPECT_LE(t.reliability, 0.9999);
        EXPECT_GE(t.compute_units, 1.0);
        EXPECT_LE(t.compute_units, 3.0);
    }
}

TEST(Catalog, PaperDefaultDeterministic) {
    common::Rng a(9);
    common::Rng b(9);
    const Catalog c1 = Catalog::paper_default(a);
    const Catalog c2 = Catalog::paper_default(b);
    for (std::size_t i = 0; i < c1.size(); ++i) {
        const VnfTypeId id{static_cast<std::int64_t>(i)};
        EXPECT_DOUBLE_EQ(c1.reliability(id), c2.reliability(id));
        EXPECT_DOUBLE_EQ(c1.compute_units(id), c2.compute_units(id));
    }
}

// ---- On-site replica math (Eqs. 2 and 3) ----

TEST(OnsiteAvailability, MatchesEquation2) {
    // P = r_c * (1 - (1 - r_f)^N)
    EXPECT_NEAR(onsite_availability(0.99, 0.9, 2), 0.99 * (1.0 - 0.01), 1e-12);
    EXPECT_NEAR(onsite_availability(0.95, 0.5, 3), 0.95 * (1.0 - 0.125), 1e-12);
}

TEST(OnsiteAvailability, ZeroReplicasIsZero) {
    EXPECT_DOUBLE_EQ(onsite_availability(0.99, 0.9, 0), 0.0);
}

TEST(OnsiteAvailability, CappedByCloudletReliability) {
    // Strictly below r(c) at small replica counts; approaches it (equals in
    // double precision) as N grows.
    EXPECT_LT(onsite_availability(0.97, 0.9, 3), 0.97);
    EXPECT_LE(onsite_availability(0.97, 0.9, 50), 0.97);
}

TEST(OnsiteAvailability, RejectsBadInput) {
    EXPECT_THROW(onsite_availability(1.0, 0.9, 1), std::invalid_argument);
    EXPECT_THROW(onsite_availability(0.9, 0.0, 1), std::invalid_argument);
    EXPECT_THROW(onsite_availability(0.9, 0.9, -1), std::invalid_argument);
}

TEST(MinOnsiteReplicas, InfeasibleWhenCloudletTooUnreliable) {
    // r(c_j) <= R_i: no replica count can help (Eq. 3 precondition).
    EXPECT_FALSE(min_onsite_replicas(0.95, 0.99, 0.95).has_value());
    EXPECT_FALSE(min_onsite_replicas(0.90, 0.99, 0.95).has_value());
}

TEST(MinOnsiteReplicas, SingleReplicaWhenVnfStrongEnough) {
    // r_c * r_f = 0.999 * 0.99 = 0.98901 >= 0.95.
    const auto n = min_onsite_replicas(0.999, 0.99, 0.95);
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(*n, 1);
}

TEST(MinOnsiteReplicas, KnownHandComputedCase) {
    // r_c = 0.99, r_f = 0.9, R = 0.95: need (1-0.9)^N <= 1 - 0.95/0.99
    // = 0.040404 -> N = 2 (0.1^2 = 0.01 <= 0.0404, 0.1^1 = 0.1 > 0.0404).
    const auto n = min_onsite_replicas(0.99, 0.9, 0.95);
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(*n, 2);
}

TEST(MinOnsiteReplicas, BoundaryAtFeasibilityMargin) {
    // r(c_j) = R_i ± 1e-12 both sit inside kOnsiteFeasibilityMargin: the
    // Eq. 3 log argument 1 - R/r_c collapses toward 0 and the closed form
    // diverges, so both sides of the knife edge are a defined nullopt
    // instead of a huge (or UB-cast) N_ij.
    const double requirement = 0.95;
    EXPECT_FALSE(min_onsite_replicas(requirement + 1e-12, 0.99, requirement).has_value());
    EXPECT_FALSE(min_onsite_replicas(requirement - 1e-12, 0.99, requirement).has_value());
    // Exactly at the margin is still rejected; just above it is feasible.
    EXPECT_FALSE(
        min_onsite_replicas(requirement + kOnsiteFeasibilityMargin, 0.99, requirement)
            .has_value());
    const auto n = min_onsite_replicas(requirement + 1e-6, 0.99, requirement);
    ASSERT_TRUE(n.has_value());
    EXPECT_GE(onsite_availability(requirement + 1e-6, 0.99, *n), requirement);
}

TEST(MinOnsiteReplicas, RejectsCountsBeyondReplicaCeiling) {
    // A nearly-unreliable VNF (r_f = 1e-9) needs ~2e10 replicas to close a
    // 1e-5 feasibility gap — far past kMaxOnsiteReplicas, so the outcome
    // is a defined nullopt, never an overflowed int.
    EXPECT_FALSE(min_onsite_replicas(0.95 + 1e-5, 1e-9, 0.95).has_value());
    // A feasible case near (but under) the ceiling still resolves.
    const auto n = min_onsite_replicas(0.999, 0.5, 0.99);
    ASSERT_TRUE(n.has_value());
    EXPECT_LE(*n, kMaxOnsiteReplicas);
}

// Property sweep: the returned count achieves R and is minimal.
class ReplicaPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(ReplicaPropertyTest, ExactMinimum) {
    const auto [rc, rf, req] = GetParam();
    const auto n = min_onsite_replicas(rc, rf, req);
    if (rc <= req) {
        EXPECT_FALSE(n.has_value());
        return;
    }
    ASSERT_TRUE(n.has_value());
    EXPECT_GE(*n, 1);
    EXPECT_GE(onsite_availability(rc, rf, *n), req);
    if (*n > 1) {
        EXPECT_LT(onsite_availability(rc, rf, *n - 1), req);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReplicaPropertyTest,
    ::testing::Combine(::testing::Values(0.91, 0.95, 0.99, 0.999, 0.9999),
                       ::testing::Values(0.5, 0.9, 0.99, 0.9999),
                       ::testing::Values(0.90, 0.95, 0.99, 0.998)));

TEST(MinOnsiteReplicas, MonotoneInRequirement) {
    int prev = 0;
    for (const double req : {0.5, 0.7, 0.9, 0.95, 0.98}) {
        const auto n = min_onsite_replicas(0.99, 0.8, req);
        ASSERT_TRUE(n.has_value());
        EXPECT_GE(*n, prev);
        prev = *n;
    }
}

TEST(MinOnsiteReplicas, MonotoneDecreasingInVnfReliability) {
    int prev = 1000;
    for (const double rf : {0.5, 0.7, 0.9, 0.99}) {
        const auto n = min_onsite_replicas(0.999, rf, 0.99);
        ASSERT_TRUE(n.has_value());
        EXPECT_LE(*n, prev);
        prev = *n;
    }
}

// ---- Off-site math (Eq. 10) ----

TEST(OffsiteAvailability, EmptySetIsZero) {
    const std::vector<double> none;
    EXPECT_DOUBLE_EQ(offsite_availability(0.9, none), 0.0);
}

TEST(OffsiteAvailability, SingleSiteIsProduct) {
    const std::vector<double> one{0.98};
    EXPECT_NEAR(offsite_availability(0.9, one), 0.9 * 0.98, 1e-12);
}

TEST(OffsiteAvailability, MatchesEquation10) {
    const std::vector<double> sites{0.95, 0.99};
    const double expected = 1.0 - (1.0 - 0.9 * 0.95) * (1.0 - 0.9 * 0.99);
    EXPECT_NEAR(offsite_availability(0.9, sites), expected, 1e-12);
}

TEST(OffsiteAvailability, MonotoneInSites) {
    std::vector<double> sites;
    double prev = 0.0;
    for (int i = 0; i < 5; ++i) {
        sites.push_back(0.95);
        const double v = offsite_availability(0.9, sites);
        EXPECT_GT(v, prev);
        prev = v;
    }
}

TEST(OffsiteMeets, ThresholdBehaviour) {
    const std::vector<double> one{0.99};
    // One site: availability 0.9 * 0.99 = 0.891.
    EXPECT_TRUE(offsite_meets(0.9, one, 0.89));
    EXPECT_FALSE(offsite_meets(0.9, one, 0.90));
}

TEST(OffsiteMeets, EmptyNeverMeets) {
    const std::vector<double> none;
    EXPECT_FALSE(offsite_meets(0.9, none, 0.5));
}

TEST(OffsiteMeets, ConsistentWithAvailability) {
    common::Rng rng(4);
    for (int trial = 0; trial < 200; ++trial) {
        const double rf = rng.uniform(0.5, 0.999);
        std::vector<double> sites;
        const int k = static_cast<int>(rng.uniform_int(1, 5));
        for (int i = 0; i < k; ++i) sites.push_back(rng.uniform(0.9, 0.9999));
        const double req = rng.uniform(0.5, 0.999);
        const double avail = offsite_availability(rf, sites);
        EXPECT_EQ(offsite_meets(rf, sites, req), avail >= req)
            << "avail=" << avail << " req=" << req;
    }
}

TEST(OffsiteLogFailure, AlwaysNegative) {
    EXPECT_LT(offsite_log_failure(0.9, 0.99), 0.0);
    EXPECT_LT(offsite_log_failure(0.9999, 0.9999), 0.0);
}

TEST(OffsiteLogFailure, MatchesDirectLog) {
    EXPECT_NEAR(offsite_log_failure(0.9, 0.95), std::log(1.0 - 0.9 * 0.95), 1e-12);
}

}  // namespace
}  // namespace vnfr::vnf
