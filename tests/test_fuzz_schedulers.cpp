// Randomized cross-checking of every scheduler against the independent
// schedule verifier, over a matrix of stress environments: tiny capacities,
// single cloudlet, many cloudlets, extreme requirements, heavy-tailed
// durations, bursty arrivals.
#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/onsite_primal_dual.hpp"
#include "core/verify.hpp"
#include "helpers.hpp"
#include "net/generators.hpp"
#include "sim/experiment.hpp"

namespace vnfr {
namespace {

struct FuzzCase {
    const char* name;
    std::size_t cloudlets;
    double capacity_lo;
    double capacity_hi;
    double rel_lo;
    double rel_hi;
    std::size_t requests;
    TimeSlot horizon;
    workload::ArrivalProcess arrivals;
    workload::DurationDistribution durations;
    double requirement_lo;
    double requirement_hi;
};

const FuzzCase kCases[] = {
    {"tiny-capacity", 3, 4, 6, 0.95, 0.999, 80, 10, workload::ArrivalProcess::kUniform,
     workload::DurationDistribution::kUniformInt, 0.90, 0.97},
    {"single-cloudlet", 1, 30, 30, 0.97, 0.97, 60, 12, workload::ArrivalProcess::kUniform,
     workload::DurationDistribution::kUniformInt, 0.90, 0.95},
    {"many-cloudlets", 12, 10, 40, 0.92, 0.9995, 120, 15, workload::ArrivalProcess::kPoisson,
     workload::DurationDistribution::kUniformInt, 0.90, 0.99},
    {"extreme-requirements", 4, 20, 30, 0.99, 0.9999, 60, 10,
     workload::ArrivalProcess::kUniform, workload::DurationDistribution::kUniformInt,
     0.985, 0.9995},
    {"heavy-tails", 5, 15, 25, 0.95, 0.999, 150, 20, workload::ArrivalProcess::kDiurnal,
     workload::DurationDistribution::kBoundedPareto, 0.90, 0.97},
    {"unreliable-cloudlets", 6, 20, 30, 0.905, 0.96, 100, 12,
     workload::ArrivalProcess::kUniform, workload::DurationDistribution::kUniformInt,
     0.90, 0.95},
};

core::Instance build_case(const FuzzCase& fc, common::Rng& rng) {
    net::Graph g =
        net::erdos_renyi(std::max<std::size_t>(fc.cloudlets + 3, 6), 0.4, rng, true);
    core::Instance inst{edge::MecNetwork(std::move(g)), vnf::Catalog::paper_default(rng),
                        fc.horizon, {}};
    edge::CloudletAttachment attach;
    attach.count = fc.cloudlets;
    attach.capacity_min = fc.capacity_lo;
    attach.capacity_max = fc.capacity_hi;
    attach.reliability_min = fc.rel_lo;
    attach.reliability_max = fc.rel_hi;
    inst.network.attach_random_cloudlets(attach, rng);
    workload::GeneratorConfig wl;
    wl.horizon = fc.horizon;
    wl.count = fc.requests;
    wl.arrivals = fc.arrivals;
    wl.durations = fc.durations;
    wl.duration_min = 1;
    wl.duration_max = std::max<TimeSlot>(2, fc.horizon / 3);
    wl.requirement_min = fc.requirement_lo;
    wl.requirement_max = fc.requirement_hi;
    inst.requests = workload::generate(wl, inst.catalog, rng);
    inst.validate();
    return inst;
}

class SchedulerFuzzTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(SchedulerFuzzTest, EveryAlgorithmProducesVerifiableSchedules) {
    const auto [case_index, seed] = GetParam();
    const FuzzCase& fc = kCases[case_index];
    common::Rng rng(static_cast<std::uint64_t>(seed) * 7907 + case_index);
    const core::Instance inst = build_case(fc, rng);

    for (const sim::Algorithm a :
         {sim::Algorithm::kOnsitePrimalDual, sim::Algorithm::kOnsiteGreedy,
          sim::Algorithm::kOffsitePrimalDual, sim::Algorithm::kOffsiteGreedy,
          sim::Algorithm::kHybridPrimalDual}) {
        const auto scheduler = sim::make_scheduler(a, inst);
        const core::ScheduleResult result = core::run_online(inst, *scheduler);
        const core::VerificationReport report = core::verify_schedule(inst, result.decisions);
        EXPECT_TRUE(report.ok())
            << fc.name << " / " << sim::algorithm_name(a) << ": first violation: "
            << (report.violations.empty() ? "-" : report.violations.front().detail);
        EXPECT_NEAR(report.revenue, result.revenue, 1e-6);
    }
}

TEST_P(SchedulerFuzzTest, PureVariantStaysWithinLemma8) {
    const auto [case_index, seed] = GetParam();
    const FuzzCase& fc = kCases[case_index];
    common::Rng rng(static_cast<std::uint64_t>(seed) * 104729 + case_index);
    const core::Instance inst = build_case(fc, rng);

    core::OnsitePrimalDual pure(inst, core::OnsitePrimalDualConfig{.enforce_capacity = false});
    const core::ScheduleResult result = core::run_online(inst, pure);
    double xi = 1.0;
    try {
        xi = core::compute_onsite_bounds(inst).xi;
    } catch (const std::invalid_argument&) {
        return;  // no feasible pair anywhere: nothing admitted, nothing to check
    }
    const core::VerificationReport report = core::verify_schedule(inst, result.decisions, xi);
    EXPECT_TRUE(report.ok()) << fc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SchedulerFuzzTest,
    ::testing::Combine(::testing::Range<std::size_t>(0, std::size(kCases)),
                       ::testing::Range(0, 4)));

}  // namespace
}  // namespace vnfr
