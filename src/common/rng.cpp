#include "common/rng.hpp"

#include "common/contracts.hpp"

#include <cmath>
#include <stdexcept>

namespace vnfr::common {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
    std::uint64_t s = seed;
    for (auto& lane : state_) lane = splitmix64(s);
    // All-zero state is the one forbidden fixed point of xoshiro; SplitMix64
    // cannot produce four consecutive zeros, but guard anyway.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double Rng::uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
    return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit range
    // Lemire-style rejection to remove modulo bias.
    const std::uint64_t threshold = (0 - span) % span;
    for (;;) {
        const std::uint64_t r = (*this)();
        if (r >= threshold) return lo + static_cast<std::int64_t>(r % span);
    }
}

bool Rng::bernoulli(double p) {
    if (p < 0.0 || p > 1.0) throw std::invalid_argument("Rng::bernoulli: p outside [0,1]");
    return uniform01() < p;
}

double Rng::exponential(double lambda) {
    if (lambda <= 0.0) throw std::invalid_argument("Rng::exponential: lambda <= 0");
    // -log(1-u) keeps u=0 finite; uniform01() never returns 1.
    return -std::log1p(-uniform01()) / lambda;
}

double Rng::bounded_pareto(double alpha, double lo, double hi) {
    if (alpha <= 0.0 || lo <= 0.0 || hi < lo)
        throw std::invalid_argument("Rng::bounded_pareto: bad parameters");
    if (lo == hi) return lo;  // vnfr-lint: allow(float-eq) degenerate equal-bounds range, exact by construction
    const double u = uniform01();
    VNFR_CHECK(lo > 0.0 && hi > 0.0, "bounded_pareto: pow needs positive bounds");
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    // Inverse CDF of the Pareto truncated to [lo, hi].
    VNFR_CHECK(ha * la > 0.0, "bounded_pareto: inverse-CDF base must be positive");
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

int Rng::poisson(double mean) {
    if (mean <= 0.0) throw std::invalid_argument("Rng::poisson: mean <= 0");
    if (mean > 700.0) throw std::invalid_argument("Rng::poisson: mean too large for inversion");
    // Sequential search on the CDF; adequate for the arrival rates we use.
    const double l = std::exp(-mean);
    int k = 0;
    double p = 1.0;
    do {
        ++k;
        p *= uniform01();
    } while (p > l);
    return k - 1;
}

double Rng::normal(double mean, double stddev) {
    if (stddev < 0.0) throw std::invalid_argument("Rng::normal: stddev < 0");
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return mean + stddev * cached_normal_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);  // vnfr-lint: allow(float-eq) rejection-sampling guard against exact zero
    VNFR_DCHECK(s > 0.0 && s < 1.0, "Marsaglia polar: s in (0, 1) by the loop above");
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_normal_ = v * factor;
    has_cached_normal_ = true;
    return mean + stddev * u * factor;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
    if (k > n) throw std::invalid_argument("Rng::sample_without_replacement: k > n");
    std::vector<std::size_t> pool(n);
    for (std::size_t i = 0; i < n; ++i) pool[i] = i;
    std::vector<std::size_t> out;
    out.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
        const auto j = static_cast<std::size_t>(
            uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
        std::swap(pool[i], pool[j]);
        out.push_back(pool[i]);
    }
    return out;
}

Rng Rng::split(std::uint64_t stream) {
    // Mix a fresh seed from our state plus the stream label so children with
    // different labels are independent and reproducible.
    std::uint64_t s = (*this)() ^ (stream * 0x9e3779b97f4a7c15ULL + 0x6a09e667f3bcc909ULL);
    return Rng(splitmix64(s));
}

std::uint64_t stream_seed(std::uint64_t master_seed, std::uint64_t stream) {
    // Two SplitMix64 finalizations with the stream folded in between: the
    // first decorrelates nearby master seeds, the second decorrelates
    // nearby stream counters. Purely functional — no shared state to race
    // on when many threads derive their replication seeds concurrently.
    std::uint64_t x = master_seed ^ 0x8f2d3b1e6c5a497bULL;
    std::uint64_t h = splitmix64(x);
    x = h ^ (stream + 0x6a09e667f3bcc909ULL);
    h = splitmix64(x);
    return h;
}

Rng stream_rng(std::uint64_t master_seed, std::uint64_t stream) {
    return Rng(stream_seed(master_seed, stream));
}

}  // namespace vnfr::common
