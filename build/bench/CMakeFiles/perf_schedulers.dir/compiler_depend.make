# Empty compiler generated dependencies file for perf_schedulers.
# This may be replaced when dependencies are built.
