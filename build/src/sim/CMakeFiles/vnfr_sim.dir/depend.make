# Empty dependencies file for vnfr_sim.
# This may be replaced when dependencies are built.
