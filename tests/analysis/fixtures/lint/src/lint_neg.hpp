#pragma once
// Negative fixture for the vnfr-lint rules: guarded math, tolerance-based
// comparison, a justified exact comparison, and the full header
// conventions must produce zero findings.
#include <cmath>

#include "common/contracts.hpp"

namespace vnfr::fixture {

inline bool almost_equal_demo(double a, double b) {
    const double diff = a - b;
    return std::abs(diff) <= 1e-12;
}

inline double guarded_log(double x) {
    VNFR_CHECK(x > 0.0, "guarded_log: operand must be positive");
    return std::log(x);
}

inline bool is_exactly_zeroed(double coeff) {
    // Presolve zeroes coefficients literally, so the exact test is right.
    return coeff == 0.0;  // vnfr-lint: allow(float-eq) sparsity test on a literally-zeroed value
}

}  // namespace vnfr::fixture
