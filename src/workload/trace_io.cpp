#include "workload/trace_io.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <limits>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace vnfr::workload {

namespace {

constexpr const char* kHeader = "id,vnf,requirement,arrival,duration,payment,source";

std::vector<std::string> split_csv(const std::string& line) {
    std::vector<std::string> fields;
    std::string current;
    for (const char c : line) {
        if (c == ',') {
            fields.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    fields.push_back(current);
    return fields;
}

[[noreturn]] void reject(std::size_t line_no, const std::string& detail) {
    throw std::runtime_error("read_trace: line " + std::to_string(line_no) + ": " + detail);
}

double parse_double(const std::string& s, const char* what, std::size_t line_no) {
    try {
        std::size_t pos = 0;
        const double v = std::stod(s, &pos);
        if (pos != s.size()) throw std::invalid_argument("trailing characters");
        // std::stod happily parses "nan" and "inf"; neither is a valid
        // trace value, and NaN would sail through every range check below
        // (all comparisons against NaN are false).
        if (!std::isfinite(v)) throw std::invalid_argument("non-finite value");
        return v;
    } catch (const std::exception&) {
        reject(line_no, std::string("bad ") + what + " field '" + s + "'");
    }
}

std::int64_t parse_int(const std::string& s, const char* what, std::size_t line_no) {
    std::int64_t v = 0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc{} || ptr != s.data() + s.size()) {
        reject(line_no, std::string("bad ") + what + " field '" + s + "'");
    }
    return v;
}

/// Slots travel through the CSV as int64 but live as 32-bit TimeSlot;
/// anything outside the TimeSlot range would truncate on the cast.
TimeSlot parse_slot(const std::string& s, const char* what, std::size_t line_no) {
    const std::int64_t v = parse_int(s, what, line_no);
    if (v < std::numeric_limits<TimeSlot>::min() ||
        v > std::numeric_limits<TimeSlot>::max()) {
        reject(line_no, std::string(what) + " out of TimeSlot range: " + s);
    }
    return static_cast<TimeSlot>(v);
}

}  // namespace

void write_trace(std::ostream& os, const std::vector<Request>& requests) {
    os << kHeader << '\n';
    os << std::setprecision(17);
    for (const Request& r : requests) {
        os << r.id.value << ',' << r.vnf.value << ',' << r.requirement << ',' << r.arrival
           << ',' << r.duration << ',' << r.payment << ',' << r.source.value << '\n';
    }
    if (!os) throw std::runtime_error("write_trace: stream failure");
}

void write_trace_file(const std::string& path, const std::vector<Request>& requests) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("write_trace_file: cannot open " + path);
    write_trace(out, requests);
}

std::vector<Request> read_trace(std::istream& is) {
    std::string line;
    if (!std::getline(is, line) || line != kHeader) {
        throw std::runtime_error("read_trace: missing or wrong header");
    }
    std::vector<Request> out;
    std::size_t line_no = 1;  // header was line 1
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty()) continue;
        const auto fields = split_csv(line);
        if (fields.size() != 7) {
            reject(line_no, "expected 7 fields, got " + std::to_string(fields.size()));
        }
        Request r;
        r.id = RequestId{parse_int(fields[0], "id", line_no)};
        r.vnf = VnfTypeId{parse_int(fields[1], "vnf", line_no)};
        r.requirement = parse_double(fields[2], "requirement", line_no);
        r.arrival = parse_slot(fields[3], "arrival", line_no);
        r.duration = parse_slot(fields[4], "duration", line_no);
        r.payment = parse_double(fields[5], "payment", line_no);
        r.source = NodeId{parse_int(fields[6], "source", line_no)};
        if (r.requirement <= 0.0 || r.requirement >= 1.0)
            reject(line_no, "requirement outside (0,1): " + fields[2]);
        if (r.arrival < 0) reject(line_no, "negative arrival: " + fields[3]);
        if (r.duration < 1) reject(line_no, "non-positive duration: " + fields[4]);
        if (r.arrival > std::numeric_limits<TimeSlot>::max() - r.duration)
            reject(line_no, "arrival + duration overflows the slot range");
        if (r.payment <= 0.0) reject(line_no, "non-positive payment: " + fields[5]);
        out.push_back(r);
    }
    return out;
}

std::vector<Request> read_trace_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("read_trace_file: cannot open " + path);
    return read_trace(in);
}

}  // namespace vnfr::workload
