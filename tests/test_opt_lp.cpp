#include "opt/lp.hpp"

#include <gtest/gtest.h>

namespace vnfr::opt {
namespace {

TEST(LinearProgram, AddVariableAndRow) {
    LinearProgram lp;
    const std::size_t x = lp.add_variable(3.0, 1.0, "x");
    const std::size_t y = lp.add_variable(5.0);
    EXPECT_EQ(lp.variable_count(), 2u);
    EXPECT_DOUBLE_EQ(lp.objective_coefficient(x), 3.0);
    EXPECT_DOUBLE_EQ(lp.upper_bound(x), 1.0);
    EXPECT_DOUBLE_EQ(lp.upper_bound(y), kInfinity);
    EXPECT_EQ(lp.variable_name(x), "x");

    lp.add_row({{x, 1.0}, {y, 2.0}}, Relation::kLe, 10.0);
    EXPECT_EQ(lp.row_count(), 1u);
    EXPECT_EQ(lp.row(0).terms.size(), 2u);
    EXPECT_DOUBLE_EQ(lp.row(0).rhs, 10.0);
}

TEST(LinearProgram, RejectsNegativeUpperBound) {
    LinearProgram lp;
    EXPECT_THROW(lp.add_variable(1.0, -1.0), std::invalid_argument);
}

TEST(LinearProgram, RejectsBadRows) {
    LinearProgram lp;
    const std::size_t x = lp.add_variable(1.0);
    EXPECT_THROW(lp.add_row({{x, 1.0}, {x, 2.0}}, Relation::kLe, 1.0),
                 std::invalid_argument);
    EXPECT_THROW(lp.add_row({{5, 1.0}}, Relation::kLe, 1.0), std::invalid_argument);
    EXPECT_THROW(lp.add_row({{x, kInfinity}}, Relation::kLe, 1.0), std::invalid_argument);
    EXPECT_THROW(lp.add_row({{x, 1.0}}, Relation::kLe, kInfinity), std::invalid_argument);
}

TEST(LinearProgram, SetBounds) {
    LinearProgram lp;
    const std::size_t x = lp.add_variable(1.0, 1.0);
    lp.set_bounds(x, 1.0, 1.0);
    EXPECT_DOUBLE_EQ(lp.lower_bound(x), 1.0);
    EXPECT_DOUBLE_EQ(lp.upper_bound(x), 1.0);
    EXPECT_THROW(lp.set_bounds(x, -1.0, 1.0), std::invalid_argument);
    EXPECT_THROW(lp.set_bounds(x, 2.0, 1.0), std::invalid_argument);
    EXPECT_THROW(lp.set_bounds(9, 0.0, 1.0), std::invalid_argument);
}

TEST(LinearProgram, ObjectiveValue) {
    LinearProgram lp;
    lp.add_variable(3.0);
    lp.add_variable(-2.0);
    EXPECT_DOUBLE_EQ(lp.objective_value({2.0, 1.0}), 4.0);
    EXPECT_THROW((void)lp.objective_value({1.0}), std::invalid_argument);
}

TEST(LinearProgram, MaxViolationFeasiblePoint) {
    LinearProgram lp;
    const std::size_t x = lp.add_variable(1.0, 5.0);
    lp.add_row({{x, 1.0}}, Relation::kLe, 3.0);
    EXPECT_DOUBLE_EQ(lp.max_violation({2.0}), 0.0);
}

TEST(LinearProgram, MaxViolationDetectsEachKind) {
    LinearProgram lp;
    const std::size_t x = lp.add_variable(1.0, 5.0);
    lp.add_row({{x, 1.0}}, Relation::kLe, 3.0);
    lp.add_row({{x, 1.0}}, Relation::kGe, 1.0);
    lp.add_row({{x, 1.0}}, Relation::kEq, 2.0);
    EXPECT_NEAR(lp.max_violation({4.0}), 2.0, 1e-12);   // kLe by 1, kEq by 2
    EXPECT_NEAR(lp.max_violation({0.5}), 1.5, 1e-12);   // kGe by 0.5, kEq by 1.5
    EXPECT_NEAR(lp.max_violation({6.0}), 4.0, 1e-12);   // bound by 1, kLe by 3, kEq by 4
}

}  // namespace
}  // namespace vnfr::opt
