// Shared builders for small deterministic test instances.
#pragma once

#include <vector>

#include "core/instance.hpp"
#include "net/generators.hpp"
#include "vnf/catalog.hpp"
#include "workload/request.hpp"

namespace vnfr::testing {

/// A catalog with two well-separated types:
///   type 0 "fw":  c = 1, r = 0.95
///   type 1 "lb":  c = 2, r = 0.90
inline vnf::Catalog two_type_catalog() {
    vnf::Catalog cat;
    cat.add("fw", 1.0, 0.95);
    cat.add("lb", 2.0, 0.90);
    return cat;
}

/// An instance over a 4-node ring with `reliabilities.size()` cloudlets of
/// capacity `capacity` each, horizon `horizon`, and the given requests.
inline core::Instance small_instance(std::vector<double> reliabilities, double capacity,
                                     TimeSlot horizon,
                                     std::vector<workload::Request> requests) {
    const std::size_t m = reliabilities.size();
    core::Instance inst{edge::MecNetwork(net::ring(std::max<std::size_t>(m, 3))),
                        two_type_catalog(), horizon, std::move(requests)};
    for (std::size_t j = 0; j < m; ++j) {
        inst.network.add_cloudlet(NodeId{static_cast<std::int64_t>(j)}, capacity,
                                  reliabilities[j]);
    }
    inst.validate();
    return inst;
}

/// Convenience request literal.
inline workload::Request make_request(std::int64_t id, std::int64_t vnf, double requirement,
                                      TimeSlot arrival, TimeSlot duration, double payment) {
    workload::Request r;
    r.id = RequestId{id};
    r.vnf = VnfTypeId{vnf};
    r.requirement = requirement;
    r.arrival = arrival;
    r.duration = duration;
    r.payment = payment;
    return r;
}

/// A random-but-deterministic instance for property tests: `m` cloudlets on
/// an Erdos-Renyi graph, `n` requests from the uniform workload model.
inline core::Instance random_instance(common::Rng& rng, std::size_t n, std::size_t m,
                                      TimeSlot horizon, double capacity_lo = 20,
                                      double capacity_hi = 40) {
    net::Graph g = net::erdos_renyi(std::max<std::size_t>(m + 2, 6), 0.4, rng);
    core::Instance inst{edge::MecNetwork(std::move(g)), vnf::Catalog::paper_default(rng),
                        horizon, {}};
    edge::CloudletAttachment attach;
    attach.count = m;
    attach.capacity_min = capacity_lo;
    attach.capacity_max = capacity_hi;
    attach.reliability_min = 0.95;
    attach.reliability_max = 0.999;
    inst.network.attach_random_cloudlets(attach, rng);

    workload::GeneratorConfig wl;
    wl.horizon = horizon;
    wl.count = n;
    wl.duration_min = 1;
    wl.duration_max = std::max<TimeSlot>(1, horizon / 3);
    wl.requirement_min = 0.90;
    wl.requirement_max = 0.99;
    inst.requests = workload::generate(wl, inst.catalog, rng);
    inst.validate();
    return inst;
}

}  // namespace vnfr::testing
