file(REMOVE_RECURSE
  "CMakeFiles/vnfr_core.dir/bounds.cpp.o"
  "CMakeFiles/vnfr_core.dir/bounds.cpp.o.d"
  "CMakeFiles/vnfr_core.dir/exhaustive.cpp.o"
  "CMakeFiles/vnfr_core.dir/exhaustive.cpp.o.d"
  "CMakeFiles/vnfr_core.dir/greedy.cpp.o"
  "CMakeFiles/vnfr_core.dir/greedy.cpp.o.d"
  "CMakeFiles/vnfr_core.dir/hybrid_primal_dual.cpp.o"
  "CMakeFiles/vnfr_core.dir/hybrid_primal_dual.cpp.o.d"
  "CMakeFiles/vnfr_core.dir/instance.cpp.o"
  "CMakeFiles/vnfr_core.dir/instance.cpp.o.d"
  "CMakeFiles/vnfr_core.dir/offline.cpp.o"
  "CMakeFiles/vnfr_core.dir/offline.cpp.o.d"
  "CMakeFiles/vnfr_core.dir/offsite_primal_dual.cpp.o"
  "CMakeFiles/vnfr_core.dir/offsite_primal_dual.cpp.o.d"
  "CMakeFiles/vnfr_core.dir/onsite_primal_dual.cpp.o"
  "CMakeFiles/vnfr_core.dir/onsite_primal_dual.cpp.o.d"
  "CMakeFiles/vnfr_core.dir/schedule.cpp.o"
  "CMakeFiles/vnfr_core.dir/schedule.cpp.o.d"
  "CMakeFiles/vnfr_core.dir/verify.cpp.o"
  "CMakeFiles/vnfr_core.dir/verify.cpp.o.d"
  "libvnfr_core.a"
  "libvnfr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
