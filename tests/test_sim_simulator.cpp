#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "core/greedy.hpp"
#include "core/onsite_primal_dual.hpp"
#include "helpers.hpp"
#include "net/generators.hpp"
#include "sim/metrics.hpp"

namespace vnfr::sim {
namespace {

using vnfr::testing::make_request;
using vnfr::testing::random_instance;
using vnfr::testing::small_instance;

TEST(Simulator, TimelineCoversHorizon) {
    common::Rng rng(7);
    const core::Instance inst = random_instance(rng, 30, 3, 10);
    core::OnsitePrimalDual scheduler(inst);
    const SimulationReport report = simulate(inst, scheduler);
    ASSERT_EQ(report.timeline.size(), static_cast<std::size_t>(inst.horizon));
    for (TimeSlot t = 0; t < inst.horizon; ++t) {
        EXPECT_EQ(report.timeline[static_cast<std::size_t>(t)].slot, t);
    }
}

TEST(Simulator, ArrivalsAccountedExactlyOnce) {
    common::Rng rng(11);
    const core::Instance inst = random_instance(rng, 50, 3, 12);
    core::OnsitePrimalDual scheduler(inst);
    const SimulationReport report = simulate(inst, scheduler);
    std::size_t arrivals = 0;
    for (const SlotRecord& rec : report.timeline) arrivals += rec.arrivals;
    EXPECT_EQ(arrivals, inst.requests.size());
}

TEST(Simulator, MatchesRunOnline) {
    // Slot-stepped simulation must produce exactly the same decisions as
    // the plain request-ordered driver.
    common::Rng rng(13);
    const core::Instance inst = random_instance(rng, 60, 3, 12);
    core::OnsitePrimalDual s1(inst);
    core::OnsitePrimalDual s2(inst);
    const SimulationReport sim_report = simulate(inst, s1);
    const core::ScheduleResult direct = run_online(inst, s2);
    EXPECT_DOUBLE_EQ(sim_report.schedule.revenue, direct.revenue);
    EXPECT_EQ(sim_report.schedule.admitted, direct.admitted);
    ASSERT_EQ(sim_report.schedule.decisions.size(), direct.decisions.size());
    for (std::size_t i = 0; i < direct.decisions.size(); ++i) {
        EXPECT_EQ(sim_report.schedule.decisions[i].admitted, direct.decisions[i].admitted);
    }
}

TEST(Simulator, ActiveRequestsTrackWindows) {
    const auto inst = small_instance({0.99}, 100.0, 6,
                                     {make_request(0, 0, 0.9, 0, 3, 5.0),
                                      make_request(1, 0, 0.9, 2, 2, 5.0)});
    core::OnsitePrimalDual scheduler(inst);
    const SimulationReport report = simulate(inst, scheduler);
    ASSERT_EQ(report.schedule.admitted, 2u);
    EXPECT_EQ(report.timeline[0].active_requests, 1u);  // r0
    EXPECT_EQ(report.timeline[1].active_requests, 1u);  // r0
    EXPECT_EQ(report.timeline[2].active_requests, 2u);  // r0 + r1
    EXPECT_EQ(report.timeline[3].active_requests, 1u);  // r1
    EXPECT_EQ(report.timeline[4].active_requests, 0u);
}

TEST(Simulator, UtilizationWithinUnitForEnforcingSchedulers) {
    common::Rng rng(17);
    const core::Instance inst = random_instance(rng, 80, 3, 12, 8, 15);
    core::OnsiteGreedy scheduler(inst);
    const SimulationReport report = simulate(inst, scheduler);
    for (const SlotRecord& rec : report.timeline) {
        EXPECT_GE(rec.mean_utilization, 0.0);
        EXPECT_LE(rec.mean_utilization, 1.0 + 1e-9);
    }
}

TEST(Simulator, FailureInjectionDisabledByDefault) {
    common::Rng rng(19);
    const core::Instance inst = random_instance(rng, 30, 3, 10);
    core::OnsitePrimalDual scheduler(inst);
    const SimulationReport report = simulate(inst, scheduler);
    EXPECT_EQ(report.served_request_slots, 0u);
    EXPECT_EQ(report.disrupted_request_slots, 0u);
    EXPECT_DOUBLE_EQ(report.empirical_availability(), 0.0);
}

TEST(Simulator, FailureInjectionDeliversRequiredAvailability) {
    common::Rng rng(23);
    const core::Instance inst = random_instance(rng, 120, 4, 20, 30, 50);
    core::OnsitePrimalDual scheduler(inst);
    SimulatorConfig cfg;
    cfg.inject_failures = true;
    cfg.failure_seed = 777;
    const SimulationReport report = simulate(inst, scheduler, cfg);
    const std::size_t samples = report.served_request_slots + report.disrupted_request_slots;
    ASSERT_GT(samples, 100u);
    // Every admitted placement has availability >= its requirement >= 0.90,
    // so the pooled empirical availability must clear 0.90 minus noise.
    EXPECT_GE(report.empirical_availability(), 0.88);
}

TEST(Simulator, FailureInjectionDeterministicBySeed) {
    common::Rng rng(29);
    const core::Instance inst = random_instance(rng, 60, 3, 12);
    SimulatorConfig cfg;
    cfg.inject_failures = true;
    cfg.failure_seed = 555;
    core::OnsitePrimalDual s1(inst);
    core::OnsitePrimalDual s2(inst);
    const SimulationReport r1 = simulate(inst, s1, cfg);
    const SimulationReport r2 = simulate(inst, s2, cfg);
    EXPECT_EQ(r1.served_request_slots, r2.served_request_slots);
    EXPECT_EQ(r1.disrupted_request_slots, r2.disrupted_request_slots);
}

TEST(Metrics, PlacementStatsBasics) {
    const auto inst = small_instance({0.99, 0.98}, 100.0, 6,
                                     {make_request(0, 0, 0.9, 0, 3, 5.0),
                                      make_request(1, 0, 0.9, 2, 2, 5.0)});
    core::OnsitePrimalDual scheduler(inst);
    const core::ScheduleResult result = run_online(inst, scheduler);
    const PlacementStats stats = placement_stats(inst, result.decisions);
    EXPECT_EQ(stats.admitted, result.admitted);
    EXPECT_DOUBLE_EQ(stats.mean_sites, 1.0);  // on-site: one cloudlet each
    EXPECT_GE(stats.mean_replicas, 1.0);
    EXPECT_GE(stats.min_slack, 0.0);  // requirements honoured
    EXPECT_GT(stats.mean_availability, 0.9);
}

TEST(Metrics, TotalRevenueMatchesSchedule) {
    common::Rng rng(31);
    const core::Instance inst = random_instance(rng, 40, 3, 10);
    core::OnsiteGreedy scheduler(inst);
    const core::ScheduleResult result = run_online(inst, scheduler);
    EXPECT_NEAR(total_revenue(inst, result.decisions), result.revenue, 1e-9);
}

TEST(Metrics, SizeMismatchThrows) {
    common::Rng rng(37);
    const core::Instance inst = random_instance(rng, 10, 2, 8);
    std::vector<core::Decision> wrong(3);
    EXPECT_THROW(placement_stats(inst, wrong), std::invalid_argument);
    EXPECT_THROW(total_revenue(inst, wrong), std::invalid_argument);
}

TEST(Metrics, AccessHopsFromRequestSources) {
    // Cloudlet at node 0 of a 6-ring; sources at nodes 0 and 3 -> access
    // hop distances 0 and 3, mean 1.5.
    core::Instance inst{edge::MecNetwork(net::ring(6)),
                        vnfr::testing::two_type_catalog(),
                        6,
                        {make_request(0, 0, 0.9, 0, 2, 5.0),
                         make_request(1, 0, 0.9, 1, 2, 5.0)}};
    inst.network.add_cloudlet(NodeId{0}, 100.0, 0.99);
    inst.requests[0].source = NodeId{0};
    inst.requests[1].source = NodeId{3};
    inst.validate();
    core::OnsitePrimalDual scheduler(inst);
    const core::ScheduleResult result = run_online(inst, scheduler);
    ASSERT_EQ(result.admitted, 2u);
    const PlacementStats stats = placement_stats(inst, result.decisions);
    EXPECT_NEAR(stats.mean_access_hops, 1.5, 1e-9);
}

TEST(Metrics, AccessHopsZeroWithoutSources) {
    const auto inst = small_instance({0.99}, 100.0, 6,
                                     {make_request(0, 0, 0.9, 0, 2, 5.0)});
    core::OnsitePrimalDual scheduler(inst);
    const core::ScheduleResult result = run_online(inst, scheduler);
    const PlacementStats stats = placement_stats(inst, result.decisions);
    EXPECT_DOUBLE_EQ(stats.mean_access_hops, 0.0);
}

TEST(Metrics, CloudletUtilizations) {
    const auto inst = small_instance({0.99}, 10.0, 4, {make_request(0, 0, 0.9, 0, 4, 5.0)});
    core::OnsitePrimalDual scheduler(inst);
    run_online(inst, scheduler);
    const auto utils = cloudlet_utilizations(scheduler.ledger());
    ASSERT_EQ(utils.size(), 1u);
    EXPECT_GT(utils[0], 0.0);
    EXPECT_LE(utils[0], 1.0);
}

}  // namespace
}  // namespace vnfr::sim
