#include "core/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/contracts.hpp"
#include "vnf/reliability.hpp"

namespace vnfr::core {

TheoryBounds compute_onsite_bounds(const Instance& instance) {
    instance.validate();
    TheoryBounds b;
    b.a_max = 0.0;
    b.a_min = std::numeric_limits<double>::infinity();
    bool any_pair = false;

    for (const workload::Request& r : instance.requests) {
        const double compute = instance.catalog.compute_units(r.vnf);
        const double vnf_rel = instance.catalog.reliability(r.vnf);
        for (const edge::Cloudlet& c : instance.network.cloudlets()) {
            const auto n = vnf::min_onsite_replicas(c.reliability, vnf_rel, r.requirement);
            if (!n) continue;
            any_pair = true;
            const double a = *n * compute;
            b.a_max = std::max(b.a_max, a);
            b.a_min = std::min(b.a_min, a);
        }
    }
    if (!any_pair) {
        throw std::invalid_argument(
            "compute_onsite_bounds: no feasible (request, cloudlet) pair");
    }

    b.pay_max = 0.0;
    b.pay_min = std::numeric_limits<double>::infinity();
    b.d_max = 0.0;
    b.d_min = std::numeric_limits<double>::infinity();
    for (const workload::Request& r : instance.requests) {
        b.pay_max = std::max(b.pay_max, r.payment);
        b.pay_min = std::min(b.pay_min, r.payment);
        b.d_max = std::max(b.d_max, static_cast<double>(r.duration));
        b.d_min = std::min(b.d_min, static_cast<double>(r.duration));
    }
    b.cap_max = 0.0;
    b.cap_min = std::numeric_limits<double>::infinity();
    for (const edge::Cloudlet& c : instance.network.cloudlets()) {
        b.cap_max = std::max(b.cap_max, c.capacity);
        b.cap_min = std::min(b.cap_min, c.capacity);
    }

    b.competitive_ratio = 1.0 + b.a_max;

    const double inner = b.pay_max * b.d_max / b.pay_min *
                             (1.0 / b.a_min + b.a_max / (b.a_min * b.cap_min) +
                              b.a_max / (b.d_min * b.cap_min)) +
                         1.0;
    // Lemma 8 log arguments: both must exceed 1 for the bound to be
    // positive and finite (a_min > 0, cap_max > 0 imply the first).
    VNFR_CHECK(b.a_min > 0.0 && b.cap_max > 0.0, "Lemma 8 needs a_min, cap_max > 0");
    VNFR_CHECK(inner > 1.0, "Lemma 8 inner log argument must exceed 1, got ", inner);
    b.absolute_usage_bound =
        b.a_max / std::log2(1.0 + b.a_min / b.cap_max) * std::log2(inner);
    VNFR_CHECK_FINITE(b.absolute_usage_bound);
    b.xi = b.absolute_usage_bound / b.cap_min;
    VNFR_CHECK(b.xi > 0.0, "Lemma 8 violation factor xi");
    return b;
}

}  // namespace vnfr::core
