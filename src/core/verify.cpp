#include "core/verify.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/contracts.hpp"
#include "common/math.hpp"
#include "vnf/reliability.hpp"

namespace vnfr::core {

namespace {

std::string describe_request(const Instance& instance, std::size_t i) {
    std::ostringstream os;
    os << "request " << instance.requests[i].id.value << " (index " << i << ")";
    return os.str();
}

}  // namespace

VerificationReport verify_schedule(const Instance& instance,
                                   const std::vector<Decision>& decisions,
                                   double capacity_tolerance) {
    instance.validate();
    VerificationReport report;
    if (decisions.size() != instance.requests.size()) {
        report.violations.push_back(
            {ScheduleViolation::Kind::kDecisionCountMismatch,
             "expected " + std::to_string(instance.requests.size()) + " decisions, got " +
                 std::to_string(decisions.size())});
        return report;
    }

    const std::size_t m = instance.network.cloudlet_count();
    // Recompute per-(cloudlet, slot) usage from scratch.
    std::vector<std::vector<double>> usage(
        m, std::vector<double>(static_cast<std::size_t>(instance.horizon), 0.0));

    for (std::size_t i = 0; i < decisions.size(); ++i) {
        const Decision& d = decisions[i];
        if (!d.admitted) continue;
        const workload::Request& r = instance.requests[i];
        ++report.admitted;
        report.revenue += r.payment;

        if (d.placement.sites.empty()) {
            report.violations.push_back(
                {ScheduleViolation::Kind::kEmptyPlacement, describe_request(instance, i)});
            continue;
        }
        std::set<std::int64_t> seen;
        bool sites_ok = true;
        for (const Site& s : d.placement.sites) {
            if (!s.cloudlet.valid() || s.cloudlet.index() >= m) {
                report.violations.push_back({ScheduleViolation::Kind::kUnknownCloudlet,
                                             describe_request(instance, i)});
                sites_ok = false;
                continue;
            }
            if (s.replicas < 1) {
                report.violations.push_back({ScheduleViolation::Kind::kNonPositiveReplicas,
                                             describe_request(instance, i)});
                sites_ok = false;
            }
            if (!seen.insert(s.cloudlet.value).second) {
                report.violations.push_back({ScheduleViolation::Kind::kDuplicateSite,
                                             describe_request(instance, i)});
                sites_ok = false;
            }
        }
        if (!sites_ok) continue;

        const double compute = instance.catalog.compute_units(r.vnf);
        for (const Site& s : d.placement.sites) {
            for (TimeSlot t = r.arrival; t < r.end(); ++t) {
                usage[s.cloudlet.index()][static_cast<std::size_t>(t)] +=
                    s.replicas * compute;
            }
        }

        const double availability = [&] {
            const double vnf_rel = VNFR_CHECK_PROB(instance.catalog.reliability(r.vnf));
            double log_fail = 0.0;
            for (const Site& s : d.placement.sites) {
                const double site_ok = VNFR_CHECK_PROB(
                    instance.network.cloudlet(s.cloudlet).reliability *
                    common::at_least_one(vnf_rel, s.replicas));
                log_fail += common::log1m(site_ok);
            }
            return VNFR_CHECK_PROB(common::one_minus_exp(log_fail));
        }();
        if (availability < r.requirement - 1e-9) {
            std::ostringstream os;
            os << describe_request(instance, i) << ": availability " << availability
               << " < requirement " << r.requirement;
            report.violations.push_back(
                {ScheduleViolation::Kind::kReliabilityNotMet, os.str()});
        }
    }

    for (std::size_t j = 0; j < m; ++j) {
        const double cap =
            instance.network.cloudlet(CloudletId{static_cast<std::int64_t>(j)}).capacity;
        for (TimeSlot t = 0; t < instance.horizon; ++t) {
            const double used = usage[j][static_cast<std::size_t>(t)];
            report.max_load_factor = std::max(report.max_load_factor, used / cap);
            if (used > cap * capacity_tolerance + 1e-9) {
                std::ostringstream os;
                os << "cloudlet " << j << " slot " << t << ": usage " << used
                   << " > capacity " << cap << " * tolerance " << capacity_tolerance;
                report.violations.push_back(
                    {ScheduleViolation::Kind::kCapacityExceeded, os.str()});
            }
        }
    }
    return report;
}

}  // namespace vnfr::core
