# Empty compiler generated dependencies file for vnfr_sfc.
# This may be replaced when dependencies are built.
