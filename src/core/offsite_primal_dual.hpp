// Algorithm 2 of the paper: online primal-dual scheduling for the VNF
// service reliability problem under the OFF-SITE backup scheme (one VNF
// instance per selected cloudlet, geographically separated backups).
//
// Per request rho_i:
//   1. For every cloudlet c_j compute the normalized dual price
//          w_j = sum_{t in window} lambda_{tj} / (-ln(1 - r(f_i) r(c_j))).
//      Prune cloudlets with pay_i + ln(1-R_i) * c(f_i) * w_j <= 0
//      (lines 3-8): their price already exceeds what the payment supports.
//   2. Scan surviving cloudlets in non-decreasing w_j order, adding each
//      one with enough residual capacity over the request's window to the
//      site set S(i), until 1 - prod_{j in S} (1 - r(f_i) r(c_j)) >= R_i
//      (lines 9-17).
//   3. If the requirement is met, admit: reserve c(f_i) units per site and
//      bump the duals of every selected cloudlet's window (Eq. 67):
//          lambda_{tj} <- lambda_{tj} * (1 + ln(1-R_i) c / (ln(1-r_f r_c) cap_j))
//                         + ln(1-R_i) c pay / (ln(1-r_f r_c) d cap_j).
//      Both fractions are positive (negative over negative). Otherwise
//      reject without touching any state.
//
// Capacity is always enforced (Theorem 2: no violations), so the ledger
// runs in kEnforce mode.
#pragma once

#include <string_view>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "edge/resource_ledger.hpp"

namespace vnfr::core {

struct OffsitePrimalDualConfig {
    /// Analogue of the on-site scaling approach: dual updates run against
    /// `dual_capacity_scale * cap_j` so the literal Eq. 67 prices (which
    /// would otherwise saturate a slot well below capacity) fill the real,
    /// always-enforced capacity. 0 (default) derives the scale from the
    /// catalog; 1 reproduces Eq. 67 verbatim.
    double dual_capacity_scale{0.0};
};

class OffsitePrimalDual final : public OnlineScheduler {
  public:
    /// Keeps a reference to `instance`; the caller must keep it alive.
    explicit OffsitePrimalDual(const Instance& instance,
                               OffsitePrimalDualConfig config = {});

    Decision decide(const workload::Request& request) override;
    [[nodiscard]] const edge::ResourceLedger& ledger() const override { return ledger_; }
    [[nodiscard]] std::string_view name() const override { return "offsite-primal-dual"; }

    /// Dual price lambda_{tj}, exposed for invariant tests.
    [[nodiscard]] double lambda(CloudletId j, TimeSlot t) const;

    /// The normalized price w_j of `request` on cloudlet j (step 1 above).
    [[nodiscard]] double normalized_price(const workload::Request& request,
                                          CloudletId j) const;

    /// The capacity scale actually used in the dual updates.
    [[nodiscard]] double dual_capacity_scale() const { return dual_scale_; }

    /// State export/import for the serve layer's crash-consistent
    /// checkpointing: decide() is a deterministic function of (instance,
    /// config, lambda, ledger usage), so a restored scheduler reproduces
    /// every future decision bit-identically.
    [[nodiscard]] bool supports_state_io() const override { return true; }
    [[nodiscard]] SchedulerState export_state() const override;
    void import_state(const SchedulerState& state) override;

  private:
    const Instance& instance_;
    edge::ResourceLedger ledger_;
    double dual_scale_{1.0};
    std::vector<std::vector<double>> lambda_;  ///< [cloudlet][slot]
};

}  // namespace vnfr::core
