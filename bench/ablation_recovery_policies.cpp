// Recovery-policy ablation: the same admitted schedule under identical
// fault schedules, once per recovery policy.
//
// For each policy (none / local-respawn / remote-migrate / readmit) the
// bench replays the hybrid primal-dual schedule through the recovery
// orchestrator under a fixed Monte-Carlo set of fault schedules and
// reports delivered availability, delivered-vs-promised R_i, time to
// recover, failovers, shed revenue and SLA violations. Emits
// BENCH_recovery_policies.json and exits nonzero when either of the
// acceptance gates fails:
//
//   * every recovery policy delivers at least kNone's availability, and
//     no policy ever incurs a ledger capacity violation;
//   * the recovery metrics checksum is bit-identical at 1, 2 and 8
//     threads.
//
// Usage: ablation_recovery_policies [output.json]
//   VNFR_BENCH_QUICK=1  shrink replications/instance for smoke/CI runs
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "report/json.hpp"
#include "sim/recovery_study.hpp"

using namespace vnfr;

namespace {

constexpr sim::RecoveryPolicy kPolicies[] = {
    sim::RecoveryPolicy::kNone, sim::RecoveryPolicy::kLocalRespawn,
    sim::RecoveryPolicy::kRemoteMigrate, sim::RecoveryPolicy::kReadmit};

struct PolicyResult {
    sim::RecoveryPolicy policy{};
    sim::RecoveryStudyOutcome outcome;
    double seconds{0};
    std::uint64_t checksum{0};
};

}  // namespace

int main(int argc, char** argv) {
    const std::string out_path =
        argc > 1 ? argv[1] : std::string("BENCH_recovery_policies.json");

    const std::size_t requests = bench::quick_mode() ? 120 : 300;
    const std::size_t replications = bench::quick_mode() ? 3 : 8;
    const std::uint64_t master = bench::scenario_seed("recovery_policies", requests);

    std::cout << "== Recovery-policy ablation: identical fault schedules ==\n";
    bench::print_thread_note();

    // One paper-environment instance, scheduled once: every policy replays
    // the same decisions under the same fault schedules.
    common::Rng rng = common::stream_rng(master, 0);
    const core::Instance instance =
        bench::make_factory(bench::paper_environment(requests))(rng);
    const auto scheduler =
        sim::make_scheduler(sim::Algorithm::kHybridPrimalDual, instance);
    const core::ScheduleResult schedule = core::run_online(instance, *scheduler);
    std::cout << "instance: " << instance.requests.size() << " requests, "
              << instance.network.cloudlet_count() << " cloudlets, horizon "
              << instance.horizon << "; admitted " << schedule.admitted << "\n\n";

    sim::FaultInjectorConfig faults;
    faults.rack_failure_per_slot = 0.005;

    const auto run_policy = [&](sim::RecoveryPolicy policy, std::size_t threads) {
        sim::RecoveryStudyConfig cfg;
        cfg.faults = faults;
        cfg.recovery.policy = policy;
        cfg.replications = replications;
        cfg.master_seed = common::stream_seed(master, 1);
        cfg.threads = threads;
        return sim::run_recovery_replications(instance, schedule.decisions, cfg);
    };

    std::vector<PolicyResult> results;
    for (const sim::RecoveryPolicy policy : kPolicies) {
        PolicyResult r;
        r.policy = policy;
        const auto start = std::chrono::steady_clock::now();
        r.outcome = run_policy(policy, 0);
        r.seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                .count();
        r.checksum = sim::recovery_metrics_checksum(r.outcome);
        results.push_back(std::move(r));
    }

    report::Table table({"policy", "availability", "delivered/promised", "mean-ttr",
                         "failovers", "recoveries", "shed-revenue", "sla-violations"});
    for (const PolicyResult& r : results) {
        const sim::RecoveryReport& t = r.outcome.total;
        table.add_row(
            {sim::to_string(r.policy), report::format_double(t.availability(), 4),
             report::format_double(t.mean_delivered(), 4) + "/" +
                 report::format_double(t.mean_promised(), 4),
             report::format_double(t.mean_time_to_recover(), 2),
             std::to_string(t.local_failovers + t.remote_failovers),
             std::to_string(t.local_respawns + t.remote_migrations + t.readmissions),
             report::format_double(t.shed_revenue, 1),
             std::to_string(t.sla_violations) + "/" + std::to_string(t.sla_requests)});
    }
    std::cout << table.to_text() << '\n';

    // Gate 1: recovery dominates doing nothing, without capacity violations.
    const double baseline = results.front().outcome.total.availability();
    bool dominated = true;
    bool capacity_clean = true;
    for (const PolicyResult& r : results) {
        if (r.outcome.total.availability() + 1e-12 < baseline) dominated = false;
        if (r.outcome.total.capacity_violations != 0) capacity_clean = false;
    }
    std::cout << (dominated ? "recovery policies dominate kNone\n"
                            : "DOMINANCE VIOLATION: a policy fell below kNone\n");
    std::cout << (capacity_clean ? "zero ledger capacity violations\n"
                                 : "CAPACITY VIOLATION: recovery overbooked a cloudlet\n");

    // Gate 2: thread-count invariance of the Monte-Carlo checksum.
    bool deterministic = true;
    const std::uint64_t reference =
        sim::recovery_metrics_checksum(run_policy(sim::RecoveryPolicy::kReadmit, 1));
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
        const std::uint64_t checksum =
            sim::recovery_metrics_checksum(run_policy(sim::RecoveryPolicy::kReadmit, threads));
        if (checksum != reference) deterministic = false;
    }
    std::cout << (deterministic
                      ? "metrics checksum bit-identical at 1/2/8 threads\n\n"
                      : "DETERMINISM VIOLATION: checksum differs across threads\n\n");

    report::JsonValue doc = report::JsonValue::object();
    doc.set("bench", "recovery_policies");
    doc.set("workload", "hybrid primal-dual schedule under injected faults");
    doc.set("quick_mode", bench::quick_mode());
    doc.set("requests", requests);
    doc.set("admitted", schedule.admitted);
    doc.set("replications", replications);
    doc.set("master_seed", report::hex_u64(master));
    report::JsonValue fault_json = report::JsonValue::object();
    fault_json.set("cloudlet_crash_per_slot", faults.cloudlet_crash_per_slot);
    fault_json.set("instance_crash_per_slot", faults.instance_crash_per_slot);
    fault_json.set("transient_blip_per_slot", faults.transient_blip_per_slot);
    fault_json.set("rack_failure_per_slot", faults.rack_failure_per_slot);
    fault_json.set("rack_span", faults.rack_span);
    fault_json.set("cloudlet_mttr_slots", faults.cloudlet_mttr_slots);
    doc.set("faults", std::move(fault_json));
    report::JsonValue policies_json = report::JsonValue::array();
    for (const PolicyResult& r : results) {
        const sim::RecoveryReport& t = r.outcome.total;
        report::JsonValue row = report::JsonValue::object();
        row.set("policy", sim::to_string(r.policy));
        row.set("wall_seconds", r.seconds);
        row.set("availability", t.availability());
        row.set("availability_ci95", r.outcome.availability.ci95_halfwidth());
        row.set("mean_delivered", t.mean_delivered());
        row.set("mean_promised", t.mean_promised());
        row.set("mean_time_to_recover", t.mean_time_to_recover());
        row.set("local_failovers", t.local_failovers);
        row.set("remote_failovers", t.remote_failovers);
        row.set("outages", t.outages);
        row.set("recovered_outages", t.recovered_outages);
        row.set("local_respawns", t.local_respawns);
        row.set("remote_migrations", t.remote_migrations);
        row.set("readmissions", t.readmissions);
        row.set("failed_recoveries", t.failed_recoveries);
        row.set("instances_lost", t.instances_lost);
        row.set("shed_requests", t.shed_requests);
        row.set("shed_revenue", t.shed_revenue);
        row.set("sla_violations", t.sla_violations);
        row.set("sla_requests", t.sla_requests);
        row.set("capacity_violations", t.capacity_violations);
        row.set("metrics_checksum", report::hex_u64(r.checksum));
        policies_json.push(std::move(row));
    }
    doc.set("policies", std::move(policies_json));
    doc.set("dominates_none", dominated);
    doc.set("capacity_clean", capacity_clean);
    doc.set("checksums_identical", deterministic);

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cannot open " << out_path << " for writing\n";
        return 2;
    }
    out << doc.dump(2) << '\n';
    std::cout << "wrote " << out_path << '\n';

    return (dominated && capacity_clean && deterministic) ? 0 : 1;
}
