// The experiment engine's headline guarantee: running the same experiment
// at 1, 2 and 8 threads yields bit-identical aggregated metrics, because
// replication k draws from the counter-based stream (base_seed, k) and the
// reduction folds replications in ascending k order regardless of which
// thread finished first.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "core/onsite_primal_dual.hpp"
#include "helpers.hpp"
#include "sim/experiment.hpp"
#include "sim/failover_study.hpp"
#include "sim/recovery_study.hpp"
#include "sim/scenarios.hpp"

namespace vnfr::sim {
namespace {

const std::size_t kThreadCounts[] = {1, 2, 8};

core::Instance factory(common::Rng& rng) {
    return vnfr::testing::random_instance(rng, 30, 4, 10, 10, 20);
}

/// Exact equality of every aggregate of two RunningStats. EXPECT_EQ on
/// doubles is deliberate: "bit-identical" is the contract under test.
void expect_stats_identical(const common::RunningStats& a, const common::RunningStats& b) {
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.sum(), b.sum());
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.variance(), b.variance());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
}

TEST(ParallelDeterminism, MetricsBitIdenticalAcrossThreadCounts) {
    ExperimentConfig cfg;
    cfg.algorithms = {Algorithm::kOnsitePrimalDual, Algorithm::kOnsiteGreedy,
                      Algorithm::kOffsitePrimalDual};
    cfg.seeds = 9;  // not a multiple of any pool size: uneven blocks
    cfg.base_seed = 0xd37e;

    cfg.threads = 1;
    const ExperimentOutcome serial = run_experiment(factory, cfg);

    for (const std::size_t threads : kThreadCounts) {
        cfg.threads = threads;
        const ExperimentOutcome parallel = run_experiment(factory, cfg);
        EXPECT_EQ(metrics_checksum(parallel), metrics_checksum(serial))
            << "threads=" << threads;
        ASSERT_EQ(parallel.per_algorithm.size(), serial.per_algorithm.size());
        for (std::size_t ai = 0; ai < serial.per_algorithm.size(); ++ai) {
            const AlgorithmOutcome& p = parallel.per_algorithm[ai];
            const AlgorithmOutcome& s = serial.per_algorithm[ai];
            expect_stats_identical(p.revenue, s.revenue);
            expect_stats_identical(p.acceptance, s.acceptance);
            expect_stats_identical(p.max_load_factor, s.max_load_factor);
            expect_stats_identical(p.admitted, s.admitted);
            expect_stats_identical(p.availability, s.availability);
        }
    }
}

TEST(ParallelDeterminism, OfflineBoundBitIdenticalAcrossThreadCounts) {
    ExperimentConfig cfg;
    cfg.algorithms = {Algorithm::kOnsitePrimalDual};
    cfg.seeds = 5;
    cfg.base_seed = 0x0ff1;
    cfg.compute_offline = true;
    cfg.offline_scheme = core::Scheme::kOnsite;
    cfg.offline.run_ilp = false;

    cfg.threads = 1;
    const ExperimentOutcome serial = run_experiment(factory, cfg);
    ASSERT_EQ(serial.offline_bound.count(), 5u);

    for (const std::size_t threads : kThreadCounts) {
        cfg.threads = threads;
        const ExperimentOutcome parallel = run_experiment(factory, cfg);
        expect_stats_identical(parallel.offline_bound, serial.offline_bound);
        EXPECT_EQ(metrics_checksum(parallel), metrics_checksum(serial));
    }
}

TEST(ParallelDeterminism, PaperEnvironmentSweepChecksumStable) {
    // The same scenario the parallel_experiments bench checksums, shrunk.
    ExperimentConfig cfg;
    cfg.algorithms = {Algorithm::kOnsitePrimalDual, Algorithm::kOnsiteGreedy};
    cfg.seeds = 4;
    cfg.base_seed = 0xf161a;
    const InstanceFactory paper = make_config_factory(golden_environment(60));

    cfg.threads = 1;
    const std::uint64_t serial = metrics_checksum(run_experiment(paper, cfg));
    for (const std::size_t threads : kThreadCounts) {
        cfg.threads = threads;
        EXPECT_EQ(metrics_checksum(run_experiment(paper, cfg)), serial)
            << "threads=" << threads;
    }
}

TEST(ParallelDeterminism, FailoverReplicationsBitIdenticalAcrossThreadCounts) {
    common::Rng rng = common::stream_rng(0xfa11, 0);
    const core::Instance inst = vnfr::testing::random_instance(rng, 40, 4, 12, 10, 20);
    core::OnsitePrimalDual scheduler(inst);
    const core::ScheduleResult result = core::run_online(inst, scheduler);

    FailoverStudyConfig cfg;
    cfg.replications = 7;
    cfg.master_seed = 0xabcd;

    cfg.threads = 1;
    const FailoverStudyOutcome serial = run_failover_replications(inst, result.decisions, cfg);
    EXPECT_GT(serial.total.request_slots, 0u);

    for (const std::size_t threads : kThreadCounts) {
        cfg.threads = threads;
        const FailoverStudyOutcome parallel =
            run_failover_replications(inst, result.decisions, cfg);
        EXPECT_EQ(parallel.total.request_slots, serial.total.request_slots);
        EXPECT_EQ(parallel.total.served_slots, serial.total.served_slots);
        EXPECT_EQ(parallel.total.disrupted_slots, serial.total.disrupted_slots);
        EXPECT_EQ(parallel.total.local_failovers, serial.total.local_failovers);
        EXPECT_EQ(parallel.total.remote_failovers, serial.total.remote_failovers);
        EXPECT_EQ(parallel.total.outages, serial.total.outages);
        expect_stats_identical(parallel.availability, serial.availability);
    }
}

TEST(ParallelDeterminism, RecoveryReplicationsChecksumInvariant) {
    // Acceptance criterion of the recovery orchestrator: the Monte-Carlo
    // metrics checksum is bit-identical at 1, 2 and 8 threads, for every
    // recovery policy.
    common::Rng rng = common::stream_rng(0x4ec0, 0);
    const core::Instance inst = vnfr::testing::random_instance(rng, 40, 4, 12, 10, 20);
    core::OnsitePrimalDual scheduler(inst);
    const core::ScheduleResult result = core::run_online(inst, scheduler);

    for (const RecoveryPolicy policy :
         {RecoveryPolicy::kNone, RecoveryPolicy::kLocalRespawn,
          RecoveryPolicy::kRemoteMigrate, RecoveryPolicy::kReadmit}) {
        RecoveryStudyConfig cfg;
        cfg.replications = 7;  // uneven blocks for every pool size
        cfg.master_seed = 0xfeed;
        cfg.recovery.policy = policy;

        cfg.threads = 1;
        const RecoveryStudyOutcome serial =
            run_recovery_replications(inst, result.decisions, cfg);
        EXPECT_GT(serial.total.request_slots, 0u);
        EXPECT_EQ(serial.total.capacity_violations, 0u);

        for (const std::size_t threads : kThreadCounts) {
            cfg.threads = threads;
            const RecoveryStudyOutcome parallel =
                run_recovery_replications(inst, result.decisions, cfg);
            EXPECT_EQ(recovery_metrics_checksum(parallel),
                      recovery_metrics_checksum(serial))
                << to_string(policy) << " threads=" << threads;
            EXPECT_EQ(parallel.total.served_slots, serial.total.served_slots);
            EXPECT_EQ(parallel.total.shed_revenue, serial.total.shed_revenue);
            expect_stats_identical(parallel.availability, serial.availability);
            expect_stats_identical(parallel.delivered, serial.delivered);
            expect_stats_identical(parallel.time_to_recover, serial.time_to_recover);
        }
    }
}

TEST(ParallelDeterminism, StreamSeedIsAPureFunction) {
    EXPECT_EQ(common::stream_seed(42, 7), common::stream_seed(42, 7));
    EXPECT_NE(common::stream_seed(42, 7), common::stream_seed(42, 8));
    EXPECT_NE(common::stream_seed(42, 7), common::stream_seed(43, 7));
    // Streams must not degenerate to the legacy additive scheme, where
    // (seed, k) and (seed + 1, k - 1) collide.
    EXPECT_NE(common::stream_seed(42, 7), common::stream_seed(43, 6));
    EXPECT_NE(common::stream_seed(42, 7), 42u + 7u);

    // Nearby streams yield distinct seeds over a wide counter range.
    std::set<std::uint64_t> seen;
    for (std::uint64_t k = 0; k < 4096; ++k) seen.insert(common::stream_seed(1, k));
    EXPECT_EQ(seen.size(), 4096u);
}

TEST(ParallelDeterminism, StreamRngSequencesAreIndependentOfSiblingCount) {
    // Replication 3's sequence is the same whether 4 or 400 replications
    // exist — the counter-based property a split()-chain does not have.
    common::Rng a = common::stream_rng(99, 3);
    common::Rng b = common::stream_rng(99, 3);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

}  // namespace
}  // namespace vnfr::sim
