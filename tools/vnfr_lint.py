#!/usr/bin/env python3
"""Repo-specific invariant lint for the vnfr source tree.

Enforces rules no generic linter knows about, tuned to the reliability
arithmetic in this codebase:

  float-eq      No raw ``==``/``!=`` between doubles in src/. Exact
                floating-point comparison silently misbehaves in the
                availability products; use ``common::almost_equal`` (or
                restructure). Deliberate exact tests (sparsity checks on
                literally-zeroed coefficients, rejection-sampling loops)
                carry a ``// vnfr-lint: allow(float-eq)`` suppression.

  math-domain   ``std::log``/``std::log2``/``std::log10``/``std::pow``
                outside ``src/vnf/reliability.*`` and ``src/common/math.*``
                must have a ``VNFR_CHECK``/``VNFR_DCHECK`` guarding the
                operand's domain within the preceding few lines. A log of a
                non-positive value yields NaN, not a crash, and the NaN
                surfaces far from its origin.

  header-guard  Every header under src/ starts with ``#pragma once``.

  namespace     Every src/ file declares ``namespace vnfr...`` and closes
                it with a ``}  // namespace`` trailer comment.

  using-std     ``using namespace std;`` is banned everywhere under src/.

Exit status: 0 when clean, 1 with findings (one per line, grep-friendly
``path:line: rule: message``). Run directly or via the ``vnfr_lint`` ctest.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SUPPRESS_TAG = "vnfr-lint: allow(float-eq)"

# Files where the log/pow domain is the module's own concern: the stable
# wrappers themselves.
MATH_DOMAIN_EXEMPT = ("src/common/math.", "src/vnf/reliability.")

# std::log1p/std::expm1 are the *stable* helpers and are exempt; match only
# the raw calls whose domain can silently produce NaN.
RAW_MATH_CALL = re.compile(r"\bstd::(log|log2|log10|pow)\s*\(")

FLOAT_LITERAL = r"(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)"
FLOAT_LITERAL_CMP = re.compile(
    rf"(?:{FLOAT_LITERAL}\s*[=!]=)|(?:[=!]=\s*[+-]?{FLOAT_LITERAL})"
)

DOUBLE_DECL = re.compile(r"\bdouble\s+(\w+)\s*(?:=|;|,|\)|\{)")

GUARD_WINDOW = 4  # lines above a raw math call searched for a VNFR_CHECK


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments and the contents of string/char literals so the
    pattern rules do not fire inside prose or formatted messages."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                if line[i] == "\\":
                    i += 1
                i += 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def lint_file(path: Path, rel: str) -> list[str]:
    findings: list[str] = []
    text = path.read_text(encoding="utf-8")
    raw_lines = text.splitlines()
    code_lines = [strip_comments_and_strings(l) for l in raw_lines]

    # --- header-guard / namespace conventions -------------------------------
    if rel.endswith(".hpp") and "#pragma once" not in text:
        findings.append(f"{rel}:1: header-guard: header lacks '#pragma once'")
    if not re.search(r"\bnamespace\s+vnfr\b", text):
        findings.append(f"{rel}:1: namespace: file does not open 'namespace vnfr...'")
    elif not re.search(r"\}\s*//\s*namespace", text):
        findings.append(
            f"{rel}:1: namespace: closing brace lacks '}}  // namespace' comment"
        )

    # Identifiers declared double in this file, for the identifier-vs-
    # identifier comparison heuristic.
    double_names = set(DOUBLE_DECL.findall(text))
    ident_cmp = None
    if double_names:
        joined = "|".join(re.escape(n) for n in sorted(double_names))
        ident_cmp = re.compile(rf"\b({joined})\s*[=!]=\s*({joined})\b")

    for idx, code in enumerate(code_lines):
        lineno = idx + 1
        raw = raw_lines[idx]
        prev_raw = raw_lines[idx - 1] if idx > 0 else ""

        # --- using-std ------------------------------------------------------
        if re.search(r"\busing\s+namespace\s+std\b", code):
            findings.append(f"{rel}:{lineno}: using-std: 'using namespace std' is banned")

        # --- float-eq -------------------------------------------------------
        suppressed = SUPPRESS_TAG in raw or SUPPRESS_TAG in prev_raw
        hit = FLOAT_LITERAL_CMP.search(code)
        if not hit and ident_cmp is not None:
            hit = ident_cmp.search(code)
        if hit and not suppressed:
            findings.append(
                f"{rel}:{lineno}: float-eq: raw ==/!= on double "
                f"('{hit.group(0).strip()}'); use common::almost_equal or add "
                f"'// {SUPPRESS_TAG}' with a justification"
            )

        # --- math-domain ----------------------------------------------------
        if rel.startswith(MATH_DOMAIN_EXEMPT):
            continue
        call = RAW_MATH_CALL.search(code)
        if call:
            window_start = max(0, idx - GUARD_WINDOW)
            window = "\n".join(raw_lines[window_start : idx + 1])
            if "VNFR_CHECK" not in window and "VNFR_DCHECK" not in window:
                findings.append(
                    f"{rel}:{lineno}: math-domain: std::{call.group(1)} without a "
                    f"VNFR_CHECK/VNFR_DCHECK guarding the operand within the "
                    f"previous {GUARD_WINDOW} lines"
                )
    return findings


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    src = root / "src"
    if not src.is_dir():
        print(f"vnfr_lint: no src/ directory under {root}", file=sys.stderr)
        return 2

    findings: list[str] = []
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".hpp", ".cpp"):
            continue
        rel = path.relative_to(root).as_posix()
        findings.extend(lint_file(path, rel))

    for f in findings:
        print(f)
    if findings:
        print(f"vnfr_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("vnfr_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
