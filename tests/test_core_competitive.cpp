// Empirical validation of the paper's theory (Theorem 1 and Lemma 8):
//   * the pure Algorithm 1 collects at least OPT / (1 + a_max) revenue,
//   * its per-cloudlet capacity overshoot stays within the xi bound,
//   * Algorithm 2 never violates capacity and never beats the offline bound.
#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/exhaustive.hpp"
#include "core/offline.hpp"
#include "core/offsite_primal_dual.hpp"
#include "core/onsite_primal_dual.hpp"
#include "helpers.hpp"

namespace vnfr::core {
namespace {

using vnfr::testing::random_instance;

class CompetitiveRatioTest : public ::testing::TestWithParam<int> {};

TEST_P(CompetitiveRatioTest, PureAlgorithm1WithinTheorem1Ratio) {
    common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 3);
    // Tiny instances so the exhaustive optimum is exact.
    const Instance inst = random_instance(rng, 8, 3, 6, 4, 8);

    OnsitePrimalDual pure(inst, OnsitePrimalDualConfig{.enforce_capacity = false});
    const ScheduleResult online = run_online(inst, pure);
    const ExhaustiveResult opt = exhaustive_onsite(inst);
    const TheoryBounds bounds = compute_onsite_bounds(inst);

    EXPECT_GE(online.revenue * bounds.competitive_ratio, opt.revenue - 1e-6)
        << "online=" << online.revenue << " opt=" << opt.revenue
        << " ratio=" << bounds.competitive_ratio;
}

TEST_P(CompetitiveRatioTest, CapacityCheckedNeverExceedsOfflineOptimum) {
    common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 103 + 9);
    const Instance inst = random_instance(rng, 8, 3, 6, 4, 8);
    OnsitePrimalDual scheduler(inst);
    const ScheduleResult online = run_online(inst, scheduler);
    const ExhaustiveResult opt = exhaustive_onsite(inst);
    EXPECT_LE(online.revenue, opt.revenue + 1e-6);
}

TEST_P(CompetitiveRatioTest, Algorithm2NeverExceedsOfflineOptimum) {
    common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 107 + 11);
    const Instance inst = random_instance(rng, 6, 3, 6, 4, 8);
    OffsitePrimalDual scheduler(inst);
    const ScheduleResult online = run_online(inst, scheduler);
    const ExhaustiveResult opt = exhaustive_offsite(inst);
    EXPECT_LE(online.revenue, opt.revenue + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompetitiveRatioTest, ::testing::Range(0, 12));

class ViolationBoundTest : public ::testing::TestWithParam<int> {};

TEST_P(ViolationBoundTest, PureAlgorithm1StaysWithinLemma8) {
    common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 109 + 17);
    // Tight capacities so the pure variant actually gets pushed toward the
    // violation regime.
    const Instance inst = random_instance(rng, 100, 3, 12, 5, 10);
    OnsitePrimalDual pure(inst, OnsitePrimalDualConfig{.enforce_capacity = false});
    const ScheduleResult result = run_online(inst, pure);
    const TheoryBounds bounds = compute_onsite_bounds(inst);

    // Lemma 8: usage at any cloudlet/slot is bounded in absolute terms and
    // (usage / cap) by xi.
    const edge::ResourceLedger& ledger = pure.ledger();
    for (std::size_t j = 0; j < ledger.cloudlet_count(); ++j) {
        const CloudletId c{static_cast<std::int64_t>(j)};
        for (TimeSlot t = 0; t < ledger.horizon(); ++t) {
            EXPECT_LE(ledger.usage(c, t), bounds.absolute_usage_bound + 1e-6);
        }
    }
    EXPECT_LE(result.max_load_factor, bounds.xi + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViolationBoundTest, ::testing::Range(0, 8));

TEST(Competitive, OfflineLpBoundDominatesEveryOnlineAlgorithm) {
    common::Rng rng(113);
    const Instance inst = random_instance(rng, 25, 3, 8, 10, 20);
    const OfflineResult onsite_off = solve_offline(inst, Scheme::kOnsite,
                                                   OfflineConfig{.run_ilp = false});
    const OfflineResult offsite_off = solve_offline(inst, Scheme::kOffsite,
                                                    OfflineConfig{.run_ilp = false});
    ASSERT_TRUE(onsite_off.lp_optimal);
    ASSERT_TRUE(offsite_off.lp_optimal);

    OnsitePrimalDual alg1(inst);
    EXPECT_LE(run_online(inst, alg1).revenue, onsite_off.lp_bound + 1e-6);
    OffsitePrimalDual alg2(inst);
    EXPECT_LE(run_online(inst, alg2).revenue, offsite_off.lp_bound + 1e-6);
}

}  // namespace
}  // namespace vnfr::core
