#include "core/offsite_primal_dual.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/math.hpp"
#include "core/dual_limits.hpp"
#include "vnf/reliability.hpp"

namespace vnfr::core {

namespace {

/// Catalog-level estimate of the typical per-request demand under the
/// off-site scheme: c(f) times the expected number of sites needed,
/// ln(1-R)/ln(1 - r_f r_c), at a representative requirement. Uses no
/// knowledge of the request sequence.
double estimate_typical_demand(const Instance& instance) {
    double total = 0.0;
    std::size_t pairs = 0;
    for (const vnf::VnfType& type : instance.catalog.types()) {
        for (const edge::Cloudlet& c : instance.network.cloudlets()) {
            const double representative_r = 0.95;
            const double sites = common::log1m(representative_r) /
                                 vnf::offsite_log_failure(type.reliability, c.reliability);
            total += std::max(1.0, sites) * type.compute_units;
            ++pairs;
        }
    }
    return pairs == 0 ? 1.0 : std::max(1.0, total / static_cast<double>(pairs));
}

}  // namespace

OffsitePrimalDual::OffsitePrimalDual(const Instance& instance,
                                     OffsitePrimalDualConfig config)
    : instance_(instance),
      ledger_(instance.network.capacities(), instance.horizon,
              edge::CapacityPolicy::kEnforce),
      lambda_(instance.network.cloudlet_count(),
              std::vector<double>(static_cast<std::size_t>(instance.horizon), 0.0)) {
    if (config.dual_capacity_scale < 0.0)
        throw std::invalid_argument("OffsitePrimalDual: negative dual_capacity_scale");
    dual_scale_ = config.dual_capacity_scale > 0.0 ? config.dual_capacity_scale
                                                   : estimate_typical_demand(instance);
}

SchedulerState OffsitePrimalDual::export_state() const {
    return SchedulerState{lambda_, ledger_.usage_table()};
}

void OffsitePrimalDual::import_state(const SchedulerState& state) {
    validate_scheduler_state(state, instance_.network.cloudlet_count(),
                             instance_.horizon);
    ledger_.restore_usage(state.usage);
    lambda_ = state.lambda;
}

double OffsitePrimalDual::lambda(CloudletId j, TimeSlot t) const {
    return lambda_.at(j.index()).at(static_cast<std::size_t>(t));
}

double OffsitePrimalDual::normalized_price(const workload::Request& request,
                                           CloudletId j) const {
    const double vnf_rel = instance_.catalog.reliability(request.vnf);
    const double cloud_rel = instance_.network.cloudlet(j).reliability;
    double lambda_sum = 0.0;
    const auto& lam = lambda_[j.index()];
    for (TimeSlot t = request.arrival; t < request.end(); ++t) {
        VNFR_DCHECK(lam[static_cast<std::size_t>(t)] >= 0.0, "dual price lambda_",
                    j.value, "(", t, ") went negative");
        lambda_sum += lam[static_cast<std::size_t>(t)];
    }
    // ln(1 - r_f r_c) < 0 whenever both reliabilities are in (0, 1), so the
    // normalized price w_j = sum(lambda) / -ln(1 - r_f r_c) stays >= 0.
    const double log_pair = vnf::offsite_log_failure(vnf_rel, cloud_rel);
    VNFR_CHECK(log_pair < 0.0, "offsite log-failure must be negative for cloudlet ",
               j.value);
    return VNFR_CHECK_FINITE(lambda_sum / -log_pair);
}

Decision OffsitePrimalDual::decide(const workload::Request& request) {
    const std::size_t m = instance_.network.cloudlet_count();
    const double compute = instance_.catalog.compute_units(request.vnf);
    const double vnf_rel = VNFR_CHECK_PROB(instance_.catalog.reliability(request.vnf));
    const double log_target = common::log1m(request.requirement);  // ln(1 - R_i)
    VNFR_CHECK(log_target < 0.0, "requirement R_i must be positive for request ",
               request.id.value);

    // Step 1: price every cloudlet and prune the unaffordable ones.
    struct Candidate {
        CloudletId cloudlet;
        double price;  ///< w_j
    };
    // Classification baseline: can the full cloudlet set meet R at all?
    double log_fail_everything = 0.0;
    for (std::size_t idx = 0; idx < m; ++idx) {
        log_fail_everything += vnf::offsite_log_failure(
            vnf_rel,
            instance_.network.cloudlet(CloudletId{static_cast<std::int64_t>(idx)})
                .reliability);
    }
    const bool reachable = log_fail_everything <= log_target;

    std::vector<Candidate> candidates;
    candidates.reserve(m);
    for (std::size_t idx = 0; idx < m; ++idx) {
        const CloudletId j{static_cast<std::int64_t>(idx)};
        const double w = normalized_price(request, j);
        // Line 5: pay_i + ln(1-R_i) * c(f_i) * w_j <= 0 -> skip cloudlet.
        if (request.payment + log_target * compute * w <= 0.0) continue;
        candidates.push_back({j, w});
    }
    if (candidates.empty()) {
        Decision rejected;
        rejected.reject_reason = reachable ? RejectReason::kPricedOut
                                           : RejectReason::kInfeasibleRequirement;
        return rejected;
    }

    // Step 2: cheapest-first greedy selection under residual capacity.
    // Price ties (whole windows still unpriced) are broken toward the more
    // reliable cloudlet, which needs the fewest sites to reach R_i.
    std::sort(candidates.begin(), candidates.end(),
              [&](const Candidate& a, const Candidate& b) {
                  if (a.price < b.price - 1e-12 || b.price < a.price - 1e-12) {
                      return a.price < b.price;
                  }
                  const double ra = instance_.network.cloudlet(a.cloudlet).reliability;
                  const double rb = instance_.network.cloudlet(b.cloudlet).reliability;
                  if (!common::almost_equal(ra, rb)) return ra > rb;
                  return a.cloudlet < b.cloudlet;
              });

    std::vector<CloudletId> selected;
    double log_fail = 0.0;  // sum of ln(1 - r_f r_c) over S(i)
    bool met = false;
    for (const Candidate& cand : candidates) {
        if (!ledger_.fits(cand.cloudlet, request.arrival, request.end(), compute)) continue;
        selected.push_back(cand.cloudlet);
        log_fail += vnf::offsite_log_failure(
            vnf_rel, instance_.network.cloudlet(cand.cloudlet).reliability);
        if (log_fail <= log_target) {
            met = true;
            break;
        }
    }
    if (!met) {
        // Line 22: reject, no state touched. Classify: if even the full
        // price-feasible candidate set ignoring capacity cannot reach R,
        // the pruning priced the request out; otherwise capacity blocked a
        // sufficient subset.
        Decision rejected;
        if (!reachable) {
            rejected.reject_reason = RejectReason::kInfeasibleRequirement;
        } else {
            double log_fail_candidates = 0.0;
            for (const Candidate& cand : candidates) {
                log_fail_candidates += vnf::offsite_log_failure(
                    vnf_rel, instance_.network.cloudlet(cand.cloudlet).reliability);
            }
            rejected.reject_reason = log_fail_candidates <= log_target
                                         ? RejectReason::kNoCapacity
                                         : RejectReason::kPricedOut;
        }
        return rejected;
    }

    // Step 3: admit; reserve and update duals per selected cloudlet.
    Placement placement{request.id, {}};
    placement.sites.reserve(selected.size());
    for (const CloudletId j : selected) {
        ledger_.reserve(j, request.arrival, request.end(), compute);
        placement.sites.push_back(Site{j, 1});

        const edge::Cloudlet& cloudlet = instance_.network.cloudlet(j);
        const double log_pair = vnf::offsite_log_failure(vnf_rel, cloudlet.reliability);
        // Eq. 67 against the (possibly scaled) capacity;
        // ln(1-R)/ln(1-r_f r_c) > 0, so lambda grows monotonically.
        const double ratio = log_target / log_pair;
        VNFR_CHECK(ratio > 0.0, "Eq. (67) growth ratio for cloudlet ", j.value);
        const double cap = cloudlet.capacity * dual_scale_;
        VNFR_CHECK(cap > 0.0, "dual update capacity for cloudlet ", j.value);
        const double mult = 1.0 + ratio * compute / cap;
        const double add = ratio * compute * request.payment / (request.duration * cap);
        auto& lam = lambda_[j.index()];
        for (TimeSlot t = request.arrival; t < request.end(); ++t) {
            auto& value = lam[static_cast<std::size_t>(t)];
            double updated = value * mult + add;
            // Saturate as in Eq. 34 (see core/dual_limits.hpp): past the
            // ceiling the slot prices out every representable payment, and
            // the unbounded recursion would overflow on long traces.
            if (!(updated < kDualPriceCeiling)) updated = kDualPriceCeiling;
            value = VNFR_CHECK_FINITE(updated);
            VNFR_DCHECK(value >= 0.0, "Eq. (67) dual update for ", j.value, " slot ", t);
        }
    }

    Decision d;
    d.admitted = true;
    d.placement = std::move(placement);
    return d;
}

}  // namespace vnfr::core
