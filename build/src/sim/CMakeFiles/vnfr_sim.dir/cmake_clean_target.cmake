file(REMOVE_RECURSE
  "libvnfr_sim.a"
)
