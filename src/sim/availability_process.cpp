#include "sim/availability_process.hpp"

#include <stdexcept>

#include "common/contracts.hpp"

namespace vnfr::sim {

AvailabilityProcess::AvailabilityProcess(const core::Instance& instance,
                                         double cloudlet_mttr, double instance_mttr,
                                         common::Rng rng)
    : instance_(instance),
      cloudlet_mttr_(cloudlet_mttr),
      instance_mttr_(instance_mttr),
      rng_(rng) {
    if (cloudlet_mttr < 1.0 || instance_mttr < 1.0)
        throw std::invalid_argument("AvailabilityProcess: mttr must be >= 1 slot");
    cloudlets_.reserve(instance.network.cloudlet_count());
    for (const edge::Cloudlet& c : instance.network.cloudlets()) {
        cloudlets_.push_back(make_chain(c.reliability, cloudlet_mttr_));
    }
}

AvailabilityProcess::Chain AvailabilityProcess::make_chain(double reliability, double mttr) {
    Chain chain;
    chain.p_repair = 1.0 / mttr;
    // Stationary up-fraction p_repair / (p_repair + p_fail) = reliability.
    chain.p_fail = chain.p_repair * (1.0 - reliability) / reliability;
    // Clamp: extremely unreliable components with short repair could push
    // p_fail above 1; treat as "fails every slot it is up".
    if (chain.p_fail > 1.0) chain.p_fail = 1.0;
    VNFR_CHECK_PROB(chain.p_repair);
    VNFR_CHECK_PROB(chain.p_fail);
    chain.up = rng_.bernoulli(reliability);  // start in steady state
    return chain;
}

std::size_t AvailabilityProcess::track(const workload::Request& request,
                                       const core::Placement& placement) {
    TrackedPlacement tracked;
    const double vnf_rel = instance_.catalog.reliability(request.vnf);
    for (const core::Site& site : placement.sites) {
        if (!site.cloudlet.valid() || site.cloudlet.index() >= cloudlets_.size())
            throw std::invalid_argument("AvailabilityProcess: unknown cloudlet in placement");
        if (site.replicas < 1)
            throw std::invalid_argument("AvailabilityProcess: non-positive replicas");
        tracked.cloudlets.push_back(site.cloudlet);
        std::vector<Chain> replicas;
        replicas.reserve(static_cast<std::size_t>(site.replicas));
        for (int k = 0; k < site.replicas; ++k) {
            replicas.push_back(make_chain(vnf_rel, instance_mttr_));
        }
        tracked.replicas.push_back(std::move(replicas));
    }
    tracked_.push_back(std::move(tracked));
    return tracked_.size() - 1;
}

void AvailabilityProcess::step_chain(Chain& chain) {
    if (chain.up) {
        if (rng_.bernoulli(chain.p_fail)) chain.up = false;
    } else {
        if (rng_.bernoulli(chain.p_repair)) chain.up = true;
    }
}

void AvailabilityProcess::step() {
    for (Chain& c : cloudlets_) step_chain(c);
    for (TrackedPlacement& t : tracked_) {
        for (auto& site_replicas : t.replicas) {
            for (Chain& replica : site_replicas) step_chain(replica);
        }
    }
}

bool AvailabilityProcess::cloudlet_up(CloudletId c) const {
    if (!c.valid() || c.index() >= cloudlets_.size())
        throw std::invalid_argument("AvailabilityProcess: unknown cloudlet");
    return cloudlets_[c.index()].up;
}

AvailabilityProcess::ServingReplica AvailabilityProcess::serving_replica(
    std::size_t handle) const {
    const TrackedPlacement& t = tracked_.at(handle);
    for (std::size_t s = 0; s < t.cloudlets.size(); ++s) {
        if (!cloudlets_[t.cloudlets[s].index()].up) continue;
        for (std::size_t k = 0; k < t.replicas[s].size(); ++k) {
            if (t.replicas[s][k].up) return {s, k};
        }
    }
    return {};
}

CloudletId AvailabilityProcess::site_cloudlet(std::size_t handle, std::size_t site) const {
    return tracked_.at(handle).cloudlets.at(site);
}

}  // namespace vnfr::sim
