// Positive fixture for the vnfr-asa durability-order rules. Lives under
// src/serve/ in the fixture tree — the scope where crash-recovery
// proofs assume the write -> fsync -> rename -> dirsync order. The raw
// ::-qualified syscalls here also trip durability-vfs-routing: this file
// is not the Vfs backend, so each one bypasses fault injection.
#include <string>

namespace vnfr::serve {

bool write_all(int fd, const void* data, std::size_t len);
void fsync_parent_dir(const std::string& path);

// rename with no fsync of the temp file first and no directory sync
// after: both order rules fire on the same call site.
void publish_unsafely(const std::string& tmp, const std::string& path) {
    ::rename(tmp.c_str(), path.c_str());  // expect: durability-rename-fsync, durability-rename-dirsync, durability-vfs-routing
}

// rename whose fsync comes *after* it: ordering matters, not presence.
void publish_fsync_too_late(int fd, const std::string& tmp,
                            const std::string& path) {
    ::rename(tmp.c_str(), path.c_str());  // expect: durability-rename-fsync, durability-vfs-routing
    ::fsync(fd);  // expect: durability-vfs-routing
    fsync_parent_dir(path);
}

// WAL append whose bytes never reach a sync before the function returns
// (and could therefore be externalized before they are durable).
bool append_unsafely(int fd, const std::string& payload) {
    return write_all(fd, payload.data(), payload.size());  // expect: durability-wal-sync
}

}  // namespace vnfr::serve
