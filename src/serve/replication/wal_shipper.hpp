// Tails the primary controller's on-disk WAL and streams committed record
// bytes to the standby through a ShipTransport.
//
// The shipper never reads past the primary's durable watermark
// (AdmissionController::wal_position() reports generation, record count,
// and durable byte size under the controller lock), so every byte it
// ships is already fdatasync'd — ship-before-ack can never get ahead of
// durability. Rotated-out generations stay on disk (ServeConfig::
// retain_wals) until the standby's acknowledged watermark passes them;
// process_acks reads the latest ack FIRST and only then releases
// generations below it (ship-before-ack ordering, checked by vnfr_asa's
// replication-release-ack rule).
//
// Lost/mangled frames surface as a `resync` ack from the standby; the
// shipper rewinds its cursor to the acked position and re-ships the
// suffix (go-back-N). Retransmits are safe end-to-end: the standby's
// covered-set makes apply idempotent.
#pragma once

#include <cstdint>
#include <string>

#include "common/mutex.hpp"
#include "serve/admission_controller.hpp"
#include "serve/replication/ship_transport.hpp"

namespace vnfr::serve::replication {

struct ShipperStats {
    std::uint64_t frames_shipped{0};
    std::uint64_t records_shipped{0};  ///< includes retransmitted records
    std::uint64_t rotates_shipped{0};
    std::uint64_t resync_rewinds{0};
    std::uint64_t generations_released{0};
    std::uint64_t acked_generation{0};
    std::uint64_t acked_offset{0};
};

class WalShipper {
  public:
    struct Config {
        /// Upper bound on records packed into one data frame.
        std::size_t max_records_per_frame{32};
    };

    /// `primary` must outlive the shipper and have been constructed with
    /// retain_wals so rotated generations survive until acked.
    WalShipper(AdmissionController& primary, std::string data_dir,
               ShipTransport& transport, Config config);
    WalShipper(AdmissionController& primary, std::string data_dir,
               ShipTransport& transport)
        : WalShipper(primary, std::move(data_dir), transport, Config{}) {}

    WalShipper(const WalShipper&) = delete;
    WalShipper& operator=(const WalShipper&) = delete;

    /// One replication beat: absorb the latest ack (rewinding on resync,
    /// releasing fully-acked generations), then ship every durable byte
    /// between the cursor and the primary's watermark. Returns frames
    /// offered to the transport this call; backpressure simply stops the
    /// pump early and the next call resumes. Throws ReplicationGapError
    /// if a generation the cursor still needs has vanished from disk.
    std::size_t pump() VNFR_EXCLUDES(shipper_mu_);

    /// The shipper's read cursor (next byte to ship) in primary WAL
    /// coordinates.
    [[nodiscard]] std::uint64_t cursor_generation() const VNFR_EXCLUDES(shipper_mu_);
    [[nodiscard]] std::uint64_t cursor_offset() const VNFR_EXCLUDES(shipper_mu_);

    [[nodiscard]] ShipperStats stats() const VNFR_EXCLUDES(shipper_mu_);

  private:
    void process_acks_locked() VNFR_REQUIRES(shipper_mu_);
    /// Ships record bytes [cursor_off_, limit) of the file image `bytes`
    /// (generation cursor_gen_), counting frames into `*frames`. Returns
    /// false on backpressure (cursor stays at the first unshipped byte).
    bool ship_slice_locked(const std::string& bytes, std::uint64_t limit,
                           std::size_t* frames) VNFR_REQUIRES(shipper_mu_);

    mutable common::Mutex shipper_mu_;
    AdmissionController* primary_;
    std::string data_dir_;
    ShipTransport* transport_;
    Config config_;
    std::uint64_t cursor_gen_ VNFR_GUARDED_BY(shipper_mu_){0};
    std::uint64_t cursor_off_ VNFR_GUARDED_BY(shipper_mu_){kWalHeaderSize};
    ShipperStats stats_ VNFR_GUARDED_BY(shipper_mu_);
};

}  // namespace vnfr::serve::replication
