// Shared environment for the figure-reproduction benches.
//
// Section VI of the paper: a real topology with randomly attached
// cloudlets, 10 VNF types (reliability 0.9-0.9999, demand 1-3 units),
// requests with random requirements/payments, revenue averaged over seeds.
// Capacities are sized so the network saturates toward the right end of
// the request sweep — the regime where the algorithms separate.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "report/table.hpp"
#include "sim/experiment.hpp"

namespace vnfr::bench {

/// True when VNFR_BENCH_QUICK is set: shrinks sweeps for smoke runs.
inline bool quick_mode() { return std::getenv("VNFR_BENCH_QUICK") != nullptr; }

/// The paper's evaluation environment with the request count as the free
/// parameter (Figure 1 sweeps it; Figure 2 fixes it at the saturated end).
inline core::InstanceConfig paper_environment(std::size_t request_count) {
    core::InstanceConfig cfg;
    cfg.topology = "geant";
    cfg.cloudlets.count = 8;
    // Capacities large relative to a single placement's demand (the regime
    // of the primal-dual analysis: cap >> a) but small enough that the
    // network is ~2.5x over-subscribed at n = 800, where the admission
    // policies separate.
    cfg.cloudlets.capacity_min = 40;
    cfg.cloudlets.capacity_max = 60;
    cfg.cloudlets.reliability_min = 0.95;
    cfg.cloudlets.reliability_max = 0.999;
    cfg.workload.horizon = 24;
    cfg.workload.count = request_count;
    cfg.workload.duration_min = 4;
    cfg.workload.duration_max = 16;
    cfg.workload.requirement_min = 0.90;
    cfg.workload.requirement_max = 0.97;
    cfg.workload.payment_rate_min = 1.0;
    cfg.workload.payment_rate_max = 5.0;
    return cfg;
}

inline sim::InstanceFactory make_factory(core::InstanceConfig cfg) {
    return [cfg](common::Rng& rng) { return core::make_instance(cfg, rng); };
}

/// One row of a figure series: the swept x plus per-algorithm outcomes.
struct SeriesRow {
    double x{0};
    sim::ExperimentOutcome outcome;
};

/// Prints a figure as an aligned table (mean +/- 95% CI per algorithm) and
/// as a CSV block for replotting.
inline void print_series(const std::string& title, const std::string& x_label,
                         const std::vector<sim::Algorithm>& algorithms,
                         const std::vector<SeriesRow>& rows, bool with_offline_bound) {
    std::cout << "== " << title << " ==\n\n";
    std::vector<std::string> headers{x_label};
    for (const sim::Algorithm a : algorithms) {
        headers.emplace_back(sim::algorithm_name(a));
    }
    if (with_offline_bound) headers.emplace_back("offline-bound");
    report::Table table(headers);
    for (const SeriesRow& row : rows) {
        std::vector<std::string> cells{report::format_double(row.x, 0)};
        for (const auto& alg : row.outcome.per_algorithm) {
            cells.push_back(report::format_mean_ci(alg.revenue.mean(),
                                                   alg.revenue.ci95_halfwidth()));
        }
        if (with_offline_bound) {
            cells.push_back(report::format_double(row.outcome.offline_bound.mean(), 1));
        }
        table.add_row(std::move(cells));
    }
    std::cout << table.to_text() << "\ncsv:\n" << x_label;
    for (const sim::Algorithm a : algorithms) std::cout << ',' << sim::algorithm_name(a);
    if (with_offline_bound) std::cout << ",offline-bound";
    std::cout << '\n';
    for (const SeriesRow& row : rows) {
        std::cout << row.x;
        for (const auto& alg : row.outcome.per_algorithm) {
            std::cout << ',' << alg.revenue.mean();
        }
        if (with_offline_bound) std::cout << ',' << row.outcome.offline_bound.mean();
        std::cout << '\n';
    }
    std::cout << '\n';
}

/// Revenue improvement of the first algorithm over the second at the last
/// sweep point, as the paper quotes ("outperforms greedy by X%").
inline void print_final_gap(const std::vector<SeriesRow>& rows) {
    if (rows.empty() || rows.back().outcome.per_algorithm.size() < 2) return;
    const auto& last = rows.back().outcome.per_algorithm;
    const double a = last[0].revenue.mean();
    const double b = last[1].revenue.mean();
    if (b > 0.0) {
        std::cout << "final-point improvement of " << sim::algorithm_name(last[0].algorithm)
                  << " over " << sim::algorithm_name(last[1].algorithm) << ": "
                  << report::format_double((a / b - 1.0) * 100.0, 1) << "%\n\n";
    }
}

}  // namespace vnfr::bench
