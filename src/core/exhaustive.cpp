#include "core/exhaustive.hpp"

#include <optional>
#include <stdexcept>

#include "common/math.hpp"
#include "edge/resource_ledger.hpp"
#include "vnf/reliability.hpp"

namespace vnfr::core {

namespace {

/// Suffix sums of payments: an upper bound on revenue still reachable from
/// request i onward, used to prune the search.
std::vector<double> suffix_payments(const Instance& instance) {
    std::vector<double> suffix(instance.requests.size() + 1, 0.0);
    for (std::size_t i = instance.requests.size(); i-- > 0;) {
        suffix[i] = suffix[i + 1] + instance.requests[i].payment;
    }
    return suffix;
}

struct SearchState {
    const Instance& instance;
    edge::ResourceLedger ledger;
    std::vector<double> suffix;
    double best_revenue{0};
    std::vector<Decision> current;
    std::vector<Decision> best;
};

void search_onsite(SearchState& st, std::size_t i, double revenue) {
    if (i == st.instance.requests.size()) {
        if (revenue > st.best_revenue) {
            st.best_revenue = revenue;
            st.best = st.current;
        }
        return;
    }
    if (revenue + st.suffix[i] <= st.best_revenue) return;  // bound

    const workload::Request& r = st.instance.requests[i];
    const double compute = st.instance.catalog.compute_units(r.vnf);
    const double vnf_rel = st.instance.catalog.reliability(r.vnf);

    // Option A: admit on some cloudlet.
    for (const edge::Cloudlet& c : st.instance.network.cloudlets()) {
        const auto n = vnf::min_onsite_replicas(c.reliability, vnf_rel, r.requirement);
        if (!n) continue;
        const double demand = *n * compute;
        if (!st.ledger.fits(c.id, r.arrival, r.end(), demand)) continue;
        st.ledger.reserve(c.id, r.arrival, r.end(), demand);
        st.current[i] = Decision{true, RejectReason::kNone, Placement{r.id, {Site{c.id, *n}}}};
        search_onsite(st, i + 1, revenue + r.payment);
        st.ledger.release(c.id, r.arrival, r.end(), demand);
    }
    // Option B: reject.
    st.current[i] = Decision{};
    search_onsite(st, i + 1, revenue);
}

void search_offsite(SearchState& st, const std::vector<std::vector<unsigned>>& masks,
                    std::size_t i, double revenue) {
    if (i == st.instance.requests.size()) {
        if (revenue > st.best_revenue) {
            st.best_revenue = revenue;
            st.best = st.current;
        }
        return;
    }
    if (revenue + st.suffix[i] <= st.best_revenue) return;

    const workload::Request& r = st.instance.requests[i];
    const double compute = st.instance.catalog.compute_units(r.vnf);
    const std::size_t m = st.instance.network.cloudlet_count();

    for (const unsigned mask : masks[i]) {
        bool fits = true;
        for (std::size_t j = 0; j < m && fits; ++j) {
            if (mask & (1u << j)) {
                fits = st.ledger.fits(CloudletId{static_cast<std::int64_t>(j)}, r.arrival,
                                      r.end(), compute);
            }
        }
        if (!fits) continue;
        Placement placement{r.id, {}};
        for (std::size_t j = 0; j < m; ++j) {
            if (mask & (1u << j)) {
                const CloudletId c{static_cast<std::int64_t>(j)};
                st.ledger.reserve(c, r.arrival, r.end(), compute);
                placement.sites.push_back(Site{c, 1});
            }
        }
        st.current[i] = Decision{true, RejectReason::kNone, placement};
        search_offsite(st, masks, i + 1, revenue + r.payment);
        for (const Site& s : st.current[i].placement.sites) {
            st.ledger.release(s.cloudlet, r.arrival, r.end(), compute);
        }
    }
    st.current[i] = Decision{};
    search_offsite(st, masks, i + 1, revenue);
}

}  // namespace

ExhaustiveResult exhaustive_onsite(const Instance& instance) {
    instance.validate();
    if (instance.requests.size() > 12 || instance.network.cloudlet_count() > 6) {
        throw std::invalid_argument("exhaustive_onsite: instance too large");
    }
    SearchState st{instance,
                   edge::ResourceLedger(instance.network.capacities(), instance.horizon),
                   suffix_payments(instance),
                   0.0,
                   std::vector<Decision>(instance.requests.size()),
                   std::vector<Decision>(instance.requests.size())};
    search_onsite(st, 0, 0.0);
    return ExhaustiveResult{st.best_revenue, std::move(st.best)};
}

ExhaustiveResult exhaustive_offsite(const Instance& instance) {
    instance.validate();
    const std::size_t m = instance.network.cloudlet_count();
    if (instance.requests.size() > 10 || m > 6) {
        throw std::invalid_argument("exhaustive_offsite: instance too large");
    }
    // Pre-compute, per request, every cloudlet subset meeting R_i. Any
    // feasible admission can be reduced to such a subset without losing
    // revenue, so enumerating them is exact.
    std::vector<std::vector<unsigned>> masks(instance.requests.size());
    for (std::size_t i = 0; i < instance.requests.size(); ++i) {
        const workload::Request& r = instance.requests[i];
        const double vnf_rel = instance.catalog.reliability(r.vnf);
        const double log_target = common::log1m(r.requirement);
        for (unsigned mask = 1; mask < (1u << m); ++mask) {
            double log_fail = 0.0;
            for (std::size_t j = 0; j < m; ++j) {
                if (mask & (1u << j)) {
                    log_fail += vnf::offsite_log_failure(
                        vnf_rel,
                        instance.network.cloudlet(CloudletId{static_cast<std::int64_t>(j)})
                            .reliability);
                }
            }
            if (log_fail <= log_target) masks[i].push_back(mask);
        }
    }
    SearchState st{instance,
                   edge::ResourceLedger(instance.network.capacities(), instance.horizon),
                   suffix_payments(instance),
                   0.0,
                   std::vector<Decision>(instance.requests.size()),
                   std::vector<Decision>(instance.requests.size())};
    search_offsite(st, masks, 0, 0.0);
    return ExhaustiveResult{st.best_revenue, std::move(st.best)};
}

}  // namespace vnfr::core
