#include "opt/presolve.hpp"

#include <cmath>
#include <stdexcept>

#include "common/contracts.hpp"

namespace vnfr::opt {

namespace {

constexpr double kTol = 1e-9;

/// Working copy of the model that supports in-place bound tightening and
/// row/column deactivation.
struct Work {
    std::vector<double> objective;
    std::vector<double> lower;
    std::vector<double> upper;
    std::vector<char> var_active;
    struct WorkRow {
        std::vector<std::pair<std::size_t, double>> terms;
        Relation relation;
        double rhs;
        bool active{true};
    };
    std::vector<WorkRow> rows;
};

}  // namespace

std::vector<double> PresolveResult::restore(const std::vector<double>& reduced_x) const {
    if (reduced_x.size() != kept.size())
        throw std::invalid_argument("PresolveResult::restore: size mismatch");
    std::vector<double> x(is_fixed.size(), 0.0);
    for (std::size_t j = 0; j < is_fixed.size(); ++j) {
        if (is_fixed[j]) x[j] = fixed_values[j];
    }
    for (std::size_t r = 0; r < kept.size(); ++r) x[kept[r]] = reduced_x[r];
    return x;
}

PresolveResult presolve(const LinearProgram& lp) {
    const std::size_t n = lp.variable_count();
    Work work;
    work.objective.resize(n);
    work.lower.resize(n);
    work.upper.resize(n);
    work.var_active.assign(n, 1);
    for (std::size_t j = 0; j < n; ++j) {
        work.objective[j] = lp.objective_coefficient(j);
        work.lower[j] = lp.lower_bound(j);
        work.upper[j] = lp.upper_bound(j);
    }
    work.rows.reserve(lp.row_count());
    for (std::size_t k = 0; k < lp.row_count(); ++k) {
        const Row& row = lp.row(k);
        work.rows.push_back(Work::WorkRow{row.terms, row.relation, row.rhs, true});
    }

    PresolveResult result;
    result.is_fixed.assign(n, 0);
    result.fixed_values.assign(n, 0.0);

    const auto fix_variable = [&](std::size_t var, double value) -> bool {
        if (value < work.lower[var] - kTol || value > work.upper[var] + kTol) return false;
        work.var_active[var] = 0;
        result.is_fixed[var] = 1;
        result.fixed_values[var] = value;
        result.objective_offset += work.objective[var] * value;
        // Substitute into every row.
        for (auto& row : work.rows) {
            if (!row.active) continue;
            for (auto& [v, coeff] : row.terms) {
                if (v == var) {
                    row.rhs -= coeff * value;
                    coeff = 0.0;
                }
            }
        }
        return true;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        // Fixed variables (lower == upper).
        for (std::size_t j = 0; j < n; ++j) {
            if (!work.var_active[j]) continue;
            if (work.upper[j] - work.lower[j] <= kTol) {
                if (!fix_variable(j, work.lower[j])) {
                    result.infeasible = true;
                    return result;
                }
                changed = true;
            }
        }
        for (auto& row : work.rows) {
            if (!row.active) continue;
            // Count live terms.
            std::size_t live = 0;
            std::size_t live_var = 0;
            double live_coeff = 0.0;
            for (const auto& [v, coeff] : row.terms) {
                // Exact sparsity test: fix_variable() zeroes coefficients
                // literally, so tolerance would misclassify tiny live terms.
                if (coeff != 0.0 && work.var_active[v]) {  // vnfr-lint: allow(float-eq) sparsity test on literally-zeroed coefficients
                    ++live;
                    live_var = v;
                    live_coeff = coeff;
                }
            }
            if (live == 0) {
                // Empty row: trivially satisfied or infeasible.
                const bool ok = (row.relation == Relation::kLe && row.rhs >= -kTol) ||
                                (row.relation == Relation::kGe && row.rhs <= kTol) ||
                                (row.relation == Relation::kEq && std::fabs(row.rhs) <= kTol);
                if (!ok) {
                    result.infeasible = true;
                    return result;
                }
                row.active = false;
                ++result.removed_rows;
                changed = true;
                continue;
            }
            if (live == 1) {
                // Singleton row -> bound on the remaining variable.
                VNFR_CHECK(live_coeff != 0.0,  // vnfr-lint: allow(float-eq) invariant check mirrors the exact sparsity test
                           "singleton row with zero live coefficient");
                const double bound = row.rhs / live_coeff;
                Relation rel = row.relation;
                if (live_coeff < 0.0) {
                    if (rel == Relation::kLe) rel = Relation::kGe;
                    else if (rel == Relation::kGe) rel = Relation::kLe;
                }
                bool ok = true;
                switch (rel) {
                    case Relation::kLe:
                        if (bound < work.lower[live_var] - kTol) ok = false;
                        else work.upper[live_var] = std::min(work.upper[live_var], bound);
                        break;
                    case Relation::kGe:
                        if (bound > work.upper[live_var] + kTol) ok = false;
                        // Lower bounds below 0 are vacuous (x >= 0 anyway).
                        else if (bound > work.lower[live_var]) {
                            work.lower[live_var] = std::max(0.0, bound);
                        }
                        break;
                    case Relation::kEq:
                        ok = fix_variable(live_var, bound);
                        break;
                }
                if (!ok) {
                    result.infeasible = true;
                    return result;
                }
                row.active = false;
                ++result.removed_rows;
                changed = true;
            }
        }
    }

    // Assemble the reduced program.
    std::vector<std::size_t> new_index(n, static_cast<std::size_t>(-1));
    for (std::size_t j = 0; j < n; ++j) {
        if (!work.var_active[j]) {
            ++result.removed_variables;
            continue;
        }
        new_index[j] = result.reduced.add_variable(work.objective[j], work.upper[j],
                                                   lp.variable_name(j));
        result.reduced.set_bounds(new_index[j], work.lower[j], work.upper[j]);
        result.kept.push_back(j);
    }
    for (const auto& row : work.rows) {
        if (!row.active) continue;
        std::vector<std::pair<std::size_t, double>> terms;
        for (const auto& [v, coeff] : row.terms) {
            if (coeff != 0.0 && work.var_active[v]) {  // vnfr-lint: allow(float-eq) sparsity test on literally-zeroed coefficients
                VNFR_DCHECK(new_index[v] != static_cast<std::size_t>(-1),
                            "active variable ", v, " missing from the reduced program");
                terms.emplace_back(new_index[v], coeff);
            }
        }
        result.reduced.add_row(std::move(terms), row.relation, row.rhs);
    }
    return result;
}

}  // namespace vnfr::opt
