#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "helpers.hpp"

namespace vnfr::sim {
namespace {

core::Instance factory(common::Rng& rng) {
    return vnfr::testing::random_instance(rng, 20, 3, 8, 10, 20);
}

TEST(Experiment, AlgorithmNamesAreStable) {
    EXPECT_EQ(algorithm_name(Algorithm::kOnsitePrimalDual), "onsite-primal-dual");
    EXPECT_EQ(algorithm_name(Algorithm::kOnsitePrimalDualPure), "onsite-primal-dual-pure");
    EXPECT_EQ(algorithm_name(Algorithm::kOnsiteGreedy), "onsite-greedy");
    EXPECT_EQ(algorithm_name(Algorithm::kOffsitePrimalDual), "offsite-primal-dual");
    EXPECT_EQ(algorithm_name(Algorithm::kOffsiteGreedy), "offsite-greedy");
}

TEST(Experiment, MakeSchedulerMatchesName) {
    common::Rng rng(1);
    const core::Instance inst = factory(rng);
    for (const Algorithm a :
         {Algorithm::kOnsitePrimalDual, Algorithm::kOnsitePrimalDualPure,
          Algorithm::kOnsiteGreedy, Algorithm::kOffsitePrimalDual,
          Algorithm::kOffsiteGreedy}) {
        const auto scheduler = make_scheduler(a, inst);
        EXPECT_EQ(scheduler->name(), algorithm_name(a));
    }
}

TEST(Experiment, AggregatesConfiguredSeeds) {
    ExperimentConfig cfg;
    cfg.algorithms = {Algorithm::kOnsitePrimalDual, Algorithm::kOnsiteGreedy};
    cfg.seeds = 4;
    const ExperimentOutcome outcome = run_experiment(factory, cfg);
    ASSERT_EQ(outcome.per_algorithm.size(), 2u);
    for (const AlgorithmOutcome& a : outcome.per_algorithm) {
        EXPECT_EQ(a.revenue.count(), 4u);
        EXPECT_EQ(a.acceptance.count(), 4u);
        EXPECT_GT(a.revenue.mean(), 0.0);
        EXPECT_GT(a.acceptance.mean(), 0.0);
        EXPECT_LE(a.acceptance.max(), 1.0);
    }
}

TEST(Experiment, DeterministicForSameBaseSeed) {
    ExperimentConfig cfg;
    cfg.algorithms = {Algorithm::kOnsitePrimalDual};
    cfg.seeds = 3;
    cfg.base_seed = 1234;
    const ExperimentOutcome a = run_experiment(factory, cfg);
    const ExperimentOutcome b = run_experiment(factory, cfg);
    EXPECT_DOUBLE_EQ(a.per_algorithm[0].revenue.mean(), b.per_algorithm[0].revenue.mean());
    EXPECT_DOUBLE_EQ(a.per_algorithm[0].revenue.variance(),
                     b.per_algorithm[0].revenue.variance());
}

TEST(Experiment, DifferentBaseSeedsDiffer) {
    ExperimentConfig cfg;
    cfg.algorithms = {Algorithm::kOnsitePrimalDual};
    cfg.seeds = 3;
    cfg.base_seed = 1;
    const ExperimentOutcome a = run_experiment(factory, cfg);
    cfg.base_seed = 2;
    const ExperimentOutcome b = run_experiment(factory, cfg);
    EXPECT_NE(a.per_algorithm[0].revenue.mean(), b.per_algorithm[0].revenue.mean());
}

TEST(Experiment, OfflineBoundDominatesOnlineRevenue) {
    ExperimentConfig cfg;
    cfg.algorithms = {Algorithm::kOnsitePrimalDual, Algorithm::kOnsiteGreedy};
    cfg.seeds = 2;
    cfg.compute_offline = true;
    cfg.offline_scheme = core::Scheme::kOnsite;
    cfg.offline.run_ilp = false;  // LP bound only: fast and still an upper bound
    const ExperimentOutcome outcome = run_experiment(factory, cfg);
    ASSERT_EQ(outcome.offline_bound.count(), 2u);
    for (const AlgorithmOutcome& a : outcome.per_algorithm) {
        EXPECT_LE(a.revenue.mean(), outcome.offline_bound.mean() + 1e-6);
    }
}

TEST(Experiment, RejectsEmptyConfig) {
    // Config validation is a contract now (VNFR_CHECK), not ad-hoc throws.
    ExperimentConfig cfg;
    EXPECT_THROW(run_experiment(factory, cfg), common::ContractViolation);
    cfg.algorithms = {Algorithm::kOnsiteGreedy};
    cfg.seeds = 0;
    EXPECT_THROW(run_experiment(factory, cfg), common::ContractViolation);
}

}  // namespace
}  // namespace vnfr::sim
