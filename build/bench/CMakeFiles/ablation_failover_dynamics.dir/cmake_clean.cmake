file(REMOVE_RECURSE
  "CMakeFiles/ablation_failover_dynamics.dir/ablation_failover_dynamics.cpp.o"
  "CMakeFiles/ablation_failover_dynamics.dir/ablation_failover_dynamics.cpp.o.d"
  "ablation_failover_dynamics"
  "ablation_failover_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_failover_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
