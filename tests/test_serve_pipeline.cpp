// ShardedAdmissionPipeline + MpscQueue tests, including the TSan soak:
// N producer threads hammer the transport while a checkpoint thread
// forces concurrent WAL rotation and the bounded admission queue sheds
// under pressure. The suite name matches the CI TSan filter ("Serve"),
// so these run under -fsanitize=thread in the tsan job.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/mpsc_queue.hpp"
#include "common/rng.hpp"
#include "helpers.hpp"
#include "serve/admission_controller.hpp"
#include "serve/admission_pipeline.hpp"

namespace vnfr::serve {
namespace {

using vnfr::testing::random_instance;

std::string fresh_dir(const std::string& name) {
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

TEST(ServeMpscQueue, FifoWithinCapacityAndFullWhenSaturated) {
    common::MpscQueue<int> q(3);
    EXPECT_EQ(q.try_push(1), common::MpscPushResult::kPushed);
    EXPECT_EQ(q.try_push(2), common::MpscPushResult::kPushed);
    EXPECT_EQ(q.try_push(3), common::MpscPushResult::kPushed);
    EXPECT_EQ(q.try_push(4), common::MpscPushResult::kFull);
    int out = 0;
    EXPECT_EQ(q.pop(out, std::chrono::milliseconds(1)),
              common::MpscPopResult::kItem);
    EXPECT_EQ(out, 1);
    EXPECT_EQ(q.try_push(4), common::MpscPushResult::kPushed);  // slot freed
    for (const int want : {2, 3, 4}) {
        ASSERT_EQ(q.pop(out, std::chrono::milliseconds(1)),
                  common::MpscPopResult::kItem);
        EXPECT_EQ(out, want);
    }
    EXPECT_EQ(q.pop(out, std::chrono::milliseconds(1)),
              common::MpscPopResult::kTimeout);
}

TEST(ServeMpscQueue, CloseDrainsBeforeReportingClosed) {
    common::MpscQueue<int> q(4);
    ASSERT_EQ(q.try_push(7), common::MpscPushResult::kPushed);
    q.close();
    EXPECT_EQ(q.try_push(8), common::MpscPushResult::kClosed);
    int out = 0;
    EXPECT_EQ(q.pop(out, std::chrono::milliseconds(1)),
              common::MpscPopResult::kItem);
    EXPECT_EQ(out, 7);
    EXPECT_EQ(q.pop(out, std::chrono::milliseconds(1)),
              common::MpscPopResult::kClosed);
}

TEST(ServeMpscQueue, PopWakesOnCrossThreadPush) {
    common::MpscQueue<int> q(4);
    std::thread producer([&q] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        ASSERT_EQ(q.try_push(42), common::MpscPushResult::kPushed);
    });
    int out = 0;
    // Far longer than the push delay: the notify must wake us early.
    EXPECT_EQ(q.pop(out, std::chrono::seconds(10)), common::MpscPopResult::kItem);
    EXPECT_EQ(out, 42);
    producer.join();
}

/// Reference digest: the same stream driven sequentially into a bare
/// controller with the same serve parameters.
std::uint64_t sequential_digest(const core::Instance& inst, const ServeConfig& base,
                                const std::string& dir) {
    ServeConfig cfg = base;
    cfg.data_dir = dir;
    AdmissionController controller(inst, core::Scheme::kOnsite, cfg);
    for (std::size_t i = 0; i < inst.requests.size(); ++i) {
        controller.submit(i, inst.requests[i]);
        controller.drain();  // one by one: occupancy never forces a shed
    }
    return controller.state_digest();
}

ServeConfig soak_config() {
    ServeConfig cfg;
    cfg.checkpoint_every = 32;
    cfg.queue_capacity = 4096;  // no controller sheds in equivalence tests
    cfg.group_commit = 8;
    cfg.decide_shards = 4;
    cfg.decide_threads = 4;
    return cfg;
}

TEST(ServePipeline, SingleProducerMatchesSequentialDigest) {
    common::Rng rng(0xF00D);
    const core::Instance inst = random_instance(rng, 150, 4, 24);
    const std::uint64_t want =
        sequential_digest(inst, soak_config(), fresh_dir("pipe_seq_ref"));

    ServeConfig cfg = soak_config();
    cfg.data_dir = fresh_dir("pipe_single");
    AdmissionController controller(inst, core::Scheme::kOnsite, cfg);
    {
        PipelineConfig pcfg;
        pcfg.transport_capacity = 16;
        pcfg.max_batch = 8;
        ShardedAdmissionPipeline pipeline(controller, pcfg);
        for (std::size_t i = 0; i < inst.requests.size(); ++i) {
            ASSERT_TRUE(pipeline.submit(i, inst.requests[i]));
        }
        pipeline.stop();
        const PipelineStats stats = pipeline.stats();
        EXPECT_EQ(stats.accepted, inst.requests.size());
        EXPECT_EQ(stats.submitted, inst.requests.size());
        EXPECT_EQ(stats.processed, inst.requests.size());
    }
    EXPECT_EQ(controller.state_digest(), want);
    EXPECT_EQ(controller.metrics().shed, 0u);
}

TEST(ServePipeline, ManyProducersReorderToTheSequentialStream) {
    common::Rng rng(0xF00E);
    const core::Instance inst = random_instance(rng, 240, 4, 24);
    const std::uint64_t want =
        sequential_digest(inst, soak_config(), fresh_dir("pipe_multi_ref"));

    ServeConfig cfg = soak_config();
    cfg.data_dir = fresh_dir("pipe_multi");
    AdmissionController controller(inst, core::Scheme::kOnsite, cfg);
    {
        PipelineConfig pcfg;
        pcfg.transport_capacity = 32;
        pcfg.max_batch = 16;
        ShardedAdmissionPipeline pipeline(controller, pcfg);
        constexpr std::size_t kProducers = 6;
        std::vector<std::thread> producers;
        producers.reserve(kProducers);
        for (std::size_t p = 0; p < kProducers; ++p) {
            // Round-robin split: maximally out-of-order arrival.
            producers.emplace_back([&, p] {
                for (std::size_t i = p; i < inst.requests.size(); i += kProducers) {
                    ASSERT_TRUE(pipeline.submit(i, inst.requests[i]));
                }
            });
        }
        for (std::thread& t : producers) t.join();
        pipeline.stop();
        const PipelineStats stats = pipeline.stats();
        EXPECT_EQ(stats.submitted, inst.requests.size());
        EXPECT_EQ(stats.processed, inst.requests.size());
        EXPECT_GE(stats.max_reorder_depth, 1u);
    }
    EXPECT_EQ(controller.state_digest(), want);
}

TEST(ServePipeline, StreamGapSurfacesAsAnErrorOnStop) {
    common::Rng rng(0xF00F);
    const core::Instance inst = random_instance(rng, 8, 3, 12);
    ServeConfig cfg = soak_config();
    cfg.data_dir = fresh_dir("pipe_gap");
    AdmissionController controller(inst, core::Scheme::kOnsite, cfg);
    ShardedAdmissionPipeline pipeline(controller, PipelineConfig{});
    ASSERT_TRUE(pipeline.submit(0, inst.requests[0]));
    ASSERT_TRUE(pipeline.submit(2, inst.requests[2]));  // seq 1 never arrives
    EXPECT_THROW(pipeline.stop(), std::logic_error);
    pipeline.stop();  // idempotent after the error was consumed
}

// The soak proper: producers + concurrent checkpoints + shedding under a
// deliberately tiny admission queue, under TSan in CI. Timing-dependent
// shedding means no digest equality here (see admission_pipeline.hpp);
// the invariants are conservation and durable recoverability.
TEST(ServePipelineSoak, ProducersCheckpointsAndSheddingRaceCleanly) {
    common::Rng rng(0x50AC);
    const core::Instance inst = random_instance(rng, 600, 4, 24);
    ServeConfig cfg = soak_config();
    cfg.queue_capacity = 16;  // force controller-side sheds
    cfg.checkpoint_every = 16;
    cfg.data_dir = fresh_dir("pipe_soak");
    std::uint64_t digest_before = 0;
    {
        AdmissionController controller(inst, core::Scheme::kOnsite, cfg);
        {
            PipelineConfig pcfg;
            pcfg.transport_capacity = 8;  // saturates: backpressure path
            pcfg.max_batch = 32;
            pcfg.max_delay = std::chrono::microseconds(200);
            ShardedAdmissionPipeline pipeline(controller, pcfg);

            std::atomic<bool> done{false};
            std::thread rotator([&] {
                // Concurrent checkpoint/rotate against the pump loop.
                while (!done.load(std::memory_order_relaxed)) {
                    controller.checkpoint();
                    std::this_thread::yield();
                }
            });
            constexpr std::size_t kProducers = 4;
            std::vector<std::thread> producers;
            producers.reserve(kProducers);
            for (std::size_t p = 0; p < kProducers; ++p) {
                producers.emplace_back([&, p] {
                    for (std::size_t i = p; i < inst.requests.size();
                         i += kProducers) {
                        ASSERT_TRUE(pipeline.submit(i, inst.requests[i]));
                    }
                });
            }
            for (std::thread& t : producers) t.join();
            pipeline.stop();
            done.store(true, std::memory_order_relaxed);
            rotator.join();

            const PipelineStats stats = pipeline.stats();
            EXPECT_EQ(stats.submitted, inst.requests.size());
        }
        // Conservation: every request either decided or shed, exactly once.
        const ServeMetrics m = controller.metrics();
        EXPECT_EQ(m.processed + m.shed, inst.requests.size());
        EXPECT_GT(m.shed, 0u);  // the tiny queue really shed
        EXPECT_EQ(controller.resume_cursor(), inst.requests.size());
        digest_before = controller.state_digest();
    }
    // The raced-over state is durably recoverable bit-for-bit.
    AdmissionController recovered(inst, core::Scheme::kOnsite, cfg);
    EXPECT_EQ(recovered.state_digest(), digest_before);
}

}  // namespace
}  // namespace vnfr::serve
