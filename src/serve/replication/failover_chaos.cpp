#include "serve/replication/failover_chaos.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <optional>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"
#include "core/verify.hpp"
#include "serve/admission_controller.hpp"
#include "serve/chaos_support.hpp"
#include "serve/vfs.hpp"
#include "serve/replication/failover.hpp"
#include "serve/replication/standby.hpp"
#include "serve/replication/wal_shipper.hpp"

namespace vnfr::serve::replication {

namespace {

using chaos::assemble_decisions;
using chaos::DriveProgress;
using chaos::drive;
using chaos::drive_with_tick;
using chaos::file_size;
using chaos::fresh_state_dir;
using chaos::metrics_equal;
using chaos::newest_wal_file;
using chaos::rebuild_queue;
using chaos::same_admitted;
using chaos::unique_admitted;

void add_stats(TransportStats& into, const TransportStats& from) {
    into.frames_sent += from.frames_sent;
    into.frames_delivered += from.frames_delivered;
    into.frames_dropped += from.frames_dropped;
    into.frames_truncated += from.frames_truncated;
    into.frames_duplicated += from.frames_duplicated;
    into.frames_reordered += from.frames_reordered;
    into.sends_rejected_full += from.sends_rejected_full;
    into.acks_recorded += from.acks_recorded;
}

/// Pumps the link until it is fully drained and quiescent (control runs
/// only — a lagging trial never settles before its kill).
void settle_link(WalShipper& shipper, StandbyController& standby,
                 ShipTransport& transport) {
    for (int i = 0; i < 10000; ++i) {
        const std::size_t sent = shipper.pump();
        const std::size_t got = standby.poll();
        if (sent == 0 && got == 0 && transport.in_flight() == 0) return;
    }
    throw std::logic_error("failover chaos: replication link failed to settle");
}

}  // namespace

FailoverChaosResult run_failover_chaos_study(const core::Instance& instance,
                                             const FailoverChaosConfig& config) {
    const std::vector<workload::Request>& requests = instance.requests;
    if (requests.empty()) {
        throw std::invalid_argument("failover chaos: instance has no requests");
    }
    if (config.work_dir.empty()) {
        throw std::invalid_argument("failover chaos: work_dir not set");
    }
    if (::mkdir(config.work_dir.c_str(), 0755) != 0 && errno != EEXIST) {
        throw std::invalid_argument("failover chaos: cannot create work_dir " +
                                    config.work_dir);
    }
    const std::size_t ship_every = std::max<std::size_t>(1, config.ship_every);

    // Same cadence formula as the single-node chaos study: overflow the
    // queue between drains so shedding stays exercised across failovers.
    common::Rng pattern_rng = common::stream_rng(config.master_seed, 1);
    const std::size_t drain_every =
        config.queue_capacity +
        static_cast<std::size_t>(pattern_rng.uniform_int(
            1, static_cast<std::int64_t>(config.queue_capacity)));

    ServeConfig primary_serve;
    primary_serve.checkpoint_every = config.checkpoint_every;
    primary_serve.queue_capacity = config.queue_capacity;
    primary_serve.group_commit = config.group_commit;
    primary_serve.retain_wals = true;  // the shipper tails rotated gens

    ServeConfig standby_serve;
    standby_serve.checkpoint_every = config.checkpoint_every;
    standby_serve.queue_capacity = config.queue_capacity;
    standby_serve.group_commit = config.group_commit;

    FailoverChaosResult result;
    result.scheme = config.scheme;

    // Baseline: one uninterrupted, unreplicated run.
    const std::string baseline_dir = config.work_dir + "/baseline";
    fresh_state_dir(baseline_dir);
    std::vector<AdmittedRecord> baseline_admitted;
    {
        ServeConfig cfg = standby_serve;
        cfg.data_dir = baseline_dir;
        AdmissionController baseline(instance, config.scheme, cfg);
        DriveProgress progress;
        drive(baseline, requests, 0, false, drain_every, progress);
        result.baseline_digest = baseline.state_digest();
        result.baseline_metrics = baseline.metrics();
        result.baseline_outcomes =
            baseline.metrics().processed + baseline.metrics().shed;
        baseline_admitted = baseline.admitted_records();
        result.baseline_capacity_ok =
            core::verify_schedule(instance, assemble_decisions(instance, baseline))
                .ok();
    }

    const std::string primary_dir = config.work_dir + "/primary";
    const std::string standby_dir = config.work_dir + "/standby";

    // Control: never kill the primary; a fully shipped standby must
    // promote to the baseline digest with nothing left to recover from
    // disk — replication alone carries the complete state.
    {
        fresh_state_dir(primary_dir);
        fresh_state_dir(standby_dir);
        ShipTransport transport(config.transport_capacity);
        ServeConfig pcfg = primary_serve;
        pcfg.data_dir = primary_dir;
        AdmissionController primary(instance, config.scheme, pcfg);
        ServeConfig scfg = standby_serve;
        scfg.data_dir = standby_dir;
        StandbyController standby(instance, config.scheme, scfg, transport);
        WalShipper shipper(primary, primary_dir, transport);
        DriveProgress progress;
        std::size_t steps = 0;
        drive_with_tick(primary, requests, 0, false, drain_every, progress, [&] {
            if (++steps % ship_every == 0) {
                shipper.pump();
                standby.poll();
            }
        });
        settle_link(shipper, standby, transport);
        FailoverCoordinator coordinator(primary_dir);
        const PromotionReport report = coordinator.promote(standby);
        result.sync_promote_ok = report.disk_records_applied == 0 &&
                                 report.promoted_digest == result.baseline_digest;
        result.sync_release_ok = shipper.stats().generations_released > 0;
    }

    // Kill trials.
    for (std::size_t trial = 0; trial < config.kill_points; ++trial) {
        common::Rng rng = common::stream_rng(config.master_seed, 2000 + trial);
        FailoverTrial outcome;
        // Every 5th/(5n+4)th trial dies inside checkpoint rotation; the
        // rest die right after a randomized WAL append.
        if (trial % 5 == 3) {
            outcome.checkpoint_crash_stage = 1;
        } else if (trial % 5 == 4) {
            outcome.checkpoint_crash_stage = 2;
        }
        outcome.faulty_transport = config.transport_faults && trial % 2 == 1;
        // For rotation kills, arm the stage hook after a randomized
        // prefix of submits so different trials die at different
        // rotations (the hook fires at the next checkpoint once armed).
        const std::size_t arm_at = static_cast<std::size_t>(rng.uniform_int(
            0, std::max<std::int64_t>(0,
                                      static_cast<std::int64_t>(requests.size()) / 2)));
        if (outcome.checkpoint_crash_stage == 0) {
            outcome.kill_after_records = static_cast<std::uint64_t>(rng.uniform_int(
                1, std::max<std::int64_t>(
                       1, static_cast<std::int64_t>(result.baseline_outcomes) - 1)));
        }

        fresh_state_dir(primary_dir);
        fresh_state_dir(standby_dir);
        ShipTransport transport(config.transport_capacity);
        if (outcome.faulty_transport) {
            TransportFaultPlan plan;
            plan.seed = config.master_seed ^ (0xFA017EE0ULL + trial);
            plan.drop = 0.08;
            plan.truncate = 0.08;
            plan.duplicate = 0.08;
            plan.reorder = 0.08;
            transport.set_fault_plan(plan);
        }
        ServeConfig scfg = standby_serve;
        scfg.data_dir = standby_dir;
        StandbyController standby(instance, config.scheme, scfg, transport);
        DriveProgress progress;
        {
            ServeConfig pcfg = primary_serve;
            pcfg.data_dir = primary_dir;
            AdmissionController victim(instance, config.scheme, pcfg);
            WalShipper shipper(victim, primary_dir, transport);
            if (outcome.kill_after_records != 0) {
                victim.crash_after_records(outcome.kill_after_records);
            }
            std::size_t steps = 0;
            bool armed = outcome.checkpoint_crash_stage == 0;
            try {
                drive_with_tick(victim, requests, 0, false, drain_every, progress,
                                [&] {
                                    if (!armed && progress.submitted >= arm_at) {
                                        victim.crash_at_checkpoint_stage(
                                            outcome.checkpoint_crash_stage);
                                        armed = true;
                                    }
                                    if (++steps % ship_every == 0) {
                                        shipper.pump();
                                        standby.poll();
                                    }
                                });
            } catch (const CrashInjected&) {
                outcome.crashed = true;
            }
            add_stats(result.transport_totals, transport.stats());
            result.total_resync_rewinds += shipper.stats().resync_rewinds;
        }
        outcome.submitted_at_crash = progress.submitted;

        // The primary host is gone, but frames already on the wire may
        // still arrive — drain them before promotion.
        standby.poll();
        outcome.standby_applied_at_kill = standby.stats().records_applied;

        // Optionally tear the primary WAL tail, as an interrupted append
        // would. (The newest generation right after a stage-1 rotation
        // kill is an empty header and stays under the size guard.)
        if (outcome.crashed && config.torn_tails && trial % 2 == 0) {
            const std::string wal = newest_wal_file(primary_dir);
            const std::uint64_t size = wal.empty() ? 0 : file_size(wal);
            if (size > kWalHeaderSize + 16) {
                outcome.truncated_bytes =
                    static_cast<std::uint64_t>(rng.uniform_int(1, 12));
                if (::truncate(wal.c_str(),
                               static_cast<off_t>(size - outcome.truncated_bytes)) ==
                    0) {
                    outcome.torn_tail_applied = true;
                }
            }
        }

        if (outcome.crashed) {
            FailoverCoordinator coordinator(primary_dir);
            const PromotionReport report = coordinator.promote(standby);
            outcome.disk_records_applied = report.disk_records_applied;
            outcome.disk_records_skipped = report.disk_records_skipped;
            outcome.promote_torn_tail_bytes = report.torn_tail_bytes;
            result.total_disk_records_applied += report.disk_records_applied;

            // Resume admissions on the promoted standby: rebuild the
            // crash-time queue, complete any interrupted drain, finish
            // the trace — the same continuation the single-node study
            // applies to a revived controller.
            AdmissionController& promoted = standby.controller();
            rebuild_queue(promoted, requests, progress.submitted);
            DriveProgress rest;
            drive(promoted, requests, progress.submitted, progress.in_drain,
                  drain_every, rest);

            outcome.digest_match =
                promoted.state_digest() == result.baseline_digest;
            const ServeMetrics& m = promoted.metrics();
            outcome.revenue_match =
                m.revenue == result.baseline_metrics.revenue &&
                m.shed_revenue == result.baseline_metrics.shed_revenue;
            outcome.metrics_match = metrics_equal(m, result.baseline_metrics);
            outcome.admitted_match =
                same_admitted(promoted.admitted_records(), baseline_admitted);
            outcome.no_double_admits = unique_admitted(promoted.admitted_records());
            outcome.capacity_ok =
                core::verify_schedule(instance,
                                      assemble_decisions(instance, promoted))
                    .ok();
        }

        if (!outcome.ok()) ++result.failed_trials;
        result.trials.push_back(outcome);
    }

    // Degraded-primary trials: the primary's disk fills mid-run
    // (persistent ENOSPC on every write), the controller degrades into
    // read-only mode instead of dying, and the study fails over from it
    // exactly as from a dead host — ship the durable tail it can still
    // serve, promote the standby from its disk image, finish the trace on
    // the promoted controller, and hold the same bit-identical gates.
    for (std::size_t trial = 0; trial < config.degraded_primary_trials; ++trial) {
        common::Rng rng = common::stream_rng(config.master_seed, 5000 + trial);
        FailoverTrial outcome;
        outcome.faulty_transport = config.transport_faults && trial % 2 == 1;

        FaultyVfs disk;  // the primary's private, about-to-fill disk
        fresh_state_dir(standby_dir);
        ShipTransport transport(config.transport_capacity);
        if (outcome.faulty_transport) {
            TransportFaultPlan plan;
            plan.seed = config.master_seed ^ (0xDE64ADE0ULL + trial);
            plan.drop = 0.08;
            plan.truncate = 0.08;
            plan.duplicate = 0.08;
            plan.reorder = 0.08;
            transport.set_fault_plan(plan);
        }
        ServeConfig scfg = standby_serve;
        scfg.data_dir = standby_dir;
        StandbyController standby(instance, config.scheme, scfg, transport);

        ServeConfig pcfg = primary_serve;
        pcfg.data_dir = primary_dir;
        pcfg.vfs = &disk;
        AdmissionController primary(instance, config.scheme, pcfg);
        WalShipper shipper(primary, primary_dir, transport);
        // Arm the disk after a randomized prefix of successful writes,
        // kept well below the trace's write count so the degradation
        // always fires mid-stream. ENOSPC is persistent: a full disk does
        // not heal between retries, so the controller must degrade rather
        // than spin.
        const std::int64_t writes_floor = static_cast<std::int64_t>(
            result.baseline_outcomes /
            (2 * std::max<std::size_t>(1, config.group_commit)));
        const std::uint64_t fail_from = static_cast<std::uint64_t>(
            rng.uniform_int(2, std::max<std::int64_t>(3, writes_floor)));
        disk.script_fault(VfsOp::kWrite, fail_from, -1, ENOSPC, false);

        DriveProgress progress;
        std::size_t steps = 0;
        try {
            drive_with_tick(primary, requests, 0, false, drain_every, progress,
                            [&] {
                                if (++steps % ship_every == 0) {
                                    shipper.pump();
                                    standby.poll();
                                }
                            });
        } catch (const StorageDegradedError&) {
            outcome.crashed = true;  // degraded counts as dead for failover
            outcome.degraded =
                primary.storage_health() == StorageHealth::kDegraded;
        }
        outcome.submitted_at_crash = progress.submitted;

        // The degraded primary still serves reads; drain everything it
        // had made durable before the disk filled.
        settle_link(shipper, standby, transport);
        add_stats(result.transport_totals, transport.stats());
        result.total_resync_rewinds += shipper.stats().resync_rewinds;
        outcome.standby_applied_at_kill = standby.stats().records_applied;

        if (outcome.crashed && outcome.degraded) {
            FailoverCoordinator coordinator(primary_dir, primary.vfs());
            const PromotionReport report = coordinator.promote(standby);
            outcome.disk_records_applied = report.disk_records_applied;
            outcome.disk_records_skipped = report.disk_records_skipped;
            outcome.promote_torn_tail_bytes = report.torn_tail_bytes;
            result.total_disk_records_applied += report.disk_records_applied;

            AdmissionController& promoted = standby.controller();
            rebuild_queue(promoted, requests, progress.submitted);
            DriveProgress rest;
            drive(promoted, requests, progress.submitted, progress.in_drain,
                  drain_every, rest);

            outcome.digest_match =
                promoted.state_digest() == result.baseline_digest;
            const ServeMetrics& m = promoted.metrics();
            outcome.revenue_match =
                m.revenue == result.baseline_metrics.revenue &&
                m.shed_revenue == result.baseline_metrics.shed_revenue;
            outcome.metrics_match = metrics_equal(m, result.baseline_metrics);
            outcome.admitted_match =
                same_admitted(promoted.admitted_records(), baseline_admitted);
            outcome.no_double_admits =
                unique_admitted(promoted.admitted_records());
            outcome.capacity_ok =
                core::verify_schedule(instance,
                                      assemble_decisions(instance, promoted))
                    .ok();
        }

        if (!outcome.ok() || !outcome.degraded) ++result.failed_trials;
        result.trials.push_back(outcome);
    }
    return result;
}

}  // namespace vnfr::serve::replication
