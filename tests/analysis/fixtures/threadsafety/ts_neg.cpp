// Negative fixture for the Clang thread-safety layer: idiomatic use of
// the annotated primitives in common/mutex.hpp — scoped locking, a
// REQUIRES helper called under the lock, and the explicit while-loop
// CondVar wait pattern (predicate lambdas are invisible to the
// analysis). MUST compile cleanly under -Werror=thread-safety.
#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace vnfr::fixture {

class BoundedCounter {
public:
    void bump() VNFR_EXCLUDES(mutex_) {
        const common::MutexLock lock(&mutex_);
        bump_locked();
        cv_.notify_all();
    }

    void wait_for(int target) VNFR_EXCLUDES(mutex_) {
        common::MutexLock lock(&mutex_);
        while (value_ < target) {
            cv_.wait(mutex_);
        }
    }

    int value() VNFR_EXCLUDES(mutex_) {
        const common::MutexLock lock(&mutex_);
        return value_;
    }

private:
    void bump_locked() VNFR_REQUIRES(mutex_) { ++value_; }

    common::Mutex mutex_;
    common::CondVar cv_;
    int value_ VNFR_GUARDED_BY(mutex_) = 0;
};

}  // namespace vnfr::fixture
