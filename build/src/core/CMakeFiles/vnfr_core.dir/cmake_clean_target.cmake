file(REMOVE_RECURSE
  "libvnfr_core.a"
)
