#!/usr/bin/env python3
"""Repo-specific invariant lint for the vnfr source tree.

Enforces rules no generic linter knows about, tuned to the reliability
arithmetic in this codebase:

  float-eq      No raw ``==``/``!=`` between doubles in src/. Exact
                floating-point comparison silently misbehaves in the
                availability products; use ``common::almost_equal`` (or
                restructure). Deliberate exact tests (sparsity checks on
                literally-zeroed coefficients, rejection-sampling loops)
                carry a ``// vnfr-lint: allow(float-eq) <why>`` suppression.

  math-domain   ``std::log``/``std::log2``/``std::log10``/``std::pow``
                outside ``src/vnf/reliability.*`` and ``src/common/math.*``
                must have a ``VNFR_CHECK``/``VNFR_DCHECK`` guarding the
                operand's domain within the preceding few lines. A log of a
                non-positive value yields NaN, not a crash, and the NaN
                surfaces far from its origin.

  header-guard  Every header under src/ starts with ``#pragma once``.

  namespace     Every src/ file declares ``namespace vnfr...`` and closes
                it with a ``}  // namespace`` trailer comment. Pure
                preprocessor headers (every non-blank line starts with
                ``#`` — e.g. src/common/annotations.hpp, which must stay
                macro-only so SWIG/non-Clang builds see no tokens) are
                exempt: they define no entities to scope.

  using-std     ``using namespace std;`` is banned everywhere under src/.

Suppression: ``// vnfr-lint: allow(<rule>) <justification>`` on the
finding's line or the line above; the justification is required (see
tools/vnfr_findings.py for the shared grammar and the
``suppression-format`` rule that polices it).

Exit status: 0 when clean, 1 with findings (one per line, grep-friendly
``path:line: rule: message``; ``--json`` for a machine-readable object).
Run directly or via the ``vnfr_lint`` ctest.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import vnfr_findings as vf  # noqa: E402
from vnfr_findings import Finding, strip_comments_and_strings  # noqa: E402

TOOL = "vnfr-lint"

RULES: dict[str, str] = {
    "float-eq": "raw ==/!= between doubles; use common::almost_equal",
    "math-domain": "std::log/log2/log10/pow without a VNFR_CHECK/VNFR_DCHECK "
                   "guarding the operand's domain nearby",
    "header-guard": "every header under src/ starts with '#pragma once'",
    "namespace": "every src/ file opens 'namespace vnfr...' and closes it "
                 "with a '}  // namespace' trailer (pure preprocessor "
                 "headers exempt)",
    "using-std": "'using namespace std;' is banned under src/",
    vf.SUPPRESSION_RULE: vf.SUPPRESSION_RULE_DOC,
}

# Files where the log/pow domain is the module's own concern: the stable
# wrappers themselves.
MATH_DOMAIN_EXEMPT = ("src/common/math.", "src/vnf/reliability.")

# std::log1p/std::expm1 are the *stable* helpers and are exempt; match only
# the raw calls whose domain can silently produce NaN.
RAW_MATH_CALL = re.compile(r"\bstd::(log|log2|log10|pow)\s*\(")

FLOAT_LITERAL = r"(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)"
FLOAT_LITERAL_CMP = re.compile(
    rf"(?:{FLOAT_LITERAL}\s*[=!]=)|(?:[=!]=\s*[+-]?{FLOAT_LITERAL})"
)

DOUBLE_DECL = re.compile(r"\bdouble\s+(\w+)\s*(?:=|;|,|\)|\{)")

GUARD_WINDOW = 4  # lines above a raw math call searched for a VNFR_CHECK


def is_pure_preprocessor(code_lines: list[str]) -> bool:
    """True when every non-blank stripped line is a preprocessor directive
    or a continuation of one — a macro-only header with no entities."""
    continuation = False
    saw_directive = False
    for code in code_lines:
        stripped = code.strip()
        if not stripped:
            continuation = False
            continue
        if not continuation and not stripped.startswith("#"):
            return False
        saw_directive = True
        continuation = stripped.endswith("\\")
    return saw_directive


def lint_file(path: Path, rel: str) -> list[Finding]:
    findings: list[Finding] = []
    text = path.read_text(encoding="utf-8")
    raw_lines = text.splitlines()
    code_lines = [strip_comments_and_strings(l) for l in raw_lines]

    # --- header-guard / namespace conventions -------------------------------
    if rel.endswith(".hpp") and "#pragma once" not in text:
        findings.append(Finding(rel, 1, "header-guard",
                                "header lacks '#pragma once'"))
    if not is_pure_preprocessor(code_lines):
        if not re.search(r"\bnamespace\s+vnfr\b", text):
            findings.append(Finding(rel, 1, "namespace",
                                    "file does not open 'namespace vnfr...'"))
        elif not re.search(r"\}\s*//\s*namespace", text):
            findings.append(Finding(
                rel, 1, "namespace",
                "closing brace lacks '}  // namespace' comment"))

    # Identifiers declared double in this file, for the identifier-vs-
    # identifier comparison heuristic.
    double_names = set(DOUBLE_DECL.findall(text))
    ident_cmp = None
    if double_names:
        joined = "|".join(re.escape(n) for n in sorted(double_names))
        ident_cmp = re.compile(rf"\b({joined})\s*[=!]=\s*({joined})\b")

    for idx, code in enumerate(code_lines):
        lineno = idx + 1

        # --- using-std ------------------------------------------------------
        if re.search(r"\busing\s+namespace\s+std\b", code):
            findings.append(Finding(rel, lineno, "using-std",
                                    "'using namespace std' is banned"))

        # --- float-eq -------------------------------------------------------
        hit = FLOAT_LITERAL_CMP.search(code)
        if not hit and ident_cmp is not None:
            hit = ident_cmp.search(code)
        if hit:
            findings.append(Finding(
                rel, lineno, "float-eq",
                f"raw ==/!= on double ('{hit.group(0).strip()}'); use "
                "common::almost_equal or add "
                "'// vnfr-lint: allow(float-eq) <why>'"))

        # --- math-domain ----------------------------------------------------
        if rel.startswith(MATH_DOMAIN_EXEMPT):
            continue
        call = RAW_MATH_CALL.search(code)
        if call:
            window_start = max(0, idx - GUARD_WINDOW)
            window = "\n".join(raw_lines[window_start: idx + 1])
            if "VNFR_CHECK" not in window and "VNFR_DCHECK" not in window:
                findings.append(Finding(
                    rel, lineno, "math-domain",
                    f"std::{call.group(1)} without a VNFR_CHECK/VNFR_DCHECK "
                    f"guarding the operand within the previous "
                    f"{GUARD_WINDOW} lines"))

    covered, suppression_findings = vf.scan_suppressions(
        raw_lines, tool=TOOL, rel=rel, known_rules=set(RULES))
    return vf.apply_suppressions(findings, covered) + suppression_findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="vnfr_lint.py",
        description="repo-specific invariant lint over src/")
    parser.add_argument("root", nargs="?", default=None,
                        help="repo root (default: the checkout this tool is in)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON object")
    args = parser.parse_args(argv[1:])

    root = (Path(args.root).resolve() if args.root
            else Path(__file__).resolve().parent.parent)
    src = root / "src"
    if not src.is_dir():
        print(f"vnfr_lint: no src/ directory under {root}", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".hpp", ".cpp"):
            continue
        rel = path.relative_to(root).as_posix()
        findings.extend(lint_file(path, rel))
    return vf.emit(findings, tool="vnfr_lint", rules=RULES,
                   json_mode=args.json)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
