file(REMOVE_RECURSE
  "CMakeFiles/onsite_provider.dir/onsite_provider.cpp.o"
  "CMakeFiles/onsite_provider.dir/onsite_provider.cpp.o.d"
  "onsite_provider"
  "onsite_provider.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onsite_provider.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
