# Empty dependencies file for fig1a_onsite_vs_requests.
# This may be replaced when dependencies are built.
