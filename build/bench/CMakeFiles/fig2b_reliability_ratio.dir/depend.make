# Empty dependencies file for fig2b_reliability_ratio.
# This may be replaced when dependencies are built.
