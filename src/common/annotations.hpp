// Clang thread-safety-analysis attribute macros.
//
// These wrap the capability-based annotations documented at
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html so that lock
// discipline is machine-checked at compile time: a field marked
// VNFR_GUARDED_BY(mu) cannot be read or written without holding `mu`, a
// function marked VNFR_REQUIRES(mu) cannot be called without it, and a
// scoped VNFR_ACQUIRE/VNFR_RELEASE mismatch is a compile error. Builds
// with -DVNFR_THREAD_SAFETY=ON turn the analysis on (Clang only) with
// -Werror=thread-safety; on GCC and other compilers every macro expands
// to nothing, so annotated code stays portable.
//
// The annotated primitives that carry these attributes live in
// common/mutex.hpp (common::Mutex / common::MutexLock / common::CondVar).
// Raw std::mutex does not participate in the analysis — new concurrent
// code should use the annotated wrappers so the `-Wthread-safety` CI job
// and tools/vnfr_asa.py's lock-order rule can both see its locks.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define VNFR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define VNFR_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a class as a lockable capability (e.g. a mutex type).
#define VNFR_CAPABILITY(x) VNFR_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability.
#define VNFR_SCOPED_CAPABILITY VNFR_THREAD_ANNOTATION(scoped_lockable)

/// Data members: readable/writable only while holding the given capability.
#define VNFR_GUARDED_BY(x) VNFR_THREAD_ANNOTATION(guarded_by(x))

/// Pointer members: the pointee (not the pointer) is protected by the
/// given capability.
#define VNFR_PT_GUARDED_BY(x) VNFR_THREAD_ANNOTATION(pt_guarded_by(x))

/// Functions: the caller must hold the listed capabilities on entry (and
/// still holds them on exit).
#define VNFR_REQUIRES(...) \
    VNFR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Functions: acquire the listed capabilities (held on exit, not entry).
#define VNFR_ACQUIRE(...) \
    VNFR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Functions: release the listed capabilities (held on entry, not exit).
#define VNFR_RELEASE(...) \
    VNFR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Functions: the caller must NOT hold the listed capabilities (deadlock
/// guard for self-locking public entry points).
#define VNFR_EXCLUDES(...) VNFR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Functions returning a reference to a capability (lock accessors).
#define VNFR_RETURN_CAPABILITY(x) VNFR_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only where
/// the analysis cannot express the invariant, and say why at the site.
#define VNFR_NO_THREAD_SAFETY_ANALYSIS \
    VNFR_THREAD_ANNOTATION(no_thread_safety_analysis)
