#!/usr/bin/env python3
"""Fixture tests for the repo's static analyzers.

Runs each analyzer as a subprocess (the way CI and developers invoke it)
in ``--json`` mode over its fixture tree under tests/analysis/fixtures/,
then asserts an exact match between the emitted findings and the
``// expect: <rule>[, <rule>]`` markers in the fixture sources:

  * every expected (file, line, rule) triple is reported — positives fire
    with exact rule ids AND line numbers;
  * nothing else is reported — negatives stay silent;
  * the JSON envelope carries the shared schema from
    tools/vnfr_findings.py (tool/mode/rules/findings/count).

vnfr_asa runs in ``--mode token`` here: line-exact expectations are
pinned to the documented fallback front end, which is available
everywhere. The AST front end is exercised by the ``analysis`` CI job
(where libclang is installed) over the same fixtures via
``vnfr_asa.py --self-check`` plus the real-tree sweep.

Usage: run_fixture_tests.py <repo-root>
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path


def load_expectations(repo_root: Path, fixture_root: Path):
    sys.path.insert(0, str(repo_root / "tools"))
    import vnfr_asa  # noqa: E402  (shared '// expect:' grammar)

    return vnfr_asa.expected_findings(fixture_root)


def check_schema(payload: dict, label: str) -> list[str]:
    errors = []
    for key in ("tool", "mode", "rules", "findings", "count"):
        if key not in payload:
            errors.append(f"{label}: JSON output lacks '{key}'")
    findings = payload.get("findings", [])
    if payload.get("count") != len(findings):
        errors.append(f"{label}: count={payload.get('count')} but "
                      f"{len(findings)} findings listed")
    for f in findings:
        for key in ("path", "line", "rule", "message"):
            if key not in f:
                errors.append(f"{label}: finding lacks '{key}': {f}")
        rule = f.get("rule")
        if rule is not None and rule not in payload.get("rules", {}):
            errors.append(f"{label}: finding uses unregistered rule "
                          f"'{rule}'")
    return errors


def run_case(repo_root: Path, tool: str, fixture_dir: str,
             extra_args: list[str]) -> list[str]:
    fixture_root = repo_root / "tests" / "analysis" / "fixtures" / fixture_dir
    script = repo_root / "tools" / tool
    proc = subprocess.run(
        [sys.executable, str(script), str(fixture_root), "--json", *extra_args],
        capture_output=True, text=True)
    label = f"{tool}/{fixture_dir}"
    if proc.returncode not in (0, 1):
        return [f"{label}: exit {proc.returncode}: {proc.stderr.strip()}"]
    try:
        payload = json.loads(proc.stdout)
    except json.JSONDecodeError as exc:
        return [f"{label}: --json output is not JSON ({exc})"]

    errors = check_schema(payload, label)

    got: dict[tuple[str, int], set[str]] = {}
    for f in payload.get("findings", []):
        got.setdefault((f["path"], f["line"]), set()).add(f["rule"])
    expected = load_expectations(repo_root, fixture_root)

    for key in sorted(set(expected) | set(got)):
        missing = expected.get(key, set()) - got.get(key, set())
        surplus = got.get(key, set()) - expected.get(key, set())
        for rule in sorted(missing):
            errors.append(f"{label}: {key[0]}:{key[1]}: expected "
                          f"'{rule}' was not reported")
        for rule in sorted(surplus):
            errors.append(f"{label}: {key[0]}:{key[1]}: unexpected "
                          f"finding '{rule}'")
    exit_should_be = 1 if payload.get("findings") else 0
    if proc.returncode != exit_should_be:
        errors.append(f"{label}: exit code {proc.returncode} does not "
                      f"match finding count {len(payload.get('findings', []))}")
    if not errors:
        print(f"{label}: ok ({len(payload.get('findings', []))} finding(s) "
              f"matched {len(expected)} expectation site(s))")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    repo_root = Path(argv[1]).resolve()

    errors: list[str] = []
    errors += run_case(repo_root, "vnfr_asa.py", "asa", ["--mode", "token"])
    errors += run_case(repo_root, "vnfr_lint.py", "lint", [])

    for e in errors:
        print(f"FAIL: {e}")
    if errors:
        print(f"run_fixture_tests: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print("run_fixture_tests: all fixture expectations matched")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
