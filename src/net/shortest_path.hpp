// Shortest-path algorithms over net::Graph.
//
// Off-site placements pay an inter-cloudlet traffic cost proportional to
// path length; benches and examples report it via these routines.
#pragma once

#include <limits>
#include <vector>

#include "common/types.hpp"
#include "net/graph.hpp"

namespace vnfr::net {

/// Sentinel distance for unreachable nodes.
inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

/// Result of a single-source shortest path run. `parent[v]` is the
/// predecessor of v on a shortest path from the source (invalid id for the
/// source itself and unreachable nodes).
struct ShortestPathTree {
    NodeId source;
    std::vector<double> distance;
    std::vector<NodeId> parent;

    /// Reconstructs the node sequence source..target; empty if unreachable.
    [[nodiscard]] std::vector<NodeId> path_to(NodeId target) const;
};

/// Dijkstra with a binary heap; O((V+E) log V).
ShortestPathTree dijkstra(const Graph& g, NodeId source);

/// Unweighted hop distances by BFS (each edge counts 1 regardless of weight).
std::vector<int> bfs_hops(const Graph& g, NodeId source);

/// All-pairs weighted distances; row-major |V| x |V| matrix built from |V|
/// Dijkstra runs. Fine for the topology sizes in this system (<= a few 100).
std::vector<std::vector<double>> all_pairs_distances(const Graph& g);

/// All-pairs hop counts (-1 when unreachable).
std::vector<std::vector<int>> all_pairs_hops(const Graph& g);

/// A loopless path with its total weight.
struct WeightedPath {
    std::vector<NodeId> nodes;
    double weight{0};
};

/// Yen's algorithm: up to k loopless shortest paths from source to target in
/// non-decreasing weight order. Returns fewer if the graph has fewer.
std::vector<WeightedPath> k_shortest_paths(const Graph& g, NodeId source, NodeId target,
                                           std::size_t k);

}  // namespace vnfr::net
