#include "sfc/chain_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/math.hpp"
#include "sfc/chain_reliability.hpp"
#include "vnf/reliability.hpp"

namespace vnfr::sfc {

namespace {

/// Per-chain helper: reliabilities and compute demands of the functions.
struct ChainProfile {
    std::vector<double> rels;
    std::vector<double> computes;
};

ChainProfile profile(const core::Instance& instance, const ChainRequest& request) {
    if (request.functions.empty())
        throw std::invalid_argument("chain scheduler: empty chain");
    ChainProfile p;
    p.rels.reserve(request.functions.size());
    p.computes.reserve(request.functions.size());
    for (const VnfTypeId f : request.functions) {
        p.rels.push_back(instance.catalog.reliability(f));
        p.computes.push_back(instance.catalog.compute_units(f));
    }
    return p;
}

double estimate_typical_chain_demand(const core::Instance& instance) {
    // A rough catalog-level scale: mean 2-function chain with the on-site
    // auto-scale logic of Algorithm 1. Keeps pricing granularity sane.
    double total = 0.0;
    std::size_t pairs = 0;
    for (const vnf::VnfType& type : instance.catalog.types()) {
        for (const edge::Cloudlet& c : instance.network.cloudlets()) {
            const double representative_r = std::min(0.95, c.reliability * 0.97);
            const auto n =
                vnf::min_onsite_replicas(c.reliability, type.reliability, representative_r);
            if (!n) continue;
            total += 2.0 * *n * type.compute_units;
            ++pairs;
        }
    }
    return pairs == 0 ? 1.0 : std::max(1.0, total / static_cast<double>(pairs));
}

}  // namespace

ChainScheduleResult run_chains(const core::Instance& instance,
                               const std::vector<ChainRequest>& requests,
                               ChainScheduler& scheduler) {
    ChainScheduleResult result;
    result.decisions.reserve(requests.size());
    TimeSlot prev = 0;
    for (const ChainRequest& r : requests) {
        if (r.arrival < prev)
            throw std::invalid_argument("run_chains: requests not in arrival order");
        prev = r.arrival;
        if (!r.fits_horizon(instance.horizon))
            throw std::invalid_argument("run_chains: request outside horizon");
        ChainDecision d = scheduler.decide(r);
        if (d.admitted) {
            result.revenue += r.payment;
            ++result.admitted;
        }
        result.decisions.push_back(std::move(d));
    }
    const edge::ResourceLedger& ledger = scheduler.ledger();
    for (std::size_t j = 0; j < ledger.cloudlet_count(); ++j) {
        const CloudletId c{static_cast<std::int64_t>(j)};
        for (TimeSlot t = 0; t < ledger.horizon(); ++t) {
            result.max_load_factor =
                std::max(result.max_load_factor, ledger.usage(c, t) / ledger.capacity(c));
        }
    }
    return result;
}

ChainPrimalDual::ChainPrimalDual(const core::Instance& instance,
                                 ChainPrimalDualConfig config)
    : instance_(instance),
      ledger_(instance.network.capacities(), instance.horizon,
              edge::CapacityPolicy::kEnforce),
      lambda_(instance.network.cloudlet_count(),
              std::vector<double>(static_cast<std::size_t>(instance.horizon), 0.0)) {
    if (config.dual_capacity_scale < 0.0)
        throw std::invalid_argument("ChainPrimalDual: negative dual_capacity_scale");
    dual_scale_ = config.dual_capacity_scale > 0.0 ? config.dual_capacity_scale
                                                   : estimate_typical_chain_demand(instance);
}

double ChainPrimalDual::lambda(CloudletId j, TimeSlot t) const {
    return lambda_.at(j.index()).at(static_cast<std::size_t>(t));
}

ChainDecision ChainPrimalDual::decide(const ChainRequest& request) {
    const ChainProfile p = profile(instance_, request);

    CloudletId best;
    std::vector<int> best_replicas;
    double best_price = std::numeric_limits<double>::infinity();
    double best_demand = std::numeric_limits<double>::infinity();
    for (const edge::Cloudlet& c : instance_.network.cloudlets()) {
        const auto replicas =
            min_chain_replicas(c.reliability, p.rels, p.computes, request.requirement);
        if (!replicas) continue;
        const double demand = chain_compute(p.computes, *replicas);
        if (!ledger_.fits(c.id, request.arrival, request.end(), demand)) continue;
        double lambda_sum = 0.0;
        const auto& lam = lambda_[c.id.index()];
        for (TimeSlot t = request.arrival; t < request.end(); ++t) {
            lambda_sum += lam[static_cast<std::size_t>(t)];
        }
        const double price = demand * lambda_sum;
        if (price < best_price - 1e-12 ||
            (price < best_price + 1e-12 && demand < best_demand)) {
            best_price = std::min(price, best_price);
            best = c.id;
            best_replicas = *replicas;
            best_demand = demand;
        }
    }
    if (!best.valid() || request.payment - best_price <= 0.0) return ChainDecision{};

    const double demand = chain_compute(p.computes, best_replicas);
    ledger_.reserve(best, request.arrival, request.end(), demand);

    const double cap = instance_.network.cloudlet(best).capacity * dual_scale_;
    const double mult = 1.0 + demand / cap;
    const double add = demand * request.payment / (request.duration * cap);
    auto& lam = lambda_[best.index()];
    for (TimeSlot t = request.arrival; t < request.end(); ++t) {
        auto& value = lam[static_cast<std::size_t>(t)];
        value = value * mult + add;
    }

    ChainDecision d;
    d.admitted = true;
    d.placement = ChainPlacement{request.id, best, std::move(best_replicas)};
    return d;
}

ChainGreedy::ChainGreedy(const core::Instance& instance)
    : instance_(instance),
      ledger_(instance.network.capacities(), instance.horizon,
              edge::CapacityPolicy::kEnforce) {
    for (const edge::Cloudlet& c : instance.network.cloudlets()) {
        by_reliability_.push_back(c.id);
    }
    std::sort(by_reliability_.begin(), by_reliability_.end(),
              [&](CloudletId a, CloudletId b) {
                  const double ra = instance.network.cloudlet(a).reliability;
                  const double rb = instance.network.cloudlet(b).reliability;
                  if (!common::almost_equal(ra, rb)) return ra > rb;
                  return a < b;
              });
}

ChainDecision ChainGreedy::decide(const ChainRequest& request) {
    const ChainProfile p = profile(instance_, request);
    for (const CloudletId j : by_reliability_) {
        const auto replicas =
            min_chain_replicas(instance_.network.cloudlet(j).reliability, p.rels,
                               p.computes, request.requirement);
        if (!replicas) continue;
        const double demand = chain_compute(p.computes, *replicas);
        if (!ledger_.fits(j, request.arrival, request.end(), demand)) continue;
        ledger_.reserve(j, request.arrival, request.end(), demand);
        ChainDecision d;
        d.admitted = true;
        d.placement = ChainPlacement{request.id, j, *replicas};
        return d;
    }
    return ChainDecision{};
}

}  // namespace vnfr::sfc
