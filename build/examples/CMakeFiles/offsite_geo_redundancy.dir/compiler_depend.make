# Empty compiler generated dependencies file for offsite_geo_redundancy.
# This may be replaced when dependencies are built.
