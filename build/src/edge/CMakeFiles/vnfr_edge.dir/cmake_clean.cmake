file(REMOVE_RECURSE
  "CMakeFiles/vnfr_edge.dir/mec_network.cpp.o"
  "CMakeFiles/vnfr_edge.dir/mec_network.cpp.o.d"
  "CMakeFiles/vnfr_edge.dir/resource_ledger.cpp.o"
  "CMakeFiles/vnfr_edge.dir/resource_ledger.cpp.o.d"
  "CMakeFiles/vnfr_edge.dir/visualization.cpp.o"
  "CMakeFiles/vnfr_edge.dir/visualization.cpp.o.d"
  "libvnfr_edge.a"
  "libvnfr_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfr_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
