// Thread-safe completion meter for parallel fan-outs.
//
// The Monte-Carlo studies (sim/recovery_study, sim/failover_study) fan
// replications out over a ThreadPool; long runs want progress feedback
// without perturbing the bit-identical-results contract. ProgressMeter
// counts completions under an annotated Mutex and invokes the callback
// *serially* (under the lock), so the callback needs no synchronization
// of its own. Completion order — and therefore the order of `done`
// values delivered — depends on thread scheduling; only the final
// (total, total) call is deterministic. Keep callbacks cheap: they run
// inside the worker that finished the replication.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>

#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace vnfr::common {

/// Callback signature: (replications completed so far, total).
using ProgressFn = std::function<void(std::size_t, std::size_t)>;

class ProgressMeter {
  public:
    /// A default-constructed (empty) callback makes tick() a no-op.
    ProgressMeter(std::size_t total, ProgressFn callback)
        : total_(total), callback_(std::move(callback)) {}

    ProgressMeter(const ProgressMeter&) = delete;
    ProgressMeter& operator=(const ProgressMeter&) = delete;

    /// Records one completed unit and reports it. Safe to call
    /// concurrently from any pool thread.
    void tick() VNFR_EXCLUDES(mutex_) {
        if (!callback_) return;
        const MutexLock lock(&mutex_);
        ++completed_;
        callback_(completed_, total_);
    }

  private:
    const std::size_t total_;
    const ProgressFn callback_;  ///< immutable after construction
    Mutex mutex_;
    std::size_t completed_ VNFR_GUARDED_BY(mutex_) = 0;
};

}  // namespace vnfr::common
