file(REMOVE_RECURSE
  "CMakeFiles/vnfr_sim.dir/availability_process.cpp.o"
  "CMakeFiles/vnfr_sim.dir/availability_process.cpp.o.d"
  "CMakeFiles/vnfr_sim.dir/experiment.cpp.o"
  "CMakeFiles/vnfr_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/vnfr_sim.dir/failover_study.cpp.o"
  "CMakeFiles/vnfr_sim.dir/failover_study.cpp.o.d"
  "CMakeFiles/vnfr_sim.dir/failure_model.cpp.o"
  "CMakeFiles/vnfr_sim.dir/failure_model.cpp.o.d"
  "CMakeFiles/vnfr_sim.dir/metrics.cpp.o"
  "CMakeFiles/vnfr_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/vnfr_sim.dir/simulator.cpp.o"
  "CMakeFiles/vnfr_sim.dir/simulator.cpp.o.d"
  "libvnfr_sim.a"
  "libvnfr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
