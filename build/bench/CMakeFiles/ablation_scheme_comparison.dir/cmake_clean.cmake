file(REMOVE_RECURSE
  "CMakeFiles/ablation_scheme_comparison.dir/ablation_scheme_comparison.cpp.o"
  "CMakeFiles/ablation_scheme_comparison.dir/ablation_scheme_comparison.cpp.o.d"
  "ablation_scheme_comparison"
  "ablation_scheme_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scheme_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
