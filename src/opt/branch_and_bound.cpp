#include "opt/branch_and_bound.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "common/contracts.hpp"

namespace vnfr::opt {

namespace {

struct Node {
    double parent_bound;  ///< LP bound inherited from the parent
    std::vector<std::pair<std::size_t, double>> fixings;  ///< (var, 0 or 1)

    friend bool operator<(const Node& a, const Node& b) {
        // Best-first: larger bound explored first.
        return a.parent_bound < b.parent_bound;
    }
};

/// Index of the binary variable whose LP value is closest to 0.5, or
/// binary_vars.size() when all are integral.
std::size_t most_fractional(const std::vector<double>& x,
                            const std::vector<std::size_t>& binary_vars, double tol) {
    std::size_t best = binary_vars.size();
    double best_score = tol;
    for (std::size_t i = 0; i < binary_vars.size(); ++i) {
        const double v = x[binary_vars[i]];
        const double frac = std::fabs(v - std::round(v));
        if (frac > best_score) {
            best_score = frac;
            best = i;
        }
    }
    return best;
}

}  // namespace

IlpSolution solve_ilp(const LinearProgram& lp, const std::vector<std::size_t>& binary_vars,
                      const BnbOptions& options) {
    for (const std::size_t v : binary_vars) {
        if (v >= lp.variable_count())
            throw std::invalid_argument("solve_ilp: unknown binary variable");
        if (lp.lower_bound(v) < 0.0 || lp.upper_bound(v) > 1.0)
            throw std::invalid_argument("solve_ilp: binary variable bounds outside [0,1]");
    }

    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(options.time_limit_seconds);

    IlpSolution out;
    std::priority_queue<Node> open;
    open.push(Node{kInfinity, {}});

    double incumbent = -kInfinity;
    bool exhausted = true;

    while (!open.empty()) {
        if (out.nodes_explored >= options.max_nodes ||
            std::chrono::steady_clock::now() >= deadline) {
            exhausted = false;
            break;
        }
        // With best-first order, the top parent bound is the global bound on
        // everything unexplored; stop once it cannot beat the incumbent.
        if (open.top().parent_bound <= incumbent + options.gap_tolerance) break;

        const Node node = open.top();
        open.pop();
        ++out.nodes_explored;

        LinearProgram sub = lp;
        bool fixings_feasible = true;
        for (const auto& [var, val] : node.fixings) {
            // set_bounds overwrites, so guard against widening a bound the
            // base model (e.g. a presolved one) has already tightened: a
            // fixing outside the variable's own range is infeasible.
            if (val < lp.lower_bound(var) - options.integrality_tolerance ||
                val > lp.upper_bound(var) + options.integrality_tolerance) {
                fixings_feasible = false;
                break;
            }
            sub.set_bounds(var, val, val);
        }
        if (!fixings_feasible) continue;

        const LpSolution relax = solve_lp(sub, options.lp_options);
        if (relax.status == SolveStatus::kInfeasible) continue;
        if (relax.status != SolveStatus::kOptimal) {
            // Unbounded or iteration-limited relaxation: we cannot bound
            // this subtree, so the final answer is not proven.
            exhausted = false;
            continue;
        }
        VNFR_CHECK_FINITE(relax.objective);
        // Best-first invariant: a child's LP relaxation can never beat the
        // bound inherited from its parent (allowing simplex tolerance).
        VNFR_DCHECK(relax.objective <= node.parent_bound + 1e-6,
                    "child LP bound ", relax.objective, " above parent bound ",
                    node.parent_bound);
        if (relax.objective <= incumbent + options.gap_tolerance) continue;

        const std::size_t branch_idx =
            most_fractional(relax.x, binary_vars, options.integrality_tolerance);
        if (branch_idx == binary_vars.size()) {
            // Integral on all binaries: candidate incumbent.
            if (relax.objective > incumbent) {
                incumbent = relax.objective;
                out.objective = relax.objective;
                out.x = relax.x;
                // Snap binaries exactly.
                for (const std::size_t v : binary_vars) out.x[v] = std::round(out.x[v]);
                out.has_incumbent = true;
            }
            continue;
        }

        const std::size_t var = binary_vars[branch_idx];
        for (const double val : {1.0, 0.0}) {
            Node child;
            child.parent_bound = relax.objective;
            child.fixings = node.fixings;
            child.fixings.emplace_back(var, val);
            open.push(std::move(child));
        }
    }

    // Global upper bound: best unexplored node bound vs incumbent.
    double bound = incumbent;
    if (!open.empty()) bound = std::max(bound, open.top().parent_bound);
    if (!out.has_incumbent && open.empty() && exhausted) {
        out.infeasible = true;
        out.best_bound = -kInfinity;
        return out;
    }
    out.best_bound = bound;
    out.proven_optimal = exhausted && out.has_incumbent &&
                         (open.empty() ||
                          open.top().parent_bound <= incumbent + options.gap_tolerance);
    return out;
}

}  // namespace vnfr::opt
