file(REMOVE_RECURSE
  "CMakeFiles/fig1b_offsite_vs_requests.dir/fig1b_offsite_vs_requests.cpp.o"
  "CMakeFiles/fig1b_offsite_vs_requests.dir/fig1b_offsite_vs_requests.cpp.o.d"
  "fig1b_offsite_vs_requests"
  "fig1b_offsite_vs_requests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1b_offsite_vs_requests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
