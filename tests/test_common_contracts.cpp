#include "common/contracts.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace vnfr::common {
namespace {

/// Restores the process-wide contract mode on scope exit so tests stay
/// order-independent.
class ScopedContractMode {
  public:
    explicit ScopedContractMode(ContractMode mode) : previous_(contract_mode()) {
        set_contract_mode(mode);
    }
    ~ScopedContractMode() { set_contract_mode(previous_); }

  private:
    ContractMode previous_;
};

TEST(Contracts, PassingCheckIsSilent) {
    ScopedContractMode scope(ContractMode::kThrow);
    EXPECT_NO_THROW(VNFR_CHECK(1 + 1 == 2));
    EXPECT_NO_THROW(VNFR_CHECK(true, "never printed ", 42));
}

TEST(Contracts, FailingCheckThrowsWithLocationAndDetail) {
    ScopedContractMode scope(ContractMode::kThrow);
    try {
        VNFR_CHECK(false, "cloudlet ", 3, " broke");
        FAIL() << "VNFR_CHECK(false) did not throw";
    } catch (const ContractViolation& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("false"), std::string::npos);
        EXPECT_NE(what.find("test_common_contracts.cpp"), std::string::npos);
        EXPECT_NE(what.find("cloudlet 3 broke"), std::string::npos);
    }
}

TEST(Contracts, CheckProbAcceptsUnitIntervalAndRoundingSlack) {
    ScopedContractMode scope(ContractMode::kThrow);
    EXPECT_DOUBLE_EQ(VNFR_CHECK_PROB(0.0), 0.0);
    EXPECT_DOUBLE_EQ(VNFR_CHECK_PROB(1.0), 1.0);
    EXPECT_DOUBLE_EQ(VNFR_CHECK_PROB(0.9999), 0.9999);
    // Values a few ulp past the ends are rounding of long products, not bugs.
    EXPECT_NO_THROW(VNFR_CHECK_PROB(1.0 + 1e-12));
    EXPECT_NO_THROW(VNFR_CHECK_PROB(-1e-12));
}

TEST(Contracts, CheckProbRejectsOutOfRangeAndNan) {
    ScopedContractMode scope(ContractMode::kThrow);
    EXPECT_THROW(VNFR_CHECK_PROB(1.1), ContractViolation);
    EXPECT_THROW(VNFR_CHECK_PROB(-0.2), ContractViolation);
    EXPECT_THROW(VNFR_CHECK_PROB(std::numeric_limits<double>::quiet_NaN()),
                 ContractViolation);
    EXPECT_THROW(VNFR_CHECK_PROB(std::numeric_limits<double>::infinity()),
                 ContractViolation);
}

TEST(Contracts, CheckFinitePassesValueThrough) {
    ScopedContractMode scope(ContractMode::kThrow);
    EXPECT_DOUBLE_EQ(VNFR_CHECK_FINITE(-3.5), -3.5);
    EXPECT_THROW(VNFR_CHECK_FINITE(std::numeric_limits<double>::infinity()),
                 ContractViolation);
    EXPECT_THROW(VNFR_CHECK_FINITE(std::nan("")), ContractViolation);
}

TEST(Contracts, LogModeKeepsRunning) {
    ScopedContractMode scope(ContractMode::kLog);
    EXPECT_NO_THROW(VNFR_CHECK(false, "logged, not thrown"));
    EXPECT_NO_THROW(VNFR_CHECK_PROB(2.0));
    EXPECT_NO_THROW(VNFR_CHECK_FINITE(std::nan("")));
}

TEST(Contracts, ModeIsReadableAndRestorable) {
    const ContractMode before = contract_mode();
    {
        ScopedContractMode scope(ContractMode::kLog);
        EXPECT_EQ(contract_mode(), ContractMode::kLog);
    }
    EXPECT_EQ(contract_mode(), before);
}

TEST(Contracts, DcheckConditionNotEvaluatedWhenCompiledOut) {
    ScopedContractMode scope(ContractMode::kThrow);
    int evaluations = 0;
    const auto touch = [&] {
        ++evaluations;
        return true;
    };
    VNFR_DCHECK(touch());
#if !defined(NDEBUG) || defined(VNFR_ENABLE_DCHECKS)
    EXPECT_EQ(evaluations, 1);
#else
    EXPECT_EQ(evaluations, 0);
#endif
}

}  // namespace
}  // namespace vnfr::common
