#include "core/onsite_primal_dual.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/contracts.hpp"
#include "core/dual_limits.hpp"
#include "vnf/reliability.hpp"

namespace vnfr::core {

namespace {

/// Catalog-level estimate of the typical placement demand a = N * c(f),
/// averaged over (VNF type, cloudlet) pairs at a representative
/// requirement. Uses no knowledge of the request sequence, so the
/// scheduler stays a legitimate online algorithm.
double estimate_typical_demand(const Instance& instance) {
    double total = 0.0;
    std::size_t pairs = 0;
    for (const vnf::VnfType& type : instance.catalog.types()) {
        for (const edge::Cloudlet& c : instance.network.cloudlets()) {
            const double representative_r = std::min(0.95, c.reliability * 0.97);
            const auto n =
                vnf::min_onsite_replicas(c.reliability, type.reliability, representative_r);
            if (!n) continue;
            total += *n * type.compute_units;
            ++pairs;
        }
    }
    return pairs == 0 ? 1.0 : std::max(1.0, total / static_cast<double>(pairs));
}

}  // namespace

OnsitePrimalDual::OnsitePrimalDual(const Instance& instance, OnsitePrimalDualConfig config)
    : instance_(instance),
      config_(config),
      ledger_(instance.network.capacities(), instance.horizon,
              config.enforce_capacity ? edge::CapacityPolicy::kEnforce
                                      : edge::CapacityPolicy::kRecord),
      lambda_(instance.network.cloudlet_count(),
              std::vector<double>(static_cast<std::size_t>(instance.horizon), 0.0)) {
    if (config_.dual_capacity_scale < 0.0)
        throw std::invalid_argument("OnsitePrimalDual: negative dual_capacity_scale");
    if (config_.enforce_capacity) {
        dual_scale_ = config_.dual_capacity_scale > 0.0 ? config_.dual_capacity_scale
                                                        : estimate_typical_demand(instance);
    } else {
        dual_scale_ = 1.0;  // Theorem 1 analyses the literal Eq. 34
    }
}

SchedulerState OnsitePrimalDual::export_state() const {
    return SchedulerState{lambda_, ledger_.usage_table()};
}

void OnsitePrimalDual::import_state(const SchedulerState& state) {
    validate_scheduler_state(state, instance_.network.cloudlet_count(),
                             instance_.horizon);
    ledger_.restore_usage(state.usage);
    lambda_ = state.lambda;
    deltas_.clear();
}

std::string_view OnsitePrimalDual::name() const {
    return config_.enforce_capacity ? "onsite-primal-dual" : "onsite-primal-dual-pure";
}

double OnsitePrimalDual::lambda(CloudletId j, TimeSlot t) const {
    return lambda_.at(j.index()).at(static_cast<std::size_t>(t));
}

std::optional<int> OnsitePrimalDual::replica_count(const workload::Request& request,
                                                   CloudletId j) const {
    const edge::Cloudlet& cloudlet = instance_.network.cloudlet(j);
    return vnf::min_onsite_replicas(cloudlet.reliability,
                                    instance_.catalog.reliability(request.vnf),
                                    request.requirement);
}

std::optional<double> OnsitePrimalDual::dual_price(const workload::Request& request,
                                                   CloudletId j) const {
    const std::optional<int> n = replica_count(request, j);
    if (!n) return std::nullopt;
    const double demand = *n * instance_.catalog.compute_units(request.vnf);
    double price = 0.0;
    const auto& lam = lambda_[j.index()];
    for (TimeSlot t = request.arrival; t < request.end(); ++t) {
        price += demand * lam[static_cast<std::size_t>(t)];
    }
    return price;
}

Decision OnsitePrimalDual::decide(const workload::Request& request) {
    const std::size_t m = instance_.network.cloudlet_count();
    const double compute = instance_.catalog.compute_units(request.vnf);

    // Arg-min of the dual price over feasible cloudlets (lines 3-7). Price
    // ties (ubiquitous early on, when whole windows still have lambda = 0)
    // are broken toward the smaller resource demand N_ij * c(f_i): any
    // arg-min satisfies the analysis, and the cheaper one wastes the least
    // capacity.
    CloudletId best;
    int best_replicas = 0;
    double best_price = std::numeric_limits<double>::infinity();
    double best_demand = std::numeric_limits<double>::infinity();
    bool any_reliable = false;
    for (std::size_t idx = 0; idx < m; ++idx) {
        const CloudletId j{static_cast<std::int64_t>(idx)};
        const std::optional<int> n = replica_count(request, j);
        if (!n) continue;  // r(c_j) <= R_i: this cloudlet can never satisfy rho_i
        // Eq. (3) only yields a count when r(c_j) > R_i, and it is >= 1.
        VNFR_CHECK(*n >= 1, "Eq. (3) replica count for request ", request.id.value,
                   " on cloudlet ", j.value);
        VNFR_DCHECK(instance_.network.cloudlet(j).reliability > request.requirement,
                    "feasibility precondition r(c_j) > R_i violated");
        any_reliable = true;
        const double demand = *n * compute;
        if (config_.enforce_capacity &&
            !ledger_.fits(j, request.arrival, request.end(), demand)) {
            continue;
        }
        double price = 0.0;
        const auto& lam = lambda_[idx];
        for (TimeSlot t = request.arrival; t < request.end(); ++t) {
            VNFR_DCHECK(lam[static_cast<std::size_t>(t)] >= 0.0, "dual price lambda_",
                        j.value, "(", t, ") went negative");
            price += demand * lam[static_cast<std::size_t>(t)];
        }
        VNFR_CHECK_FINITE(price);
        if (price < best_price - 1e-12 ||
            (price < best_price + 1e-12 && demand < best_demand)) {
            best_price = std::min(best_price, price);
            best = j;
            best_replicas = *n;
            best_demand = demand;
        }
    }

    // Admission test (line 8): pay_i must exceed the cheapest dual price.
    if (!best.valid() || request.payment - best_price <= 0.0) {
        if (config_.track_deltas) deltas_.push_back(0.0);
        Decision rejected;
        if (!any_reliable) {
            rejected.reject_reason = RejectReason::kInfeasibleRequirement;
        } else if (!best.valid()) {
            rejected.reject_reason = RejectReason::kNoCapacity;
        } else {
            rejected.reject_reason = RejectReason::kPricedOut;
        }
        return rejected;
    }

    const double demand = best_replicas * compute;
    ledger_.reserve(best, request.arrival, request.end(), demand);
    VNFR_CHECK(request.payment - best_price > 0.0,
               "admitted request must have positive primal increment (Eq. 33)");
    if (config_.track_deltas) deltas_.push_back(request.payment - best_price);  // Eq. 33

    // Dual update (Eq. 34) on the chosen cloudlet's window, against the
    // (possibly scaled) capacity.
    const double cap = instance_.network.cloudlet(best).capacity * dual_scale_;
    VNFR_CHECK(cap > 0.0, "dual update capacity for cloudlet ", best.value);
    const double mult = 1.0 + demand / cap;
    const double add = demand * request.payment / (request.duration * cap);
    auto& lam = lambda_[best.index()];
    for (TimeSlot t = request.arrival; t < request.end(); ++t) {
        auto& value = lam[static_cast<std::size_t>(t)];
        double updated = value * mult + add;
        // Saturate the multiplicative recursion (see core/dual_limits.hpp):
        // beyond the ceiling every representable payment is priced out
        // anyway, and 10^6-request single-cloudlet traces would otherwise
        // overflow to +inf. !(x < c) also catches an inf/NaN intermediate.
        if (!(updated < kDualPriceCeiling)) updated = kDualPriceCeiling;
        value = VNFR_CHECK_FINITE(updated);
        // Eq. (34) is multiplicative with mult > 1 and add > 0, so lambda
        // stays monotonically non-negative.
        VNFR_DCHECK(value >= 0.0, "Eq. (34) dual update for ", best.value, " slot ", t);
    }

    Decision d;
    d.admitted = true;
    d.placement = Placement{request.id, {Site{best, best_replicas}}};
    return d;
}

}  // namespace vnfr::core
