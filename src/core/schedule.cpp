#include "core/schedule.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/instance.hpp"

namespace vnfr::core {

double Placement::compute_per_slot(double per_instance) const {
    double total = 0.0;
    for (const Site& s : sites) total += per_instance * s.replicas;
    return total;
}

ScheduleResult run_online(const Instance& instance, OnlineScheduler& scheduler) {
    ScheduleResult result;
    result.decisions.reserve(instance.requests.size());
    for (const workload::Request& r : instance.requests) {
        Decision d = scheduler.decide(r);
        if (d.admitted) {
            result.revenue += r.payment;
            ++result.admitted;
        }
        result.decisions.push_back(std::move(d));
    }
    const edge::ResourceLedger& ledger = scheduler.ledger();
    result.max_overshoot = ledger.max_overshoot();
    for (std::size_t j = 0; j < ledger.cloudlet_count(); ++j) {
        const CloudletId c{static_cast<std::int64_t>(j)};
        for (TimeSlot t = 0; t < ledger.horizon(); ++t) {
            result.max_load_factor =
                std::max(result.max_load_factor, ledger.usage(c, t) / ledger.capacity(c));
        }
    }
    return result;
}

double acceptance_ratio(const ScheduleResult& result, const Instance& instance) {
    if (instance.requests.empty()) return 0.0;
    return static_cast<double>(result.admitted) /
           static_cast<double>(instance.requests.size());
}

const char* to_string(RejectReason reason) {
    switch (reason) {
        case RejectReason::kNone: return "none";
        case RejectReason::kInfeasibleRequirement: return "infeasible-requirement";
        case RejectReason::kPricedOut: return "priced-out";
        case RejectReason::kNoCapacity: return "no-capacity";
    }
    return "?";
}

RejectionBreakdown rejection_breakdown(const ScheduleResult& result) {
    RejectionBreakdown breakdown;
    for (const Decision& d : result.decisions) {
        if (d.admitted) continue;
        switch (d.reject_reason) {
            case RejectReason::kInfeasibleRequirement:
                ++breakdown.infeasible_requirement;
                break;
            case RejectReason::kPricedOut: ++breakdown.priced_out; break;
            case RejectReason::kNoCapacity: ++breakdown.no_capacity; break;
            case RejectReason::kNone: break;
        }
    }
    return breakdown;
}

}  // namespace vnfr::core
