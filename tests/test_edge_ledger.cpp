#include "edge/resource_ledger.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"

namespace vnfr::edge {
namespace {

ResourceLedger make_enforcing() {
    return ResourceLedger({10.0, 20.0}, 5, CapacityPolicy::kEnforce);
}

TEST(ResourceLedger, ConstructionValidation) {
    EXPECT_THROW(ResourceLedger({10.0}, 0), std::invalid_argument);
    EXPECT_THROW(ResourceLedger({0.0}, 5), std::invalid_argument);
    EXPECT_THROW(ResourceLedger({-3.0}, 5), std::invalid_argument);
}

TEST(ResourceLedger, StartsEmpty) {
    const auto ledger = make_enforcing();
    for (TimeSlot t = 0; t < 5; ++t) {
        EXPECT_DOUBLE_EQ(ledger.usage(CloudletId{0}, t), 0.0);
        EXPECT_DOUBLE_EQ(ledger.residual(CloudletId{0}, t), 10.0);
    }
}

TEST(ResourceLedger, ReserveAffectsOnlyRange) {
    auto ledger = make_enforcing();
    ASSERT_TRUE(ledger.reserve(CloudletId{0}, 1, 3, 4.0));
    EXPECT_DOUBLE_EQ(ledger.usage(CloudletId{0}, 0), 0.0);
    EXPECT_DOUBLE_EQ(ledger.usage(CloudletId{0}, 1), 4.0);
    EXPECT_DOUBLE_EQ(ledger.usage(CloudletId{0}, 2), 4.0);
    EXPECT_DOUBLE_EQ(ledger.usage(CloudletId{0}, 3), 0.0);
    EXPECT_DOUBLE_EQ(ledger.usage(CloudletId{1}, 1), 0.0);
}

TEST(ResourceLedger, EnforcedReserveRejectsOverflowAtomically) {
    auto ledger = make_enforcing();
    ASSERT_TRUE(ledger.reserve(CloudletId{0}, 0, 5, 8.0));
    // 8 + 3 > 10 on every slot: must fail and change nothing.
    EXPECT_FALSE(ledger.reserve(CloudletId{0}, 2, 4, 3.0));
    EXPECT_DOUBLE_EQ(ledger.usage(CloudletId{0}, 2), 8.0);
    EXPECT_DOUBLE_EQ(ledger.usage(CloudletId{0}, 3), 8.0);
}

TEST(ResourceLedger, EnforcedReserveRejectsPartialOverlap) {
    auto ledger = make_enforcing();
    ASSERT_TRUE(ledger.reserve(CloudletId{0}, 2, 3, 9.0));
    // Slot 2 can't take 2 more even though slots 0-1 can.
    EXPECT_FALSE(ledger.reserve(CloudletId{0}, 0, 3, 2.0));
    EXPECT_DOUBLE_EQ(ledger.usage(CloudletId{0}, 0), 0.0);
}

TEST(ResourceLedger, ExactFitAccepted) {
    auto ledger = make_enforcing();
    EXPECT_TRUE(ledger.reserve(CloudletId{0}, 0, 5, 10.0));
    EXPECT_FALSE(ledger.fits(CloudletId{0}, 0, 1, 0.5));
    EXPECT_TRUE(ledger.fits(CloudletId{0}, 0, 1, 0.0));
}

TEST(ResourceLedger, RecordingPolicyAllowsOvershoot) {
    ResourceLedger ledger({10.0}, 3, CapacityPolicy::kRecord);
    EXPECT_TRUE(ledger.reserve(CloudletId{0}, 0, 3, 7.0));
    EXPECT_TRUE(ledger.reserve(CloudletId{0}, 1, 2, 8.0));
    EXPECT_DOUBLE_EQ(ledger.usage(CloudletId{0}, 1), 15.0);
    EXPECT_DOUBLE_EQ(ledger.peak_overshoot(CloudletId{0}), 5.0);
    EXPECT_DOUBLE_EQ(ledger.max_overshoot(), 5.0);
}

TEST(ResourceLedger, NoOvershootWhenWithinCapacity) {
    auto ledger = make_enforcing();
    ledger.reserve(CloudletId{0}, 0, 5, 9.0);
    EXPECT_DOUBLE_EQ(ledger.peak_overshoot(CloudletId{0}), 0.0);
    EXPECT_DOUBLE_EQ(ledger.max_overshoot(), 0.0);
}

TEST(ResourceLedger, ReleaseRestoresCapacity) {
    auto ledger = make_enforcing();
    ledger.reserve(CloudletId{0}, 0, 5, 10.0);
    ledger.release(CloudletId{0}, 0, 5, 10.0);
    for (TimeSlot t = 0; t < 5; ++t) {
        EXPECT_DOUBLE_EQ(ledger.usage(CloudletId{0}, t), 0.0);
    }
    EXPECT_TRUE(ledger.reserve(CloudletId{0}, 0, 5, 10.0));
}

TEST(ResourceLedger, ReleaseMoreThanReservedThrows) {
    auto ledger = make_enforcing();
    ledger.reserve(CloudletId{0}, 0, 2, 3.0);
    EXPECT_THROW(ledger.release(CloudletId{0}, 0, 2, 5.0), std::logic_error);
}

TEST(ResourceLedger, RangeValidation) {
    auto ledger = make_enforcing();
    EXPECT_THROW(ledger.reserve(CloudletId{0}, -1, 2, 1.0), std::invalid_argument);
    EXPECT_THROW(ledger.reserve(CloudletId{0}, 0, 6, 1.0), std::invalid_argument);
    EXPECT_THROW(ledger.reserve(CloudletId{0}, 3, 3, 1.0), std::invalid_argument);
    EXPECT_THROW(ledger.reserve(CloudletId{0}, 0, 2, -1.0), std::invalid_argument);
    EXPECT_THROW(ledger.reserve(CloudletId{7}, 0, 2, 1.0), std::invalid_argument);
    EXPECT_THROW(ledger.reserve(CloudletId{}, 0, 2, 1.0), std::invalid_argument);
}

TEST(ResourceLedger, MeanUtilization) {
    auto ledger = make_enforcing();
    ledger.reserve(CloudletId{0}, 0, 5, 5.0);  // 50% everywhere
    EXPECT_NEAR(ledger.mean_utilization(CloudletId{0}), 0.5, 1e-12);
    ledger.release(CloudletId{0}, 0, 5, 5.0);
    ledger.reserve(CloudletId{0}, 0, 1, 10.0);  // 100% in one of five slots
    EXPECT_NEAR(ledger.mean_utilization(CloudletId{0}), 0.2, 1e-12);
}

TEST(ResourceLedger, IndependentCloudlets) {
    auto ledger = make_enforcing();
    ledger.reserve(CloudletId{0}, 0, 5, 10.0);
    // Cloudlet 1 has its own capacity (20) untouched.
    EXPECT_TRUE(ledger.reserve(CloudletId{1}, 0, 5, 20.0));
}

// Property: the ledger agrees with a trivially correct map-based reference
// under a random reserve/release workload.
class LedgerReferenceTest : public ::testing::TestWithParam<int> {};

TEST_P(LedgerReferenceTest, MatchesReferenceModel) {
    common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 31);
    const TimeSlot horizon = 12;
    const std::vector<double> caps{8.0, 14.0, 5.0};
    ResourceLedger ledger(caps, horizon, CapacityPolicy::kEnforce);
    // Reference: (cloudlet, slot) -> usage.
    std::map<std::pair<std::int64_t, TimeSlot>, double> reference;

    struct Reservation {
        CloudletId c;
        TimeSlot begin, end;
        double amount;
    };
    std::vector<Reservation> live;

    for (int op = 0; op < 400; ++op) {
        if (!live.empty() && rng.bernoulli(0.4)) {
            // Release a random live reservation.
            const auto idx = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
            const Reservation r = live[idx];
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
            ledger.release(r.c, r.begin, r.end, r.amount);
            for (TimeSlot t = r.begin; t < r.end; ++t) {
                reference[{r.c.value, t}] -= r.amount;
            }
        } else {
            Reservation r;
            r.c = CloudletId{rng.uniform_int(0, 2)};
            r.begin = static_cast<TimeSlot>(rng.uniform_int(0, horizon - 2));
            r.end = static_cast<TimeSlot>(
                rng.uniform_int(r.begin + 1, std::min<TimeSlot>(horizon, r.begin + 5)));
            r.amount = rng.uniform(0.5, 4.0);
            // Reference feasibility check.
            bool fits = true;
            for (TimeSlot t = r.begin; t < r.end && fits; ++t) {
                fits = reference[{r.c.value, t}] + r.amount <= caps[r.c.index()] + 1e-9;
            }
            EXPECT_EQ(ledger.fits(r.c, r.begin, r.end, r.amount), fits);
            const bool reserved = ledger.reserve(r.c, r.begin, r.end, r.amount);
            EXPECT_EQ(reserved, fits);
            if (reserved) {
                live.push_back(r);
                for (TimeSlot t = r.begin; t < r.end; ++t) {
                    reference[{r.c.value, t}] += r.amount;
                }
            }
        }
        // Full state comparison every few operations.
        if (op % 20 == 0) {
            for (std::int64_t c = 0; c < 3; ++c) {
                for (TimeSlot t = 0; t < horizon; ++t) {
                    EXPECT_NEAR(ledger.usage(CloudletId{c}, t), (reference[{c, t}]), 1e-9);
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LedgerReferenceTest, ::testing::Range(0, 8));

TEST(ResourceLedger, CapacityAccessor) {
    const auto ledger = make_enforcing();
    EXPECT_DOUBLE_EQ(ledger.capacity(CloudletId{0}), 10.0);
    EXPECT_DOUBLE_EQ(ledger.capacity(CloudletId{1}), 20.0);
    EXPECT_THROW((void)ledger.capacity(CloudletId{9}), std::invalid_argument);
}

}  // namespace
}  // namespace vnfr::edge
