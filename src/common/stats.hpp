// Streaming and batch statistics used by the experiment harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace vnfr::common {

/// Numerically stable streaming mean/variance (Welford's algorithm).
class RunningStats {
  public:
    void add(double x);

    [[nodiscard]] std::size_t count() const { return n_; }
    [[nodiscard]] double mean() const;
    /// Unbiased sample variance; 0 for fewer than two samples.
    [[nodiscard]] double variance() const;
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;
    [[nodiscard]] double sum() const { return sum_; }

    /// Half-width of the 95% confidence interval for the mean under a normal
    /// approximation (1.96 * s / sqrt(n)); 0 for fewer than two samples.
    [[nodiscard]] double ci95_halfwidth() const;

    /// Merge another accumulator into this one (parallel Welford).
    void merge(const RunningStats& other);

  private:
    std::size_t n_{0};
    double mean_{0};
    double m2_{0};
    double min_{0};
    double max_{0};
    double sum_{0};
};

/// Linear-interpolation percentile of `values` (copied and sorted), with
/// `q` in [0, 100]. Throws std::invalid_argument on empty input or bad q.
double percentile(std::span<const double> values, double q);

/// A two-sided interval estimate.
struct Interval {
    double lo{0};
    double hi{0};

    [[nodiscard]] bool contains(double x) const { return x >= lo && x <= hi; }
    [[nodiscard]] double width() const { return hi - lo; }
};

/// Percentile-bootstrap confidence interval for the mean of `values`
/// (`confidence` in (0,1), e.g. 0.95). Makes no normality assumption —
/// appropriate for the skewed revenue distributions the experiments
/// produce. Deterministic given `rng`. Throws std::invalid_argument on
/// empty input, bad confidence, or zero resamples.
Interval bootstrap_mean_ci(std::span<const double> values, double confidence,
                           std::size_t resamples, Rng& rng);

/// Two-sided Mann-Whitney U test (normal approximation with tie
/// correction and continuity correction): the p-value for the hypothesis
/// that samples `a` and `b` come from the same distribution. Suitable for
/// "is algorithm A's revenue distribution different from B's?" questions
/// at bench sample sizes (>= ~8 per side for the approximation to hold).
/// Throws std::invalid_argument when either sample is empty.
double mann_whitney_p(std::span<const double> a, std::span<const double> b);

/// Histogram with equal-width bins over [lo, hi]; values outside clamp to
/// the edge bins, which is what utilization plots want.
class Histogram {
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);
    [[nodiscard]] std::size_t bin_count(std::size_t bin) const;
    [[nodiscard]] std::size_t bins() const { return counts_.size(); }
    [[nodiscard]] std::size_t total() const { return total_; }
    [[nodiscard]] double bin_lower(std::size_t bin) const;
    [[nodiscard]] double bin_upper(std::size_t bin) const;

  private:
    double lo_;
    double width_;
    std::vector<std::size_t> counts_;
    std::size_t total_{0};
};

}  // namespace vnfr::common
