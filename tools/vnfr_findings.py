"""Shared finding schema for the repo's static-analysis tools.

Both analyzers (``vnfr_lint.py``, the pattern lint, and ``vnfr_asa.py``,
the AST/token analyzer) emit findings through this module so their
output is interchangeable for CI tooling:

  plain mode   one grep-friendly line per finding:
                   path:line: rule: message
  ``--json``   a single JSON object:
                   {"tool": ..., "mode": ..., "rules": {id: description},
                    "findings": [{"path", "line", "rule", "message"}],
                    "count": N}

Suppressions share one grammar across tools::

    // <tool>: allow(<rule>) <justification>

where ``<tool>`` is ``vnfr-lint`` or ``vnfr-asa`` and the justification
is REQUIRED: at least :data:`MIN_JUSTIFICATION` characters explaining why
the finding is a false positive or deliberately accepted. A suppression
covers its own line and the line directly below it (comment-above
style). A suppression with a missing/short justification, or naming a
rule the tool does not register, is itself reported under the
``suppression-format`` rule — so stale or lazy suppressions fail the
lint instead of rotting silently.
"""

from __future__ import annotations

import json
import re
import sys
from dataclasses import dataclass

#: Minimum characters of justification text required after ``allow(...)``.
MIN_JUSTIFICATION = 8

#: Rule id under which malformed suppressions are reported (registered by
#: every tool that consumes this module).
SUPPRESSION_RULE = "suppression-format"
SUPPRESSION_RULE_DOC = (
    "every '<tool>: allow(<rule>)' suppression must name a registered rule "
    f"and carry a justification of at least {MIN_JUSTIFICATION} characters"
)


@dataclass(frozen=True, order=True)
class Finding:
    path: str  # repo-relative POSIX path
    line: int  # 1-based
    rule: str
    message: str

    def text(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"

    def as_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


def emit(
    findings: list[Finding],
    *,
    tool: str,
    rules: dict[str, str],
    json_mode: bool,
    mode: str | None = None,
    stream=sys.stdout,
) -> int:
    """Prints findings in the selected format and returns the exit code
    (0 clean, 1 findings)."""
    ordered = sorted(findings)
    if json_mode:
        payload = {
            "tool": tool,
            "mode": mode or "pattern",
            "rules": rules,
            "findings": [f.as_json() for f in ordered],
            "count": len(ordered),
        }
        json.dump(payload, stream, indent=2)
        stream.write("\n")
    else:
        for f in ordered:
            print(f.text(), file=stream)
        if ordered:
            print(f"{tool}: {len(ordered)} finding(s)", file=sys.stderr)
        else:
            print(f"{tool}: clean", file=stream)
    return 1 if ordered else 0


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments and the contents of string/char literals so
    pattern rules do not fire inside prose or formatted messages."""
    out: list[str] = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                if line[i] == "\\":
                    i += 1
                i += 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def _suppress_re(tool: str) -> re.Pattern[str]:
    return re.compile(rf"//\s*{re.escape(tool)}:\s*allow\(([^)]*)\)(.*)$")


def scan_suppressions(
    raw_lines: list[str], *, tool: str, rel: str, known_rules: set[str]
) -> tuple[dict[int, set[str]], list[Finding]]:
    """Parses ``// <tool>: allow(rule[, rule]) justification`` comments.

    Returns ``(covered, findings)`` where ``covered`` maps 1-based line
    numbers to the set of rule ids suppressed on that line (a suppression
    covers its own line and the next), and ``findings`` holds
    ``suppression-format`` violations for unjustified or unknown-rule
    suppressions.
    """
    pattern = _suppress_re(tool)
    covered: dict[int, set[str]] = {}
    findings: list[Finding] = []
    for idx, raw in enumerate(raw_lines):
        m = pattern.search(raw)
        if m is None:
            continue
        lineno = idx + 1
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        justification = m.group(2).strip().lstrip(":-").strip()
        # Fixture sources append '// expect: <rule>' markers after the
        # suppression; marker text is metadata, not justification.
        justification = re.split(r"//\s*expect:", justification)[0].strip()
        if not rules:
            findings.append(
                Finding(rel, lineno, SUPPRESSION_RULE,
                        "allow() names no rule")
            )
            continue
        unknown = sorted(rules - known_rules)
        if unknown:
            findings.append(
                Finding(
                    rel, lineno, SUPPRESSION_RULE,
                    f"allow() names unregistered rule(s): {', '.join(unknown)}",
                )
            )
            continue
        if len(justification) < MIN_JUSTIFICATION:
            findings.append(
                Finding(
                    rel, lineno, SUPPRESSION_RULE,
                    f"suppression of {', '.join(sorted(rules))} lacks a "
                    f"justification (>= {MIN_JUSTIFICATION} chars after the "
                    "closing paren)",
                )
            )
            continue
        for covered_line in (lineno, lineno + 1):
            covered.setdefault(covered_line, set()).update(rules)
    return covered, findings


def apply_suppressions(
    findings: list[Finding], covered: dict[int, set[str]]
) -> list[Finding]:
    """Drops findings whose (line, rule) is covered by a suppression.
    ``suppression-format`` findings are never suppressible."""
    out = []
    for f in findings:
        if f.rule != SUPPRESSION_RULE and f.rule in covered.get(f.line, set()):
            continue
        out.append(f)
    return out
