// Bounded multi-producer single-consumer queue on the annotated
// synchronization primitives (common/mutex.hpp).
//
// Producers call try_push(), which never blocks: a full or closed queue
// is reported back so the caller can apply its own policy (retry,
// backpressure, or shed). The single consumer calls pop() with a timeout,
// which doubles as the flush heartbeat of batch consumers — a consumer
// that wants to group work can treat kTimeout as "no new input within the
// batching window, flush what you have".
//
// close() is the shutdown handshake: producers see kClosed from then on,
// and the consumer keeps draining until the queue is empty before pop()
// reports kClosed, so no accepted item is ever dropped.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <utility>

#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace vnfr::common {

enum class MpscPushResult {
    kPushed,  ///< accepted
    kFull,    ///< at capacity — caller decides: retry, backpressure, shed
    kClosed,  ///< close() was called; no further pushes will ever succeed
};

enum class MpscPopResult {
    kItem,     ///< an item was dequeued into `out`
    kTimeout,  ///< nothing arrived within the timeout (queue still open)
    kClosed,   ///< queue closed *and* fully drained
};

template <typename T>
class MpscQueue {
  public:
    explicit MpscQueue(std::size_t capacity) : capacity_(capacity) {}

    MpscQueue(const MpscQueue&) = delete;
    MpscQueue& operator=(const MpscQueue&) = delete;

    /// Non-blocking enqueue; safe from any number of producer threads.
    MpscPushResult try_push(T value) VNFR_EXCLUDES(queue_mu_) {
        bool pushed = false;
        {
            const MutexLock lock(&queue_mu_);
            if (closed_) return MpscPushResult::kClosed;
            if (items_.size() >= capacity_) return MpscPushResult::kFull;
            items_.push_back(std::move(value));
            pushed = true;
        }
        if (pushed) ready_.notify_one();
        return MpscPushResult::kPushed;
    }

    /// Dequeues into `out`, waiting up to `timeout` for an item. Single
    /// consumer only. A closed queue drains before reporting kClosed.
    MpscPopResult pop(T& out, std::chrono::nanoseconds timeout)
        VNFR_EXCLUDES(queue_mu_) {
        const MutexLock lock(&queue_mu_);
        while (items_.empty()) {
            if (closed_) return MpscPopResult::kClosed;
            if (!ready_.wait_for(queue_mu_, timeout) && items_.empty()) {
                // Timed out; closed_ may have flipped while waiting.
                return closed_ ? MpscPopResult::kClosed : MpscPopResult::kTimeout;
            }
        }
        out = std::move(items_.front());
        items_.pop_front();
        return MpscPopResult::kItem;
    }

    /// Irreversibly stops accepting pushes and wakes the consumer.
    void close() VNFR_EXCLUDES(queue_mu_) {
        {
            const MutexLock lock(&queue_mu_);
            closed_ = true;
        }
        ready_.notify_all();
    }

    [[nodiscard]] std::size_t size() const VNFR_EXCLUDES(queue_mu_) {
        const MutexLock lock(&queue_mu_);
        return items_.size();
    }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    mutable Mutex queue_mu_;
    CondVar ready_;
    std::deque<T> items_ VNFR_GUARDED_BY(queue_mu_);
    bool closed_ VNFR_GUARDED_BY(queue_mu_) = false;
};

}  // namespace vnfr::common
