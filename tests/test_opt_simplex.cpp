#include "opt/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "opt/lp.hpp"

namespace vnfr::opt {
namespace {

TEST(Simplex, EmptyProgram) {
    LinearProgram lp;
    const LpSolution sol = solve_lp(lp);
    EXPECT_EQ(sol.status, SolveStatus::kOptimal);
    EXPECT_DOUBLE_EQ(sol.objective, 0.0);
}

TEST(Simplex, ClassicTextbookProblem) {
    // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18. Optimum 36 at (2,6).
    LinearProgram lp;
    const std::size_t x = lp.add_variable(3.0);
    const std::size_t y = lp.add_variable(5.0);
    lp.add_row({{x, 1.0}}, Relation::kLe, 4.0);
    lp.add_row({{y, 2.0}}, Relation::kLe, 12.0);
    lp.add_row({{x, 3.0}, {y, 2.0}}, Relation::kLe, 18.0);
    const LpSolution sol = solve_lp(lp);
    ASSERT_EQ(sol.status, SolveStatus::kOptimal);
    EXPECT_NEAR(sol.objective, 36.0, 1e-8);
    EXPECT_NEAR(sol.x[x], 2.0, 1e-8);
    EXPECT_NEAR(sol.x[y], 6.0, 1e-8);
}

TEST(Simplex, ClassicTextbookDuals) {
    // Known dual optimum for the problem above: (0, 1.5, 1).
    LinearProgram lp;
    const std::size_t x = lp.add_variable(3.0);
    const std::size_t y = lp.add_variable(5.0);
    lp.add_row({{x, 1.0}}, Relation::kLe, 4.0);
    lp.add_row({{y, 2.0}}, Relation::kLe, 12.0);
    lp.add_row({{x, 3.0}, {y, 2.0}}, Relation::kLe, 18.0);
    const LpSolution sol = solve_lp(lp);
    ASSERT_EQ(sol.status, SolveStatus::kOptimal);
    ASSERT_EQ(sol.duals.size(), 3u);
    EXPECT_NEAR(sol.duals[0], 0.0, 1e-8);
    EXPECT_NEAR(sol.duals[1], 1.5, 1e-8);
    EXPECT_NEAR(sol.duals[2], 1.0, 1e-8);
}

TEST(Simplex, UpperBoundsBindWithoutRows) {
    // max x + y with x <= 2 (bound), x + y <= 3: optimum 3.
    LinearProgram lp;
    const std::size_t x = lp.add_variable(2.0, 2.0);
    const std::size_t y = lp.add_variable(1.0, 2.0);
    lp.add_row({{x, 1.0}, {y, 1.0}}, Relation::kLe, 3.0);
    const LpSolution sol = solve_lp(lp);
    ASSERT_EQ(sol.status, SolveStatus::kOptimal);
    EXPECT_NEAR(sol.objective, 5.0, 1e-8);  // x=2 (coeff 2) + y=1
    EXPECT_NEAR(sol.x[x], 2.0, 1e-8);
    EXPECT_NEAR(sol.x[y], 1.0, 1e-8);
}

TEST(Simplex, LowerBoundsShiftCorrectly) {
    // max -x s.t. x >= 2 via bounds: optimum -2 at x = 2.
    LinearProgram lp;
    const std::size_t x = lp.add_variable(-1.0, 10.0);
    lp.set_bounds(x, 2.0, 10.0);
    const LpSolution sol = solve_lp(lp);
    ASSERT_EQ(sol.status, SolveStatus::kOptimal);
    EXPECT_NEAR(sol.objective, -2.0, 1e-8);
    EXPECT_NEAR(sol.x[x], 2.0, 1e-8);
}

TEST(Simplex, FixedVariable) {
    LinearProgram lp;
    const std::size_t x = lp.add_variable(5.0, 1.0);
    const std::size_t y = lp.add_variable(1.0, 1.0);
    lp.set_bounds(x, 1.0, 1.0);  // fixed to 1
    lp.add_row({{x, 1.0}, {y, 1.0}}, Relation::kLe, 1.5);
    const LpSolution sol = solve_lp(lp);
    ASSERT_EQ(sol.status, SolveStatus::kOptimal);
    EXPECT_NEAR(sol.x[x], 1.0, 1e-8);
    EXPECT_NEAR(sol.x[y], 0.5, 1e-8);
}

TEST(Simplex, EqualityConstraints) {
    // max x + 2y s.t. x + y = 4, y <= 3. Optimum: y=3, x=1 -> 7.
    LinearProgram lp;
    const std::size_t x = lp.add_variable(1.0);
    const std::size_t y = lp.add_variable(2.0, 3.0);
    lp.add_row({{x, 1.0}, {y, 1.0}}, Relation::kEq, 4.0);
    const LpSolution sol = solve_lp(lp);
    ASSERT_EQ(sol.status, SolveStatus::kOptimal);
    EXPECT_NEAR(sol.objective, 7.0, 1e-8);
    EXPECT_NEAR(sol.x[x], 1.0, 1e-8);
    EXPECT_NEAR(sol.x[y], 3.0, 1e-8);
}

TEST(Simplex, GreaterEqualConstraints) {
    // min x + y (as max of negative) s.t. x + 2y >= 4, 3x + y >= 6.
    // Optimum of min: x = 1.6, y = 1.2, value 2.8.
    LinearProgram lp;
    const std::size_t x = lp.add_variable(-1.0);
    const std::size_t y = lp.add_variable(-1.0);
    lp.add_row({{x, 1.0}, {y, 2.0}}, Relation::kGe, 4.0);
    lp.add_row({{x, 3.0}, {y, 1.0}}, Relation::kGe, 6.0);
    const LpSolution sol = solve_lp(lp);
    ASSERT_EQ(sol.status, SolveStatus::kOptimal);
    EXPECT_NEAR(sol.objective, -2.8, 1e-8);
    EXPECT_NEAR(sol.x[x], 1.6, 1e-8);
    EXPECT_NEAR(sol.x[y], 1.2, 1e-8);
}

TEST(Simplex, NegativeRhsNormalization) {
    // x - y <= -1 (i.e. y >= x + 1), max x with y <= 3: x = 2.
    LinearProgram lp;
    const std::size_t x = lp.add_variable(1.0);
    const std::size_t y = lp.add_variable(0.0, 3.0);
    lp.add_row({{x, 1.0}, {y, -1.0}}, Relation::kLe, -1.0);
    const LpSolution sol = solve_lp(lp);
    ASSERT_EQ(sol.status, SolveStatus::kOptimal);
    EXPECT_NEAR(sol.objective, 2.0, 1e-8);
}

TEST(Simplex, DetectsInfeasible) {
    LinearProgram lp;
    const std::size_t x = lp.add_variable(1.0);
    lp.add_row({{x, 1.0}}, Relation::kLe, 1.0);
    lp.add_row({{x, 1.0}}, Relation::kGe, 2.0);
    EXPECT_EQ(solve_lp(lp).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsInfeasibleEquality) {
    LinearProgram lp;
    const std::size_t x = lp.add_variable(1.0, 1.0);
    const std::size_t y = lp.add_variable(1.0, 1.0);
    lp.add_row({{x, 1.0}, {y, 1.0}}, Relation::kEq, 5.0);
    EXPECT_EQ(solve_lp(lp).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
    LinearProgram lp;
    const std::size_t x = lp.add_variable(1.0);
    const std::size_t y = lp.add_variable(0.0);
    lp.add_row({{x, 1.0}, {y, -1.0}}, Relation::kLe, 1.0);
    EXPECT_EQ(solve_lp(lp).status, SolveStatus::kUnbounded);
}

TEST(Simplex, RedundantEqualityRows) {
    // Duplicate equality rows leave a zero-level artificial; the solve must
    // still finish and be correct.
    LinearProgram lp;
    const std::size_t x = lp.add_variable(1.0, 10.0);
    const std::size_t y = lp.add_variable(1.0, 10.0);
    lp.add_row({{x, 1.0}, {y, 1.0}}, Relation::kEq, 5.0);
    lp.add_row({{x, 2.0}, {y, 2.0}}, Relation::kEq, 10.0);
    const LpSolution sol = solve_lp(lp);
    ASSERT_EQ(sol.status, SolveStatus::kOptimal);
    EXPECT_NEAR(sol.objective, 5.0, 1e-8);
}

TEST(Simplex, DegenerateProblemTerminates) {
    // Klee-Minty-flavoured degeneracy trigger: many redundant constraints
    // through the same vertex.
    LinearProgram lp;
    const std::size_t x = lp.add_variable(1.0);
    const std::size_t y = lp.add_variable(1.0);
    lp.add_row({{x, 1.0}}, Relation::kLe, 1.0);
    lp.add_row({{y, 1.0}}, Relation::kLe, 1.0);
    lp.add_row({{x, 1.0}, {y, 1.0}}, Relation::kLe, 2.0);
    lp.add_row({{x, 2.0}, {y, 1.0}}, Relation::kLe, 3.0);
    lp.add_row({{x, 1.0}, {y, 2.0}}, Relation::kLe, 3.0);
    const LpSolution sol = solve_lp(lp);
    ASSERT_EQ(sol.status, SolveStatus::kOptimal);
    EXPECT_NEAR(sol.objective, 2.0, 1e-8);
}

TEST(Simplex, ZeroObjective) {
    LinearProgram lp;
    const std::size_t x = lp.add_variable(0.0, 1.0);
    lp.add_row({{x, 1.0}}, Relation::kLe, 1.0);
    const LpSolution sol = solve_lp(lp);
    ASSERT_EQ(sol.status, SolveStatus::kOptimal);
    EXPECT_DOUBLE_EQ(sol.objective, 0.0);
}

TEST(Simplex, NoConstraintsBoundFlipOnly) {
    // max 2x - y with 0 <= x <= 5, 0 <= y <= 3 and no rows: pure bound
    // flips, empty basis.
    LinearProgram lp;
    const std::size_t x = lp.add_variable(2.0, 5.0);
    const std::size_t y = lp.add_variable(-1.0, 3.0);
    const LpSolution sol = solve_lp(lp);
    ASSERT_EQ(sol.status, SolveStatus::kOptimal);
    EXPECT_NEAR(sol.objective, 10.0, 1e-9);
    EXPECT_NEAR(sol.x[x], 5.0, 1e-9);
    EXPECT_NEAR(sol.x[y], 0.0, 1e-9);
}

TEST(Simplex, NoConstraintsUnboundedAbove) {
    LinearProgram lp;
    lp.add_variable(1.0);  // ub = infinity, no rows
    EXPECT_EQ(solve_lp(lp).status, SolveStatus::kUnbounded);
}

TEST(Simplex, ManyUpperBoundsAllBinding) {
    // max sum x_j, x_j <= 1 (bounds), sum x_j <= 10 with 6 variables: the
    // row is slack, all six sit at their upper bounds.
    LinearProgram lp;
    std::vector<std::pair<std::size_t, double>> row;
    for (int j = 0; j < 6; ++j) row.emplace_back(lp.add_variable(1.0, 1.0), 1.0);
    lp.add_row(std::move(row), Relation::kLe, 10.0);
    const LpSolution sol = solve_lp(lp);
    ASSERT_EQ(sol.status, SolveStatus::kOptimal);
    EXPECT_NEAR(sol.objective, 6.0, 1e-9);
    for (const double v : sol.x) EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(Simplex, BasicVariableLeavesAtUpperBound) {
    // max 3x + y with x + y <= 4, x <= 3, y <= 3. Optimum x=3, y=1 -> 10;
    // reaching it forces a leave-at-upper-bound pivot.
    LinearProgram lp;
    const std::size_t x = lp.add_variable(3.0, 3.0);
    const std::size_t y = lp.add_variable(1.0, 3.0);
    lp.add_row({{x, 1.0}, {y, 1.0}}, Relation::kLe, 4.0);
    const LpSolution sol = solve_lp(lp);
    ASSERT_EQ(sol.status, SolveStatus::kOptimal);
    EXPECT_NEAR(sol.objective, 10.0, 1e-9);
    EXPECT_NEAR(sol.x[x], 3.0, 1e-9);
    EXPECT_NEAR(sol.x[y], 1.0, 1e-9);
}

TEST(Simplex, FixedVariableInsideEquality) {
    // x fixed at 2 through bounds, x + y = 5 -> y = 3.
    LinearProgram lp;
    const std::size_t x = lp.add_variable(0.0, 4.0);
    const std::size_t y = lp.add_variable(1.0, 10.0);
    lp.set_bounds(x, 2.0, 2.0);
    lp.add_row({{x, 1.0}, {y, 1.0}}, Relation::kEq, 5.0);
    const LpSolution sol = solve_lp(lp);
    ASSERT_EQ(sol.status, SolveStatus::kOptimal);
    EXPECT_NEAR(sol.x[x], 2.0, 1e-9);
    EXPECT_NEAR(sol.x[y], 3.0, 1e-9);
}

TEST(Simplex, InfeasibleBecauseOfUpperBounds) {
    // x + y >= 5 but both capped at 2.
    LinearProgram lp;
    const std::size_t x = lp.add_variable(1.0, 2.0);
    const std::size_t y = lp.add_variable(1.0, 2.0);
    lp.add_row({{x, 1.0}, {y, 1.0}}, Relation::kGe, 5.0);
    EXPECT_EQ(solve_lp(lp).status, SolveStatus::kInfeasible);
}

// Property: bounded-variable handling agrees with modelling the same upper
// bounds as explicit rows, across random instances.
class SimplexBoundsEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SimplexBoundsEquivalence, NativeBoundsMatchExplicitRows) {
    common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 2111 + 17);
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 8));
    const std::size_t m = static_cast<std::size_t>(rng.uniform_int(1, 5));

    LinearProgram with_bounds;
    LinearProgram with_rows;
    std::vector<double> ubs(n);
    for (std::size_t j = 0; j < n; ++j) {
        const double c = rng.uniform(-2.0, 5.0);
        ubs[j] = rng.uniform(0.5, 4.0);
        with_bounds.add_variable(c, ubs[j]);
        with_rows.add_variable(c);
    }
    for (std::size_t j = 0; j < n; ++j) {
        with_rows.add_row({{j, 1.0}}, Relation::kLe, ubs[j]);
    }
    for (std::size_t i = 0; i < m; ++i) {
        std::vector<std::pair<std::size_t, double>> terms;
        for (std::size_t j = 0; j < n; ++j) {
            if (rng.bernoulli(0.7)) terms.emplace_back(j, rng.uniform(0.2, 3.0));
        }
        if (terms.empty()) terms.emplace_back(0, 1.0);
        const double rhs = rng.uniform(1.0, 8.0);
        with_bounds.add_row(terms, Relation::kLe, rhs);
        with_rows.add_row(terms, Relation::kLe, rhs);
    }
    const LpSolution a = solve_lp(with_bounds);
    const LpSolution b = solve_lp(with_rows);
    ASSERT_EQ(a.status, SolveStatus::kOptimal);
    ASSERT_EQ(b.status, SolveStatus::kOptimal);
    EXPECT_NEAR(a.objective, b.objective, 1e-6 * (1.0 + std::fabs(b.objective)));
    EXPECT_LE(with_bounds.max_violation(a.x), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexBoundsEquivalence, ::testing::Range(0, 20));

// Property: on random packing LPs (max c'x, Ax <= b, x >= 0), the solution
// must be feasible and come with a dual certificate of optimality:
// y >= 0, A'y >= c, and b'y == c'x (strong duality).
class SimplexRandomPacking : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomPacking, OptimalityCertificate) {
    common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(3, 12));
    const std::size_t m = static_cast<std::size_t>(rng.uniform_int(2, 10));

    LinearProgram lp;
    std::vector<double> c(n);
    for (std::size_t j = 0; j < n; ++j) {
        c[j] = rng.uniform(0.1, 5.0);
        lp.add_variable(c[j]);
    }
    std::vector<std::vector<double>> a(m, std::vector<double>(n, 0.0));
    std::vector<double> b(m);
    for (std::size_t i = 0; i < m; ++i) {
        std::vector<std::pair<std::size_t, double>> terms;
        for (std::size_t j = 0; j < n; ++j) {
            if (rng.bernoulli(0.6)) {
                a[i][j] = rng.uniform(0.1, 3.0);
                terms.emplace_back(j, a[i][j]);
            }
        }
        b[i] = rng.uniform(1.0, 10.0);
        if (terms.empty()) terms.emplace_back(0, a[i][0] = 1.0);
        lp.add_row(std::move(terms), Relation::kLe, b[i]);
    }
    // Ensure boundedness: cap every variable by a generous box row.
    {
        std::vector<std::pair<std::size_t, double>> box;
        std::vector<double> ones(n, 1.0);
        for (std::size_t j = 0; j < n; ++j) box.emplace_back(j, 1.0);
        a.push_back(ones);
        b.push_back(100.0);
        lp.add_row(std::move(box), Relation::kLe, 100.0);
    }

    const LpSolution sol = solve_lp(lp);
    ASSERT_EQ(sol.status, SolveStatus::kOptimal);
    EXPECT_LE(lp.max_violation(sol.x), 1e-6);

    ASSERT_EQ(sol.duals.size(), a.size());
    double by = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_GE(sol.duals[i], -1e-7) << "dual sign";
        by += sol.duals[i] * b[i];
    }
    for (std::size_t j = 0; j < n; ++j) {
        double aty = 0.0;
        for (std::size_t i = 0; i < a.size(); ++i) aty += sol.duals[i] * a[i][j];
        EXPECT_GE(aty, c[j] - 1e-6) << "dual feasibility, column " << j;
    }
    EXPECT_NEAR(by, sol.objective, 1e-6 * (1.0 + std::fabs(by))) << "strong duality";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomPacking, ::testing::Range(0, 25));

}  // namespace
}  // namespace vnfr::opt
