#include "net/graph.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "net/algorithms.hpp"

namespace vnfr::net {
namespace {

TEST(Graph, StartsEmpty) {
    Graph g;
    EXPECT_EQ(g.node_count(), 0u);
    EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Graph, BulkConstruction) {
    Graph g(5);
    EXPECT_EQ(g.node_count(), 5u);
    EXPECT_TRUE(g.has_node(NodeId{4}));
    EXPECT_FALSE(g.has_node(NodeId{5}));
}

TEST(Graph, AddNodeAssignsSequentialIds) {
    Graph g;
    EXPECT_EQ(g.add_node("a").value, 0);
    EXPECT_EQ(g.add_node("b").value, 1);
    EXPECT_EQ(g.node_name(NodeId{1}), "b");
}

TEST(Graph, AddEdgeIsSymmetric) {
    Graph g(3);
    g.add_edge(NodeId{0}, NodeId{1}, 2.5);
    EXPECT_TRUE(g.has_edge(NodeId{0}, NodeId{1}));
    EXPECT_TRUE(g.has_edge(NodeId{1}, NodeId{0}));
    EXPECT_DOUBLE_EQ(*g.edge_weight(NodeId{0}, NodeId{1}), 2.5);
    EXPECT_DOUBLE_EQ(*g.edge_weight(NodeId{1}, NodeId{0}), 2.5);
}

TEST(Graph, RejectsSelfLoop) {
    Graph g(2);
    EXPECT_THROW(g.add_edge(NodeId{0}, NodeId{0}), std::invalid_argument);
}

TEST(Graph, RejectsDuplicateEdge) {
    Graph g(2);
    g.add_edge(NodeId{0}, NodeId{1});
    EXPECT_THROW(g.add_edge(NodeId{0}, NodeId{1}), std::invalid_argument);
    EXPECT_THROW(g.add_edge(NodeId{1}, NodeId{0}), std::invalid_argument);
}

TEST(Graph, RejectsNonPositiveWeight) {
    Graph g(2);
    EXPECT_THROW(g.add_edge(NodeId{0}, NodeId{1}, 0.0), std::invalid_argument);
    EXPECT_THROW(g.add_edge(NodeId{0}, NodeId{1}, -1.0), std::invalid_argument);
}

TEST(Graph, RejectsUnknownEndpoints) {
    Graph g(2);
    EXPECT_THROW(g.add_edge(NodeId{0}, NodeId{7}), std::invalid_argument);
    EXPECT_THROW(g.add_edge(NodeId{}, NodeId{1}), std::invalid_argument);
}

TEST(Graph, NeighborsAndDegree) {
    Graph g(4);
    g.add_edge(NodeId{0}, NodeId{1});
    g.add_edge(NodeId{0}, NodeId{2});
    g.add_edge(NodeId{0}, NodeId{3});
    EXPECT_EQ(g.degree(NodeId{0}), 3u);
    EXPECT_EQ(g.degree(NodeId{1}), 1u);
    EXPECT_EQ(g.neighbors(NodeId{0}).size(), 3u);
}

TEST(Graph, EdgeWeightMissingEdge) {
    Graph g(3);
    g.add_edge(NodeId{0}, NodeId{1});
    EXPECT_FALSE(g.edge_weight(NodeId{0}, NodeId{2}).has_value());
}

TEST(Graph, EuclideanDistance) {
    Graph g;
    g.add_node("a", 0.0, 0.0);
    g.add_node("b", 3.0, 4.0);
    EXPECT_DOUBLE_EQ(g.euclidean(NodeId{0}, NodeId{1}), 5.0);
}

TEST(Algorithms, EmptyGraphIsConnected) {
    Graph g;
    EXPECT_TRUE(is_connected(g));
}

TEST(Algorithms, SingleNodeIsConnected) {
    Graph g(1);
    EXPECT_TRUE(is_connected(g));
}

TEST(Algorithms, DisconnectedDetected) {
    Graph g(4);
    g.add_edge(NodeId{0}, NodeId{1});
    g.add_edge(NodeId{2}, NodeId{3});
    EXPECT_FALSE(is_connected(g));
    const Components comps = connected_components(g);
    EXPECT_EQ(comps.count, 2);
    EXPECT_EQ(comps.label[0], comps.label[1]);
    EXPECT_EQ(comps.label[2], comps.label[3]);
    EXPECT_NE(comps.label[0], comps.label[2]);
}

TEST(Algorithms, PathGraphDiameters) {
    Graph g(4);
    g.add_edge(NodeId{0}, NodeId{1}, 1.0);
    g.add_edge(NodeId{1}, NodeId{2}, 2.0);
    g.add_edge(NodeId{2}, NodeId{3}, 3.0);
    EXPECT_DOUBLE_EQ(weighted_diameter(g), 6.0);
    EXPECT_EQ(hop_diameter(g), 3);
}

TEST(Algorithms, DisconnectedDiameters) {
    Graph g(3);
    g.add_edge(NodeId{0}, NodeId{1});
    EXPECT_EQ(hop_diameter(g), -1);
    EXPECT_TRUE(std::isinf(weighted_diameter(g)));
}

TEST(Algorithms, AverageDegree) {
    Graph g(4);
    g.add_edge(NodeId{0}, NodeId{1});
    g.add_edge(NodeId{1}, NodeId{2});
    EXPECT_DOUBLE_EQ(average_degree(g), 1.0);
    EXPECT_DOUBLE_EQ(average_degree(Graph{}), 0.0);
}

}  // namespace
}  // namespace vnfr::net
