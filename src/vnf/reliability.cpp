#include "vnf/reliability.hpp"

#include <cmath>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/math.hpp"

namespace vnfr::vnf {

double onsite_availability(double cloudlet_rel, double vnf_rel, int replicas) {
    common::require_open_unit(cloudlet_rel, "cloudlet reliability");
    common::require_open_unit(vnf_rel, "VNF reliability");
    if (replicas < 0) throw std::invalid_argument("onsite_availability: negative replicas");
    return cloudlet_rel * common::at_least_one(vnf_rel, replicas);
}

std::optional<int> min_onsite_replicas(double cloudlet_rel, double vnf_rel,
                                       double requirement) {
    common::require_open_unit(cloudlet_rel, "cloudlet reliability");
    common::require_open_unit(vnf_rel, "VNF reliability");
    common::require_open_unit(requirement, "reliability requirement");
    // Even infinitely many instances cannot beat the cloudlet's own
    // reliability: P(A) -> r(c) as N -> inf (Eq. 2). The margin also
    // rejects cloudlets sitting within rounding distance of R_i, where the
    // closed form's log argument collapses toward 0 and the replica count
    // diverges (r(c_j) = R_i ± 1e-12 both land here).
    if (cloudlet_rel <= requirement + kOnsiteFeasibilityMargin) return std::nullopt;

    // Closed form (Eq. 3): N = ceil( ln(1 - R/r_c) / ln(1 - r_f) ). The
    // r(c_j) > R_i guard above keeps the log argument inside (0, 1).
    const double target = 1.0 - requirement / cloudlet_rel;
    VNFR_CHECK(target > 0.0 && target < 1.0, "Eq. (3) log argument with r_c=",
               cloudlet_rel, " R=", requirement);
    const double n_real = std::log(target) / common::log1m(vnf_rel);
    // Defined outcome instead of a huge N_ij (or UB casting inf to int):
    // a count beyond the ceiling is infeasible, not astronomically priced.
    if (!(n_real < static_cast<double>(kMaxOnsiteReplicas))) return std::nullopt;
    int n = std::max(1, static_cast<int>(std::ceil(n_real - 1e-12)));

    // The closed form can round the wrong way at the boundary; nudge to the
    // exact minimum.
    while (onsite_availability(cloudlet_rel, vnf_rel, n) < requirement) {
        if (++n > kMaxOnsiteReplicas) return std::nullopt;
    }
    while (n > 1 && onsite_availability(cloudlet_rel, vnf_rel, n - 1) >= requirement) --n;
    return n;
}

double offsite_log_failure(double vnf_rel, double cloudlet_rel) {
    common::require_open_unit(vnf_rel, "VNF reliability");
    common::require_open_unit(cloudlet_rel, "cloudlet reliability");
    return common::log1m(vnf_rel * cloudlet_rel);
}

double offsite_availability(double vnf_rel, std::span<const double> cloudlet_rels) {
    double log_all_fail = 0.0;
    for (const double rc : cloudlet_rels) {
        log_all_fail += offsite_log_failure(vnf_rel, rc);
    }
    if (cloudlet_rels.empty()) return 0.0;
    return common::one_minus_exp(log_all_fail);
}

bool offsite_meets(double vnf_rel, std::span<const double> cloudlet_rels,
                   double requirement) {
    common::require_open_unit(requirement, "reliability requirement");
    // Compare in log space: P(A) >= R  <=>  sum log(1 - r_f r_c) <= log(1 - R).
    double log_all_fail = 0.0;
    for (const double rc : cloudlet_rels) {
        log_all_fail += offsite_log_failure(vnf_rel, rc);
    }
    if (cloudlet_rels.empty()) return false;
    return log_all_fail <= common::log1m(requirement);
}

}  // namespace vnfr::vnf
