// Positive fixture for durability-vfs-routing: raw POSIX file syscalls
// anywhere in src/serve outside vfs.cpp bypass the Vfs fault-injection
// layer. The Vfs-routed equivalents below it must stay silent.
#include <string>

namespace vnfr::serve {

class Vfs {
  public:
    virtual int create_truncate(const std::string& path) = 0;
    virtual void write_all(int fd, const std::string& path,
                           const std::string& bytes) = 0;
    virtual void fdatasync(int fd, const std::string& path) = 0;
    virtual void close(int fd) = 0;
    virtual void unlink(const std::string& path) = 0;
};

int open_raw(const std::string& path) {
    return ::open(path.c_str(), 0);  // expect: durability-vfs-routing
}

void scribble_raw(int fd, const std::string& payload) {
    ::write(fd, payload.data(), payload.size());  // expect: durability-vfs-routing
    ::close(fd);  // expect: durability-vfs-routing
}

void drop_raw(const std::string& path) {
    ::unlink(path.c_str());  // expect: durability-vfs-routing
}

// The same operations routed through the Vfs layer are clean: faults,
// short writes, and power cuts injected by a FaultyVfs cover them.
void scribble_routed(Vfs& vfs, const std::string& path,
                     const std::string& payload) {
    const int fd = vfs.create_truncate(path);
    vfs.write_all(fd, path, payload);
    vfs.fdatasync(fd, path);
    vfs.close(fd);
    vfs.unlink(path);
}

}  // namespace vnfr::serve
