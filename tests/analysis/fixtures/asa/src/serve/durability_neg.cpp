// Negative fixture for the durability-order rules: the canonical safe
// sequences (temp fsync -> rename -> parent dir sync; append -> fdatasync)
// must produce zero findings.
#include <string>

namespace vnfr::serve {

bool write_all(int fd, const void* data, std::size_t len);
void fsync_parent_dir(const std::string& path);

void publish_safely(int fd, const std::string& tmp, const std::string& path) {
    ::fsync(fd);
    ::rename(tmp.c_str(), path.c_str());
    fsync_parent_dir(path);
}

bool append_safely(int fd, const std::string& payload) {
    if (!write_all(fd, payload.data(), payload.size())) return false;
    return ::fdatasync(fd) == 0;
}

}  // namespace vnfr::serve
