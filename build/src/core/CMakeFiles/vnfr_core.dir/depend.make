# Empty dependencies file for vnfr_core.
# This may be replaced when dependencies are built.
