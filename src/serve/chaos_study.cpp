#include "serve/chaos_study.hpp"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <set>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"
#include "core/verify.hpp"
#include "serve/admission_controller.hpp"
#include "serve/wire.hpp"

namespace vnfr::serve {

namespace {

/// Creates `path` if needed and removes any controller state files left
/// by a previous run, so every trial starts from a virgin directory.
void fresh_state_dir(const std::string& path) {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
        throw std::invalid_argument("chaos study: cannot create state dir " + path);
    }
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) {
        throw std::invalid_argument("chaos study: cannot open state dir " + path);
    }
    std::vector<std::string> doomed;
    while (const dirent* entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name.starts_with("wal-") || name.starts_with("snapshot.bin")) {
            doomed.push_back(path + "/" + name);
        }
    }
    ::closedir(dir);
    for (const std::string& file : doomed) ::unlink(file.c_str());
}

/// The single live WAL file in `path` (rotation unlinks old generations
/// eagerly), or empty when none exists yet.
std::string find_wal_file(const std::string& path) {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) return {};
    std::string found;
    while (const dirent* entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name.starts_with("wal-") && name.ends_with(".log")) {
            found = path + "/" + name;
            break;
        }
    }
    ::closedir(dir);
    return found;
}

std::uint64_t file_size(const std::string& path) {
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) return 0;
    return static_cast<std::uint64_t>(st.st_size);
}

/// Progress markers the driver updates as it goes, so a CrashInjected
/// unwind tells the recovery path exactly where the stream stood.
struct DriveProgress {
    std::size_t submitted{0};  ///< completed submit() calls
    bool in_drain{false};      ///< the crash interrupted a drain
};

/// Drives `requests[start..N)` into the controller with the study's
/// deterministic pattern: drain after every `drain_every`-th submit
/// (position-based, so interrupted and resumed runs fire the same
/// drains), plus a final drain. When `refire_drain` is set, an
/// interrupted drain is completed first — before any new submissions —
/// which restores the exact decision order of the uninterrupted run.
void drive(AdmissionController& controller,
           const std::vector<workload::Request>& requests, std::size_t start,
           bool refire_drain, std::size_t drain_every, DriveProgress& progress) {
    progress.submitted = start;
    if (refire_drain) {
        progress.in_drain = true;
        controller.drain();
        progress.in_drain = false;
    }
    for (std::size_t i = start; i < requests.size(); ++i) {
        progress.submitted = i;
        progress.in_drain = false;
        controller.submit(i, requests[i]);
        progress.submitted = i + 1;
        if ((i + 1) % drain_every == 0) {
            progress.in_drain = true;
            controller.drain();
            progress.in_drain = false;
        }
    }
    progress.in_drain = true;
    controller.drain();
    progress.in_drain = false;
}

/// Re-submits every not-yet-durable request below `through` (normal
/// submit path: covered seqs skip, shedding logic stays active), exactly
/// reconstructing the crash-time queue.
void rebuild_queue(AdmissionController& controller,
                   const std::vector<workload::Request>& requests,
                   std::size_t through) {
    for (std::uint64_t i = controller.resume_cursor(); i < through; ++i) {
        controller.submit(i, requests[static_cast<std::size_t>(i)]);
    }
}

/// Assembles a per-request decision vector from the controller's durable
/// admitted ledger (everything else default-rejected) for independent
/// verification.
std::vector<core::Decision> assemble_decisions(const core::Instance& instance,
                                               const AdmissionController& controller) {
    std::vector<core::Decision> decisions(instance.requests.size());
    for (const AdmittedRecord& rec : controller.admitted_records()) {
        if (rec.seq >= decisions.size()) continue;  // caught by admitted_match
        core::Decision& d = decisions[static_cast<std::size_t>(rec.seq)];
        d.admitted = true;
        d.placement.request = instance.requests[static_cast<std::size_t>(rec.seq)].id;
        for (const auto& [cloudlet, replicas] : rec.sites) {
            d.placement.sites.push_back(
                core::Site{CloudletId{cloudlet}, static_cast<int>(replicas)});
        }
    }
    return decisions;
}

bool same_admitted(const std::vector<AdmittedRecord>& a,
                   const std::vector<AdmittedRecord>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].seq != b[i].seq || a[i].request_id != b[i].request_id ||
            a[i].payment != b[i].payment || a[i].sites != b[i].sites) {
            return false;
        }
    }
    return true;
}

bool unique_admitted(const std::vector<AdmittedRecord>& records) {
    std::set<std::uint64_t> seqs;
    std::set<std::int64_t> ids;
    for (const AdmittedRecord& rec : records) {
        if (!seqs.insert(rec.seq).second) return false;
        if (!ids.insert(rec.request_id).second) return false;
    }
    return true;
}

bool metrics_equal(const ServeMetrics& a, const ServeMetrics& b) {
    return a.processed == b.processed && a.admitted == b.admitted &&
           a.rejected == b.rejected && a.shed == b.shed;
}

}  // namespace

ChaosStudyResult run_chaos_study(const core::Instance& instance,
                                 const ChaosStudyConfig& config) {
    const std::vector<workload::Request>& requests = instance.requests;
    if (requests.empty()) {
        throw std::invalid_argument("chaos study: instance has no requests");
    }
    if (config.work_dir.empty()) {
        throw std::invalid_argument("chaos study: work_dir not set");
    }
    if (::mkdir(config.work_dir.c_str(), 0755) != 0 && errno != EEXIST) {
        throw std::invalid_argument("chaos study: cannot create work_dir " +
                                    config.work_dir);
    }

    // Drain cadence overflows the queue on purpose: strictly more
    // submissions than queue slots between drains, so the overload guard
    // sheds every cycle and crashes land in shed paths too.
    common::Rng pattern_rng = common::stream_rng(config.master_seed, 1);
    const std::size_t drain_every =
        config.queue_capacity +
        static_cast<std::size_t>(pattern_rng.uniform_int(
            1, static_cast<std::int64_t>(config.queue_capacity)));

    ServeConfig serve;
    serve.checkpoint_every = config.checkpoint_every;
    serve.queue_capacity = config.queue_capacity;
    serve.group_commit = config.group_commit;
    serve.decide_shards = config.decide_shards;
    serve.decide_threads = config.decide_threads;

    ChaosStudyResult result;
    result.scheme = config.scheme;

    // Baseline: one uninterrupted run.
    const std::string baseline_dir = config.work_dir + "/baseline";
    fresh_state_dir(baseline_dir);
    std::vector<AdmittedRecord> baseline_admitted;
    {
        ServeConfig cfg = serve;
        cfg.data_dir = baseline_dir;
        AdmissionController baseline(instance, config.scheme, cfg);
        DriveProgress progress;
        drive(baseline, requests, 0, false, drain_every, progress);
        result.baseline_digest = baseline.state_digest();
        result.baseline_metrics = baseline.metrics();
        result.baseline_outcomes =
            baseline.metrics().processed + baseline.metrics().shed;
        baseline_admitted = baseline.admitted_records();
        result.baseline_capacity_ok =
            core::verify_schedule(instance, assemble_decisions(instance, baseline)).ok();
        baseline.checkpoint();
    }
    {
        // Reopening the checkpointed directory must reproduce the digest.
        ServeConfig cfg = serve;
        cfg.data_dir = baseline_dir;
        AdmissionController reloaded(instance, config.scheme, cfg);
        result.baseline_reload_ok =
            reloaded.state_digest() == result.baseline_digest;
    }

    // Kill trials. Exhaustive mode walks every crash point of the
    // baseline run; sampled mode draws kill_points of them.
    const std::string trial_dir = config.work_dir + "/trial";
    const std::size_t trial_count =
        config.exhaustive_kill_points
            ? static_cast<std::size_t>(
                  std::max<std::uint64_t>(1, result.baseline_outcomes) - 1)
            : config.kill_points;
    for (std::size_t trial = 0; trial < trial_count; ++trial) {
        common::Rng rng = common::stream_rng(config.master_seed, 1000 + trial);
        ChaosTrial outcome;
        // Crash after 1 .. outcomes-1 WAL appends: always mid-trace.
        outcome.kill_after_records =
            config.exhaustive_kill_points
                ? static_cast<std::uint64_t>(trial + 1)
                : static_cast<std::uint64_t>(rng.uniform_int(
                      1, std::max<std::int64_t>(
                             1, static_cast<std::int64_t>(result.baseline_outcomes) -
                                    1)));
        outcome.mid_batch = outcome.kill_after_records % config.group_commit != 0;

        fresh_state_dir(trial_dir);
        ServeConfig cfg = serve;
        cfg.data_dir = trial_dir;
        DriveProgress progress;
        {
            AdmissionController victim(instance, config.scheme, cfg);
            victim.crash_after_records(outcome.kill_after_records);
            try {
                drive(victim, requests, 0, false, drain_every, progress);
            } catch (const CrashInjected&) {
                outcome.crashed = true;
            }
        }
        outcome.submitted_at_crash = progress.submitted;

        // Optionally tear the WAL tail, as an interrupted append would.
        if (outcome.crashed && config.torn_tails && trial % 2 == 0) {
            const std::string wal = find_wal_file(trial_dir);
            const std::uint64_t size = wal.empty() ? 0 : file_size(wal);
            // Keep the 32-byte header plus a safety margin so the cut
            // lands inside the final record, not across older ones.
            if (size > 32 + 16) {
                outcome.truncated_bytes =
                    static_cast<std::uint64_t>(rng.uniform_int(1, 12));
                if (::truncate(wal.c_str(),
                               static_cast<off_t>(size - outcome.truncated_bytes)) == 0) {
                    outcome.torn_tail_applied = true;
                }
            }
        }

        if (outcome.crashed) {
            // Restart from disk, rebuild the queue, complete any
            // interrupted drain, then finish the trace.
            AdmissionController revived(instance, config.scheme, cfg);
            rebuild_queue(revived, requests, progress.submitted);
            DriveProgress rest;
            drive(revived, requests, progress.submitted, progress.in_drain,
                  drain_every, rest);

            outcome.digest_match = revived.state_digest() == result.baseline_digest;
            const ServeMetrics& m = revived.metrics();
            outcome.revenue_match =
                m.revenue == result.baseline_metrics.revenue &&
                m.shed_revenue == result.baseline_metrics.shed_revenue;
            outcome.metrics_match = metrics_equal(m, result.baseline_metrics);
            outcome.admitted_match =
                same_admitted(revived.admitted_records(), baseline_admitted);
            outcome.no_double_admits = unique_admitted(revived.admitted_records());
            outcome.capacity_ok =
                core::verify_schedule(instance, assemble_decisions(instance, revived))
                    .ok();
        }

        if (!outcome.ok()) ++result.failed_trials;
        result.trials.push_back(outcome);
    }
    return result;
}

}  // namespace vnfr::serve
