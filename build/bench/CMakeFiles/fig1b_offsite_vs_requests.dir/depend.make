# Empty dependencies file for fig1b_offsite_vs_requests.
# This may be replaced when dependencies are built.
