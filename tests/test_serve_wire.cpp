#include "serve/wire.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

namespace vnfr::serve {
namespace {

TEST(Crc32, MatchesKnownVectors) {
    // Standard IEEE 802.3 / zlib check value.
    EXPECT_EQ(crc32("123456789"), 0xCBF43926U);
    EXPECT_EQ(crc32(""), 0x00000000U);
}

TEST(Crc32, SeedChainsIncrementally) {
    const std::string a = "hello, ";
    const std::string b = "world";
    EXPECT_EQ(crc32(a + b), crc32(b, crc32(a)));
}

TEST(Wire, RoundTripsEveryFieldType) {
    WireWriter w;
    w.put_u8(0xAB);
    w.put_u32(0xDEADBEEFU);
    w.put_u64(0x0123456789ABCDEFULL);
    w.put_i64(-42);
    w.put_f64(3.141592653589793);
    w.put_f64(-0.0);
    w.put_bytes("tail");

    WireReader r(w.bytes(), "buffer");
    EXPECT_EQ(r.get_u8("u8"), 0xAB);
    EXPECT_EQ(r.get_u32("u32"), 0xDEADBEEFU);
    EXPECT_EQ(r.get_u64("u64"), 0x0123456789ABCDEFULL);
    EXPECT_EQ(r.get_i64("i64"), -42);
    EXPECT_EQ(r.get_f64("f64"), 3.141592653589793);
    const double neg_zero = r.get_f64("negative zero");
    EXPECT_EQ(neg_zero, 0.0);
    EXPECT_TRUE(std::signbit(neg_zero));  // bit-exact, not value-equal
    EXPECT_EQ(r.get_bytes(4, "tail"), "tail");
    EXPECT_NO_THROW(r.require_end("buffer"));
}

TEST(Wire, LittleEndianLayoutIsFixed) {
    WireWriter w;
    w.put_u32(0x01020304U);
    const std::string& b = w.bytes();
    ASSERT_EQ(b.size(), 4u);
    EXPECT_EQ(static_cast<unsigned char>(b[0]), 0x04);
    EXPECT_EQ(static_cast<unsigned char>(b[3]), 0x01);
}

TEST(Wire, TruncatedReadThrowsWithOffsetAndFieldName) {
    WireWriter w;
    w.put_u64(7);
    WireReader r(w.bytes(), "short-buffer");
    r.get_u32("first half");
    try {
        r.get_u64("the wide field");
        FAIL() << "expected CorruptStateError";
    } catch (const CorruptStateError& e) {
        EXPECT_EQ(e.file(), "short-buffer");
        EXPECT_EQ(e.offset(), 4u);
        EXPECT_NE(std::string(e.what()).find("the wide field"), std::string::npos);
    }
}

TEST(Wire, TrailingBytesFailRequireEnd) {
    WireWriter w;
    w.put_u32(1);
    w.put_u32(2);
    WireReader r(w.bytes(), "buffer");
    r.get_u32("only field");
    EXPECT_THROW(r.require_end("payload"), CorruptStateError);
}

TEST(Wire, BaseOffsetShiftsReportedPositions) {
    WireReader r("", "wal", 100);
    try {
        r.get_u8("kind");
        FAIL() << "expected CorruptStateError";
    } catch (const CorruptStateError& e) {
        EXPECT_EQ(e.offset(), 100u);
    }
}

TEST(WireFiles, AtomicWriteThenReadRoundTrips) {
    const std::string path = ::testing::TempDir() + "wire_roundtrip.bin";
    const std::string payload("\x00\x01\xFFzzz", 6);
    atomic_write_file(path, payload);
    EXPECT_EQ(read_file(path), payload);
    // Replacement is atomic: rewriting leaves only the new content.
    atomic_write_file(path, "second");
    EXPECT_EQ(read_file(path), "second");
    EXPECT_FALSE(file_exists(path + ".tmp"));
    std::remove(path.c_str());
}

TEST(WireFiles, MissingFileThrowsCorruptStateError) {
    EXPECT_THROW(read_file(::testing::TempDir() + "does_not_exist.bin"),
                 CorruptStateError);
}

}  // namespace
}  // namespace vnfr::serve
