// Exact solvers by exhaustive enumeration — ground truth for tiny
// instances, used to validate branch-and-bound and the competitive ratio.
//
// Guard rails: the search space is ((m+1) per request on-site,
// (2^m) per request off-site); both throw std::invalid_argument when the
// instance exceeds the supported size rather than silently running forever.
#pragma once

#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace vnfr::core {

struct ExhaustiveResult {
    double revenue{0};
    /// One decision per request (arrival order); an optimal assignment.
    std::vector<Decision> decisions;
};

/// Optimal offline revenue under the on-site scheme. Requires
/// requests <= 12 and cloudlets <= 6.
ExhaustiveResult exhaustive_onsite(const Instance& instance);

/// Optimal offline revenue under the off-site scheme. Requires
/// requests <= 10 and cloudlets <= 6.
ExhaustiveResult exhaustive_offsite(const Instance& instance);

}  // namespace vnfr::core
