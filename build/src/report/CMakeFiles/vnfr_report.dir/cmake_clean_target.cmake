file(REMOVE_RECURSE
  "libvnfr_report.a"
)
