// Quickstart: build a tiny MEC network by hand, submit a handful of
// requests to Algorithm 1 (on-site primal-dual), and print what happened.
//
//   $ ./quickstart
#include <iostream>

#include "core/instance.hpp"
#include "core/onsite_primal_dual.hpp"
#include "core/schedule.hpp"
#include "net/generators.hpp"
#include "report/table.hpp"

using namespace vnfr;

int main() {
    // 1. An access-point network: a 6-node ring, cloudlets on three APs.
    core::Instance instance{edge::MecNetwork(net::ring(6)), vnf::Catalog{}, 10, {}};
    instance.network.add_cloudlet(NodeId{0}, /*capacity=*/20.0, /*reliability=*/0.99);
    instance.network.add_cloudlet(NodeId{2}, 15.0, 0.97);
    instance.network.add_cloudlet(NodeId{4}, 10.0, 0.95);

    // 2. A small VNF catalog: c(f) compute units and r(f) reliability.
    const VnfTypeId firewall = instance.catalog.add("firewall", 1.0, 0.95);
    const VnfTypeId balancer = instance.catalog.add("load-balancer", 2.0, 0.90);

    // 3. Requests (f_i, R_i, a_i, d_i, pay_i) arriving online.
    const auto submit = [&](std::int64_t id, VnfTypeId vnf, double requirement,
                            TimeSlot arrival, TimeSlot duration, double payment) {
        workload::Request r;
        r.id = RequestId{id};
        r.vnf = vnf;
        r.requirement = requirement;
        r.arrival = arrival;
        r.duration = duration;
        r.payment = payment;
        instance.requests.push_back(r);
    };
    submit(0, firewall, 0.95, 0, 3, 6.0);
    submit(1, balancer, 0.90, 1, 4, 9.0);
    submit(2, firewall, 0.98, 2, 2, 4.0);
    submit(3, balancer, 0.96, 2, 5, 12.0);
    submit(4, firewall, 0.90, 4, 3, 5.0);
    instance.validate();

    // 4. Run the paper's Algorithm 1 and inspect each decision.
    core::OnsitePrimalDual scheduler(instance);
    report::Table table({"request", "vnf", "R", "pay", "decision", "cloudlet", "replicas"});
    double revenue = 0.0;
    for (const workload::Request& r : instance.requests) {
        const core::Decision d = scheduler.decide(r);
        if (d.admitted) revenue += r.payment;
        table.add_row({std::to_string(r.id.value), instance.catalog.get(r.vnf).name,
                       report::format_double(r.requirement, 2),
                       report::format_double(r.payment, 1),
                       d.admitted ? "admitted" : "rejected",
                       d.admitted ? std::to_string(d.placement.sites[0].cloudlet.value) : "-",
                       d.admitted ? std::to_string(d.placement.sites[0].replicas) : "-"});
    }
    std::cout << "On-site primal-dual scheduling (Algorithm 1)\n\n"
              << table.to_text() << "\ntotal revenue: " << revenue << "\n";
    return 0;
}
