#include "serve/wal.hpp"

#include <cmath>
#include <utility>

namespace vnfr::serve {

namespace {

constexpr std::string_view kMagic = "VNFRWAL1";
constexpr std::uint64_t kHeaderSize = kWalHeaderSize;
/// No legal record comes close to this; a larger length prefix is either
/// a torn tail (if it runs past EOF) or corruption.
constexpr std::uint32_t kMaxRecordBytes = 1U << 20;

std::string encode_payload(const WalRecord& record) {
    WireWriter w;
    w.put_u8(static_cast<std::uint8_t>(record.kind));
    w.put_u64(record.seq);
    w.put_i64(record.request.id.value);
    w.put_i64(record.request.vnf.value);
    w.put_f64(record.request.requirement);
    w.put_i64(record.request.arrival);
    w.put_i64(record.request.duration);
    w.put_f64(record.request.payment);
    w.put_i64(record.request.source.value);
    if (record.kind == WalRecordKind::kDecision) {
        w.put_u8(record.admitted ? 1 : 0);
        w.put_u8(static_cast<std::uint8_t>(record.reject_reason));
        w.put_u32(static_cast<std::uint32_t>(record.sites.size()));
        for (const core::Site& site : record.sites) {
            w.put_i64(site.cloudlet.value);
            w.put_i64(site.replicas);
        }
    }
    return w.bytes();
}

WalRecord decode_payload(std::string_view payload, const std::string& label,
                         std::uint64_t base_offset) {
    WireReader r(payload, label, base_offset);
    WalRecord rec;
    const std::uint8_t kind = r.get_u8("record kind");
    if (kind != static_cast<std::uint8_t>(WalRecordKind::kDecision) &&
        kind != static_cast<std::uint8_t>(WalRecordKind::kShed)) {
        throw CorruptStateError(label, r.offset() - 1,
                                "unknown WAL record kind " + std::to_string(kind));
    }
    rec.kind = static_cast<WalRecordKind>(kind);
    rec.seq = r.get_u64("record seq");
    rec.request.id = RequestId{r.get_i64("request id")};
    rec.request.vnf = VnfTypeId{r.get_i64("request vnf")};
    rec.request.requirement = r.get_f64("request requirement");
    rec.request.arrival = static_cast<TimeSlot>(r.get_i64("request arrival"));
    rec.request.duration = static_cast<TimeSlot>(r.get_i64("request duration"));
    rec.request.payment = r.get_f64("request payment");
    rec.request.source = NodeId{r.get_i64("request source")};
    if (!std::isfinite(rec.request.requirement) || !std::isfinite(rec.request.payment)) {
        throw CorruptStateError(label, r.offset(), "non-finite request field");
    }
    if (rec.kind == WalRecordKind::kDecision) {
        const std::uint8_t admitted = r.get_u8("admitted flag");
        if (admitted > 1) {
            throw CorruptStateError(label, r.offset() - 1,
                                    "admitted flag is neither 0 nor 1");
        }
        rec.admitted = admitted == 1;
        const std::uint8_t reason = r.get_u8("reject reason");
        if (reason > static_cast<std::uint8_t>(core::RejectReason::kNoCapacity)) {
            throw CorruptStateError(label, r.offset() - 1,
                                    "reject reason byte out of range");
        }
        rec.reject_reason = static_cast<core::RejectReason>(reason);
        const std::uint32_t site_count = r.get_u32("site count");
        if (site_count > kMaxRecordBytes / 16) {
            throw CorruptStateError(label, r.offset() - 4, "site count out of range");
        }
        rec.sites.resize(site_count);
        for (core::Site& site : rec.sites) {
            site.cloudlet = CloudletId{r.get_i64("site cloudlet")};
            site.replicas = static_cast<int>(r.get_i64("site replicas"));
        }
    }
    r.require_end("WAL record payload");
    return rec;
}

std::string encode_header(std::uint64_t wal_seq, std::uint64_t config_digest) {
    WireWriter w;
    w.put_bytes(kMagic);
    w.put_u32(kWalVersion);
    w.put_u64(wal_seq);
    w.put_u64(config_digest);
    WireWriter out;
    out.put_bytes(w.bytes());
    out.put_u32(crc32(w.bytes()));
    return out.bytes();
}

}  // namespace

std::string encode_wal_record(const WalRecord& record) {
    const std::string payload = encode_payload(record);
    WireWriter w;
    w.put_u32(static_cast<std::uint32_t>(payload.size()));
    w.put_bytes(payload);
    w.put_u32(crc32(payload));
    return w.bytes();
}

std::vector<WalRecord> decode_wal_record_stream(std::string_view bytes,
                                                const std::string& label,
                                                std::uint64_t base_offset) {
    std::vector<WalRecord> records;
    std::uint64_t pos = 0;
    while (pos < bytes.size()) {
        const std::uint64_t record_start = base_offset + pos;
        const std::uint64_t remaining = bytes.size() - pos;
        if (remaining < 4) {
            throw CorruptStateError(label, record_start,
                                    "truncated record length prefix");
        }
        WireReader frame(bytes.substr(pos), label, record_start);
        const std::uint32_t len = frame.get_u32("record length");
        if (len > kMaxRecordBytes) {
            throw CorruptStateError(label, record_start,
                                    "record length " + std::to_string(len) +
                                        " exceeds the sanity bound");
        }
        if (4ULL + len + 4ULL > remaining) {
            throw CorruptStateError(label, record_start,
                                    "record body runs past end of buffer");
        }
        const std::string_view payload = bytes.substr(pos + 4, len);
        const std::uint64_t crc_offset = record_start + 4 + len;
        WireReader crc_reader(bytes.substr(pos + 4 + len, 4), label, crc_offset);
        if (crc_reader.get_u32("record CRC") != crc32(payload)) {
            throw CorruptStateError(label, crc_offset, "record CRC mismatch");
        }
        WalRecord rec = decode_payload(payload, label, record_start + 4);
        rec.file_offset = record_start;
        records.push_back(std::move(rec));
        pos += 4ULL + len + 4ULL;
    }
    return records;
}

WalContents read_wal(Vfs& vfs, const std::string& path, WalReadMode mode) {
    return parse_wal_bytes(read_file(vfs, path), path, mode);
}

WalContents read_wal(const std::string& path, WalReadMode mode) {
    return read_wal(posix_vfs(), path, mode);
}

WalContents parse_wal_bytes(std::string_view bytes, const std::string& path,
                            WalReadMode mode) {
    // The header is created atomically (temp + rename), so a short or
    // mangled header is corruption in every mode — no crash produces it.
    if (bytes.size() < kHeaderSize) {
        throw CorruptStateError(path, bytes.size(),
                                "WAL shorter than its 32-byte header");
    }
    WireReader h(bytes, path);
    if (h.get_bytes(kMagic.size(), "WAL magic") != kMagic) {
        throw CorruptStateError(path, 0, "bad magic (not a VNFR WAL)");
    }
    const std::uint32_t version = h.get_u32("WAL version");
    if (version != kWalVersion) {
        throw CorruptStateError(path, kMagic.size(),
                                "unsupported WAL version " + std::to_string(version) +
                                    " (expected " + std::to_string(kWalVersion) + ")");
    }
    WalContents out;
    out.wal_seq = h.get_u64("WAL generation");
    out.config_digest = h.get_u64("WAL config digest");
    const std::uint32_t header_crc = h.get_u32("WAL header CRC");
    if (header_crc != crc32(std::string_view(bytes).substr(0, kHeaderSize - 4))) {
        throw CorruptStateError(path, kHeaderSize - 4, "WAL header CRC mismatch");
    }

    std::uint64_t pos = kHeaderSize;
    while (pos < bytes.size()) {
        const std::uint64_t record_start = pos;
        const std::uint64_t remaining = bytes.size() - pos;
        // A record that cannot even state its length, or whose stated
        // extent runs past EOF, by definition touches the end of file:
        // in recover mode that is the torn tail of a crashed append.
        const auto torn = [&](const std::string& what) -> bool {
            if (mode == WalReadMode::kRecover) {
                out.bytes_discarded = bytes.size() - record_start;
                // A crash tears at most the final append: one fragment.
                out.records_discarded = 1;
                return true;
            }
            throw CorruptStateError(path, record_start, what);
        };
        if (remaining < 4) {
            if (torn("truncated record length prefix")) break;
        }
        WireReader frame(std::string_view(bytes).substr(pos), path, pos);
        const std::uint32_t len = frame.get_u32("record length");
        if (len > kMaxRecordBytes) {
            // Implausible length: if it also runs past EOF it is a torn
            // tail; a plausible in-file extent with a garbage length
            // cannot happen (lengths are CRC-checked via the payload).
            if (4ULL + len + 4ULL > remaining) {
                if (torn("record length runs past end of file")) break;
            }
            throw CorruptStateError(path, record_start,
                                    "record length " + std::to_string(len) +
                                        " exceeds the sanity bound");
        }
        if (4ULL + len + 4ULL > remaining) {
            if (torn("record body runs past end of file")) break;
        }
        const std::string_view payload = std::string_view(bytes).substr(pos + 4, len);
        const std::uint64_t crc_offset = pos + 4 + len;
        WireReader crc_reader(std::string_view(bytes).substr(crc_offset), path, crc_offset);
        const std::uint32_t stored_crc = crc_reader.get_u32("record CRC");
        if (stored_crc != crc32(payload)) {
            // CRC failure on the final record is a torn overwrite; before
            // the tail it is corruption in every mode.
            const bool is_last = crc_offset + 4 == bytes.size();
            if (is_last) {
                if (torn("final record CRC mismatch (torn tail)")) break;
            }
            throw CorruptStateError(path, crc_offset, "record CRC mismatch");
        }
        WalRecord rec = decode_payload(payload, path, pos + 4);
        rec.file_offset = record_start;
        out.records.push_back(std::move(rec));
        pos = crc_offset + 4;
    }
    out.valid_size = bytes.size() - out.bytes_discarded;
    return out;
}

WalWriter WalWriter::create(Vfs& vfs, std::string path, std::uint64_t wal_seq,
                            std::uint64_t config_digest,
                            const StorageRetryPolicy& retry) {
    const std::string header = encode_header(wal_seq, config_digest);
    std::uint64_t retries = 0;
    with_storage_retries(
        vfs, retry, [&] { atomic_write_file(vfs, path, header); }, &retries);
    VfsFdGuard guard(vfs, vfs.open_append(path));
    WalWriter writer(vfs, retry, std::move(path), guard.release(), kHeaderSize);
    writer.transient_retries_ = retries;
    return writer;
}

WalWriter WalWriter::create(std::string path, std::uint64_t wal_seq,
                            std::uint64_t config_digest) {
    return create(posix_vfs(), std::move(path), wal_seq, config_digest);
}

WalWriter WalWriter::append_to(Vfs& vfs, std::string path,
                               std::uint64_t valid_size,
                               const StorageRetryPolicy& retry) {
    VfsFdGuard guard(vfs, vfs.open_append(path));
    // Drop any torn tail before new appends so the file stays a clean
    // sequence of intact records (O_APPEND then lands writes at the new
    // end of file).
    vfs.ftruncate(guard.get(), path, valid_size);
    return WalWriter(vfs, retry, std::move(path), guard.release(), valid_size);
}

WalWriter WalWriter::append_to(std::string path, std::uint64_t valid_size) {
    return append_to(posix_vfs(), std::move(path), valid_size);
}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : vfs_(other.vfs_),
      retry_(other.retry_),
      path_(std::move(other.path_)),
      fd_(other.fd_),
      size_(other.size_),
      synced_size_(other.synced_size_),
      dirty_(other.dirty_),
      transient_retries_(other.transient_retries_),
      staged_(std::move(other.staged_)),
      staged_records_(other.staged_records_) {
    other.fd_ = -1;
    other.staged_records_ = 0;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
    if (this != &other) {
        close();
        vfs_ = other.vfs_;
        retry_ = other.retry_;
        path_ = std::move(other.path_);
        fd_ = other.fd_;
        size_ = other.size_;
        synced_size_ = other.synced_size_;
        dirty_ = other.dirty_;
        transient_retries_ = other.transient_retries_;
        staged_ = std::move(other.staged_);
        staged_records_ = other.staged_records_;
        other.fd_ = -1;
        other.staged_records_ = 0;
    }
    return *this;
}

WalWriter::~WalWriter() { close(); }

void WalWriter::close() {
    if (fd_ >= 0) {
        vfs_->close(fd_);
        fd_ = -1;
    }
}

std::uint64_t WalWriter::append(const WalRecord& record) {
    if (fd_ < 0) throw std::logic_error("WalWriter::append on a closed writer");
    if (staged_records_ != 0) {
        throw std::logic_error("WalWriter::append with records staged — commit() first");
    }
    const std::uint64_t at = stage(record);
    try {
        commit();
    } catch (...) {
        abandon_staged();
        throw;
    }
    return at;
}

std::uint64_t WalWriter::stage(const WalRecord& record) {
    if (fd_ < 0) throw std::logic_error("WalWriter::stage on a closed writer");
    const std::uint64_t at = size_;
    const std::string framed = encode_wal_record(record);
    staged_.append(framed);
    size_ += framed.size();
    ++staged_records_;
    return at;
}

void WalWriter::commit() {
    if (staged_records_ == 0) return;
    if (fd_ < 0) throw std::logic_error("WalWriter::commit on a closed writer");
    std::uint64_t backoff = retry_.initial_backoff_micros;
    for (int attempt = 1;; ++attempt) {
        try {
            if (dirty_) {
                // A previous failed attempt may have written part of the
                // group: rewind to the durable prefix so the rewrite
                // cannot duplicate records.
                vfs_->ftruncate(fd_, path_, synced_size_);
                dirty_ = false;
            }
            dirty_ = true;
            vfs_->write_all(fd_, path_, staged_);
            vfs_->fdatasync(fd_, path_);
            dirty_ = false;
            break;
        } catch (const VfsError& err) {
            if (!err.transient() || attempt >= retry_.max_attempts) throw;
            ++transient_retries_;
            vfs_->sleep_for_micros(backoff);
            const double next = static_cast<double>(backoff) * retry_.multiplier;
            backoff = next > static_cast<double>(retry_.max_backoff_micros)
                          ? retry_.max_backoff_micros
                          : static_cast<std::uint64_t>(next);
        }
    }
    synced_size_ = size_;
    staged_.clear();
    staged_records_ = 0;
}

void WalWriter::abandon_staged() {
    size_ -= staged_.size();
    staged_.clear();
    staged_records_ = 0;
    // A failed commit may have externalized part of the abandoned group.
    dirty_ = true;
}

void WalWriter::repair() {
    if (fd_ < 0) throw std::logic_error("WalWriter::repair on a closed writer");
    if (staged_records_ != 0) {
        throw std::logic_error("WalWriter::repair with records staged — commit() first");
    }
    if (!dirty_) return;
    vfs_->ftruncate(fd_, path_, synced_size_);
    vfs_->fdatasync(fd_, path_);
    size_ = synced_size_;
    dirty_ = false;
}

}  // namespace vnfr::serve
