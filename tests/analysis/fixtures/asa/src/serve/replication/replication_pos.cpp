// Positive fixture for the vnfr-asa replication-ordering rules. Lives
// under src/serve/replication/ in the fixture tree — the scope where the
// primary/standby protocol proofs assume apply-before-ack,
// ack-before-release, and checkpoint-before-promote.
#include <cstdint>

namespace vnfr::serve::replication {

struct Ack { std::uint64_t generation{0}; };

void send_ack(const Ack& ack);
Ack latest_ack();
bool apply_replicated(int rec);
void release_wals_below(std::uint64_t generation);
void mark_promoted();
void checkpoint();

// Acknowledging before anything was applied: the primary would release
// WAL generations the standby never durably absorbed.
void ack_without_apply(const Ack& ack) {
    send_ack(ack);  // expect: replication-ack-apply
}

// Apply that comes *after* the ack: ordering matters, not presence.
void ack_before_apply(const Ack& ack, int rec) {
    send_ack(ack);  // expect: replication-ack-apply
    apply_replicated(rec);
}

// Retiring WAL generations without consulting the standby's watermark.
void release_blindly(std::uint64_t generation) {
    release_wals_below(generation);  // expect: replication-release-ack
}

// Promoting a standby without first persisting its caught-up state: a
// crash right after promotion would lose the disk-tail replay.
void promote_without_durability() {
    mark_promoted();  // expect: replication-promote-checkpoint
    checkpoint();
}

}  // namespace vnfr::serve::replication
