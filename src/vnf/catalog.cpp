#include "vnf/catalog.hpp"

#include <stdexcept>

#include "common/math.hpp"

namespace vnfr::vnf {

VnfTypeId Catalog::add(std::string name, double compute_units, double reliability) {
    if (compute_units <= 0.0)
        throw std::invalid_argument("Catalog::add: non-positive compute demand");
    common::require_open_unit(reliability, "VNF reliability");
    const VnfTypeId id{static_cast<std::int64_t>(types_.size())};
    types_.push_back(VnfType{id, std::move(name), compute_units, reliability});
    return id;
}

const VnfType& Catalog::get(VnfTypeId id) const {
    if (!id.valid() || id.index() >= types_.size())
        throw std::out_of_range("Catalog::get: unknown VnfTypeId");
    return types_[id.index()];
}

Catalog Catalog::paper_default(common::Rng& rng) {
    static const char* kNames[] = {
        "firewall",       "load-balancer", "ids",            "nat",
        "proxy",          "dpi",           "wan-optimizer",  "vpn-gateway",
        "traffic-shaper", "cache",
    };
    Catalog cat;
    for (const char* name : kNames) {
        const double compute = static_cast<double>(rng.uniform_int(1, 3));
        const double reliability = rng.uniform(0.9, 0.9999);
        cat.add(name, compute, reliability);
    }
    return cat;
}

}  // namespace vnfr::vnf
