// Positive fixture for the vnfr-asa determinism rules. Lives under a
// src/sim/ path inside the fixture tree so the production scoping logic
// (determinism rules apply to src/sim + src/core) is what puts it in
// scope — the analyzer is pointed at the fixture root, not the repo.
//
// '// expect: <rule>[, <rule>]' markers name the rule ids that must be
// reported on that exact line; tests/analysis/run_fixture_tests.py and
// 'vnfr_asa.py --self-check' fail on any mismatch in either direction.
// Fixtures are never compiled.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <random>
#include <unordered_map>

namespace vnfr::sim {

std::uint64_t digest_accumulate(std::uint64_t digest, double value);

std::uint64_t nondeterministic_replication() {
    std::uint64_t digest = 1469598103934665603ULL;

    int draw = std::rand();                                // expect: nondet-rand
    std::random_device entropy;                            // expect: nondet-rand
    auto stamp = std::chrono::steady_clock::now();         // expect: nondet-clock
    auto wall = std::chrono::system_clock::now();          // expect: nondet-clock

    const int* ptr = &draw;
    std::size_t h = std::hash<const int*>{}(ptr);          // expect: nondet-addr-hash
    auto cookie = reinterpret_cast<std::uintptr_t>(ptr);   // expect: nondet-addr-hash

    std::unordered_map<int, double> per_server_load;
    per_server_load[draw] = static_cast<double>(h + cookie);
    for (const auto& entry : per_server_load) {            // expect: nondet-unordered-iter
        digest = digest_accumulate(digest, entry.second);
    }
    (void)stamp;
    (void)wall;
    return digest;
}

}  // namespace vnfr::sim
