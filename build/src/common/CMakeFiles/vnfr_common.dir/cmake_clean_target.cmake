file(REMOVE_RECURSE
  "libvnfr_common.a"
)
