file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/test_core_bounds.cpp.o"
  "CMakeFiles/test_core.dir/test_core_bounds.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_competitive.cpp.o"
  "CMakeFiles/test_core.dir/test_core_competitive.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_greedy.cpp.o"
  "CMakeFiles/test_core.dir/test_core_greedy.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_hybrid.cpp.o"
  "CMakeFiles/test_core.dir/test_core_hybrid.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_offline.cpp.o"
  "CMakeFiles/test_core.dir/test_core_offline.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_offsite.cpp.o"
  "CMakeFiles/test_core.dir/test_core_offsite.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_onsite.cpp.o"
  "CMakeFiles/test_core.dir/test_core_onsite.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_rejection.cpp.o"
  "CMakeFiles/test_core.dir/test_core_rejection.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_verify.cpp.o"
  "CMakeFiles/test_core.dir/test_core_verify.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
