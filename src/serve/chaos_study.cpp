#include "serve/chaos_study.hpp"

#include <unistd.h>

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"
#include "core/verify.hpp"
#include "serve/admission_controller.hpp"
#include "serve/chaos_support.hpp"
#include "serve/wal_scrubber.hpp"
#include "serve/wire.hpp"

namespace vnfr::serve {

namespace {

// The drive pattern and equivalence predicates are shared with the
// failover study so both harnesses judge runs with identical code.
using chaos::assemble_decisions;
using chaos::DriveProgress;
using chaos::drive;
using chaos::file_size;
using chaos::fresh_state_dir;
using chaos::metrics_equal;
using chaos::newest_wal_file;
using chaos::rebuild_queue;
using chaos::same_admitted;
using chaos::unique_admitted;

}  // namespace

ChaosStudyResult run_chaos_study(const core::Instance& instance,
                                 const ChaosStudyConfig& config) {
    const std::vector<workload::Request>& requests = instance.requests;
    if (requests.empty()) {
        throw std::invalid_argument("chaos study: instance has no requests");
    }
    if (config.work_dir.empty()) {
        throw std::invalid_argument("chaos study: work_dir not set");
    }
    if (::mkdir(config.work_dir.c_str(), 0755) != 0 && errno != EEXIST) {
        throw std::invalid_argument("chaos study: cannot create work_dir " +
                                    config.work_dir);
    }

    // Drain cadence overflows the queue on purpose: strictly more
    // submissions than queue slots between drains, so the overload guard
    // sheds every cycle and crashes land in shed paths too.
    common::Rng pattern_rng = common::stream_rng(config.master_seed, 1);
    const std::size_t drain_every =
        config.queue_capacity +
        static_cast<std::size_t>(pattern_rng.uniform_int(
            1, static_cast<std::int64_t>(config.queue_capacity)));

    ServeConfig serve;
    serve.checkpoint_every = config.checkpoint_every;
    serve.queue_capacity = config.queue_capacity;
    serve.group_commit = config.group_commit;
    serve.decide_shards = config.decide_shards;
    serve.decide_threads = config.decide_threads;

    ChaosStudyResult result;
    result.scheme = config.scheme;

    // Baseline: one uninterrupted run.
    const std::string baseline_dir = config.work_dir + "/baseline";
    fresh_state_dir(baseline_dir);
    std::vector<AdmittedRecord> baseline_admitted;
    {
        ServeConfig cfg = serve;
        cfg.data_dir = baseline_dir;
        AdmissionController baseline(instance, config.scheme, cfg);
        DriveProgress progress;
        drive(baseline, requests, 0, false, drain_every, progress);
        result.baseline_digest = baseline.state_digest();
        result.baseline_metrics = baseline.metrics();
        result.baseline_outcomes =
            baseline.metrics().processed + baseline.metrics().shed;
        baseline_admitted = baseline.admitted_records();
        result.baseline_capacity_ok =
            core::verify_schedule(instance, assemble_decisions(instance, baseline)).ok();
        baseline.checkpoint();
    }
    {
        // Reopening the checkpointed directory must reproduce the digest.
        ServeConfig cfg = serve;
        cfg.data_dir = baseline_dir;
        AdmissionController reloaded(instance, config.scheme, cfg);
        result.baseline_reload_ok =
            reloaded.state_digest() == result.baseline_digest;
    }
    result.baseline_scrub_clean = scrub_data_dir(baseline_dir).clean();

    // Kill trials. Exhaustive mode walks every crash point of the
    // baseline run; sampled mode draws kill_points of them.
    const std::string trial_dir = config.work_dir + "/trial";
    const std::size_t trial_count =
        config.exhaustive_kill_points
            ? static_cast<std::size_t>(
                  std::max<std::uint64_t>(1, result.baseline_outcomes) - 1)
            : config.kill_points;
    for (std::size_t trial = 0; trial < trial_count; ++trial) {
        common::Rng rng = common::stream_rng(config.master_seed, 1000 + trial);
        ChaosTrial outcome;
        // Crash after 1 .. outcomes-1 WAL appends: always mid-trace.
        outcome.kill_after_records =
            config.exhaustive_kill_points
                ? static_cast<std::uint64_t>(trial + 1)
                : static_cast<std::uint64_t>(rng.uniform_int(
                      1, std::max<std::int64_t>(
                             1, static_cast<std::int64_t>(result.baseline_outcomes) -
                                    1)));
        outcome.mid_batch = outcome.kill_after_records % config.group_commit != 0;

        fresh_state_dir(trial_dir);
        ServeConfig cfg = serve;
        cfg.data_dir = trial_dir;
        DriveProgress progress;
        {
            AdmissionController victim(instance, config.scheme, cfg);
            victim.crash_after_records(outcome.kill_after_records);
            try {
                drive(victim, requests, 0, false, drain_every, progress);
            } catch (const CrashInjected&) {
                outcome.crashed = true;
            }
        }
        outcome.submitted_at_crash = progress.submitted;

        // Optionally tear the WAL tail, as an interrupted append would.
        if (outcome.crashed && config.torn_tails && trial % 2 == 0) {
            const std::string wal = newest_wal_file(trial_dir);
            const std::uint64_t size = wal.empty() ? 0 : file_size(wal);
            // Keep the 32-byte header plus a safety margin so the cut
            // lands inside the final record, not across older ones.
            if (size > 32 + 16) {
                outcome.truncated_bytes =
                    static_cast<std::uint64_t>(rng.uniform_int(1, 12));
                if (::truncate(wal.c_str(),
                               static_cast<off_t>(size - outcome.truncated_bytes)) == 0) {
                    outcome.torn_tail_applied = true;
                }
            }
        }

        if (outcome.crashed) {
            // Restart from disk, rebuild the queue, complete any
            // interrupted drain, then finish the trace.
            AdmissionController revived(instance, config.scheme, cfg);
            outcome.recovered_torn_tail_bytes =
                revived.recovery_stats().torn_tail_bytes;
            outcome.recovered_torn_tail_records =
                revived.recovery_stats().torn_tail_records;
            rebuild_queue(revived, requests, progress.submitted);
            DriveProgress rest;
            drive(revived, requests, progress.submitted, progress.in_drain,
                  drain_every, rest);

            outcome.digest_match = revived.state_digest() == result.baseline_digest;
            const ServeMetrics& m = revived.metrics();
            outcome.revenue_match =
                m.revenue == result.baseline_metrics.revenue &&
                m.shed_revenue == result.baseline_metrics.shed_revenue;
            outcome.metrics_match = metrics_equal(m, result.baseline_metrics);
            outcome.admitted_match =
                same_admitted(revived.admitted_records(), baseline_admitted);
            outcome.no_double_admits = unique_admitted(revived.admitted_records());
            outcome.capacity_ok =
                core::verify_schedule(instance, assemble_decisions(instance, revived))
                    .ok();
            outcome.scrub_clean = scrub_data_dir(trial_dir).clean();
        }

        if (!outcome.ok()) ++result.failed_trials;
        result.trials.push_back(outcome);
    }
    return result;
}

}  // namespace vnfr::serve
