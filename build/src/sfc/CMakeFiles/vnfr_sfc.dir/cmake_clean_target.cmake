file(REMOVE_RECURSE
  "libvnfr_sfc.a"
)
