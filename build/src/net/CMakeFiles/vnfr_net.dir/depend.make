# Empty dependencies file for vnfr_net.
# This may be replaced when dependencies are built.
