#include "workload/trace_io.hpp"

#include <charconv>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace vnfr::workload {

namespace {

constexpr const char* kHeader = "id,vnf,requirement,arrival,duration,payment,source";

std::vector<std::string> split_csv(const std::string& line) {
    std::vector<std::string> fields;
    std::string current;
    for (const char c : line) {
        if (c == ',') {
            fields.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    fields.push_back(current);
    return fields;
}

double parse_double(const std::string& s, const char* what) {
    try {
        std::size_t pos = 0;
        const double v = std::stod(s, &pos);
        if (pos != s.size()) throw std::invalid_argument("trailing characters");
        return v;
    } catch (const std::exception&) {
        throw std::runtime_error(std::string("read_trace: bad ") + what + " field '" + s + "'");
    }
}

std::int64_t parse_int(const std::string& s, const char* what) {
    std::int64_t v = 0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc{} || ptr != s.data() + s.size()) {
        throw std::runtime_error(std::string("read_trace: bad ") + what + " field '" + s + "'");
    }
    return v;
}

}  // namespace

void write_trace(std::ostream& os, const std::vector<Request>& requests) {
    os << kHeader << '\n';
    os << std::setprecision(17);
    for (const Request& r : requests) {
        os << r.id.value << ',' << r.vnf.value << ',' << r.requirement << ',' << r.arrival
           << ',' << r.duration << ',' << r.payment << ',' << r.source.value << '\n';
    }
    if (!os) throw std::runtime_error("write_trace: stream failure");
}

void write_trace_file(const std::string& path, const std::vector<Request>& requests) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("write_trace_file: cannot open " + path);
    write_trace(out, requests);
}

std::vector<Request> read_trace(std::istream& is) {
    std::string line;
    if (!std::getline(is, line) || line != kHeader) {
        throw std::runtime_error("read_trace: missing or wrong header");
    }
    std::vector<Request> out;
    while (std::getline(is, line)) {
        if (line.empty()) continue;
        const auto fields = split_csv(line);
        if (fields.size() != 7) {
            throw std::runtime_error("read_trace: expected 7 fields, got " +
                                     std::to_string(fields.size()));
        }
        Request r;
        r.id = RequestId{parse_int(fields[0], "id")};
        r.vnf = VnfTypeId{parse_int(fields[1], "vnf")};
        r.requirement = parse_double(fields[2], "requirement");
        r.arrival = static_cast<TimeSlot>(parse_int(fields[3], "arrival"));
        r.duration = static_cast<TimeSlot>(parse_int(fields[4], "duration"));
        r.payment = parse_double(fields[5], "payment");
        r.source = NodeId{parse_int(fields[6], "source")};
        if (r.requirement <= 0.0 || r.requirement >= 1.0)
            throw std::runtime_error("read_trace: requirement outside (0,1)");
        if (r.duration < 1) throw std::runtime_error("read_trace: non-positive duration");
        if (r.payment <= 0.0) throw std::runtime_error("read_trace: non-positive payment");
        out.push_back(r);
    }
    return out;
}

std::vector<Request> read_trace_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("read_trace_file: cannot open " + path);
    return read_trace(in);
}

}  // namespace vnfr::workload
