// Independent verification of a finished schedule against the paper's
// constraints — used by tests, the CLI and downstream users to check any
// scheduler's output without trusting its internal ledger.
#pragma once

#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace vnfr::core {

/// One constraint violation found by verify_schedule.
struct ScheduleViolation {
    enum class Kind {
        kDecisionCountMismatch,   ///< decisions.size() != requests.size()
        kEmptyPlacement,          ///< admitted without any site
        kUnknownCloudlet,         ///< site references a cloudlet not in the network
        kNonPositiveReplicas,     ///< site with replicas < 1
        kDuplicateSite,           ///< same cloudlet listed twice in one placement
        kCapacityExceeded,        ///< per-slot cloudlet usage above capacity (4)/(9)
        kReliabilityNotMet,       ///< availability below R_i (2)/(10)
    };
    Kind kind;
    std::string detail;
};

struct VerificationReport {
    std::vector<ScheduleViolation> violations;
    double revenue{0};       ///< recomputed from admitted payments
    std::size_t admitted{0};
    double max_load_factor{0};

    [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Replays `decisions` against a fresh ledger and the reliability model.
/// `capacity_tolerance` allows the pure Algorithm 1 variant's bounded
/// overshoot to be verified against a relaxed capacity (pass the Lemma 8
/// factor xi); 1.0 checks the paper's hard constraints (4)/(9).
VerificationReport verify_schedule(const Instance& instance,
                                   const std::vector<Decision>& decisions,
                                   double capacity_tolerance = 1.0);

}  // namespace vnfr::core
