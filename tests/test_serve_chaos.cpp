// End-to-end chaos tests: kill the controller at randomized WAL points,
// restart from disk, and require the recovered run to be indistinguishable
// from an uninterrupted one. A compact version of the
// ablation_controller_chaos bench gate, sized for the unit suite.
#include <gtest/gtest.h>

#include <filesystem>

#include "helpers.hpp"
#include "serve/chaos_study.hpp"

namespace vnfr::serve {
namespace {

using vnfr::testing::make_request;
using vnfr::testing::small_instance;

core::Instance chaos_instance(std::size_t n) {
    std::vector<workload::Request> reqs;
    reqs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const TimeSlot arrival = static_cast<TimeSlot>((i * 7) / n);
        const TimeSlot duration = 1 + static_cast<TimeSlot>(i % 3);
        const double payment = 1.0 + static_cast<double>((i * 11) % 17);
        // Mix both catalog types so replica counts vary.
        reqs.push_back(make_request(static_cast<std::int64_t>(i),
                                    static_cast<std::int64_t>(i % 2),
                                    0.90 + 0.004 * static_cast<double>(i % 10), arrival,
                                    duration, payment));
    }
    // Tight capacity so admission, rejection and shedding all occur.
    return small_instance({0.98, 0.97, 0.99}, 10.0, 10, std::move(reqs));
}

std::string fresh_work_dir(const std::string& name) {
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

ChaosStudyConfig study_config(core::Scheme scheme, const std::string& dir) {
    ChaosStudyConfig cfg;
    cfg.scheme = scheme;
    cfg.master_seed = 0xC0FFEEull;
    cfg.kill_points = 6;
    cfg.checkpoint_every = 8;
    cfg.queue_capacity = 4;
    cfg.torn_tails = true;
    cfg.work_dir = dir;
    return cfg;
}

void expect_study_ok(const ChaosStudyResult& result) {
    EXPECT_TRUE(result.baseline_reload_ok);
    EXPECT_TRUE(result.baseline_capacity_ok);
    EXPECT_EQ(result.failed_trials, 0u);
    ASSERT_EQ(result.trials.size(), 6u);
    std::size_t torn = 0;
    for (const ChaosTrial& trial : result.trials) {
        EXPECT_TRUE(trial.crashed) << "kill point " << trial.kill_after_records;
        EXPECT_TRUE(trial.digest_match) << "kill point " << trial.kill_after_records;
        EXPECT_TRUE(trial.revenue_match) << "kill point " << trial.kill_after_records;
        EXPECT_TRUE(trial.no_double_admits);
        EXPECT_TRUE(trial.capacity_ok);
        if (trial.torn_tail_applied) ++torn;
    }
    EXPECT_GT(torn, 0u);  // the torn-tail path was actually exercised
    EXPECT_TRUE(result.ok());
}

TEST(ServeChaos, OnsiteSurvivesRandomizedKillsBitIdentically) {
    const core::Instance inst = chaos_instance(48);
    const ChaosStudyResult result = run_chaos_study(
        inst, study_config(core::Scheme::kOnsite, fresh_work_dir("chaos_onsite")));
    EXPECT_EQ(result.baseline_outcomes, 48u);  // every request decided or shed
    EXPECT_GT(result.baseline_metrics.shed, 0u);
    expect_study_ok(result);
}

TEST(ServeChaos, OffsiteSurvivesRandomizedKillsBitIdentically) {
    const core::Instance inst = chaos_instance(48);
    const ChaosStudyResult result = run_chaos_study(
        inst, study_config(core::Scheme::kOffsite, fresh_work_dir("chaos_offsite")));
    EXPECT_EQ(result.baseline_outcomes, 48u);
    expect_study_ok(result);
}

TEST(ServeChaos, StudyIsDeterministicForAFixedSeed) {
    const core::Instance inst = chaos_instance(32);
    ChaosStudyConfig cfg = study_config(core::Scheme::kOnsite,
                                        fresh_work_dir("chaos_repeat_a"));
    cfg.kill_points = 3;
    const ChaosStudyResult a = run_chaos_study(inst, cfg);
    cfg.work_dir = fresh_work_dir("chaos_repeat_b");
    const ChaosStudyResult b = run_chaos_study(inst, cfg);
    EXPECT_EQ(a.baseline_digest, b.baseline_digest);
    ASSERT_EQ(a.trials.size(), b.trials.size());
    for (std::size_t i = 0; i < a.trials.size(); ++i) {
        EXPECT_EQ(a.trials[i].kill_after_records, b.trials[i].kill_after_records);
        EXPECT_EQ(a.trials[i].submitted_at_crash, b.trials[i].submitted_at_crash);
        EXPECT_EQ(a.trials[i].torn_tail_applied, b.trials[i].torn_tail_applied);
    }
}

TEST(ServeChaos, RejectsAnEmptyTrace) {
    const core::Instance inst = small_instance({0.98}, 10.0, 4, {});
    EXPECT_THROW(run_chaos_study(
                     inst, study_config(core::Scheme::kOnsite,
                                        fresh_work_dir("chaos_empty"))),
                 std::invalid_argument);
}

}  // namespace
}  // namespace vnfr::serve
