// Replica mathematics from Section III of the paper.
//
// On-site scheme (all instances in one cloudlet c_j):
//   P(A_i) = r(c_j) * (1 - (1 - r(f_i))^N)                      (Eq. 2)
//   N_ij   = ceil( log_{1-r(f_i)} (1 - R_i / r(c_j)) )          (Eq. 3)
//   feasible only when r(c_j) > R_i.
//
// Off-site scheme (one instance per selected cloudlet):
//   P(A_i) = 1 - prod_j (1 - r(f_i) * r(c_j))                   (Eq. 10)
//
// All products are accumulated in log space (log1p/expm1) so that
// reliabilities like 0.9999 do not lose precision.
#pragma once

#include <optional>
#include <span>

namespace vnfr::vnf {

/// Availability of a request served by `replicas` instances of a VNF with
/// instance reliability `vnf_rel` all placed in one cloudlet with
/// reliability `cloudlet_rel` (paper Eq. 2). Zero replicas yields 0.
double onsite_availability(double cloudlet_rel, double vnf_rel, int replicas);

/// Feasibility margin for Eq. 3: when r(c_j) - R_i falls inside this
/// margin the log argument 1 - R_i/r(c_j) collapses toward 0 and the
/// closed-form replica count diverges (ln of a subnormal over ln(1-r_f)).
/// Such cloudlets are treated as unable to meet the requirement — the
/// replica counts they would need are physically meaningless anyway.
inline constexpr double kOnsiteFeasibilityMargin = 1e-9;

/// Ceiling on a meaningful Eq. 3 replica count. A requirement that the
/// closed form can only meet with more instances than this is rejected
/// (std::nullopt) instead of returning an astronomically large N_ij that
/// no cloudlet could host and that would overflow downstream demand
/// arithmetic.
inline constexpr int kMaxOnsiteReplicas = 1'000'000;

/// Minimum number of primary+backup instances required in a cloudlet of
/// reliability `cloudlet_rel` so that onsite_availability >= `requirement`
/// (paper Eq. 3). Returns std::nullopt when the cloudlet cannot meet the
/// requirement at any replica count (cloudlet_rel <= requirement +
/// kOnsiteFeasibilityMargin) or only with more than kMaxOnsiteReplicas
/// instances.
///
/// The returned count is exact: availability(N) >= requirement and
/// availability(N-1) < requirement, guarded against floating point rounding
/// of the closed-form logarithm.
std::optional<int> min_onsite_replicas(double cloudlet_rel, double vnf_rel,
                                       double requirement);

/// Availability of one instance of a VNF with reliability `vnf_rel` placed
/// in each cloudlet of `cloudlet_rels` (paper Eq. 10). Empty set yields 0.
double offsite_availability(double vnf_rel, std::span<const double> cloudlet_rels);

/// True when the off-site placement meets `requirement`.
bool offsite_meets(double vnf_rel, std::span<const double> cloudlet_rels,
                   double requirement);

/// Log-space helper: log(1 - vnf_rel * cloudlet_rel), the per-cloudlet
/// contribution to the off-site failure product. Always negative.
double offsite_log_failure(double vnf_rel, double cloudlet_rel);

}  // namespace vnfr::vnf
