// A Virtualized Network Function type f_i: its computing demand c(f_i) in
// computing units and its instance reliability r(f_i) in (0, 1).
#pragma once

#include <string>

#include "common/types.hpp"

namespace vnfr::vnf {

struct VnfType {
    VnfTypeId id;
    std::string name;     ///< e.g. "firewall", "load-balancer"
    double compute_units; ///< c(f_i) > 0, the paper uses 1..3 units
    double reliability;   ///< r(f_i) in (0, 1)
};

}  // namespace vnfr::vnf
