// Multi-seed experiment harness: runs a set of algorithms (and optionally
// the offline benchmark) over independently generated instances and
// aggregates revenue/acceptance with 95% confidence intervals — the shape
// of every figure in the paper's Section VI.
//
// Replications fan out over a common::ThreadPool. Determinism contract:
// replication k draws every random number from the counter-based stream
// stream_seed(base_seed, k) and the per-replication results are reduced in
// ascending k order on the calling thread, so the aggregated outcome is
// bit-identical for any thread count (1, 2, 8, ...). The test suite pins
// this down; see tests/test_parallel_determinism.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/instance.hpp"
#include "core/offline.hpp"
#include "core/schedule.hpp"

namespace vnfr::sim {

enum class Algorithm {
    kOnsitePrimalDual,      ///< Algorithm 1, capacity-checked (paper's evaluated variant)
    kOnsitePrimalDualPure,  ///< Algorithm 1 verbatim (bounded violations)
    kOnsiteGreedy,
    kOffsitePrimalDual,     ///< Algorithm 2
    kOffsiteGreedy,
    kHybridPrimalDual,      ///< extension: per-request on-site/off-site choice
};

std::string_view algorithm_name(Algorithm algorithm);

/// Fresh scheduler bound to `instance` (which must outlive it).
std::unique_ptr<core::OnlineScheduler> make_scheduler(Algorithm algorithm,
                                                      const core::Instance& instance);

struct ExperimentConfig {
    std::vector<Algorithm> algorithms;
    std::size_t seeds{5};
    /// Master seed; replication k runs on stream_seed(base_seed, k).
    std::uint64_t base_seed{42};
    /// Worker threads for the replication fan-out (the calling thread
    /// included); 0 consults VNFR_THREADS / hardware concurrency via
    /// ThreadPool::default_thread_count(). Results are identical for every
    /// value by the determinism contract above.
    std::size_t threads{0};
    /// Also solve the offline benchmark per seed (LP bound, optional ILP).
    bool compute_offline{false};
    core::Scheme offline_scheme{core::Scheme::kOnsite};
    core::OfflineConfig offline{};
};

struct AlgorithmOutcome {
    Algorithm algorithm;
    common::RunningStats revenue;
    common::RunningStats acceptance;
    common::RunningStats max_load_factor;
    /// Admitted-request count per replication.
    common::RunningStats admitted;
    /// Mean analytic availability of admitted placements per replication.
    common::RunningStats availability;
};

struct ExperimentOutcome {
    std::vector<AlgorithmOutcome> per_algorithm;
    common::RunningStats offline_bound;  ///< LP relaxation optimum per seed
    common::RunningStats offline_ilp;    ///< best integral revenue per seed
};

/// Order-sensitive 64-bit digest over every aggregated statistic of the
/// outcome (counts and raw IEEE-754 bit patterns of sum/mean/variance/
/// min/max for each metric). Two outcomes collide only if they are
/// bit-identical in every aggregate — the thread-count-invariance tests
/// and the bench artifact compare exactly this.
std::uint64_t metrics_checksum(const ExperimentOutcome& outcome);

/// Builds one instance per replication via `factory` (seeded from
/// stream_seed(base_seed, k)), replays it through every configured
/// algorithm, and aggregates. `factory` is invoked concurrently from the
/// pool's threads and must be thread-safe (a pure function of its Rng —
/// any capture must be read-only).
using InstanceFactory = std::function<core::Instance(common::Rng&)>;

ExperimentOutcome run_experiment(const InstanceFactory& factory,
                                 const ExperimentConfig& config);

}  // namespace vnfr::sim
