#include "sim/recovery_study.hpp"

#include "common/contracts.hpp"
#include "common/digest.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace vnfr::sim {

namespace {

void accumulate(RecoveryReport& total, const RecoveryReport& rep) {
    total.request_slots += rep.request_slots;
    total.served_slots += rep.served_slots;
    total.disrupted_slots += rep.disrupted_slots;
    total.cloudlet_crashes += rep.cloudlet_crashes;
    total.instance_crashes += rep.instance_crashes;
    total.transient_blips += rep.transient_blips;
    total.rack_failures += rep.rack_failures;
    total.instances_lost += rep.instances_lost;
    total.local_respawns += rep.local_respawns;
    total.remote_migrations += rep.remote_migrations;
    total.readmissions += rep.readmissions;
    total.failed_recoveries += rep.failed_recoveries;
    total.local_failovers += rep.local_failovers;
    total.remote_failovers += rep.remote_failovers;
    total.outages += rep.outages;
    total.recovered_outages += rep.recovered_outages;
    total.recovery_slots_total += rep.recovery_slots_total;
    total.shed_requests += rep.shed_requests;
    total.shed_revenue += rep.shed_revenue;
    total.sla_requests += rep.sla_requests;
    total.sla_violations += rep.sla_violations;
    total.promised_availability_sum += rep.promised_availability_sum;
    total.delivered_availability_sum += rep.delivered_availability_sum;
    total.capacity_violations += rep.capacity_violations;
}

}  // namespace

std::uint64_t recovery_metrics_checksum(const RecoveryStudyOutcome& outcome) {
    common::Fnv1a digest;
    const RecoveryReport& t = outcome.total;
    digest.mix(static_cast<std::uint64_t>(t.request_slots));
    digest.mix(static_cast<std::uint64_t>(t.served_slots));
    digest.mix(static_cast<std::uint64_t>(t.disrupted_slots));
    digest.mix(static_cast<std::uint64_t>(t.cloudlet_crashes));
    digest.mix(static_cast<std::uint64_t>(t.instance_crashes));
    digest.mix(static_cast<std::uint64_t>(t.transient_blips));
    digest.mix(static_cast<std::uint64_t>(t.rack_failures));
    digest.mix(static_cast<std::uint64_t>(t.instances_lost));
    digest.mix(static_cast<std::uint64_t>(t.local_respawns));
    digest.mix(static_cast<std::uint64_t>(t.remote_migrations));
    digest.mix(static_cast<std::uint64_t>(t.readmissions));
    digest.mix(static_cast<std::uint64_t>(t.failed_recoveries));
    digest.mix(static_cast<std::uint64_t>(t.local_failovers));
    digest.mix(static_cast<std::uint64_t>(t.remote_failovers));
    digest.mix(static_cast<std::uint64_t>(t.outages));
    digest.mix(static_cast<std::uint64_t>(t.recovered_outages));
    digest.mix(static_cast<std::uint64_t>(t.recovery_slots_total));
    digest.mix(static_cast<std::uint64_t>(t.shed_requests));
    digest.mix(t.shed_revenue);
    digest.mix(static_cast<std::uint64_t>(t.sla_requests));
    digest.mix(static_cast<std::uint64_t>(t.sla_violations));
    digest.mix(t.promised_availability_sum);
    digest.mix(t.delivered_availability_sum);
    digest.mix(static_cast<std::uint64_t>(t.capacity_violations));
    digest.mix(outcome.availability);
    digest.mix(outcome.delivered);
    digest.mix(outcome.time_to_recover);
    digest.mix(outcome.shed_revenue);
    return digest.value();
}

RecoveryStudyOutcome run_recovery_replications(
    const core::Instance& instance, const std::vector<core::Decision>& decisions,
    const RecoveryStudyConfig& config) {
    VNFR_CHECK(config.replications >= 1,
               "run_recovery_replications: replications must be >= 1");

    const FaultScheduleFactory injector =
        config.injector
            ? config.injector
            : FaultScheduleFactory(
                  [&config](const core::Instance& inst,
                            const std::vector<core::Decision>& decs, std::uint64_t seed) {
                      return generate_fault_schedule(inst, decs, config.faults, seed);
                  });

    // Fan the replications out; each writes only its own pre-sized slot.
    std::vector<RecoveryReport> reps(config.replications);
    {
        common::ProgressMeter progress(config.replications, config.progress);
        common::ThreadPool pool(config.threads);
        pool.parallel_for_blocked(
            0, config.replications, 1, [&](std::size_t lo, std::size_t hi) {
                for (std::size_t k = lo; k < hi; ++k) {
                    const FaultSchedule schedule = injector(
                        instance, decisions, common::stream_seed(config.master_seed, k));
                    reps[k] = run_recovery_study(instance, decisions, schedule,
                                                 config.recovery);
                    progress.tick();
                }
            });
    }

    // Ordered reduction in ascending k — the other half of the determinism
    // contract.
    RecoveryStudyOutcome outcome;
    for (std::size_t k = 0; k < config.replications; ++k) {
        const RecoveryReport& rep = reps[k];
        accumulate(outcome.total, rep);
        outcome.availability.add(rep.availability());
        outcome.delivered.add(rep.mean_delivered());
        outcome.time_to_recover.add(rep.mean_time_to_recover());
        outcome.shed_revenue.add(rep.shed_revenue);
    }
    return outcome;
}

}  // namespace vnfr::sim
