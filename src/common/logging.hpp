// Minimal leveled logger writing to stderr.
//
// The simulator and benches are mostly silent; logging exists for debugging
// and for the examples to narrate what they do. No global mutable state
// beyond one atomic level; safe for concurrent writers at line granularity.
#pragma once

#include <sstream>
#include <string>

namespace vnfr::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one formatted line ("[LEVEL] message") if enabled.
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
    if (log_level() <= LogLevel::kDebug)
        log_line(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
    if (log_level() <= LogLevel::kInfo)
        log_line(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
    if (log_level() <= LogLevel::kWarn)
        log_line(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
    if (log_level() <= LogLevel::kError)
        log_line(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace vnfr::common
