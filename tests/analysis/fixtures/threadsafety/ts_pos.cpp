// Positive fixture for the Clang thread-safety layer: every function
// below violates an annotation on the primitives in common/mutex.hpp and
// MUST be rejected by 'clang++ -Wthread-safety -Werror=thread-safety'.
// tests/analysis/run_threadsafety_fixtures.py compiles this file and
// fails if it is accepted. Never compiled by the normal build.
#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace vnfr::fixture {

class Counter {
public:
    // Writes a guarded field without holding its capability.
    void unguarded_bump() { ++value_; }

    // Declares the requirement but the caller below ignores it.
    void bump_locked() VNFR_REQUIRES(mutex_) { ++value_; }

    void caller_without_lock() { bump_locked(); }

    // Acquires but never releases: scoped-capability misuse.
    void leaks_lock() {
        mutex_.lock();
    }

private:
    common::Mutex mutex_;
    int value_ VNFR_GUARDED_BY(mutex_) = 0;
};

}  // namespace vnfr::fixture
