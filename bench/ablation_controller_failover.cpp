// Controller failover ablation: primary-kill/standby-promote equivalence
// of the replicated admission controller.
//
// For each scheme ({onsite, offsite}) and each standby-lag setting
// (replication beats every 1 / every 7 drive steps), one
// paper-environment trace is first served uninterrupted (the baseline),
// then re-served dozens of times with the primary killed at a randomized
// point — after a random WAL append, or inside checkpoint rotation —
// with torn WAL tails on half the crashed trials and an adversarial
// replication link (drop/truncate/duplicate/reorder) on odd trials. The
// standby is promoted from the dead primary's on-disk WAL tail and
// finishes the trace. Emits BENCH_controller_failover.json and exits
// nonzero when any acceptance gate fails:
//
//   * every trial's promoted standby reaches a bit-identical state
//     digest, equal revenue bits, the same admitted set (no
//     double-admits), and zero capacity violations;
//   * the no-kill control promotes a fully shipped standby to the
//     baseline digest with zero records recovered from disk, and the
//     shipper released at least one acked generation (bounded retention);
//   * across the full matrix at least one trial recovered real standby
//     lag from the disk tail, and the faulty-link trials actually
//     dropped frames (the adversarial paths ran).
//
// Usage: ablation_controller_failover [output.json]
//   VNFR_BENCH_QUICK=1  shrink the trace and trial counts for smoke/CI
#include <sys/stat.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "report/json.hpp"
#include "serve/replication/failover_chaos.hpp"

using namespace vnfr;

namespace {

const char* scheme_name(core::Scheme scheme) {
    return scheme == core::Scheme::kOnsite ? "onsite" : "offsite";
}

struct CellResult {
    core::Scheme scheme{core::Scheme::kOnsite};
    std::size_t ship_every{1};
    serve::replication::FailoverChaosResult study;
    double seconds{0};
};

}  // namespace

int main(int argc, char** argv) {
    const std::string out_path =
        argc > 1 ? argv[1] : std::string("BENCH_controller_failover.json");

    const std::size_t requests = bench::quick_mode() ? 100 : 240;
    // >= 25 randomized kill points per scheme across the lag settings
    // (the acceptance criterion), plus the rotation-stage kills mixed in.
    const std::size_t kills_per_cell = bench::quick_mode() ? 5 : 13;
    const std::size_t lag_settings[] = {1, 7};
    const std::uint64_t master = bench::scenario_seed("controller_failover", requests);

    std::cout << "== Controller failover ablation: kill/promote equivalence ==\n";
    bench::print_thread_note();

    common::Rng rng = common::stream_rng(master, 0);
    const core::Instance instance =
        bench::make_factory(bench::paper_environment(requests))(rng);
    std::cout << "instance: " << instance.requests.size() << " requests, "
              << instance.network.cloudlet_count() << " cloudlets, horizon "
              << instance.horizon << "; " << kills_per_cell
              << " kill points per (scheme, lag) cell\n\n";

    const std::string work_root = "controller_failover_state";
    ::mkdir(work_root.c_str(), 0755);  // studies manage their own subdirs

    std::vector<CellResult> results;
    bool all_ok = true;
    std::uint64_t total_trials = 0;
    std::uint64_t total_failed = 0;
    std::uint64_t total_disk_applied = 0;
    std::uint64_t total_dropped = 0;
    for (const core::Scheme scheme : {core::Scheme::kOnsite, core::Scheme::kOffsite}) {
        for (const std::size_t lag : lag_settings) {
            serve::replication::FailoverChaosConfig cfg;
            cfg.scheme = scheme;
            // Same kill-point stream for every lag cell of a scheme: the
            // matrix varies replication cadence, not the crashes.
            cfg.master_seed =
                common::stream_seed(master, 1 + static_cast<std::uint64_t>(scheme));
            cfg.kill_points = kills_per_cell;
            cfg.checkpoint_every = 16;
            cfg.queue_capacity = 8;
            cfg.group_commit = 4;
            cfg.ship_every = lag;
            cfg.transport_faults = true;
            cfg.torn_tails = true;
            cfg.work_dir = work_root + "/" + scheme_name(scheme) + "_lag" +
                           std::to_string(lag);

            CellResult r;
            r.scheme = scheme;
            r.ship_every = lag;
            const auto start = std::chrono::steady_clock::now();
            r.study = serve::replication::run_failover_chaos_study(instance, cfg);
            r.seconds =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                    .count();

            std::size_t torn = 0;
            std::size_t rotation_kills = 0;
            for (const serve::replication::FailoverTrial& t : r.study.trials) {
                if (t.torn_tail_applied) ++torn;
                if (t.checkpoint_crash_stage != 0) ++rotation_kills;
            }
            total_trials += r.study.trials.size();
            total_failed += r.study.failed_trials;
            total_disk_applied += r.study.total_disk_records_applied;
            total_dropped += r.study.transport_totals.frames_dropped;
            std::cout << scheme_name(scheme) << " [lag " << lag
                      << "]: baseline revenue " << r.study.baseline_metrics.revenue
                      << ", digest " << report::hex_u64(r.study.baseline_digest)
                      << "\n  " << r.study.trials.size() << " kill trials ("
                      << rotation_kills << " mid-rotation, " << torn
                      << " torn tails), " << r.study.failed_trials
                      << " failed; sync-promote "
                      << (r.study.sync_promote_ok ? "ok" : "FAILED")
                      << ", release " << (r.study.sync_release_ok ? "ok" : "FAILED")
                      << "; disk catch-up " << r.study.total_disk_records_applied
                      << " records, " << r.study.transport_totals.frames_dropped
                      << " frames dropped, "
                      << report::format_double(r.seconds, 2) << "s\n";
            if (!r.study.ok()) {
                std::cout << "  GATE FAILED for " << scheme_name(scheme)
                          << " [lag " << lag << "]\n";
                all_ok = false;
            }
            results.push_back(std::move(r));
        }
    }
    if (total_disk_applied == 0) {
        std::cout << "GATE FAILED: no trial recovered standby lag from disk\n";
        all_ok = false;
    }
    if (total_dropped == 0) {
        std::cout << "GATE FAILED: the adversarial link never dropped a frame\n";
        all_ok = false;
    }
    std::cout << '\n';

    const double recovery_rate =
        total_trials == 0
            ? 0.0
            : static_cast<double>(total_trials - total_failed) /
                  static_cast<double>(total_trials);

    report::JsonValue doc = report::JsonValue::object();
    doc.set("bench", "controller_failover");
    doc.set("quick", bench::quick_mode());
    doc.set("requests", static_cast<std::uint64_t>(requests));
    doc.set("master_seed", report::hex_u64(master));
    doc.set("failover_recovery_rate", recovery_rate);
    doc.set("total_trials", total_trials);
    doc.set("total_failed", total_failed);
    doc.set("total_disk_records_applied", total_disk_applied);
    report::JsonValue cells = report::JsonValue::array();
    for (const CellResult& r : results) {
        report::JsonValue row = report::JsonValue::object();
        row.set("scheme", scheme_name(r.scheme));
        row.set("ship_every", static_cast<std::uint64_t>(r.ship_every));
        row.set("baseline_digest", report::hex_u64(r.study.baseline_digest));
        row.set("baseline_revenue", r.study.baseline_metrics.revenue);
        row.set("baseline_admitted", r.study.baseline_metrics.admitted);
        row.set("baseline_shed", r.study.baseline_metrics.shed);
        row.set("baseline_capacity_ok", r.study.baseline_capacity_ok);
        row.set("sync_promote_ok", r.study.sync_promote_ok);
        row.set("sync_release_ok", r.study.sync_release_ok);
        row.set("kill_trials", static_cast<std::uint64_t>(r.study.trials.size()));
        row.set("failed_trials", static_cast<std::uint64_t>(r.study.failed_trials));
        row.set("resync_rewinds", r.study.total_resync_rewinds);
        row.set("frames_sent", r.study.transport_totals.frames_sent);
        row.set("frames_dropped", r.study.transport_totals.frames_dropped);
        row.set("frames_truncated", r.study.transport_totals.frames_truncated);
        row.set("frames_duplicated", r.study.transport_totals.frames_duplicated);
        row.set("frames_reordered", r.study.transport_totals.frames_reordered);
        row.set("seconds", r.seconds);
        report::JsonValue trials = report::JsonValue::array();
        for (const serve::replication::FailoverTrial& t : r.study.trials) {
            report::JsonValue tr = report::JsonValue::object();
            tr.set("kill_after_records", t.kill_after_records);
            tr.set("checkpoint_crash_stage",
                   static_cast<std::int64_t>(t.checkpoint_crash_stage));
            tr.set("faulty_transport", t.faulty_transport);
            tr.set("torn_tail", t.torn_tail_applied);
            tr.set("truncated_bytes", t.truncated_bytes);
            // Operator-visible torn-tail signal surfaced from recovery.
            tr.set("promote_torn_tail_bytes", t.promote_torn_tail_bytes);
            tr.set("standby_applied_at_kill", t.standby_applied_at_kill);
            tr.set("disk_records_applied", t.disk_records_applied);
            tr.set("disk_records_skipped", t.disk_records_skipped);
            tr.set("digest_match", t.digest_match);
            tr.set("revenue_match", t.revenue_match);
            tr.set("admitted_match", t.admitted_match);
            tr.set("no_double_admits", t.no_double_admits);
            tr.set("capacity_ok", t.capacity_ok);
            trials.push(std::move(tr));
        }
        row.set("trials", std::move(trials));
        cells.push(std::move(row));
    }
    doc.set("cells", std::move(cells));
    doc.set("all_gates_passed", all_ok);

    std::ofstream out(out_path);
    out << doc.dump() << '\n';
    std::cout << "wrote " << out_path << '\n';

    if (!all_ok) {
        std::cerr << "FAIL: failover promotion gates failed\n";
        return 1;
    }
    std::cout << "PASS: every promoted standby recovered bit-identically with "
                 "zero lost decisions and zero double-charges\n";
    return 0;
}
