# Empty dependencies file for vnfr_vnf.
# This may be replaced when dependencies are built.
