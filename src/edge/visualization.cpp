#include "edge/visualization.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace vnfr::edge {

namespace {

void write_nodes(std::ostream& os, const net::Graph& graph, const MecNetwork* network,
                 const DotOptions& options) {
    for (std::size_t v = 0; v < graph.node_count(); ++v) {
        const NodeId id{static_cast<std::int64_t>(v)};
        const std::string& name = graph.node_name(id);
        os << "  n" << v << " [label=\"" << (name.empty() ? std::to_string(v) : name);
        bool hosts_cloudlet = false;
        if (network) {
            const CloudletId c = network->cloudlet_at(id);
            if (c.valid()) {
                hosts_cloudlet = true;
                const Cloudlet& cloudlet = network->cloudlet(c);
                os << "\\ncap=" << cloudlet.capacity << " r=" << cloudlet.reliability;
            }
        }
        os << '"';
        if (hosts_cloudlet) os << ", shape=doublecircle";
        if (options.use_coordinates) {
            os << ", pos=\"" << graph.node_x(id) * options.coordinate_scale << ','
               << graph.node_y(id) * options.coordinate_scale << "!\"";
        }
        os << "];\n";
    }
}

void write_edges(std::ostream& os, const net::Graph& graph) {
    for (const net::Edge& e : graph.edges()) {
        os << "  n" << e.a.value << " -- n" << e.b.value << " [label=\"" << std::fixed
           << std::setprecision(1) << e.weight << "\"];\n";
    }
}

}  // namespace

void write_dot(std::ostream& os, const net::Graph& graph, const DotOptions& options) {
    os << "graph " << options.graph_name << " {\n  layout=neato;\n";
    write_nodes(os, graph, nullptr, options);
    write_edges(os, graph);
    os << "}\n";
}

void write_dot(std::ostream& os, const MecNetwork& network, const DotOptions& options) {
    os << "graph " << options.graph_name << " {\n  layout=neato;\n";
    write_nodes(os, network.graph(), &network, options);
    write_edges(os, network.graph());
    os << "}\n";
}

std::string to_dot(const net::Graph& graph, const DotOptions& options) {
    std::ostringstream os;
    write_dot(os, graph, options);
    return os.str();
}

std::string to_dot(const MecNetwork& network, const DotOptions& options) {
    std::ostringstream os;
    write_dot(os, network, options);
    return os.str();
}

}  // namespace vnfr::edge
