// Monte-Carlo harness for the recovery orchestrator: fans fault-schedule
// replications out over a common::ThreadPool under the same determinism
// contract as run_experiment — replication k generates its schedule from
// stream_seed(master_seed, k) and the per-replication reports are reduced
// in ascending k order, so the aggregate (and its checksum) is
// bit-identical for any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/progress.hpp"
#include "common/stats.hpp"
#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "sim/recovery_engine.hpp"
#include "sim/recovery_faults.hpp"

namespace vnfr::sim {

/// Pluggable injector hook: replication k receives stream_seed(master_seed,
/// k) and must return the fault schedule to replay. The default generates
/// via generate_fault_schedule with the study's FaultInjectorConfig; tests
/// substitute handcrafted schedules. Invoked concurrently — must be a pure
/// function of its arguments.
using FaultScheduleFactory = std::function<FaultSchedule(
    const core::Instance&, const std::vector<core::Decision>&, std::uint64_t seed)>;

struct RecoveryStudyConfig {
    FaultInjectorConfig faults{};
    RecoveryConfig recovery{};
    std::size_t replications{5};
    /// Master seed; replication k replays stream_seed(master_seed, k).
    std::uint64_t master_seed{0x4ec0};
    /// Worker threads for the fan-out; 0 consults VNFR_THREADS / hardware
    /// concurrency. Results are identical for every value.
    std::size_t threads{0};
    /// Optional injector override; empty uses generate_fault_schedule.
    FaultScheduleFactory injector{};
    /// Optional progress callback, invoked serially (under a lock in a
    /// common::ProgressMeter) as each replication finishes. Purely
    /// observational: it never influences the study's results, which stay
    /// bit-identical at any thread count.
    common::ProgressFn progress{};
};

struct RecoveryStudyOutcome {
    /// Counter-wise sum of every replication's report (ratio helpers like
    /// availability() then aggregate over all replications).
    RecoveryReport total;
    /// Per-replication spreads of the headline metrics.
    common::RunningStats availability;
    common::RunningStats delivered;        ///< mean delivered per-request R_i
    common::RunningStats time_to_recover;  ///< mean slots to recover per rep
    common::RunningStats shed_revenue;
};

/// Order-sensitive 64-bit digest over every counter and statistic of the
/// outcome (same FNV-1a construction as sim::metrics_checksum). The
/// thread-count-invariance test and the recovery bench artifact compare
/// exactly this.
std::uint64_t recovery_metrics_checksum(const RecoveryStudyOutcome& outcome);

/// Runs `config.replications` independent fault schedules against the same
/// (instance, decisions) under the configured recovery policy. Throws (via
/// VNFR_CHECK) on zero replications; schedule-replay preconditions are as
/// in run_recovery_study.
RecoveryStudyOutcome run_recovery_replications(
    const core::Instance& instance, const std::vector<core::Decision>& decisions,
    const RecoveryStudyConfig& config);

}  // namespace vnfr::sim
