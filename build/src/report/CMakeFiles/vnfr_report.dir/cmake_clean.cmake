file(REMOVE_RECURSE
  "CMakeFiles/vnfr_report.dir/csv.cpp.o"
  "CMakeFiles/vnfr_report.dir/csv.cpp.o.d"
  "CMakeFiles/vnfr_report.dir/table.cpp.o"
  "CMakeFiles/vnfr_report.dir/table.cpp.o.d"
  "libvnfr_report.a"
  "libvnfr_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfr_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
