// Failover dynamics study: replay a finished schedule under Markov
// failure/repair processes and account for outages and failovers.
//
// Quantifies the paper's Section I trade-off: on-site backups can only
// fail over locally (same cloudlet — fast, but useless when the cloudlet
// itself is down), while off-site backups fail over to another cloudlet
// (slower, extra traffic, but survive cloudlet outages).
#pragma once

#include <cstdint>
#include <vector>

#include "common/progress.hpp"
#include "common/stats.hpp"
#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace vnfr::sim {

struct FailoverConfig {
    /// Both MTTRs must be positive and finite (and >= 1 slot for the
    /// underlying AvailabilityProcess); enforced via VNFR_CHECK.
    double cloudlet_mttr_slots{4.0};
    double instance_mttr_slots{2.0};
    /// RNG seed for a single run_failover_study call ONLY. In the
    /// Monte-Carlo path (FailoverStudyConfig) replication k is always
    /// seeded from stream_seed(master_seed, k) and this field must be left
    /// at its default — run_failover_replications throws if it was set, so
    /// a caller can never silently mis-seed.
    std::uint64_t seed{0xfa11};
};

struct FailoverReport {
    std::size_t request_slots{0};    ///< active (request x slot) samples
    std::size_t served_slots{0};
    std::size_t disrupted_slots{0};
    /// Serving replica changed within the same cloudlet (fast local switch).
    std::size_t local_failovers{0};
    /// Serving site moved to a different cloudlet (slow remote switch).
    std::size_t remote_failovers{0};
    /// served -> disrupted transitions (complete outages).
    std::size_t outages{0};

    [[nodiscard]] double availability() const {
        return request_slots == 0
                   ? 0.0
                   : static_cast<double>(served_slots) / static_cast<double>(request_slots);
    }
};

/// Replays `decisions` (as produced by any scheduler on `instance`) under
/// Markov failures. Rejected requests are ignored.
FailoverReport run_failover_study(const core::Instance& instance,
                                  const std::vector<core::Decision>& decisions,
                                  const FailoverConfig& config = {});

/// Monte-Carlo version: many independent failure-process replications of
/// the same schedule, fanned out over a thread pool.
struct FailoverStudyConfig {
    /// Process parameters shared by every replication. Seeding precedence
    /// is explicit: `process.seed` has NO effect here — replication k runs
    /// on stream_seed(master_seed, k), and run_failover_replications
    /// throws std::invalid_argument when `process.seed` differs from the
    /// FailoverConfig default (i.e. when a caller tried to seed through
    /// the wrong knob).
    FailoverConfig process{};
    std::size_t replications{5};
    std::uint64_t master_seed{0xfa11};
    /// 0 consults VNFR_THREADS / hardware (ThreadPool::default_thread_count).
    std::size_t threads{0};
    /// Optional progress callback, invoked serially (under a lock in a
    /// common::ProgressMeter) as each replication finishes. Purely
    /// observational: it never influences the study's results, which stay
    /// bit-identical at any thread count.
    common::ProgressFn progress{};
};

struct FailoverStudyOutcome {
    /// Counter sums over all replications (slot totals, failovers, outages).
    FailoverReport total;
    /// Per-replication availability, reduced in replication order.
    common::RunningStats availability;
};

/// Runs `config.replications` failure replays of `decisions` in parallel.
/// Deterministic for any thread count: replication k's failure process is
/// seeded from the counter-based stream (master_seed, k) and results are
/// reduced in ascending k order. Throws (via VNFR_CHECK) on zero
/// replications, throws std::invalid_argument when `config.process.seed`
/// was changed from its default (seed via `master_seed` instead), and
/// propagates run_failover_study's own validation.
FailoverStudyOutcome run_failover_replications(const core::Instance& instance,
                                               const std::vector<core::Decision>& decisions,
                                               const FailoverStudyConfig& config = {});

}  // namespace vnfr::sim
