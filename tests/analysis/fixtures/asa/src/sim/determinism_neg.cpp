// Negative fixture for the vnfr-asa determinism rules: a replication
// body written the way the real tree writes them — counter-based RNG
// streams, ordered containers for anything the digest consumes — must
// produce zero findings even though the file clearly feeds a checksum.
#include <cstdint>
#include <map>
#include <vector>

namespace vnfr::sim {

struct Rng {
    double uniform01();
};

std::uint64_t digest_accumulate(std::uint64_t digest, double value);

std::uint64_t deterministic_replication(Rng& rng) {
    std::uint64_t digest = 1469598103934665603ULL;

    // Ordered containers: iteration order is the key order, stable across
    // runs, thread counts, and standard-library hash seeds.
    std::map<int, double> per_server_load;
    std::vector<double> samples;
    for (int draw = 0; draw < 8; ++draw) {
        const double u = rng.uniform01();
        samples.push_back(u);
        per_server_load[draw] = u;
    }
    for (const auto& entry : per_server_load) {
        digest = digest_accumulate(digest, entry.second);
    }
    for (const double s : samples) {
        digest = digest_accumulate(digest, s);
    }
    return digest;
}

}  // namespace vnfr::sim
