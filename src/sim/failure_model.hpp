// Availability of a concrete placement, analytically and by Monte-Carlo
// failure injection.
//
// Failure model (matching the paper's reliability semantics): in any
// observation, cloudlet c_j is up with probability r(c_j) and each VNF
// instance is independently up with probability r(f_i); a request is served
// when at least one of its sites has its cloudlet up and >= 1 instance up.
// This generalizes both Eq. 2 (one site, N replicas) and Eq. 10 (many
// sites, 1 replica each).
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "workload/request.hpp"

namespace vnfr::sim {

/// Exact availability of `placement` for `request`:
/// 1 - prod_sites (1 - r(c) * (1 - (1 - r(f))^replicas)).
double analytic_availability(const core::Instance& instance,
                             const workload::Request& request,
                             const core::Placement& placement);

/// One sampled observation: true when the request would be served.
bool sample_served(const core::Instance& instance, const workload::Request& request,
                   const core::Placement& placement, common::Rng& rng);

/// Fraction of `trials` observations in which the request is served.
double monte_carlo_availability(const core::Instance& instance,
                                const workload::Request& request,
                                const core::Placement& placement, std::size_t trials,
                                common::Rng& rng);

}  // namespace vnfr::sim
