// Post-run metrics derived from an instance + schedule result.
#pragma once

#include <cstddef>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "edge/resource_ledger.hpp"

namespace vnfr::sim {

/// Aggregate shape of the admitted placements.
struct PlacementStats {
    std::size_t admitted{0};
    double mean_sites{0};          ///< cloudlets per admitted request
    double mean_replicas{0};       ///< total VNF instances per admitted request
    /// Mean pairwise AP hop distance between a placement's sites — the
    /// off-site scheme's geographic-redundancy traffic cost; 0 for
    /// single-site placements.
    double mean_pairwise_hops{0};
    /// Mean hop distance from a request's source AP to its *nearest* placed
    /// site (service access latency proxy); only over admitted requests
    /// with a known source.
    double mean_access_hops{0};
    double mean_availability{0};   ///< analytic, over admitted requests
    /// Smallest availability-minus-requirement margin over admitted
    /// requests (>= 0 when every reliability requirement is honoured).
    double min_slack{0};
};

PlacementStats placement_stats(const core::Instance& instance,
                               const std::vector<core::Decision>& decisions);

/// Mean utilization per cloudlet (index = cloudlet id) over the horizon.
std::vector<double> cloudlet_utilizations(const edge::ResourceLedger& ledger);

/// Revenue of the decisions against the instance (recomputed; equals
/// ScheduleResult::revenue for consistent inputs).
double total_revenue(const core::Instance& instance,
                     const std::vector<core::Decision>& decisions);

}  // namespace vnfr::sim
