// Strong identifier and basic scalar types shared across all vnfr modules.
//
// Identifiers for requests, cloudlets, VNF types and graph nodes are all
// integers at heart; wrapping them in distinct types prevents the classic
// bug of indexing a cloudlet table with a request id. The wrapper is a
// zero-overhead aggregate with full comparison support so it can key
// std::map and sort naturally.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace vnfr {

/// Zero-cost strongly typed integer id. `Tag` only disambiguates types.
template <typename Tag>
struct StrongId {
    std::int64_t value{-1};

    constexpr StrongId() = default;
    constexpr explicit StrongId(std::int64_t v) : value(v) {}

    /// An id is valid once assigned a non-negative value.
    [[nodiscard]] constexpr bool valid() const { return value >= 0; }

    /// Index into a contiguous table. Precondition: valid().
    [[nodiscard]] constexpr std::size_t index() const {
        return static_cast<std::size_t>(value);
    }

    friend constexpr auto operator<=>(StrongId, StrongId) = default;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, StrongId<Tag> id) {
    return os << id.value;
}

struct RequestTag {};
struct CloudletTag {};
struct VnfTypeTag {};
struct NodeTag {};

using RequestId = StrongId<RequestTag>;
using CloudletId = StrongId<CloudletTag>;
using VnfTypeId = StrongId<VnfTypeTag>;
using NodeId = StrongId<NodeTag>;

/// Discrete time slot in [0, T). The paper's slots are 1-based; we use
/// 0-based indices internally and only format 1-based in reports.
using TimeSlot = std::int32_t;

}  // namespace vnfr

namespace std {
template <typename Tag>
struct hash<vnfr::StrongId<Tag>> {
    size_t operator()(vnfr::StrongId<Tag> id) const noexcept {
        return std::hash<std::int64_t>{}(id.value);
    }
};
}  // namespace std
