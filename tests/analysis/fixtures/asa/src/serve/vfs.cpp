// Negative fixture living at the one path allowed to touch raw POSIX
// syscalls (the Vfs backend): durability-vfs-routing must stay silent
// here, the durability-order rules still apply to call *sites*, and a
// wrapper whose name matches the primitive it wraps (rename below) is
// not a call site at all.
#include <string>

namespace vnfr::serve {

bool write_all(int fd, const void* data, std::size_t len);
void fsync_parent_dir(const std::string& path);

void publish_safely(int fd, const std::string& tmp, const std::string& path) {
    ::fsync(fd);
    ::rename(tmp.c_str(), path.c_str());
    fsync_parent_dir(path);
}

bool append_safely(int fd, const std::string& payload) {
    if (!write_all(fd, payload.data(), payload.size())) return false;
    return ::fdatasync(fd) == 0;
}

// A backend wrapper named after the primitive it wraps: the ordering
// rules must not fire on the wrapped call (this is the layer that
// *implements* rename, not a call site that publishes a file with it).
void rename(const std::string& from, const std::string& to) {
    ::rename(from.c_str(), to.c_str());
}

}  // namespace vnfr::serve
