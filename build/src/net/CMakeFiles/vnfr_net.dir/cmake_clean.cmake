file(REMOVE_RECURSE
  "CMakeFiles/vnfr_net.dir/algorithms.cpp.o"
  "CMakeFiles/vnfr_net.dir/algorithms.cpp.o.d"
  "CMakeFiles/vnfr_net.dir/generators.cpp.o"
  "CMakeFiles/vnfr_net.dir/generators.cpp.o.d"
  "CMakeFiles/vnfr_net.dir/graph.cpp.o"
  "CMakeFiles/vnfr_net.dir/graph.cpp.o.d"
  "CMakeFiles/vnfr_net.dir/shortest_path.cpp.o"
  "CMakeFiles/vnfr_net.dir/shortest_path.cpp.o.d"
  "CMakeFiles/vnfr_net.dir/topology_zoo.cpp.o"
  "CMakeFiles/vnfr_net.dir/topology_zoo.cpp.o.d"
  "libvnfr_net.a"
  "libvnfr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
