#include "common/contracts.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/logging.hpp"

namespace vnfr::common {

namespace {

ContractMode mode_from_environment() {
    const char* env = std::getenv("VNFR_CONTRACT_MODE");
    if (env == nullptr) return ContractMode::kThrow;
    if (std::strcmp(env, "abort") == 0) return ContractMode::kAbort;
    if (std::strcmp(env, "log") == 0) return ContractMode::kLog;
    return ContractMode::kThrow;
}

std::atomic<ContractMode>& mode_storage() {
    static std::atomic<ContractMode> mode{mode_from_environment()};
    return mode;
}

}  // namespace

void set_contract_mode(ContractMode mode) {
    mode_storage().store(mode, std::memory_order_relaxed);
}

ContractMode contract_mode() { return mode_storage().load(std::memory_order_relaxed); }

namespace detail {

void contract_fail(const char* macro, const char* expr, const char* file, int line,
                   const std::string& detail) {
    std::ostringstream os;
    os << macro << " failed: " << expr << " at " << file << ":" << line;
    if (!detail.empty()) os << " — " << detail;
    const std::string message = os.str();
    switch (contract_mode()) {
        case ContractMode::kAbort:
            std::cerr << message << std::endl;
            std::abort();
        case ContractMode::kThrow:
            throw ContractViolation(message);
        case ContractMode::kLog:
            log_error(message);
            return;
    }
}

double check_prob(double p, const char* expr, const char* file, int line) {
    if (!(std::isfinite(p) && p >= -kProbSlack && p <= 1.0 + kProbSlack)) [[unlikely]] {
        contract_fail("VNFR_CHECK_PROB", expr, file, line,
                      contract_message("value ", p, " outside [0, 1]"));
    }
    return p;
}

double check_finite(double value, const char* expr, const char* file, int line) {
    if (!std::isfinite(value)) [[unlikely]] {
        contract_fail("VNFR_CHECK_FINITE", expr, file, line,
                      contract_message("value ", value, " is not finite"));
    }
    return value;
}

}  // namespace detail

}  // namespace vnfr::common
