# Empty dependencies file for vnfr_common.
# This may be replaced when dependencies are built.
