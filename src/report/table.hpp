// Console/markdown table rendering for benches and examples.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace vnfr::report {

/// A simple column-aligned text table. Cells are strings; numeric helpers
/// format with fixed precision. Rendering pads to the widest cell.
class Table {
  public:
    explicit Table(std::vector<std::string> headers);

    /// Adds a row; must have exactly as many cells as there are headers.
    void add_row(std::vector<std::string> cells);

    [[nodiscard]] std::size_t rows() const { return rows_.size(); }
    [[nodiscard]] std::size_t columns() const { return headers_.size(); }

    /// Plain text with aligned columns and a header rule.
    [[nodiscard]] std::string to_text() const;

    /// GitHub-flavored markdown.
    [[nodiscard]] std::string to_markdown() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Fixed-point formatting helpers.
std::string format_double(double value, int precision = 2);
std::string format_mean_ci(double mean, double ci_halfwidth, int precision = 1);

}  // namespace vnfr::report
