// Write-ahead log of per-request admission outcomes between snapshots.
//
// File layout:
//   header (32 bytes): magic "VNFRWAL1" | u32 version | u64 wal generation
//                      | u64 config digest | u32 CRC over the first 28 bytes
//   records:           u32 payload length | payload | u32 CRC(payload)
//
// The header is created via atomic_write_file (temp + fsync + rename), so
// a WAL file either has a complete valid header or does not exist — a
// zero-length or header-truncated WAL is always corruption, never a legal
// crash state. Records are appended with write + fdatasync; a crash can
// only tear the final record, which recovery-mode reads detect and drop.
//
// Each record carries the full request plus its outcome. Recovery
// re-executes decision records against the restored scheduler (decide()
// is deterministic) and cross-checks the logged outcome, so replayed
// state is bit-identical by construction and silent divergence is caught.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "serve/vfs.hpp"
#include "serve/wire.hpp"
#include "workload/request.hpp"

namespace vnfr::serve {

inline constexpr std::uint32_t kWalVersion = 1;

/// Fixed byte size of the WAL header (magic + version + generation +
/// config digest + header CRC). Record framing starts at this offset —
/// replication tailers start a fresh generation here.
inline constexpr std::uint64_t kWalHeaderSize = 8 + 4 + 8 + 8 + 4;

enum class WalRecordKind : std::uint8_t {
    kDecision = 1,  ///< the scheduler decided (admitted or rejected)
    kShed = 2,      ///< the overload guard turned the request away undecided
};

struct WalRecord {
    WalRecordKind kind{WalRecordKind::kDecision};
    std::uint64_t seq{0};  ///< stream sequence number
    workload::Request request;
    // Decision records only:
    bool admitted{false};
    core::RejectReason reject_reason{core::RejectReason::kNone};
    std::vector<core::Site> sites;  ///< placement when admitted
    /// File offset of the record's length prefix (set by read_wal, for
    /// error reporting; ignored by append).
    std::uint64_t file_offset{0};
};

/// How read_wal treats anomalies.
enum class WalReadMode {
    /// Any inconsistency throws CorruptStateError — for integrity tests
    /// and offline inspection.
    kStrict,
    /// A final record that is incomplete or CRC-broken *and* extends to
    /// end-of-file is treated as a torn tail from a crash and dropped
    /// (reported via WalContents::bytes_discarded). Anything wrong before
    /// the tail still throws.
    kRecover,
};

struct WalContents {
    std::uint64_t wal_seq{0};
    std::uint64_t config_digest{0};
    std::vector<WalRecord> records;
    /// Bytes of torn tail dropped in kRecover mode (0 when the file was
    /// clean). The valid prefix length is file size minus this.
    std::uint64_t bytes_discarded{0};
    /// Record fragments dropped with the torn tail (0 or 1: a crash can
    /// only tear the final append).
    std::uint64_t records_discarded{0};
    /// Size in bytes of the validated prefix (header + intact records).
    std::uint64_t valid_size{0};
};

/// Parses the WAL at `path` through `vfs`. Throws CorruptStateError per
/// `mode` above.
[[nodiscard]] WalContents read_wal(Vfs& vfs, const std::string& path,
                                   WalReadMode mode);

/// read_wal through the process-wide PosixVfs.
[[nodiscard]] WalContents read_wal(const std::string& path, WalReadMode mode);

/// Parses an in-memory WAL image (header + framed records). `label`
/// names the source in errors. read_wal == read_file + parse_wal_bytes;
/// replication tailers use this directly on a durable-prefix slice of a
/// live file, which is guaranteed clean and parsed in kStrict mode.
[[nodiscard]] WalContents parse_wal_bytes(std::string_view bytes,
                                          const std::string& label,
                                          WalReadMode mode);

/// Appender over one WAL generation. All writes go through a Vfs;
/// append() fdatasyncs per record (the durability contract recovery
/// relies on), while stage()/commit() batch several records into one
/// write + one fdatasync (group commit). Staged records live only in
/// memory until commit() — a crash between stage and commit loses the
/// whole staged suffix, which recovery treats exactly like records that
/// were never appended (the request is simply not yet durable and gets
/// resubmitted). A crash *during* the commit write can leave a prefix of
/// the group on disk: whole records followed by at most one torn record
/// at EOF, the same shape WalReadMode::kRecover already handles.
///
/// Transient write/sync errors (VfsError with transient() true) are
/// retried per the StorageRetryPolicy, rewinding the file to the last
/// durably synced size before every rewrite so a short write cannot
/// duplicate bytes. When retries are exhausted or the error is
/// persistent (ENOSPC), the error propagates with the file left dirty:
/// the on-disk tail past durable_size() is garbage until repair() — or
/// the next successful commit, which rewinds first — cleans it up.
class WalWriter {
  public:
    /// Creates `path` with a fresh header (atomically: the header is
    /// written to a temp file and renamed in) through `vfs`. Fails if
    /// nothing can be written durably.
    static WalWriter create(Vfs& vfs, std::string path, std::uint64_t wal_seq,
                            std::uint64_t config_digest,
                            const StorageRetryPolicy& retry = {});

    /// create() through the process-wide PosixVfs.
    static WalWriter create(std::string path, std::uint64_t wal_seq,
                            std::uint64_t config_digest);

    /// Opens an existing WAL for appending after recovery through `vfs`,
    /// truncating it to `valid_size` first (dropping any torn tail
    /// read_wal reported).
    static WalWriter append_to(Vfs& vfs, std::string path,
                               std::uint64_t valid_size,
                               const StorageRetryPolicy& retry = {});

    /// append_to() through the process-wide PosixVfs.
    static WalWriter append_to(std::string path, std::uint64_t valid_size);

    WalWriter(WalWriter&&) noexcept;
    WalWriter& operator=(WalWriter&&) noexcept;
    WalWriter(const WalWriter&) = delete;
    WalWriter& operator=(const WalWriter&) = delete;
    ~WalWriter();

    /// Appends one framed record and fdatasyncs. Returns the record's
    /// file offset. Equivalent to stage() + commit(); requires no records
    /// currently staged (mixing the two modes inside one group would blur
    /// which records the fdatasync covered).
    std::uint64_t append(const WalRecord& record);

    /// Buffers one framed record in memory for the next commit(). No
    /// syscalls; the record is NOT durable (nor even externalized) until
    /// commit() returns. Returns the offset the record will occupy.
    std::uint64_t stage(const WalRecord& record);

    /// Writes every staged record in one contiguous append and fdatasyncs
    /// once — the group-commit amortization point. No-op when nothing is
    /// staged.
    void commit();

    /// Drops every staged-but-uncommitted record (after a failed commit
    /// whose group the caller will not retry: the controller rolls its
    /// in-memory state back and re-sheds the group instead). Marks the
    /// file dirty — a failed commit may have written part of the group.
    void abandon_staged();

    /// Records staged since the last commit().
    [[nodiscard]] std::size_t staged_records() const { return staged_records_; }

    /// Bytes of the file that are durably committed (synced). A tailer
    /// may ship exactly this prefix — staged bytes are not yet
    /// externalized, let alone durable, and a failed commit's partial
    /// write past this point is garbage awaiting rewind.
    [[nodiscard]] std::uint64_t durable_size() const { return synced_size_; }

    /// True when a failed commit may have left bytes past durable_size()
    /// on disk; the next commit (or repair()) rewinds them first.
    [[nodiscard]] bool dirty() const { return dirty_; }

    /// Transient storage errors absorbed by retries so far.
    [[nodiscard]] std::uint64_t transient_retries() const {
        return transient_retries_;
    }

    /// Truncates the file back to durable_size(), discarding the partial
    /// garbage a failed commit may have written. No-op when clean.
    /// Requires nothing staged.
    void repair();

    [[nodiscard]] const std::string& path() const { return path_; }

    /// Closes the fd early (destructor also does). Safe to call twice.
    void close();

  private:
    WalWriter(Vfs& vfs, const StorageRetryPolicy& retry, std::string path,
              int fd, std::uint64_t size)
        : vfs_(&vfs), retry_(retry), path_(std::move(path)), fd_(fd),
          size_(size), synced_size_(size) {}

    Vfs* vfs_;
    StorageRetryPolicy retry_;
    std::string path_;
    int fd_{-1};
    /// Logical end of file including staged-but-uncommitted bytes.
    std::uint64_t size_{0};
    /// Durably synced prefix length (never counts partial failed writes).
    std::uint64_t synced_size_{0};
    /// A failed commit may have left garbage past synced_size_ on disk.
    bool dirty_{false};
    std::uint64_t transient_retries_{0};
    std::string staged_;  ///< framed bytes awaiting commit()
    std::size_t staged_records_{0};
};

/// Serializes one record to its framed byte form (exposed for tests that
/// need to craft corrupt inputs).
[[nodiscard]] std::string encode_wal_record(const WalRecord& record);

/// Strictly decodes a headerless run of consecutively framed records
/// (len|payload|CRC, as shipped by replication frames). Any inconsistency
/// — including a short tail — throws CorruptStateError; `base_offset` is
/// the run's position within its source file for error reporting, and
/// each record's file_offset is set relative to it.
[[nodiscard]] std::vector<WalRecord> decode_wal_record_stream(
    std::string_view bytes, const std::string& label, std::uint64_t base_offset);

}  // namespace vnfr::serve
