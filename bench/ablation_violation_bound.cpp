// Ablation: how close does the *pure* Algorithm 1 (capacity violations
// allowed, exactly as analyzed in Theorem 1) come to the Lemma 8 violation
// bound xi, and what does capacity checking cost in revenue?
//
// Sweeps capacity tightness; for each setting reports the pure variant's
// measured peak load factor against xi, plus the revenue of the pure vs the
// capacity-checked variant. The measured violation should stay well under
// the (loose) theoretical bound, and the capacity check should cost little
// revenue — the empirical justification for the paper's scaling approach.
#include <iostream>

#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "core/onsite_primal_dual.hpp"
#include "report/table.hpp"

using namespace vnfr;

int main() {
    const std::vector<double> capacities =
        bench::quick_mode() ? std::vector<double>{10, 40} : std::vector<double>{8, 10, 15,
                                                                                25, 40, 60};
    const std::size_t requests = bench::quick_mode() ? 200 : 500;
    const std::size_t seeds = bench::quick_mode() ? 2 : 5;

    std::cout << "== Ablation: Lemma 8 capacity-violation bound vs measurement ==\n\n";
    report::Table table({"capacity", "xi (bound)", "measured peak load", "revenue (pure)",
                         "revenue (checked)", "revenue cost of checking"});

    const std::uint64_t master = bench::scenario_seed("ablation-violation-bound", 0);
    for (const double cap : capacities) {
        common::RunningStats peak_load;
        common::RunningStats xi_stat;
        common::RunningStats pure_revenue;
        common::RunningStats checked_revenue;
        for (std::size_t s = 0; s < seeds; ++s) {
            core::InstanceConfig env = bench::paper_environment(requests);
            env.cloudlets.capacity_min = cap;
            env.cloudlets.capacity_max = cap;
            common::Rng rng = common::stream_rng(master, s);
            const core::Instance inst = core::make_instance(env, rng);

            core::OnsitePrimalDual pure(inst, {.enforce_capacity = false});
            const core::ScheduleResult pure_result = core::run_online(inst, pure);
            core::OnsitePrimalDual checked(inst);
            const core::ScheduleResult checked_result = core::run_online(inst, checked);

            peak_load.add(pure_result.max_load_factor);
            xi_stat.add(core::compute_onsite_bounds(inst).xi);
            pure_revenue.add(pure_result.revenue);
            checked_revenue.add(checked_result.revenue);
        }
        const double cost =
            (1.0 - checked_revenue.mean() / pure_revenue.mean()) * 100.0;
        table.add_row({report::format_double(cap, 0),
                       report::format_double(xi_stat.mean(), 1),
                       report::format_double(peak_load.mean(), 2),
                       report::format_double(pure_revenue.mean(), 1),
                       report::format_double(checked_revenue.mean(), 1),
                       report::format_double(cost, 1) + "%"});
    }
    std::cout << table.to_text()
              << "\nmeasured peak load must stay below xi on every run (Lemma 8); values\n"
                 "near 1.0 mean the pure variant barely violates in practice. The last\n"
                 "column compares the pure Eq. 34 variant against the paper's evaluated\n"
                 "variant (capacity check + scaled dual prices): at tight capacities the\n"
                 "check costs revenue, while at realistic capacities the scaled prices\n"
                 "recover far more than the check costs (negative numbers).\n";
    return 0;
}
