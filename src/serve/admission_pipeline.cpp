#include "serve/admission_pipeline.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

namespace vnfr::serve {

ShardedAdmissionPipeline::ShardedAdmissionPipeline(AdmissionController& controller,
                                                   PipelineConfig config)
    : controller_(controller),
      config_(config),
      transport_(config.transport_capacity) {
    if (config_.transport_capacity == 0) {
        throw std::invalid_argument("pipeline: transport_capacity must be >= 1");
    }
    if (config_.max_batch == 0) {
        throw std::invalid_argument("pipeline: max_batch must be >= 1");
    }
    if (config_.max_delay <= std::chrono::microseconds::zero()) {
        throw std::invalid_argument("pipeline: max_delay must be positive");
    }
    consumer_ = std::thread([this] { run(); });
}

ShardedAdmissionPipeline::~ShardedAdmissionPipeline() {
    try {
        stop();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
        // Destructors must not throw; call stop() to observe errors.
    }
}

common::MpscPushResult ShardedAdmissionPipeline::try_submit(
    std::uint64_t seq, const workload::Request& request) {
    const common::MpscPushResult result = transport_.try_push(Item{seq, request});
    if (result == common::MpscPushResult::kPushed) {
        accepted_.fetch_add(1, std::memory_order_relaxed);
    } else if (result == common::MpscPushResult::kFull) {
        transport_full_.fetch_add(1, std::memory_order_relaxed);
    }
    return result;
}

bool ShardedAdmissionPipeline::submit(std::uint64_t seq,
                                      const workload::Request& request) {
    for (;;) {
        switch (try_submit(seq, request)) {
            case common::MpscPushResult::kPushed:
                return true;
            case common::MpscPushResult::kClosed:
                return false;
            case common::MpscPushResult::kFull:
                std::this_thread::yield();
                break;
        }
    }
}

void ShardedAdmissionPipeline::stop() {
    stopping_.store(true, std::memory_order_relaxed);
    transport_.close();
    if (consumer_.joinable()) consumer_.join();
    std::exception_ptr err;
    {
        const common::MutexLock lock(&stats_mu_);
        err = error_;
        error_ = nullptr;
    }
    if (err) std::rethrow_exception(err);
}

PipelineStats ShardedAdmissionPipeline::stats() const {
    PipelineStats out;
    {
        const common::MutexLock lock(&stats_mu_);
        out = stats_;
    }
    out.accepted = accepted_.load(std::memory_order_relaxed);
    out.transport_full = transport_full_.load(std::memory_order_relaxed);
    return out;
}

void ShardedAdmissionPipeline::pump_controller(bool timeout_triggered) {
    // Pump whatever the controller queued; its own group_commit setting
    // decides how many fdatasyncs that costs.
    const std::size_t queued = controller_.queue_size();
    if (queued == 0) return;
    const std::size_t processed = controller_.pump(queued).size();
    const common::MutexLock lock(&stats_mu_);
    stats_.processed += processed;
    if (timeout_triggered) {
        stats_.timeout_flushes += 1;
    } else {
        stats_.batch_flushes += 1;
    }
}

void ShardedAdmissionPipeline::run() {
    try {
        // Early arrivals parked until the stream is contiguous.
        std::map<std::uint64_t, workload::Request> reorder;
        std::uint64_t expected = config_.start_seq;
        std::size_t since_pump = 0;

        const auto feed_contiguous_run = [&] {
            std::size_t fed = 0;
            while (!reorder.empty() && reorder.begin()->first == expected) {
                controller_.submit(expected, reorder.begin()->second);
                reorder.erase(reorder.begin());
                ++expected;
                ++fed;
            }
            if (fed > 0) {
                since_pump += fed;
                const common::MutexLock lock(&stats_mu_);
                stats_.submitted += fed;
            }
            return fed;
        };

        for (;;) {
            Item item;
            const common::MpscPopResult result = transport_.pop(item, config_.max_delay);
            if (result == common::MpscPopResult::kItem) {
                reorder.emplace(item.seq, item.request);
                {
                    const common::MutexLock lock(&stats_mu_);
                    stats_.max_reorder_depth =
                        std::max(stats_.max_reorder_depth, reorder.size());
                }
                feed_contiguous_run();
                if (since_pump >= config_.max_batch) {
                    pump_controller(/*timeout_triggered=*/false);
                    since_pump = 0;
                }
            } else if (result == common::MpscPopResult::kTimeout) {
                if (since_pump > 0 || controller_.queue_size() > 0) {
                    pump_controller(/*timeout_triggered=*/true);
                    since_pump = 0;
                }
            } else {  // kClosed: transport already drained
                feed_contiguous_run();
                if (!reorder.empty()) {
                    throw std::logic_error(
                        "pipeline stopped with a stream gap: waiting for seq " +
                        std::to_string(expected) + " while " +
                        std::to_string(reorder.size()) +
                        " later submissions are parked");
                }
                const std::size_t processed = controller_.drain().size();
                const common::MutexLock lock(&stats_mu_);
                stats_.processed += processed;
                return;
            }
        }
    } catch (...) {
        const common::MutexLock lock(&stats_mu_);
        error_ = std::current_exception();
    }
}

}  // namespace vnfr::serve
