// Geographic redundancy under the off-site scheme.
//
// Runs Algorithm 2 on the GEANT European backbone and shows where each
// admitted request's instances land, how far apart the backups sit (the
// off-site scheme's traffic-cost drawback discussed in Section I), and how
// Algorithm 2's load spreading compares with the reliability-greedy
// baseline.
//
//   $ ./offsite_geo_redundancy [num_requests] [seed]
#include <cstdlib>
#include <iostream>

#include "core/greedy.hpp"
#include "core/instance.hpp"
#include "core/offsite_primal_dual.hpp"
#include "report/table.hpp"
#include "sim/failure_model.hpp"
#include "sim/metrics.hpp"

using namespace vnfr;

int main(int argc, char** argv) {
    const std::size_t num_requests =
        argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 250;
    const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 11;

    core::InstanceConfig cfg;
    cfg.topology = "geant";
    cfg.cloudlets.count = 10;
    cfg.cloudlets.capacity_min = 25;
    cfg.cloudlets.capacity_max = 40;
    cfg.cloudlets.reliability_min = 0.93;
    cfg.cloudlets.reliability_max = 0.995;
    cfg.workload.horizon = 30;
    cfg.workload.count = num_requests;
    cfg.workload.duration_max = 8;
    cfg.workload.requirement_min = 0.93;
    cfg.workload.requirement_max = 0.995;
    common::Rng rng(seed);
    const core::Instance instance = core::make_instance(cfg, rng);

    std::cout << "MEC: GEANT topology (" << instance.network.graph().node_count()
              << " APs), " << instance.network.cloudlet_count() << " cloudlets, "
              << instance.requests.size() << " requests\n\n";

    report::Table table(
        {"algorithm", "revenue", "accepted", "mean sites", "mean backup hops", "min slack"});
    const auto run = [&](core::OnlineScheduler& scheduler) {
        const core::ScheduleResult result = core::run_online(instance, scheduler);
        const sim::PlacementStats stats = sim::placement_stats(instance, result.decisions);
        table.add_row({std::string(scheduler.name()),
                       report::format_double(result.revenue, 1),
                       std::to_string(result.admitted),
                       report::format_double(stats.mean_sites, 2),
                       report::format_double(stats.mean_pairwise_hops, 2),
                       report::format_double(stats.min_slack, 4)});
        return result;
    };

    core::OffsitePrimalDual algorithm2(instance);
    core::OffsiteGreedy greedy(instance);
    const core::ScheduleResult pd = run(algorithm2);
    run(greedy);
    std::cout << table.to_text();

    // Show a few concrete placements: which cities host which backups.
    std::cout << "\nsample placements (algorithm 2):\n";
    report::Table placements({"request", "R", "sites (city[AP])", "availability"});
    std::size_t shown = 0;
    for (std::size_t i = 0; i < pd.decisions.size() && shown < 6; ++i) {
        const core::Decision& d = pd.decisions[i];
        if (!d.admitted || d.placement.sites.size() < 2) continue;
        std::string sites;
        for (const core::Site& s : d.placement.sites) {
            const edge::Cloudlet& c = instance.network.cloudlet(s.cloudlet);
            if (!sites.empty()) sites += " + ";
            sites += instance.network.graph().node_name(c.node);
        }
        const double avail =
            sim::analytic_availability(instance, instance.requests[i], d.placement);
        placements.add_row({std::to_string(instance.requests[i].id.value),
                            report::format_double(instance.requests[i].requirement, 3),
                            sites, report::format_double(avail, 4)});
        ++shown;
    }
    std::cout << placements.to_text();

    // Load distribution across cloudlets: Algorithm 2 vs greedy.
    std::cout << "\nper-cloudlet mean utilization:\n";
    report::Table loads({"cloudlet (city)", "algorithm 2", "greedy"});
    const auto util_pd = sim::cloudlet_utilizations(algorithm2.ledger());
    const auto util_gr = sim::cloudlet_utilizations(greedy.ledger());
    for (std::size_t j = 0; j < instance.network.cloudlet_count(); ++j) {
        const edge::Cloudlet& c =
            instance.network.cloudlet(CloudletId{static_cast<std::int64_t>(j)});
        loads.add_row({instance.network.graph().node_name(c.node),
                       report::format_double(util_pd[j], 3),
                       report::format_double(util_gr[j], 3)});
    }
    std::cout << loads.to_text();
    return 0;
}
