#include "serve/replication/wal_shipper.hpp"

#include <algorithm>
#include <utility>

#include "serve/wire.hpp"

namespace vnfr::serve::replication {

namespace {

std::string wal_path(const std::string& data_dir, std::uint64_t generation) {
    return data_dir + "/wal-" + std::to_string(generation) + ".log";
}

/// Reads the little-endian u32 length prefix at `pos` of a WAL image.
std::uint32_t record_len_at(const std::string& bytes, std::uint64_t pos) {
    std::uint32_t len = 0;
    for (int i = 3; i >= 0; --i) {
        len = (len << 8) |
              static_cast<std::uint8_t>(bytes[static_cast<std::size_t>(pos) +
                                              static_cast<std::size_t>(i)]);
    }
    return len;
}

}  // namespace

WalShipper::WalShipper(AdmissionController& primary, std::string data_dir,
                       ShipTransport& transport, Config config)
    : primary_(&primary),
      data_dir_(std::move(data_dir)),
      transport_(&transport),
      config_(config) {
    if (config_.max_records_per_frame == 0) config_.max_records_per_frame = 1;
}

std::size_t WalShipper::pump() {
    const common::MutexLock lock(&shipper_mu_);
    process_acks_locked();
    const WalPosition pos = primary_->wal_position();
    std::size_t frames = 0;
    // Finish shipping every retained generation below the live one, each
    // closed by a rotate frame so the standby advances in lockstep.
    while (cursor_gen_ < pos.generation) {
        const std::string path = wal_path(data_dir_, cursor_gen_);
        if (!file_exists(primary_->vfs(), path)) {
            throw ReplicationGapError(cursor_gen_,
                                      "retained generation missing before the "
                                      "standby acknowledged it");
        }
        const std::string bytes = read_file(primary_->vfs(), path);
        if (!ship_slice_locked(bytes, bytes.size(), &frames)) return frames;
        ShipFrame rotate;
        rotate.kind = ShipFrameKind::kRotate;
        rotate.generation = cursor_gen_;
        rotate.start_offset = bytes.size();
        if (!transport_->try_send(rotate)) return frames;
        ++frames;
        ++stats_.frames_shipped;
        ++stats_.rotates_shipped;
        ++cursor_gen_;
        cursor_off_ = kWalHeaderSize;
    }
    // Live generation: ship only the durable prefix. The watermark was
    // snapshotted under the controller lock, so bytes below it are
    // already fdatasync'd and stable even while the primary appends.
    if (cursor_off_ < pos.durable_bytes) {
        const std::string path = wal_path(data_dir_, cursor_gen_);
        if (!file_exists(primary_->vfs(), path)) {
            throw ReplicationGapError(cursor_gen_, "live generation missing");
        }
        const std::string bytes = read_file(primary_->vfs(), path);
        const std::uint64_t limit = std::min<std::uint64_t>(bytes.size(),
                                                            pos.durable_bytes);
        ship_slice_locked(bytes, limit, &frames);
    }
    return frames;
}

void WalShipper::process_acks_locked() {
    const ShipAck ack = transport_->latest_ack();
    stats_.acked_generation = ack.generation;
    stats_.acked_offset = ack.next_offset;
    if (ack.resync) {
        // Go-back-N: rewind to the standby's expected position and
        // re-ship the suffix. Only ever rewind — a stale resync ack that
        // is already at (or behind) the cursor is a no-op.
        if (ack.generation < cursor_gen_ ||
            (ack.generation == cursor_gen_ && ack.next_offset < cursor_off_)) {
            cursor_gen_ = ack.generation;
            cursor_off_ = ack.next_offset;
            ++stats_.resync_rewinds;
        }
    }
    // Ship-before-ack: release strictly below the acked generation, and
    // only after the ack was read above — never ahead of it.
    if (ack.generation > 0) {
        primary_->release_wals_below(ack.generation);
        stats_.generations_released = std::max(stats_.generations_released,
                                               ack.generation);
    }
}

bool WalShipper::ship_slice_locked(const std::string& bytes, std::uint64_t limit,
                                   std::size_t* frames) {
    while (cursor_off_ < limit) {
        ShipFrame frame;
        frame.generation = cursor_gen_;
        frame.start_offset = cursor_off_;
        std::uint64_t end = cursor_off_;
        while (end < limit && frame.record_count < config_.max_records_per_frame) {
            if (limit - end < 8) {
                throw CorruptStateError(wal_path(data_dir_, cursor_gen_), end,
                                        "durable prefix ends inside record framing");
            }
            const std::uint64_t span = 8ULL + record_len_at(bytes, end);
            if (end + span > limit) {
                throw CorruptStateError(wal_path(data_dir_, cursor_gen_), end,
                                        "durable prefix ends inside a record");
            }
            end += span;
            ++frame.record_count;
        }
        frame.payload = bytes.substr(static_cast<std::size_t>(cursor_off_),
                                     static_cast<std::size_t>(end - cursor_off_));
        if (!transport_->try_send(frame)) return false;  // backpressure: stop
        ++*frames;
        ++stats_.frames_shipped;
        stats_.records_shipped += frame.record_count;
        cursor_off_ = end;
    }
    return true;
}

std::uint64_t WalShipper::cursor_generation() const {
    const common::MutexLock lock(&shipper_mu_);
    return cursor_gen_;
}

std::uint64_t WalShipper::cursor_offset() const {
    const common::MutexLock lock(&shipper_mu_);
    return cursor_off_;
}

ShipperStats WalShipper::stats() const {
    const common::MutexLock lock(&shipper_mu_);
    return stats_;
}

}  // namespace vnfr::serve::replication
