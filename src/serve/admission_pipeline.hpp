// Multi-producer front end over an AdmissionController.
//
// N producer threads push (seq, request) pairs — in any interleaving —
// into a bounded MPSC transport queue (common/mpsc_queue.hpp). One
// consumer thread sequences them: a reorder buffer holds early arrivals
// until the stream is contiguous (the controller requires uncovered
// submissions in seq order), feeds the controller, and pumps it on a
// max-batch / max-delay window. Inside each pump the controller applies
// its own batching: group-commit WAL durability and wave-parallel decide
// (see admission_controller.hpp) — the pipeline's window controls
// latency, the controller's group_commit controls fdatasync amortization.
//
// Determinism. The decided stream the controller sees is the seq order,
// regardless of producer interleaving, so admitted/rejected outcomes,
// revenue, and the state digest are reproducible run to run as long as no
// controller-side sheds occur. What IS timing-dependent in free-running
// mode is shedding: the controller sheds by queue occupancy, and
// occupancy depends on how the pump windows interleave with arrivals —
// two runs may shed different (equally valid) low-payment victims. Tests
// that assert bit-identical digests across configurations therefore
// either size the admission queue so nothing sheds, or drive the
// controller directly in deterministic phases (see chaos_study).
//
// Shutdown. stop() closes the transport, joins the consumer (which
// drains the transport, the reorder buffer, and the controller queue),
// and rethrows any exception the consumer died with. The stream fed to
// the pipeline must cover a contiguous seq range — a gap still missing
// at shutdown is reported as an error from stop().
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <thread>

#include "common/annotations.hpp"
#include "common/mpsc_queue.hpp"
#include "common/mutex.hpp"
#include "serve/admission_controller.hpp"

namespace vnfr::serve {

struct PipelineConfig {
    /// Bounded MPSC transport between producers and the sequencer.
    std::size_t transport_capacity{1024};
    /// Pump the controller after this many in-order submissions...
    std::size_t max_batch{32};
    /// ...or when no new input arrived within this window (whichever
    /// comes first), bounding decision latency under a trickle load.
    std::chrono::microseconds max_delay{500};
    /// First seq of the stream this pipeline will sequence (use the
    /// controller's resume_cursor() when resuming after a crash).
    std::uint64_t start_seq{0};
};

struct PipelineStats {
    std::uint64_t accepted{0};         ///< try_submit pushes that succeeded
    std::uint64_t transport_full{0};   ///< pushes bounced off a full transport
    std::uint64_t submitted{0};        ///< fed to controller.submit in seq order
    std::uint64_t processed{0};        ///< outcomes pumped out of the controller
    std::uint64_t batch_flushes{0};    ///< pumps triggered by max_batch
    std::uint64_t timeout_flushes{0};  ///< pumps triggered by max_delay
    std::size_t max_reorder_depth{0};  ///< worst early-arrival backlog seen
};

class ShardedAdmissionPipeline {
  public:
    /// The controller (and the instance it binds) must outlive the
    /// pipeline. The consumer thread starts immediately.
    ShardedAdmissionPipeline(AdmissionController& controller, PipelineConfig config);

    ShardedAdmissionPipeline(const ShardedAdmissionPipeline&) = delete;
    ShardedAdmissionPipeline& operator=(const ShardedAdmissionPipeline&) = delete;

    /// stop()s if the caller did not; shutdown errors are swallowed here
    /// (call stop() yourself to observe them).
    ~ShardedAdmissionPipeline();

    /// Non-blocking: hands (seq, request) to the sequencer. Returns kFull
    /// when the transport is saturated — the caller chooses to retry or
    /// count the request as load-shed at the front door.
    common::MpscPushResult try_submit(std::uint64_t seq,
                                      const workload::Request& request);

    /// try_submit with backpressure: spins (yielding) while the transport
    /// is full. Returns false iff the pipeline was stopped meanwhile.
    bool submit(std::uint64_t seq, const workload::Request& request);

    /// Closes the transport, joins the consumer after it drained
    /// everything, and rethrows the consumer's exception if it failed.
    /// Idempotent.
    void stop();

    [[nodiscard]] PipelineStats stats() const VNFR_EXCLUDES(stats_mu_);

  private:
    struct Item {
        std::uint64_t seq;
        workload::Request request;
    };

    void run();
    void pump_controller(bool timeout_triggered) VNFR_EXCLUDES(stats_mu_);

    AdmissionController& controller_;
    const PipelineConfig config_;
    common::MpscQueue<Item> transport_;

    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> transport_full_{0};
    std::atomic<bool> stopping_{false};

    mutable common::Mutex stats_mu_;
    PipelineStats stats_ VNFR_GUARDED_BY(stats_mu_);
    std::exception_ptr error_ VNFR_GUARDED_BY(stats_mu_);

    std::thread consumer_;
};

}  // namespace vnfr::serve
