#include "edge/mec_network.hpp"

#include <stdexcept>

#include "common/math.hpp"
#include "net/shortest_path.hpp"

namespace vnfr::edge {

MecNetwork::MecNetwork(net::Graph graph)
    : graph_(std::move(graph)), cloudlet_by_node_(graph_.node_count(), CloudletId{}) {}

CloudletId MecNetwork::add_cloudlet(NodeId node, double capacity, double reliability) {
    if (!graph_.has_node(node)) throw std::invalid_argument("MecNetwork: unknown AP node");
    if (capacity <= 0.0) throw std::invalid_argument("MecNetwork: non-positive capacity");
    common::require_open_unit(reliability, "cloudlet reliability");
    if (cloudlet_by_node_[node.index()].valid())
        throw std::invalid_argument("MecNetwork: node already hosts a cloudlet");
    const CloudletId id{static_cast<std::int64_t>(cloudlets_.size())};
    cloudlets_.push_back(Cloudlet{id, node, capacity, reliability});
    cloudlet_by_node_[node.index()] = id;
    hop_cache_.clear();  // invalidated by topology membership change
    return id;
}

void MecNetwork::attach_random_cloudlets(const CloudletAttachment& spec, common::Rng& rng) {
    if (spec.count > graph_.node_count())
        throw std::invalid_argument("MecNetwork: more cloudlets than APs");
    if (spec.capacity_min <= 0.0 || spec.capacity_max < spec.capacity_min)
        throw std::invalid_argument("MecNetwork: bad capacity range");
    if (spec.reliability_min <= 0.0 || spec.reliability_max >= 1.0 ||
        spec.reliability_max < spec.reliability_min)
        throw std::invalid_argument("MecNetwork: bad reliability range");
    const auto nodes = rng.sample_without_replacement(graph_.node_count(), spec.count);
    for (const std::size_t node : nodes) {
        const double cap = rng.uniform(spec.capacity_min, spec.capacity_max);
        const double rel = rng.uniform(spec.reliability_min, spec.reliability_max);
        add_cloudlet(NodeId{static_cast<std::int64_t>(node)}, cap, rel);
    }
}

const Cloudlet& MecNetwork::cloudlet(CloudletId id) const {
    if (!id.valid() || id.index() >= cloudlets_.size())
        throw std::out_of_range("MecNetwork: unknown cloudlet");
    return cloudlets_[id.index()];
}

CloudletId MecNetwork::cloudlet_at(NodeId node) const {
    if (!graph_.has_node(node)) throw std::invalid_argument("MecNetwork: unknown AP node");
    return cloudlet_by_node_[node.index()];
}

std::vector<double> MecNetwork::capacities() const {
    std::vector<double> out;
    out.reserve(cloudlets_.size());
    for (const Cloudlet& c : cloudlets_) out.push_back(c.capacity);
    return out;
}

std::vector<double> MecNetwork::reliabilities() const {
    std::vector<double> out;
    out.reserve(cloudlets_.size());
    for (const Cloudlet& c : cloudlets_) out.push_back(c.reliability);
    return out;
}

int MecNetwork::hop_distance(CloudletId a, CloudletId b) const {
    const Cloudlet& ca = cloudlet(a);
    const Cloudlet& cb = cloudlet(b);
    if (hop_cache_.empty()) hop_cache_ = net::all_pairs_hops(graph_);
    return hop_cache_[ca.node.index()][cb.node.index()];
}

int MecNetwork::hop_distance_from(NodeId node, CloudletId c) const {
    if (!graph_.has_node(node)) throw std::invalid_argument("MecNetwork: unknown AP node");
    const Cloudlet& target = cloudlet(c);
    if (hop_cache_.empty()) hop_cache_ = net::all_pairs_hops(graph_);
    return hop_cache_[node.index()][target.node.index()];
}

}  // namespace vnfr::edge
