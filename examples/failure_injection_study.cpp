// Does the provider actually deliver the promised reliability?
//
// Schedules a workload under both schemes, then (a) verifies each admitted
// placement analytically against its requirement, and (b) injects random
// cloudlet/instance failures every slot and measures the availability the
// users actually experienced, comparing it with the analytic prediction.
//
//   $ ./failure_injection_study [num_requests] [seed]
#include <cstdlib>
#include <iostream>

#include "core/instance.hpp"
#include "core/offsite_primal_dual.hpp"
#include "core/onsite_primal_dual.hpp"
#include "report/table.hpp"
#include "sim/failure_model.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"

using namespace vnfr;

int main(int argc, char** argv) {
    const std::size_t num_requests =
        argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 400;
    const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 3;

    core::InstanceConfig cfg;
    cfg.topology = "nsfnet";
    cfg.cloudlets.count = 9;
    cfg.cloudlets.capacity_min = 40;
    cfg.cloudlets.capacity_max = 60;
    cfg.workload.horizon = 60;
    cfg.workload.count = num_requests;
    cfg.workload.duration_max = 12;
    common::Rng rng(seed);
    const core::Instance instance = core::make_instance(cfg, rng);

    std::cout << "Failure-injection study: nsfnet, " << instance.requests.size()
              << " requests, horizon " << instance.horizon << "\n\n";

    report::Table table({"scheme", "admitted", "analytic avail (mean)", "min slack",
                         "empirical avail", "request-slots sampled"});

    const auto study = [&](core::OnlineScheduler& scheduler) {
        sim::SimulatorConfig sim_cfg;
        sim_cfg.inject_failures = true;
        sim_cfg.failure_seed = seed * 977 + 1;
        const sim::SimulationReport report = sim::simulate(instance, scheduler, sim_cfg);
        const sim::PlacementStats stats =
            sim::placement_stats(instance, report.schedule.decisions);
        table.add_row({std::string(scheduler.name()),
                       std::to_string(report.schedule.admitted),
                       report::format_double(stats.mean_availability, 4),
                       report::format_double(stats.min_slack, 4),
                       report::format_double(report.empirical_availability(), 4),
                       std::to_string(report.served_request_slots +
                                      report.disrupted_request_slots)});
    };

    core::OnsitePrimalDual onsite(instance);
    core::OffsitePrimalDual offsite(instance);
    study(onsite);
    study(offsite);
    std::cout << table.to_text();

    // Deep-dive: per-request Monte-Carlo check on a few admitted requests.
    std::cout << "\nper-request Monte-Carlo spot check (on-site scheme, 100k trials):\n";
    core::OnsitePrimalDual fresh(instance);
    const core::ScheduleResult result = core::run_online(instance, fresh);
    report::Table spot({"request", "required R", "analytic", "monte-carlo"});
    common::Rng mc_rng(seed + 42);
    std::size_t shown = 0;
    for (std::size_t i = 0; i < result.decisions.size() && shown < 5; ++i) {
        if (!result.decisions[i].admitted) continue;
        const auto& r = instance.requests[i];
        const auto& p = result.decisions[i].placement;
        spot.add_row({std::to_string(r.id.value), report::format_double(r.requirement, 4),
                      report::format_double(sim::analytic_availability(instance, r, p), 4),
                      report::format_double(
                          sim::monte_carlo_availability(instance, r, p, 100000, mc_rng), 4)});
        ++shown;
    }
    std::cout << spot.to_text()
              << "\nEvery admitted request's availability must sit at or above its "
                 "requirement;\nthe empirical column converges to the analytic one.\n";
    return 0;
}
