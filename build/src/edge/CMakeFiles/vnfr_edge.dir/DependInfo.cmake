
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/edge/mec_network.cpp" "src/edge/CMakeFiles/vnfr_edge.dir/mec_network.cpp.o" "gcc" "src/edge/CMakeFiles/vnfr_edge.dir/mec_network.cpp.o.d"
  "/root/repo/src/edge/resource_ledger.cpp" "src/edge/CMakeFiles/vnfr_edge.dir/resource_ledger.cpp.o" "gcc" "src/edge/CMakeFiles/vnfr_edge.dir/resource_ledger.cpp.o.d"
  "/root/repo/src/edge/visualization.cpp" "src/edge/CMakeFiles/vnfr_edge.dir/visualization.cpp.o" "gcc" "src/edge/CMakeFiles/vnfr_edge.dir/visualization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vnfr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vnfr_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
