#include "common/math.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace vnfr::common {
namespace {

TEST(AlmostEqual, BasicCases) {
    EXPECT_TRUE(almost_equal(1.0, 1.0));
    EXPECT_TRUE(almost_equal(1.0, 1.0 + 1e-12));
    EXPECT_FALSE(almost_equal(1.0, 1.001));
    EXPECT_TRUE(almost_equal(0.0, 1e-13));
    EXPECT_FALSE(almost_equal(0.0, 1e-3));
}

TEST(Log1m, MatchesNaiveForModerateValues) {
    for (const double x : {0.0, 0.1, 0.5, 0.9}) {
        EXPECT_NEAR(log1m(x), std::log(1.0 - x), 1e-12);
    }
}

TEST(Log1m, PrecisionNearZero) {
    // log(1 - 1e-15) loses all precision naively; log1m must not.
    EXPECT_NEAR(log1m(1e-15), -1e-15, 1e-25);
}

TEST(Log1m, RejectsOutOfDomain) {
    EXPECT_THROW(log1m(-0.1), std::domain_error);
    EXPECT_THROW(log1m(1.0), std::domain_error);
}

TEST(OneMinusExp, Basics) {
    EXPECT_DOUBLE_EQ(one_minus_exp(0.0), 0.0);
    EXPECT_NEAR(one_minus_exp(-1.0), 1.0 - std::exp(-1.0), 1e-15);
    EXPECT_THROW(one_minus_exp(0.5), std::domain_error);
}

TEST(OneMinusExp, RoundTripsLog1m) {
    for (const double p : {0.001, 0.3, 0.9999}) {
        EXPECT_NEAR(one_minus_exp(log1m(p)), p, 1e-12);
    }
}

TEST(AtLeastOne, ZeroComponents) {
    EXPECT_DOUBLE_EQ(at_least_one(0.9, 0), 0.0);
}

TEST(AtLeastOne, OneComponent) {
    EXPECT_DOUBLE_EQ(at_least_one(0.9, 1), 0.9);
}

TEST(AtLeastOne, MatchesNaiveFormula) {
    for (const double p : {0.5, 0.9, 0.99}) {
        for (const int k : {1, 2, 3, 5}) {
            EXPECT_NEAR(at_least_one(p, k), 1.0 - std::pow(1.0 - p, k), 1e-12)
                << "p=" << p << " k=" << k;
        }
    }
}

TEST(AtLeastOne, MonotoneInK) {
    double prev = 0.0;
    for (int k = 1; k <= 10; ++k) {
        const double v = at_least_one(0.7, k);
        EXPECT_GT(v, prev);
        prev = v;
    }
}

TEST(AtLeastOne, HighReliabilityPrecision) {
    // 1 - (1 - 0.9999)^2 = 1 - 1e-8: representable, and the log1p route
    // must agree to full precision.
    EXPECT_NEAR(at_least_one(0.9999, 2), 1.0 - 1e-8, 1e-16);
}

TEST(AtLeastOne, RejectsBadInput) {
    EXPECT_THROW(at_least_one(-0.1, 1), std::domain_error);
    EXPECT_THROW(at_least_one(1.1, 1), std::domain_error);
    EXPECT_THROW(at_least_one(0.5, -1), std::domain_error);
}

TEST(AtLeastOneOf, EmptyIsZero) {
    const std::vector<double> none;
    EXPECT_DOUBLE_EQ(at_least_one_of(none), 0.0);
}

TEST(AtLeastOneOf, MatchesNaiveProduct) {
    const std::vector<double> ps{0.5, 0.8, 0.9};
    EXPECT_NEAR(at_least_one_of(ps), 1.0 - 0.5 * 0.2 * 0.1, 1e-12);
}

TEST(AtLeastOneOf, CertainComponentDominates) {
    const std::vector<double> ps{0.2, 1.0, 0.3};
    EXPECT_DOUBLE_EQ(at_least_one_of(ps), 1.0);
}

TEST(AtLeastOneOf, RejectsBadProbability) {
    const std::vector<double> bad{0.5, 1.5};
    EXPECT_THROW(at_least_one_of(bad), std::domain_error);
}

TEST(RequireOpenUnit, PassesInteriorValues) {
    EXPECT_DOUBLE_EQ(require_open_unit(0.5, "p"), 0.5);
    EXPECT_DOUBLE_EQ(require_open_unit(0.9999, "p"), 0.9999);
}

TEST(RequireOpenUnit, RejectsBoundaryAndOutside) {
    EXPECT_THROW(require_open_unit(0.0, "p"), std::invalid_argument);
    EXPECT_THROW(require_open_unit(1.0, "p"), std::invalid_argument);
    EXPECT_THROW(require_open_unit(-1.0, "p"), std::invalid_argument);
    EXPECT_THROW(require_open_unit(2.0, "p"), std::invalid_argument);
}

}  // namespace
}  // namespace vnfr::common
