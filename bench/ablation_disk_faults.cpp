// Disk-fault ablation: storage-failure resilience of the serve layer's
// admission controller under both backup schemes, across group-commit
// configurations, on a fully simulated faulty disk (FaultyVfs).
//
// For each (scheme, group_commit) cell, one paper-environment trace is
// served uninterrupted as the baseline, then re-served under three fault
// families: power cuts at scripted mutating-op indices (exhaustive over
// every such op in full mode — including both checkpoint-rotation stages
// and mid-group-commit appends), seeded transient EIO/short-write bursts
// the retry layer must absorb invisibly, and persistent ENOSPC that must
// degrade the controller into loud read-only mode and recover once space
// frees. Emits BENCH_disk_faults.json and exits nonzero when any gate
// fails:
//
//   * every power-cut trial revives to a bit-identical state digest,
//     equal revenue bits, the same admitted set (zero lost acked
//     admissions, zero double-charges), and zero capacity violations;
//   * every transient trial completes healthy with the baseline digest;
//   * every degraded trial refuses loudly while full, recovers (explicit
//     call and automatic probe paths both exercised), and finishes to
//     the baseline digest;
//   * every surviving directory passes a read-only WAL scrub, and the
//     scrubber demonstrably detects a single flipped durable bit.
//
// Usage: ablation_disk_faults [output.json]
//   VNFR_BENCH_QUICK=1  sampled cut points and a smaller trace for CI
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "report/json.hpp"
#include "serve/disk_fault_study.hpp"

using namespace vnfr;

namespace {

const char* scheme_name(core::Scheme scheme) {
    return scheme == core::Scheme::kOnsite ? "onsite" : "offsite";
}

constexpr std::size_t kGroupCommits[] = {1, 4};

struct CellResult {
    core::Scheme scheme{core::Scheme::kOnsite};
    std::size_t group_commit{1};
    serve::DiskFaultStudyResult study;
    double seconds{0};
};

}  // namespace

int main(int argc, char** argv) {
    const std::string out_path =
        argc > 1 ? argv[1] : std::string("BENCH_disk_faults.json");

    const bool quick = bench::quick_mode();
    const std::size_t requests = quick ? 80 : 160;
    const std::uint64_t master = bench::scenario_seed("disk_faults", requests);

    std::cout << "== Disk-fault ablation: power cuts, transient EIO, ENOSPC "
                 "degradation ==\n";
    bench::print_thread_note();

    common::Rng rng = common::stream_rng(master, 0);
    const core::Instance instance =
        bench::make_factory(bench::paper_environment(requests))(rng);
    std::cout << "instance: " << instance.requests.size() << " requests, "
              << instance.network.cloudlet_count() << " cloudlets, horizon "
              << instance.horizon << "; power cuts "
              << (quick ? "sampled (12 per cell)" : "exhaustive over every mutating op")
              << "\n\n";

    std::vector<CellResult> results;
    bool all_ok = true;
    std::uint64_t cut_trials = 0;
    std::uint64_t cut_failed = 0;
    std::uint64_t transient_trials = 0;
    std::uint64_t transient_failed = 0;
    std::uint64_t degraded_trials = 0;
    std::uint64_t degraded_failed = 0;
    for (const core::Scheme scheme :
         {core::Scheme::kOnsite, core::Scheme::kOffsite}) {
        for (const std::size_t group_commit : kGroupCommits) {
            serve::DiskFaultStudyConfig cfg;
            cfg.scheme = scheme;
            // Same fault streams for every group-commit cell of a scheme:
            // the sweep varies the commit batching, not the faults.
            cfg.master_seed =
                common::stream_seed(master, 1 + static_cast<std::uint64_t>(scheme));
            cfg.exhaustive_power_cuts = !quick;
            cfg.power_cut_points = 12;
            cfg.transient_trials = quick ? 3 : 8;
            cfg.degraded_trials = quick ? 2 : 6;
            cfg.checkpoint_every = 16;
            cfg.queue_capacity = 8;
            cfg.group_commit = group_commit;

            CellResult r;
            r.scheme = scheme;
            r.group_commit = group_commit;
            const auto start = std::chrono::steady_clock::now();
            r.study = serve::run_disk_fault_study(instance, cfg);
            r.seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();

            cut_trials += r.study.power_cut_trials.size();
            cut_failed += r.study.failed_power_cut_trials;
            transient_trials += r.study.transient_trials.size();
            transient_failed += r.study.failed_transient_trials;
            degraded_trials += r.study.degraded_trials.size();
            degraded_failed += r.study.failed_degraded_trials;

            std::cout << scheme_name(scheme) << " [g" << group_commit
                      << "]: baseline revenue " << r.study.baseline_metrics.revenue
                      << " (admitted " << r.study.baseline_metrics.admitted
                      << ", shed " << r.study.baseline_metrics.shed << "), digest "
                      << report::hex_u64(r.study.baseline_digest) << "\n  "
                      << r.study.power_cut_trials.size() << " power cuts over "
                      << r.study.baseline_mutating_ops << " mutating ops ("
                      << r.study.failed_power_cut_trials << " failed), "
                      << r.study.transient_trials.size() << " transient trials ("
                      << r.study.transient_faults_injected << " faults absorbed via "
                      << r.study.transient_retries_absorbed << " retries), "
                      << r.study.degraded_trials.size() << " ENOSPC trials ("
                      << r.study.failed_degraded_trials << " failed), scrub "
                      << (r.study.baseline_scrub_clean ? "clean" : "DIRTY")
                      << ", corruption-detect "
                      << (r.study.corruption_detected ? "yes" : "NO") << ", "
                      << report::format_double(r.seconds, 2) << "s\n";
            if (!r.study.ok()) {
                std::cout << "  GATE FAILED for " << scheme_name(scheme) << " [g"
                          << group_commit << "]\n";
                all_ok = false;
            }
            results.push_back(std::move(r));
        }
    }
    std::cout << '\n';

    const auto rate = [](std::uint64_t failed, std::uint64_t total) {
        return total == 0
                   ? 1.0
                   : static_cast<double>(total - failed) / static_cast<double>(total);
    };

    report::JsonValue doc = report::JsonValue::object();
    doc.set("bench", "disk_faults");
    doc.set("quick", quick);
    doc.set("requests", static_cast<std::uint64_t>(requests));
    doc.set("master_seed", report::hex_u64(master));
    report::JsonValue cells = report::JsonValue::array();
    for (const CellResult& r : results) {
        report::JsonValue row = report::JsonValue::object();
        row.set("scheme", scheme_name(r.scheme));
        row.set("group_commit", static_cast<std::uint64_t>(r.group_commit));
        row.set("baseline_digest", report::hex_u64(r.study.baseline_digest));
        row.set("baseline_revenue", r.study.baseline_metrics.revenue);
        row.set("baseline_admitted", r.study.baseline_metrics.admitted);
        row.set("baseline_rejected", r.study.baseline_metrics.rejected);
        row.set("baseline_shed", r.study.baseline_metrics.shed);
        row.set("baseline_mutating_ops", r.study.baseline_mutating_ops);
        row.set("baseline_capacity_ok", r.study.baseline_capacity_ok);
        row.set("baseline_scrub_clean", r.study.baseline_scrub_clean);
        row.set("corruption_detected", r.study.corruption_detected);
        row.set("power_cut_trials",
                static_cast<std::uint64_t>(r.study.power_cut_trials.size()));
        row.set("failed_power_cut_trials",
                static_cast<std::uint64_t>(r.study.failed_power_cut_trials));
        row.set("transient_trials",
                static_cast<std::uint64_t>(r.study.transient_trials.size()));
        row.set("failed_transient_trials",
                static_cast<std::uint64_t>(r.study.failed_transient_trials));
        row.set("transient_faults_injected", r.study.transient_faults_injected);
        row.set("transient_retries_absorbed", r.study.transient_retries_absorbed);
        row.set("degraded_trials",
                static_cast<std::uint64_t>(r.study.degraded_trials.size()));
        row.set("failed_degraded_trials",
                static_cast<std::uint64_t>(r.study.failed_degraded_trials));
        row.set("seconds", r.seconds);
        report::JsonValue degraded = report::JsonValue::array();
        for (const serve::DegradedModeTrial& t : r.study.degraded_trials) {
            report::JsonValue tr = report::JsonValue::object();
            tr.set("fail_from_write", t.fail_from_write);
            tr.set("entered_degraded", t.entered_degraded);
            tr.set("degraded_refusals", t.degraded_refusals);
            tr.set("recovered", t.recovered);
            tr.set("recovered_via_probe", t.recovered_via_probe);
            tr.set("digest_match", t.digest_match);
            degraded.push(std::move(tr));
        }
        row.set("degraded", std::move(degraded));
        cells.push(std::move(row));
    }
    doc.set("cells", std::move(cells));
    // Exact gates, not statistical ones: any failed trial drops the rate
    // below the baseline floor of 1.0 (tolerance 1.0).
    doc.set("power_cut_recovery_rate", rate(cut_failed, cut_trials));
    doc.set("transient_absorption_rate", rate(transient_failed, transient_trials));
    doc.set("degraded_recovery_rate", rate(degraded_failed, degraded_trials));
    doc.set("all_gates_passed", all_ok);

    std::ofstream out(out_path);
    out << doc.dump() << '\n';
    std::cout << "wrote " << out_path << '\n';

    if (!all_ok) {
        std::cerr << "FAIL: disk-fault resilience gates failed\n";
        return 1;
    }
    std::cout << "PASS: every power cut, transient burst, and ENOSPC episode "
                 "recovered bit-identically across the sweep\n";
    return 0;
}
