// Fault taxonomy and deterministic fault-schedule generation for the
// recovery orchestrator (see recovery_engine.hpp).
//
// Unlike availability_process.hpp — where components flip between up and
// down on their own Markov chains and *come back by themselves* — the
// recovery runtime distinguishes hardware from software state:
//
//   kCloudletCrash  the cloudlet reboots after a sampled repair time, but
//                   every VNF instance hosted on it loses its state and
//                   stays dead until a recovery policy re-instantiates it;
//   kRackFailure    a correlated crash of `span` consecutive cloudlet ids
//                   (shared power/switch domain), same instance-loss rule;
//   kTransientBlip  the cloudlet is unreachable for exactly one slot;
//                   instances survive (processes keep running);
//   kInstanceCrash  one replica of one placement dies and stays dead until
//                   recovered.
//
// A FaultSchedule is *data*, generated up front from a seed: the same
// (instance, decisions, config, seed) tuple always yields the same event
// sequence, so different recovery policies can be compared under identical
// fault schedules and Monte-Carlo replications can fan out over threads
// without sharing generator state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace vnfr::sim {

enum class FaultKind {
    kCloudletCrash,
    kInstanceCrash,
    kTransientBlip,
    kRackFailure,
};

const char* to_string(FaultKind kind);

struct FaultEvent {
    TimeSlot slot{0};
    FaultKind kind{FaultKind::kCloudletCrash};
    /// Crash/blip: the affected cloudlet. Rack: first cloudlet of the rack.
    CloudletId cloudlet{};
    /// Rack failures take down cloudlet ids [cloudlet, cloudlet + span).
    std::size_t span{1};
    /// Hardware repair time (crash/rack); blips always last one slot.
    TimeSlot down_slots{1};
    /// Instance crash: victim replica, addressed by the request's index in
    /// Instance::requests plus the (site, replica) slot of its placement at
    /// admission time. Recovery policies that respawn a replica reuse the
    /// same slot identity, so a later event can kill the respawn again. If
    /// the slot no longer exists (e.g. after a re-admission reshaped the
    /// placement) or is already dead, the event is a no-op.
    std::size_t request_index{0};
    std::size_t site{0};
    std::size_t replica{0};
};

/// Per-slot event probabilities. All rates are Bernoulli probabilities per
/// slot (per cloudlet for crash/blip, per active admitted request for
/// instance crashes, per slot overall for rack events).
struct FaultInjectorConfig {
    double cloudlet_crash_per_slot{0.01};
    double instance_crash_per_slot{0.02};
    double transient_blip_per_slot{0.01};
    double rack_failure_per_slot{0.0};
    /// Consecutive cloudlet ids sharing a rack (clamped to the fleet size).
    std::size_t rack_span{2};
    /// Mean hardware repair time for crashes/rack failures, in slots.
    double cloudlet_mttr_slots{4.0};
};

struct FaultSchedule {
    /// Events sorted by slot (ties keep generation order: cloudlet events
    /// before rack events before instance events within a slot).
    std::vector<FaultEvent> events;
    std::size_t cloudlet_crashes{0};
    std::size_t instance_crashes{0};
    std::size_t transient_blips{0};
    std::size_t rack_failures{0};
};

/// Generates the full fault schedule for one replay of `decisions` on
/// `instance`. Pure function of its arguments: the RNG is seeded from
/// `seed` alone, so replication k of a Monte-Carlo study passes
/// stream_seed(master_seed, k) and gets a thread-count-independent
/// schedule. Throws (via VNFR_CHECK) on rates outside [0, 1] or a
/// non-finite / non-positive MTTR; throws std::invalid_argument when
/// `decisions` does not parallel `instance.requests`.
FaultSchedule generate_fault_schedule(const core::Instance& instance,
                                      const std::vector<core::Decision>& decisions,
                                      const FaultInjectorConfig& config,
                                      std::uint64_t seed);

}  // namespace vnfr::sim
