#include "sfc/chain_reliability.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/math.hpp"

namespace vnfr::sfc {

namespace {

void check_inputs(double cloudlet_rel, std::span<const double> vnf_rels,
                  std::span<const double> compute_units) {
    common::require_open_unit(cloudlet_rel, "cloudlet reliability");
    if (vnf_rels.empty()) throw std::invalid_argument("chain: empty function list");
    if (compute_units.size() != vnf_rels.size())
        throw std::invalid_argument("chain: compute/reliability size mismatch");
    for (const double r : vnf_rels) common::require_open_unit(r, "VNF reliability");
    for (const double c : compute_units) {
        if (c <= 0.0) throw std::invalid_argument("chain: non-positive compute demand");
    }
}

/// log of prod_k (1 - (1 - r_k)^{n_k}), accumulated stably.
double log_functions_ok(std::span<const double> vnf_rels, std::span<const int> replicas) {
    double log_ok = 0.0;
    for (std::size_t k = 0; k < vnf_rels.size(); ++k) {
        if (replicas[k] < 1) throw std::invalid_argument("chain: non-positive replicas");
        const double p_ok = common::at_least_one(vnf_rels[k], replicas[k]);
        VNFR_CHECK(p_ok > 0.0, "function ", k, " success probability for log");
        log_ok += std::log(p_ok);
    }
    return log_ok;
}

}  // namespace

double chain_onsite_availability(double cloudlet_rel, std::span<const double> vnf_rels,
                                 std::span<const int> replicas) {
    if (replicas.size() != vnf_rels.size())
        throw std::invalid_argument("chain: replicas size mismatch");
    common::require_open_unit(cloudlet_rel, "cloudlet reliability");
    for (const double r : vnf_rels) common::require_open_unit(r, "VNF reliability");
    return cloudlet_rel * std::exp(log_functions_ok(vnf_rels, replicas));
}

std::optional<std::vector<int>> min_chain_replicas(double cloudlet_rel,
                                                   std::span<const double> vnf_rels,
                                                   std::span<const double> compute_units,
                                                   double requirement) {
    check_inputs(cloudlet_rel, vnf_rels, compute_units);
    common::require_open_unit(requirement, "reliability requirement");
    if (cloudlet_rel <= requirement) return std::nullopt;

    const std::size_t k = vnf_rels.size();
    std::vector<int> replicas(k, 1);

    const auto availability = [&] {
        return chain_onsite_availability(cloudlet_rel, vnf_rels, replicas);
    };

    // Greedy: add the replica with the largest availability gain per
    // compute unit. Each step strictly increases availability toward
    // cloudlet_rel > requirement, so this terminates.
    while (availability() < requirement) {
        std::size_t best = k;
        double best_score = 0.0;
        for (std::size_t i = 0; i < k; ++i) {
            const double before = common::at_least_one(vnf_rels[i], replicas[i]);
            const double after = common::at_least_one(vnf_rels[i], replicas[i] + 1);
            VNFR_CHECK(before > 0.0 && after > 0.0, "replica gain log operands for function ",
                       i);
            const double score = (std::log(after) - std::log(before)) / compute_units[i];
            if (score > best_score) {
                best_score = score;
                best = i;
            }
        }
        if (best == k) {
            // All gains numerically zero yet requirement unmet: impossible
            // since availability -> cloudlet_rel > requirement, but guard
            // against pathological rounding.
            return std::nullopt;
        }
        ++replicas[best];
    }

    // Trim: drop any replica whose removal keeps the requirement, most
    // expensive functions first, so the result is locally minimal.
    bool trimmed = true;
    while (trimmed) {
        trimmed = false;
        std::size_t best = k;
        double best_cost = 0.0;
        for (std::size_t i = 0; i < k; ++i) {
            if (replicas[i] <= 1) continue;
            --replicas[i];
            const bool still_ok = availability() >= requirement;
            ++replicas[i];
            if (still_ok && compute_units[i] > best_cost) {
                best_cost = compute_units[i];
                best = i;
            }
        }
        if (best != k) {
            --replicas[best];
            trimmed = true;
        }
    }
    return replicas;
}

std::optional<std::vector<int>> exhaustive_chain_replicas(
    double cloudlet_rel, std::span<const double> vnf_rels,
    std::span<const double> compute_units, double requirement, int max_replicas) {
    check_inputs(cloudlet_rel, vnf_rels, compute_units);
    common::require_open_unit(requirement, "reliability requirement");
    if (vnf_rels.size() > 5)
        throw std::invalid_argument("exhaustive_chain_replicas: chain too long");
    if (max_replicas < 1)
        throw std::invalid_argument("exhaustive_chain_replicas: max_replicas < 1");
    if (cloudlet_rel <= requirement) return std::nullopt;

    const std::size_t k = vnf_rels.size();
    std::vector<int> current(k, 1);
    std::optional<std::vector<int>> best;
    double best_cost = std::numeric_limits<double>::infinity();

    const auto recurse = [&](auto&& self, std::size_t pos) -> void {
        if (pos == k) {
            if (chain_onsite_availability(cloudlet_rel, vnf_rels, current) >= requirement) {
                const double cost = chain_compute(compute_units, current);
                if (cost < best_cost) {
                    best_cost = cost;
                    best = current;
                }
            }
            return;
        }
        for (int n = 1; n <= max_replicas; ++n) {
            current[pos] = n;
            self(self, pos + 1);
        }
        current[pos] = 1;
    };
    recurse(recurse, 0);
    return best;
}

double chain_compute(std::span<const double> compute_units, std::span<const int> replicas) {
    if (compute_units.size() != replicas.size())
        throw std::invalid_argument("chain_compute: size mismatch");
    double total = 0.0;
    for (std::size_t i = 0; i < compute_units.size(); ++i) {
        total += compute_units[i] * replicas[i];
    }
    return total;
}

}  // namespace vnfr::sfc
