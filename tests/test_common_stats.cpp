#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace vnfr::common {
namespace {

TEST(RunningStats, EmptyIsZero) {
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, SingleValue) {
    RunningStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
    RunningStats s;
    for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance of this classic set is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MatchesTwoPassComputation) {
    Rng rng(1);
    std::vector<double> values;
    RunningStats s;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-10, 10);
        values.push_back(v);
        s.add(v);
    }
    double mean = 0.0;
    for (const double v : values) mean += v;
    mean /= static_cast<double>(values.size());
    double var = 0.0;
    for (const double v : values) var += (v - mean) * (v - mean);
    var /= static_cast<double>(values.size() - 1);
    EXPECT_NEAR(s.mean(), mean, 1e-10);
    EXPECT_NEAR(s.variance(), var, 1e-9);
}

TEST(RunningStats, MergeEqualsSequential) {
    Rng rng(2);
    RunningStats all;
    RunningStats a;
    RunningStats b;
    for (int i = 0; i < 500; ++i) {
        const double v = rng.normal(3, 2);
        all.add(v);
        (i % 2 == 0 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
    RunningStats a;
    a.add(1.0);
    a.add(2.0);
    RunningStats b;
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
    Rng rng(3);
    RunningStats small;
    RunningStats large;
    for (int i = 0; i < 10; ++i) small.add(rng.normal(0, 1));
    for (int i = 0; i < 1000; ++i) large.add(rng.normal(0, 1));
    EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(BootstrapCi, ContainsTrueMeanMostOfTheTime) {
    Rng data_rng(5);
    Rng boot_rng(6);
    int covered = 0;
    const int trials = 60;
    for (int trial = 0; trial < trials; ++trial) {
        std::vector<double> sample;
        for (int i = 0; i < 40; ++i) sample.push_back(data_rng.normal(10.0, 2.0));
        const Interval ci = bootstrap_mean_ci(sample, 0.95, 400, boot_rng);
        if (ci.contains(10.0)) ++covered;
        EXPECT_LT(ci.lo, ci.hi);
    }
    // Nominal coverage 95%; allow generous slack for bootstrap + MC noise.
    EXPECT_GE(covered, trials * 80 / 100);
}

TEST(BootstrapCi, ShrinksWithSampleSize) {
    Rng data_rng(7);
    Rng boot_rng(8);
    std::vector<double> small;
    std::vector<double> large;
    for (int i = 0; i < 10; ++i) small.push_back(data_rng.normal(0, 1));
    for (int i = 0; i < 1000; ++i) large.push_back(data_rng.normal(0, 1));
    const Interval small_ci = bootstrap_mean_ci(small, 0.95, 500, boot_rng);
    const Interval large_ci = bootstrap_mean_ci(large, 0.95, 500, boot_rng);
    EXPECT_GT(small_ci.width(), large_ci.width());
}

TEST(BootstrapCi, DeterministicGivenRng) {
    const std::vector<double> sample{1, 2, 3, 4, 5, 6, 7, 8};
    Rng a(9);
    Rng b(9);
    const Interval ia = bootstrap_mean_ci(sample, 0.9, 200, a);
    const Interval ib = bootstrap_mean_ci(sample, 0.9, 200, b);
    EXPECT_DOUBLE_EQ(ia.lo, ib.lo);
    EXPECT_DOUBLE_EQ(ia.hi, ib.hi);
}

TEST(BootstrapCi, Validation) {
    Rng rng(1);
    const std::vector<double> empty;
    const std::vector<double> one{1.0};
    EXPECT_THROW(bootstrap_mean_ci(empty, 0.95, 100, rng), std::invalid_argument);
    EXPECT_THROW(bootstrap_mean_ci(one, 0.0, 100, rng), std::invalid_argument);
    EXPECT_THROW(bootstrap_mean_ci(one, 1.0, 100, rng), std::invalid_argument);
    EXPECT_THROW(bootstrap_mean_ci(one, 0.95, 0, rng), std::invalid_argument);
}

TEST(MannWhitney, SameDistributionGivesLargeP) {
    Rng rng(11);
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < 30; ++i) {
        a.push_back(rng.normal(5, 1));
        b.push_back(rng.normal(5, 1));
    }
    EXPECT_GT(mann_whitney_p(a, b), 0.01);
}

TEST(MannWhitney, ShiftedDistributionsGiveSmallP) {
    Rng rng(13);
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < 30; ++i) {
        a.push_back(rng.normal(5, 1));
        b.push_back(rng.normal(8, 1));
    }
    EXPECT_LT(mann_whitney_p(a, b), 1e-4);
}

TEST(MannWhitney, SymmetricInArguments) {
    Rng rng(17);
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < 20; ++i) {
        a.push_back(rng.uniform(0, 1));
        b.push_back(rng.uniform(0.3, 1.3));
    }
    EXPECT_NEAR(mann_whitney_p(a, b), mann_whitney_p(b, a), 1e-12);
}

TEST(MannWhitney, AllTiedIsInconclusive) {
    const std::vector<double> a(10, 3.0);
    const std::vector<double> b(12, 3.0);
    EXPECT_DOUBLE_EQ(mann_whitney_p(a, b), 1.0);
}

TEST(MannWhitney, HandlesTiesGracefully) {
    // Discrete data with heavy ties; p must stay in [0, 1].
    const std::vector<double> a{1, 1, 2, 2, 3, 3, 3, 4};
    const std::vector<double> b{2, 2, 3, 3, 4, 4, 4, 5};
    const double p = mann_whitney_p(a, b);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
}

TEST(MannWhitney, RejectsEmptySamples) {
    const std::vector<double> empty;
    const std::vector<double> one{1.0};
    EXPECT_THROW(mann_whitney_p(empty, one), std::invalid_argument);
    EXPECT_THROW(mann_whitney_p(one, empty), std::invalid_argument);
}

TEST(Percentile, Median) {
    const std::vector<double> v{3, 1, 2};
    EXPECT_DOUBLE_EQ(percentile(v, 50), 2.0);
}

TEST(Percentile, Extremes) {
    const std::vector<double> v{5, 1, 9, 3};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 9.0);
}

TEST(Percentile, Interpolates) {
    const std::vector<double> v{0, 10};
    EXPECT_DOUBLE_EQ(percentile(v, 25), 2.5);
    EXPECT_DOUBLE_EQ(percentile(v, 75), 7.5);
}

TEST(Percentile, SingleElement) {
    const std::vector<double> v{7};
    EXPECT_DOUBLE_EQ(percentile(v, 10), 7.0);
    EXPECT_DOUBLE_EQ(percentile(v, 90), 7.0);
}

TEST(Percentile, RejectsBadInput) {
    const std::vector<double> empty;
    EXPECT_THROW(percentile(empty, 50), std::invalid_argument);
    const std::vector<double> v{1.0};
    EXPECT_THROW(percentile(v, -1), std::invalid_argument);
    EXPECT_THROW(percentile(v, 101), std::invalid_argument);
}

TEST(Histogram, BinsValues) {
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);   // bin 0
    h.add(3.0);   // bin 1
    h.add(9.9);   // bin 4
    EXPECT_EQ(h.bin_count(0), 1u);
    EXPECT_EQ(h.bin_count(1), 1u);
    EXPECT_EQ(h.bin_count(4), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ClampsOutliers) {
    Histogram h(0.0, 1.0, 2);
    h.add(-5.0);
    h.add(42.0);
    EXPECT_EQ(h.bin_count(0), 1u);
    EXPECT_EQ(h.bin_count(1), 1u);
}

TEST(Histogram, BinEdges) {
    Histogram h(2.0, 6.0, 4);
    EXPECT_DOUBLE_EQ(h.bin_lower(0), 2.0);
    EXPECT_DOUBLE_EQ(h.bin_upper(0), 3.0);
    EXPECT_DOUBLE_EQ(h.bin_lower(3), 5.0);
    EXPECT_DOUBLE_EQ(h.bin_upper(3), 6.0);
}

TEST(Histogram, RejectsBadConstruction) {
    EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
    EXPECT_THROW(Histogram(1.0, 1.0, 3), std::invalid_argument);
    EXPECT_THROW(Histogram(2.0, 1.0, 3), std::invalid_argument);
}

}  // namespace
}  // namespace vnfr::common
