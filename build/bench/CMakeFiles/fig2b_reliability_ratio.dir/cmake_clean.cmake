file(REMOVE_RECURSE
  "CMakeFiles/fig2b_reliability_ratio.dir/fig2b_reliability_ratio.cpp.o"
  "CMakeFiles/fig2b_reliability_ratio.dir/fig2b_reliability_ratio.cpp.o.d"
  "fig2b_reliability_ratio"
  "fig2b_reliability_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_reliability_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
