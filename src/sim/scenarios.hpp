// Canonical experiment environments shared by the figure benches and the
// regression tests, so a golden CSV pins down exactly the configuration a
// bench sweeps.
#pragma once

#include <cstddef>

#include "core/instance.hpp"
#include "sim/experiment.hpp"

namespace vnfr::sim {

/// The paper's Section VI evaluation environment with the request count as
/// the free parameter (Figure 1 sweeps it; Figure 2 fixes it at the
/// saturated end): GEANT topology, 8 cloudlets with capacity in [40, 60]
/// and reliability in [0.95, 0.999], horizon 24, durations in [4, 16],
/// requirements in [0.90, 0.97], payment rates in [1, 5].
core::InstanceConfig paper_environment(std::size_t request_count);

/// A shrunken paper environment for the fixed-seed golden regression
/// tests: 4 cloudlets, tighter capacities, horizon 12 — runs in well under
/// a second per sweep point yet still saturates enough for the admission
/// policies to separate.
core::InstanceConfig golden_environment(std::size_t request_count);

/// InstanceFactory over make_instance(config, rng); the returned callable
/// is stateless apart from the copied config and therefore safe to invoke
/// from several replication threads at once.
InstanceFactory make_config_factory(core::InstanceConfig config);

}  // namespace vnfr::sim
