// Figure 2(b): impact of the cloudlet-reliability variation
// K = rc_max / rc_min.
//
// Protocol from Section VI.C: fix rc_max, lower rc_min to raise K;
// cloudlet reliabilities are uniform on [rc_min, rc_max]. Expected shape:
// revenue decreases as K grows (weaker cloudlets force more backups), and
// the greedy baseline degrades fastest — it exhausts the few reliable
// cloudlets and then fails to admit anything, while the primal-dual
// algorithms keep utilizing the failure-prone ones.
//
// K is capped so rc_min stays above the workload's requirement floor under
// the on-site scheme's feasibility precondition r(c) > R for at least some
// pairs; the off-site series is the paper's focus here.
#include "bench_common.hpp"

using namespace vnfr;

int main() {
    const std::vector<double> sweep = bench::quick_mode()
                                          ? std::vector<double>{1.001, 1.05}
                                          : std::vector<double>{1.001, 1.01, 1.02, 1.05,
                                                                1.08, 1.10};
    const std::size_t requests = bench::quick_mode() ? 200 : 600;

    const std::vector<sim::Algorithm> algorithms{
        sim::Algorithm::kOffsitePrimalDual, sim::Algorithm::kOffsiteGreedy,
        sim::Algorithm::kOnsitePrimalDual, sim::Algorithm::kOnsiteGreedy};

    bench::print_thread_note();
    std::vector<bench::SeriesRow> rows;
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const double k = sweep[i];
        core::InstanceConfig env = bench::paper_environment(requests);
        env.cloudlets.reliability_max = 0.999;
        env.set_reliability_ratio(k);
        // Requirements stay below the strongest cloudlets so the on-site
        // scheme remains feasible somewhere even at large K.
        env.workload.requirement_min = 0.90;
        env.workload.requirement_max = 0.97;

        sim::ExperimentConfig cfg;
        cfg.algorithms = algorithms;
        cfg.seeds = bench::quick_mode() ? 2 : 5;
        cfg.base_seed = bench::scenario_seed("fig2b", i);
        rows.push_back({k * 100.0, sim::run_experiment(bench::make_factory(env), cfg)});
    }
    bench::print_series("Figure 2(b): revenue vs cloudlet-reliability ratio K (x100, n = " +
                            std::to_string(requests) + ")",
                        "K*100", algorithms, rows, /*with_offline_bound=*/false);
    bench::print_final_gap(rows);
    return 0;
}
