file(REMOVE_RECURSE
  "CMakeFiles/sfc_chains.dir/sfc_chains.cpp.o"
  "CMakeFiles/sfc_chains.dir/sfc_chains.cpp.o.d"
  "sfc_chains"
  "sfc_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfc_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
