// LP presolve: cheap, provably safe reductions applied before the simplex.
//
//  * substitute out fixed variables (lower == upper),
//  * drop empty rows (detecting trivial infeasibility),
//  * turn singleton rows into variable bounds (fixing on equality),
// iterated to a fixpoint. On the offline models this strips the columns
// branch-and-bound has fixed and the rows they empty, shrinking every node
// LP.
#pragma once

#include <cstddef>
#include <vector>

#include "opt/lp.hpp"

namespace vnfr::opt {

struct PresolveResult {
    /// The reduced program (valid only when !infeasible).
    LinearProgram reduced;
    /// Trivial infeasibility detected (empty row that cannot hold, or
    /// contradictory singleton bounds).
    bool infeasible{false};
    /// reduced variable index -> original variable index.
    std::vector<std::size_t> kept;
    /// Original-indexed values of substituted-out variables (meaningful
    /// where `is_fixed` is set).
    std::vector<double> fixed_values;
    std::vector<char> is_fixed;
    /// Objective contribution of the substituted variables: the reduced
    /// optimum plus this offset equals the original optimum.
    double objective_offset{0};
    std::size_t removed_rows{0};
    std::size_t removed_variables{0};

    /// Lifts a reduced-space solution back to the original variable space.
    [[nodiscard]] std::vector<double> restore(const std::vector<double>& reduced_x) const;
};

/// Applies the reductions to `lp`. The reduced program's optimum (plus
/// `objective_offset`) equals the original optimum, and restore() maps
/// solutions back.
PresolveResult presolve(const LinearProgram& lp);

}  // namespace vnfr::opt
