// The set F of VNF types offered by the provider.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "vnf/vnf_type.hpp"

namespace vnfr::vnf {

/// Immutable-after-build registry of VNF types, indexed by VnfTypeId.
class Catalog {
  public:
    /// Registers a type; returns its id. Throws std::invalid_argument if the
    /// compute demand is non-positive or the reliability is outside (0, 1).
    VnfTypeId add(std::string name, double compute_units, double reliability);

    [[nodiscard]] std::size_t size() const { return types_.size(); }
    [[nodiscard]] bool empty() const { return types_.empty(); }

    /// Throws std::out_of_range for unknown ids.
    [[nodiscard]] const VnfType& get(VnfTypeId id) const;

    [[nodiscard]] std::span<const VnfType> types() const { return types_; }

    /// Convenience accessors matching the paper's c(f_i) / r(f_i) notation.
    [[nodiscard]] double compute_units(VnfTypeId id) const { return get(id).compute_units; }
    [[nodiscard]] double reliability(VnfTypeId id) const { return get(id).reliability; }

    /// The paper's evaluation setting: 10 VNF types with reliabilities drawn
    /// from [0.9, 0.9999] and compute demands from {1, 2, 3} [15]. Drawn
    /// deterministically from `rng`.
    static Catalog paper_default(common::Rng& rng);

  private:
    std::vector<VnfType> types_;
};

}  // namespace vnfr::vnf
