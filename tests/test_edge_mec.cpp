#include "edge/mec_network.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "net/generators.hpp"
#include "net/topology_zoo.hpp"

namespace vnfr::edge {
namespace {

TEST(MecNetwork, AddCloudletBasics) {
    MecNetwork mec(net::ring(4));
    const CloudletId id = mec.add_cloudlet(NodeId{1}, 100.0, 0.99);
    EXPECT_EQ(mec.cloudlet_count(), 1u);
    const Cloudlet& c = mec.cloudlet(id);
    EXPECT_EQ(c.node, NodeId{1});
    EXPECT_DOUBLE_EQ(c.capacity, 100.0);
    EXPECT_DOUBLE_EQ(c.reliability, 0.99);
    EXPECT_EQ(mec.cloudlet_at(NodeId{1}), id);
    EXPECT_FALSE(mec.cloudlet_at(NodeId{0}).valid());
}

TEST(MecNetwork, RejectsInvalidCloudlets) {
    MecNetwork mec(net::ring(4));
    EXPECT_THROW(mec.add_cloudlet(NodeId{9}, 10.0, 0.9), std::invalid_argument);
    EXPECT_THROW(mec.add_cloudlet(NodeId{0}, 0.0, 0.9), std::invalid_argument);
    EXPECT_THROW(mec.add_cloudlet(NodeId{0}, 10.0, 1.0), std::invalid_argument);
    mec.add_cloudlet(NodeId{0}, 10.0, 0.9);
    EXPECT_THROW(mec.add_cloudlet(NodeId{0}, 10.0, 0.9), std::invalid_argument);
}

TEST(MecNetwork, AttachRandomCloudlets) {
    common::Rng rng(5);
    MecNetwork mec(net::load_topology("geant"));
    CloudletAttachment spec;
    spec.count = 8;
    spec.capacity_min = 50;
    spec.capacity_max = 60;
    spec.reliability_min = 0.95;
    spec.reliability_max = 0.99;
    mec.attach_random_cloudlets(spec, rng);
    EXPECT_EQ(mec.cloudlet_count(), 8u);
    std::set<std::int64_t> nodes;
    for (const Cloudlet& c : mec.cloudlets()) {
        nodes.insert(c.node.value);
        EXPECT_GE(c.capacity, 50.0);
        EXPECT_LE(c.capacity, 60.0);
        EXPECT_GE(c.reliability, 0.95);
        EXPECT_LE(c.reliability, 0.99);
    }
    EXPECT_EQ(nodes.size(), 8u) << "cloudlets must sit on distinct APs";
}

TEST(MecNetwork, AttachRejectsTooMany) {
    common::Rng rng(5);
    MecNetwork mec(net::ring(4));
    CloudletAttachment spec;
    spec.count = 5;
    EXPECT_THROW(mec.attach_random_cloudlets(spec, rng), std::invalid_argument);
}

TEST(MecNetwork, AttachRejectsBadRanges) {
    common::Rng rng(5);
    MecNetwork mec(net::ring(8));
    CloudletAttachment spec;
    spec.count = 2;
    spec.capacity_min = 10;
    spec.capacity_max = 5;
    EXPECT_THROW(mec.attach_random_cloudlets(spec, rng), std::invalid_argument);
    spec.capacity_max = 20;
    spec.reliability_min = 0.99;
    spec.reliability_max = 0.95;
    EXPECT_THROW(mec.attach_random_cloudlets(spec, rng), std::invalid_argument);
}

TEST(MecNetwork, CapacityAndReliabilityVectors) {
    MecNetwork mec(net::ring(4));
    mec.add_cloudlet(NodeId{0}, 10.0, 0.9);
    mec.add_cloudlet(NodeId{2}, 20.0, 0.95);
    const auto caps = mec.capacities();
    const auto rels = mec.reliabilities();
    ASSERT_EQ(caps.size(), 2u);
    EXPECT_DOUBLE_EQ(caps[0], 10.0);
    EXPECT_DOUBLE_EQ(caps[1], 20.0);
    EXPECT_DOUBLE_EQ(rels[0], 0.9);
    EXPECT_DOUBLE_EQ(rels[1], 0.95);
}

TEST(MecNetwork, HopDistanceOnRing) {
    MecNetwork mec(net::ring(6));
    const CloudletId a = mec.add_cloudlet(NodeId{0}, 10.0, 0.9);
    const CloudletId b = mec.add_cloudlet(NodeId{3}, 10.0, 0.9);
    const CloudletId c = mec.add_cloudlet(NodeId{1}, 10.0, 0.9);
    EXPECT_EQ(mec.hop_distance(a, b), 3);
    EXPECT_EQ(mec.hop_distance(a, c), 1);
    EXPECT_EQ(mec.hop_distance(a, a), 0);
    EXPECT_EQ(mec.hop_distance(b, a), 3);
}

TEST(MecNetwork, CloudletLookupValidation) {
    MecNetwork mec(net::ring(4));
    mec.add_cloudlet(NodeId{0}, 10.0, 0.9);
    EXPECT_THROW((void)mec.cloudlet(CloudletId{5}), std::out_of_range);
    EXPECT_THROW((void)mec.cloudlet_at(NodeId{9}), std::invalid_argument);
}

}  // namespace
}  // namespace vnfr::edge
