// Behavioral tests for the crash-safe AdmissionController: equivalence
// with the bare online scheduler, durable restart (WAL replay and
// snapshot), idempotent resubmission, and the overload guard's shedding
// policy.
#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <vector>

#include "common/contracts.hpp"
#include "core/onsite_primal_dual.hpp"
#include "helpers.hpp"
#include "serve/admission_controller.hpp"

namespace vnfr::serve {
namespace {

using vnfr::testing::make_request;
using vnfr::testing::small_instance;

/// Creates (or wipes) a scratch state directory under the test temp root.
std::string fresh_dir(const std::string& name) {
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

/// A deterministic stream: type-0 requests with varied windows and
/// payments, some priced to be rejected.
std::vector<workload::Request> sample_stream(std::size_t n, TimeSlot horizon) {
    std::vector<workload::Request> reqs;
    reqs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto id = static_cast<std::int64_t>(i);
        // Non-decreasing arrivals (Instance::validate requires it), windows
        // always inside the horizon.
        const TimeSlot arrival =
            static_cast<TimeSlot>((i * static_cast<std::size_t>(horizon - 3)) / n);
        const TimeSlot duration = 1 + static_cast<TimeSlot>(i % 3);
        const double payment = 1.0 + static_cast<double>((i * 7) % 13);
        reqs.push_back(make_request(id, 0, 0.90, arrival, duration, payment));
    }
    return reqs;
}

core::Instance controller_instance(std::size_t n_requests) {
    return small_instance({0.98, 0.97}, 6.0, 8, sample_stream(n_requests, 8));
}

ServeConfig config_for(const std::string& dir, std::size_t checkpoint_every = 64,
                       std::size_t queue_capacity = 256) {
    ServeConfig cfg;
    cfg.data_dir = dir;
    cfg.checkpoint_every = checkpoint_every;
    cfg.queue_capacity = queue_capacity;
    return cfg;
}

/// Submits the whole trace in order and drains after every submit.
void run_trace(AdmissionController& ctl, const std::vector<workload::Request>& reqs) {
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        ctl.submit(i, reqs[i]);
        ctl.drain();
    }
}

TEST(ServeController, MatchesBareSchedulerWhenNothingSheds) {
    const core::Instance inst = controller_instance(30);

    core::OnsitePrimalDual bare(inst);
    const core::ScheduleResult expected = core::run_online(inst, bare);

    AdmissionController ctl(inst, core::Scheme::kOnsite,
                            config_for(fresh_dir("serve_equiv"), 8));
    std::vector<ProcessedOutcome> outcomes;
    for (std::size_t i = 0; i < inst.requests.size(); ++i) {
        EXPECT_EQ(ctl.submit(i, inst.requests[i]), SubmitResult::kQueued);
        for (ProcessedOutcome& o : ctl.drain()) outcomes.push_back(std::move(o));
    }

    ASSERT_EQ(outcomes.size(), expected.decisions.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const core::Decision& got = outcomes[i].decision;
        const core::Decision& want = expected.decisions[i];
        EXPECT_EQ(got.admitted, want.admitted) << "request " << i;
        EXPECT_EQ(got.reject_reason, want.reject_reason) << "request " << i;
        if (want.admitted) {
            ASSERT_EQ(got.placement.sites.size(), want.placement.sites.size());
            for (std::size_t s = 0; s < want.placement.sites.size(); ++s) {
                EXPECT_EQ(got.placement.sites[s].cloudlet,
                          want.placement.sites[s].cloudlet);
                EXPECT_EQ(got.placement.sites[s].replicas,
                          want.placement.sites[s].replicas);
            }
        }
    }
    EXPECT_EQ(ctl.metrics().revenue, expected.revenue);  // bit-equal
    EXPECT_EQ(ctl.metrics().admitted, expected.admitted);
    EXPECT_EQ(ctl.metrics().shed, 0u);
}

TEST(ServeController, RestartFromWalReplayIsBitIdentical) {
    const core::Instance inst = controller_instance(20);
    const std::string dir = fresh_dir("serve_walreplay");

    // checkpoint_every larger than the trace: everything lives in wal-0.
    std::optional<AdmissionController> ctl(std::in_place, inst,
                                           core::Scheme::kOnsite,
                                           config_for(dir, 1000));
    run_trace(*ctl, inst.requests);
    const std::uint64_t digest = ctl->state_digest();
    const ServeMetrics metrics = ctl->metrics();
    EXPECT_EQ(ctl->wal_generation(), 0u);
    ctl.reset();  // "crash" without a checkpoint

    AdmissionController revived(inst, core::Scheme::kOnsite, config_for(dir, 1000));
    EXPECT_EQ(revived.state_digest(), digest);
    EXPECT_EQ(revived.metrics().processed, metrics.processed);
    EXPECT_EQ(revived.metrics().revenue, metrics.revenue);
    EXPECT_EQ(revived.admitted_records().size(), metrics.admitted);
    EXPECT_EQ(revived.resume_cursor(), inst.requests.size());
}

TEST(ServeController, RestartFromSnapshotIsBitIdentical) {
    const core::Instance inst = controller_instance(20);
    const std::string dir = fresh_dir("serve_snaprestart");

    std::optional<AdmissionController> ctl(std::in_place, inst,
                                           core::Scheme::kOnsite, config_for(dir));
    run_trace(*ctl, inst.requests);
    ctl->checkpoint();
    const std::uint64_t digest = ctl->state_digest();
    const std::uint64_t generation = ctl->wal_generation();
    EXPECT_GE(generation, 1u);
    ctl.reset();

    AdmissionController revived(inst, core::Scheme::kOnsite, config_for(dir));
    EXPECT_EQ(revived.state_digest(), digest);
    EXPECT_EQ(revived.wal_generation(), generation);
    EXPECT_EQ(revived.wal_records(), 0u);  // fresh generation after snapshot
}

TEST(ServeController, RecoveredControllerContinuesLikeUninterrupted) {
    const core::Instance inst = controller_instance(24);
    const std::string baseline_dir = fresh_dir("serve_cont_base");
    const std::string crash_dir = fresh_dir("serve_cont_crash");

    AdmissionController baseline(inst, core::Scheme::kOnsite,
                                 config_for(baseline_dir, 5));
    run_trace(baseline, inst.requests);

    // Crashed run: process half, drop the controller, revive, finish.
    std::optional<AdmissionController> ctl(std::in_place, inst,
                                           core::Scheme::kOnsite,
                                           config_for(crash_dir, 5));
    for (std::size_t i = 0; i < 12; ++i) {
        ctl->submit(i, inst.requests[i]);
        ctl->drain();
    }
    ctl.reset();
    AdmissionController revived(inst, core::Scheme::kOnsite, config_for(crash_dir, 5));
    for (std::size_t i = revived.resume_cursor(); i < inst.requests.size(); ++i) {
        revived.submit(i, inst.requests[i]);
        revived.drain();
    }

    EXPECT_EQ(revived.state_digest(), baseline.state_digest());
    EXPECT_EQ(revived.metrics().revenue, baseline.metrics().revenue);
}

TEST(ServeController, ResubmittingCoveredSeqsIsIdempotent) {
    const core::Instance inst = controller_instance(12);
    AdmissionController ctl(inst, core::Scheme::kOnsite,
                            config_for(fresh_dir("serve_idem")));
    run_trace(ctl, inst.requests);
    const std::uint64_t digest = ctl.state_digest();
    const ServeMetrics metrics = ctl.metrics();

    // A driver replaying its whole input after a crash must not change
    // anything: every seq is covered.
    for (std::size_t i = 0; i < inst.requests.size(); ++i) {
        EXPECT_EQ(ctl.submit(i, inst.requests[i]), SubmitResult::kAlreadyCovered);
    }
    ctl.drain();
    EXPECT_EQ(ctl.state_digest(), digest);
    EXPECT_EQ(ctl.metrics().processed, metrics.processed);
    EXPECT_EQ(ctl.metrics().admitted, metrics.admitted);
    EXPECT_EQ(ctl.admitted_records().size(), metrics.admitted);
}

TEST(ServeController, ShedsLowestPaymentQueuedRequest) {
    const core::Instance inst = controller_instance(0);
    AdmissionController ctl(inst, core::Scheme::kOnsite,
                            config_for(fresh_dir("serve_shed"), 64, 2));

    EXPECT_EQ(ctl.submit(0, make_request(0, 0, 0.9, 0, 1, 5.0)), SubmitResult::kQueued);
    EXPECT_EQ(ctl.submit(1, make_request(1, 0, 0.9, 0, 1, 1.0)), SubmitResult::kQueued);
    // Queue full; the cheapest of {5, 1, incoming 9} is queued seq 1.
    EXPECT_EQ(ctl.submit(2, make_request(2, 0, 0.9, 0, 1, 9.0)),
              SubmitResult::kShedQueued);
    EXPECT_EQ(ctl.metrics().shed, 1u);
    EXPECT_EQ(ctl.metrics().shed_revenue, 1.0);
    EXPECT_TRUE(ctl.is_covered(1));  // shed outcome is durable

    // Incoming is now the cheapest: it sheds itself.
    EXPECT_EQ(ctl.submit(3, make_request(3, 0, 0.9, 0, 1, 0.5)),
              SubmitResult::kShedIncoming);
    EXPECT_EQ(ctl.metrics().shed, 2u);
    EXPECT_EQ(ctl.metrics().shed_revenue, 1.5);

    ctl.drain();
    EXPECT_EQ(ctl.metrics().processed, 2u);  // seqs 0 and 2 decided
    EXPECT_EQ(ctl.submit(1, make_request(1, 0, 0.9, 0, 1, 1.0)),
              SubmitResult::kAlreadyCovered);
    EXPECT_EQ(ctl.resume_cursor(), 4u);
}

TEST(ServeController, PaymentTiePrefersKeepingTheOlderRequest) {
    const core::Instance inst = controller_instance(0);
    AdmissionController ctl(inst, core::Scheme::kOnsite,
                            config_for(fresh_dir("serve_tie"), 64, 1));
    EXPECT_EQ(ctl.submit(0, make_request(0, 0, 0.9, 0, 1, 5.0)), SubmitResult::kQueued);
    EXPECT_EQ(ctl.submit(1, make_request(1, 0, 0.9, 0, 1, 5.0)),
              SubmitResult::kShedIncoming);
    EXPECT_FALSE(ctl.is_covered(0));
    EXPECT_TRUE(ctl.is_covered(1));
}

TEST(ServeController, OutOfOrderUncoveredSubmitViolatesContract) {
    const core::Instance inst = controller_instance(0);
    AdmissionController ctl(inst, core::Scheme::kOnsite,
                            config_for(fresh_dir("serve_order")));
    EXPECT_EQ(ctl.submit(5, make_request(5, 0, 0.9, 0, 1, 2.0)), SubmitResult::kQueued);
    EXPECT_THROW(ctl.submit(3, make_request(3, 0, 0.9, 0, 1, 2.0)),
                 common::ContractViolation);
}

TEST(ServeController, RefusesStateFromADifferentScheme) {
    const core::Instance inst = controller_instance(8);
    const std::string dir = fresh_dir("serve_scheme_mix");
    {
        AdmissionController ctl(inst, core::Scheme::kOnsite, config_for(dir));
        run_trace(ctl, inst.requests);
        ctl.checkpoint();
    }
    EXPECT_THROW(AdmissionController(inst, core::Scheme::kOffsite, config_for(dir)),
                 CorruptStateError);
}

TEST(ServeController, RejectsInvalidConfig) {
    const core::Instance inst = controller_instance(0);
    ServeConfig no_dir;
    no_dir.data_dir = fresh_dir("serve_cfg") + "/does-not-exist";
    EXPECT_THROW(AdmissionController(inst, core::Scheme::kOnsite, no_dir),
                 std::invalid_argument);
    EXPECT_THROW(AdmissionController(inst, core::Scheme::kOnsite,
                                     config_for(fresh_dir("serve_cfg0"), 0)),
                 std::invalid_argument);
    EXPECT_THROW(AdmissionController(inst, core::Scheme::kOnsite,
                                     config_for(fresh_dir("serve_cfg1"), 64, 0)),
                 std::invalid_argument);
}

TEST(ServeController, CheckpointRotatesAndRemovesOldGenerations) {
    const core::Instance inst = controller_instance(20);
    const std::string dir = fresh_dir("serve_rotate");
    AdmissionController ctl(inst, core::Scheme::kOnsite, config_for(dir, 4));
    run_trace(ctl, inst.requests);
    EXPECT_GE(ctl.wal_generation(), 4u);  // 20 records at cadence 4
    // Exactly one WAL file remains: the current generation.
    std::size_t wal_files = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.starts_with("wal-")) {
            ++wal_files;
            EXPECT_EQ(name, "wal-" + std::to_string(ctl.wal_generation()) + ".log");
        }
    }
    EXPECT_EQ(wal_files, 1u);
    EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(dir) / "snapshot.bin"));
}

TEST(ServeController, CrashInjectionFiresAfterExactlyNAppends) {
    const core::Instance inst = controller_instance(10);
    const std::string dir = fresh_dir("serve_crashhook");
    std::optional<AdmissionController> ctl(std::in_place, inst,
                                           core::Scheme::kOnsite,
                                           config_for(dir, 1000));
    ctl->crash_after_records(3);
    std::size_t submitted = 0;
    try {
        for (std::size_t i = 0; i < inst.requests.size(); ++i) {
            ctl->submit(i, inst.requests[i]);
            ++submitted;
            ctl->drain();
        }
        FAIL() << "expected CrashInjected";
    } catch (const CrashInjected&) {
        EXPECT_EQ(submitted, 3u);  // one WAL record per decided request here
    }
    ctl.reset();

    // The third record was durable before the "crash": recovery sees it.
    AdmissionController revived(inst, core::Scheme::kOnsite, config_for(dir, 1000));
    EXPECT_EQ(revived.metrics().processed, 3u);
    EXPECT_EQ(revived.resume_cursor(), 3u);
}

}  // namespace
}  // namespace vnfr::serve
