# Empty compiler generated dependencies file for ablation_sfc_chains.
# This may be replaced when dependencies are built.
