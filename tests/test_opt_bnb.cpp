#include "opt/branch_and_bound.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "opt/lp.hpp"

namespace vnfr::opt {
namespace {

TEST(BranchAndBound, TrivialBinary) {
    // max 3x + 2y, x + y <= 1, binary: pick x.
    LinearProgram lp;
    const std::size_t x = lp.add_variable(3.0, 1.0);
    const std::size_t y = lp.add_variable(2.0, 1.0);
    lp.add_row({{x, 1.0}, {y, 1.0}}, Relation::kLe, 1.0);
    const IlpSolution sol = solve_ilp(lp, {x, y});
    ASSERT_TRUE(sol.has_incumbent);
    EXPECT_TRUE(sol.proven_optimal);
    EXPECT_NEAR(sol.objective, 3.0, 1e-7);
    EXPECT_NEAR(sol.x[x], 1.0, 1e-9);
    EXPECT_NEAR(sol.x[y], 0.0, 1e-9);
}

TEST(BranchAndBound, FractionalLpForcedIntegral) {
    // Knapsack where the LP relaxation is fractional:
    // max 10a + 6b + 4c s.t. a+b+c <= 2 (fits), 5a+4b+3c <= 8.
    // LP takes a=1, b=0.75 -> 14.5; ILP optimum is a+c = 14.
    LinearProgram lp;
    const std::size_t a = lp.add_variable(10.0, 1.0);
    const std::size_t b = lp.add_variable(6.0, 1.0);
    const std::size_t c = lp.add_variable(4.0, 1.0);
    lp.add_row({{a, 5.0}, {b, 4.0}, {c, 3.0}}, Relation::kLe, 8.0);
    const IlpSolution sol = solve_ilp(lp, {a, b, c});
    ASSERT_TRUE(sol.has_incumbent);
    EXPECT_TRUE(sol.proven_optimal);
    EXPECT_NEAR(sol.objective, 14.0, 1e-7);
}

TEST(BranchAndBound, InfeasibleDetected) {
    LinearProgram lp;
    const std::size_t x = lp.add_variable(1.0, 1.0);
    lp.add_row({{x, 1.0}}, Relation::kGe, 2.0);
    const IlpSolution sol = solve_ilp(lp, {x});
    EXPECT_FALSE(sol.has_incumbent);
    EXPECT_TRUE(sol.infeasible);
}

TEST(BranchAndBound, MixedIntegerContinuous) {
    // x binary, y continuous in [0, 10]: max 5x + y, x + y <= 3.5.
    // Optimum x = 1, y = 2.5 -> 7.5.
    LinearProgram lp;
    const std::size_t x = lp.add_variable(5.0, 1.0);
    const std::size_t y = lp.add_variable(1.0, 10.0);
    lp.add_row({{x, 1.0}, {y, 1.0}}, Relation::kLe, 3.5);
    const IlpSolution sol = solve_ilp(lp, {x});
    ASSERT_TRUE(sol.has_incumbent);
    EXPECT_NEAR(sol.objective, 7.5, 1e-7);
    EXPECT_NEAR(sol.x[x], 1.0, 1e-9);
    EXPECT_NEAR(sol.x[y], 2.5, 1e-7);
}

TEST(BranchAndBound, RejectsBadBinaryDeclaration) {
    LinearProgram lp;
    const std::size_t x = lp.add_variable(1.0, 2.0);  // ub 2 can't be binary
    EXPECT_THROW(solve_ilp(lp, {x}), std::invalid_argument);
    EXPECT_THROW(solve_ilp(lp, {9}), std::invalid_argument);
}

TEST(BranchAndBound, BoundNeverBelowIncumbent) {
    LinearProgram lp;
    const std::size_t a = lp.add_variable(7.0, 1.0);
    const std::size_t b = lp.add_variable(5.0, 1.0);
    const std::size_t c = lp.add_variable(3.0, 1.0);
    lp.add_row({{a, 4.0}, {b, 3.0}, {c, 2.0}}, Relation::kLe, 5.0);
    const IlpSolution sol = solve_ilp(lp, {a, b, c});
    ASSERT_TRUE(sol.has_incumbent);
    EXPECT_GE(sol.best_bound, sol.objective - 1e-9);
}

TEST(BranchAndBound, NodeLimitReturnsUnproven) {
    LinearProgram lp;
    std::vector<std::size_t> binaries;
    std::vector<std::pair<std::size_t, double>> row;
    common::Rng rng(3);
    for (int j = 0; j < 20; ++j) {
        const std::size_t v = lp.add_variable(rng.uniform(1.0, 10.0), 1.0);
        binaries.push_back(v);
        row.emplace_back(v, rng.uniform(1.0, 5.0));
    }
    lp.add_row(std::move(row), Relation::kLe, 20.0);
    BnbOptions opts;
    opts.max_nodes = 3;
    const IlpSolution sol = solve_ilp(lp, binaries, opts);
    EXPECT_FALSE(sol.proven_optimal);
    EXPECT_GE(sol.best_bound, sol.objective - 1e-9);
}

/// Exhaustive 0/1 knapsack-with-side-constraints reference.
double brute_force_best(const std::vector<double>& values,
                        const std::vector<std::vector<double>>& rows,
                        const std::vector<double>& rhs) {
    const std::size_t n = values.size();
    double best = 0.0;
    for (unsigned mask = 0; mask < (1u << n); ++mask) {
        bool ok = true;
        for (std::size_t i = 0; i < rows.size() && ok; ++i) {
            double lhs = 0.0;
            for (std::size_t j = 0; j < n; ++j) {
                if (mask & (1u << j)) lhs += rows[i][j];
            }
            ok = lhs <= rhs[i] + 1e-9;
        }
        if (!ok) continue;
        double v = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            if (mask & (1u << j)) v += values[j];
        }
        best = std::max(best, v);
    }
    return best;
}

// Property: branch-and-bound equals exhaustive enumeration on random
// multi-constraint 0/1 problems.
class BnbRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(BnbRandomTest, MatchesBruteForce) {
    common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 13);
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(4, 12));
    const std::size_t m = static_cast<std::size_t>(rng.uniform_int(1, 4));

    std::vector<double> values(n);
    std::vector<std::vector<double>> rows(m, std::vector<double>(n, 0.0));
    std::vector<double> rhs(m);

    LinearProgram lp;
    std::vector<std::size_t> binaries;
    for (std::size_t j = 0; j < n; ++j) {
        values[j] = rng.uniform(1.0, 10.0);
        binaries.push_back(lp.add_variable(values[j], 1.0));
    }
    for (std::size_t i = 0; i < m; ++i) {
        std::vector<std::pair<std::size_t, double>> terms;
        for (std::size_t j = 0; j < n; ++j) {
            rows[i][j] = rng.uniform(0.5, 4.0);
            terms.emplace_back(j, rows[i][j]);
        }
        rhs[i] = rng.uniform(2.0, 1.5 * static_cast<double>(n));
        lp.add_row(std::move(terms), Relation::kLe, rhs[i]);
    }

    const IlpSolution sol = solve_ilp(lp, binaries);
    const double reference = brute_force_best(values, rows, rhs);
    ASSERT_TRUE(sol.has_incumbent);
    EXPECT_TRUE(sol.proven_optimal);
    EXPECT_NEAR(sol.objective, reference, 1e-6);
    // The reported solution must itself be feasible and integral.
    EXPECT_LE(lp.max_violation(sol.x), 1e-6);
    for (const std::size_t v : binaries) {
        EXPECT_NEAR(sol.x[v], std::round(sol.x[v]), 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbRandomTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace vnfr::opt
