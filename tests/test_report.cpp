#include <gtest/gtest.h>

#include <sstream>

#include "report/csv.hpp"
#include "report/table.hpp"

namespace vnfr::report {
namespace {

TEST(Table, RejectsEmptyHeaders) {
    EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsMismatchedRows) {
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
    EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, TextLayoutAligned) {
    Table t({"name", "value"});
    t.add_row({"x", "1"});
    t.add_row({"longer-name", "22"});
    const std::string text = t.to_text();
    // Every line has the same column start for "value".
    std::istringstream is(text);
    std::string header;
    std::getline(is, header);
    EXPECT_NE(header.find("name"), std::string::npos);
    EXPECT_NE(header.find("value"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, MarkdownShape) {
    Table t({"a", "b"});
    t.add_row({"1", "2"});
    const std::string md = t.to_markdown();
    EXPECT_NE(md.find("| a | b |"), std::string::npos);
    EXPECT_NE(md.find("|---|---|"), std::string::npos);
    EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

TEST(Formatting, FixedPrecision) {
    EXPECT_EQ(format_double(3.14159, 2), "3.14");
    EXPECT_EQ(format_double(2.0, 0), "2");
    EXPECT_EQ(format_mean_ci(10.5, 0.25, 1), "10.5 +/- 0.2");
}

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
    EXPECT_EQ(csv_escape("plain"), "plain");
    EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
    EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csv_escape("two\nlines"), "\"two\nlines\"");
}

TEST(CsvWriter, WritesHeaderAndRows) {
    std::ostringstream os;
    CsvWriter w(os);
    w.write_header({"x", "y"});
    w.write_row(std::vector<std::string>{"1", "2"});
    w.write_row(std::vector<double>{3.5, 4.25});
    EXPECT_EQ(os.str(), "x,y\n1,2\n3.5,4.25\n");
}

TEST(CsvWriter, EnforcesProtocol) {
    std::ostringstream os;
    CsvWriter w(os);
    EXPECT_THROW(w.write_row(std::vector<std::string>{"1"}), std::logic_error);
    w.write_header({"a", "b"});
    EXPECT_THROW(w.write_header({"again"}), std::logic_error);
    EXPECT_THROW(w.write_row(std::vector<std::string>{"1"}), std::invalid_argument);
    EXPECT_THROW(CsvWriter(os).write_header({}), std::invalid_argument);
}

}  // namespace
}  // namespace vnfr::report
