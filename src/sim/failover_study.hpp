// Failover dynamics study: replay a finished schedule under Markov
// failure/repair processes and account for outages and failovers.
//
// Quantifies the paper's Section I trade-off: on-site backups can only
// fail over locally (same cloudlet — fast, but useless when the cloudlet
// itself is down), while off-site backups fail over to another cloudlet
// (slower, extra traffic, but survive cloudlet outages).
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace vnfr::sim {

struct FailoverConfig {
    double cloudlet_mttr_slots{4.0};
    double instance_mttr_slots{2.0};
    std::uint64_t seed{0xfa11};
};

struct FailoverReport {
    std::size_t request_slots{0};    ///< active (request x slot) samples
    std::size_t served_slots{0};
    std::size_t disrupted_slots{0};
    /// Serving replica changed within the same cloudlet (fast local switch).
    std::size_t local_failovers{0};
    /// Serving site moved to a different cloudlet (slow remote switch).
    std::size_t remote_failovers{0};
    /// served -> disrupted transitions (complete outages).
    std::size_t outages{0};

    [[nodiscard]] double availability() const {
        return request_slots == 0
                   ? 0.0
                   : static_cast<double>(served_slots) / static_cast<double>(request_slots);
    }
};

/// Replays `decisions` (as produced by any scheduler on `instance`) under
/// Markov failures. Rejected requests are ignored.
FailoverReport run_failover_study(const core::Instance& instance,
                                  const std::vector<core::Decision>& decisions,
                                  const FailoverConfig& config = {});

}  // namespace vnfr::sim
