#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vnfr::common {

void RunningStats::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

double RunningStats::ci95_halfwidth() const {
    if (n_ < 2) return 0.0;
    return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto total = n_ + other.n_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / static_cast<double>(total);
    mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(total);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    n_ = total;
}

double percentile(std::span<const double> values, double q) {
    if (values.empty()) throw std::invalid_argument("percentile: empty input");
    if (q < 0.0 || q > 100.0) throw std::invalid_argument("percentile: q outside [0,100]");
    std::vector<double> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1) return sorted.front();
    const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Interval bootstrap_mean_ci(std::span<const double> values, double confidence,
                           std::size_t resamples, Rng& rng) {
    if (values.empty()) throw std::invalid_argument("bootstrap_mean_ci: empty input");
    if (!(confidence > 0.0) || !(confidence < 1.0))
        throw std::invalid_argument("bootstrap_mean_ci: confidence outside (0,1)");
    if (resamples == 0) throw std::invalid_argument("bootstrap_mean_ci: zero resamples");

    const auto n = static_cast<std::int64_t>(values.size());
    std::vector<double> means;
    means.reserve(resamples);
    for (std::size_t r = 0; r < resamples; ++r) {
        double sum = 0.0;
        for (std::int64_t i = 0; i < n; ++i) {
            sum += values[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
        }
        means.push_back(sum / static_cast<double>(n));
    }
    const double alpha = (1.0 - confidence) / 2.0;
    return Interval{percentile(means, alpha * 100.0), percentile(means, (1.0 - alpha) * 100.0)};
}

double mann_whitney_p(std::span<const double> a, std::span<const double> b) {
    if (a.empty() || b.empty()) throw std::invalid_argument("mann_whitney_p: empty sample");
    const std::size_t na = a.size();
    const std::size_t nb = b.size();

    struct Tagged {
        double value;
        bool from_a;
    };
    std::vector<Tagged> pooled;
    pooled.reserve(na + nb);
    for (const double v : a) pooled.push_back({v, true});
    for (const double v : b) pooled.push_back({v, false});
    std::sort(pooled.begin(), pooled.end(),
              [](const Tagged& x, const Tagged& y) { return x.value < y.value; });

    // Midranks with tie groups; accumulate the tie correction term.
    double rank_sum_a = 0.0;
    double tie_term = 0.0;
    std::size_t i = 0;
    while (i < pooled.size()) {
        std::size_t j = i;
        while (j + 1 < pooled.size() && pooled[j + 1].value == pooled[i].value) ++j;
        const double tied = static_cast<double>(j - i + 1);
        const double midrank = (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
        for (std::size_t k = i; k <= j; ++k) {
            if (pooled[k].from_a) rank_sum_a += midrank;
        }
        tie_term += tied * tied * tied - tied;
        i = j + 1;
    }

    const double u = rank_sum_a - static_cast<double>(na) * (static_cast<double>(na) + 1.0) / 2.0;
    const double n = static_cast<double>(na + nb);
    const double mu = static_cast<double>(na) * static_cast<double>(nb) / 2.0;
    const double variance = static_cast<double>(na) * static_cast<double>(nb) / 12.0 *
                            (n + 1.0 - tie_term / (n * (n - 1.0)));
    if (variance <= 0.0) return 1.0;  // all values tied: no evidence of difference
    // Continuity correction toward the mean.
    const double diff = u - mu;
    const double z = (diff - (diff > 0 ? 0.5 : diff < 0 ? -0.5 : 0.0)) / std::sqrt(variance);
    // Two-sided p via the normal survival function.
    return std::erfc(std::fabs(z) / std::sqrt(2.0));
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
    if (bins == 0) throw std::invalid_argument("Histogram: zero bins");
    if (hi <= lo) throw std::invalid_argument("Histogram: hi <= lo");
    width_ = (hi - lo) / static_cast<double>(bins);
    counts_.assign(bins, 0);
}

void Histogram::add(double x) {
    auto bin = static_cast<std::ptrdiff_t>((x - lo_) / width_);
    bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(bin)];
    ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const { return counts_.at(bin); }

double Histogram::bin_lower(std::size_t bin) const {
    return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_upper(std::size_t bin) const {
    return lo_ + width_ * static_cast<double>(bin + 1);
}

}  // namespace vnfr::common
