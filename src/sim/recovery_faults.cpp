#include "sim/recovery_faults.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace vnfr::sim {

const char* to_string(FaultKind kind) {
    switch (kind) {
        case FaultKind::kCloudletCrash: return "cloudlet-crash";
        case FaultKind::kInstanceCrash: return "instance-crash";
        case FaultKind::kTransientBlip: return "transient-blip";
        case FaultKind::kRackFailure: return "rack-failure";
    }
    throw std::invalid_argument("to_string: unknown FaultKind");
}

namespace {

/// Sampled hardware repair time with the configured mean, never below one
/// slot (a crash always costs at least the slot it lands on).
TimeSlot sample_down_slots(common::Rng& rng, double mttr) {
    const double draw = rng.exponential(1.0 / mttr);
    return std::max<TimeSlot>(1, static_cast<TimeSlot>(std::lround(draw)));
}

}  // namespace

FaultSchedule generate_fault_schedule(const core::Instance& instance,
                                      const std::vector<core::Decision>& decisions,
                                      const FaultInjectorConfig& config,
                                      std::uint64_t seed) {
    if (decisions.size() != instance.requests.size())
        throw std::invalid_argument(
            "generate_fault_schedule: decisions/requests size mismatch");
    VNFR_CHECK_PROB(config.cloudlet_crash_per_slot);
    VNFR_CHECK_PROB(config.instance_crash_per_slot);
    VNFR_CHECK_PROB(config.transient_blip_per_slot);
    VNFR_CHECK_PROB(config.rack_failure_per_slot);
    VNFR_CHECK(std::isfinite(config.cloudlet_mttr_slots) &&
                   config.cloudlet_mttr_slots > 0.0,
               "cloudlet_mttr_slots must be positive and finite, got ",
               config.cloudlet_mttr_slots);
    VNFR_CHECK(config.rack_span >= 1, "rack_span must be >= 1");

    const std::size_t m = instance.network.cloudlet_count();
    common::Rng rng(seed);
    FaultSchedule schedule;

    // Requests are sorted by arrival, so a sliding window of active admitted
    // requests per slot needs one pass.
    std::size_t next_request = 0;
    std::vector<std::size_t> active;
    for (TimeSlot t = 0; t < instance.horizon; ++t) {
        while (next_request < instance.requests.size() &&
               instance.requests[next_request].arrival == t) {
            if (decisions[next_request].admitted) active.push_back(next_request);
            ++next_request;
        }
        std::erase_if(active,
                      [&](std::size_t i) { return !instance.requests[i].covers(t); });

        for (std::size_t j = 0; j < m; ++j) {
            const CloudletId c{static_cast<std::int64_t>(j)};
            if (rng.bernoulli(config.cloudlet_crash_per_slot)) {
                FaultEvent e;
                e.slot = t;
                e.kind = FaultKind::kCloudletCrash;
                e.cloudlet = c;
                e.down_slots = sample_down_slots(rng, config.cloudlet_mttr_slots);
                schedule.events.push_back(e);
                ++schedule.cloudlet_crashes;
            }
            if (rng.bernoulli(config.transient_blip_per_slot)) {
                FaultEvent e;
                e.slot = t;
                e.kind = FaultKind::kTransientBlip;
                e.cloudlet = c;
                e.down_slots = 1;
                schedule.events.push_back(e);
                ++schedule.transient_blips;
            }
        }

        if (m > 0 && rng.bernoulli(config.rack_failure_per_slot)) {
            FaultEvent e;
            e.slot = t;
            e.kind = FaultKind::kRackFailure;
            const auto base = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(m) - 1));
            e.cloudlet = CloudletId{static_cast<std::int64_t>(base)};
            e.span = std::min(config.rack_span, m - base);
            e.down_slots = sample_down_slots(rng, config.cloudlet_mttr_slots);
            schedule.events.push_back(e);
            ++schedule.rack_failures;
        }

        for (const std::size_t i : active) {
            if (!rng.bernoulli(config.instance_crash_per_slot)) continue;
            const core::Placement& p = decisions[i].placement;
            if (p.sites.empty()) continue;
            FaultEvent e;
            e.slot = t;
            e.kind = FaultKind::kInstanceCrash;
            e.request_index = i;
            e.site = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(p.sites.size()) - 1));
            const int replicas = std::max(1, p.sites[e.site].replicas);
            e.replica = static_cast<std::size_t>(rng.uniform_int(0, replicas - 1));
            e.cloudlet = p.sites[e.site].cloudlet;
            schedule.events.push_back(e);
            ++schedule.instance_crashes;
        }
    }
    return schedule;
}

}  // namespace vnfr::sim
