// Property fuzzing of the two primal-dual schedulers over randomized
// instances (counter-based stream seeds, so every case replays exactly):
//
//   Off-site (Algorithm 2, Theorem 2): capacity constraint (9) holds by
//   construction — zero ledger overshoot, usage <= cap_j in every slot —
//   and each admitted placement is one replica per distinct cloudlet whose
//   reliabilities satisfy Eq. (10) for the request's requirement.
//
//   On-site (Algorithm 1, capacity-checked): admission implies a single
//   site with r(c_j) > R_i and a replica count that matches Eq. (3)
//   exactly, i.e. vnf::min_onsite_replicas.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/offsite_primal_dual.hpp"
#include "core/onsite_primal_dual.hpp"
#include "core/schedule.hpp"
#include "helpers.hpp"
#include "vnf/reliability.hpp"

namespace vnfr {
namespace {

constexpr std::uint64_t kPropertyMaster = 0x9209;

core::Instance property_instance(std::uint64_t stream) {
    common::Rng rng = common::stream_rng(kPropertyMaster, stream);
    // Vary the shape with the stream so the sweep covers tight and loose
    // capacity regimes, few and many cloudlets.
    const std::size_t cloudlets = 2 + static_cast<std::size_t>(stream % 7);
    const std::size_t requests = 40 + 20 * static_cast<std::size_t>(stream % 5);
    const TimeSlot horizon = 8 + static_cast<TimeSlot>(stream % 9);
    const double cap_lo = 5.0 + static_cast<double>(stream % 4) * 5.0;
    return vnfr::testing::random_instance(rng, requests, cloudlets, horizon, cap_lo,
                                          cap_lo + 15.0);
}

class SchedulerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerPropertyTest, OffsiteNeverViolatesCapacityByConstruction) {
    const core::Instance inst = property_instance(GetParam());
    core::OffsitePrimalDual scheduler(inst);
    const core::ScheduleResult result = core::run_online(inst, scheduler);

    // Theorem 2: Algorithm 2 enforces constraint (9) at admission time.
    EXPECT_EQ(result.max_overshoot, 0.0);  // vnfr-lint: allow(float-eq) exact invariant
    const edge::ResourceLedger& ledger = scheduler.ledger();
    EXPECT_EQ(ledger.policy(), edge::CapacityPolicy::kEnforce);
    for (std::size_t j = 0; j < ledger.cloudlet_count(); ++j) {
        const CloudletId c{static_cast<std::int64_t>(j)};
        EXPECT_EQ(ledger.peak_overshoot(c), 0.0);  // vnfr-lint: allow(float-eq)
        for (TimeSlot t = 0; t < ledger.horizon(); ++t) {
            EXPECT_LE(ledger.usage(c, t), ledger.capacity(c));
        }
    }
}

TEST_P(SchedulerPropertyTest, OffsiteAdmissionMeetsEq10WithDistinctSingletonSites) {
    const core::Instance inst = property_instance(GetParam());
    core::OffsitePrimalDual scheduler(inst);
    const core::ScheduleResult result = core::run_online(inst, scheduler);

    ASSERT_EQ(result.decisions.size(), inst.requests.size());
    std::size_t admitted = 0;
    for (std::size_t i = 0; i < result.decisions.size(); ++i) {
        const core::Decision& d = result.decisions[i];
        if (!d.admitted) continue;
        ++admitted;
        const workload::Request& req = inst.requests[i];
        ASSERT_FALSE(d.placement.sites.empty()) << "request " << i;

        std::vector<CloudletId> used;
        std::vector<double> rels;
        for (const core::Site& s : d.placement.sites) {
            // Off-site scheme: exactly one instance per selected cloudlet.
            EXPECT_EQ(s.replicas, 1) << "request " << i;
            used.push_back(s.cloudlet);
            rels.push_back(inst.network.cloudlet(s.cloudlet).reliability);
        }
        std::sort(used.begin(), used.end());
        EXPECT_EQ(std::adjacent_find(used.begin(), used.end()), used.end())
            << "request " << i << " reuses a cloudlet";

        // Eq. (10): 1 - prod_j (1 - r(f_i) r(c_j)) >= R_i.
        EXPECT_TRUE(vnf::offsite_meets(inst.catalog.reliability(req.vnf), rels,
                                       req.requirement))
            << "request " << i;
    }
    EXPECT_EQ(admitted, result.admitted);
}

TEST_P(SchedulerPropertyTest, OnsiteAdmissionImpliesFeasibleCloudletAndEq3Replicas) {
    const core::Instance inst = property_instance(GetParam());
    core::OnsitePrimalDual scheduler(inst);
    const core::ScheduleResult result = core::run_online(inst, scheduler);

    ASSERT_EQ(result.decisions.size(), inst.requests.size());
    for (std::size_t i = 0; i < result.decisions.size(); ++i) {
        const core::Decision& d = result.decisions[i];
        if (!d.admitted) continue;
        const workload::Request& req = inst.requests[i];
        // On-site scheme: all N_ij instances in one cloudlet.
        ASSERT_EQ(d.placement.sites.size(), 1u) << "request " << i;
        const core::Site& site = d.placement.sites.front();
        const double cloudlet_rel = inst.network.cloudlet(site.cloudlet).reliability;

        // Feasibility precondition of Eq. (3): r(c_j) > R_i.
        EXPECT_GT(cloudlet_rel, req.requirement) << "request " << i;

        const std::optional<int> want = vnf::min_onsite_replicas(
            cloudlet_rel, inst.catalog.reliability(req.vnf), req.requirement);
        ASSERT_TRUE(want.has_value()) << "request " << i;
        EXPECT_EQ(site.replicas, *want) << "request " << i;

        // And the resulting availability indeed clears the requirement.
        EXPECT_GE(vnf::onsite_availability(cloudlet_rel,
                                           inst.catalog.reliability(req.vnf),
                                           site.replicas),
                  req.requirement)
            << "request " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Streams, SchedulerPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace vnfr
