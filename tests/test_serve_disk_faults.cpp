// The disk-fault chaos study end to end: power cuts at scripted mutating
// ops, transient EIO bursts absorbed by retries, and ENOSPC degradation
// with both recovery paths — all gated on bit-identical equivalence with
// an undisturbed run. A compact version of the ablation_disk_faults
// bench gate, sized for the unit suite.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "serve/disk_fault_study.hpp"

namespace vnfr::serve {
namespace {

using vnfr::testing::make_request;
using vnfr::testing::small_instance;

core::Instance fault_instance(std::size_t n) {
    std::vector<workload::Request> reqs;
    reqs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        reqs.push_back(make_request(static_cast<std::int64_t>(i),
                                    static_cast<std::int64_t>(i % 2),
                                    0.90 + 0.004 * static_cast<double>(i % 10),
                                    static_cast<TimeSlot>((i * 7) / n),
                                    1 + static_cast<TimeSlot>(i % 3),
                                    1.0 + static_cast<double>((i * 11) % 17)));
    }
    // Tight capacity so admission, rejection and shedding all occur.
    return small_instance({0.98, 0.97, 0.99}, 10.0, 10, std::move(reqs));
}

DiskFaultStudyConfig study_config(core::Scheme scheme) {
    DiskFaultStudyConfig cfg;
    cfg.scheme = scheme;
    cfg.master_seed = 0xD15CULL;
    cfg.power_cut_points = 6;
    cfg.transient_trials = 2;
    cfg.degraded_trials = 2;
    cfg.checkpoint_every = 8;
    cfg.queue_capacity = 4;
    cfg.group_commit = 4;
    return cfg;
}

void expect_study_ok(const DiskFaultStudyResult& result,
                     const DiskFaultStudyConfig& cfg) {
    EXPECT_TRUE(result.baseline_capacity_ok);
    EXPECT_TRUE(result.baseline_scrub_clean);
    EXPECT_TRUE(result.corruption_detected);
    EXPECT_GT(result.baseline_mutating_ops, 0u);

    ASSERT_EQ(result.power_cut_trials.size(), cfg.power_cut_points);
    for (const PowerCutTrial& trial : result.power_cut_trials) {
        EXPECT_TRUE(trial.cut_fired) << "cut at op " << trial.cut_at_op;
        EXPECT_TRUE(trial.digest_match) << "cut at op " << trial.cut_at_op;
        EXPECT_TRUE(trial.no_double_admits) << "cut at op " << trial.cut_at_op;
        EXPECT_TRUE(trial.scrub_clean) << "cut at op " << trial.cut_at_op;
    }
    EXPECT_EQ(result.failed_power_cut_trials, 0u);

    ASSERT_EQ(result.transient_trials.size(), cfg.transient_trials);
    for (const TransientFaultTrial& trial : result.transient_trials) {
        EXPECT_TRUE(trial.stayed_healthy);
        EXPECT_TRUE(trial.digest_match);
    }
    EXPECT_EQ(result.failed_transient_trials, 0u);
    EXPECT_GT(result.transient_faults_injected, 0u);  // actually exposed

    ASSERT_EQ(result.degraded_trials.size(), cfg.degraded_trials);
    bool via_probe = false;
    for (const DegradedModeTrial& trial : result.degraded_trials) {
        EXPECT_TRUE(trial.entered_degraded)
            << "ENOSPC from write " << trial.fail_from_write;
        EXPECT_GT(trial.degraded_refusals, 0u);
        EXPECT_TRUE(trial.recovered);
        EXPECT_TRUE(trial.digest_match)
            << "ENOSPC from write " << trial.fail_from_write;
        via_probe = via_probe || trial.recovered_via_probe;
    }
    EXPECT_TRUE(via_probe);  // the automatic probe path was exercised
    EXPECT_EQ(result.failed_degraded_trials, 0u);

    EXPECT_TRUE(result.ok());
}

TEST(ServeDiskFaults, OnsiteSurvivesTheFullFaultMatrix) {
    const core::Instance inst = fault_instance(48);
    const DiskFaultStudyConfig cfg = study_config(core::Scheme::kOnsite);
    const DiskFaultStudyResult result = run_disk_fault_study(inst, cfg);
    EXPECT_EQ(result.baseline_outcomes, 48u);  // every request decided or shed
    EXPECT_GT(result.baseline_metrics.shed, 0u);
    expect_study_ok(result, cfg);
}

TEST(ServeDiskFaults, OffsiteSurvivesTheFullFaultMatrix) {
    const core::Instance inst = fault_instance(48);
    const DiskFaultStudyConfig cfg = study_config(core::Scheme::kOffsite);
    const DiskFaultStudyResult result = run_disk_fault_study(inst, cfg);
    EXPECT_EQ(result.baseline_outcomes, 48u);
    expect_study_ok(result, cfg);
}

TEST(ServeDiskFaults, ExhaustiveCutsCoverEveryMutatingOp) {
    const core::Instance inst = fault_instance(24);
    DiskFaultStudyConfig cfg = study_config(core::Scheme::kOnsite);
    cfg.exhaustive_power_cuts = true;
    cfg.transient_trials = 0;
    cfg.degraded_trials = 0;
    const DiskFaultStudyResult result = run_disk_fault_study(inst, cfg);
    ASSERT_EQ(result.power_cut_trials.size(),
              static_cast<std::size_t>(result.baseline_mutating_ops));
    // The cut indices tile [1 .. M]: every write, sync, truncate, create,
    // rename, unlink, and dirsync of the run — including both
    // checkpoint-rotation stages and mid-group-commit appends.
    for (std::size_t i = 0; i < result.power_cut_trials.size(); ++i) {
        EXPECT_EQ(result.power_cut_trials[i].cut_at_op,
                  static_cast<std::uint64_t>(i + 1));
        EXPECT_TRUE(result.power_cut_trials[i].ok())
            << "cut at op " << i + 1;
    }
    EXPECT_EQ(result.failed_power_cut_trials, 0u);
    EXPECT_TRUE(result.ok());
}

TEST(ServeDiskFaults, StudyIsDeterministicForAFixedSeed) {
    const core::Instance inst = fault_instance(32);
    DiskFaultStudyConfig cfg = study_config(core::Scheme::kOnsite);
    cfg.power_cut_points = 3;
    cfg.transient_trials = 1;
    cfg.degraded_trials = 1;
    const DiskFaultStudyResult a = run_disk_fault_study(inst, cfg);
    const DiskFaultStudyResult b = run_disk_fault_study(inst, cfg);
    EXPECT_EQ(a.baseline_digest, b.baseline_digest);
    EXPECT_EQ(a.baseline_mutating_ops, b.baseline_mutating_ops);
    ASSERT_EQ(a.power_cut_trials.size(), b.power_cut_trials.size());
    for (std::size_t i = 0; i < a.power_cut_trials.size(); ++i) {
        EXPECT_EQ(a.power_cut_trials[i].cut_at_op,
                  b.power_cut_trials[i].cut_at_op);
        EXPECT_EQ(a.power_cut_trials[i].submitted_at_cut,
                  b.power_cut_trials[i].submitted_at_cut);
        EXPECT_EQ(a.power_cut_trials[i].recovered_torn_tail_bytes,
                  b.power_cut_trials[i].recovered_torn_tail_bytes);
    }
    ASSERT_EQ(a.transient_trials.size(), b.transient_trials.size());
    EXPECT_EQ(a.transient_faults_injected, b.transient_faults_injected);
    EXPECT_EQ(a.transient_retries_absorbed, b.transient_retries_absorbed);
    ASSERT_EQ(a.degraded_trials.size(), b.degraded_trials.size());
    for (std::size_t i = 0; i < a.degraded_trials.size(); ++i) {
        EXPECT_EQ(a.degraded_trials[i].fail_from_write,
                  b.degraded_trials[i].fail_from_write);
        EXPECT_EQ(a.degraded_trials[i].degraded_refusals,
                  b.degraded_trials[i].degraded_refusals);
    }
}

TEST(ServeDiskFaults, RejectsAnEmptyTrace) {
    const core::Instance inst = small_instance({0.98}, 10.0, 4, {});
    EXPECT_THROW(run_disk_fault_study(inst, study_config(core::Scheme::kOnsite)),
                 std::invalid_argument);
}

}  // namespace
}  // namespace vnfr::serve
