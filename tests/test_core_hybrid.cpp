#include "core/hybrid_primal_dual.hpp"

#include <gtest/gtest.h>

#include "core/greedy.hpp"
#include "core/offsite_primal_dual.hpp"
#include "core/onsite_primal_dual.hpp"
#include "helpers.hpp"
#include "sim/failure_model.hpp"

namespace vnfr::core {
namespace {

using vnfr::testing::make_request;
using vnfr::testing::random_instance;
using vnfr::testing::small_instance;

TEST(HybridPrimalDual, AdmitsFirstRequest) {
    const Instance inst = small_instance({0.99, 0.98}, 100.0, 10,
                                         {make_request(0, 0, 0.95, 0, 2, 5.0)});
    HybridPrimalDual scheduler(inst);
    const Decision d = scheduler.decide(inst.requests[0]);
    ASSERT_TRUE(d.admitted);
    EXPECT_EQ(scheduler.onsite_admissions() + scheduler.offsite_admissions(), 1u);
}

TEST(HybridPrimalDual, NeverViolatesCapacity) {
    common::Rng rng(201);
    for (int trial = 0; trial < 5; ++trial) {
        const Instance inst = random_instance(rng, 80, 4, 12, 8, 15);
        HybridPrimalDual scheduler(inst);
        const ScheduleResult result = run_online(inst, scheduler);
        EXPECT_DOUBLE_EQ(result.max_overshoot, 0.0);
        EXPECT_LE(result.max_load_factor, 1.0 + 1e-9);
    }
}

TEST(HybridPrimalDual, AdmittedPlacementsMeetRequirement) {
    common::Rng rng(203);
    const Instance inst = random_instance(rng, 80, 4, 12);
    HybridPrimalDual scheduler(inst);
    const ScheduleResult result = run_online(inst, scheduler);
    std::size_t admitted = 0;
    for (std::size_t i = 0; i < result.decisions.size(); ++i) {
        if (!result.decisions[i].admitted) continue;
        ++admitted;
        EXPECT_GE(sim::analytic_availability(inst, inst.requests[i],
                                             result.decisions[i].placement),
                  inst.requests[i].requirement - 1e-12);
    }
    EXPECT_GT(admitted, 0u);
}

TEST(HybridPrimalDual, UsesBothSchemesUnderMixedWorkload) {
    // Cloudlet reliabilities straddling the requirement range: high-R
    // requests need off-site (no single cloudlet reaches 0.995-ish), low-R
    // requests go on-site cheaply.
    std::vector<workload::Request> requests;
    for (int i = 0; i < 40; ++i) {
        const bool demanding = i % 2 == 0;
        requests.push_back(make_request(i, 0, demanding ? 0.995 : 0.9, 0, 2, 5.0));
    }
    const Instance inst =
        small_instance({0.99, 0.99, 0.99, 0.99}, 200.0, 4, std::move(requests));
    HybridPrimalDual scheduler(inst);
    run_online(inst, scheduler);
    EXPECT_GT(scheduler.onsite_admissions(), 0u);
    EXPECT_GT(scheduler.offsite_admissions(), 0u);
}

TEST(HybridPrimalDual, OffsiteRescuesOnsiteInfeasibleRequests) {
    // R above every cloudlet reliability: on-site can never serve, off-site
    // across two cloudlets can (1 - (1-0.95*0.96)^2 ~= 0.992 >= 0.97).
    const Instance inst = small_instance({0.96, 0.96}, 100.0, 10,
                                         {make_request(0, 0, 0.97, 0, 2, 5.0)});
    HybridPrimalDual scheduler(inst);
    const Decision d = scheduler.decide(inst.requests[0]);
    ASSERT_TRUE(d.admitted);
    EXPECT_EQ(scheduler.offsite_admissions(), 1u);
    EXPECT_GE(d.placement.sites.size(), 2u);
}

TEST(HybridPrimalDual, RejectsImpossibleRequest) {
    const Instance inst = small_instance({0.91, 0.91}, 100.0, 10,
                                         {make_request(0, 1, 0.999, 0, 2, 5.0)});
    HybridPrimalDual scheduler(inst);
    EXPECT_FALSE(scheduler.decide(inst.requests[0]).admitted);
    EXPECT_EQ(scheduler.onsite_admissions(), 0u);
    EXPECT_EQ(scheduler.offsite_admissions(), 0u);
}

TEST(HybridPrimalDual, DeterministicAcrossRuns) {
    common::Rng rng(207);
    const Instance inst = random_instance(rng, 60, 3, 12);
    HybridPrimalDual s1(inst);
    HybridPrimalDual s2(inst);
    const ScheduleResult r1 = run_online(inst, s1);
    const ScheduleResult r2 = run_online(inst, s2);
    EXPECT_DOUBLE_EQ(r1.revenue, r2.revenue);
    EXPECT_EQ(s1.onsite_admissions(), s2.onsite_admissions());
    EXPECT_EQ(s1.offsite_admissions(), s2.offsite_admissions());
}

TEST(HybridPrimalDual, CompetitiveWithBothPureSchemes) {
    // Not a theorem, but a strong regression guard: across seeds the hybrid
    // should on average collect at least ~90% of the better pure scheme.
    common::Rng rng(209);
    double hybrid_total = 0.0;
    double best_pure_total = 0.0;
    for (int trial = 0; trial < 6; ++trial) {
        const Instance inst = random_instance(rng, 100, 4, 12, 10, 20);
        HybridPrimalDual hybrid(inst);
        OnsitePrimalDual onsite(inst);
        OffsitePrimalDual offsite(inst);
        hybrid_total += run_online(inst, hybrid).revenue;
        best_pure_total += std::max(run_online(inst, onsite).revenue,
                                    run_online(inst, offsite).revenue);
    }
    EXPECT_GE(hybrid_total, 0.9 * best_pure_total);
}

TEST(HybridPrimalDual, ConfigValidation) {
    const Instance inst = small_instance({0.99}, 10.0, 5, {});
    EXPECT_THROW(
        HybridPrimalDual(inst, HybridPrimalDualConfig{.onsite_dual_capacity_scale = -1.0}),
        std::invalid_argument);
    EXPECT_THROW(
        HybridPrimalDual(inst, HybridPrimalDualConfig{.offsite_dual_capacity_scale = -1.0}),
        std::invalid_argument);
    EXPECT_EQ(HybridPrimalDual(inst).name(), "hybrid-primal-dual");
}

}  // namespace
}  // namespace vnfr::core
