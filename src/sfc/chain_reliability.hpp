// Replica mathematics for on-site service function chains.
#pragma once

#include <optional>
#include <span>
#include <vector>

namespace vnfr::sfc {

/// Availability of a chain hosted in one cloudlet:
///   r_c * prod_k (1 - (1 - vnf_rels[k])^{replicas[k]}).
/// Throws std::invalid_argument on size mismatch, bad probabilities or
/// non-positive replica counts.
double chain_onsite_availability(double cloudlet_rel, std::span<const double> vnf_rels,
                                 std::span<const int> replicas);

/// Cheapest replica vector meeting `requirement` in a cloudlet of
/// reliability `cloudlet_rel`, where function k costs `compute_units[k]`
/// per replica. Returns nullopt when cloudlet_rel <= requirement (no
/// replica count can help, as in the paper's Eq. 3 precondition).
///
/// Strategy: start from one replica each, greedily add the replica with
/// the best availability-gain-per-compute-unit until the requirement is
/// met, then trim: the result is locally minimal (removing any single
/// replica breaks the requirement). Exact on single-function chains
/// (= paper's Eq. 3); within one greedy step of optimal in practice —
/// see exhaustive_chain_replicas for the reference used in tests.
std::optional<std::vector<int>> min_chain_replicas(double cloudlet_rel,
                                                   std::span<const double> vnf_rels,
                                                   std::span<const double> compute_units,
                                                   double requirement);

/// Exact cheapest replica vector by bounded exhaustive search (reference
/// for tests). Throws std::invalid_argument when the search space exceeds
/// ~max_replicas^k for chains longer than 5.
std::optional<std::vector<int>> exhaustive_chain_replicas(
    double cloudlet_rel, std::span<const double> vnf_rels,
    std::span<const double> compute_units, double requirement, int max_replicas = 6);

/// Total compute demand of a replica vector.
double chain_compute(std::span<const double> compute_units, std::span<const int> replicas);

}  // namespace vnfr::sfc
