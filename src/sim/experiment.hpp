// Multi-seed experiment harness: runs a set of algorithms (and optionally
// the offline benchmark) over independently generated instances and
// aggregates revenue/acceptance with 95% confidence intervals — the shape
// of every figure in the paper's Section VI.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/instance.hpp"
#include "core/offline.hpp"
#include "core/schedule.hpp"

namespace vnfr::sim {

enum class Algorithm {
    kOnsitePrimalDual,      ///< Algorithm 1, capacity-checked (paper's evaluated variant)
    kOnsitePrimalDualPure,  ///< Algorithm 1 verbatim (bounded violations)
    kOnsiteGreedy,
    kOffsitePrimalDual,     ///< Algorithm 2
    kOffsiteGreedy,
    kHybridPrimalDual,      ///< extension: per-request on-site/off-site choice
};

std::string_view algorithm_name(Algorithm algorithm);

/// Fresh scheduler bound to `instance` (which must outlive it).
std::unique_ptr<core::OnlineScheduler> make_scheduler(Algorithm algorithm,
                                                      const core::Instance& instance);

struct ExperimentConfig {
    std::vector<Algorithm> algorithms;
    std::size_t seeds{5};
    std::uint64_t base_seed{42};
    /// Also solve the offline benchmark per seed (LP bound, optional ILP).
    bool compute_offline{false};
    core::Scheme offline_scheme{core::Scheme::kOnsite};
    core::OfflineConfig offline{};
};

struct AlgorithmOutcome {
    Algorithm algorithm;
    common::RunningStats revenue;
    common::RunningStats acceptance;
    common::RunningStats max_load_factor;
};

struct ExperimentOutcome {
    std::vector<AlgorithmOutcome> per_algorithm;
    common::RunningStats offline_bound;  ///< LP relaxation optimum per seed
    common::RunningStats offline_ilp;    ///< best integral revenue per seed
};

/// Builds one instance per seed via `factory` (seeded from base_seed + k),
/// replays it through every configured algorithm, and aggregates.
using InstanceFactory = std::function<core::Instance(common::Rng&)>;

ExperimentOutcome run_experiment(const InstanceFactory& factory,
                                 const ExperimentConfig& config);

}  // namespace vnfr::sim
