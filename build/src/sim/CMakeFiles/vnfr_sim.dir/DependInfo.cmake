
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/availability_process.cpp" "src/sim/CMakeFiles/vnfr_sim.dir/availability_process.cpp.o" "gcc" "src/sim/CMakeFiles/vnfr_sim.dir/availability_process.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/sim/CMakeFiles/vnfr_sim.dir/experiment.cpp.o" "gcc" "src/sim/CMakeFiles/vnfr_sim.dir/experiment.cpp.o.d"
  "/root/repo/src/sim/failover_study.cpp" "src/sim/CMakeFiles/vnfr_sim.dir/failover_study.cpp.o" "gcc" "src/sim/CMakeFiles/vnfr_sim.dir/failover_study.cpp.o.d"
  "/root/repo/src/sim/failure_model.cpp" "src/sim/CMakeFiles/vnfr_sim.dir/failure_model.cpp.o" "gcc" "src/sim/CMakeFiles/vnfr_sim.dir/failure_model.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/vnfr_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/vnfr_sim.dir/metrics.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/vnfr_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/vnfr_sim.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vnfr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/edge/CMakeFiles/vnfr_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vnfr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vnfr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/vnf/CMakeFiles/vnfr_vnf.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/vnfr_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vnfr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
