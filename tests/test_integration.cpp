// End-to-end pipelines across every module: instance synthesis from real
// topologies, all five algorithms, offline bounds, failure injection, and
// trace replay.
#include <gtest/gtest.h>

#include <sstream>

#include "core/instance.hpp"
#include "core/offline.hpp"
#include "sim/experiment.hpp"
#include "sim/failure_model.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "workload/trace_io.hpp"

namespace vnfr {
namespace {

core::InstanceConfig standard_config(std::size_t requests) {
    core::InstanceConfig cfg;
    cfg.topology = "abilene";
    cfg.cloudlets.count = 6;
    cfg.cloudlets.capacity_min = 20;
    cfg.cloudlets.capacity_max = 40;
    cfg.workload.horizon = 20;
    cfg.workload.count = requests;
    cfg.workload.duration_max = 6;
    return cfg;
}

class TopologyPipelineTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TopologyPipelineTest, AllAlgorithmsRunCleanlyOnRealTopologies) {
    common::Rng rng(2024);
    core::InstanceConfig cfg = standard_config(60);
    cfg.topology = GetParam();
    const core::Instance inst = core::make_instance(cfg, rng);

    for (const sim::Algorithm a :
         {sim::Algorithm::kOnsitePrimalDual, sim::Algorithm::kOnsitePrimalDualPure,
          sim::Algorithm::kOnsiteGreedy, sim::Algorithm::kOffsitePrimalDual,
          sim::Algorithm::kOffsiteGreedy, sim::Algorithm::kHybridPrimalDual}) {
        const auto scheduler = sim::make_scheduler(a, inst);
        const core::ScheduleResult result = core::run_online(inst, *scheduler);
        // Every admitted placement must honour its reliability requirement.
        const sim::PlacementStats stats = sim::placement_stats(inst, result.decisions);
        EXPECT_GE(stats.min_slack, -1e-12) << sim::algorithm_name(a);
        if (a != sim::Algorithm::kOnsitePrimalDualPure) {
            EXPECT_DOUBLE_EQ(result.max_overshoot, 0.0) << sim::algorithm_name(a);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Topologies, TopologyPipelineTest,
                         ::testing::Values("abilene", "nsfnet", "geant", "att"));

TEST(Integration, OnlineNeverBeatsOfflineBound) {
    common::Rng rng(99);
    const core::Instance inst = core::make_instance(standard_config(40), rng);
    const core::OfflineResult onsite =
        core::solve_offline(inst, core::Scheme::kOnsite, {.run_ilp = false});
    const core::OfflineResult offsite =
        core::solve_offline(inst, core::Scheme::kOffsite, {.run_ilp = false});
    ASSERT_TRUE(onsite.lp_optimal);
    ASSERT_TRUE(offsite.lp_optimal);

    const auto alg1 = sim::make_scheduler(sim::Algorithm::kOnsitePrimalDual, inst);
    EXPECT_LE(core::run_online(inst, *alg1).revenue, onsite.lp_bound + 1e-6);
    const auto alg2 = sim::make_scheduler(sim::Algorithm::kOffsitePrimalDual, inst);
    EXPECT_LE(core::run_online(inst, *alg2).revenue, offsite.lp_bound + 1e-6);
}

TEST(Integration, TraceRoundTripReproducesSchedule) {
    common::Rng rng(123);
    const core::Instance inst = core::make_instance(standard_config(50), rng);

    // Serialize the workload, reload it, rebuild the instance around it.
    std::stringstream buffer;
    workload::write_trace(buffer, inst.requests);
    core::Instance replay = inst;
    replay.requests = workload::read_trace(buffer);
    replay.validate();

    const auto s1 = sim::make_scheduler(sim::Algorithm::kOnsitePrimalDual, inst);
    const auto s2 = sim::make_scheduler(sim::Algorithm::kOnsitePrimalDual, replay);
    const core::ScheduleResult r1 = core::run_online(inst, *s1);
    const core::ScheduleResult r2 = core::run_online(replay, *s2);
    EXPECT_DOUBLE_EQ(r1.revenue, r2.revenue);
    EXPECT_EQ(r1.admitted, r2.admitted);
}

TEST(Integration, FailureInjectionAcrossSchemes) {
    common::Rng rng(321);
    const core::Instance inst = core::make_instance(standard_config(80), rng);
    sim::SimulatorConfig cfg;
    cfg.inject_failures = true;
    for (const sim::Algorithm a :
         {sim::Algorithm::kOnsitePrimalDual, sim::Algorithm::kOffsitePrimalDual}) {
        const auto scheduler = sim::make_scheduler(a, inst);
        const sim::SimulationReport report = sim::simulate(inst, *scheduler, cfg);
        if (report.served_request_slots + report.disrupted_request_slots > 200) {
            EXPECT_GE(report.empirical_availability(), 0.85) << sim::algorithm_name(a);
        }
    }
}

TEST(Integration, OffsiteSpreadsAcrossDistinctAps) {
    common::Rng rng(555);
    const core::Instance inst = core::make_instance(standard_config(60), rng);
    const auto scheduler = sim::make_scheduler(sim::Algorithm::kOffsitePrimalDual, inst);
    const core::ScheduleResult result = core::run_online(inst, *scheduler);
    const sim::PlacementStats stats = sim::placement_stats(inst, result.decisions);
    ASSERT_GT(stats.admitted, 0u);
    // Multi-site placements must have positive inter-site hop distance
    // whenever any request needed more than one site.
    if (stats.mean_sites > 1.0) {
        EXPECT_GT(stats.mean_pairwise_hops, 0.0);
    }
}

TEST(Integration, ReliabilityRatioKnobWidensReliabilityRange) {
    core::InstanceConfig cfg = standard_config(10);
    cfg.cloudlets.reliability_max = 0.999;
    cfg.set_reliability_ratio(1.05);
    EXPECT_NEAR(cfg.cloudlets.reliability_min, 0.999 / 1.05, 1e-12);
    EXPECT_THROW(cfg.set_reliability_ratio(0.9), std::invalid_argument);
}

TEST(Integration, InstanceValidationCatchesCorruption) {
    common::Rng rng(777);
    core::Instance inst = core::make_instance(standard_config(10), rng);
    inst.requests[0].requirement = 1.5;
    EXPECT_THROW(inst.validate(), std::invalid_argument);
    inst.requests[0].requirement = 0.9;
    inst.requests[0].duration = inst.horizon + 5;
    EXPECT_THROW(inst.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace vnfr
