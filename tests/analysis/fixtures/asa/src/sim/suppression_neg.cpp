// Negative fixture for suppression handling: a properly justified
// suppression silences the named rule on its own line and on the line
// below (comment-above style), and produces no findings of its own.
#include <cstdlib>

namespace vnfr::sim {

unsigned mixed_entropy_probe() {
    // Exercises both suppression placements the grammar supports.
    unsigned a =
        static_cast<unsigned>(std::rand());  // vnfr-asa: allow(nondet-rand) fixture exercising a same-line suppression
    // vnfr-asa: allow(nondet-rand) fixture exercising a comment-above suppression
    unsigned b = static_cast<unsigned>(std::rand());
    return a ^ b;
}

}  // namespace vnfr::sim
