file(REMOVE_RECURSE
  "CMakeFiles/vnfr_workload.dir/generator.cpp.o"
  "CMakeFiles/vnfr_workload.dir/generator.cpp.o.d"
  "CMakeFiles/vnfr_workload.dir/trace_io.cpp.o"
  "CMakeFiles/vnfr_workload.dir/trace_io.cpp.o.d"
  "libvnfr_workload.a"
  "libvnfr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
