// Chaos harness for the admission controller: run a request trace to
// completion once (the baseline), then repeatedly kill the controller at
// randomized WAL-append points, restart it from disk, finish the trace,
// and check that the recovered run is indistinguishable from the
// uninterrupted one — bit-identical state digest, identical revenue bits,
// the same admitted set with no double-admits, and zero capacity
// violations under independent verification (core::verify_schedule).
//
// Kill points and driving pattern derive from counter-based RNG streams
// of the master seed, so a study is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/offline.hpp"
#include "serve/snapshot.hpp"

namespace vnfr::serve {

struct ChaosStudyConfig {
    core::Scheme scheme{core::Scheme::kOnsite};
    std::uint64_t master_seed{0};
    /// Number of randomized kill-and-restart trials.
    std::size_t kill_points{25};
    /// Instead of sampling `kill_points` random crash points, kill at
    /// EVERY WAL append of the baseline run (1 .. outcomes-1). With
    /// group_commit = B this sweeps every batch boundary (kill point
    /// divisible by B) and every mid-batch position — the crash matrix.
    bool exhaustive_kill_points{false};
    /// Controller snapshot cadence (WAL records between checkpoints).
    std::size_t checkpoint_every{16};
    /// Admission queue bound; the drive pattern overflows it on purpose
    /// so shedding is exercised across crashes.
    std::size_t queue_capacity{8};
    /// Passed through to ServeConfig: WAL records per fdatasync in pump.
    std::size_t group_commit{1};
    /// Passed through to ServeConfig: slot bands for parallel decide.
    std::size_t decide_shards{1};
    /// Passed through to ServeConfig: wave-executor threads.
    std::size_t decide_threads{1};
    /// Additionally truncate the WAL tail by a few bytes on every other
    /// trial, simulating a torn final append (with group commit the cut
    /// can land inside a committed group — a torn group write).
    bool torn_tails{true};
    /// Scratch directory for controller state; the study creates and
    /// reuses `<work_dir>/baseline` and `<work_dir>/trial`.
    std::string work_dir;
};

/// One kill-and-restart trial's outcome; `ok()` is the acceptance gate.
struct ChaosTrial {
    std::uint64_t kill_after_records{0};  ///< crash after this many WAL appends
    /// The kill point is NOT a group-commit boundary: the crash lands
    /// with staged-but-unsynced records that die with the process.
    bool mid_batch{false};
    bool crashed{false};                  ///< the injected crash actually fired
    bool torn_tail_applied{false};
    std::uint64_t truncated_bytes{0};
    /// What WAL recovery *observed* on revival (RecoveryStats): bytes and
    /// record fragments dropped as a torn tail. Nonzero whenever the crash
    /// itself tore an append, not only when the study truncated the file.
    std::uint64_t recovered_torn_tail_bytes{0};
    std::uint64_t recovered_torn_tail_records{0};
    std::size_t submitted_at_crash{0};    ///< completed submits before the crash
    bool digest_match{false};    ///< state digest equals the baseline's
    bool revenue_match{false};   ///< revenue + shed revenue bit-equal
    bool metrics_match{false};   ///< all counters equal
    bool admitted_match{false};  ///< same admitted (seq, id) sequence
    bool no_double_admits{false};
    bool capacity_ok{false};     ///< verify_schedule found no violations
    /// A read-only WAL scrub of the trial directory after the recovered
    /// run finished reports zero findings: every retained generation and
    /// the snapshot re-verify their CRCs and cross-file invariants.
    bool scrub_clean{false};

    [[nodiscard]] bool ok() const {
        return crashed && digest_match && revenue_match && metrics_match &&
               admitted_match && no_double_admits && capacity_ok &&
               scrub_clean;
    }
};

struct ChaosStudyResult {
    core::Scheme scheme{core::Scheme::kOnsite};
    std::uint64_t baseline_digest{0};
    ServeMetrics baseline_metrics;
    /// Outcomes (decisions + sheds) in the baseline run — one per request.
    std::uint64_t baseline_outcomes{0};
    /// Restarting an idle controller from its own checkpoint reproduces
    /// the digest.
    bool baseline_reload_ok{false};
    /// The baseline itself passes independent schedule verification.
    bool baseline_capacity_ok{false};
    /// Scrubbing the baseline's directory after its final checkpoint
    /// reports zero findings.
    bool baseline_scrub_clean{false};
    std::vector<ChaosTrial> trials;
    std::size_t failed_trials{0};

    [[nodiscard]] bool ok() const {
        return baseline_reload_ok && baseline_capacity_ok &&
               baseline_scrub_clean && failed_trials == 0;
    }
};

/// Runs the study over `instance.requests` as the stream. Throws
/// std::invalid_argument for an empty trace or missing work_dir.
ChaosStudyResult run_chaos_study(const core::Instance& instance,
                                 const ChaosStudyConfig& config);

}  // namespace vnfr::serve
