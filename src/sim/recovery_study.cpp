#include "sim/recovery_study.hpp"

#include <bit>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace vnfr::sim {

namespace {

void mix_u64(std::uint64_t& h, std::uint64_t v) {
    // FNV-1a over the 8 bytes of v (same construction as metrics_checksum).
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffULL;
        h *= 0x100000001b3ULL;
    }
}

void mix_double(std::uint64_t& h, double v) { mix_u64(h, std::bit_cast<std::uint64_t>(v)); }

void mix_stats(std::uint64_t& h, const common::RunningStats& s) {
    mix_u64(h, s.count());
    mix_double(h, s.sum());
    mix_double(h, s.mean());
    mix_double(h, s.variance());
    mix_double(h, s.min());
    mix_double(h, s.max());
}

void accumulate(RecoveryReport& total, const RecoveryReport& rep) {
    total.request_slots += rep.request_slots;
    total.served_slots += rep.served_slots;
    total.disrupted_slots += rep.disrupted_slots;
    total.cloudlet_crashes += rep.cloudlet_crashes;
    total.instance_crashes += rep.instance_crashes;
    total.transient_blips += rep.transient_blips;
    total.rack_failures += rep.rack_failures;
    total.instances_lost += rep.instances_lost;
    total.local_respawns += rep.local_respawns;
    total.remote_migrations += rep.remote_migrations;
    total.readmissions += rep.readmissions;
    total.failed_recoveries += rep.failed_recoveries;
    total.local_failovers += rep.local_failovers;
    total.remote_failovers += rep.remote_failovers;
    total.outages += rep.outages;
    total.recovered_outages += rep.recovered_outages;
    total.recovery_slots_total += rep.recovery_slots_total;
    total.shed_requests += rep.shed_requests;
    total.shed_revenue += rep.shed_revenue;
    total.sla_requests += rep.sla_requests;
    total.sla_violations += rep.sla_violations;
    total.promised_availability_sum += rep.promised_availability_sum;
    total.delivered_availability_sum += rep.delivered_availability_sum;
    total.capacity_violations += rep.capacity_violations;
}

}  // namespace

std::uint64_t recovery_metrics_checksum(const RecoveryStudyOutcome& outcome) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const RecoveryReport& t = outcome.total;
    mix_u64(h, t.request_slots);
    mix_u64(h, t.served_slots);
    mix_u64(h, t.disrupted_slots);
    mix_u64(h, t.cloudlet_crashes);
    mix_u64(h, t.instance_crashes);
    mix_u64(h, t.transient_blips);
    mix_u64(h, t.rack_failures);
    mix_u64(h, t.instances_lost);
    mix_u64(h, t.local_respawns);
    mix_u64(h, t.remote_migrations);
    mix_u64(h, t.readmissions);
    mix_u64(h, t.failed_recoveries);
    mix_u64(h, t.local_failovers);
    mix_u64(h, t.remote_failovers);
    mix_u64(h, t.outages);
    mix_u64(h, t.recovered_outages);
    mix_u64(h, t.recovery_slots_total);
    mix_u64(h, t.shed_requests);
    mix_double(h, t.shed_revenue);
    mix_u64(h, t.sla_requests);
    mix_u64(h, t.sla_violations);
    mix_double(h, t.promised_availability_sum);
    mix_double(h, t.delivered_availability_sum);
    mix_u64(h, t.capacity_violations);
    mix_stats(h, outcome.availability);
    mix_stats(h, outcome.delivered);
    mix_stats(h, outcome.time_to_recover);
    mix_stats(h, outcome.shed_revenue);
    return h;
}

RecoveryStudyOutcome run_recovery_replications(
    const core::Instance& instance, const std::vector<core::Decision>& decisions,
    const RecoveryStudyConfig& config) {
    VNFR_CHECK(config.replications >= 1,
               "run_recovery_replications: replications must be >= 1");

    const FaultScheduleFactory injector =
        config.injector
            ? config.injector
            : FaultScheduleFactory(
                  [&config](const core::Instance& inst,
                            const std::vector<core::Decision>& decs, std::uint64_t seed) {
                      return generate_fault_schedule(inst, decs, config.faults, seed);
                  });

    // Fan the replications out; each writes only its own pre-sized slot.
    std::vector<RecoveryReport> reps(config.replications);
    {
        common::ThreadPool pool(config.threads);
        pool.parallel_for_blocked(
            0, config.replications, 1, [&](std::size_t lo, std::size_t hi) {
                for (std::size_t k = lo; k < hi; ++k) {
                    const FaultSchedule schedule = injector(
                        instance, decisions, common::stream_seed(config.master_seed, k));
                    reps[k] = run_recovery_study(instance, decisions, schedule,
                                                 config.recovery);
                }
            });
    }

    // Ordered reduction in ascending k — the other half of the determinism
    // contract.
    RecoveryStudyOutcome outcome;
    for (std::size_t k = 0; k < config.replications; ++k) {
        const RecoveryReport& rep = reps[k];
        accumulate(outcome.total, rep);
        outcome.availability.add(rep.availability());
        outcome.delivered.add(rep.mean_delivered());
        outcome.time_to_recover.add(rep.mean_time_to_recover());
        outcome.shed_revenue.add(rep.shed_revenue);
    }
    return outcome;
}

}  // namespace vnfr::sim
