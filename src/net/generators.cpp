#include "net/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "net/algorithms.hpp"

namespace vnfr::net {

namespace {

/// Connect components by linking each component's first node to the
/// previous component's first node (arbitrary but deterministic).
void connect_components(Graph& g, double default_weight) {
    auto comps = connected_components(g);
    if (comps.count <= 1) return;
    std::vector<NodeId> representative(static_cast<std::size_t>(comps.count), NodeId{});
    for (std::size_t v = 0; v < g.node_count(); ++v) {
        auto& rep = representative[static_cast<std::size_t>(comps.label[v])];
        if (!rep.valid()) rep = NodeId{static_cast<std::int64_t>(v)};
    }
    for (std::size_t c = 1; c < representative.size(); ++c) {
        g.add_edge(representative[c - 1], representative[c], default_weight);
    }
}

}  // namespace

Graph erdos_renyi(std::size_t n, double p, common::Rng& rng, bool force_connected) {
    if (p < 0.0 || p > 1.0) throw std::invalid_argument("erdos_renyi: p outside [0,1]");
    Graph g(n);
    std::vector<std::pair<NodeId, NodeId>> tree_edges;
    if (force_connected && n > 1) {
        // Random spanning tree: attach node i to a uniformly random earlier node.
        for (std::size_t i = 1; i < n; ++i) {
            const auto j = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
            g.add_edge(NodeId{static_cast<std::int64_t>(i)},
                       NodeId{static_cast<std::int64_t>(j)});
        }
    }
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const NodeId a{static_cast<std::int64_t>(i)};
            const NodeId b{static_cast<std::int64_t>(j)};
            if (!g.has_edge(a, b) && rng.bernoulli(p)) g.add_edge(a, b);
        }
    }
    return g;
}

Graph barabasi_albert(std::size_t n, std::size_t m, common::Rng& rng) {
    if (m == 0) throw std::invalid_argument("barabasi_albert: m == 0");
    if (n <= m) throw std::invalid_argument("barabasi_albert: n must exceed m");
    Graph g(n);
    // Seed: clique on the first m+1 nodes.
    for (std::size_t i = 0; i <= m; ++i) {
        for (std::size_t j = i + 1; j <= m; ++j) {
            g.add_edge(NodeId{static_cast<std::int64_t>(i)},
                       NodeId{static_cast<std::int64_t>(j)});
        }
    }
    // Degree-proportional sampling via a repeated-endpoint list.
    std::vector<std::int64_t> endpoint_pool;
    for (const Edge& e : g.edges()) {
        endpoint_pool.push_back(e.a.value);
        endpoint_pool.push_back(e.b.value);
    }
    for (std::size_t v = m + 1; v < n; ++v) {
        std::vector<std::int64_t> chosen;
        while (chosen.size() < m) {
            const auto pick = endpoint_pool[static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(endpoint_pool.size()) - 1))];
            if (std::find(chosen.begin(), chosen.end(), pick) == chosen.end()) {
                chosen.push_back(pick);
            }
        }
        for (const std::int64_t target : chosen) {
            g.add_edge(NodeId{static_cast<std::int64_t>(v)}, NodeId{target});
            endpoint_pool.push_back(static_cast<std::int64_t>(v));
            endpoint_pool.push_back(target);
        }
    }
    return g;
}

Graph waxman(std::size_t n, double alpha, double beta, common::Rng& rng,
             bool force_connected) {
    if (alpha <= 0.0 || alpha > 1.0) throw std::invalid_argument("waxman: alpha outside (0,1]");
    if (beta <= 0.0 || beta > 1.0) throw std::invalid_argument("waxman: beta outside (0,1]");
    Graph g;
    for (std::size_t i = 0; i < n; ++i) {
        g.add_node({}, rng.uniform01(), rng.uniform01());
    }
    double max_dist = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            max_dist = std::max(max_dist, g.euclidean(NodeId{static_cast<std::int64_t>(i)},
                                                      NodeId{static_cast<std::int64_t>(j)}));
        }
    }
    if (max_dist <= 0.0) max_dist = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const NodeId a{static_cast<std::int64_t>(i)};
            const NodeId b{static_cast<std::int64_t>(j)};
            const double d = g.euclidean(a, b);
            if (rng.bernoulli(alpha * std::exp(-d / (beta * max_dist)))) {
                g.add_edge(a, b, std::max(d, 1e-9));
            }
        }
    }
    if (force_connected) connect_components(g, max_dist);
    return g;
}

Graph ring(std::size_t n) {
    if (n < 3) throw std::invalid_argument("ring: need at least 3 nodes");
    Graph g(n);
    for (std::size_t i = 0; i < n; ++i) {
        g.add_edge(NodeId{static_cast<std::int64_t>(i)},
                   NodeId{static_cast<std::int64_t>((i + 1) % n)});
    }
    return g;
}

Graph grid(std::size_t rows, std::size_t cols) {
    if (rows == 0 || cols == 0) throw std::invalid_argument("grid: zero dimension");
    Graph g(rows * cols);
    const auto id = [cols](std::size_t r, std::size_t c) {
        return NodeId{static_cast<std::int64_t>(r * cols + c)};
    };
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
            if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
        }
    }
    return g;
}

Graph complete(std::size_t n) {
    Graph g(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            g.add_edge(NodeId{static_cast<std::int64_t>(i)},
                       NodeId{static_cast<std::int64_t>(j)});
        }
    }
    return g;
}

}  // namespace vnfr::net
