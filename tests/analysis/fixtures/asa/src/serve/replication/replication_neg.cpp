// Negative fixture for the replication-ordering rules: the canonical
// sequences (apply -> ack; ack -> release; checkpoint -> promote) must
// produce zero findings, and the trigger functions' own definitions must
// not fire the rules on their signature lines.
#include <cstdint>

namespace vnfr::serve::replication {

struct Ack { std::uint64_t generation{0}; };

Ack latest_ack();
bool apply_replicated(int rec);
void release_wals_below(std::uint64_t generation);
void mark_promoted();
void checkpoint();

// A definition of a trigger function is not a call site of itself.
void send_ack(const Ack& ack) {
    (void)ack;
}

void ack_after_apply(const Ack& ack, int rec) {
    apply_replicated(rec);
    send_ack(ack);
}

void release_acked() {
    const Ack ack = latest_ack();
    release_wals_below(ack.generation);
}

void promote_durably() {
    checkpoint();
    mark_promoted();
}

}  // namespace vnfr::serve::replication
