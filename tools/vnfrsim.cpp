// vnfrsim — command-line driver for the reliability-aware VNF scheduling
// suite. Synthesizes (or replays) a workload on a chosen topology, runs the
// selected online algorithms and optionally the offline bound, and prints a
// comparison table or CSV.
//
//   vnfrsim --topology geant --cloudlets 8 --requests 400 --seeds 5
//   vnfrsim --algorithms onsite-primal-dual,onsite-greedy --offline-bound
//   vnfrsim --profile google --inject-failures --csv
//   vnfrsim --write-trace trace.csv / --read-trace trace.csv
//
// Run with --help for the full flag list.
#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <sys/stat.h>

#include "common/rng.hpp"
#include "core/instance.hpp"
#include "core/offline.hpp"
#include "net/topology_zoo.hpp"
#include "report/csv.hpp"
#include "report/json.hpp"
#include "report/table.hpp"
#include "serve/admission_controller.hpp"
#include "sim/experiment.hpp"
#include "sim/metrics.hpp"
#include "sim/recovery_study.hpp"
#include "sim/simulator.hpp"
#include "workload/trace_io.hpp"

namespace {

using namespace vnfr;

struct Options {
    std::string topology{"geant"};
    std::size_t cloudlets{8};
    double capacity_lo{40}, capacity_hi{60};
    double cloudlet_rel_lo{0.95}, cloudlet_rel_hi{0.999};
    std::size_t requests{400};
    TimeSlot horizon{24};
    TimeSlot duration_lo{4}, duration_hi{16};
    double requirement_lo{0.90}, requirement_hi{0.97};
    double payment_rate_lo{1.0}, payment_rate_hi{5.0};
    std::string profile{"uniform"};
    std::vector<std::string> algorithms;
    std::uint64_t seed{42};
    std::size_t seeds{1};
    bool offline_bound{false};
    bool inject_failures{false};
    std::optional<sim::RecoveryPolicy> recovery;
    std::size_t fault_replications{3};
    bool csv{false};
    std::string write_trace;
    std::string read_trace;
    // --serve: stream the workload through the crash-safe admission
    // controller, persisting state under this directory.
    std::string serve_dir;
    std::size_t checkpoint_every{64};
    std::size_t queue_capacity{256};
    std::uint64_t chaos_kill{0};
    std::size_t group_commit{1};
    std::size_t decide_shards{1};
    std::size_t decide_threads{1};
};

[[noreturn]] void usage(int exit_code) {
    std::cout <<
        R"(vnfrsim - reliability-aware VNF scheduling simulator

Workload / network:
  --topology NAME           abilene | nsfnet | geant | att       [geant]
  --cloudlets M             number of cloudlets                  [8]
  --capacity LO:HI          cloudlet capacity range              [40:60]
  --cloudlet-reliability LO:HI                                   [0.95:0.999]
  --requests N              number of requests                   [400]
  --horizon T               time slots                           [24]
  --durations LO:HI         request duration range (slots)       [4:16]
  --requirements LO:HI      reliability requirement range        [0.90:0.97]
  --payment-rates LO:HI     payment-rate range (H = HI/LO)       [1:5]
  --profile P               uniform | google                     [uniform]
  --read-trace FILE         replay a CSV trace instead of generating
  --write-trace FILE        save the generated trace (first seed)

Execution:
  --algorithms A,B,...      onsite-primal-dual | onsite-primal-dual-pure |
                            onsite-greedy | offsite-primal-dual |
                            offsite-greedy | hybrid-primal-dual  [all]
  --seed S                  base seed                            [42]
  --seeds K                 independent repetitions              [1]
  --offline-bound           also compute the offline LP bound (both schemes)
  --inject-failures         per-slot failure injection, report availability
  --recovery POLICY         replay each schedule through the fault-injection
                            runtime: none | local-respawn | remote-migrate |
                            readmit; reports delivered availability, time to
                            recover and shed revenue
  --fault-replications K    Monte-Carlo fault schedules per seed      [3]

Serve mode (crash-safe admission controller):
  --serve DIR               stream requests through the durable admission
                            controller, persisting snapshots + WAL in DIR;
                            re-running against a non-empty DIR resumes from
                            the recovered state (already-decided requests
                            are skipped, never double-admitted). Requires a
                            single primal-dual algorithm (default
                            onsite-primal-dual).
  --checkpoint-every N      WAL records between snapshots            [64]
  --queue-capacity N        admission queue bound; overflow sheds the
                            lowest-payment request                   [256]
  --chaos-kill K            kill the controller after K WAL appends
                            (exit code 2); rerun --serve to recover
  --group-commit N          WAL records per fdatasync in pump (group
                            commit; 1 = per-record durability)     [1]
  --decide-shards N         slot bands for wave-parallel decide
                            (1 = sequential; never changes results) [1]
  --decide-threads N        threads executing decision waves        [1]

Output:
  --csv                     machine-readable CSV instead of a table
  --help                    this text
)";
    std::exit(exit_code);
}

std::pair<double, double> parse_range(const std::string& value, const std::string& flag) {
    const auto colon = value.find(':');
    if (colon == std::string::npos) {
        throw std::invalid_argument(flag + " expects LO:HI, got '" + value + "'");
    }
    return {std::stod(value.substr(0, colon)), std::stod(value.substr(colon + 1))};
}

Options parse_args(int argc, char** argv) {
    Options opt;
    const auto need_value = [&](int& i, const std::string& flag) -> std::string {
        if (i + 1 >= argc) throw std::invalid_argument(flag + " requires a value");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--help" || flag == "-h") usage(0);
        else if (flag == "--topology") opt.topology = need_value(i, flag);
        else if (flag == "--cloudlets") opt.cloudlets = std::stoul(need_value(i, flag));
        else if (flag == "--capacity")
            std::tie(opt.capacity_lo, opt.capacity_hi) = parse_range(need_value(i, flag), flag);
        else if (flag == "--cloudlet-reliability")
            std::tie(opt.cloudlet_rel_lo, opt.cloudlet_rel_hi) =
                parse_range(need_value(i, flag), flag);
        else if (flag == "--requests") opt.requests = std::stoul(need_value(i, flag));
        else if (flag == "--horizon")
            opt.horizon = static_cast<TimeSlot>(std::stoi(need_value(i, flag)));
        else if (flag == "--durations") {
            const auto [lo, hi] = parse_range(need_value(i, flag), flag);
            opt.duration_lo = static_cast<TimeSlot>(lo);
            opt.duration_hi = static_cast<TimeSlot>(hi);
        } else if (flag == "--requirements")
            std::tie(opt.requirement_lo, opt.requirement_hi) =
                parse_range(need_value(i, flag), flag);
        else if (flag == "--payment-rates")
            std::tie(opt.payment_rate_lo, opt.payment_rate_hi) =
                parse_range(need_value(i, flag), flag);
        else if (flag == "--profile") opt.profile = need_value(i, flag);
        else if (flag == "--algorithms") {
            std::stringstream ss(need_value(i, flag));
            std::string name;
            while (std::getline(ss, name, ',')) {
                if (!name.empty()) opt.algorithms.push_back(name);
            }
        } else if (flag == "--seed") opt.seed = std::stoull(need_value(i, flag));
        else if (flag == "--seeds") opt.seeds = std::stoul(need_value(i, flag));
        else if (flag == "--offline-bound") opt.offline_bound = true;
        else if (flag == "--inject-failures") opt.inject_failures = true;
        else if (flag == "--recovery") {
            const std::string name = need_value(i, flag);
            if (name == "none") opt.recovery = sim::RecoveryPolicy::kNone;
            else if (name == "local-respawn") opt.recovery = sim::RecoveryPolicy::kLocalRespawn;
            else if (name == "remote-migrate") opt.recovery = sim::RecoveryPolicy::kRemoteMigrate;
            else if (name == "readmit") opt.recovery = sim::RecoveryPolicy::kReadmit;
            else throw std::invalid_argument("unknown recovery policy '" + name +
                                             "' (see --help)");
        } else if (flag == "--fault-replications")
            opt.fault_replications = std::stoul(need_value(i, flag));
        else if (flag == "--serve") opt.serve_dir = need_value(i, flag);
        else if (flag == "--checkpoint-every")
            opt.checkpoint_every = std::stoul(need_value(i, flag));
        else if (flag == "--queue-capacity")
            opt.queue_capacity = std::stoul(need_value(i, flag));
        else if (flag == "--chaos-kill")
            opt.chaos_kill = std::stoull(need_value(i, flag));
        else if (flag == "--group-commit")
            opt.group_commit = std::stoul(need_value(i, flag));
        else if (flag == "--decide-shards")
            opt.decide_shards = std::stoul(need_value(i, flag));
        else if (flag == "--decide-threads")
            opt.decide_threads = std::stoul(need_value(i, flag));
        else if (flag == "--csv") opt.csv = true;
        else if (flag == "--write-trace") opt.write_trace = need_value(i, flag);
        else if (flag == "--read-trace") opt.read_trace = need_value(i, flag);
        else throw std::invalid_argument("unknown flag '" + flag + "' (see --help)");
    }
    return opt;
}

const std::map<std::string, sim::Algorithm>& algorithm_registry() {
    static const std::map<std::string, sim::Algorithm> registry{
        {"onsite-primal-dual", sim::Algorithm::kOnsitePrimalDual},
        {"onsite-primal-dual-pure", sim::Algorithm::kOnsitePrimalDualPure},
        {"onsite-greedy", sim::Algorithm::kOnsiteGreedy},
        {"offsite-primal-dual", sim::Algorithm::kOffsitePrimalDual},
        {"offsite-greedy", sim::Algorithm::kOffsiteGreedy},
        {"hybrid-primal-dual", sim::Algorithm::kHybridPrimalDual},
    };
    return registry;
}

core::InstanceConfig to_instance_config(const Options& opt) {
    core::InstanceConfig cfg;
    cfg.topology = opt.topology;
    cfg.cloudlets.count = opt.cloudlets;
    cfg.cloudlets.capacity_min = opt.capacity_lo;
    cfg.cloudlets.capacity_max = opt.capacity_hi;
    cfg.cloudlets.reliability_min = opt.cloudlet_rel_lo;
    cfg.cloudlets.reliability_max = opt.cloudlet_rel_hi;
    if (opt.profile == "google") {
        cfg.workload = workload::google_cluster_like(opt.horizon, opt.requests);
    } else if (opt.profile == "uniform") {
        cfg.workload.horizon = opt.horizon;
        cfg.workload.count = opt.requests;
    } else {
        throw std::invalid_argument("unknown profile '" + opt.profile + "'");
    }
    cfg.workload.duration_min = opt.duration_lo;
    cfg.workload.duration_max = opt.duration_hi;
    cfg.workload.requirement_min = opt.requirement_lo;
    cfg.workload.requirement_max = opt.requirement_hi;
    cfg.workload.payment_rate_min = opt.payment_rate_lo;
    cfg.workload.payment_rate_max = opt.payment_rate_hi;
    return cfg;
}

struct AlgorithmAggregate {
    common::RunningStats revenue;
    common::RunningStats acceptance;
    common::RunningStats availability;
    common::RunningStats empirical;
    common::RunningStats access_hops;
    // --recovery: the schedule replayed through the fault-injection runtime.
    common::RunningStats recovery_delivered;
    common::RunningStats recovery_ttr;
    common::RunningStats recovery_shed;
    common::RunningStats recovery_sla_rate;
    bool recovery_unavailable{false};  ///< schedule not replayable (pure Alg. 1)
};

/// --serve: one pass of the workload through the durable admission
/// controller. Restarts (including after --chaos-kill) recover from the
/// snapshot + WAL in the directory; resubmitted covered requests are
/// skipped, so running this any number of times never double-admits.
int run_serve(const Options& opt) {
    std::string algorithm = "onsite-primal-dual";
    if (!opt.algorithms.empty()) {
        if (opt.algorithms.size() > 1) {
            throw std::invalid_argument("--serve takes exactly one algorithm");
        }
        algorithm = opt.algorithms.front();
    }
    core::Scheme scheme;
    if (algorithm == "onsite-primal-dual") {
        scheme = core::Scheme::kOnsite;
    } else if (algorithm == "offsite-primal-dual") {
        scheme = core::Scheme::kOffsite;
    } else {
        throw std::invalid_argument(
            "--serve supports onsite-primal-dual or offsite-primal-dual, not '" +
            algorithm + "'");
    }
    if (::mkdir(opt.serve_dir.c_str(), 0755) != 0 && errno != EEXIST) {
        throw std::invalid_argument("--serve: cannot create directory " + opt.serve_dir);
    }

    common::Rng rng(opt.seed);
    core::Instance instance = core::make_instance(to_instance_config(opt), rng);
    if (!opt.read_trace.empty()) {
        instance.requests = workload::read_trace_file(opt.read_trace);
        instance.validate();
    }

    serve::ServeConfig cfg;
    cfg.data_dir = opt.serve_dir;
    cfg.checkpoint_every = opt.checkpoint_every;
    cfg.queue_capacity = opt.queue_capacity;
    cfg.group_commit = opt.group_commit;
    cfg.decide_shards = opt.decide_shards;
    cfg.decide_threads = opt.decide_threads;
    serve::AdmissionController controller(instance, scheme, cfg);
    if (controller.resume_cursor() > 0 || controller.metrics().processed > 0) {
        const serve::RecoveryStats rec = controller.recovery_stats();
        std::cout << "resumed from " << opt.serve_dir << ": "
                  << controller.metrics().processed << " decided, "
                  << controller.metrics().shed << " shed; next uncovered seq "
                  << controller.resume_cursor() << "\n";
        std::cout << "recovery: snapshot=" << (rec.recovered_snapshot ? "yes" : "no")
                  << ", wal records replayed " << rec.wal_records_replayed;
        if (rec.torn_tail_bytes > 0) {
            std::cout << "; torn tail dropped: " << rec.torn_tail_bytes
                      << " byte(s) / " << rec.torn_tail_records
                      << " record(s) (crash mid-append, inspect with "
                         "tools/vnfr_waldump.py)";
        }
        std::cout << "\n";
    }
    if (opt.chaos_kill > 0) controller.crash_after_records(opt.chaos_kill);

    try {
        for (std::size_t i = 0; i < instance.requests.size(); ++i) {
            controller.submit(i, instance.requests[i]);
            if ((i + 1) % opt.queue_capacity == 0) controller.drain();
        }
        controller.drain();
        controller.checkpoint();
    } catch (const serve::CrashInjected& e) {
        std::cout << "chaos: " << e.what() << "; durable state is in "
                  << opt.serve_dir << ", rerun --serve to recover\n";
        return 2;
    }

    const serve::ServeMetrics& m = controller.metrics();
    report::Table table({"metric", "value"});
    table.add_row({"algorithm", algorithm});
    table.add_row({"requests", std::to_string(instance.requests.size())});
    table.add_row({"processed", std::to_string(m.processed)});
    table.add_row({"admitted", std::to_string(m.admitted)});
    table.add_row({"rejected", std::to_string(m.rejected)});
    table.add_row({"shed", std::to_string(m.shed)});
    table.add_row({"revenue", report::format_double(m.revenue, 2)});
    table.add_row({"shed revenue", report::format_double(m.shed_revenue, 2)});
    table.add_row({"state digest", report::hex_u64(controller.state_digest())});
    table.add_row({"wal generation", std::to_string(controller.wal_generation())});
    std::cout << table.to_text();
    return 0;
}

int run(const Options& opt) {
    if (!opt.serve_dir.empty()) return run_serve(opt);
    std::vector<sim::Algorithm> algorithms;
    if (opt.algorithms.empty()) {
        for (const auto& [name, a] : algorithm_registry()) {
            (void)name;
            algorithms.push_back(a);
        }
    } else {
        for (const std::string& name : opt.algorithms) {
            const auto it = algorithm_registry().find(name);
            if (it == algorithm_registry().end()) {
                throw std::invalid_argument("unknown algorithm '" + name + "' (see --help)");
            }
            algorithms.push_back(it->second);
        }
    }

    const core::InstanceConfig cfg = to_instance_config(opt);
    std::vector<AlgorithmAggregate> aggregates(algorithms.size());
    common::RunningStats onsite_bound;
    common::RunningStats offsite_bound;

    for (std::size_t k = 0; k < opt.seeds; ++k) {
        common::Rng rng(opt.seed + k);
        core::Instance instance = core::make_instance(cfg, rng);
        if (!opt.read_trace.empty()) {
            instance.requests = workload::read_trace_file(opt.read_trace);
            instance.validate();
        }
        if (k == 0 && !opt.write_trace.empty()) {
            workload::write_trace_file(opt.write_trace, instance.requests);
        }

        for (std::size_t ai = 0; ai < algorithms.size(); ++ai) {
            const auto scheduler = sim::make_scheduler(algorithms[ai], instance);
            sim::SimulatorConfig sim_cfg;
            sim_cfg.inject_failures = opt.inject_failures;
            sim_cfg.failure_seed = opt.seed + k;
            const sim::SimulationReport report = sim::simulate(instance, *scheduler, sim_cfg);
            const sim::PlacementStats stats =
                sim::placement_stats(instance, report.schedule.decisions);
            AlgorithmAggregate& agg = aggregates[ai];
            agg.revenue.add(report.schedule.revenue);
            agg.acceptance.add(static_cast<double>(report.schedule.admitted) /
                               static_cast<double>(instance.requests.size()));
            agg.availability.add(stats.mean_availability);
            if (opt.inject_failures) agg.empirical.add(report.empirical_availability());
            agg.access_hops.add(stats.mean_access_hops);
            if (opt.recovery) {
                sim::RecoveryStudyConfig recovery_cfg;
                recovery_cfg.recovery.policy = *opt.recovery;
                recovery_cfg.replications = opt.fault_replications;
                recovery_cfg.master_seed = common::stream_seed(opt.seed, 1000 + k);
                try {
                    const sim::RecoveryStudyOutcome outcome = sim::run_recovery_replications(
                        instance, report.schedule.decisions, recovery_cfg);
                    agg.recovery_delivered.add(outcome.total.availability());
                    agg.recovery_ttr.add(outcome.total.mean_time_to_recover());
                    agg.recovery_shed.add(outcome.total.shed_revenue);
                    agg.recovery_sla_rate.add(
                        outcome.total.sla_requests == 0
                            ? 0.0
                            : static_cast<double>(outcome.total.sla_violations) /
                                  static_cast<double>(outcome.total.sla_requests));
                } catch (const std::invalid_argument&) {
                    // Pure Algorithm 1 schedules can overbook capacity and
                    // are not replayable through the enforcing ledger.
                    agg.recovery_unavailable = true;
                }
            }
        }
        if (opt.offline_bound) {
            onsite_bound.add(
                core::solve_offline(instance, core::Scheme::kOnsite, {.run_ilp = false})
                    .lp_bound);
            offsite_bound.add(
                core::solve_offline(instance, core::Scheme::kOffsite, {.run_ilp = false})
                    .lp_bound);
        }
    }

    if (opt.csv) {
        report::CsvWriter writer(std::cout);
        std::vector<std::string> header{"algorithm",    "revenue",
                                        "revenue_ci95", "acceptance",
                                        "availability", "empirical_availability",
                                        "access_hops"};
        if (opt.recovery) {
            header.insert(header.end(),
                          {"recovery_availability", "recovery_ttr",
                           "recovery_shed_revenue", "recovery_sla_violation_rate"});
        }
        writer.write_header(header);
        for (std::size_t ai = 0; ai < algorithms.size(); ++ai) {
            const AlgorithmAggregate& agg = aggregates[ai];
            std::vector<std::string> row{
                std::string(sim::algorithm_name(algorithms[ai])),
                std::to_string(agg.revenue.mean()),
                std::to_string(agg.revenue.ci95_halfwidth()),
                std::to_string(agg.acceptance.mean()),
                std::to_string(agg.availability.mean()),
                std::to_string(agg.empirical.mean()),
                std::to_string(agg.access_hops.mean())};
            if (opt.recovery) {
                if (agg.recovery_unavailable) {
                    row.insert(row.end(), {"", "", "", ""});
                } else {
                    row.insert(row.end(),
                               {std::to_string(agg.recovery_delivered.mean()),
                                std::to_string(agg.recovery_ttr.mean()),
                                std::to_string(agg.recovery_shed.mean()),
                                std::to_string(agg.recovery_sla_rate.mean())});
                }
            }
            writer.write_row(row);
        }
        if (opt.offline_bound) {
            const std::size_t padding = header.size() - 3;
            std::vector<std::string> onsite_row{
                "offline-bound-onsite", std::to_string(onsite_bound.mean()),
                std::to_string(onsite_bound.ci95_halfwidth())};
            std::vector<std::string> offsite_row{
                "offline-bound-offsite", std::to_string(offsite_bound.mean()),
                std::to_string(offsite_bound.ci95_halfwidth())};
            onsite_row.resize(3 + padding);
            offsite_row.resize(3 + padding);
            writer.write_row(onsite_row);
            writer.write_row(offsite_row);
        }
        return 0;
    }

    std::cout << "vnfrsim: " << opt.topology << ", " << opt.cloudlets << " cloudlets, "
              << opt.requests << " requests x " << opt.seeds << " seed(s), horizon "
              << opt.horizon << "\n\n";
    report::Table table({"algorithm", "revenue", "acceptance", "availability",
                         opt.inject_failures ? "empirical avail" : "-", "access hops"});
    for (std::size_t ai = 0; ai < algorithms.size(); ++ai) {
        const AlgorithmAggregate& agg = aggregates[ai];
        table.add_row({std::string(sim::algorithm_name(algorithms[ai])),
                       report::format_mean_ci(agg.revenue.mean(),
                                              agg.revenue.ci95_halfwidth()),
                       report::format_double(agg.acceptance.mean(), 3),
                       report::format_double(agg.availability.mean(), 4),
                       opt.inject_failures ? report::format_double(agg.empirical.mean(), 4)
                                           : "-",
                       report::format_double(agg.access_hops.mean(), 2)});
    }
    if (opt.offline_bound) {
        table.add_row({"offline-bound (on-site)",
                       report::format_double(onsite_bound.mean(), 1), "-", "-", "-", "-"});
        table.add_row({"offline-bound (off-site)",
                       report::format_double(offsite_bound.mean(), 1), "-", "-", "-", "-"});
    }
    std::cout << table.to_text();

    if (opt.recovery) {
        std::cout << "\nrecovery (policy=" << sim::to_string(*opt.recovery) << ", "
                  << opt.fault_replications << " fault replication(s) per seed):\n\n";
        report::Table recovery_table({"algorithm", "delivered avail", "mean ttr",
                                      "shed revenue", "sla violation rate"});
        for (std::size_t ai = 0; ai < algorithms.size(); ++ai) {
            const AlgorithmAggregate& agg = aggregates[ai];
            if (agg.recovery_unavailable) {
                recovery_table.add_row({std::string(sim::algorithm_name(algorithms[ai])),
                                        "not replayable", "-", "-", "-"});
                continue;
            }
            recovery_table.add_row(
                {std::string(sim::algorithm_name(algorithms[ai])),
                 report::format_double(agg.recovery_delivered.mean(), 4),
                 report::format_double(agg.recovery_ttr.mean(), 2),
                 report::format_double(agg.recovery_shed.mean(), 1),
                 report::format_double(agg.recovery_sla_rate.mean(), 3)});
        }
        std::cout << recovery_table.to_text();
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        return run(parse_args(argc, argv));
    } catch (const std::exception& e) {
        std::cerr << "vnfrsim: " << e.what() << '\n';
        return 1;
    }
}
