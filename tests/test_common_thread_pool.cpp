#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/contracts.hpp"

namespace vnfr::common {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        ThreadPool pool(threads);
        EXPECT_EQ(pool.thread_count(), threads);
        std::vector<std::atomic<int>> hits(257);
        pool.parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < hits.size(); ++i) {
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
        }
    }
}

TEST(ThreadPool, BlockedRangesPartitionTheRange) {
    ThreadPool pool(4);
    std::mutex mutex;
    std::vector<std::pair<std::size_t, std::size_t>> blocks;
    pool.parallel_for_blocked(10, 55, 7, [&](std::size_t lo, std::size_t hi) {
        const std::lock_guard<std::mutex> lock(mutex);
        blocks.emplace_back(lo, hi);
    });
    std::sort(blocks.begin(), blocks.end());
    ASSERT_FALSE(blocks.empty());
    EXPECT_EQ(blocks.front().first, 10u);
    EXPECT_EQ(blocks.back().second, 55u);
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        EXPECT_LE(blocks[b].second - blocks[b].first, 7u);
        if (b > 0) {
            EXPECT_EQ(blocks[b].first, blocks[b - 1].second);  // no gap, no overlap
        }
    }
}

TEST(ThreadPool, EmptyRangeIsANoop) {
    ThreadPool pool(2);
    bool ran = false;
    pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
    pool.parallel_for(7, 3, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, ZeroGrainThrows) {
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallel_for_blocked(0, 4, 0, [](std::size_t, std::size_t) {}),
                 std::invalid_argument);
}

TEST(ThreadPool, PropagatesLowestIndexException) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        ThreadPool pool(threads);
        std::atomic<int> survivors{0};
        try {
            pool.parallel_for_blocked(0, 64, 1, [&](std::size_t lo, std::size_t) {
                if (lo == 17 || lo == 41) {
                    throw std::runtime_error("block " + std::to_string(lo));
                }
                ++survivors;
            });
            FAIL() << "expected an exception (threads=" << threads << ")";
        } catch (const std::runtime_error& e) {
            EXPECT_STREQ(e.what(), "block 17");
        }
        // A throwing block never takes down other blocks or a worker.
        EXPECT_EQ(survivors.load(), 62);
    }
}

TEST(ThreadPool, PoolSurvivesAFailedParallelFor) {
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallel_for(0, 8,
                                   [](std::size_t i) {
                                       if (i == 3) throw std::logic_error("boom");
                                   }),
                 std::logic_error);
    std::atomic<int> count{0};
    pool.parallel_for(0, 100, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, NestedParallelForIsRejected) {
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallel_for_blocked(0, 8, 1,
                                           [&](std::size_t, std::size_t) {
                                               pool.parallel_for(
                                                   0, 2, [](std::size_t) {});
                                           }),
                 ContractViolation);
}

TEST(ThreadPool, DefaultThreadCountHonoursEnvVar) {
    const char* saved = std::getenv("VNFR_THREADS");
    const std::string saved_value = saved ? saved : "";

    ::setenv("VNFR_THREADS", "3", 1);
    EXPECT_EQ(ThreadPool::default_thread_count(), 3u);
    ThreadPool pool(0);
    EXPECT_EQ(pool.thread_count(), 3u);

    // Malformed or non-positive values fall back to hardware concurrency.
    ::setenv("VNFR_THREADS", "zero", 1);
    EXPECT_GE(ThreadPool::default_thread_count(), 1u);
    ::setenv("VNFR_THREADS", "-2", 1);
    EXPECT_GE(ThreadPool::default_thread_count(), 1u);

    if (saved) {
        ::setenv("VNFR_THREADS", saved_value.c_str(), 1);
    } else {
        ::unsetenv("VNFR_THREADS");
    }
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
    const std::size_t n = 10'000;
    std::vector<double> values(n);
    for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<double>(i % 97) * 0.5;

    ThreadPool pool(8);
    std::vector<double> doubled(n);
    pool.parallel_for(0, n, [&](std::size_t i) { doubled[i] = 2.0 * values[i]; });

    const double expect = 2.0 * std::accumulate(values.begin(), values.end(), 0.0);
    EXPECT_DOUBLE_EQ(std::accumulate(doubled.begin(), doubled.end(), 0.0), expect);
}

}  // namespace
}  // namespace vnfr::common
