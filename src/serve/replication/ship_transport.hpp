// In-process replication link between a WalShipper and a StandbyController,
// modeled as a bounded byte-frame channel with deterministic fault
// injection. Each data frame carries a contiguous run of framed WAL record
// bytes (exactly as they sit on the primary's disk) or a rotation marker,
// wrapped in its own CRC so the standby can reject mangled deliveries.
//
// The ack direction is modeled as a reliable latest-value register (a real
// deployment would piggyback acks on a TCP stream; losing an ack only
// delays WAL release, it cannot corrupt state), while the data direction
// is adversarial: frames can be dropped, truncated, duplicated, or
// reordered according to a seeded fault plan. All faults are drawn from a
// counter-based RNG so a study replays bit-for-bit.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/mutex.hpp"
#include "common/rng.hpp"
#include "serve/wal.hpp"

namespace vnfr::serve::replication {

/// A tailer needed WAL bytes that no longer exist (a generation was
/// released below the follower's watermark, or vanished mid-stream).
/// Typed so callers can distinguish "the stream has a hole" from
/// ordinary corruption — it must never be silently skipped over.
class ReplicationGapError : public std::runtime_error {
  public:
    ReplicationGapError(std::uint64_t generation, std::string detail)
        : std::runtime_error("replication gap at WAL generation " +
                             std::to_string(generation) + ": " + std::move(detail)),
          generation_(generation) {}

    [[nodiscard]] std::uint64_t generation() const { return generation_; }

  private:
    std::uint64_t generation_;
};

enum class ShipFrameKind : std::uint8_t {
    kRecords = 1,  ///< contiguous framed record bytes of one generation
    kRotate = 2,   ///< the generation ended at start_offset; next gen follows
};

/// One unit of the ship stream. `start_offset` is the byte offset within
/// generation `generation` where `payload` begins (kRecords), or the final
/// durable size of the closing generation (kRotate, empty payload). The
/// payload is the on-disk framing verbatim — len|payload|CRC per record —
/// so the standby re-validates every record CRC independently of the
/// frame CRC.
struct ShipFrame {
    ShipFrameKind kind{ShipFrameKind::kRecords};
    std::uint64_t generation{0};
    std::uint64_t start_offset{kWalHeaderSize};
    std::uint64_t record_count{0};
    std::string payload;
};

/// Encodes a frame to wire bytes: u8 kind | u64 generation | u64
/// start_offset | u64 record_count | u32 payload length | payload |
/// u32 CRC over everything before it.
[[nodiscard]] std::string encode_ship_frame(const ShipFrame& frame);

/// Decodes wire bytes back to a frame. Throws CorruptStateError on any
/// inconsistency (bad kind, short buffer, CRC mismatch, trailing bytes).
[[nodiscard]] ShipFrame decode_ship_frame(std::string_view bytes);

/// The standby's replication watermark, flowing back to the shipper.
/// (generation, next_offset) is the exact position the standby expects
/// next; everything before it has been applied durably. `resync` asks the
/// shipper to rewind to that position because the standby discarded one
/// or more in-flight frames (corrupt, gapped, or reordered-away).
struct ShipAck {
    std::uint64_t generation{0};
    std::uint64_t next_offset{kWalHeaderSize};
    std::uint64_t applied_records{0};
    bool resync{false};
};

/// Per-frame fault probabilities for the data direction. All zero means a
/// perfect link. Faults are sampled per try_send from a counter-based RNG
/// stream of `seed`, so two runs with the same plan mangle the same frames.
struct TransportFaultPlan {
    std::uint64_t seed{0};
    double drop{0.0};       ///< frame vanishes
    double truncate{0.0};   ///< frame arrives with its tail cut off
    double duplicate{0.0};  ///< frame delivered twice
    double reorder{0.0};    ///< frame held back and delivered after its successor
};

struct TransportStats {
    std::uint64_t frames_sent{0};
    std::uint64_t frames_delivered{0};  ///< frames that entered the channel
    std::uint64_t frames_dropped{0};
    std::uint64_t frames_truncated{0};
    std::uint64_t frames_duplicated{0};
    std::uint64_t frames_reordered{0};
    std::uint64_t sends_rejected_full{0};  ///< backpressure: channel was full
    std::uint64_t acks_recorded{0};
};

/// Bounded in-process frame channel. Thread-safe; transport_mu_ is a leaf
/// in the lock hierarchy (no callbacks run under it).
class ShipTransport {
  public:
    explicit ShipTransport(std::size_t capacity_frames = 16)
        : capacity_(capacity_frames == 0 ? 1 : capacity_frames) {}

    ShipTransport(const ShipTransport&) = delete;
    ShipTransport& operator=(const ShipTransport&) = delete;

    /// Installs (or replaces) the fault plan; resets the fault RNG stream.
    void set_fault_plan(const TransportFaultPlan& plan) VNFR_EXCLUDES(transport_mu_);

    /// Offers one frame to the channel. Returns false (and counts
    /// backpressure) when the channel is full — the caller retries the
    /// same frame on its next pump, so backpressure never loses data.
    /// Faults are applied after admission: a dropped frame still consumes
    /// a channel-capacity check but never occupies a slot.
    bool try_send(const ShipFrame& frame) VNFR_EXCLUDES(transport_mu_);

    /// Takes the next delivered frame's raw bytes (possibly mangled by the
    /// fault plan), or nullopt when the channel is empty.
    std::optional<std::string> try_recv() VNFR_EXCLUDES(transport_mu_);

    /// Publishes the standby's watermark (reliable latest-value register).
    void send_ack(const ShipAck& ack) VNFR_EXCLUDES(transport_mu_);

    /// Reads the most recently published watermark.
    [[nodiscard]] ShipAck latest_ack() const VNFR_EXCLUDES(transport_mu_);

    [[nodiscard]] TransportStats stats() const VNFR_EXCLUDES(transport_mu_);

    /// Frames currently queued for delivery (reorder holdback included).
    [[nodiscard]] std::size_t in_flight() const VNFR_EXCLUDES(transport_mu_);

  private:
    mutable common::Mutex transport_mu_;
    std::deque<std::string> channel_ VNFR_GUARDED_BY(transport_mu_);
    /// A reordered frame waits here until the next send overtakes it (or
    /// a recv on an otherwise-empty channel flushes it).
    std::optional<std::string> held_back_ VNFR_GUARDED_BY(transport_mu_);
    ShipAck ack_ VNFR_GUARDED_BY(transport_mu_);
    TransportFaultPlan plan_ VNFR_GUARDED_BY(transport_mu_);
    std::optional<common::Rng> fault_rng_ VNFR_GUARDED_BY(transport_mu_);
    TransportStats stats_ VNFR_GUARDED_BY(transport_mu_);
    std::size_t capacity_;
};

}  // namespace vnfr::serve::replication
