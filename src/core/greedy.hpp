// The paper's baseline: a greedy heuristic that "always tries to admit all
// coming requests by preferring to place VNF instances in cloudlets with
// high reliabilities" (Section VI.A).
//
// On-site variant: scan cloudlets from most to least reliable; place all
// N_ij replicas in the first feasible cloudlet (r(c_j) > R_i and enough
// residual capacity over the window); reject if none fits.
//
// Off-site variant: scan cloudlets from most to least reliable, adding one
// instance per capacity-feasible cloudlet until the reliability product
// meets R_i; reject (releasing nothing) if the requirement cannot be met.
#pragma once

#include <string_view>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "edge/resource_ledger.hpp"

namespace vnfr::core {

class OnsiteGreedy final : public OnlineScheduler {
  public:
    explicit OnsiteGreedy(const Instance& instance);

    Decision decide(const workload::Request& request) override;
    [[nodiscard]] const edge::ResourceLedger& ledger() const override { return ledger_; }
    [[nodiscard]] std::string_view name() const override { return "onsite-greedy"; }

  private:
    const Instance& instance_;
    edge::ResourceLedger ledger_;
    std::vector<CloudletId> by_reliability_;  ///< most reliable first
};

class OffsiteGreedy final : public OnlineScheduler {
  public:
    explicit OffsiteGreedy(const Instance& instance);

    Decision decide(const workload::Request& request) override;
    [[nodiscard]] const edge::ResourceLedger& ledger() const override { return ledger_; }
    [[nodiscard]] std::string_view name() const override { return "offsite-greedy"; }

  private:
    const Instance& instance_;
    edge::ResourceLedger ledger_;
    std::vector<CloudletId> by_reliability_;
};

}  // namespace vnfr::core
