// Durable snapshot of an AdmissionController: dual prices, ledger usage,
// request-coverage bookkeeping, revenue counters, and the admitted-request
// ledger. Snapshots are written atomically (write temp + fsync + rename +
// directory fsync) and carry a whole-file CRC-32 plus magic/version
// header, so a loader either gets exactly what was saved or a
// CorruptStateError naming the bad byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/wire.hpp"

namespace vnfr::serve {

inline constexpr std::uint32_t kSnapshotVersion = 1;

/// One admitted request as recorded durably: its position in the request
/// stream, identity, collected payment, and placement sites.
struct AdmittedRecord {
    std::uint64_t seq{0};       ///< stream sequence number
    std::int64_t request_id{0};
    double payment{0.0};
    /// Placement as (cloudlet id, replica count) pairs.
    std::vector<std::pair<std::int64_t, std::int64_t>> sites;
};

/// Admission/shedding counters; `processed` counts decided requests
/// (admitted + rejected), shed requests are tracked separately.
struct ServeMetrics {
    std::uint64_t processed{0};
    std::uint64_t admitted{0};
    std::uint64_t rejected{0};
    std::uint64_t shed{0};
    double revenue{0.0};       ///< sum of admitted payments
    double shed_revenue{0.0};  ///< payments turned away by the overload guard
};

/// The full durable state of a controller at one instant.
struct ControllerSnapshot {
    std::uint8_t scheme{0};  ///< core::Scheme as u8 (0 = onsite, 1 = offsite)
    /// Digest of the bound instance's shape (cloudlets, catalog, horizon,
    /// scheme); a snapshot only loads against the instance it was saved for.
    std::uint64_t config_digest{0};
    std::uint64_t cloudlets{0};
    std::uint64_t horizon{0};
    /// Generation of the WAL that logs records after this snapshot.
    std::uint64_t wal_seq{0};
    ServeMetrics metrics;
    std::vector<std::vector<double>> lambda;  ///< [cloudlet][slot]
    std::vector<double> usage;                ///< row-major [cloudlet][slot]
    /// Coverage: every stream seq < watermark is durably resolved, plus the
    /// (ascending) sparse seqs above it.
    std::uint64_t covered_watermark{0};
    std::vector<std::uint64_t> covered_sparse;
    std::vector<AdmittedRecord> admitted;
};

/// Serializes `snap` to the on-disk byte layout (header + payload + CRC).
[[nodiscard]] std::string encode_snapshot(const ControllerSnapshot& snap);

/// Parses and fully validates an encoded snapshot. Throws
/// CorruptStateError (with `label` and the offending offset) on any
/// truncation, bad magic, unsupported version, CRC mismatch, or
/// structurally impossible field.
[[nodiscard]] ControllerSnapshot decode_snapshot(std::string_view bytes,
                                                 const std::string& label);

class Vfs;
struct StorageRetryPolicy;

/// Atomic save to `path` through `vfs` (see file header for the
/// crash-consistency protocol). Transient storage errors are retried per
/// `retry`; `transient_retries`, when given, is incremented once per
/// retry taken.
void save_snapshot(Vfs& vfs, const std::string& path,
                   const ControllerSnapshot& snap,
                   const StorageRetryPolicy& retry,
                   std::uint64_t* transient_retries = nullptr);

/// save_snapshot through the process-wide PosixVfs.
void save_snapshot(const std::string& path, const ControllerSnapshot& snap);

/// Loads and validates the snapshot at `path` through `vfs`.
[[nodiscard]] ControllerSnapshot load_snapshot(Vfs& vfs, const std::string& path);

/// load_snapshot through the process-wide PosixVfs.
[[nodiscard]] ControllerSnapshot load_snapshot(const std::string& path);

}  // namespace vnfr::serve
