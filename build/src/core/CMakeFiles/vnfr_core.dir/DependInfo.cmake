
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bounds.cpp" "src/core/CMakeFiles/vnfr_core.dir/bounds.cpp.o" "gcc" "src/core/CMakeFiles/vnfr_core.dir/bounds.cpp.o.d"
  "/root/repo/src/core/exhaustive.cpp" "src/core/CMakeFiles/vnfr_core.dir/exhaustive.cpp.o" "gcc" "src/core/CMakeFiles/vnfr_core.dir/exhaustive.cpp.o.d"
  "/root/repo/src/core/greedy.cpp" "src/core/CMakeFiles/vnfr_core.dir/greedy.cpp.o" "gcc" "src/core/CMakeFiles/vnfr_core.dir/greedy.cpp.o.d"
  "/root/repo/src/core/hybrid_primal_dual.cpp" "src/core/CMakeFiles/vnfr_core.dir/hybrid_primal_dual.cpp.o" "gcc" "src/core/CMakeFiles/vnfr_core.dir/hybrid_primal_dual.cpp.o.d"
  "/root/repo/src/core/instance.cpp" "src/core/CMakeFiles/vnfr_core.dir/instance.cpp.o" "gcc" "src/core/CMakeFiles/vnfr_core.dir/instance.cpp.o.d"
  "/root/repo/src/core/offline.cpp" "src/core/CMakeFiles/vnfr_core.dir/offline.cpp.o" "gcc" "src/core/CMakeFiles/vnfr_core.dir/offline.cpp.o.d"
  "/root/repo/src/core/offsite_primal_dual.cpp" "src/core/CMakeFiles/vnfr_core.dir/offsite_primal_dual.cpp.o" "gcc" "src/core/CMakeFiles/vnfr_core.dir/offsite_primal_dual.cpp.o.d"
  "/root/repo/src/core/onsite_primal_dual.cpp" "src/core/CMakeFiles/vnfr_core.dir/onsite_primal_dual.cpp.o" "gcc" "src/core/CMakeFiles/vnfr_core.dir/onsite_primal_dual.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/core/CMakeFiles/vnfr_core.dir/schedule.cpp.o" "gcc" "src/core/CMakeFiles/vnfr_core.dir/schedule.cpp.o.d"
  "/root/repo/src/core/verify.cpp" "src/core/CMakeFiles/vnfr_core.dir/verify.cpp.o" "gcc" "src/core/CMakeFiles/vnfr_core.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vnfr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vnfr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/vnf/CMakeFiles/vnfr_vnf.dir/DependInfo.cmake"
  "/root/repo/build/src/edge/CMakeFiles/vnfr_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vnfr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/vnfr_opt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
