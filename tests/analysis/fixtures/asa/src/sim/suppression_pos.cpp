// Positive fixture for the vnfr-asa suppression-format rule: malformed
// suppressions are findings themselves, and a malformed suppression
// provides NO coverage — the underlying finding still fires (hence two
// expected rules on the first violation line).
#include <cstdlib>

namespace vnfr::sim {

int bad_suppressions() {
    int a = std::rand();  // vnfr-asa: allow(nondet-rand) // expect: nondet-rand, suppression-format
    // vnfr-asa: allow() a suppression naming no rule is malformed // expect: suppression-format
    // vnfr-asa: allow(no-such-rule) unknown rule ids must be rejected // expect: suppression-format
    return a;
}

}  // namespace vnfr::sim
