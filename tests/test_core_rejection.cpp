// Rejection-reason classification across all schedulers.
#include <gtest/gtest.h>

#include "core/greedy.hpp"
#include "core/hybrid_primal_dual.hpp"
#include "core/offsite_primal_dual.hpp"
#include "core/onsite_primal_dual.hpp"
#include "helpers.hpp"

namespace vnfr::core {
namespace {

using vnfr::testing::make_request;
using vnfr::testing::random_instance;
using vnfr::testing::small_instance;

TEST(RejectReasonNames, AllStringsDistinct) {
    EXPECT_STREQ(to_string(RejectReason::kNone), "none");
    EXPECT_STREQ(to_string(RejectReason::kInfeasibleRequirement),
                 "infeasible-requirement");
    EXPECT_STREQ(to_string(RejectReason::kPricedOut), "priced-out");
    EXPECT_STREQ(to_string(RejectReason::kNoCapacity), "no-capacity");
}

TEST(RejectReason, OnsiteInfeasibleRequirement) {
    const Instance inst = small_instance({0.95, 0.96}, 100.0, 10,
                                         {make_request(0, 0, 0.97, 0, 2, 5.0)});
    OnsitePrimalDual pd(inst);
    OnsiteGreedy greedy(inst);
    EXPECT_EQ(pd.decide(inst.requests[0]).reject_reason,
              RejectReason::kInfeasibleRequirement);
    EXPECT_EQ(greedy.decide(inst.requests[0]).reject_reason,
              RejectReason::kInfeasibleRequirement);
}

TEST(RejectReason, OnsiteNoCapacity) {
    // Feasible requirement but cloudlet too small for even one placement.
    const Instance inst = small_instance({0.99}, 1.0, 10,
                                         {make_request(0, 1, 0.9, 0, 2, 5.0)});
    OnsitePrimalDual pd(inst);
    OnsiteGreedy greedy(inst);
    EXPECT_EQ(pd.decide(inst.requests[0]).reject_reason, RejectReason::kNoCapacity);
    EXPECT_EQ(greedy.decide(inst.requests[0]).reject_reason, RejectReason::kNoCapacity);
}

TEST(RejectReason, OnsitePricedOut) {
    // High-payment requests drive the dual prices up; a later cheap request
    // is then priced out while plenty of capacity remains (scale pinned at
    // 1 so the literal Eq. 34 prices apply).
    std::vector<workload::Request> requests;
    for (int i = 0; i < 20; ++i) requests.push_back(make_request(i, 0, 0.9, 0, 1, 10.0));
    requests.push_back(make_request(20, 0, 0.9, 0, 1, 0.05));
    const Instance inst = small_instance({0.99}, 100.0, 1, std::move(requests));
    OnsitePrimalDual pd(inst, OnsitePrimalDualConfig{.dual_capacity_scale = 1.0});
    const ScheduleResult result = run_online(inst, pd);
    ASSERT_FALSE(result.decisions.back().admitted);
    EXPECT_EQ(result.decisions.back().reject_reason, RejectReason::kPricedOut);
    EXPECT_LT(result.max_load_factor, 1.0);  // capacity was not the blocker
}

TEST(RejectReason, OffsiteInfeasibleRequirement) {
    const Instance inst = small_instance({0.91, 0.91}, 100.0, 10,
                                         {make_request(0, 1, 0.999, 0, 2, 5.0)});
    OffsitePrimalDual pd(inst);
    OffsiteGreedy greedy(inst);
    EXPECT_EQ(pd.decide(inst.requests[0]).reject_reason,
              RejectReason::kInfeasibleRequirement);
    EXPECT_EQ(greedy.decide(inst.requests[0]).reject_reason,
              RejectReason::kInfeasibleRequirement);
}

TEST(RejectReason, OffsiteNoCapacity) {
    // Requirement needs two cloudlets; only one has room.
    std::vector<workload::Request> requests;
    requests.push_back(make_request(0, 1, 0.9, 0, 2, 50.0));   // fills both cloudlets
    requests.push_back(make_request(1, 1, 0.97, 0, 2, 5.0));   // reachable, but full
    const Instance inst = small_instance({0.96, 0.96}, 2.0, 10, std::move(requests));
    OffsiteGreedy greedy(inst);
    ASSERT_TRUE(greedy.decide(inst.requests[0]).admitted);
    const Decision d = greedy.decide(inst.requests[1]);
    ASSERT_FALSE(d.admitted);
    EXPECT_EQ(d.reject_reason, RejectReason::kNoCapacity);
}

TEST(RejectReason, HybridInfeasibleRequirement) {
    const Instance inst = small_instance({0.91, 0.91}, 100.0, 10,
                                         {make_request(0, 1, 0.999, 0, 2, 5.0)});
    HybridPrimalDual hybrid(inst);
    EXPECT_EQ(hybrid.decide(inst.requests[0]).reject_reason,
              RejectReason::kInfeasibleRequirement);
}

TEST(RejectReason, AdmittedRequestsCarryNone) {
    common::Rng rng(501);
    const Instance inst = random_instance(rng, 40, 3, 10);
    OnsitePrimalDual pd(inst);
    const ScheduleResult result = run_online(inst, pd);
    for (const Decision& d : result.decisions) {
        if (d.admitted) EXPECT_EQ(d.reject_reason, RejectReason::kNone);
        else EXPECT_NE(d.reject_reason, RejectReason::kNone);
    }
}

TEST(RejectReason, BreakdownCountsEveryRejection) {
    common::Rng rng(503);
    const Instance inst = random_instance(rng, 120, 3, 10, 6, 10);  // tight capacity
    for (const auto make :
         {+[](const Instance& i) -> std::unique_ptr<OnlineScheduler> {
              return std::make_unique<OnsitePrimalDual>(i);
          },
          +[](const Instance& i) -> std::unique_ptr<OnlineScheduler> {
              return std::make_unique<OffsitePrimalDual>(i);
          },
          +[](const Instance& i) -> std::unique_ptr<OnlineScheduler> {
              return std::make_unique<HybridPrimalDual>(i);
          }}) {
        const auto scheduler = make(inst);
        const ScheduleResult result = run_online(inst, *scheduler);
        const RejectionBreakdown breakdown = rejection_breakdown(result);
        EXPECT_EQ(breakdown.infeasible_requirement + breakdown.priced_out +
                      breakdown.no_capacity,
                  inst.requests.size() - result.admitted)
            << scheduler->name();
    }
}

}  // namespace
}  // namespace vnfr::core
