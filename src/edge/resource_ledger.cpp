#include "edge/resource_ledger.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "common/contracts.hpp"

namespace vnfr::edge {

ResourceLedger::ResourceLedger(std::vector<double> capacities, TimeSlot horizon,
                               CapacityPolicy policy)
    : capacities_(std::move(capacities)), horizon_(horizon), policy_(policy) {
    if (horizon_ <= 0) throw std::invalid_argument("ResourceLedger: non-positive horizon");
    for (const double cap : capacities_) {
        if (cap <= 0.0) throw std::invalid_argument("ResourceLedger: non-positive capacity");
    }
    usage_.assign(capacities_.size() * static_cast<std::size_t>(horizon_), 0.0);
}

void ResourceLedger::check_range(CloudletId c, TimeSlot begin, TimeSlot end,
                                 double amount) const {
    if (!c.valid() || c.index() >= capacities_.size())
        throw std::invalid_argument("ResourceLedger: unknown cloudlet");
    if (begin < 0 || end > horizon_ || begin >= end)
        throw std::invalid_argument("ResourceLedger: bad slot range");
    if (amount < 0.0) throw std::invalid_argument("ResourceLedger: negative amount");
}

double& ResourceLedger::cell(CloudletId c, TimeSlot t) {
    return usage_[c.index() * static_cast<std::size_t>(horizon_) +
                  static_cast<std::size_t>(t)];
}

const double& ResourceLedger::cell(CloudletId c, TimeSlot t) const {
    return usage_[c.index() * static_cast<std::size_t>(horizon_) +
                  static_cast<std::size_t>(t)];
}

bool ResourceLedger::fits(CloudletId c, TimeSlot begin, TimeSlot end, double amount) const {
    check_range(c, begin, end, amount);
    const double cap = capacities_[c.index()];
    for (TimeSlot t = begin; t < end; ++t) {
        // Small epsilon absorbs accumulated floating point error in sums of
        // compute units; demands are integral in the paper's setting.
        if (cell(c, t) + amount > cap + 1e-9) return false;
    }
    return true;
}

bool ResourceLedger::reserve(CloudletId c, TimeSlot begin, TimeSlot end, double amount) {
    check_range(c, begin, end, amount);
    VNFR_CHECK_FINITE(amount);
    if (policy_ == CapacityPolicy::kEnforce && !fits(c, begin, end, amount)) return false;
    const double cap = capacities_[c.index()];
    for (TimeSlot t = begin; t < end; ++t) {
        cell(c, t) += amount;
        // Constraint (4)/(9): an enforcing ledger must never end a reserve
        // above capacity — fits() and this post-condition must agree.
        VNFR_DCHECK(policy_ != CapacityPolicy::kEnforce || cell(c, t) <= cap + 1e-9,
                    "cloudlet ", c.value, " slot ", t, " usage ", cell(c, t),
                    " exceeds capacity ", cap);
    }
    return true;
}

void ResourceLedger::release(CloudletId c, TimeSlot begin, TimeSlot end, double amount) {
    check_range(c, begin, end, amount);
    for (TimeSlot t = begin; t < end; ++t) {
        if (cell(c, t) < amount - 1e-9)
            throw std::logic_error("ResourceLedger::release: usage would go negative");
        cell(c, t) = std::max(0.0, cell(c, t) - amount);
        VNFR_DCHECK(cell(c, t) >= 0.0, "cloudlet ", c.value, " slot ", t,
                    " usage went negative after release");
    }
}

double ResourceLedger::usage(CloudletId c, TimeSlot t) const {
    check_range(c, t, t + 1, 0.0);
    return cell(c, t);
}

double ResourceLedger::residual(CloudletId c, TimeSlot t) const {
    check_range(c, t, t + 1, 0.0);
    return capacities_[c.index()] - cell(c, t);
}

double ResourceLedger::capacity(CloudletId c) const {
    if (!c.valid() || c.index() >= capacities_.size())
        throw std::invalid_argument("ResourceLedger: unknown cloudlet");
    return capacities_[c.index()];
}

double ResourceLedger::peak_overshoot(CloudletId c) const {
    const double cap = capacity(c);
    double worst = 0.0;
    for (TimeSlot t = 0; t < horizon_; ++t) {
        worst = std::max(worst, cell(c, t) - cap);
    }
    return worst;
}

double ResourceLedger::max_overshoot() const {
    double worst = 0.0;
    for (std::size_t j = 0; j < capacities_.size(); ++j) {
        worst = std::max(worst, peak_overshoot(CloudletId{static_cast<std::int64_t>(j)}));
    }
    return worst;
}

void ResourceLedger::restore_usage(std::vector<double> usage) {
    if (usage.size() != usage_.size()) {
        throw std::invalid_argument("ResourceLedger::restore_usage: table has " +
                                    std::to_string(usage.size()) + " cells, expected " +
                                    std::to_string(usage_.size()));
    }
    const auto slots = static_cast<std::size_t>(horizon_);
    for (std::size_t i = 0; i < usage.size(); ++i) {
        const double v = usage[i];
        if (!std::isfinite(v) || v < 0.0) {
            throw std::invalid_argument("ResourceLedger::restore_usage: cell " +
                                        std::to_string(i) +
                                        " is not a finite non-negative amount");
        }
        if (policy_ == CapacityPolicy::kEnforce && v > capacities_[i / slots] + 1e-9) {
            throw std::invalid_argument(
                "ResourceLedger::restore_usage: cell " + std::to_string(i) + " usage " +
                std::to_string(v) + " exceeds capacity " +
                std::to_string(capacities_[i / slots]));
        }
    }
    usage_ = std::move(usage);
}

double ResourceLedger::mean_utilization(CloudletId c) const {
    const double cap = capacity(c);
    double total = 0.0;
    for (TimeSlot t = 0; t < horizon_; ++t) total += cell(c, t) / cap;
    return total / static_cast<double>(horizon_);
}

}  // namespace vnfr::edge
