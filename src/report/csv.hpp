// CSV emission for experiment series, so plots can be regenerated outside
// the repo (gnuplot/matplotlib) from bench output files.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace vnfr::report {

/// Writes `header` then `rows` as comma-separated values. Cells containing
/// commas, quotes or newlines are quoted per RFC 4180.
class CsvWriter {
  public:
    /// The writer borrows the stream; keep it alive while writing.
    explicit CsvWriter(std::ostream& os);

    void write_header(const std::vector<std::string>& header);
    void write_row(const std::vector<std::string>& cells);
    void write_row(const std::vector<double>& values);

  private:
    void write_cells(const std::vector<std::string>& cells);
    std::ostream& os_;
    std::size_t columns_{0};
    bool header_written_{false};
};

/// Escapes one CSV cell (quotes when needed).
std::string csv_escape(const std::string& cell);

}  // namespace vnfr::report
