#include "opt/lp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/contracts.hpp"

namespace vnfr::opt {

std::size_t LinearProgram::add_variable(double objective, double upper, std::string name) {
    if (upper < 0.0) throw std::invalid_argument("LinearProgram: negative upper bound");
    objective_.push_back(objective);
    lower_.push_back(0.0);
    upper_.push_back(upper);
    names_.push_back(std::move(name));
    return objective_.size() - 1;
}

std::size_t LinearProgram::add_row(std::vector<std::pair<std::size_t, double>> terms,
                                   Relation relation, double rhs) {
    std::sort(terms.begin(), terms.end());
    for (std::size_t i = 0; i < terms.size(); ++i) {
        if (terms[i].first >= variable_count())
            throw std::invalid_argument("LinearProgram: row references unknown variable");
        if (i > 0 && terms[i].first == terms[i - 1].first)
            throw std::invalid_argument("LinearProgram: duplicate variable in row");
        if (!std::isfinite(terms[i].second))
            throw std::invalid_argument("LinearProgram: non-finite coefficient");
    }
    if (!std::isfinite(rhs)) throw std::invalid_argument("LinearProgram: non-finite rhs");
    rows_.push_back(Row{std::move(terms), relation, rhs});
    return rows_.size() - 1;
}

double LinearProgram::objective_coefficient(std::size_t var) const {
    return objective_.at(var);
}

double LinearProgram::lower_bound(std::size_t var) const { return lower_.at(var); }

double LinearProgram::upper_bound(std::size_t var) const { return upper_.at(var); }

const std::string& LinearProgram::variable_name(std::size_t var) const {
    return names_.at(var);
}

const Row& LinearProgram::row(std::size_t k) const { return rows_.at(k); }

void LinearProgram::set_bounds(std::size_t var, double lower, double upper) {
    if (var >= variable_count()) throw std::invalid_argument("LinearProgram: unknown variable");
    if (lower < 0.0 || upper < lower)
        throw std::invalid_argument("LinearProgram: require 0 <= lower <= upper");
    lower_[var] = lower;
    upper_[var] = upper;
}

double LinearProgram::objective_value(const std::vector<double>& x) const {
    if (x.size() != variable_count())
        throw std::invalid_argument("LinearProgram: solution size mismatch");
    double v = 0.0;
    for (std::size_t j = 0; j < x.size(); ++j) v += objective_[j] * x[j];
    return VNFR_CHECK_FINITE(v);
}

double LinearProgram::max_violation(const std::vector<double>& x) const {
    if (x.size() != variable_count())
        throw std::invalid_argument("LinearProgram: solution size mismatch");
    double worst = 0.0;
    for (std::size_t j = 0; j < x.size(); ++j) {
        worst = std::max(worst, lower_[j] - x[j]);
        if (!std::isinf(upper_[j])) worst = std::max(worst, x[j] - upper_[j]);
    }
    for (const Row& r : rows_) {
        double lhs = 0.0;
        for (const auto& [var, coeff] : r.terms) lhs += coeff * x[var];
        switch (r.relation) {
            case Relation::kLe: worst = std::max(worst, lhs - r.rhs); break;
            case Relation::kGe: worst = std::max(worst, r.rhs - lhs); break;
            case Relation::kEq: worst = std::max(worst, std::fabs(lhs - r.rhs)); break;
        }
    }
    return worst;
}

}  // namespace vnfr::opt
