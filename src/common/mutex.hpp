// Annotated synchronization primitives for Clang thread-safety analysis.
//
// Thin zero-overhead wrappers over std::mutex / std::condition_variable
// that carry the capability annotations from common/annotations.hpp, so
// `-Wthread-safety` can prove lock discipline at compile time. All
// concurrent code in this repo uses these instead of the raw std types;
// tools/vnfr_asa.py's lock-order rule also keys off the `Mutex` /
// `MutexLock` spellings, and the declared lock hierarchy lives in
// tools/lock_hierarchy.txt.
//
// Pattern:
//
//   class Counter {
//     public:
//       void bump() VNFR_EXCLUDES(mutex_) {
//           MutexLock lock(&mutex_);
//           ++count_;                       // OK: mutex_ held
//       }
//     private:
//       Mutex mutex_;
//       int count_ VNFR_GUARDED_BY(mutex_) = 0;
//   };
//
// Waiting uses explicit while-loops over guarded state rather than
// predicate lambdas: the analysis cannot see that a lambda body runs
// with the lock held, but it fully checks a loop written inline in the
// locked scope:
//
//   MutexLock lock(&mutex_);
//   while (!ready_) cv_.wait(mutex_);
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/annotations.hpp"

namespace vnfr::common {

class CondVar;

/// A std::mutex that participates in thread-safety analysis.
class VNFR_CAPABILITY("mutex") Mutex {
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() VNFR_ACQUIRE() { m_.lock(); }
    void unlock() VNFR_RELEASE() { m_.unlock(); }

  private:
    friend class CondVar;
    std::mutex m_;
};

/// RAII scoped lock over Mutex (the only way most code should lock).
class VNFR_SCOPED_CAPABILITY MutexLock {
  public:
    explicit MutexLock(Mutex* mu) VNFR_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
    ~MutexLock() VNFR_RELEASE() { mu_->unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

  private:
    Mutex* const mu_;
};

/// Condition variable bound to an annotated Mutex. wait() requires the
/// mutex to be held, and re-holds it on return, exactly like
/// std::condition_variable with a unique_lock — the adopt/release dance
/// below keeps the native std::condition_variable fast path while the
/// caller keeps using MutexLock scopes the analysis understands.
class CondVar {
  public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    /// Atomically releases `mu` and sleeps until notified; `mu` is held
    /// again when wait returns. Spurious wakeups are possible — always
    /// call from a while-loop over the guarded predicate.
    void wait(Mutex& mu) VNFR_REQUIRES(mu) {
        std::unique_lock<std::mutex> native(mu.m_, std::adopt_lock);
        cv_.wait(native);
        native.release();  // ownership stays with the caller's MutexLock
    }

    /// wait() with a timeout. Returns false iff the wait timed out (the
    /// mutex is re-held either way). Same spurious-wakeup contract as
    /// wait(): re-check the guarded predicate in a loop.
    template <class Rep, class Period>
    bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
        VNFR_REQUIRES(mu) {
        std::unique_lock<std::mutex> native(mu.m_, std::adopt_lock);
        const std::cv_status status = cv_.wait_for(native, timeout);
        native.release();  // ownership stays with the caller's MutexLock
        return status == std::cv_status::no_timeout;
    }

    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

}  // namespace vnfr::common
