// Controller chaos ablation: crash-restart equivalence of the serve
// layer's admission controller under both backup schemes, across a
// matrix of concurrency configurations.
//
// For each scheme and each (decide_threads, decide_shards, group_commit)
// configuration, one paper-environment trace is first served
// uninterrupted (the baseline), then re-served dozens of times with the
// controller killed at a randomized WAL-append point — half the trials
// additionally tear the WAL tail — and restarted from its snapshot +
// WAL. Emits BENCH_controller_chaos.json and exits nonzero when any
// acceptance gate fails:
//
//   * every kill trial recovers to a bit-identical state digest, equal
//     revenue bits, the same admitted set (no double-admits), and zero
//     capacity violations under core::verify_schedule;
//   * reopening the baseline's own checkpoint reproduces its digest;
//   * all configurations of a scheme agree on the baseline digest —
//     group commit and wave-parallel decide must not change decisions.
//
// Usage: ablation_controller_chaos [output.json]
//   VNFR_BENCH_QUICK=1  shrink the trace and trial counts for smoke/CI
#include <sys/stat.h>

#include <chrono>
#include <iostream>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "report/json.hpp"
#include "serve/chaos_study.hpp"

using namespace vnfr;

namespace {

const char* scheme_name(core::Scheme scheme) {
    return scheme == core::Scheme::kOnsite ? "onsite" : "offsite";
}

/// The concurrency matrix the acceptance gate sweeps: the sequential
/// per-record-fdatasync controller, a modestly parallel one, and a
/// fully batched/sharded one.
struct MatrixConfig {
    std::size_t threads;
    std::size_t shards;
    std::size_t group_commit;
};

constexpr MatrixConfig kMatrix[] = {
    {1, 1, 1},
    {2, 4, 4},
    {8, 8, 32},
};

struct ConfigResult {
    core::Scheme scheme{core::Scheme::kOnsite};
    MatrixConfig config{1, 1, 1};
    serve::ChaosStudyResult study;
    double seconds{0};
};

std::string config_tag(const MatrixConfig& c) {
    return std::to_string(c.threads) + "t_" + std::to_string(c.shards) + "s_g" +
           std::to_string(c.group_commit);
}

}  // namespace

int main(int argc, char** argv) {
    const std::string out_path =
        argc > 1 ? argv[1] : std::string("BENCH_controller_chaos.json");

    const std::size_t requests = bench::quick_mode() ? 100 : 240;
    const std::size_t kills_per_config = bench::quick_mode() ? 4 : 12;
    const std::uint64_t master = bench::scenario_seed("controller_chaos", requests);

    std::cout << "== Controller chaos ablation: kill/restart equivalence ==\n";
    bench::print_thread_note();

    common::Rng rng = common::stream_rng(master, 0);
    const core::Instance instance =
        bench::make_factory(bench::paper_environment(requests))(rng);
    std::cout << "instance: " << instance.requests.size() << " requests, "
              << instance.network.cloudlet_count() << " cloudlets, horizon "
              << instance.horizon << "; " << kills_per_config
              << " kill points per (scheme, threads, shards, group) cell\n\n";

    const std::string work_root = "controller_chaos_state";
    ::mkdir(work_root.c_str(), 0755);  // studies manage their own subdirs

    std::vector<ConfigResult> results;
    bool all_ok = true;
    bool digests_consistent = true;
    for (const core::Scheme scheme : {core::Scheme::kOnsite, core::Scheme::kOffsite}) {
        std::uint64_t scheme_digest = 0;
        bool scheme_digest_set = false;
        for (const MatrixConfig& mc : kMatrix) {
            serve::ChaosStudyConfig cfg;
            cfg.scheme = scheme;
            // Same kill-point stream for every cell of a scheme: the
            // matrix varies the concurrency config, not the crashes.
            cfg.master_seed =
                common::stream_seed(master, 1 + static_cast<std::uint64_t>(scheme));
            cfg.kill_points = kills_per_config;
            cfg.checkpoint_every = 16;
            cfg.queue_capacity = 8;
            cfg.group_commit = mc.group_commit;
            cfg.decide_shards = mc.shards;
            cfg.decide_threads = mc.threads;
            cfg.torn_tails = true;
            cfg.work_dir =
                work_root + "/" + scheme_name(scheme) + "_" + config_tag(mc);

            ConfigResult r;
            r.scheme = scheme;
            r.config = mc;
            const auto start = std::chrono::steady_clock::now();
            r.study = serve::run_chaos_study(instance, cfg);
            r.seconds =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                    .count();

            std::size_t torn = 0;
            for (const serve::ChaosTrial& t : r.study.trials) {
                if (t.torn_tail_applied) ++torn;
            }
            std::cout << scheme_name(scheme) << " [" << config_tag(mc)
                      << "]: baseline revenue " << r.study.baseline_metrics.revenue
                      << " (admitted " << r.study.baseline_metrics.admitted
                      << ", shed " << r.study.baseline_metrics.shed << "), digest "
                      << report::hex_u64(r.study.baseline_digest) << "\n  "
                      << r.study.trials.size() << " kill trials (" << torn
                      << " with torn WAL tails), " << r.study.failed_trials
                      << " failed, reload-ok "
                      << (r.study.baseline_reload_ok ? "yes" : "no") << ", "
                      << report::format_double(r.seconds, 2) << "s\n";
            if (!r.study.ok()) {
                std::cout << "  GATE FAILED for " << scheme_name(scheme) << " ["
                          << config_tag(mc) << "]\n";
                all_ok = false;
            }
            if (!scheme_digest_set) {
                scheme_digest = r.study.baseline_digest;
                scheme_digest_set = true;
            } else if (r.study.baseline_digest != scheme_digest) {
                std::cout << "  GATE FAILED: " << scheme_name(scheme) << " ["
                          << config_tag(mc)
                          << "] baseline digest differs from the sequential config\n";
                digests_consistent = false;
                all_ok = false;
            }
            results.push_back(std::move(r));
        }
    }
    std::cout << '\n';

    report::JsonValue doc = report::JsonValue::object();
    doc.set("bench", "controller_chaos");
    doc.set("quick", bench::quick_mode());
    doc.set("requests", static_cast<std::uint64_t>(requests));
    doc.set("master_seed", report::hex_u64(master));
    report::JsonValue configs = report::JsonValue::array();
    for (const ConfigResult& r : results) {
        report::JsonValue row = report::JsonValue::object();
        row.set("scheme", scheme_name(r.scheme));
        row.set("decide_threads", static_cast<std::uint64_t>(r.config.threads));
        row.set("decide_shards", static_cast<std::uint64_t>(r.config.shards));
        row.set("group_commit", static_cast<std::uint64_t>(r.config.group_commit));
        row.set("baseline_digest", report::hex_u64(r.study.baseline_digest));
        row.set("baseline_revenue", r.study.baseline_metrics.revenue);
        row.set("baseline_admitted", r.study.baseline_metrics.admitted);
        row.set("baseline_rejected", r.study.baseline_metrics.rejected);
        row.set("baseline_shed", r.study.baseline_metrics.shed);
        row.set("baseline_shed_revenue", r.study.baseline_metrics.shed_revenue);
        row.set("baseline_reload_ok", r.study.baseline_reload_ok);
        row.set("baseline_capacity_ok", r.study.baseline_capacity_ok);
        row.set("kill_trials", static_cast<std::uint64_t>(r.study.trials.size()));
        row.set("failed_trials", static_cast<std::uint64_t>(r.study.failed_trials));
        row.set("seconds", r.seconds);
        report::JsonValue trials = report::JsonValue::array();
        for (const serve::ChaosTrial& t : r.study.trials) {
            report::JsonValue tr = report::JsonValue::object();
            tr.set("kill_after_records", t.kill_after_records);
            tr.set("mid_batch", t.mid_batch);
            tr.set("torn_tail", t.torn_tail_applied);
            tr.set("truncated_bytes", t.truncated_bytes);
            // What recovery actually observed and dropped on revival —
            // the operator-visible counterpart of the injected tear.
            tr.set("recovered_torn_tail_bytes", t.recovered_torn_tail_bytes);
            tr.set("recovered_torn_tail_records", t.recovered_torn_tail_records);
            tr.set("digest_match", t.digest_match);
            tr.set("revenue_match", t.revenue_match);
            tr.set("admitted_match", t.admitted_match);
            tr.set("no_double_admits", t.no_double_admits);
            tr.set("capacity_ok", t.capacity_ok);
            trials.push(std::move(tr));
        }
        row.set("trials", std::move(trials));
        configs.push(std::move(row));
    }
    doc.set("configs", std::move(configs));
    doc.set("digests_consistent", digests_consistent);
    doc.set("all_gates_passed", all_ok);

    std::ofstream out(out_path);
    out << doc.dump() << '\n';
    std::cout << "wrote " << out_path << '\n';

    if (!all_ok) {
        std::cerr << "FAIL: chaos recovery gates failed\n";
        return 1;
    }
    std::cout << "PASS: all kill trials recovered bit-identically across the "
                 "concurrency matrix\n";
    return 0;
}
