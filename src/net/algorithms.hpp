// Structural graph utilities: connectivity, components, diameter.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "net/graph.hpp"

namespace vnfr::net {

/// True when every node is reachable from every other (a single component
/// covering the whole graph). The empty graph counts as connected.
bool is_connected(const Graph& g);

/// Component label per node, labels dense in [0, count).
struct Components {
    std::vector<int> label;
    int count{0};
};

Components connected_components(const Graph& g);

/// Weighted diameter: the largest finite pairwise distance. Throws
/// std::invalid_argument on an empty graph; returns infinity if disconnected.
double weighted_diameter(const Graph& g);

/// Hop diameter: largest pairwise hop count; -1 if disconnected.
int hop_diameter(const Graph& g);

/// Mean node degree; 0 on the empty graph.
double average_degree(const Graph& g);

}  // namespace vnfr::net
