#include "core/offsite_primal_dual.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <set>

#include "helpers.hpp"
#include "sim/failure_model.hpp"
#include "vnf/reliability.hpp"

namespace vnfr::core {
namespace {

using vnfr::testing::make_request;
using vnfr::testing::random_instance;
using vnfr::testing::small_instance;

TEST(OffsitePrimalDual, FirstRequestAdmitted) {
    const Instance inst = small_instance({0.99, 0.98, 0.97}, 100.0, 10,
                                         {make_request(0, 0, 0.95, 0, 2, 5.0)});
    OffsitePrimalDual scheduler(inst);
    const Decision d = scheduler.decide(inst.requests[0]);
    ASSERT_TRUE(d.admitted);
    EXPECT_GE(d.placement.sites.size(), 1u);
}

TEST(OffsitePrimalDual, OneInstancePerSelectedCloudlet) {
    common::Rng rng(31);
    const Instance inst = random_instance(rng, 50, 4, 12);
    OffsitePrimalDual scheduler(inst);
    const ScheduleResult result = run_online(inst, scheduler);
    for (const Decision& d : result.decisions) {
        if (!d.admitted) continue;
        std::set<std::int64_t> used;
        for (const Site& s : d.placement.sites) {
            EXPECT_EQ(s.replicas, 1);  // off-site scheme: exactly one per site
            EXPECT_TRUE(used.insert(s.cloudlet.value).second) << "duplicate cloudlet";
        }
    }
}

TEST(OffsitePrimalDual, AdmittedPlacementsMeetRequirement) {
    common::Rng rng(37);
    const Instance inst = random_instance(rng, 60, 4, 12);
    OffsitePrimalDual scheduler(inst);
    const ScheduleResult result = run_online(inst, scheduler);
    std::size_t admitted = 0;
    for (std::size_t i = 0; i < result.decisions.size(); ++i) {
        const Decision& d = result.decisions[i];
        if (!d.admitted) continue;
        ++admitted;
        EXPECT_GE(sim::analytic_availability(inst, inst.requests[i], d.placement),
                  inst.requests[i].requirement - 1e-12);
    }
    EXPECT_GT(admitted, 0u);
}

TEST(OffsitePrimalDual, NeverViolatesCapacity) {
    // Theorem 2: capacity constraints are honoured by construction.
    common::Rng rng(41);
    for (int trial = 0; trial < 5; ++trial) {
        const Instance inst = random_instance(rng, 80, 4, 12, 8, 15);
        OffsitePrimalDual scheduler(inst);
        const ScheduleResult result = run_online(inst, scheduler);
        EXPECT_DOUBLE_EQ(result.max_overshoot, 0.0);
        EXPECT_LE(result.max_load_factor, 1.0 + 1e-9);
    }
}

TEST(OffsitePrimalDual, SelectionStopsAtRequirement) {
    // With one very reliable cloudlet and the rest weak, a modest
    // requirement should be met by few sites, not all of them.
    const Instance inst = small_instance({0.999, 0.95, 0.95, 0.95}, 100.0, 10,
                                         {make_request(0, 0, 0.9, 0, 2, 5.0)});
    OffsitePrimalDual scheduler(inst);
    const Decision d = scheduler.decide(inst.requests[0]);
    ASSERT_TRUE(d.admitted);
    EXPECT_LT(d.placement.sites.size(), 4u);
    // Minimality: dropping the last-added site must break the requirement.
    std::vector<double> rels;
    for (std::size_t k = 0; k + 1 < d.placement.sites.size(); ++k) {
        rels.push_back(inst.network.cloudlet(d.placement.sites[k].cloudlet).reliability);
    }
    if (!rels.empty()) {
        EXPECT_FALSE(vnf::offsite_meets(inst.catalog.reliability(VnfTypeId{0}), rels, 0.9));
    }
}

TEST(OffsitePrimalDual, RejectsWhenRequirementUnreachable) {
    // Even all three cloudlets together: availability
    // 1 - (1 - 0.9*0.91)^3 ~= 0.994 < 0.995 with r_f = 0.9 (vnf 1 has 0.90).
    const Instance inst = small_instance({0.91, 0.91, 0.91}, 100.0, 10,
                                         {make_request(0, 1, 0.995, 0, 2, 5.0)});
    OffsitePrimalDual scheduler(inst);
    EXPECT_FALSE(scheduler.decide(inst.requests[0]).admitted);
}

TEST(OffsitePrimalDual, RejectionLeavesStateUntouched) {
    const Instance inst = small_instance({0.91, 0.91, 0.91}, 100.0, 10,
                                         {make_request(0, 1, 0.995, 0, 2, 5.0)});
    OffsitePrimalDual scheduler(inst);
    ASSERT_FALSE(scheduler.decide(inst.requests[0]).admitted);
    for (std::size_t j = 0; j < 3; ++j) {
        const CloudletId c{static_cast<std::int64_t>(j)};
        for (TimeSlot t = 0; t < 10; ++t) {
            EXPECT_DOUBLE_EQ(scheduler.lambda(c, t), 0.0);
            EXPECT_DOUBLE_EQ(scheduler.ledger().usage(c, t), 0.0);
        }
    }
}

TEST(OffsitePrimalDual, DualUpdateMatchesEquation67) {
    const Instance inst = small_instance({0.99}, 50.0, 10,
                                         {make_request(0, 0, 0.9, 0, 2, 4.0)});
    // Pin the capacity scale at 1 to check the literal Eq. 67 arithmetic.
    OffsitePrimalDual scheduler(inst, OffsitePrimalDualConfig{.dual_capacity_scale = 1.0});
    const Decision d = scheduler.decide(inst.requests[0]);
    ASSERT_TRUE(d.admitted);
    const double rf = inst.catalog.reliability(VnfTypeId{0});
    const double c = inst.catalog.compute_units(VnfTypeId{0});
    const double ratio = std::log(1.0 - 0.9) / std::log(1.0 - rf * 0.99);
    // lambda was 0: new = ratio * c * pay / (d * cap).
    const double expected = ratio * c * 4.0 / (2.0 * 50.0);
    EXPECT_NEAR(scheduler.lambda(CloudletId{0}, 0), expected, 1e-12);
    EXPECT_NEAR(scheduler.lambda(CloudletId{0}, 1), expected, 1e-12);
    EXPECT_DOUBLE_EQ(scheduler.lambda(CloudletId{0}, 2), 0.0);
}

TEST(OffsitePrimalDual, LambdaGrowsMonotonically) {
    common::Rng rng(43);
    const Instance inst = random_instance(rng, 40, 3, 10);
    OffsitePrimalDual scheduler(inst);
    std::vector<double> last(inst.network.cloudlet_count() *
                                 static_cast<std::size_t>(inst.horizon),
                             0.0);
    for (const auto& r : inst.requests) {
        scheduler.decide(r);
        std::size_t k = 0;
        for (std::size_t j = 0; j < inst.network.cloudlet_count(); ++j) {
            for (TimeSlot t = 0; t < inst.horizon; ++t, ++k) {
                const double v =
                    scheduler.lambda(CloudletId{static_cast<std::int64_t>(j)}, t);
                EXPECT_GE(v, last[k] - 1e-12);
                last[k] = v;
            }
        }
    }
}

TEST(OffsitePrimalDual, PrefersCheaperCloudlets) {
    // Saturate cloudlet 0's duals with a stream of requests, then check the
    // next placement's first site is not the expensive cloudlet 0 when an
    // equally reliable alternative exists.
    std::vector<workload::Request> requests;
    for (int i = 0; i < 30; ++i) requests.push_back(make_request(i, 0, 0.9, 0, 1, 2.0));
    const Instance inst = small_instance({0.995, 0.995}, 1000.0, 1, std::move(requests));
    OffsitePrimalDual scheduler(inst);
    // After many admissions both cloudlets have prices; selection must still
    // meet requirements and alternate toward the cheaper one.
    const ScheduleResult result = run_online(inst, scheduler);
    std::size_t on_zero = 0;
    std::size_t on_one = 0;
    for (const Decision& d : result.decisions) {
        if (!d.admitted) continue;
        for (const Site& s : d.placement.sites) {
            (s.cloudlet == CloudletId{0} ? on_zero : on_one) += 1;
        }
    }
    EXPECT_GT(on_zero, 0u);
    EXPECT_GT(on_one, 0u) << "price-aware selection must spread load";
}

TEST(OffsitePrimalDual, NormalizedPriceZeroInitially) {
    const Instance inst = small_instance({0.99, 0.95}, 100.0, 10,
                                         {make_request(0, 0, 0.9, 0, 3, 5.0)});
    OffsitePrimalDual scheduler(inst);
    EXPECT_DOUBLE_EQ(scheduler.normalized_price(inst.requests[0], CloudletId{0}), 0.0);
    EXPECT_DOUBLE_EQ(scheduler.normalized_price(inst.requests[0], CloudletId{1}), 0.0);
}

TEST(OffsitePrimalDual, DualScaleConfiguration) {
    const Instance inst = small_instance({0.99}, 10.0, 5, {});
    OffsitePrimalDual explicit_scale(inst,
                                     OffsitePrimalDualConfig{.dual_capacity_scale = 2.5});
    EXPECT_DOUBLE_EQ(explicit_scale.dual_capacity_scale(), 2.5);
    OffsitePrimalDual auto_scale(inst);
    EXPECT_GE(auto_scale.dual_capacity_scale(), 1.0);
    EXPECT_THROW(
        OffsitePrimalDual(inst, OffsitePrimalDualConfig{.dual_capacity_scale = -0.5}),
        std::invalid_argument);
}

TEST(OffsitePrimalDual, DeterministicAcrossRuns) {
    common::Rng rng(47);
    const Instance inst = random_instance(rng, 50, 3, 10);
    OffsitePrimalDual s1(inst);
    OffsitePrimalDual s2(inst);
    const ScheduleResult r1 = run_online(inst, s1);
    const ScheduleResult r2 = run_online(inst, s2);
    EXPECT_DOUBLE_EQ(r1.revenue, r2.revenue);
    EXPECT_EQ(r1.admitted, r2.admitted);
}

}  // namespace
}  // namespace vnfr::core
