file(REMOVE_RECURSE
  "libvnfr_edge.a"
)
