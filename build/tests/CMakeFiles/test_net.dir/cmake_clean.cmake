file(REMOVE_RECURSE
  "CMakeFiles/test_net.dir/test_net_generators.cpp.o"
  "CMakeFiles/test_net.dir/test_net_generators.cpp.o.d"
  "CMakeFiles/test_net.dir/test_net_graph.cpp.o"
  "CMakeFiles/test_net.dir/test_net_graph.cpp.o.d"
  "CMakeFiles/test_net.dir/test_net_shortest_path.cpp.o"
  "CMakeFiles/test_net.dir/test_net_shortest_path.cpp.o.d"
  "CMakeFiles/test_net.dir/test_net_topology_zoo.cpp.o"
  "CMakeFiles/test_net.dir/test_net_topology_zoo.cpp.o.d"
  "test_net"
  "test_net.pdb"
  "test_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
