#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vnfr::workload {

void GeneratorConfig::set_payment_ratio(double h) {
    if (h < 1.0) throw std::invalid_argument("set_payment_ratio: H must be >= 1");
    payment_rate_min = payment_rate_max / h;
}

GeneratorConfig google_cluster_like(TimeSlot horizon, std::size_t count) {
    GeneratorConfig cfg;
    cfg.horizon = horizon;
    cfg.count = count;
    cfg.arrivals = ArrivalProcess::kPoisson;
    cfg.durations = DurationDistribution::kBoundedPareto;
    cfg.duration_min = 1;
    cfg.duration_max = std::max<TimeSlot>(1, horizon / 4);
    cfg.pareto_alpha = 1.2;  // heavy tail: most tasks short, a few long
    return cfg;
}

namespace {

void validate(const GeneratorConfig& cfg, const vnf::Catalog& catalog) {
    if (catalog.empty()) throw std::invalid_argument("generate: empty VNF catalog");
    if (cfg.horizon <= 0) throw std::invalid_argument("generate: non-positive horizon");
    if (cfg.duration_min < 1 || cfg.duration_max < cfg.duration_min)
        throw std::invalid_argument("generate: bad duration range");
    if (cfg.duration_max > cfg.horizon)
        throw std::invalid_argument("generate: duration_max exceeds horizon");
    if (cfg.requirement_min <= 0.0 || cfg.requirement_max >= 1.0 ||
        cfg.requirement_max < cfg.requirement_min)
        throw std::invalid_argument("generate: bad requirement range");
    if (cfg.payment_rate_min <= 0.0 || cfg.payment_rate_max < cfg.payment_rate_min)
        throw std::invalid_argument("generate: bad payment-rate range");
    if (cfg.pareto_alpha <= 0.0) throw std::invalid_argument("generate: bad pareto_alpha");
    if (cfg.diurnal_amplitude < 0.0 || cfg.diurnal_amplitude > 1.0)
        throw std::invalid_argument("generate: diurnal_amplitude outside [0, 1]");
}

TimeSlot draw_duration(const GeneratorConfig& cfg, common::Rng& rng) {
    switch (cfg.durations) {
        case DurationDistribution::kUniformInt:
            return static_cast<TimeSlot>(rng.uniform_int(cfg.duration_min, cfg.duration_max));
        case DurationDistribution::kBoundedPareto: {
            const double raw = rng.bounded_pareto(cfg.pareto_alpha,
                                                  static_cast<double>(cfg.duration_min),
                                                  static_cast<double>(cfg.duration_max));
            return std::clamp<TimeSlot>(static_cast<TimeSlot>(std::lround(raw)),
                                        cfg.duration_min, cfg.duration_max);
        }
    }
    throw std::logic_error("generate: unknown duration distribution");
}

std::vector<TimeSlot> draw_arrivals(const GeneratorConfig& cfg, common::Rng& rng) {
    std::vector<TimeSlot> arrivals;
    arrivals.reserve(cfg.count);
    switch (cfg.arrivals) {
        case ArrivalProcess::kUniform:
            for (std::size_t i = 0; i < cfg.count; ++i) {
                arrivals.push_back(
                    static_cast<TimeSlot>(rng.uniform_int(0, cfg.horizon - 1)));
            }
            break;
        case ArrivalProcess::kPoisson:
        case ArrivalProcess::kDiurnal: {
            // Rate chosen so the expected total matches cfg.count; drained
            // or padded afterwards to hit the count exactly so sweeps over
            // "number of requests" stay exact.
            const double base_rate =
                static_cast<double>(cfg.count) / static_cast<double>(cfg.horizon);
            for (TimeSlot t = 0; t < cfg.horizon && arrivals.size() < cfg.count; ++t) {
                double rate = base_rate;
                if (cfg.arrivals == ArrivalProcess::kDiurnal) {
                    // Trough at the horizon edges, peak mid-horizon; the
                    // modulation averages to ~1 so the expected total stays
                    // near cfg.count.
                    const double phase = 2.0 * 3.14159265358979323846 *
                                         (static_cast<double>(t) + 0.5) /
                                         static_cast<double>(cfg.horizon);
                    rate *= 1.0 - cfg.diurnal_amplitude * std::cos(phase);
                }
                const int k = rate > 0.0 ? rng.poisson(rate) : 0;
                for (int i = 0; i < k && arrivals.size() < cfg.count; ++i) {
                    arrivals.push_back(t);
                }
            }
            while (arrivals.size() < cfg.count) {
                arrivals.push_back(
                    static_cast<TimeSlot>(rng.uniform_int(0, cfg.horizon - 1)));
            }
            break;
        }
    }
    return arrivals;
}

}  // namespace

std::vector<Request> generate(const GeneratorConfig& cfg, const vnf::Catalog& catalog,
                              common::Rng& rng) {
    validate(cfg, catalog);
    auto arrivals = draw_arrivals(cfg, rng);

    std::vector<Request> out;
    out.reserve(cfg.count);
    for (std::size_t i = 0; i < cfg.count; ++i) {
        Request r;
        r.id = RequestId{static_cast<std::int64_t>(i)};
        r.vnf = VnfTypeId{rng.uniform_int(0, static_cast<std::int64_t>(catalog.size()) - 1)};
        r.requirement = rng.uniform(cfg.requirement_min, cfg.requirement_max);
        r.duration = draw_duration(cfg, rng);
        // Clamp the arrival so the request ends inside the horizon (the
        // paper only considers requests with a_i + d_i - 1 in T).
        r.arrival = std::min(arrivals[i], cfg.horizon - r.duration);
        const double pr = rng.uniform(cfg.payment_rate_min, cfg.payment_rate_max);
        r.payment = pr * static_cast<double>(r.duration) *
                    catalog.compute_units(r.vnf) * r.requirement;
        out.push_back(r);
    }
    std::sort(out.begin(), out.end(), [](const Request& a, const Request& b) {
        if (a.arrival != b.arrival) return a.arrival < b.arrival;
        return a.id < b.id;
    });
    return out;
}

double payment_rate(const Request& r, const vnf::Catalog& catalog) {
    return r.payment /
           (static_cast<double>(r.duration) * catalog.compute_units(r.vnf) * r.requirement);
}

}  // namespace vnfr::workload
