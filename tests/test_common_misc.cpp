#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <unordered_set>

#include "common/logging.hpp"
#include "common/types.hpp"

namespace vnfr {
namespace {

TEST(StrongId, DefaultIsInvalid) {
    const RequestId id;
    EXPECT_FALSE(id.valid());
    EXPECT_EQ(id.value, -1);
}

TEST(StrongId, ValidityAndIndex) {
    const CloudletId id{3};
    EXPECT_TRUE(id.valid());
    EXPECT_EQ(id.index(), 3u);
    EXPECT_FALSE(CloudletId{-5}.valid());
}

TEST(StrongId, ComparisonAndOrdering) {
    EXPECT_EQ(NodeId{2}, NodeId{2});
    EXPECT_NE(NodeId{2}, NodeId{3});
    EXPECT_LT(NodeId{2}, NodeId{3});
    std::map<VnfTypeId, int> ordered;
    ordered[VnfTypeId{5}] = 1;
    ordered[VnfTypeId{1}] = 2;
    EXPECT_EQ(ordered.begin()->first, VnfTypeId{1});
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
    // Compile-time property: RequestId and CloudletId must not be the same
    // type even though both wrap int64.
    static_assert(!std::is_same_v<RequestId, CloudletId>);
    static_assert(!std::is_same_v<NodeId, VnfTypeId>);
    SUCCEED();
}

TEST(StrongId, Hashable) {
    std::unordered_set<RequestId> set;
    set.insert(RequestId{1});
    set.insert(RequestId{2});
    set.insert(RequestId{1});
    EXPECT_EQ(set.size(), 2u);
}

TEST(StrongId, StreamOutput) {
    std::ostringstream os;
    os << CloudletId{42};
    EXPECT_EQ(os.str(), "42");
}

class LoggingTest : public ::testing::Test {
  protected:
    void SetUp() override { previous_ = common::log_level(); }
    void TearDown() override { common::set_log_level(previous_); }
    common::LogLevel previous_{common::LogLevel::kWarn};
};

TEST_F(LoggingTest, LevelRoundTrips) {
    common::set_log_level(common::LogLevel::kDebug);
    EXPECT_EQ(common::log_level(), common::LogLevel::kDebug);
    common::set_log_level(common::LogLevel::kOff);
    EXPECT_EQ(common::log_level(), common::LogLevel::kOff);
}

TEST_F(LoggingTest, EmitsToStderrWhenEnabled) {
    common::set_log_level(common::LogLevel::kInfo);
    ::testing::internal::CaptureStderr();
    common::log_info("hello ", 42);
    const std::string out = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("[INFO] hello 42"), std::string::npos);
}

TEST_F(LoggingTest, SuppressedBelowThreshold) {
    common::set_log_level(common::LogLevel::kError);
    ::testing::internal::CaptureStderr();
    common::log_debug("quiet");
    common::log_info("quiet");
    common::log_warn("quiet");
    EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST_F(LoggingTest, OffSilencesEverything) {
    common::set_log_level(common::LogLevel::kOff);
    ::testing::internal::CaptureStderr();
    common::log_error("still quiet");
    EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

}  // namespace
}  // namespace vnfr
