#include "net/algorithms.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "net/shortest_path.hpp"

namespace vnfr::net {

Components connected_components(const Graph& g) {
    Components out;
    out.label.assign(g.node_count(), -1);
    for (std::size_t start = 0; start < g.node_count(); ++start) {
        if (out.label[start] != -1) continue;
        std::queue<NodeId> q;
        q.push(NodeId{static_cast<std::int64_t>(start)});
        out.label[start] = out.count;
        while (!q.empty()) {
            const NodeId u = q.front();
            q.pop();
            for (const Adjacency& adj : g.neighbors(u)) {
                if (out.label[adj.neighbor.index()] == -1) {
                    out.label[adj.neighbor.index()] = out.count;
                    q.push(adj.neighbor);
                }
            }
        }
        ++out.count;
    }
    return out;
}

bool is_connected(const Graph& g) {
    if (g.node_count() == 0) return true;
    return connected_components(g).count == 1;
}

double weighted_diameter(const Graph& g) {
    if (g.node_count() == 0) throw std::invalid_argument("weighted_diameter: empty graph");
    double best = 0.0;
    for (std::size_t v = 0; v < g.node_count(); ++v) {
        const auto tree = dijkstra(g, NodeId{static_cast<std::int64_t>(v)});
        for (const double d : tree.distance) {
            if (d == kUnreachable) return kUnreachable;
            best = std::max(best, d);
        }
    }
    return best;
}

int hop_diameter(const Graph& g) {
    if (g.node_count() == 0) throw std::invalid_argument("hop_diameter: empty graph");
    int best = 0;
    for (std::size_t v = 0; v < g.node_count(); ++v) {
        const auto hops = bfs_hops(g, NodeId{static_cast<std::int64_t>(v)});
        for (const int h : hops) {
            if (h < 0) return -1;
            best = std::max(best, h);
        }
    }
    return best;
}

double average_degree(const Graph& g) {
    if (g.node_count() == 0) return 0.0;
    return 2.0 * static_cast<double>(g.edge_count()) / static_cast<double>(g.node_count());
}

}  // namespace vnfr::net
