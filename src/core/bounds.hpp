// The theoretical guarantees of Algorithm 1 (Theorem 1, Lemma 8),
// computed for a concrete instance so experiments can check them.
//
//   a_ij  = N_ij * c(f_i)  over feasible (request, cloudlet) pairs
//   competitive ratio = 1 + a_max
//   xi = a_max / (cap_min * log2(1 + a_min / cap_max))
//        * log2( pay_max * d_max / pay_min
//                * (1/a_min + a_max/(a_min cap_min) + a_max/(d_min cap_min))
//                + 1 )
//
// xi bounds the *relative* per-cloudlet usage (usage_j / cap_j <= xi for
// every cloudlet and slot); the absolute form (before dividing by cap_min)
// bounds raw usage.
#pragma once

#include "core/instance.hpp"

namespace vnfr::core {

struct TheoryBounds {
    double a_max{0};
    double a_min{0};
    double pay_max{0};
    double pay_min{0};
    double d_max{0};
    double d_min{0};
    double cap_max{0};
    double cap_min{0};
    /// Theorem 1: the online revenue is at least OPT / (1 + a_max).
    double competitive_ratio{0};
    /// Lemma 8, absolute form: usage of any cloudlet in any slot.
    double absolute_usage_bound{0};
    /// Lemma 8, relative form: usage_j / cap_j at any cloudlet and slot.
    double xi{0};
};

/// Computes the bounds for the on-site scheme. Throws std::invalid_argument
/// when no (request, cloudlet) pair is feasible (a_max undefined).
TheoryBounds compute_onsite_bounds(const Instance& instance);

}  // namespace vnfr::core
