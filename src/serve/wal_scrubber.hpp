// Background integrity scrubber for a controller state directory: walks
// the snapshot plus every retained WAL generation and re-verifies all the
// CRCs and cross-file invariants that recovery would rely on, WITHOUT
// mutating anything. The point is to surface latent corruption (a bit rot
// in a retained generation, a snapshot that no longer decodes) while the
// data still has a healthy replica to re-ship from — not at the moment a
// failover desperately needs the bytes.
//
// Invariants checked, per scrub:
//   - the snapshot (when present) decodes with a valid CRC;
//   - every wal-<gen>.log parses cleanly: valid header CRC, every record
//     CRC intact. Only the NEWEST generation may carry a torn tail (a
//     crash interrupts at most the live file's final append); any torn or
//     corrupt bytes in an older, rotation-closed generation are findings;
//   - each file's header generation matches its filename;
//   - all generations carry the same config digest, matching the
//     snapshot's when one exists;
//   - retained generations are contiguous (releases only trim from the
//     bottom, so a hole means a lost file);
//   - the snapshot's WAL generation points into (or just past) the
//     retained range.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vnfr::serve {

class Vfs;

/// One problem found by a scrub, with enough context to locate the bad
/// byte: which file, what is wrong, and where.
struct ScrubFinding {
    std::string file;
    std::string detail;
    std::uint64_t offset{0};
};

struct ScrubReport {
    bool snapshot_present{false};
    bool snapshot_ok{false};  ///< false when absent or corrupt
    std::uint64_t generations_scanned{0};
    std::uint64_t records_verified{0};
    /// Torn tail tolerated on the newest generation (a legal crash
    /// artifact, not a finding).
    std::uint64_t torn_tail_bytes{0};
    std::vector<ScrubFinding> findings;

    /// A clean scrub: nothing corrupt, nothing missing, nothing
    /// inconsistent. An absent snapshot with zero generations is clean
    /// (a virgin directory); an absent snapshot alongside WAL files is
    /// clean too (the controller has not checkpointed yet) — corruption,
    /// holes, and digest mismatches are not.
    [[nodiscard]] bool clean() const { return findings.empty(); }
};

/// Scrubs the controller state in `dir` through `vfs`. Read-only: never
/// repairs, truncates, or deletes. Throws only for environmental failure
/// (the directory itself is unreadable); every data problem is reported
/// as a finding instead.
[[nodiscard]] ScrubReport scrub_data_dir(Vfs& vfs, const std::string& dir);

/// scrub_data_dir through the process-wide PosixVfs.
[[nodiscard]] ScrubReport scrub_data_dir(const std::string& dir);

}  // namespace vnfr::serve
