#include "serve/wal_scrubber.hpp"

#include <algorithm>
#include <optional>

#include "serve/snapshot.hpp"
#include "serve/vfs.hpp"
#include "serve/wal.hpp"
#include "serve/wire.hpp"

namespace vnfr::serve {

namespace {

/// Sorted generation numbers of the wal-<gen>.log files in `dir`.
std::vector<std::uint64_t> list_generations(Vfs& vfs, const std::string& dir) {
    std::vector<std::uint64_t> gens;
    for (const std::string& name : vfs.list_dir(dir)) {
        if (!name.starts_with("wal-") || !name.ends_with(".log")) continue;
        const std::string digits = name.substr(4, name.size() - 8);
        if (digits.empty()) continue;
        std::uint64_t gen = 0;
        bool numeric = true;
        for (const char c : digits) {
            if (c < '0' || c > '9') {
                numeric = false;
                break;
            }
            gen = gen * 10 + static_cast<std::uint64_t>(c - '0');
        }
        if (numeric) gens.push_back(gen);
    }
    std::sort(gens.begin(), gens.end());
    return gens;
}

}  // namespace

ScrubReport scrub_data_dir(Vfs& vfs, const std::string& dir) {
    ScrubReport report;
    const std::vector<std::uint64_t> gens = list_generations(vfs, dir);

    // Snapshot first: its WAL pointer and config digest anchor the
    // cross-file checks below.
    const std::string snap_path = dir + "/snapshot.bin";
    std::optional<ControllerSnapshot> snap;
    if (file_exists(vfs, snap_path)) {
        report.snapshot_present = true;
        try {
            snap = load_snapshot(vfs, snap_path);
            report.snapshot_ok = true;
        } catch (const CorruptStateError& err) {
            report.findings.push_back(
                ScrubFinding{snap_path, err.what(), err.offset()});
        }
    }

    std::optional<std::uint64_t> digest;  // first digest seen, for consistency
    const char* digest_source = "";
    if (snap.has_value()) {
        digest = snap->config_digest;
        digest_source = "snapshot";
    }

    for (std::size_t i = 0; i < gens.size(); ++i) {
        const std::uint64_t gen = gens[i];
        const std::string path = dir + "/wal-" + std::to_string(gen) + ".log";
        // Rotation closes every generation but the newest with a clean
        // record boundary; only the live file may legally end in a torn
        // append, so older generations are held to kStrict.
        const bool newest = i + 1 == gens.size();
        WalContents contents;
        try {
            contents = read_wal(vfs, path,
                                newest ? WalReadMode::kRecover
                                       : WalReadMode::kStrict);
        } catch (const CorruptStateError& err) {
            report.findings.push_back(
                ScrubFinding{path, err.what(), err.offset()});
            continue;
        }
        ++report.generations_scanned;
        report.records_verified += contents.records.size();
        if (newest) report.torn_tail_bytes += contents.bytes_discarded;
        if (contents.wal_seq != gen) {
            report.findings.push_back(ScrubFinding{
                path,
                "header generation " + std::to_string(contents.wal_seq) +
                    " does not match the filename",
                0});
        }
        if (!digest.has_value()) {
            digest = contents.config_digest;
            digest_source = "first generation";
        } else if (contents.config_digest != *digest) {
            report.findings.push_back(ScrubFinding{
                path, "config digest disagrees with the " +
                          std::string(digest_source) +
                          " (mixed state directories?)",
                0});
        }
        if (i > 0 && gen != gens[i - 1] + 1) {
            report.findings.push_back(ScrubFinding{
                path,
                "generation gap: previous retained generation is " +
                    std::to_string(gens[i - 1]) +
                    " (releases trim only from the bottom, so a hole means "
                    "a lost file)",
                0});
        }
    }

    // The snapshot names the generation that logs records after it; that
    // generation must still be retained — or be the one rotation was
    // about to create when the process died (snapshot durable, next WAL
    // not yet, a legal crash window one recovery pass heals).
    if (snap.has_value() && !gens.empty()) {
        if (snap->wal_seq < gens.front() || snap->wal_seq > gens.back() + 1) {
            report.findings.push_back(ScrubFinding{
                snap_path,
                "snapshot points at WAL generation " +
                    std::to_string(snap->wal_seq) + " but retained are [" +
                    std::to_string(gens.front()) + ", " +
                    std::to_string(gens.back()) + "]",
                0});
        }
    }
    if (snap.has_value() && gens.empty()) {
        report.findings.push_back(ScrubFinding{
            snap_path, "snapshot present but no WAL generation is retained",
            0});
    }
    return report;
}

ScrubReport scrub_data_dir(const std::string& dir) {
    return scrub_data_dir(posix_vfs(), dir);
}

}  // namespace vnfr::serve
