#include "report/json.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace vnfr::report {

namespace {

void append_double(std::string& out, double d) {
    if (!std::isfinite(d)) {
        out += "null";
        return;
    }
    // Round-trip ("shortest exact") formatting keeps checksummed metric
    // values bit-faithful across emit/inspect cycles.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    // Prefer a shorter form when it already round-trips.
    double parsed = 0.0;
    for (int precision = 1; precision < 17; ++precision) {
        char shorter[64];
        std::snprintf(shorter, sizeof(shorter), "%.*g", precision, d);
        std::sscanf(shorter, "%lf", &parsed);
        if (parsed == d) {  // vnfr-lint: allow(float-eq) exact round-trip test
            out += shorter;
            return;
        }
    }
    out += buf;
}

void append_indent(std::string& out, int indent, int depth) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

}  // namespace

JsonValue::JsonValue(std::uint64_t u) {
    if (u <= static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
        value_ = static_cast<std::int64_t>(u);
    } else {
        value_ = static_cast<double>(u);
    }
}

JsonValue JsonValue::object() {
    JsonValue v;
    v.value_ = Object{};
    return v;
}

JsonValue JsonValue::array() {
    JsonValue v;
    v.value_ = Array{};
    return v;
}

JsonValue& JsonValue::set(std::string key, JsonValue value) {
    if (!is_object()) throw std::logic_error("JsonValue::set on a non-object");
    std::get<Object>(value_).emplace_back(std::move(key), std::move(value));
    return *this;
}

JsonValue& JsonValue::push(JsonValue value) {
    if (!is_array()) throw std::logic_error("JsonValue::push on a non-array");
    std::get<Array>(value_).push_back(std::move(value));
    return *this;
}

bool JsonValue::is_object() const { return std::holds_alternative<Object>(value_); }
bool JsonValue::is_array() const { return std::holds_alternative<Array>(value_); }

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
    if (std::holds_alternative<std::nullptr_t>(value_)) {
        out += "null";
    } else if (const bool* b = std::get_if<bool>(&value_)) {
        out += *b ? "true" : "false";
    } else if (const double* d = std::get_if<double>(&value_)) {
        append_double(out, *d);
    } else if (const std::int64_t* i = std::get_if<std::int64_t>(&value_)) {
        out += std::to_string(*i);
    } else if (const std::string* s = std::get_if<std::string>(&value_)) {
        out += '"';
        out += json_escape(*s);
        out += '"';
    } else if (const Array* a = std::get_if<Array>(&value_)) {
        out += '[';
        for (std::size_t k = 0; k < a->size(); ++k) {
            if (k > 0) out += ',';
            append_indent(out, indent, depth + 1);
            (*a)[k].dump_to(out, indent, depth + 1);
        }
        if (!a->empty()) append_indent(out, indent, depth);
        out += ']';
    } else {
        const Object& o = std::get<Object>(value_);
        out += '{';
        for (std::size_t k = 0; k < o.size(); ++k) {
            if (k > 0) out += ',';
            append_indent(out, indent, depth + 1);
            out += '"';
            out += json_escape(o[k].first);
            out += "\": ";
            o[k].second.dump_to(out, indent, depth + 1);
        }
        if (!o.empty()) append_indent(out, indent, depth);
        out += '}';
    }
}

std::string JsonValue::dump(int indent) const {
    std::string out;
    dump_to(out, indent, 0);
    return out;
}

std::string hex_u64(std::uint64_t v) {
    char buf[19];
    std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(v));
    return buf;
}

}  // namespace vnfr::report
