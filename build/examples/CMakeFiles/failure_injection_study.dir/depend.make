# Empty dependencies file for failure_injection_study.
# This may be replaced when dependencies are built.
