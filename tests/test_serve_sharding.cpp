// Slot-band sharding tests: ShardPlan/build_waves unit properties, plus
// the load-bearing equivalence property — a randomized workload driven
// through a 1-shard controller and through K-shard wave-parallel
// controllers (several thread counts) must produce the SAME admitted
// set, revenue bits, state digest, and a verify_schedule-clean schedule.
//
// Documented tolerance: none is needed here, because the drive pattern
// is phased (single submitting thread, drains at fixed positions), which
// makes shedding deterministic too. Free-running pipelines do have a
// shed-timing tolerance — see admission_pipeline.hpp and the pipeline
// tests.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/verify.hpp"
#include "helpers.hpp"
#include "serve/admission_controller.hpp"
#include "serve/shard_plan.hpp"

namespace vnfr::serve {
namespace {

using vnfr::testing::make_request;
using vnfr::testing::random_instance;

TEST(ServeShardPlan, BandsPartitionTheHorizon) {
    const ShardPlan plan(4, 20);
    ASSERT_EQ(plan.shard_count(), 4u);
    std::size_t prev = 0;
    std::set<std::size_t> seen;
    for (TimeSlot t = 0; t < 20; ++t) {
        const std::size_t band = plan.band_of(t);
        EXPECT_LT(band, plan.shard_count());
        EXPECT_GE(band, prev);  // monotone in t
        prev = band;
        seen.insert(band);
    }
    EXPECT_EQ(seen.size(), 4u);  // surjective: no empty band
}

TEST(ServeShardPlan, ClampsShardsToTheHorizon) {
    const ShardPlan plan(64, 5);
    EXPECT_EQ(plan.shard_count(), 5u);
    EXPECT_THROW(ShardPlan(0, 5), std::invalid_argument);
    EXPECT_THROW(ShardPlan(4, 0), std::invalid_argument);
}

TEST(ServeShardPlan, RequestBandsCoverTheWindow) {
    const ShardPlan plan(5, 20);  // bands of 4 slots
    const workload::Request r = make_request(0, 0, 0.95, 3, 6, 1.0);  // slots [3, 9)
    const ShardPlan::BandRange range = plan.bands(r);
    EXPECT_EQ(range.first, plan.band_of(3));
    EXPECT_EQ(range.last, plan.band_of(8));
    EXPECT_TRUE(range.overlaps(range));
    const ShardPlan::BandRange disjoint{range.last + 1, range.last + 1};
    EXPECT_FALSE(range.overlaps(disjoint));
    EXPECT_FALSE(disjoint.overlaps(range));
}

std::vector<workload::Request> random_batch(common::Rng& rng, std::size_t n,
                                            TimeSlot horizon) {
    std::vector<workload::Request> batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const TimeSlot arrival =
            static_cast<TimeSlot>(rng.uniform_int(0, horizon - 1));
        const TimeSlot duration = static_cast<TimeSlot>(
            rng.uniform_int(1, std::max<TimeSlot>(1, horizon - arrival)));
        batch.push_back(make_request(static_cast<std::int64_t>(i), 0, 0.95, arrival,
                                     duration, 1.0));
    }
    return batch;
}

TEST(ServeShardPlan, WavesAreConflictFreeAndOrderPreserving) {
    common::Rng rng(0x5EED);
    for (int round = 0; round < 20; ++round) {
        const TimeSlot horizon = static_cast<TimeSlot>(rng.uniform_int(4, 30));
        const std::size_t shards =
            static_cast<std::size_t>(rng.uniform_int(1, 8));
        const ShardPlan plan(shards, horizon);
        const std::vector<workload::Request> batch =
            random_batch(rng, static_cast<std::size_t>(rng.uniform_int(1, 40)),
                         horizon);
        const auto waves = build_waves(plan, batch);

        // Every index appears exactly once, and a request's wave is
        // strictly later than any earlier conflicting request's wave.
        std::vector<std::size_t> wave_of(batch.size(), 0);
        std::set<std::size_t> seen;
        for (std::size_t w = 0; w < waves.size(); ++w) {
            EXPECT_FALSE(waves[w].empty());
            for (const std::size_t i : waves[w]) {
                EXPECT_TRUE(seen.insert(i).second);
                wave_of[i] = w;
            }
            // Pairwise band-disjoint within a wave.
            for (std::size_t a = 0; a < waves[w].size(); ++a) {
                for (std::size_t b = a + 1; b < waves[w].size(); ++b) {
                    EXPECT_FALSE(plan.bands(batch[waves[w][a]])
                                     .overlaps(plan.bands(batch[waves[w][b]])))
                        << "conflicting requests share wave " << w;
                }
            }
        }
        EXPECT_EQ(seen.size(), batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
            for (std::size_t j = i + 1; j < batch.size(); ++j) {
                if (plan.bands(batch[i]).overlaps(plan.bands(batch[j]))) {
                    EXPECT_LT(wave_of[i], wave_of[j]);
                }
            }
        }
    }
}

TEST(ServeShardPlan, OneShardDegeneratesToSequentialExecution) {
    common::Rng rng(0xABC);
    const ShardPlan plan(1, 12);
    const std::vector<workload::Request> batch = random_batch(rng, 17, 12);
    const auto waves = build_waves(plan, batch);
    ASSERT_EQ(waves.size(), batch.size());
    for (std::size_t w = 0; w < waves.size(); ++w) {
        ASSERT_EQ(waves[w].size(), 1u);
        EXPECT_EQ(waves[w][0], w);
    }
}

std::string fresh_dir(const std::string& name) {
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

struct RunResult {
    std::uint64_t digest{0};
    ServeMetrics metrics;
    std::vector<AdmittedRecord> admitted;
    bool capacity_ok{false};
};

/// Phased deterministic drive: submit in seq order, drain every
/// `drain_every` submissions (overflowing the queue in between so sheds
/// happen), final drain, full verification.
RunResult run_with(const core::Instance& instance, core::Scheme scheme,
                   std::size_t shards, std::size_t threads, std::size_t group,
                   const std::string& dir) {
    ServeConfig cfg;
    cfg.data_dir = dir;
    cfg.checkpoint_every = 16;
    cfg.queue_capacity = 6;
    cfg.group_commit = group;
    cfg.decide_shards = shards;
    cfg.decide_threads = threads;
    AdmissionController controller(instance, scheme, cfg);
    const std::size_t drain_every = 10;  // > queue_capacity: sheds occur
    for (std::size_t i = 0; i < instance.requests.size(); ++i) {
        controller.submit(i, instance.requests[i]);
        if ((i + 1) % drain_every == 0) controller.pump(drain_every);
    }
    controller.drain();

    RunResult out;
    out.digest = controller.state_digest();
    out.metrics = controller.metrics();
    out.admitted = controller.admitted_records();
    std::vector<core::Decision> decisions(instance.requests.size());
    for (const AdmittedRecord& rec : out.admitted) {
        core::Decision& d = decisions[static_cast<std::size_t>(rec.seq)];
        d.admitted = true;
        d.placement.request = instance.requests[static_cast<std::size_t>(rec.seq)].id;
        for (const auto& [cloudlet, replicas] : rec.sites) {
            d.placement.sites.push_back(
                core::Site{CloudletId{cloudlet}, static_cast<int>(replicas)});
        }
    }
    out.capacity_ok = core::verify_schedule(instance, decisions).ok();
    return out;
}

void expect_equivalent(const RunResult& base, const RunResult& other) {
    EXPECT_EQ(base.digest, other.digest);
    EXPECT_EQ(base.metrics.admitted, other.metrics.admitted);
    EXPECT_EQ(base.metrics.rejected, other.metrics.rejected);
    EXPECT_EQ(base.metrics.shed, other.metrics.shed);
    EXPECT_EQ(base.metrics.revenue, other.metrics.revenue);          // bit-equal
    EXPECT_EQ(base.metrics.shed_revenue, other.metrics.shed_revenue);
    ASSERT_EQ(base.admitted.size(), other.admitted.size());
    for (std::size_t i = 0; i < base.admitted.size(); ++i) {
        EXPECT_EQ(base.admitted[i].seq, other.admitted[i].seq);
        EXPECT_EQ(base.admitted[i].sites, other.admitted[i].sites);
    }
    EXPECT_TRUE(other.capacity_ok);
}

TEST(ServeShardingEquivalence, KShardPipelinesMatchOneShardBitExactly) {
    for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
        common::Rng rng(seed);
        const core::Instance inst = random_instance(rng, 120, 4, 24);
        for (const core::Scheme scheme :
             {core::Scheme::kOnsite, core::Scheme::kOffsite}) {
            const std::string tag =
                std::to_string(seed) +
                (scheme == core::Scheme::kOnsite ? "_on" : "_off");
            const RunResult base = run_with(inst, scheme, 1, 1, 1,
                                            fresh_dir("shard_base_" + tag));
            EXPECT_TRUE(base.capacity_ok);
            EXPECT_GT(base.metrics.admitted, 0u);
            EXPECT_GT(base.metrics.shed, 0u);  // sheds are exercised too
            // Shard/thread/group axes, including non-divisible combos.
            expect_equivalent(base, run_with(inst, scheme, 4, 4, 4,
                                             fresh_dir("shard_4x4_" + tag)));
            expect_equivalent(base, run_with(inst, scheme, 8, 2, 32,
                                             fresh_dir("shard_8x2_" + tag)));
            expect_equivalent(base, run_with(inst, scheme, 24, 8, 1,
                                             fresh_dir("shard_24x8_" + tag)));
        }
    }
}

}  // namespace
}  // namespace vnfr::serve
