#include "serve/wire.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <cerrno>
#include <system_error>

namespace vnfr::serve {

namespace {

/// CRC-32 lookup table for the reflected IEEE 802.3 polynomial 0xEDB88320,
/// built once at static-init time.
std::array<std::uint32_t, 256> make_crc_table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit) {
            c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
        }
        table[i] = c;
    }
    return table;
}

const std::array<std::uint32_t, 256>& crc_table() {
    static const std::array<std::uint32_t, 256> table = make_crc_table();
    return table;
}

[[noreturn]] void throw_errno(const std::string& path, const char* op) {
    throw std::system_error(errno, std::generic_category(), path + ": " + op);
}

}  // namespace

std::uint32_t crc32(std::string_view data, std::uint32_t seed) {
    const auto& table = crc_table();
    std::uint32_t c = seed ^ 0xFFFFFFFFU;
    for (const char ch : data) {
        c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFU] ^ (c >> 8);
    }
    return c ^ 0xFFFFFFFFU;
}

void WireWriter::put_u8(std::uint8_t v) { buffer_.push_back(static_cast<char>(v)); }

void WireWriter::put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFU));
    }
}

void WireWriter::put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFU));
    }
}

void WireWriter::put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }

void WireWriter::put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

void WireWriter::put_bytes(std::string_view bytes) { buffer_.append(bytes); }

void WireReader::fail(const std::string& what) const {
    throw CorruptStateError(label_, offset(), what);
}

std::string_view WireReader::get_bytes(std::size_t n, const char* what) {
    if (remaining() < n) {
        fail(std::string("truncated while reading ") + what + ": need " +
             std::to_string(n) + " bytes, have " + std::to_string(remaining()));
    }
    const std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
}

std::uint8_t WireReader::get_u8(const char* what) {
    return static_cast<std::uint8_t>(get_bytes(1, what)[0]);
}

std::uint32_t WireReader::get_u32(const char* what) {
    const std::string_view b = get_bytes(4, what);
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[i])) << (8 * i);
    }
    return v;
}

std::uint64_t WireReader::get_u64(const char* what) {
    const std::string_view b = get_bytes(8, what);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i])) << (8 * i);
    }
    return v;
}

std::int64_t WireReader::get_i64(const char* what) {
    return static_cast<std::int64_t>(get_u64(what));
}

double WireReader::get_f64(const char* what) {
    return std::bit_cast<double>(get_u64(what));
}

void WireReader::require_end(const char* what) const {
    if (pos_ != data_.size()) {
        throw CorruptStateError(label_, offset(),
                                std::string(what) + ": " + std::to_string(remaining()) +
                                    " trailing bytes after the last field");
    }
}

std::string read_file(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        if (errno == ENOENT) {
            throw CorruptStateError(path, 0, "file does not exist");
        }
        throw_errno(path, "open");
    }
    std::string out;
    char buf[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR) continue;
            const int saved = errno;
            ::close(fd);
            errno = saved;
            throw_errno(path, "read");
        }
        if (n == 0) break;
        out.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return out;
}

namespace {

void write_all(int fd, const std::string& path, std::string_view bytes) {
    std::size_t done = 0;
    while (done < bytes.size()) {
        const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno(path, "write");
        }
        done += static_cast<std::size_t>(n);
    }
}

void fsync_parent_dir(const std::string& path) {
    const std::size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) throw_errno(dir, "open directory");
    if (::fsync(fd) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throw_errno(dir, "fsync directory");
    }
    ::close(fd);
}

}  // namespace

void atomic_write_file(const std::string& path, std::string_view bytes) {
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) throw_errno(tmp, "open");
    try {
        write_all(fd, tmp, bytes);
        if (::fsync(fd) != 0) throw_errno(tmp, "fsync");
    } catch (...) {
        ::close(fd);
        ::unlink(tmp.c_str());
        throw;
    }
    if (::close(fd) != 0) throw_errno(tmp, "close");
    if (::rename(tmp.c_str(), path.c_str()) != 0) throw_errno(path, "rename");
    fsync_parent_dir(path);
}

bool file_exists(const std::string& path) {
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
}

}  // namespace vnfr::serve
