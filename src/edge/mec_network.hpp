// The MEC infrastructure: an AP graph plus the cloudlets attached to a
// subset of its APs (the paper's G = (V, E) with C, |C| <= |V|).
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "edge/cloudlet.hpp"
#include "net/graph.hpp"

namespace vnfr::edge {

/// Parameters for attaching randomly sized cloudlets to a topology.
struct CloudletAttachment {
    std::size_t count{10};
    double capacity_min{80};
    double capacity_max{120};
    double reliability_min{0.95};
    double reliability_max{0.999};
};

class MecNetwork {
  public:
    /// Takes ownership of the AP graph; cloudlets are added afterwards.
    explicit MecNetwork(net::Graph graph);

    /// Attach one cloudlet to AP `node`. Throws std::invalid_argument for
    /// unknown nodes, non-positive capacity, reliability outside (0,1) or a
    /// node that already hosts a cloudlet.
    CloudletId add_cloudlet(NodeId node, double capacity, double reliability);

    /// Attach `spec.count` cloudlets to distinct randomly chosen APs with
    /// uniform capacities/reliabilities. Throws if count exceeds |V|.
    void attach_random_cloudlets(const CloudletAttachment& spec, common::Rng& rng);

    [[nodiscard]] const net::Graph& graph() const { return graph_; }
    [[nodiscard]] std::span<const Cloudlet> cloudlets() const { return cloudlets_; }
    [[nodiscard]] std::size_t cloudlet_count() const { return cloudlets_.size(); }

    [[nodiscard]] const Cloudlet& cloudlet(CloudletId id) const;

    /// Cloudlet hosted at `node`, or an invalid id if none.
    [[nodiscard]] CloudletId cloudlet_at(NodeId node) const;

    /// Capacities indexed by cloudlet id, ready for a ResourceLedger.
    [[nodiscard]] std::vector<double> capacities() const;

    /// Reliabilities indexed by cloudlet id.
    [[nodiscard]] std::vector<double> reliabilities() const;

    /// Hop distance between the APs of two cloudlets (BFS, cached on first
    /// use); -1 when disconnected. Used for off-site traffic-cost reporting.
    [[nodiscard]] int hop_distance(CloudletId a, CloudletId b) const;

    /// Hop distance from an arbitrary AP (e.g. a request's source) to a
    /// cloudlet's AP; -1 when disconnected.
    [[nodiscard]] int hop_distance_from(NodeId node, CloudletId c) const;

  private:
    net::Graph graph_;
    std::vector<Cloudlet> cloudlets_;
    std::vector<CloudletId> cloudlet_by_node_;
    mutable std::vector<std::vector<int>> hop_cache_;  ///< lazily built
};

}  // namespace vnfr::edge
