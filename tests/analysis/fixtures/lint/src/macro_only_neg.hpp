#pragma once
// Negative fixture for the namespace rule's pure-preprocessor exemption:
// a macro-only header (every non-blank code line is a preprocessor
// directive, like src/common/annotations.hpp) defines no entities to
// scope and must not be asked to open the repo namespace.

#if defined(__clang__)
#define FIXTURE_ATTR(x) __attribute__((x))
#else
#define FIXTURE_ATTR(x)
#endif

#define FIXTURE_GUARDED_BY(x) FIXTURE_ATTR(guarded_by(x))
