# Empty dependencies file for vnfr_opt.
# This may be replaced when dependencies are built.
