file(REMOVE_RECURSE
  "CMakeFiles/ablation_violation_bound.dir/ablation_violation_bound.cpp.o"
  "CMakeFiles/ablation_violation_bound.dir/ablation_violation_bound.cpp.o.d"
  "ablation_violation_bound"
  "ablation_violation_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_violation_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
