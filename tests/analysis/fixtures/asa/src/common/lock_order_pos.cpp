// Positive fixture for the vnfr-asa lock-order rule against the real
// hierarchy in tools/lock_hierarchy.txt (outermost first: mu_, mutex_,
// error_mutex). Undeclared locks, order inversions, and same-scope
// re-acquisition must all be reported.
#include "common/mutex.hpp"

namespace vnfr::common {

struct PoolLike {
    Mutex mutex_;
    Mutex error_mutex;
    Mutex rogue_lock;
};

void takes_undeclared_lock(PoolLike& pool) {
    const MutexLock lock(&pool.rogue_lock);  // expect: lock-order
}

void inverts_declared_order(PoolLike& pool) {
    const MutexLock inner_first(&pool.error_mutex);
    {
        const MutexLock outer_second(&pool.mutex_);  // expect: lock-order
    }
}

void reacquires_same_lock(PoolLike& pool) {
    const MutexLock first(&pool.mutex_);
    const MutexLock second(&pool.mutex_);  // expect: lock-order
}

}  // namespace vnfr::common
