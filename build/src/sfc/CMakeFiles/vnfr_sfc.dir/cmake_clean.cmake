file(REMOVE_RECURSE
  "CMakeFiles/vnfr_sfc.dir/chain_reliability.cpp.o"
  "CMakeFiles/vnfr_sfc.dir/chain_reliability.cpp.o.d"
  "CMakeFiles/vnfr_sfc.dir/chain_scheduler.cpp.o"
  "CMakeFiles/vnfr_sfc.dir/chain_scheduler.cpp.o.d"
  "CMakeFiles/vnfr_sfc.dir/chain_workload.cpp.o"
  "CMakeFiles/vnfr_sfc.dir/chain_workload.cpp.o.d"
  "libvnfr_sfc.a"
  "libvnfr_sfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfr_sfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
