file(REMOVE_RECURSE
  "libvnfr_workload.a"
)
