#include "sim/experiment.hpp"

#include <stdexcept>

#include "core/greedy.hpp"
#include "core/hybrid_primal_dual.hpp"
#include "core/offsite_primal_dual.hpp"
#include "core/onsite_primal_dual.hpp"

namespace vnfr::sim {

std::string_view algorithm_name(Algorithm algorithm) {
    switch (algorithm) {
        case Algorithm::kOnsitePrimalDual: return "onsite-primal-dual";
        case Algorithm::kOnsitePrimalDualPure: return "onsite-primal-dual-pure";
        case Algorithm::kOnsiteGreedy: return "onsite-greedy";
        case Algorithm::kOffsitePrimalDual: return "offsite-primal-dual";
        case Algorithm::kOffsiteGreedy: return "offsite-greedy";
        case Algorithm::kHybridPrimalDual: return "hybrid-primal-dual";
    }
    throw std::invalid_argument("algorithm_name: unknown algorithm");
}

std::unique_ptr<core::OnlineScheduler> make_scheduler(Algorithm algorithm,
                                                      const core::Instance& instance) {
    switch (algorithm) {
        case Algorithm::kOnsitePrimalDual:
            return std::make_unique<core::OnsitePrimalDual>(instance);
        case Algorithm::kOnsitePrimalDualPure:
            return std::make_unique<core::OnsitePrimalDual>(
                instance, core::OnsitePrimalDualConfig{.enforce_capacity = false});
        case Algorithm::kOnsiteGreedy:
            return std::make_unique<core::OnsiteGreedy>(instance);
        case Algorithm::kOffsitePrimalDual:
            return std::make_unique<core::OffsitePrimalDual>(instance);
        case Algorithm::kOffsiteGreedy:
            return std::make_unique<core::OffsiteGreedy>(instance);
        case Algorithm::kHybridPrimalDual:
            return std::make_unique<core::HybridPrimalDual>(instance);
    }
    throw std::invalid_argument("make_scheduler: unknown algorithm");
}

ExperimentOutcome run_experiment(const InstanceFactory& factory,
                                 const ExperimentConfig& config) {
    if (config.algorithms.empty())
        throw std::invalid_argument("run_experiment: no algorithms configured");
    if (config.seeds == 0) throw std::invalid_argument("run_experiment: zero seeds");

    ExperimentOutcome outcome;
    outcome.per_algorithm.reserve(config.algorithms.size());
    for (const Algorithm a : config.algorithms) {
        outcome.per_algorithm.push_back(AlgorithmOutcome{a, {}, {}, {}});
    }

    for (std::size_t k = 0; k < config.seeds; ++k) {
        common::Rng rng(config.base_seed + k);
        const core::Instance instance = factory(rng);

        for (std::size_t ai = 0; ai < config.algorithms.size(); ++ai) {
            const auto scheduler = make_scheduler(config.algorithms[ai], instance);
            const core::ScheduleResult result = core::run_online(instance, *scheduler);
            AlgorithmOutcome& agg = outcome.per_algorithm[ai];
            agg.revenue.add(result.revenue);
            agg.acceptance.add(core::acceptance_ratio(result, instance));
            agg.max_load_factor.add(result.max_load_factor);
        }

        if (config.compute_offline) {
            const core::OfflineResult off =
                core::solve_offline(instance, config.offline_scheme, config.offline);
            if (off.lp_optimal) outcome.offline_bound.add(off.lp_bound);
            if (off.has_ilp) outcome.offline_ilp.add(off.ilp_value);
        }
    }
    return outcome;
}

}  // namespace vnfr::sim
