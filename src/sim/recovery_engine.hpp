// Recovery orchestrator: event-driven fault-tolerance loop over a finished
// schedule.
//
// run_failover_study() replays a frozen schedule under Markov failures and
// merely counts outages — nothing ever repairs a degraded placement, so
// delivered availability silently drifts below the promised R_i. This
// engine closes the loop: a FaultSchedule (recovery_faults.hpp) injects
// cloudlet crashes, instance crashes, transient blips and correlated rack
// failures, and a per-slot recovery pass reacts with a configurable policy:
//
//   kNone           today's behaviour — dead instances stay dead;
//   kLocalRespawn   re-instantiate dead replicas on their own cloudlet,
//                   with bounded retry and exponential backoff;
//   kRemoteMigrate  re-run the off-site selection of Algorithm 2 (with
//                   zero duals: reliability-ordered, capacity-checked) over
//                   surviving cloudlets for the request's remaining slots,
//                   adding sites until the promised R_i is met again;
//   kReadmit        full re-admission through the live scheduler logic
//                   (cheapest of on-site Eq. 3 and off-site Eq. 10 over
//                   surviving cloudlets), make-before-break: the old
//                   placement is only torn down once the new one holds
//                   reservations.
//
// Every recovery placement is routed through an edge::ResourceLedger in
// kEnforce mode, so recovery can never violate capacity. When capacity is
// insufficient, the engine degrades gracefully: it sheds currently active
// lower-payment requests (lowest payment first, and only when the freed
// space actually makes the recovery fit) and records the SLA damage —
// delivered vs promised R_i, time-to-recover, failovers by type, and shed
// revenue. Shedding is dominance-guarded: it only fires to restore a
// request with no serving replica (never to repair redundancy), and only
// when the victims lose strictly fewer slots than the beneficiary stands
// to gain — so every policy delivers at least kNone's availability.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "sim/recovery_faults.hpp"

namespace vnfr::sim {

enum class RecoveryPolicy {
    kNone,
    kLocalRespawn,
    kRemoteMigrate,
    kReadmit,
};

const char* to_string(RecoveryPolicy policy);

struct RecoveryConfig {
    RecoveryPolicy policy{RecoveryPolicy::kNone};
    /// Bounded retry per replica slot (kLocalRespawn) or per request
    /// (kRemoteMigrate / kReadmit); further attempts are abandoned.
    int max_retries{4};
    /// Slots between a successful recovery action and the instance serving
    /// again (boot/state-sync time). 0 means instant recovery.
    TimeSlot respawn_delay_slots{1};
    /// Base backoff after a failed attempt; doubles per consecutive failure
    /// (capped at 64x) so a congested cloudlet is not hammered every slot.
    TimeSlot retry_backoff_slots{1};
    /// Graceful degradation: allow shedding active lower-payment requests
    /// when a recovery reservation does not fit. Shedding only happens when
    /// the freed capacity makes the reservation fit, every victim pays less
    /// than the recovering request, the recovering request is not serving
    /// at all (a dead placement, not degraded redundancy), and the victims'
    /// lost slots stay strictly below the slots the recovery gains.
    bool allow_shedding{true};
};

struct RecoveryReport {
    // Slot accounting over active (request x slot) samples; shed requests
    // keep counting (as disrupted) for the rest of their windows, so
    // shedding can never inflate availability.
    std::size_t request_slots{0};
    std::size_t served_slots{0};
    std::size_t disrupted_slots{0};

    // Faults actually applied (an instance-crash event targeting an
    // already-dead or vanished replica slot is not counted).
    std::size_t cloudlet_crashes{0};
    std::size_t instance_crashes{0};
    std::size_t transient_blips{0};
    std::size_t rack_failures{0};
    std::size_t instances_lost{0};  ///< replicas killed by any fault kind

    // Recovery actions.
    std::size_t local_respawns{0};     ///< replicas re-instantiated in place
    std::size_t remote_migrations{0};  ///< site sets extended to meet R_i again
    std::size_t readmissions{0};       ///< placements rebuilt from scratch
    std::size_t failed_recoveries{0};  ///< attempts beaten by capacity/outages

    // Failovers observed in the serving path (as in FailoverReport).
    std::size_t local_failovers{0};
    std::size_t remote_failovers{0};
    std::size_t outages{0};            ///< served -> disrupted transitions
    std::size_t recovered_outages{0};  ///< disrupted -> served transitions
    std::size_t recovery_slots_total{0};  ///< summed lengths of recovered outages

    // Graceful degradation.
    std::size_t shed_requests{0};
    double shed_revenue{0};

    // SLA accounting over admitted requests whose windows completed.
    std::size_t sla_requests{0};
    std::size_t sla_violations{0};  ///< delivered availability < promised R_i
    double promised_availability_sum{0};
    double delivered_availability_sum{0};

    /// Ledger-audited capacity violations (usage > capacity at any slot);
    /// always 0 by construction — the audit is the proof, not a tolerance.
    std::size_t capacity_violations{0};

    [[nodiscard]] double availability() const {
        return request_slots == 0 ? 0.0
                                  : static_cast<double>(served_slots) /
                                        static_cast<double>(request_slots);
    }
    /// Mean promised R_i over completed requests (0 when none completed).
    [[nodiscard]] double mean_promised() const {
        return sla_requests == 0
                   ? 0.0
                   : promised_availability_sum / static_cast<double>(sla_requests);
    }
    /// Mean delivered per-request availability (0 when none completed).
    [[nodiscard]] double mean_delivered() const {
        return sla_requests == 0
                   ? 0.0
                   : delivered_availability_sum / static_cast<double>(sla_requests);
    }
    /// Mean slots from a served->disrupted transition back to serving,
    /// over outages that recovered within the window (0 when none did).
    [[nodiscard]] double mean_time_to_recover() const {
        return recovered_outages == 0
                   ? 0.0
                   : static_cast<double>(recovery_slots_total) /
                         static_cast<double>(recovered_outages);
    }
};

/// Replays `decisions` under `schedule`'s faults with the configured
/// recovery policy. The initial reservations of every admitted decision are
/// replayed into a fresh kEnforce ledger (throws std::invalid_argument if
/// they do not fit — recovery studies require capacity-respecting
/// schedules, i.e. any scheduler except the pure Algorithm 1 variant).
/// Deterministic: consumes no randomness beyond what `schedule` froze.
RecoveryReport run_recovery_study(const core::Instance& instance,
                                  const std::vector<core::Decision>& decisions,
                                  const FaultSchedule& schedule,
                                  const RecoveryConfig& config = {});

}  // namespace vnfr::sim
