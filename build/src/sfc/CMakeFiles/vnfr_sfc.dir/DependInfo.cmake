
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sfc/chain_reliability.cpp" "src/sfc/CMakeFiles/vnfr_sfc.dir/chain_reliability.cpp.o" "gcc" "src/sfc/CMakeFiles/vnfr_sfc.dir/chain_reliability.cpp.o.d"
  "/root/repo/src/sfc/chain_scheduler.cpp" "src/sfc/CMakeFiles/vnfr_sfc.dir/chain_scheduler.cpp.o" "gcc" "src/sfc/CMakeFiles/vnfr_sfc.dir/chain_scheduler.cpp.o.d"
  "/root/repo/src/sfc/chain_workload.cpp" "src/sfc/CMakeFiles/vnfr_sfc.dir/chain_workload.cpp.o" "gcc" "src/sfc/CMakeFiles/vnfr_sfc.dir/chain_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vnfr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/edge/CMakeFiles/vnfr_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vnfr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vnfr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/vnf/CMakeFiles/vnfr_vnf.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/vnfr_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vnfr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
