// Linear program model shared by the simplex solver and branch-and-bound.
//
// Canonical user-facing form:
//     maximize  c^T x
//     s.t.      a_k^T x  (<= | >= | =)  b_k     for each row k
//               l_j <= x_j <= u_j               (l_j >= 0, u_j may be +inf)
//
// The paper's offline benchmark solves its ILPs with CPLEX; this module is
// that substitute. Variable bounds are first-class (X_i <= 1 everywhere in
// the paper's relaxations, and branch-and-bound fixes binaries by moving
// bounds) — the solver lowers them to rows/shifts internally.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace vnfr::opt {

enum class Relation { kLe, kGe, kEq };

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// One sparse constraint row.
struct Row {
    std::vector<std::pair<std::size_t, double>> terms;  ///< (variable, coefficient)
    Relation relation{Relation::kLe};
    double rhs{0};
};

class LinearProgram {
  public:
    /// Adds a variable with objective coefficient `objective` and bounds
    /// [0, upper]; returns its index. Throws on negative upper bound.
    std::size_t add_variable(double objective, double upper = kInfinity,
                             std::string name = {});

    /// Adds a constraint. Term variable indices must already exist; a
    /// variable may appear at most once per row. Throws otherwise.
    std::size_t add_row(std::vector<std::pair<std::size_t, double>> terms,
                        Relation relation, double rhs);

    [[nodiscard]] std::size_t variable_count() const { return objective_.size(); }
    [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

    [[nodiscard]] double objective_coefficient(std::size_t var) const;
    [[nodiscard]] double lower_bound(std::size_t var) const;
    [[nodiscard]] double upper_bound(std::size_t var) const;
    [[nodiscard]] const std::string& variable_name(std::size_t var) const;
    [[nodiscard]] const Row& row(std::size_t k) const;

    /// Set bounds; requires 0 <= lower <= upper. Branch-and-bound fixes a
    /// binary to v by set_bounds(var, v, v).
    void set_bounds(std::size_t var, double lower, double upper);

    /// Evaluates c^T x.
    [[nodiscard]] double objective_value(const std::vector<double>& x) const;

    /// Max violation of rows and bounds at x (0 when feasible).
    [[nodiscard]] double max_violation(const std::vector<double>& x) const;

  private:
    std::vector<double> objective_;
    std::vector<double> lower_;
    std::vector<double> upper_;
    std::vector<std::string> names_;
    std::vector<Row> rows_;
};

}  // namespace vnfr::opt
