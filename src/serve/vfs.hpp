// Virtual filesystem layer for the serve path's durable state.
//
// Every storage syscall in src/serve/ routes through the Vfs interface
// (tools/vnfr_asa.py's durability-vfs-routing rule enforces this): the
// production PosixVfs forwards to the real syscalls with EINTR retry,
// while the deterministic FaultyVfs simulates a disk plus its page
// cache entirely in memory, driven by a replayable seeded DiskFaultPlan
// — EIO/ENOSPC injection, short writes, read-side bit flips, and
// scripted power cuts that discard every un-fsync'ed byte. That turns
// the durable-first ordering claims of DESIGN.md 6c–6f into properties
// a test can falsify instead of assumptions about the disk.
//
// Error model: every failed operation throws VfsError carrying the
// path, operation, and errno-style code, plus a transient() bit —
// transient errors (EIO, EAGAIN, ...) are worth a bounded retry with
// backoff (with_storage_retries below), non-transient ones (ENOSPC)
// should degrade the caller instead. A scripted power cut throws
// PowerLossInjected, which deliberately is NOT a VfsError so no retry
// loop can swallow the simulated death of the process.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace vnfr::serve {

/// Thrown by Vfs operations on failure. `transient()` distinguishes
/// retry-worthy conditions (spurious EIO, EAGAIN) from persistent ones
/// (ENOSPC): retry loops must give up immediately on the latter.
class VfsError : public std::runtime_error {
  public:
    VfsError(std::string path, std::string op, int code, bool transient)
        : std::runtime_error(path + ": " + op + " failed (errno " +
                             std::to_string(code) +
                             (transient ? ", transient)" : ", persistent)")),
          path_(std::move(path)),
          op_(std::move(op)),
          code_(code),
          transient_(transient) {}

    [[nodiscard]] const std::string& path() const { return path_; }
    [[nodiscard]] const std::string& op() const { return op_; }
    [[nodiscard]] int code() const { return code_; }
    [[nodiscard]] bool transient() const { return transient_; }

  private:
    std::string path_;
    std::string op_;
    int code_;
    bool transient_;
};

/// Thrown by FaultyVfs when a scripted power cut fires: the simulated
/// machine lost power mid-operation and every byte not yet fsync'ed is
/// gone. Deliberately not a VfsError — retry/backoff wrappers catch
/// VfsError only, so a power cut always propagates to the harness the
/// way a real power loss ends the process.
class PowerLossInjected : public std::runtime_error {
  public:
    explicit PowerLossInjected(std::uint64_t op_index)
        : std::runtime_error("power loss injected at storage op " +
                             std::to_string(op_index)),
          op_index_(op_index) {}

    [[nodiscard]] std::uint64_t op_index() const { return op_index_; }

  private:
    std::uint64_t op_index_;
};

/// Bounded exponential backoff for transient storage errors. Attempt n
/// sleeps initial_backoff_micros * multiplier^(n-1), capped; after
/// max_attempts total attempts the error propagates.
struct StorageRetryPolicy {
    int max_attempts{4};
    std::uint64_t initial_backoff_micros{50};
    double multiplier{8.0};
    std::uint64_t max_backoff_micros{5000};
};

/// Abstract storage interface. Paths are plain strings (the serve layer
/// only ever uses flat data directories); fds are opaque ints scoped to
/// the Vfs instance that issued them. All methods throw VfsError on
/// failure unless noted.
class Vfs {
  public:
    virtual ~Vfs() = default;

    /// True when `path` exists (any file type).
    [[nodiscard]] virtual bool file_exists(const std::string& path) = 0;

    /// True when `path` exists and is a directory.
    [[nodiscard]] virtual bool dir_exists(const std::string& path) = 0;

    /// Reads the whole file. A missing file throws VfsError with code
    /// ENOENT (transient() false).
    [[nodiscard]] virtual std::string read_file(const std::string& path) = 0;

    /// Names (not paths) of the entries directly under `dir`, sorted.
    /// Non-throwing: an unreadable or missing directory yields empty.
    [[nodiscard]] virtual std::vector<std::string> list_dir(
        const std::string& dir) = 0;

    /// Opens `path` for writing, creating it or truncating an existing
    /// file to zero length. Returns the fd.
    [[nodiscard]] virtual int create_truncate(const std::string& path) = 0;

    /// Opens an existing `path` in append mode (every write lands at the
    /// current end of file, O_APPEND semantics). Returns the fd.
    [[nodiscard]] virtual int open_append(const std::string& path) = 0;

    /// Writes all of `bytes` to `fd` (looping over partial writes).
    virtual void write_all(int fd, const std::string& path,
                           std::string_view bytes) = 0;

    /// Flushes data and metadata of `fd` to stable storage.
    virtual void fsync(int fd, const std::string& path) = 0;

    /// Flushes the data of `fd` to stable storage.
    virtual void fdatasync(int fd, const std::string& path) = 0;

    /// Truncates (or zero-extends) the file behind `fd` to `size` bytes.
    virtual void ftruncate(int fd, const std::string& path,
                           std::uint64_t size) = 0;

    /// Closes `fd`. Best-effort: never throws, unknown fds are ignored
    /// (after an fsync has confirmed durability, a close error carries
    /// no information the caller can act on).
    virtual void close(int fd) noexcept = 0;

    /// Atomically replaces `to` with `from` (same directory).
    virtual void rename(const std::string& from, const std::string& to) = 0;

    /// Removes `path`. A missing file is not an error (idempotent
    /// cleanup); other failures throw.
    virtual void unlink(const std::string& path) = 0;

    /// Fsyncs the directory containing `path`, making its directory
    /// entries (renames, unlinks, creations) durable.
    virtual void fsync_parent_dir(const std::string& path) = 0;

    /// Backoff sleep hook. PosixVfs really sleeps; FaultyVfs only counts
    /// the call, keeping fault-injection runs fast and deterministic.
    virtual void sleep_for_micros(std::uint64_t micros) = 0;
};

/// The shared process-wide PosixVfs (stateless, thread-safe).
[[nodiscard]] Vfs& posix_vfs();

/// RAII fd ownership over a Vfs fd: closes on destruction unless
/// release()d. The serve layer's answer to descriptor leaks on throw
/// paths.
class VfsFdGuard {
  public:
    VfsFdGuard(Vfs& vfs, int fd) : vfs_(&vfs), fd_(fd) {}
    ~VfsFdGuard() { close(); }

    VfsFdGuard(const VfsFdGuard&) = delete;
    VfsFdGuard& operator=(const VfsFdGuard&) = delete;

    [[nodiscard]] int get() const { return fd_; }

    /// Hands ownership to the caller; the guard will no longer close.
    [[nodiscard]] int release() {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }

    /// Closes now (idempotent; the destructor becomes a no-op).
    void close() noexcept {
        if (fd_ >= 0) {
            vfs_->close(fd_);
            fd_ = -1;
        }
    }

  private:
    Vfs* vfs_;
    int fd_;
};

/// Runs `fn`, retrying transient VfsErrors per `policy` with exponential
/// backoff. Non-transient errors, exhausted attempts, and every
/// non-VfsError exception (PowerLossInjected in particular) propagate
/// unchanged. `retries`, when given, is incremented once per retry.
template <typename Fn>
auto with_storage_retries(Vfs& vfs, const StorageRetryPolicy& policy, Fn&& fn,
                          std::uint64_t* retries = nullptr) -> decltype(fn()) {
    std::uint64_t backoff = policy.initial_backoff_micros;
    for (int attempt = 1;; ++attempt) {
        try {
            return fn();
        } catch (const VfsError& err) {
            if (!err.transient() || attempt >= policy.max_attempts) throw;
            if (retries != nullptr) ++*retries;
            vfs.sleep_for_micros(backoff);
            const double next = static_cast<double>(backoff) * policy.multiplier;
            backoff = next > static_cast<double>(policy.max_backoff_micros)
                          ? policy.max_backoff_micros
                          : static_cast<std::uint64_t>(next);
        }
    }
}

/// Operation categories of FaultyVfs, for scripted faults.
enum class VfsOp : std::uint8_t {
    kCreate,    ///< create_truncate
    kOpen,      ///< open_append
    kRead,      ///< read_file
    kWrite,     ///< write_all
    kSync,      ///< fsync / fdatasync
    kTruncate,  ///< ftruncate
    kRename,    ///< rename
    kUnlink,    ///< unlink
    kDirSync,   ///< fsync_parent_dir
};

/// Replayable random fault mix for FaultyVfs. Every probability draw
/// comes from a counter-based stream of `seed` (common::stream_rng), so
/// a plan replays bit-identically regardless of call interleaving
/// differences elsewhere — the same contract as recovery_faults.
struct DiskFaultPlan {
    std::uint64_t seed{0};
    /// Per-write probability of a transient EIO (nothing written).
    double write_error_rate{0.0};
    /// Per-sync probability of a transient EIO (data stays volatile).
    double sync_error_rate{0.0};
    /// Per-write probability of a short write: a random strict prefix of
    /// the buffer lands in the cache, then transient EIO.
    double short_write_rate{0.0};
    /// Consecutive failures per fired write/sync fault (a burst length):
    /// 1 = single spurious error, larger values make retries work for it.
    int transient_failures{1};
    /// Per-read probability of one flipped bit in the *returned copy*
    /// (latent media corruption surfacing on read; the stored bytes are
    /// unchanged).
    double read_flip_rate{0.0};
    /// 1-based index of the mutating operation (write/sync/truncate/
    /// create/rename/unlink/dirsync) at which power is cut: the op does
    /// not happen, every un-fsync'ed byte is dropped, and
    /// PowerLossInjected is thrown. 0 = never. One-shot.
    std::uint64_t power_cut_at_op{0};
    /// When true, a file whose durable bytes are a prefix of its cached
    /// bytes keeps a random prefix of the un-synced suffix through the
    /// cut — the torn-tail shape an interrupted append leaves on a real
    /// disk. When false the cut is clean (durable bytes only).
    bool power_cut_keeps_prefix{true};
};

/// Observable counters of a FaultyVfs (for gates and assertions).
struct FaultyVfsStats {
    std::uint64_t creates{0};
    std::uint64_t opens{0};
    std::uint64_t reads{0};
    std::uint64_t writes{0};
    std::uint64_t syncs{0};
    std::uint64_t truncates{0};
    std::uint64_t renames{0};
    std::uint64_t unlinks{0};
    std::uint64_t dirsyncs{0};
    std::uint64_t injected_errors{0};
    std::uint64_t short_writes{0};
    std::uint64_t bit_flips{0};
    std::uint64_t power_cuts{0};
    std::uint64_t sleeps{0};
};

/// Deterministic in-memory filesystem with an explicit page-cache model:
/// each inode holds cached bytes (`data`) and durable bytes
/// (`durable_data`, advanced only by fsync/fdatasync), and the namespace
/// itself has a cached and a durable view (renames/creates/unlinks
/// become durable only via fsync_parent_dir). A power cut resets both to
/// their durable views, so exactly the crash states the real protocol
/// can produce — and no friendlier ones — are reachable.
///
/// Faults come from the DiskFaultPlan (seeded random mix) and from
/// script_fault() (precise, counted injections for targeted tests).
/// Thread-safe; vfs_mu_ is a leaf lock in tools/lock_hierarchy.txt.
class FaultyVfs : public Vfs {
  public:
    explicit FaultyVfs(DiskFaultPlan plan = {});

    [[nodiscard]] bool file_exists(const std::string& path) override;
    [[nodiscard]] bool dir_exists(const std::string& path) override;
    [[nodiscard]] std::string read_file(const std::string& path) override;
    [[nodiscard]] std::vector<std::string> list_dir(const std::string& dir) override;
    [[nodiscard]] int create_truncate(const std::string& path) override;
    [[nodiscard]] int open_append(const std::string& path) override;
    void write_all(int fd, const std::string& path, std::string_view bytes) override;
    void fsync(int fd, const std::string& path) override;
    void fdatasync(int fd, const std::string& path) override;
    void ftruncate(int fd, const std::string& path, std::uint64_t size) override;
    void close(int fd) noexcept override;
    void rename(const std::string& from, const std::string& to) override;
    void unlink(const std::string& path) override;
    void fsync_parent_dir(const std::string& path) override;
    void sleep_for_micros(std::uint64_t micros) override;

    /// Replaces the fault plan (counters keep running; the power-cut
    /// index of the new plan is compared against the ongoing op count).
    void set_plan(const DiskFaultPlan& plan);

    /// Scripts a precise fault: after `skip` further operations of
    /// category `op`, the next `count` of them (count < 0 = all of them,
    /// forever) fail with `error_code`/`transient`. Scripted faults are
    /// checked before the plan's random draws, in the order added.
    void script_fault(VfsOp op, std::uint64_t skip, std::int64_t count,
                      int error_code, bool transient);

    /// Drops every scripted fault (plan faults keep applying).
    void clear_scripted_faults();

    /// Cuts power now (between operations): both cache layers collapse
    /// to their durable views and all open fds go stale — a later write
    /// through one fails with a persistent error, close is tolerated.
    /// Unlike a plan-scripted cut, nothing is thrown; the caller is the
    /// harness, not the victim.
    void power_cut();

    /// XORs `mask` into byte `byte_index` of the stored file (both the
    /// cached and durable images): simulated latent media corruption for
    /// scrubber tests. Throws std::invalid_argument when out of range.
    void corrupt_durable_byte(const std::string& path, std::uint64_t byte_index,
                              std::uint8_t mask);

    /// Mutating operations performed so far (the power_cut_at_op scale).
    [[nodiscard]] std::uint64_t op_count() const;

    [[nodiscard]] FaultyVfsStats stats() const;

  private:
    struct Inode {
        std::string data;          ///< cached bytes (the page cache view)
        std::string durable_data;  ///< bytes guaranteed to survive a cut
    };
    struct OpenFile {
        std::string path;
        std::shared_ptr<Inode> inode;
        bool stale{false};  ///< fd belonged to a process that lost power
    };
    struct ScriptedFault {
        VfsOp op;
        std::uint64_t skip;
        std::int64_t count;
        int error_code;
        bool transient;
    };

    /// Counts a mutating op, firing the plan's power cut when its index
    /// comes up (the op itself then never happens).
    void count_mutating_op_locked() VNFR_REQUIRES(vfs_mu_);
    /// Applies scripted faults, then the plan's random draws, for one
    /// operation of category `op`. Throws VfsError when one fires.
    void maybe_fail_locked(VfsOp op, const std::string& path,
                           const char* op_name) VNFR_REQUIRES(vfs_mu_);
    [[nodiscard]] bool draw_locked(std::uint64_t category, double rate)
        VNFR_REQUIRES(vfs_mu_);
    void apply_power_cut_locked() VNFR_REQUIRES(vfs_mu_);
    [[nodiscard]] std::shared_ptr<Inode> require_inode_locked(
        const std::string& path, const char* op_name) VNFR_REQUIRES(vfs_mu_);
    [[nodiscard]] OpenFile& require_live_fd_locked(int fd, const std::string& path,
                                                   const char* op_name)
        VNFR_REQUIRES(vfs_mu_);

    mutable common::Mutex vfs_mu_;
    DiskFaultPlan plan_ VNFR_GUARDED_BY(vfs_mu_);
    std::map<std::string, std::shared_ptr<Inode>> namespace_ VNFR_GUARDED_BY(vfs_mu_);
    std::map<std::string, std::shared_ptr<Inode>> durable_namespace_
        VNFR_GUARDED_BY(vfs_mu_);
    std::map<int, OpenFile> fds_ VNFR_GUARDED_BY(vfs_mu_);
    int next_fd_ VNFR_GUARDED_BY(vfs_mu_){3};
    std::vector<ScriptedFault> scripted_ VNFR_GUARDED_BY(vfs_mu_);
    std::uint64_t op_count_ VNFR_GUARDED_BY(vfs_mu_){0};
    /// Draw counters per plan category (write error, sync error, short
    /// write, read flip) — counter-based streams, not a shared RNG.
    std::uint64_t draw_counts_[4] VNFR_GUARDED_BY(vfs_mu_){0, 0, 0, 0};
    /// Remaining consecutive failures per category (plan burst model).
    int burst_left_[4] VNFR_GUARDED_BY(vfs_mu_){0, 0, 0, 0};
    FaultyVfsStats stats_ VNFR_GUARDED_BY(vfs_mu_);
};

}  // namespace vnfr::serve
