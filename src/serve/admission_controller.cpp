#include "serve/admission_controller.hpp"

#include <algorithm>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "common/contracts.hpp"
#include "common/digest.hpp"
#include "core/offsite_primal_dual.hpp"
#include "core/onsite_primal_dual.hpp"

namespace vnfr::serve {

namespace {

std::unique_ptr<core::OnlineScheduler> make_scheduler(const core::Instance& instance,
                                                      core::Scheme scheme) {
    if (scheme == core::Scheme::kOnsite) {
        // Per-request delta tracking grows without bound over a server's
        // lifetime, is never read by the serve layer, and is the one piece
        // of decide() state shared across window-disjoint requests (it
        // would race under the wave executor).
        core::OnsitePrimalDualConfig scheduler_config;
        scheduler_config.track_deltas = false;
        return std::make_unique<core::OnsitePrimalDual>(instance, scheduler_config);
    }
    return std::make_unique<core::OffsitePrimalDual>(instance);
}

}  // namespace

std::uint64_t instance_config_digest(const core::Instance& instance,
                                     core::Scheme scheme) {
    common::Fnv1a digest;
    digest.mix(static_cast<std::uint64_t>(scheme));
    digest.mix(static_cast<std::uint64_t>(instance.network.cloudlet_count()));
    digest.mix(static_cast<std::uint64_t>(instance.horizon));
    for (const edge::Cloudlet& c : instance.network.cloudlets()) {
        digest.mix(c.capacity);
        digest.mix(c.reliability);
    }
    digest.mix(static_cast<std::uint64_t>(instance.catalog.size()));
    for (const vnf::VnfType& type : instance.catalog.types()) {
        digest.mix(type.compute_units);
        digest.mix(type.reliability);
    }
    return digest.value();
}

AdmissionController::AdmissionController(const core::Instance& instance,
                                         core::Scheme scheme, ServeConfig config)
    : instance_(instance), scheme_(scheme), config_(std::move(config)) {
    vfs_ = config_.vfs != nullptr ? config_.vfs : &posix_vfs();
    if (config_.data_dir.empty() || !vfs_->dir_exists(config_.data_dir)) {
        throw std::invalid_argument("AdmissionController: data_dir '" +
                                    config_.data_dir + "' is not a directory");
    }
    if (config_.checkpoint_every == 0) {
        throw std::invalid_argument("AdmissionController: checkpoint_every must be >= 1");
    }
    if (config_.queue_capacity == 0) {
        throw std::invalid_argument("AdmissionController: queue_capacity must be >= 1");
    }
    if (config_.group_commit == 0) {
        throw std::invalid_argument("AdmissionController: group_commit must be >= 1");
    }
    if (config_.decide_shards == 0) {
        throw std::invalid_argument("AdmissionController: decide_shards must be >= 1");
    }
    if (config_.decide_threads == 0) {
        throw std::invalid_argument("AdmissionController: decide_threads must be >= 1");
    }
    config_digest_ = instance_config_digest(instance_, scheme_);
    plan_.emplace(config_.decide_shards, instance_.horizon);
    shards_ = std::make_unique<Shard[]>(plan_->shard_count());
    if (plan_->shard_count() > 1 && config_.decide_threads > 1) {
        pool_ = std::make_unique<common::ThreadPool>(config_.decide_threads);
    }
    // No other thread can see a partially-constructed controller, but the
    // recovery helpers require mu_, so hold it for the uncontended setup.
    const common::MutexLock lock(&mu_);
    role_ = config_.standby ? ControllerRole::kStandby : ControllerRole::kPrimary;
    scheduler_ = make_scheduler(instance_, scheme_);
    VNFR_CHECK(scheduler_->supports_state_io(),
               "serve layer requires a scheduler with state export/import");
    recover();
}

std::string AdmissionController::snapshot_path() const {
    return config_.data_dir + "/snapshot.bin";
}

std::string AdmissionController::wal_path(std::uint64_t generation) const {
    return config_.data_dir + "/wal-" + std::to_string(generation) + ".log";
}

void AdmissionController::recover() {
    const std::string snap_path = snapshot_path();
    if (file_exists(*vfs_, snap_path)) {
        recovery_stats_.recovered_snapshot = true;
        ControllerSnapshot snap = load_snapshot(*vfs_, snap_path);
        if (snap.config_digest != config_digest_) {
            throw CorruptStateError(snap_path, 0,
                                    "snapshot was saved for a different instance/scheme "
                                    "(config digest mismatch)");
        }
        if (snap.scheme != static_cast<std::uint8_t>(scheme_) ||
            snap.cloudlets != instance_.network.cloudlet_count() ||
            snap.horizon != static_cast<std::uint64_t>(instance_.horizon)) {
            throw CorruptStateError(snap_path, 0,
                                    "snapshot shape disagrees with the bound instance");
        }
        scheduler_->import_state(
            core::SchedulerState{std::move(snap.lambda), std::move(snap.usage)});
        metrics_ = snap.metrics;
        admitted_ = std::move(snap.admitted);
        covered_watermark_ = snap.covered_watermark;
        covered_sparse_.clear();
        covered_sparse_.insert(snap.covered_sparse.begin(), snap.covered_sparse.end());
        wal_seq_ = snap.wal_seq;
    }
    // Without a snapshot the controller starts from generation 0 with
    // default state; a crash before the first checkpoint leaves exactly
    // wal-0.log to replay.
    const std::string path = wal_path(wal_seq_);
    if (file_exists(*vfs_, path)) {
        WalContents contents = read_wal(*vfs_, path, WalReadMode::kRecover);
        if (contents.wal_seq != wal_seq_) {
            throw CorruptStateError(path, 0,
                                    "WAL generation " + std::to_string(contents.wal_seq) +
                                        " does not match the snapshot's " +
                                        std::to_string(wal_seq_));
        }
        if (contents.config_digest != config_digest_) {
            throw CorruptStateError(path, 0,
                                    "WAL was written for a different instance/scheme "
                                    "(config digest mismatch)");
        }
        for (const WalRecord& rec : contents.records) replay_record(rec, path);
        wal_records_ = contents.records.size();
        recovery_stats_.recovered_wal = true;
        recovery_stats_.wal_records_replayed = contents.records.size();
        recovery_stats_.torn_tail_bytes = contents.bytes_discarded;
        recovery_stats_.torn_tail_records = contents.records_discarded;
        wal_.emplace(WalWriter::append_to(*vfs_, path, contents.valid_size,
                                          config_.storage_retry));
    } else {
        // Legal crash window: the snapshot was renamed in but the next
        // WAL generation was never created — the snapshot alone is the
        // complete durable state.
        wal_.emplace(WalWriter::create(*vfs_, path, wal_seq_, config_digest_,
                                       config_.storage_retry));
        wal_records_ = 0;
    }
    remove_stale_wals();
}

void AdmissionController::remove_stale_wals() const {
    std::vector<std::string> stale;
    for (const std::string& name : vfs_->list_dir(config_.data_dir)) {
        if (!name.starts_with("wal-") || !name.ends_with(".log")) continue;
        const std::string digits = name.substr(4, name.size() - 4 - 4);
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") != std::string::npos) {
            continue;  // not one of ours; leave it alone
        }
        const std::uint64_t generation = std::stoull(digits);
        if (generation == wal_seq_) continue;
        // A generation above the current one is a half-finished rotation
        // (created before the crash, never referenced by a snapshot) and
        // must go in every mode — recovery would otherwise mistake it for
        // live state on the next rotation. Older generations are history:
        // stale without replication, retained ship-source with it.
        if (generation < wal_seq_ && config_.retain_wals) continue;
        stale.push_back(config_.data_dir + "/" + name);
    }
    for (const std::string& path : stale) {
        try {
            vfs_->unlink(path);
        } catch (const VfsError&) {
            // Stale-file cleanup is advisory; the next recovery retries.
        }
    }
}

void AdmissionController::release_wals_below(std::uint64_t generation) {
    const common::MutexLock lock(&mu_);
    const std::uint64_t ceiling = std::min(generation, wal_seq_);
    for (std::uint64_t g = release_floor_; g < ceiling; ++g) {
        try {
            vfs_->unlink(wal_path(g));
        } catch (const VfsError&) {
            // An un-releasable acked generation is waste, not danger; the
            // next recovery's stale-WAL sweep retries.
        }
    }
    release_floor_ = std::max(release_floor_, ceiling);
}

void AdmissionController::replay_record(const WalRecord& rec, const std::string& path) {
    if (rec.kind == WalRecordKind::kShed) {
        metrics_.shed += 1;
        metrics_.shed_revenue += rec.request.payment;
        mark_covered(rec.seq);
        return;
    }
    // Re-execute the logged decision and cross-check: decide() is
    // deterministic given the restored state, so any divergence means the
    // snapshot and WAL are mutually inconsistent.
    const core::Decision decision = scheduler_->decide(rec.request);
    bool matches = decision.admitted == rec.admitted;
    if (matches && decision.admitted) {
        matches = decision.placement.sites.size() == rec.sites.size();
        for (std::size_t i = 0; matches && i < rec.sites.size(); ++i) {
            matches = decision.placement.sites[i].cloudlet == rec.sites[i].cloudlet &&
                      decision.placement.sites[i].replicas == rec.sites[i].replicas;
        }
    }
    if (matches && !decision.admitted) {
        matches = decision.reject_reason == rec.reject_reason;
    }
    if (!matches) {
        throw CorruptStateError(path, rec.file_offset,
                                "logged decision for seq " + std::to_string(rec.seq) +
                                    " diverges from re-execution — snapshot and WAL "
                                    "are mutually inconsistent");
    }
    apply_decision(rec.seq, rec.request, decision);
}

void AdmissionController::mark_covered(std::uint64_t seq) {
    if (is_covered_locked(seq)) return;
    covered_sparse_.insert(seq);
    while (!covered_sparse_.empty() && covered_sparse_.count(covered_watermark_) != 0) {
        covered_sparse_.erase(covered_watermark_);
        ++covered_watermark_;
    }
}

bool AdmissionController::is_covered_locked(std::uint64_t seq) const {
    return seq < covered_watermark_ || covered_sparse_.count(seq) != 0;
}

bool AdmissionController::is_covered(std::uint64_t seq) const {
    const common::MutexLock lock(&mu_);
    return is_covered_locked(seq);
}

void AdmissionController::append_wal(const WalRecord& rec) {
    wal_->append(rec);
    ++wal_records_;
    ++appends_this_run_;
    if (crash_countdown_ > 0 && --crash_countdown_ == 0) {
        throw CrashInjected(appends_this_run_);
    }
}

void AdmissionController::stage_wal(const WalRecord& rec) {
    wal_->stage(rec);
    ++wal_records_;
    ++appends_this_run_;
    // Commit exactly at group boundaries, *before* the crash hook fires,
    // so an injected crash sees the durability a real one would: a
    // countdown landing on a boundary dies with the whole group on disk;
    // anywhere else it dies with the staged suffix never externalized.
    if (wal_->staged_records() >= config_.group_commit) {
        wal_->commit();
    }
    if (crash_countdown_ > 0 && --crash_countdown_ == 0) {
        throw CrashInjected(appends_this_run_);
    }
}

void AdmissionController::commit_wal() { wal_->commit(); }

void AdmissionController::apply_decision(std::uint64_t seq,
                                         const workload::Request& request,
                                         const core::Decision& decision) {
    metrics_.processed += 1;
    if (decision.admitted) {
        metrics_.admitted += 1;
        metrics_.revenue += request.payment;
        AdmittedRecord rec;
        rec.seq = seq;
        rec.request_id = request.id.value;
        rec.payment = request.payment;
        rec.sites.reserve(decision.placement.sites.size());
        for (const core::Site& site : decision.placement.sites) {
            rec.sites.emplace_back(site.cloudlet.value,
                                   static_cast<std::int64_t>(site.replicas));
        }
        admitted_.push_back(std::move(rec));
    } else {
        metrics_.rejected += 1;
    }
    mark_covered(seq);
}

void AdmissionController::shed(const QueueItem& victim) {
    WalRecord rec;
    rec.kind = WalRecordKind::kShed;
    rec.seq = victim.seq;
    rec.request = victim.request;
    try {
        append_wal(rec);
    } catch (const VfsError& err) {
        // The shed record never became durable, so nothing becomes
        // observable either: the queue is untouched and the caller's
        // submit reports degradation instead of an outcome.
        enter_degraded_locked("shed WAL append", err);
    }
    metrics_.shed += 1;
    metrics_.shed_revenue += victim.request.payment;
    mark_covered(victim.seq);
}

void AdmissionController::require_primary(const char* op) const {
    if (role_ != ControllerRole::kPrimary) {
        throw std::logic_error(std::string("AdmissionController::") + op +
                               " on a standby controller — replicate via "
                               "apply_replicated() or mark_promoted() first");
    }
}

bool AdmissionController::apply_replicated(const WalRecord& rec) {
    const common::MutexLock lock(&mu_);
    if (role_ != ControllerRole::kStandby) {
        throw std::logic_error(
            "AdmissionController::apply_replicated on a primary controller — "
            "primaries decide for themselves");
    }
    if (is_covered_locked(rec.seq)) return false;
    require_storage_healthy_locked("apply_replicated");
    // Durable first, exactly like the primary: the record reaches this
    // standby's own WAL (and its fdatasync returns) before any state
    // change becomes observable. replay_record then re-executes and
    // cross-checks, so a diverged standby dies loudly here.
    try {
        append_wal(rec);
    } catch (const VfsError& err) {
        // Nothing was applied: the record is simply not acked, and the
        // shipper's go-back-N resync re-delivers it after recovery.
        enter_degraded_locked("replicated WAL append", err);
    }
    replay_record(rec, wal_->path());
    if (wal_records_ >= config_.checkpoint_every) checkpoint_locked();
    return true;
}

void AdmissionController::mark_promoted() {
    const common::MutexLock lock(&mu_);
    role_ = ControllerRole::kPrimary;
}

WalPosition AdmissionController::wal_position() const {
    const common::MutexLock lock(&mu_);
    WalPosition pos;
    pos.generation = wal_seq_;
    pos.records = wal_records_;
    pos.durable_bytes = wal_->durable_size();
    return pos;
}

SubmitResult AdmissionController::submit(std::uint64_t seq,
                                         const workload::Request& request) {
    const common::MutexLock lock(&mu_);
    require_primary("submit");
    if (is_covered_locked(seq)) return SubmitResult::kAlreadyCovered;
    require_storage_healthy_locked("submit");
    // Uncovered submissions must arrive in stream order — FIFO processing
    // equals seq order, which the recovery protocol relies on.
    VNFR_CHECK(queue_.empty() || seq > queue_.rbegin()->first,
               "submit seq ", seq, " out of stream order (queue tail is ",
               queue_.empty() ? 0 : queue_.rbegin()->first, ")");
    if (queue_.size() < config_.queue_capacity) {
        queue_.emplace(seq, request);
        shed_heap_.push(ShedCandidate{request.payment, seq});
        return SubmitResult::kQueued;
    }
    // Overload: shed the lowest payment among queued + incoming; on a
    // payment tie the younger request (higher seq) loses. After skipping
    // stale entries the heap top is exactly the queued side of that
    // arg-min, making the victim choice O(log n) instead of a scan.
    while (!shed_heap_.empty() && queue_.find(shed_heap_.top().seq) == queue_.end()) {
        shed_heap_.pop();
    }
    VNFR_CHECK(!shed_heap_.empty(), "shed heap lost track of the live queue");
    const ShedCandidate top = shed_heap_.top();
    // The incoming request carries the highest seq, so on a payment tie
    // it is the one shed; a queued victim needs strictly lower payment.
    if (!(top.payment < request.payment)) {
        shed(QueueItem{seq, request});
        return SubmitResult::kShedIncoming;
    }
    const auto victim_it = queue_.find(top.seq);
    VNFR_CHECK(victim_it != queue_.end(), "shed heap points at a dequeued seq");
    shed(QueueItem{victim_it->first, victim_it->second});  // durable first
    shed_heap_.pop();
    queue_.erase(victim_it);
    queue_.emplace(seq, request);
    shed_heap_.push(ShedCandidate{request.payment, seq});
    return SubmitResult::kShedQueued;
}

std::vector<ProcessedOutcome> AdmissionController::pump(std::size_t max_requests) {
    const common::MutexLock lock(&mu_);
    require_primary("pump");
    require_storage_healthy_locked("pump");
    return pump_locked(max_requests);
}

std::vector<core::Decision> AdmissionController::decide_batch(
    const std::vector<workload::Request>& batch) {
    std::vector<core::Decision> decisions(batch.size());
    const bool parallel =
        pool_ != nullptr && plan_->shard_count() > 1 && batch.size() > 1;
    if (!parallel) {
        for (std::size_t i = 0; i < batch.size(); ++i) {
            decisions[i] = scheduler_->decide(batch[i]);
        }
        return decisions;
    }
    // Locals for the worker lambda: the workers run while this thread
    // holds mu_, so the guarded state cannot move under them, but the
    // static analysis cannot see that ownership transfer — the lambda must
    // not name guarded members directly.
    core::OnlineScheduler* const sched = scheduler_.get();
    Shard* const shards = shards_.get();
    const ShardPlan& plan = *plan_;
    const std::vector<std::vector<std::size_t>> waves = build_waves(plan, batch);
    for (const std::vector<std::size_t>& wave : waves) {
        if (wave.size() == 1) {
            const std::size_t i = wave.front();
            decisions[i] = sched->decide(batch[i]);
            continue;
        }
        pool_->parallel_for(0, wave.size(), [&](std::size_t k) {
            const std::size_t i = wave[k];
            // Band disjointness within the wave is what really guarantees
            // exclusion; locking the request's first band turns that
            // argument into a runtime-checked, TSan-visible fact.
            const common::MutexLock shard_lock(
                &shards[plan.bands(batch[i]).first].shard_mu);
            decisions[i] = sched->decide(batch[i]);
        });
    }
    return decisions;
}

std::vector<ProcessedOutcome> AdmissionController::pump_locked(
    std::size_t max_requests) {
    std::vector<ProcessedOutcome> outcomes;
    while (max_requests > 0 && !queue_.empty()) {
        const std::size_t take =
            std::min({max_requests, queue_.size(), config_.group_commit});
        std::vector<std::uint64_t> seqs;
        std::vector<workload::Request> batch;
        seqs.reserve(take);
        batch.reserve(take);
        {
            auto it = queue_.begin();
            for (std::size_t i = 0; i < take; ++i, ++it) {
                seqs.push_back(it->first);
                batch.push_back(it->second);
            }
        }
        // The scheduler mutates inside decide; checkpoint its state first
        // so a storage failure below can roll the whole chunk back as if
        // it was never decided.
        const core::SchedulerState pre_state = scheduler_->export_state();
        const std::uint64_t pre_wal_records = wal_records_;
        const std::uint64_t pre_appends = appends_this_run_;
        const std::vector<core::Decision> decisions = decide_batch(batch);
        try {
            // Durable first: stage the whole group, fdatasync once.
            for (std::size_t i = 0; i < take; ++i) {
                WalRecord rec;
                rec.kind = WalRecordKind::kDecision;
                rec.seq = seqs[i];
                rec.request = batch[i];
                rec.admitted = decisions[i].admitted;
                rec.reject_reason = decisions[i].reject_reason;
                if (decisions[i].admitted) rec.sites = decisions[i].placement.sites;
                stage_wal(rec);
            }
            commit_wal();
        } catch (const VfsError& err) {
            // The group's fdatasync never returned, so none of its
            // outcomes may become observable. Un-decide the chunk
            // (requests stay queued for after recovery), drop the staged
            // bytes, and degrade: partial un-synced writes past the
            // durable prefix are rewound before the next commit — and if
            // they survive a crash instead, recovery replays them as
            // durable-but-unacked outcomes, which resubmission skips.
            scheduler_->import_state(pre_state);
            wal_->abandon_staged();
            wal_records_ = pre_wal_records;
            appends_this_run_ = pre_appends;
            enter_degraded_locked("WAL group commit", err);
        }
        // Only now — with the group durable — do the outcomes become
        // observable, in stream order.
        queue_.erase(queue_.begin(), std::next(queue_.begin(),
                                               static_cast<std::ptrdiff_t>(take)));
        for (std::size_t i = 0; i < take; ++i) {
            apply_decision(seqs[i], batch[i], decisions[i]);
            outcomes.push_back(ProcessedOutcome{seqs[i], batch[i], decisions[i]});
        }
        prune_shed_heap();
        max_requests -= take;
        if (wal_records_ >= config_.checkpoint_every) checkpoint_locked();
    }
    return outcomes;
}

void AdmissionController::prune_shed_heap() {
    // Stale entries (pumped or evicted seqs) are skipped lazily at shed
    // time; rebuild once they dominate so heap memory stays O(queue).
    if (shed_heap_.size() <= 2 * queue_.size() + 64) return;
    std::vector<ShedCandidate> live;
    live.reserve(queue_.size());
    for (const auto& [seq, request] : queue_) {
        live.push_back(ShedCandidate{request.payment, seq});
    }
    shed_heap_ = std::priority_queue<ShedCandidate, std::vector<ShedCandidate>,
                                     ShedVictimOrder>(ShedVictimOrder{},
                                                      std::move(live));
}

std::vector<ProcessedOutcome> AdmissionController::drain() {
    const common::MutexLock lock(&mu_);
    require_primary("drain");
    std::vector<ProcessedOutcome> outcomes;
    while (!queue_.empty()) {
        std::vector<ProcessedOutcome> batch = pump_locked(queue_.size());
        outcomes.insert(outcomes.end(), batch.begin(), batch.end());
    }
    return outcomes;
}

void AdmissionController::checkpoint() {
    const common::MutexLock lock(&mu_);
    checkpoint_locked();
}

void AdmissionController::checkpoint_locked() {
    try {
        rotate_checkpoint_locked(build_snapshot_locked());
    } catch (const VfsError& err) {
        // Whatever the rotation half-did (a next-generation file, an
        // unreplaced snapshot) is exactly a legal crash window: recovery's
        // stale-WAL sweep absorbs it. The live controller, though, can no
        // longer prove durability — degrade until a rotation succeeds.
        enter_degraded_locked("checkpoint rotation", err);
    }
}

ControllerSnapshot AdmissionController::build_snapshot_locked() const {
    ControllerSnapshot snap;
    snap.scheme = static_cast<std::uint8_t>(scheme_);
    snap.config_digest = config_digest_;
    snap.cloudlets = instance_.network.cloudlet_count();
    snap.horizon = static_cast<std::uint64_t>(instance_.horizon);
    snap.wal_seq = wal_seq_ + 1;
    snap.metrics = metrics_;
    core::SchedulerState state = scheduler_->export_state();
    snap.lambda = std::move(state.lambda);
    snap.usage = std::move(state.usage);
    snap.covered_watermark = covered_watermark_;
    snap.covered_sparse.assign(covered_sparse_.begin(), covered_sparse_.end());
    snap.admitted = admitted_;
    return snap;
}

void AdmissionController::rotate_checkpoint_locked(const ControllerSnapshot& snap) {
    VNFR_CHECK(wal_->staged_records() == 0,
               "checkpoint with uncommitted staged WAL records");
    // Rotation order keeps every crash window recoverable: (1) create the
    // next WAL generation; (2) atomically replace the snapshot, which now
    // references it; (3) drop the old generation. A crash between (1) and
    // (2) recovers from the old snapshot + old WAL (the new file is
    // stale and removed on restart); between (2) and (3) the old WAL is
    // the stale one.
    WalWriter next = WalWriter::create(*vfs_, wal_path(wal_seq_ + 1),
                                       wal_seq_ + 1, config_digest_,
                                       config_.storage_retry);
    if (checkpoint_crash_stage_ == 1) {
        checkpoint_crash_stage_ = 0;
        throw CrashInjected(appends_this_run_);
    }
    save_snapshot(*vfs_, snapshot_path(), snap, config_.storage_retry,
                  &storage_stats_.transient_retries);
    if (checkpoint_crash_stage_ == 2) {
        checkpoint_crash_stage_ = 0;
        throw CrashInjected(appends_this_run_);
    }
    storage_stats_.transient_retries += wal_->transient_retries();
    wal_->close();
    // With retention the rotated-out generation stays on disk for the
    // replication shipper; release_wals_below() retires it once acked.
    if (!config_.retain_wals) {
        try {
            vfs_->unlink(wal_path(wal_seq_));
        } catch (const VfsError&) {
            // The snapshot already supersedes the old generation; the
            // next recovery's stale-WAL sweep retries the unlink.
        }
    }
    wal_.emplace(std::move(next));
    ++wal_seq_;
    wal_records_ = 0;
}

void AdmissionController::enter_degraded_locked(const char* what,
                                                const VfsError& err) {
    health_ = StorageHealth::kDegraded;
    degraded_reason_ = std::string(what) + ": " + err.what();
    ++storage_stats_.degraded_entries;
    throw StorageDegradedError("storage degraded — " + degraded_reason_);
}

void AdmissionController::require_storage_healthy_locked(const char* op) {
    if (health_ == StorageHealth::kHealthy) return;
    ++storage_stats_.degraded_refusals;
    if (config_.degraded_probe_every > 0 &&
        storage_stats_.degraded_refusals % config_.degraded_probe_every == 0 &&
        try_recover_locked()) {
        return;
    }
    throw StorageDegradedError(std::string("AdmissionController::") + op +
                               " refused, storage degraded — " +
                               degraded_reason_);
}

bool AdmissionController::try_recover_locked() {
    if (health_ == StorageHealth::kHealthy) return true;
    try {
        // A failed commit may have left un-synced garbage past the
        // durable WAL prefix; truncate it away so retained generations
        // end on a clean record boundary for tailers and recovery alike.
        wal_->repair();
        // A full rotation is the writability proof: it exercises create,
        // write, fsync, rename, and directory sync — and leaves the
        // freshly-checkpointed state as the durable baseline.
        rotate_checkpoint_locked(build_snapshot_locked());
    } catch (const VfsError&) {
        return false;  // still broken; stay degraded
    }
    health_ = StorageHealth::kHealthy;
    degraded_reason_.clear();
    ++storage_stats_.recoveries;
    return true;
}

bool AdmissionController::try_recover_storage() {
    const common::MutexLock lock(&mu_);
    return try_recover_locked();
}

StorageStats AdmissionController::storage_stats() const {
    const common::MutexLock lock(&mu_);
    StorageStats stats = storage_stats_;
    // The live writer's absorbed retries roll into the total at rotation;
    // count the current generation's on the fly.
    stats.transient_retries += wal_->transient_retries();
    return stats;
}

std::uint64_t AdmissionController::state_digest() const {
    const common::MutexLock lock(&mu_);
    common::Fnv1a digest;
    digest.mix(static_cast<std::uint64_t>(scheme_));
    digest.mix(config_digest_);
    digest.mix(metrics_.processed);
    digest.mix(metrics_.admitted);
    digest.mix(metrics_.rejected);
    digest.mix(metrics_.shed);
    digest.mix(metrics_.revenue);
    digest.mix(metrics_.shed_revenue);
    digest.mix(covered_watermark_);
    digest.mix(static_cast<std::uint64_t>(covered_sparse_.size()));
    for (const std::uint64_t seq : covered_sparse_) digest.mix(seq);
    digest.mix(static_cast<std::uint64_t>(admitted_.size()));
    for (const AdmittedRecord& rec : admitted_) {
        digest.mix(rec.seq);
        digest.mix(static_cast<std::uint64_t>(rec.request_id));
        digest.mix(rec.payment);
        digest.mix(static_cast<std::uint64_t>(rec.sites.size()));
        for (const auto& [cloudlet, replicas] : rec.sites) {
            digest.mix(static_cast<std::uint64_t>(cloudlet));
            digest.mix(static_cast<std::uint64_t>(replicas));
        }
    }
    const core::SchedulerState state = scheduler_->export_state();
    for (const auto& row : state.lambda) {
        for (const double v : row) digest.mix(v);
    }
    for (const double v : state.usage) digest.mix(v);
    return digest.value();
}

}  // namespace vnfr::serve
