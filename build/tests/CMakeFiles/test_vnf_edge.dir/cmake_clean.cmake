file(REMOVE_RECURSE
  "CMakeFiles/test_vnf_edge.dir/test_edge_ledger.cpp.o"
  "CMakeFiles/test_vnf_edge.dir/test_edge_ledger.cpp.o.d"
  "CMakeFiles/test_vnf_edge.dir/test_edge_mec.cpp.o"
  "CMakeFiles/test_vnf_edge.dir/test_edge_mec.cpp.o.d"
  "CMakeFiles/test_vnf_edge.dir/test_edge_visualization.cpp.o"
  "CMakeFiles/test_vnf_edge.dir/test_edge_visualization.cpp.o.d"
  "CMakeFiles/test_vnf_edge.dir/test_vnf.cpp.o"
  "CMakeFiles/test_vnf_edge.dir/test_vnf.cpp.o.d"
  "test_vnf_edge"
  "test_vnf_edge.pdb"
  "test_vnf_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vnf_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
