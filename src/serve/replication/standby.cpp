#include "serve/replication/standby.hpp"

#include <algorithm>
#include <utility>

#include "serve/wire.hpp"

namespace vnfr::serve::replication {

namespace {

ServeConfig standby_config(ServeConfig config) {
    config.standby = true;
    return config;
}

}  // namespace

StandbyController::StandbyController(const core::Instance& instance,
                                     core::Scheme scheme, ServeConfig config,
                                     ShipTransport& transport)
    : transport_(&transport),
      controller_(instance, scheme, standby_config(std::move(config))) {}

std::size_t StandbyController::poll() {
    const common::MutexLock lock(&standby_mu_);
    std::size_t taken = 0;
    while (std::optional<std::string> bytes = transport_->try_recv()) {
        ++taken;
        ++stats_.frames_received;
        ShipFrame frame;
        try {
            frame = decode_ship_frame(*bytes);
        } catch (const CorruptStateError&) {
            // Mangled in flight. Its coordinates are unknowable, so latch
            // resync until an in-order apply proves the shipper rewound.
            ++stats_.frames_corrupt;
            corrupt_pending_ = true;
            continue;
        }
        const StreamPos start{frame.generation, frame.start_offset};
        const StreamPos end{frame.generation,
                            frame.kind == ShipFrameKind::kRotate
                                ? frame.start_offset
                                : frame.start_offset + frame.payload.size()};
        const bool in_order = frame.generation == expected_.generation &&
                              frame.start_offset == expected_.offset;
        if (!in_order) {
            if (expected_.before(start) ||
                (frame.kind == ShipFrameKind::kRotate && expected_.before(end))) {
                // A predecessor was lost: discard, remember how far the
                // stream demonstrably extends, and ask for a rewind.
                ++stats_.frames_gap;
                if (resync_until_.before(end)) resync_until_ = end;
            } else {
                ++stats_.frames_stale;  // duplicate of applied bytes
            }
            continue;
        }
        if (frame.kind == ShipFrameKind::kRotate) {
            expected_ = StreamPos{frame.generation + 1, kWalHeaderSize};
            ++stats_.rotates_applied;
            ++stats_.frames_applied;
            corrupt_pending_ = false;
            continue;
        }
        // In-order data frame: decode strictly (the frame CRC already
        // held, so a bad record here is source corruption or divergence
        // and must propagate, never be resync'd over) and apply each
        // record durably. Retransmitted records land in the covered set.
        const std::vector<WalRecord> records = decode_wal_record_stream(
            frame.payload, "shipped generation " + std::to_string(frame.generation),
            frame.start_offset);
        for (const WalRecord& rec : records) {
            if (controller_.apply_replicated(rec)) {
                ++stats_.records_applied;
                ++applied_records_;
            } else {
                ++stats_.records_covered;
            }
        }
        expected_.offset += frame.payload.size();
        ++stats_.frames_applied;
        corrupt_pending_ = false;
    }
    ShipAck ack;
    ack.generation = expected_.generation;
    ack.next_offset = expected_.offset;
    ack.applied_records = applied_records_;
    ack.resync = corrupt_pending_ || expected_.before(resync_until_);
    transport_->send_ack(ack);
    ++stats_.acks_sent;
    if (ack.resync) ++stats_.resync_requests;
    return taken;
}

ShipAck StandbyController::watermark() const {
    const common::MutexLock lock(&standby_mu_);
    ShipAck ack;
    ack.generation = expected_.generation;
    ack.next_offset = expected_.offset;
    ack.applied_records = applied_records_;
    ack.resync = corrupt_pending_ || expected_.before(resync_until_);
    return ack;
}

StandbyStats StandbyController::stats() const {
    const common::MutexLock lock(&standby_mu_);
    return stats_;
}

}  // namespace vnfr::serve::replication
