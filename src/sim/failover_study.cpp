#include "sim/failover_study.hpp"

#include <cmath>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/thread_pool.hpp"
#include "sim/availability_process.hpp"

namespace vnfr::sim {

FailoverReport run_failover_study(const core::Instance& instance,
                                  const std::vector<core::Decision>& decisions,
                                  const FailoverConfig& config) {
    instance.validate();
    if (decisions.size() != instance.requests.size())
        throw std::invalid_argument("run_failover_study: decisions/requests size mismatch");
    VNFR_CHECK(std::isfinite(config.cloudlet_mttr_slots) &&
                   config.cloudlet_mttr_slots > 0.0,
               "cloudlet_mttr_slots must be positive and finite, got ",
               config.cloudlet_mttr_slots);
    VNFR_CHECK(std::isfinite(config.instance_mttr_slots) &&
                   config.instance_mttr_slots > 0.0,
               "instance_mttr_slots must be positive and finite, got ",
               config.instance_mttr_slots);

    AvailabilityProcess process(instance, config.cloudlet_mttr_slots,
                                config.instance_mttr_slots, common::Rng(config.seed));

    struct Active {
        std::size_t request_index;
        std::size_t handle;
        AvailabilityProcess::ServingReplica last{};
        bool first_slot{true};
    };
    std::vector<Active> active;
    std::vector<std::size_t> handles(decisions.size(), AvailabilityProcess::npos);
    for (std::size_t i = 0; i < decisions.size(); ++i) {
        if (decisions[i].admitted) {
            handles[i] = process.track(instance.requests[i], decisions[i].placement);
        }
    }

    FailoverReport report;
    std::size_t next_request = 0;
    for (TimeSlot t = 0; t < instance.horizon; ++t) {
        while (next_request < instance.requests.size() &&
               instance.requests[next_request].arrival == t) {
            if (handles[next_request] != AvailabilityProcess::npos) {
                active.push_back(Active{next_request, handles[next_request], {}, true});
            }
            ++next_request;
        }
        std::erase_if(active, [&](const Active& a) {
            return !instance.requests[a.request_index].covers(t);
        });

        process.step();

        for (Active& a : active) {
            const auto serving = process.serving_replica(a.handle);
            ++report.request_slots;
            if (serving.valid()) {
                ++report.served_slots;
                if (!a.first_slot && a.last.valid() && !(serving == a.last)) {
                    if (serving.site == a.last.site) {
                        ++report.local_failovers;
                    } else if (process.site_cloudlet(a.handle, serving.site) !=
                               process.site_cloudlet(a.handle, a.last.site)) {
                        ++report.remote_failovers;
                    } else {
                        ++report.local_failovers;
                    }
                }
            } else {
                ++report.disrupted_slots;
                if (!a.first_slot && a.last.valid()) ++report.outages;
            }
            a.last = serving;
            a.first_slot = false;
        }
    }
    return report;
}

FailoverStudyOutcome run_failover_replications(const core::Instance& instance,
                                               const std::vector<core::Decision>& decisions,
                                               const FailoverStudyConfig& config) {
    VNFR_CHECK(config.replications >= 1,
               "run_failover_replications: replications must be >= 1");
    // Seeding precedence is explicit: the Monte-Carlo path derives every
    // replication's seed from master_seed, so a caller-set process.seed
    // would be silently ignored — reject it instead.
    if (config.process.seed != FailoverConfig{}.seed)
        throw std::invalid_argument(
            "run_failover_replications: FailoverConfig::seed has no effect here; "
            "set FailoverStudyConfig::master_seed instead");

    std::vector<FailoverReport> reports(config.replications);
    {
        common::ProgressMeter progress(config.replications, config.progress);
        common::ThreadPool pool(config.threads);
        pool.parallel_for_blocked(
            0, config.replications, 1, [&](std::size_t lo, std::size_t hi) {
                for (std::size_t k = lo; k < hi; ++k) {
                    FailoverConfig per = config.process;
                    per.seed = common::stream_seed(config.master_seed, k);
                    reports[k] = run_failover_study(instance, decisions, per);
                    progress.tick();
                }
            });
    }

    // Ordered reduction, same contract as the experiment engine.
    FailoverStudyOutcome outcome;
    for (std::size_t k = 0; k < config.replications; ++k) {
        const FailoverReport& r = reports[k];
        outcome.total.request_slots += r.request_slots;
        outcome.total.served_slots += r.served_slots;
        outcome.total.disrupted_slots += r.disrupted_slots;
        outcome.total.local_failovers += r.local_failovers;
        outcome.total.remote_failovers += r.remote_failovers;
        outcome.total.outages += r.outages;
        outcome.availability.add(r.availability());
    }
    return outcome;
}

}  // namespace vnfr::sim
