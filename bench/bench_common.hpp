// Shared environment for the figure-reproduction benches.
//
// Section VI of the paper: a real topology with randomly attached
// cloudlets, 10 VNF types (reliability 0.9-0.9999, demand 1-3 units),
// requests with random requirements/payments, revenue averaged over seeds.
// The environment itself lives in src/sim/scenarios.{hpp,cpp} so the
// golden regression tests pin down exactly what the benches sweep.
//
// Seeding contract: every scenario's master seed comes from
// scenario_seed(bench name, scenario index) — a pure function routed
// through the counter-based RNG streams in common/rng.hpp. Re-running a
// bench therefore reproduces it bit-for-bit, at any VNFR_THREADS setting.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/instance.hpp"
#include "report/table.hpp"
#include "sim/experiment.hpp"
#include "sim/scenarios.hpp"

namespace vnfr::bench {

/// True when VNFR_BENCH_QUICK is set: shrinks sweeps for smoke runs.
inline bool quick_mode() { return std::getenv("VNFR_BENCH_QUICK") != nullptr; }

/// The paper's evaluation environment (see sim::paper_environment).
inline core::InstanceConfig paper_environment(std::size_t request_count) {
    return sim::paper_environment(request_count);
}

inline sim::InstanceFactory make_factory(core::InstanceConfig cfg) {
    return sim::make_config_factory(std::move(cfg));
}

/// Deterministic master seed for scenario `scenario` of the named bench:
/// an FNV-1a hash of the name fed into the counter-based stream hash.
/// Never derived from wall clock or run order, so bench output is
/// reproducible run-to-run and scenario seeds never collide across benches.
inline std::uint64_t scenario_seed(std::string_view bench_name, std::uint64_t scenario) {
    std::uint64_t name_hash = 0xcbf29ce484222325ULL;
    for (const char c : bench_name) {
        name_hash ^= static_cast<unsigned char>(c);
        name_hash *= 0x100000001b3ULL;
    }
    return common::stream_seed(name_hash, scenario);
}

/// One line recording the replication parallelism, so saved bench logs are
/// attributable to a thread configuration.
inline void print_thread_note() {
    std::cout << "threads: " << common::ThreadPool::default_thread_count()
              << " (override with VNFR_THREADS; results are thread-count-invariant)\n\n";
}

/// One row of a figure series: the swept x plus per-algorithm outcomes.
struct SeriesRow {
    double x{0};
    sim::ExperimentOutcome outcome;
};

/// Prints a figure as an aligned table (mean +/- 95% CI per algorithm) and
/// as a CSV block for replotting.
inline void print_series(const std::string& title, const std::string& x_label,
                         const std::vector<sim::Algorithm>& algorithms,
                         const std::vector<SeriesRow>& rows, bool with_offline_bound) {
    std::cout << "== " << title << " ==\n\n";
    std::vector<std::string> headers{x_label};
    for (const sim::Algorithm a : algorithms) {
        headers.emplace_back(sim::algorithm_name(a));
    }
    if (with_offline_bound) headers.emplace_back("offline-bound");
    report::Table table(headers);
    for (const SeriesRow& row : rows) {
        std::vector<std::string> cells{report::format_double(row.x, 0)};
        for (const auto& alg : row.outcome.per_algorithm) {
            cells.push_back(report::format_mean_ci(alg.revenue.mean(),
                                                   alg.revenue.ci95_halfwidth()));
        }
        if (with_offline_bound) {
            cells.push_back(report::format_double(row.outcome.offline_bound.mean(), 1));
        }
        table.add_row(std::move(cells));
    }
    std::cout << table.to_text() << "\ncsv:\n" << x_label;
    for (const sim::Algorithm a : algorithms) std::cout << ',' << sim::algorithm_name(a);
    if (with_offline_bound) std::cout << ",offline-bound";
    std::cout << '\n';
    for (const SeriesRow& row : rows) {
        std::cout << row.x;
        for (const auto& alg : row.outcome.per_algorithm) {
            std::cout << ',' << alg.revenue.mean();
        }
        if (with_offline_bound) std::cout << ',' << row.outcome.offline_bound.mean();
        std::cout << '\n';
    }
    std::cout << '\n';
}

/// Revenue improvement of the first algorithm over the second at the last
/// sweep point, as the paper quotes ("outperforms greedy by X%").
inline void print_final_gap(const std::vector<SeriesRow>& rows) {
    if (rows.empty() || rows.back().outcome.per_algorithm.size() < 2) return;
    const auto& last = rows.back().outcome.per_algorithm;
    const double a = last[0].revenue.mean();
    const double b = last[1].revenue.mean();
    if (b > 0.0) {
        std::cout << "final-point improvement of " << sim::algorithm_name(last[0].algorithm)
                  << " over " << sim::algorithm_name(last[1].algorithm) << ": "
                  << report::format_double((a / b - 1.0) * 100.0, 1) << "%\n\n";
    }
}

}  // namespace vnfr::bench
