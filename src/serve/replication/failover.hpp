// Promotes a standby after the primary dies: replays the un-acked suffix
// of the primary's on-disk WAL tail into the standby (the covered set
// absorbs everything replication already delivered, so replay is
// idempotent and double-charges are structurally impossible), persists a
// checkpoint of the caught-up state (fsync-before-promote — the
// vnfr_asa replication-promote-checkpoint rule pins this order), and only
// then flips the controller to the primary role so it resumes admissions.
//
// Crash-window inventory the catch-up must absorb:
//   - standby lag: whole durable groups the shipper never sent
//   - mid-ship: frames in flight (sent, not applied) at the kill
//   - mid-group-commit: a torn record at the primary WAL tail (kRecover
//     drops it — the request was never durably decided, so the promoted
//     controller simply decides it afresh when resubmitted)
//   - mid-checkpoint-rotation: the next generation's file exists with
//     zero records, or the snapshot is newer than the live WAL; both are
//     ordinary shapes for generation-ordered replay
#pragma once

#include <cstdint>
#include <string>

#include "serve/replication/standby.hpp"

namespace vnfr::serve {
class Vfs;
}  // namespace vnfr::serve

namespace vnfr::serve::replication {

struct PromotionReport {
    /// Records recovered from the primary's disk tail that replication
    /// had NOT yet applied — the zero-lost-decisions gap being closed.
    std::uint64_t disk_records_applied{0};
    /// Records in the scanned tail the covered set absorbed (already
    /// applied via shipping) — the zero-double-charges half.
    std::uint64_t disk_records_skipped{0};
    std::uint64_t generations_scanned{0};
    /// Torn tail dropped from the primary's final generation (a
    /// mid-append crash); those bytes were never durable, hence never a
    /// decision to preserve.
    std::uint64_t torn_tail_bytes{0};
    std::uint64_t torn_tail_records{0};
    std::uint64_t promoted_digest{0};
};

class FailoverCoordinator {
  public:
    /// `primary_data_dir` is the dead primary's state directory; its
    /// files must be quiescent (the primary process is gone — a primary
    /// that merely degraded into read-only mode counts as gone, since it
    /// refuses admissions and will never append again). `vfs` is the
    /// storage the primary's files live on; defaults to the real disk.
    explicit FailoverCoordinator(std::string primary_data_dir);
    FailoverCoordinator(std::string primary_data_dir, Vfs& vfs);

    /// Catches `standby` up from the primary's durable WAL tail and
    /// promotes it. Throws ReplicationGapError if a generation between
    /// the standby's watermark and the primary's newest is missing on
    /// disk (releases are gated on acks, so a hole means real data loss
    /// — promotion must fail loudly, not resume with silent gaps), and
    /// CorruptStateError if the tail is corrupt before its final record
    /// or replay diverges from a logged outcome.
    PromotionReport promote(StandbyController& standby);

  private:
    std::string primary_dir_;
    Vfs* vfs_;
};

}  // namespace vnfr::serve::replication
