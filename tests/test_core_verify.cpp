#include "core/verify.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/greedy.hpp"
#include "core/hybrid_primal_dual.hpp"
#include "core/offsite_primal_dual.hpp"
#include "core/onsite_primal_dual.hpp"
#include "helpers.hpp"

namespace vnfr::core {
namespace {

using vnfr::testing::make_request;
using vnfr::testing::random_instance;
using vnfr::testing::small_instance;

bool has_violation(const VerificationReport& report, ScheduleViolation::Kind kind) {
    for (const ScheduleViolation& v : report.violations) {
        if (v.kind == kind) return true;
    }
    return false;
}

TEST(VerifySchedule, AcceptsEveryEnforcingScheduler) {
    common::Rng rng(301);
    const Instance inst = random_instance(rng, 80, 4, 12, 8, 15);
    OnsitePrimalDual a1(inst);
    OffsitePrimalDual a2(inst);
    OnsiteGreedy g1(inst);
    OffsiteGreedy g2(inst);
    HybridPrimalDual h(inst);
    for (OnlineScheduler* s :
         std::initializer_list<OnlineScheduler*>{&a1, &a2, &g1, &g2, &h}) {
        const ScheduleResult result = run_online(inst, *s);
        const VerificationReport report = verify_schedule(inst, result.decisions);
        EXPECT_TRUE(report.ok()) << s->name() << ": " << report.violations.size()
                                 << " violations";
        EXPECT_NEAR(report.revenue, result.revenue, 1e-9);
        EXPECT_EQ(report.admitted, result.admitted);
    }
}

TEST(VerifySchedule, PureVariantPassesOnlyWithTolerance) {
    common::Rng rng(303);
    // Tight capacity so the pure variant actually violates.
    const Instance inst = random_instance(rng, 120, 3, 12, 5, 8);
    OnsitePrimalDual pure(inst, OnsitePrimalDualConfig{.enforce_capacity = false});
    const ScheduleResult result = run_online(inst, pure);
    if (result.max_overshoot > 0.0) {
        const VerificationReport strict = verify_schedule(inst, result.decisions, 1.0);
        EXPECT_TRUE(has_violation(strict, ScheduleViolation::Kind::kCapacityExceeded));
    }
    const double xi = compute_onsite_bounds(inst).xi;
    const VerificationReport relaxed = verify_schedule(inst, result.decisions, xi);
    EXPECT_TRUE(relaxed.ok()) << "Lemma 8 tolerance must admit the pure schedule";
}

TEST(VerifySchedule, DetectsDecisionCountMismatch) {
    const Instance inst = small_instance({0.99}, 10.0, 5, {make_request(0, 0, 0.9, 0, 2, 5.0)});
    const VerificationReport report = verify_schedule(inst, {});
    EXPECT_TRUE(has_violation(report, ScheduleViolation::Kind::kDecisionCountMismatch));
}

TEST(VerifySchedule, DetectsEmptyPlacement) {
    const Instance inst = small_instance({0.99}, 10.0, 5, {make_request(0, 0, 0.9, 0, 2, 5.0)});
    std::vector<Decision> decisions(1);
    decisions[0].admitted = true;  // admitted but no sites
    const VerificationReport report = verify_schedule(inst, decisions);
    EXPECT_TRUE(has_violation(report, ScheduleViolation::Kind::kEmptyPlacement));
}

TEST(VerifySchedule, DetectsUnknownCloudletAndBadReplicas) {
    const Instance inst = small_instance({0.99}, 10.0, 5, {make_request(0, 0, 0.9, 0, 2, 5.0)});
    std::vector<Decision> decisions(1);
    decisions[0].admitted = true;
    decisions[0].placement = Placement{RequestId{0}, {Site{CloudletId{7}, 1}}};
    EXPECT_TRUE(has_violation(verify_schedule(inst, decisions),
                              ScheduleViolation::Kind::kUnknownCloudlet));
    decisions[0].placement = Placement{RequestId{0}, {Site{CloudletId{0}, 0}}};
    EXPECT_TRUE(has_violation(verify_schedule(inst, decisions),
                              ScheduleViolation::Kind::kNonPositiveReplicas));
}

TEST(VerifySchedule, DetectsDuplicateSites) {
    const Instance inst = small_instance({0.99}, 10.0, 5, {make_request(0, 0, 0.9, 0, 2, 5.0)});
    std::vector<Decision> decisions(1);
    decisions[0].admitted = true;
    decisions[0].placement =
        Placement{RequestId{0}, {Site{CloudletId{0}, 1}, Site{CloudletId{0}, 1}}};
    EXPECT_TRUE(has_violation(verify_schedule(inst, decisions),
                              ScheduleViolation::Kind::kDuplicateSite));
}

TEST(VerifySchedule, DetectsCapacityOverrun) {
    // Capacity 3 but the placement needs 2 replicas x 2 units = 4.
    const Instance inst = small_instance({0.99}, 3.0, 5, {make_request(0, 1, 0.9, 0, 2, 5.0)});
    std::vector<Decision> decisions(1);
    decisions[0].admitted = true;
    decisions[0].placement = Placement{RequestId{0}, {Site{CloudletId{0}, 2}}};
    const VerificationReport report = verify_schedule(inst, decisions);
    EXPECT_TRUE(has_violation(report, ScheduleViolation::Kind::kCapacityExceeded));
    EXPECT_GT(report.max_load_factor, 1.0);
}

TEST(VerifySchedule, DetectsReliabilityShortfall) {
    // One replica of a 0.95-reliable VNF on a 0.99 cloudlet: availability
    // 0.9405 < requirement 0.95.
    const Instance inst = small_instance({0.99}, 10.0, 5, {make_request(0, 0, 0.95, 0, 2, 5.0)});
    std::vector<Decision> decisions(1);
    decisions[0].admitted = true;
    decisions[0].placement = Placement{RequestId{0}, {Site{CloudletId{0}, 1}}};
    EXPECT_TRUE(has_violation(verify_schedule(inst, decisions),
                              ScheduleViolation::Kind::kReliabilityNotMet));
}

TEST(VerifySchedule, CapacityToleranceRelaxesExactlyToTheBound) {
    // Capacity 3, one site with 2 replicas x 2 units = 4 per slot: a load
    // factor of 4/3. Tolerances below it must flag (6)/(9); tolerances at
    // or above it (the Lemma 8 xi regime) must accept the same schedule.
    const Instance inst = small_instance({0.99}, 3.0, 5, {make_request(0, 1, 0.9, 0, 2, 5.0)});
    std::vector<Decision> decisions(1);
    decisions[0].admitted = true;
    decisions[0].placement = Placement{RequestId{0}, {Site{CloudletId{0}, 2}}};

    const VerificationReport strict = verify_schedule(inst, decisions, 1.0);
    EXPECT_TRUE(has_violation(strict, ScheduleViolation::Kind::kCapacityExceeded));
    const VerificationReport below = verify_schedule(inst, decisions, 4.0 / 3.0 - 0.01);
    EXPECT_TRUE(has_violation(below, ScheduleViolation::Kind::kCapacityExceeded));

    const VerificationReport at_bound = verify_schedule(inst, decisions, 4.0 / 3.0);
    EXPECT_FALSE(has_violation(at_bound, ScheduleViolation::Kind::kCapacityExceeded));
    const VerificationReport above = verify_schedule(inst, decisions, 2.0);
    EXPECT_TRUE(above.ok());
    // The load factor itself is reported against the *unrelaxed* capacity
    // regardless of tolerance.
    EXPECT_NEAR(above.max_load_factor, 4.0 / 3.0, 1e-12);
}

TEST(VerifySchedule, ToleranceDoesNotMaskOtherViolationKinds) {
    // A generous capacity tolerance must not excuse reliability shortfalls
    // or malformed placements.
    const Instance inst = small_instance({0.99}, 10.0, 5, {make_request(0, 0, 0.95, 0, 2, 5.0)});
    std::vector<Decision> decisions(1);
    decisions[0].admitted = true;
    decisions[0].placement = Placement{RequestId{0}, {Site{CloudletId{0}, 1}}};
    const VerificationReport report = verify_schedule(inst, decisions, 100.0);
    EXPECT_TRUE(has_violation(report, ScheduleViolation::Kind::kReliabilityNotMet));
}

TEST(VerifySchedule, ReportAccumulatesRevenueAndAdmitted) {
    const Instance inst = small_instance(
        {0.99}, 50.0, 5,
        {make_request(0, 0, 0.9, 0, 2, 5.0), make_request(1, 0, 0.9, 1, 2, 7.5)});
    std::vector<Decision> decisions(2);
    decisions[0].admitted = true;
    decisions[0].placement = Placement{RequestId{0}, {Site{CloudletId{0}, 2}}};
    decisions[1].admitted = true;
    decisions[1].placement = Placement{RequestId{1}, {Site{CloudletId{0}, 2}}};
    const VerificationReport report = verify_schedule(inst, decisions);
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.admitted, 2u);
    EXPECT_DOUBLE_EQ(report.revenue, 12.5);
}

TEST(VerifySchedule, RejectionIsAlwaysClean) {
    const Instance inst = small_instance({0.99}, 10.0, 5, {make_request(0, 0, 0.9, 0, 2, 5.0)});
    std::vector<Decision> decisions(1);  // rejected by default
    const VerificationReport report = verify_schedule(inst, decisions);
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.admitted, 0u);
    EXPECT_DOUBLE_EQ(report.revenue, 0.0);
}

}  // namespace
}  // namespace vnfr::core
