#include "net/shortest_path.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "net/generators.hpp"

namespace vnfr::net {
namespace {

Graph diamond() {
    // 0 -1- 1 -1- 3,  0 -3- 2 -1- 3, plus a direct heavy 0-3.
    Graph g(4);
    g.add_edge(NodeId{0}, NodeId{1}, 1.0);
    g.add_edge(NodeId{1}, NodeId{3}, 1.0);
    g.add_edge(NodeId{0}, NodeId{2}, 3.0);
    g.add_edge(NodeId{2}, NodeId{3}, 1.0);
    g.add_edge(NodeId{0}, NodeId{3}, 5.0);
    return g;
}

TEST(Dijkstra, FindsShortestDistances) {
    const Graph g = diamond();
    const auto tree = dijkstra(g, NodeId{0});
    EXPECT_DOUBLE_EQ(tree.distance[0], 0.0);
    EXPECT_DOUBLE_EQ(tree.distance[1], 1.0);
    EXPECT_DOUBLE_EQ(tree.distance[2], 3.0);
    EXPECT_DOUBLE_EQ(tree.distance[3], 2.0);
}

TEST(Dijkstra, ReconstructsPath) {
    const Graph g = diamond();
    const auto tree = dijkstra(g, NodeId{0});
    const auto path = tree.path_to(NodeId{3});
    ASSERT_EQ(path.size(), 3u);
    EXPECT_EQ(path[0], NodeId{0});
    EXPECT_EQ(path[1], NodeId{1});
    EXPECT_EQ(path[2], NodeId{3});
}

TEST(Dijkstra, UnreachableNode) {
    Graph g(3);
    g.add_edge(NodeId{0}, NodeId{1});
    const auto tree = dijkstra(g, NodeId{0});
    EXPECT_EQ(tree.distance[2], kUnreachable);
    EXPECT_TRUE(tree.path_to(NodeId{2}).empty());
}

TEST(Dijkstra, RejectsUnknownSource) {
    Graph g(2);
    EXPECT_THROW(dijkstra(g, NodeId{9}), std::invalid_argument);
}

TEST(Dijkstra, SourcePathIsItself) {
    const Graph g = diamond();
    const auto tree = dijkstra(g, NodeId{0});
    const auto path = tree.path_to(NodeId{0});
    ASSERT_EQ(path.size(), 1u);
    EXPECT_EQ(path[0], NodeId{0});
}

// Property: Dijkstra distances on random graphs match Bellman-Ford.
class DijkstraRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(DijkstraRandomTest, MatchesBellmanFord) {
    common::Rng rng(static_cast<std::uint64_t>(GetParam()));
    const Graph g = erdos_renyi(15, 0.3, rng, true);
    // Reassign random weights by rebuilding.
    Graph h(g.node_count());
    for (const Edge& e : g.edges()) h.add_edge(e.a, e.b, rng.uniform(0.5, 10.0));

    const auto tree = dijkstra(h, NodeId{0});

    std::vector<double> bf(h.node_count(), kUnreachable);
    bf[0] = 0.0;
    for (std::size_t round = 0; round < h.node_count(); ++round) {
        for (const Edge& e : h.edges()) {
            if (bf[e.a.index()] + e.weight < bf[e.b.index()])
                bf[e.b.index()] = bf[e.a.index()] + e.weight;
            if (bf[e.b.index()] + e.weight < bf[e.a.index()])
                bf[e.a.index()] = bf[e.b.index()] + e.weight;
        }
    }
    for (std::size_t v = 0; v < h.node_count(); ++v) {
        EXPECT_NEAR(tree.distance[v], bf[v], 1e-9) << "node " << v;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraRandomTest, ::testing::Range(0, 10));

TEST(BfsHops, CountsEdgesNotWeights) {
    const Graph g = diamond();
    const auto hops = bfs_hops(g, NodeId{0});
    EXPECT_EQ(hops[0], 0);
    EXPECT_EQ(hops[3], 1);  // direct heavy edge is 1 hop
    EXPECT_EQ(hops[1], 1);
    EXPECT_EQ(hops[2], 1);
}

TEST(BfsHops, UnreachableIsMinusOne) {
    Graph g(3);
    g.add_edge(NodeId{0}, NodeId{1});
    EXPECT_EQ(bfs_hops(g, NodeId{0})[2], -1);
}

TEST(AllPairs, SymmetricMatrix) {
    common::Rng rng(3);
    const Graph g = erdos_renyi(12, 0.4, rng, true);
    const auto dist = all_pairs_distances(g);
    const auto hops = all_pairs_hops(g);
    for (std::size_t a = 0; a < g.node_count(); ++a) {
        for (std::size_t b = 0; b < g.node_count(); ++b) {
            EXPECT_NEAR(dist[a][b], dist[b][a], 1e-9);
            EXPECT_EQ(hops[a][b], hops[b][a]);
        }
        EXPECT_DOUBLE_EQ(dist[a][a], 0.0);
        EXPECT_EQ(hops[a][a], 0);
    }
}

TEST(KShortest, FirstPathIsShortest) {
    const Graph g = diamond();
    const auto paths = k_shortest_paths(g, NodeId{0}, NodeId{3}, 3);
    ASSERT_GE(paths.size(), 1u);
    EXPECT_DOUBLE_EQ(paths[0].weight, 2.0);
}

TEST(KShortest, PathsInNonDecreasingOrder) {
    const Graph g = diamond();
    const auto paths = k_shortest_paths(g, NodeId{0}, NodeId{3}, 5);
    ASSERT_EQ(paths.size(), 3u);  // exactly three loopless 0->3 paths
    EXPECT_DOUBLE_EQ(paths[0].weight, 2.0);
    EXPECT_DOUBLE_EQ(paths[1].weight, 4.0);
    EXPECT_DOUBLE_EQ(paths[2].weight, 5.0);
    for (std::size_t i = 1; i < paths.size(); ++i) {
        EXPECT_LE(paths[i - 1].weight, paths[i].weight);
    }
}

TEST(KShortest, PathsAreLoopless) {
    common::Rng rng(5);
    const Graph g = erdos_renyi(10, 0.5, rng, true);
    const auto paths = k_shortest_paths(g, NodeId{0}, NodeId{9}, 8);
    for (const auto& p : paths) {
        std::vector<NodeId> nodes = p.nodes;
        std::sort(nodes.begin(), nodes.end());
        EXPECT_EQ(std::adjacent_find(nodes.begin(), nodes.end()), nodes.end())
            << "path revisits a node";
    }
}

TEST(KShortest, PathsAreDistinct) {
    common::Rng rng(6);
    const Graph g = erdos_renyi(10, 0.5, rng, true);
    auto paths = k_shortest_paths(g, NodeId{0}, NodeId{9}, 6);
    for (std::size_t i = 0; i < paths.size(); ++i) {
        for (std::size_t j = i + 1; j < paths.size(); ++j) {
            EXPECT_NE(paths[i].nodes, paths[j].nodes);
        }
    }
}

TEST(KShortest, ZeroKReturnsEmpty) {
    const Graph g = diamond();
    EXPECT_TRUE(k_shortest_paths(g, NodeId{0}, NodeId{3}, 0).empty());
}

TEST(KShortest, DisconnectedReturnsEmpty) {
    Graph g(3);
    g.add_edge(NodeId{0}, NodeId{1});
    EXPECT_TRUE(k_shortest_paths(g, NodeId{0}, NodeId{2}, 3).empty());
}

// Property: Yen's output equals brute-force enumeration of all simple
// paths sorted by weight, on small random graphs.
class YenBruteForceTest : public ::testing::TestWithParam<int> {};

namespace detail {
void enumerate_paths(const Graph& g, NodeId current, NodeId target,
                     std::vector<NodeId>& path, std::vector<bool>& visited, double weight,
                     std::vector<WeightedPath>& out) {
    if (current == target) {
        out.push_back({path, weight});
        return;
    }
    for (const Adjacency& adj : g.neighbors(current)) {
        if (visited[adj.neighbor.index()]) continue;
        visited[adj.neighbor.index()] = true;
        path.push_back(adj.neighbor);
        enumerate_paths(g, adj.neighbor, target, path, visited, weight + adj.weight, out);
        path.pop_back();
        visited[adj.neighbor.index()] = false;
    }
}
}  // namespace detail

TEST_P(YenBruteForceTest, MatchesExhaustiveEnumeration) {
    common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 53 + 11);
    Graph base = erdos_renyi(7, 0.45, rng, true);
    Graph g(base.node_count());
    for (const Edge& e : base.edges()) g.add_edge(e.a, e.b, rng.uniform(0.5, 5.0));

    const NodeId source{0};
    const NodeId target{6};
    std::vector<WeightedPath> all;
    std::vector<NodeId> path{source};
    std::vector<bool> visited(g.node_count(), false);
    visited[source.index()] = true;
    detail::enumerate_paths(g, source, target, path, visited, 0.0, all);
    std::sort(all.begin(), all.end(),
              [](const WeightedPath& a, const WeightedPath& b) { return a.weight < b.weight; });

    const std::size_t k = std::min<std::size_t>(5, all.size());
    const auto yen = k_shortest_paths(g, source, target, k);
    ASSERT_EQ(yen.size(), k);
    for (std::size_t i = 0; i < k; ++i) {
        // Weights must agree exactly (paths may differ under ties).
        EXPECT_NEAR(yen[i].weight, all[i].weight, 1e-9) << "rank " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, YenBruteForceTest, ::testing::Range(0, 10));

TEST(KShortest, PathWeightsConsistent) {
    const Graph g = diamond();
    for (const auto& p : k_shortest_paths(g, NodeId{0}, NodeId{3}, 3)) {
        double w = 0.0;
        for (std::size_t i = 0; i + 1 < p.nodes.size(); ++i) {
            w += *g.edge_weight(p.nodes[i], p.nodes[i + 1]);
        }
        EXPECT_NEAR(w, p.weight, 1e-9);
    }
}

}  // namespace
}  // namespace vnfr::net
