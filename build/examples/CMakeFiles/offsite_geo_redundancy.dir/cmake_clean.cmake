file(REMOVE_RECURSE
  "CMakeFiles/offsite_geo_redundancy.dir/offsite_geo_redundancy.cpp.o"
  "CMakeFiles/offsite_geo_redundancy.dir/offsite_geo_redundancy.cpp.o.d"
  "offsite_geo_redundancy"
  "offsite_geo_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offsite_geo_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
