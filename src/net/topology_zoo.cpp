#include "net/topology_zoo.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace vnfr::net {

namespace {

struct NodeSpec {
    const char* name;
    double x;  ///< longitude (degrees)
    double y;  ///< latitude (degrees)
};

struct TopologySpec {
    const char* name;
    std::vector<NodeSpec> nodes;
    std::vector<std::pair<int, int>> links;
};

Graph build(const TopologySpec& spec) {
    Graph g;
    for (const NodeSpec& n : spec.nodes) g.add_node(n.name, n.x, n.y);
    for (const auto& [a, b] : spec.links) {
        const NodeId na{a};
        const NodeId nb{b};
        // Degree-space Euclidean distance is a fine proxy for link length at
        // backbone scale; floor keeps weights strictly positive.
        const double w = std::max(g.euclidean(na, nb), 0.1);
        g.add_edge(na, nb, w);
    }
    return g;
}

TopologySpec abilene_spec() {
    return TopologySpec{
        "abilene",
        {
            {"Seattle", -122.33, 47.61},
            {"Sunnyvale", -122.04, 37.37},
            {"Denver", -104.99, 39.74},
            {"LosAngeles", -118.24, 34.05},
            {"Houston", -95.37, 29.76},
            {"KansasCity", -94.58, 39.10},
            {"Indianapolis", -86.16, 39.77},
            {"Atlanta", -84.39, 33.75},
            {"Chicago", -87.63, 41.88},
            {"WashingtonDC", -77.04, 38.91},
            {"NewYork", -74.01, 40.71},
        },
        {
            {0, 1}, {0, 2}, {1, 2}, {1, 3}, {3, 4}, {2, 5}, {4, 5}, {4, 7},
            {5, 6}, {6, 8}, {6, 7}, {7, 9}, {8, 10}, {9, 10},
        },
    };
}

TopologySpec nsfnet_spec() {
    return TopologySpec{
        "nsfnet",
        {
            {"Seattle", -122.33, 47.61},    // 0
            {"PaloAlto", -122.14, 37.44},   // 1
            {"SanDiego", -117.16, 32.72},   // 2
            {"SaltLake", -111.89, 40.76},   // 3
            {"Boulder", -105.27, 40.02},    // 4
            {"Houston", -95.37, 29.76},     // 5
            {"Lincoln", -96.70, 40.81},     // 6
            {"Champaign", -88.24, 40.12},   // 7
            {"Pittsburgh", -79.99, 40.44},  // 8
            {"Atlanta", -84.39, 33.75},     // 9
            {"AnnArbor", -83.74, 42.28},    // 10
            {"Ithaca", -76.50, 42.44},      // 11
            {"Princeton", -74.66, 40.35},   // 12
            {"CollegePark", -76.94, 38.99}, // 13
        },
        {
            {0, 1}, {0, 2}, {0, 7}, {1, 2}, {1, 3}, {2, 5}, {3, 4}, {3, 10},
            {4, 5}, {4, 6}, {5, 9}, {5, 12}, {6, 7}, {7, 8}, {8, 9}, {8, 11},
            {8, 13}, {9, 10}, {10, 11}, {11, 12}, {12, 13},
        },
    };
}

TopologySpec geant_spec() {
    return TopologySpec{
        "geant",
        {
            {"Vienna", 16.37, 48.21},      // 0  AT
            {"Brussels", 4.35, 50.85},     // 1  BE
            {"Zurich", 8.54, 47.37},       // 2  CH
            {"Prague", 14.44, 50.08},      // 3  CZ
            {"Frankfurt", 8.68, 50.11},    // 4  DE
            {"Copenhagen", 12.57, 55.69},  // 5  DK
            {"Madrid", -3.70, 40.42},      // 6  ES
            {"Tallinn", 24.75, 59.44},     // 7  EE
            {"Paris", 2.35, 48.86},        // 8  FR
            {"Athens", 23.73, 37.98},      // 9  GR
            {"Zagreb", 15.98, 45.81},      // 10 HR
            {"Budapest", 19.04, 47.50},    // 11 HU
            {"Dublin", -6.26, 53.35},      // 12 IE
            {"Tel-Aviv", 34.78, 32.09},    // 13 IL
            {"Milan", 9.19, 45.46},        // 14 IT
            {"Luxembourg", 6.13, 49.61},   // 15 LU
            {"Amsterdam", 4.90, 52.37},    // 16 NL
            {"Oslo", 10.75, 59.91},        // 17 NO
            {"Poznan", 16.93, 52.41},      // 18 PL
            {"Lisbon", -9.14, 38.72},      // 19 PT
            {"Stockholm", 18.07, 59.33},   // 20 SE
            {"Ljubljana", 14.51, 46.05},   // 21 SI
            {"London", -0.13, 51.51},      // 22 UK
        },
        {
            {0, 3},  {0, 11}, {0, 14}, {0, 21}, {0, 4},  {1, 4},  {1, 8},
            {1, 16}, {2, 4},  {2, 14}, {2, 8},  {3, 4},  {3, 18}, {4, 5},
            {4, 16}, {4, 15}, {4, 9},  {5, 17}, {5, 20}, {5, 7},  {6, 8},
            {6, 19}, {6, 14}, {7, 20}, {8, 15}, {8, 22}, {8, 19}, {9, 14},
            {10, 11}, {10, 21}, {11, 18}, {12, 22}, {13, 9}, {13, 14},
            {16, 22}, {17, 20}, {20, 18},
        },
    };
}

TopologySpec att_spec() {
    return TopologySpec{
        "att",
        {
            {"Seattle", -122.33, 47.61},      // 0
            {"Portland", -122.68, 45.52},     // 1
            {"SanFrancisco", -122.42, 37.77}, // 2
            {"LosAngeles", -118.24, 34.05},   // 3
            {"SanDiego", -117.16, 32.72},     // 4
            {"Phoenix", -112.07, 33.45},      // 5
            {"SaltLake", -111.89, 40.76},     // 6
            {"Denver", -104.99, 39.74},       // 7
            {"Albuquerque", -106.65, 35.08},  // 8
            {"Dallas", -96.80, 32.78},        // 9
            {"Houston", -95.37, 29.76},       // 10
            {"NewOrleans", -90.07, 29.95},    // 11
            {"KansasCity", -94.58, 39.10},    // 12
            {"StLouis", -90.20, 38.63},       // 13
            {"Chicago", -87.63, 41.88},       // 14
            {"Minneapolis", -93.27, 44.98},   // 15
            {"Detroit", -83.05, 42.33},       // 16
            {"Indianapolis", -86.16, 39.77},  // 17
            {"Nashville", -86.78, 36.16},     // 18
            {"Atlanta", -84.39, 33.75},       // 19
            {"Miami", -80.19, 25.76},         // 20
            {"Charlotte", -80.84, 35.23},     // 21
            {"WashingtonDC", -77.04, 38.91},  // 22
            {"Philadelphia", -75.17, 39.95},  // 23
            {"NewYork", -74.01, 40.71},       // 24
        },
        {
            {0, 1},  {0, 6},  {0, 14}, {1, 2},  {2, 3},  {2, 6},  {3, 4},
            {3, 5},  {3, 9},  {4, 5},  {5, 8},  {6, 7},  {7, 8},  {7, 12},
            {8, 9},  {9, 10}, {9, 12}, {10, 11}, {11, 19}, {12, 13}, {12, 15},
            {13, 14}, {13, 18}, {14, 15}, {14, 16}, {14, 17}, {16, 24},
            {17, 18}, {18, 19}, {19, 20}, {19, 21}, {20, 21}, {21, 22},
            {22, 23}, {22, 19}, {23, 24}, {14, 24},
        },
    };
}

TopologySpec internet2_spec() {
    return TopologySpec{
        "internet2",
        {
            {"Seattle", -122.33, 47.61},      // 0
            {"Portland", -122.68, 45.52},     // 1
            {"Sunnyvale", -122.04, 37.37},    // 2
            {"LosAngeles", -118.24, 34.05},   // 3
            {"SaltLake", -111.89, 40.76},     // 4
            {"LasVegas", -115.14, 36.17},     // 5
            {"Phoenix", -112.07, 33.45},      // 6
            {"Denver", -104.99, 39.74},       // 7
            {"Albuquerque", -106.65, 35.08},  // 8
            {"ElPaso", -106.49, 31.76},       // 9
            {"KansasCity", -94.58, 39.10},    // 10
            {"Dallas", -96.80, 32.78},        // 11
            {"Houston", -95.37, 29.76},       // 12
            {"Minneapolis", -93.27, 44.98},   // 13
            {"Chicago", -87.63, 41.88},       // 14
            {"StLouis", -90.20, 38.63},       // 15
            {"Memphis", -90.05, 35.15},       // 16
            {"BatonRouge", -91.19, 30.45},    // 17
            {"Indianapolis", -86.16, 39.77},  // 18
            {"Louisville", -85.76, 38.25},    // 19
            {"Nashville", -86.78, 36.16},     // 20
            {"Atlanta", -84.39, 33.75},       // 21
            {"Jacksonville", -81.66, 30.33},  // 22
            {"Miami", -80.19, 25.76},         // 23
            {"Cleveland", -81.69, 41.50},     // 24
            {"Pittsburgh", -79.99, 40.44},    // 25
            {"Buffalo", -78.88, 42.89},       // 26
            {"Boston", -71.06, 42.36},        // 27
            {"NewYork", -74.01, 40.71},       // 28
            {"Philadelphia", -75.17, 39.95},  // 29
            {"WashingtonDC", -77.04, 38.91},  // 30
            {"Raleigh", -78.64, 35.78},       // 31
            {"Charlotte", -80.84, 35.23},     // 32
            {"Tulsa", -95.99, 36.15},         // 33
        },
        {
            {0, 1},  {0, 4},  {0, 13}, {1, 2},  {2, 3},  {2, 4},  {3, 5},
            {3, 6},  {4, 7},  {5, 4},  {6, 8},  {7, 8},  {7, 10}, {8, 9},
            {9, 12}, {10, 11}, {10, 14}, {10, 33}, {11, 12}, {11, 33},
            {12, 17}, {13, 14}, {14, 15}, {14, 18}, {14, 24}, {15, 16},
            {16, 17}, {16, 20}, {18, 19}, {19, 20}, {20, 21}, {21, 22},
            {22, 23}, {21, 32}, {24, 25}, {24, 26}, {25, 30}, {26, 27},
            {27, 28}, {28, 29}, {29, 30}, {30, 31}, {31, 32},
        },
    };
}

TopologySpec cost266_spec() {
    return TopologySpec{
        "cost266",
        {
            {"Amsterdam", 4.90, 52.37},    // 0
            {"Athens", 23.73, 37.98},      // 1
            {"Barcelona", 2.17, 41.39},    // 2
            {"Belgrade", 20.46, 44.79},    // 3
            {"Berlin", 13.40, 52.52},      // 4
            {"Birmingham", -1.89, 52.48},  // 5
            {"Bordeaux", -0.58, 44.84},    // 6
            {"Brussels", 4.35, 50.85},     // 7
            {"Budapest", 19.04, 47.50},    // 8
            {"Copenhagen", 12.57, 55.69},  // 9
            {"Dublin", -6.26, 53.35},      // 10
            {"Dusseldorf", 6.78, 51.23},   // 11
            {"Frankfurt", 8.68, 50.11},    // 12
            {"Glasgow", -4.25, 55.86},     // 13
            {"Hamburg", 9.99, 53.55},      // 14
            {"Helsinki", 24.94, 60.17},    // 15
            {"Krakow", 19.94, 50.06},      // 16
            {"Lisbon", -9.14, 38.72},      // 17
            {"London", -0.13, 51.51},      // 18
            {"Lyon", 4.84, 45.76},         // 19
            {"Madrid", -3.70, 40.42},      // 20
            {"Marseille", 5.37, 43.30},    // 21
            {"Milan", 9.19, 45.46},        // 22
            {"Munich", 11.58, 48.14},      // 23
            {"Oslo", 10.75, 59.91},        // 24
            {"Paris", 2.35, 48.86},        // 25
            {"Prague", 14.44, 50.08},      // 26
            {"Rome", 12.50, 41.90},        // 27
            {"Seville", -5.98, 37.39},     // 28
            {"Sofia", 23.32, 42.70},       // 29
            {"Stockholm", 18.07, 59.33},   // 30
            {"Strasbourg", 7.75, 48.58},   // 31
            {"Vienna", 16.37, 48.21},      // 32
            {"Warsaw", 21.01, 52.23},      // 33
            {"Zagreb", 15.98, 45.81},      // 34
            {"Zurich", 8.54, 47.37},       // 35
        },
        {
            {0, 7},  {0, 11}, {0, 14}, {0, 18}, {1, 29}, {1, 27}, {2, 20},
            {2, 21}, {3, 8},  {3, 29}, {3, 34}, {4, 9},  {4, 14}, {4, 23},
            {4, 33}, {5, 10}, {5, 13}, {5, 18}, {6, 20}, {6, 25}, {7, 11},
            {7, 25}, {8, 16}, {8, 26}, {8, 32}, {9, 14}, {9, 24}, {9, 30},
            {10, 13}, {11, 12}, {12, 14}, {12, 23}, {12, 31}, {13, 24},
            {15, 24}, {15, 30}, {15, 33}, {16, 33}, {17, 18}, {17, 20},
            {17, 28}, {18, 25}, {19, 21}, {19, 25}, {19, 31}, {20, 28},
            {21, 27}, {22, 23}, {22, 27}, {22, 35}, {23, 32}, {25, 31},
            {26, 32}, {26, 33}, {27, 34}, {29, 32}, {30, 33}, {31, 35},
            {32, 34}, {25, 35},
        },
    };
}

}  // namespace

std::vector<std::string> topology_names() {
    return {"abilene", "nsfnet", "geant", "att", "internet2", "cost266"};
}

Graph load_topology(std::string_view name) {
    if (name == "abilene") return build(abilene_spec());
    if (name == "nsfnet") return build(nsfnet_spec());
    if (name == "geant") return build(geant_spec());
    if (name == "att") return build(att_spec());
    if (name == "internet2") return build(internet2_spec());
    if (name == "cost266") return build(cost266_spec());
    throw std::invalid_argument("load_topology: unknown topology '" + std::string(name) + "'");
}

}  // namespace vnfr::net
