file(REMOVE_RECURSE
  "CMakeFiles/test_opt.dir/test_opt_bnb.cpp.o"
  "CMakeFiles/test_opt.dir/test_opt_bnb.cpp.o.d"
  "CMakeFiles/test_opt.dir/test_opt_lp.cpp.o"
  "CMakeFiles/test_opt.dir/test_opt_lp.cpp.o.d"
  "CMakeFiles/test_opt.dir/test_opt_presolve.cpp.o"
  "CMakeFiles/test_opt.dir/test_opt_presolve.cpp.o.d"
  "CMakeFiles/test_opt.dir/test_opt_properties.cpp.o"
  "CMakeFiles/test_opt.dir/test_opt_properties.cpp.o.d"
  "CMakeFiles/test_opt.dir/test_opt_simplex.cpp.o"
  "CMakeFiles/test_opt.dir/test_opt_simplex.cpp.o.d"
  "test_opt"
  "test_opt.pdb"
  "test_opt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
