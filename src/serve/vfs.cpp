// The two Vfs implementations: PosixVfs (real syscalls, EINTR-retried,
// RAII-guarded) and FaultyVfs (deterministic in-memory disk + page cache
// with seeded fault injection). This file is the single place in
// src/serve/ where raw storage syscalls are allowed — everything else
// must route through the Vfs interface (tools/vnfr_asa.py rule
// durability-vfs-routing).
#include "serve/vfs.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <thread>

#include "common/rng.hpp"

namespace vnfr::serve {

namespace {

/// Errno values worth a bounded retry: spurious I/O errors and resource
/// pressure that may clear. ENOSPC is deliberately absent — a full disk
/// does not heal on a 50us backoff; callers degrade instead.
bool errno_is_transient(int code) {
    return code == EIO || code == EAGAIN || code == ENOMEM || code == EBUSY;
}

[[noreturn]] void throw_vfs_errno(const std::string& path, const char* op) {
    const int code = errno;
    throw VfsError(path, op, code, errno_is_transient(code));
}

int open_retry(const std::string& path, int flags, mode_t mode) {
    for (;;) {
        const int fd = ::open(path.c_str(), flags, mode);
        if (fd >= 0 || errno != EINTR) return fd;
    }
}

class PosixVfs final : public Vfs {
  public:
    [[nodiscard]] bool file_exists(const std::string& path) override {
        struct stat st{};
        return ::stat(path.c_str(), &st) == 0;
    }

    [[nodiscard]] bool dir_exists(const std::string& path) override {
        struct stat st{};
        return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
    }

    [[nodiscard]] std::string read_file(const std::string& path) override {
        const int raw = open_retry(path, O_RDONLY | O_CLOEXEC, 0);
        if (raw < 0) throw_vfs_errno(path, "open");
        VfsFdGuard fd(*this, raw);
        std::string out;
        char buf[1 << 16];
        for (;;) {
            const ssize_t n = ::read(fd.get(), buf, sizeof buf);
            if (n < 0) {
                if (errno == EINTR) continue;
                throw_vfs_errno(path, "read");
            }
            if (n == 0) break;
            out.append(buf, static_cast<std::size_t>(n));
        }
        return out;
    }

    [[nodiscard]] std::vector<std::string> list_dir(const std::string& dir) override {
        std::vector<std::string> names;
        DIR* handle = ::opendir(dir.c_str());
        if (handle == nullptr) return names;
        while (const dirent* entry = ::readdir(handle)) {
            const std::string name = entry->d_name;
            if (name == "." || name == "..") continue;
            names.push_back(name);
        }
        ::closedir(handle);
        std::sort(names.begin(), names.end());
        return names;
    }

    [[nodiscard]] int create_truncate(const std::string& path) override {
        const int fd =
            open_retry(path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
        if (fd < 0) throw_vfs_errno(path, "create");
        return fd;
    }

    [[nodiscard]] int open_append(const std::string& path) override {
        const int fd = open_retry(path, O_WRONLY | O_APPEND | O_CLOEXEC, 0);
        if (fd < 0) throw_vfs_errno(path, "open for append");
        return fd;
    }

    void write_all(int fd, const std::string& path, std::string_view bytes) override {
        std::size_t done = 0;
        while (done < bytes.size()) {
            const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
            if (n < 0) {
                if (errno == EINTR) continue;
                throw_vfs_errno(path, "write");
            }
            done += static_cast<std::size_t>(n);
        }
    }

    void fsync(int fd, const std::string& path) override {
        while (::fsync(fd) != 0) {
            if (errno == EINTR) continue;
            throw_vfs_errno(path, "fsync");
        }
    }

    void fdatasync(int fd, const std::string& path) override {
        while (::fdatasync(fd) != 0) {
            if (errno == EINTR) continue;
            throw_vfs_errno(path, "fdatasync");
        }
    }

    void ftruncate(int fd, const std::string& path, std::uint64_t size) override {
        while (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
            if (errno == EINTR) continue;
            throw_vfs_errno(path, "ftruncate");
        }
    }

    void close(int fd) noexcept override {
        // Best-effort by contract: callers fsync before relying on the
        // bytes, so a close error carries nothing actionable.
        ::close(fd);
    }

    void rename(const std::string& from, const std::string& to) override {
        if (::rename(from.c_str(), to.c_str()) != 0) {
            throw_vfs_errno(from, "rename");
        }
    }

    void unlink(const std::string& path) override {
        if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
            throw_vfs_errno(path, "unlink");
        }
    }

    void fsync_parent_dir(const std::string& path) override {
        const std::size_t slash = path.find_last_of('/');
        const std::string dir =
            slash == std::string::npos ? "." : path.substr(0, slash);
        const int raw = open_retry(dir, O_RDONLY | O_DIRECTORY | O_CLOEXEC, 0);
        if (raw < 0) throw_vfs_errno(dir, "open directory");
        VfsFdGuard fd(*this, raw);
        while (::fsync(fd.get()) != 0) {
            if (errno == EINTR) continue;
            throw_vfs_errno(dir, "fsync directory");
        }
    }

    void sleep_for_micros(std::uint64_t micros) override {
        std::this_thread::sleep_for(std::chrono::microseconds(micros));
    }
};

/// Directory part of a flat-namespace path ("" for bare names).
std::string parent_of(const std::string& path) {
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

/// Plan draw categories (indices into draw_counts_ / burst_left_).
constexpr std::uint64_t kCatWriteError = 0;
constexpr std::uint64_t kCatSyncError = 1;
constexpr std::uint64_t kCatShortWrite = 2;
constexpr std::uint64_t kCatReadFlip = 3;

}  // namespace

Vfs& posix_vfs() {
    static PosixVfs vfs;
    return vfs;
}

// ---------------------------------------------------------------------------
// FaultyVfs
// ---------------------------------------------------------------------------

FaultyVfs::FaultyVfs(DiskFaultPlan plan) {
    common::MutexLock lock(&vfs_mu_);
    plan_ = plan;
}

void FaultyVfs::count_mutating_op_locked() {
    ++op_count_;
    if (plan_.power_cut_at_op != 0 && op_count_ == plan_.power_cut_at_op) {
        plan_.power_cut_at_op = 0;  // one-shot
        const std::uint64_t at = op_count_;
        apply_power_cut_locked();
        throw PowerLossInjected(at);
    }
}

bool FaultyVfs::draw_locked(std::uint64_t category, double rate) {
    const std::uint64_t counter = draw_counts_[category]++;
    if (rate <= 0.0) return false;
    common::Rng rng = common::stream_rng(
        plan_.seed, (category + 1) * 0x100000000ULL + counter);
    return rng.bernoulli(rate);
}

void FaultyVfs::maybe_fail_locked(VfsOp op, const std::string& path,
                                  const char* op_name) {
    for (ScriptedFault& fault : scripted_) {
        if (fault.op != op || fault.count == 0) continue;
        if (fault.skip > 0) {
            --fault.skip;
            break;  // this op is absorbed by the leading skip window
        }
        if (fault.count > 0) --fault.count;
        ++stats_.injected_errors;
        throw VfsError(path, op_name, fault.error_code, fault.transient);
    }
    const std::uint64_t category = op == VfsOp::kWrite  ? kCatWriteError
                                   : op == VfsOp::kSync ? kCatSyncError
                                                        : ~0ULL;
    if (category == ~0ULL) return;  // plan rates cover writes and syncs only
    if (burst_left_[category] > 0) {
        --burst_left_[category];
        ++stats_.injected_errors;
        throw VfsError(path, op_name, EIO, true);
    }
    const double rate = category == kCatWriteError ? plan_.write_error_rate
                                                   : plan_.sync_error_rate;
    if (draw_locked(category, rate)) {
        burst_left_[category] = plan_.transient_failures - 1;
        ++stats_.injected_errors;
        throw VfsError(path, op_name, EIO, true);
    }
}

std::shared_ptr<FaultyVfs::Inode> FaultyVfs::require_inode_locked(
    const std::string& path, const char* op_name) {
    const auto it = namespace_.find(path);
    if (it == namespace_.end()) {
        throw VfsError(path, op_name, ENOENT, false);
    }
    return it->second;
}

FaultyVfs::OpenFile& FaultyVfs::require_live_fd_locked(int fd,
                                                       const std::string& path,
                                                       const char* op_name) {
    const auto it = fds_.find(fd);
    if (it == fds_.end()) {
        throw VfsError(path, op_name, EBADF, false);
    }
    if (it->second.stale) {
        // The fd belonged to the pre-cut process: its writes can never
        // reach the (rebooted) disk. Persistent by construction.
        throw VfsError(path, op_name, EIO, false);
    }
    return it->second;
}

void FaultyVfs::apply_power_cut_locked() {
    const std::uint64_t cut_index = stats_.power_cuts++;
    // The namespace collapses to its durable view: renames, creations,
    // and unlinks that never saw a directory sync un-happen.
    namespace_ = durable_namespace_;
    common::Rng rng = common::stream_rng(plan_.seed, 0x700000000ULL + cut_index);
    for (const auto& [path, inode] : namespace_) {
        if (plan_.power_cut_keeps_prefix &&
            inode->durable_data.size() < inode->data.size() &&
            inode->data.compare(0, inode->durable_data.size(),
                                inode->durable_data) == 0) {
            // Torn tail: the durable bytes plus a random prefix of the
            // un-synced suffix survived — what an interrupted append
            // leaves behind on a real disk.
            const std::uint64_t suffix =
                inode->data.size() - inode->durable_data.size();
            const std::uint64_t keep = static_cast<std::uint64_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(suffix)));
            inode->data.resize(inode->durable_data.size() + keep);
        } else {
            inode->data = inode->durable_data;
        }
    }
    for (auto& [fd, open_file] : fds_) {
        open_file.stale = true;
    }
}

bool FaultyVfs::file_exists(const std::string& path) {
    common::MutexLock lock(&vfs_mu_);
    return namespace_.count(path) != 0;
}

bool FaultyVfs::dir_exists(const std::string&) {
    // Flat namespace: every directory implicitly exists.
    return true;
}

std::string FaultyVfs::read_file(const std::string& path) {
    common::MutexLock lock(&vfs_mu_);
    ++stats_.reads;
    maybe_fail_locked(VfsOp::kRead, path, "read");
    const std::shared_ptr<Inode> inode = require_inode_locked(path, "open");
    std::string out = inode->data;
    if (!out.empty() && draw_locked(kCatReadFlip, plan_.read_flip_rate)) {
        // One flipped bit in the returned copy only: latent corruption
        // surfacing on read. The stored image is untouched.
        common::Rng rng =
            common::stream_rng(plan_.seed, 0x500000000ULL + stats_.bit_flips);
        const auto byte = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(out.size()) - 1));
        const auto bit = static_cast<int>(rng.uniform_int(0, 7));
        out[byte] = static_cast<char>(static_cast<unsigned char>(out[byte]) ^
                                      (1U << bit));
        ++stats_.bit_flips;
    }
    return out;
}

std::vector<std::string> FaultyVfs::list_dir(const std::string& dir) {
    common::MutexLock lock(&vfs_mu_);
    std::vector<std::string> names;
    for (const auto& [path, inode] : namespace_) {
        if (parent_of(path) != dir) continue;
        const std::size_t slash = path.find_last_of('/');
        names.push_back(slash == std::string::npos ? path
                                                   : path.substr(slash + 1));
    }
    return names;  // std::map iteration: already sorted
}

int FaultyVfs::create_truncate(const std::string& path) {
    common::MutexLock lock(&vfs_mu_);
    ++stats_.creates;
    count_mutating_op_locked();
    maybe_fail_locked(VfsOp::kCreate, path, "create");
    std::shared_ptr<Inode> inode;
    const auto it = namespace_.find(path);
    if (it != namespace_.end()) {
        inode = it->second;
        // O_TRUNC clears the cache view; durable bytes shrink only via a
        // later fsync (an un-synced truncation does not survive a cut).
        inode->data.clear();
    } else {
        inode = std::make_shared<Inode>();
        namespace_[path] = inode;
    }
    const int fd = next_fd_++;
    fds_[fd] = OpenFile{path, std::move(inode), false};
    return fd;
}

int FaultyVfs::open_append(const std::string& path) {
    common::MutexLock lock(&vfs_mu_);
    ++stats_.opens;
    maybe_fail_locked(VfsOp::kOpen, path, "open for append");
    std::shared_ptr<Inode> inode = require_inode_locked(path, "open for append");
    const int fd = next_fd_++;
    fds_[fd] = OpenFile{path, std::move(inode), false};
    return fd;
}

void FaultyVfs::write_all(int fd, const std::string& path, std::string_view bytes) {
    common::MutexLock lock(&vfs_mu_);
    ++stats_.writes;
    count_mutating_op_locked();
    OpenFile& open_file = require_live_fd_locked(fd, path, "write");
    maybe_fail_locked(VfsOp::kWrite, path, "write");
    bool short_write = false;
    if (burst_left_[kCatShortWrite] > 0) {
        --burst_left_[kCatShortWrite];
        short_write = true;
    } else if (draw_locked(kCatShortWrite, plan_.short_write_rate)) {
        burst_left_[kCatShortWrite] = plan_.transient_failures - 1;
        short_write = true;
    }
    if (short_write && !bytes.empty()) {
        // A strict prefix reaches the cache, then the write errors out —
        // the torn shape retry paths must rewind before rewriting.
        common::Rng rng =
            common::stream_rng(plan_.seed, 0x600000000ULL + stats_.short_writes);
        const auto keep = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(bytes.size()) - 1));
        open_file.inode->data.append(bytes.substr(0, keep));
        ++stats_.short_writes;
        ++stats_.injected_errors;
        throw VfsError(path, "write", EIO, true);
    }
    open_file.inode->data.append(bytes);
}

void FaultyVfs::fsync(int fd, const std::string& path) {
    common::MutexLock lock(&vfs_mu_);
    ++stats_.syncs;
    count_mutating_op_locked();
    OpenFile& open_file = require_live_fd_locked(fd, path, "fsync");
    maybe_fail_locked(VfsOp::kSync, path, "fsync");
    open_file.inode->durable_data = open_file.inode->data;
}

void FaultyVfs::fdatasync(int fd, const std::string& path) {
    common::MutexLock lock(&vfs_mu_);
    ++stats_.syncs;
    count_mutating_op_locked();
    OpenFile& open_file = require_live_fd_locked(fd, path, "fdatasync");
    maybe_fail_locked(VfsOp::kSync, path, "fdatasync");
    open_file.inode->durable_data = open_file.inode->data;
}

void FaultyVfs::ftruncate(int fd, const std::string& path, std::uint64_t size) {
    common::MutexLock lock(&vfs_mu_);
    ++stats_.truncates;
    count_mutating_op_locked();
    OpenFile& open_file = require_live_fd_locked(fd, path, "ftruncate");
    maybe_fail_locked(VfsOp::kTruncate, path, "ftruncate");
    open_file.inode->data.resize(size, '\0');
}

void FaultyVfs::close(int fd) noexcept {
    common::MutexLock lock(&vfs_mu_);
    fds_.erase(fd);
}

void FaultyVfs::rename(const std::string& from, const std::string& to) {
    common::MutexLock lock(&vfs_mu_);
    ++stats_.renames;
    count_mutating_op_locked();
    maybe_fail_locked(VfsOp::kRename, from, "rename");
    std::shared_ptr<Inode> inode = require_inode_locked(from, "rename");
    namespace_[to] = std::move(inode);
    if (from != to) namespace_.erase(from);
}

void FaultyVfs::unlink(const std::string& path) {
    common::MutexLock lock(&vfs_mu_);
    ++stats_.unlinks;
    count_mutating_op_locked();
    maybe_fail_locked(VfsOp::kUnlink, path, "unlink");
    namespace_.erase(path);  // missing files are tolerated by contract
}

void FaultyVfs::fsync_parent_dir(const std::string& path) {
    common::MutexLock lock(&vfs_mu_);
    ++stats_.dirsyncs;
    count_mutating_op_locked();
    maybe_fail_locked(VfsOp::kDirSync, path, "fsync directory");
    // The durable view of this directory becomes its cached view: new
    // entries appear, renamed-away and unlinked entries disappear.
    const std::string dir = parent_of(path);
    for (auto it = durable_namespace_.begin(); it != durable_namespace_.end();) {
        if (parent_of(it->first) == dir) {
            it = durable_namespace_.erase(it);
        } else {
            ++it;
        }
    }
    for (const auto& [entry, inode] : namespace_) {
        if (parent_of(entry) == dir) durable_namespace_[entry] = inode;
    }
}

void FaultyVfs::sleep_for_micros(std::uint64_t) {
    common::MutexLock lock(&vfs_mu_);
    ++stats_.sleeps;  // deterministic runs never really sleep
}

void FaultyVfs::set_plan(const DiskFaultPlan& plan) {
    common::MutexLock lock(&vfs_mu_);
    plan_ = plan;
    for (int& burst : burst_left_) burst = 0;
}

void FaultyVfs::script_fault(VfsOp op, std::uint64_t skip, std::int64_t count,
                             int error_code, bool transient) {
    common::MutexLock lock(&vfs_mu_);
    scripted_.push_back(ScriptedFault{op, skip, count, error_code, transient});
}

void FaultyVfs::clear_scripted_faults() {
    common::MutexLock lock(&vfs_mu_);
    scripted_.clear();
}

void FaultyVfs::power_cut() {
    common::MutexLock lock(&vfs_mu_);
    apply_power_cut_locked();
}

void FaultyVfs::corrupt_durable_byte(const std::string& path,
                                     std::uint64_t byte_index, std::uint8_t mask) {
    common::MutexLock lock(&vfs_mu_);
    const auto it = namespace_.find(path);
    if (it == namespace_.end()) {
        throw std::invalid_argument("corrupt_durable_byte: no such file " + path);
    }
    Inode& inode = *it->second;
    if (byte_index >= inode.data.size()) {
        throw std::invalid_argument("corrupt_durable_byte: offset " +
                                    std::to_string(byte_index) + " outside " +
                                    path);
    }
    inode.data[byte_index] = static_cast<char>(
        static_cast<unsigned char>(inode.data[byte_index]) ^ mask);
    if (byte_index < inode.durable_data.size()) {
        inode.durable_data[byte_index] = static_cast<char>(
            static_cast<unsigned char>(inode.durable_data[byte_index]) ^ mask);
    }
}

std::uint64_t FaultyVfs::op_count() const {
    common::MutexLock lock(&vfs_mu_);
    return op_count_;
}

FaultyVfsStats FaultyVfs::stats() const {
    common::MutexLock lock(&vfs_mu_);
    return stats_;
}

}  // namespace vnfr::serve
