#include "serve/replication/ship_transport.hpp"

#include <utility>

#include "serve/wire.hpp"

namespace vnfr::serve::replication {

namespace {

constexpr std::string_view kFrameLabel = "ship frame";
/// Mirrors the WAL's per-record sanity bound; a frame carries at most a
/// group of records, so anything near this is mangled framing.
constexpr std::uint32_t kMaxFramePayload = 1U << 22;

}  // namespace

std::string encode_ship_frame(const ShipFrame& frame) {
    WireWriter w;
    w.put_u8(static_cast<std::uint8_t>(frame.kind));
    w.put_u64(frame.generation);
    w.put_u64(frame.start_offset);
    w.put_u64(frame.record_count);
    w.put_u32(static_cast<std::uint32_t>(frame.payload.size()));
    w.put_bytes(frame.payload);
    WireWriter out;
    out.put_bytes(w.bytes());
    out.put_u32(crc32(w.bytes()));
    return out.bytes();
}

ShipFrame decode_ship_frame(std::string_view bytes) {
    const std::string label(kFrameLabel);
    if (bytes.size() < 4) {
        throw CorruptStateError(label, bytes.size(), "frame shorter than its CRC");
    }
    const std::string_view body = bytes.substr(0, bytes.size() - 4);
    WireReader crc_reader(bytes.substr(bytes.size() - 4), label, bytes.size() - 4);
    const std::uint32_t stored_crc = crc_reader.get_u32("frame CRC");
    if (stored_crc != crc32(body)) {
        throw CorruptStateError(label, bytes.size() - 4, "frame CRC mismatch");
    }
    WireReader r(body, label);
    ShipFrame frame;
    const std::uint8_t kind = r.get_u8("frame kind");
    if (kind != static_cast<std::uint8_t>(ShipFrameKind::kRecords) &&
        kind != static_cast<std::uint8_t>(ShipFrameKind::kRotate)) {
        throw CorruptStateError(label, 0,
                                "unknown ship frame kind " + std::to_string(kind));
    }
    frame.kind = static_cast<ShipFrameKind>(kind);
    frame.generation = r.get_u64("frame generation");
    frame.start_offset = r.get_u64("frame start offset");
    frame.record_count = r.get_u64("frame record count");
    const std::uint32_t payload_len = r.get_u32("frame payload length");
    if (payload_len > kMaxFramePayload) {
        throw CorruptStateError(label, r.offset() - 4,
                                "frame payload length exceeds the sanity bound");
    }
    frame.payload = std::string(r.get_bytes(payload_len, "frame payload"));
    r.require_end("ship frame");
    if (frame.kind == ShipFrameKind::kRotate &&
        (!frame.payload.empty() || frame.record_count != 0)) {
        throw CorruptStateError(label, 0, "rotate frame carries a payload");
    }
    return frame;
}

void ShipTransport::set_fault_plan(const TransportFaultPlan& plan) {
    const common::MutexLock lock(&transport_mu_);
    plan_ = plan;
    fault_rng_.emplace(common::stream_rng(plan.seed, 0xF4A7));
}

bool ShipTransport::try_send(const ShipFrame& frame) {
    const common::MutexLock lock(&transport_mu_);
    if (channel_.size() >= capacity_) {
        ++stats_.sends_rejected_full;
        return false;
    }
    ++stats_.frames_sent;
    std::string bytes = encode_ship_frame(frame);
    // Decide the frame's fate from one uniform draw so the fault mix is
    // exactly the configured probabilities.
    double u = 2.0;  // no plan => no fault
    if (fault_rng_.has_value()) u = fault_rng_->uniform01();
    if (u < plan_.drop) {
        ++stats_.frames_dropped;
        return true;  // accepted, then lost in flight
    }
    u -= plan_.drop;
    if (u < plan_.truncate) {
        ++stats_.frames_truncated;
        const auto cut = static_cast<std::size_t>(
            fault_rng_->uniform_int(1, static_cast<std::int64_t>(bytes.size() - 1)));
        bytes.resize(bytes.size() - cut);
        channel_.push_back(std::move(bytes));
        ++stats_.frames_delivered;
        return true;
    }
    u -= plan_.truncate;
    if (u < plan_.duplicate) {
        ++stats_.frames_duplicated;
        channel_.push_back(bytes);
        channel_.push_back(std::move(bytes));
        stats_.frames_delivered += 2;
        return true;
    }
    u -= plan_.duplicate;
    if (u < plan_.reorder) {
        ++stats_.frames_reordered;
        // Deliver any previously held frame AFTER this one: swap them.
        if (held_back_.has_value()) {
            channel_.push_back(std::move(bytes));
            channel_.push_back(std::move(*held_back_));
            held_back_.reset();
            stats_.frames_delivered += 2;
        } else {
            held_back_ = std::move(bytes);
        }
        return true;
    }
    channel_.push_back(std::move(bytes));
    ++stats_.frames_delivered;
    if (held_back_.has_value()) {
        // The held frame now arrives out of order, behind its successor.
        channel_.push_back(std::move(*held_back_));
        held_back_.reset();
        ++stats_.frames_delivered;
    }
    return true;
}

std::optional<std::string> ShipTransport::try_recv() {
    const common::MutexLock lock(&transport_mu_);
    if (channel_.empty()) {
        if (held_back_.has_value()) {
            // Nothing ever overtook the held frame; flush it late.
            std::string bytes = std::move(*held_back_);
            held_back_.reset();
            ++stats_.frames_delivered;
            return bytes;
        }
        return std::nullopt;
    }
    std::string bytes = std::move(channel_.front());
    channel_.pop_front();
    return bytes;
}

void ShipTransport::send_ack(const ShipAck& ack) {
    const common::MutexLock lock(&transport_mu_);
    ack_ = ack;
    ++stats_.acks_recorded;
}

ShipAck ShipTransport::latest_ack() const {
    const common::MutexLock lock(&transport_mu_);
    return ack_;
}

TransportStats ShipTransport::stats() const {
    const common::MutexLock lock(&transport_mu_);
    return stats_;
}

std::size_t ShipTransport::in_flight() const {
    const common::MutexLock lock(&transport_mu_);
    return channel_.size() + (held_back_.has_value() ? 1 : 0);
}

}  // namespace vnfr::serve::replication
