file(REMOVE_RECURSE
  "CMakeFiles/ablation_sfc_chains.dir/ablation_sfc_chains.cpp.o"
  "CMakeFiles/ablation_sfc_chains.dir/ablation_sfc_chains.cpp.o.d"
  "ablation_sfc_chains"
  "ablation_sfc_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sfc_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
