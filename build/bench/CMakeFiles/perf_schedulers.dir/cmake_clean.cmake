file(REMOVE_RECURSE
  "CMakeFiles/perf_schedulers.dir/perf_schedulers.cpp.o"
  "CMakeFiles/perf_schedulers.dir/perf_schedulers.cpp.o.d"
  "perf_schedulers"
  "perf_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
