#include "sim/failure_model.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "vnf/reliability.hpp"

namespace vnfr::sim {
namespace {

using vnfr::testing::make_request;
using vnfr::testing::small_instance;

TEST(AnalyticAvailability, SingleSiteMatchesEquation2) {
    const auto inst = small_instance({0.99}, 10.0, 5, {make_request(0, 0, 0.9, 0, 2, 5.0)});
    const core::Placement p{RequestId{0}, {core::Site{CloudletId{0}, 3}}};
    EXPECT_NEAR(analytic_availability(inst, inst.requests[0], p),
                vnf::onsite_availability(0.99, 0.95, 3), 1e-12);
}

TEST(AnalyticAvailability, MultiSiteMatchesEquation10) {
    const auto inst = small_instance({0.98, 0.96}, 10.0, 5,
                                     {make_request(0, 0, 0.9, 0, 2, 5.0)});
    const core::Placement p{RequestId{0},
                            {core::Site{CloudletId{0}, 1}, core::Site{CloudletId{1}, 1}}};
    const std::vector<double> rels{0.98, 0.96};
    EXPECT_NEAR(analytic_availability(inst, inst.requests[0], p),
                vnf::offsite_availability(0.95, rels), 1e-12);
}

TEST(AnalyticAvailability, MixedReplicaSites) {
    // 2 replicas at site A + 1 at site B: generalizes both schemes.
    const auto inst = small_instance({0.98, 0.96}, 10.0, 5,
                                     {make_request(0, 0, 0.9, 0, 2, 5.0)});
    const core::Placement p{RequestId{0},
                            {core::Site{CloudletId{0}, 2}, core::Site{CloudletId{1}, 1}}};
    const double site_a = 0.98 * (1.0 - 0.05 * 0.05);
    const double site_b = 0.96 * 0.95;
    EXPECT_NEAR(analytic_availability(inst, inst.requests[0], p),
                1.0 - (1.0 - site_a) * (1.0 - site_b), 1e-12);
}

TEST(AnalyticAvailability, EmptyPlacementIsZero) {
    const auto inst = small_instance({0.98}, 10.0, 5, {make_request(0, 0, 0.9, 0, 2, 5.0)});
    const core::Placement p{RequestId{0}, {}};
    EXPECT_DOUBLE_EQ(analytic_availability(inst, inst.requests[0], p), 0.0);
}

TEST(AnalyticAvailability, RejectsNonPositiveReplicas) {
    const auto inst = small_instance({0.98}, 10.0, 5, {make_request(0, 0, 0.9, 0, 2, 5.0)});
    const core::Placement p{RequestId{0}, {core::Site{CloudletId{0}, 0}}};
    EXPECT_THROW(analytic_availability(inst, inst.requests[0], p), std::invalid_argument);
}

TEST(MonteCarlo, RejectsZeroTrials) {
    const auto inst = small_instance({0.98}, 10.0, 5, {make_request(0, 0, 0.9, 0, 2, 5.0)});
    const core::Placement p{RequestId{0}, {core::Site{CloudletId{0}, 1}}};
    common::Rng rng(1);
    EXPECT_THROW(monte_carlo_availability(inst, inst.requests[0], p, 0, rng),
                 std::invalid_argument);
}

class MonteCarloConvergence : public ::testing::TestWithParam<int> {};

TEST_P(MonteCarloConvergence, MatchesAnalyticWithinTolerance) {
    common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
    // Random placement shape per seed.
    const auto inst = small_instance({0.97, 0.95, 0.93}, 10.0, 5,
                                     {make_request(0, 1, 0.9, 0, 2, 5.0)});
    core::Placement p{RequestId{0}, {}};
    const int sites = static_cast<int>(rng.uniform_int(1, 3));
    for (int s = 0; s < sites; ++s) {
        p.sites.push_back(core::Site{CloudletId{s}, static_cast<int>(rng.uniform_int(1, 3))});
    }
    const double analytic = analytic_availability(inst, inst.requests[0], p);
    const double empirical =
        monte_carlo_availability(inst, inst.requests[0], p, 60000, rng);
    // 60k trials: 99.9% CI half-width is about 3.3 * sqrt(p(1-p)/n) < 0.007.
    EXPECT_NEAR(empirical, analytic, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonteCarloConvergence, ::testing::Range(0, 6));

TEST(SampleServed, DeterministicGivenSeed) {
    const auto inst = small_instance({0.5}, 10.0, 5, {make_request(0, 0, 0.9, 0, 2, 5.0)});
    const core::Placement p{RequestId{0}, {core::Site{CloudletId{0}, 1}}};
    common::Rng a(99);
    common::Rng b(99);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(sample_served(inst, inst.requests[0], p, a),
                  sample_served(inst, inst.requests[0], p, b));
    }
}

}  // namespace
}  // namespace vnfr::sim
