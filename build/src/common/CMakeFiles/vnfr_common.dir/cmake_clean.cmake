file(REMOVE_RECURSE
  "CMakeFiles/vnfr_common.dir/logging.cpp.o"
  "CMakeFiles/vnfr_common.dir/logging.cpp.o.d"
  "CMakeFiles/vnfr_common.dir/math.cpp.o"
  "CMakeFiles/vnfr_common.dir/math.cpp.o.d"
  "CMakeFiles/vnfr_common.dir/rng.cpp.o"
  "CMakeFiles/vnfr_common.dir/rng.cpp.o.d"
  "CMakeFiles/vnfr_common.dir/stats.cpp.o"
  "CMakeFiles/vnfr_common.dir/stats.cpp.o.d"
  "libvnfr_common.a"
  "libvnfr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
