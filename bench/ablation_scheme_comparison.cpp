// Ablation: on-site vs off-site on identical workloads.
//
// The paper motivates the two schemes qualitatively (Section I): on-site
// gives fast local failover but is capped by the cloudlet's own
// reliability; off-site survives cloudlet failures at the cost of
// inter-cloudlet traffic. This bench quantifies the trade-off: revenue,
// compute consumed per admitted request, delivered availability (analytic
// and failure-injected), and mean backup hop distance.
#include <iostream>

#include "bench_common.hpp"
#include "core/hybrid_primal_dual.hpp"
#include "core/offsite_primal_dual.hpp"
#include "core/onsite_primal_dual.hpp"
#include "report/table.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"

using namespace vnfr;

int main() {
    const std::size_t requests = bench::quick_mode() ? 200 : 500;
    const std::size_t seeds = bench::quick_mode() ? 2 : 5;

    std::cout << "== Ablation: on-site vs off-site backup schemes ==\n\n";

    struct Row {
        common::RunningStats revenue;
        common::RunningStats accepted;
        common::RunningStats compute_per_request;
        common::RunningStats availability;
        common::RunningStats empirical;
        common::RunningStats backup_hops;
    };
    Row onsite_row;
    Row offsite_row;
    Row hybrid_row;
    common::RunningStats hybrid_onsite_share;

    const std::uint64_t master = bench::scenario_seed("ablation-scheme-comparison", 0);
    for (std::size_t s = 0; s < seeds; ++s) {
        common::Rng rng = common::stream_rng(master, s);
        const core::Instance inst =
            core::make_instance(bench::paper_environment(requests), rng);

        const auto measure = [&](core::OnlineScheduler& scheduler, Row& row) {
            sim::SimulatorConfig sim_cfg;
            sim_cfg.inject_failures = true;
            sim_cfg.failure_seed = common::stream_seed(master, 1000 + s);
            const sim::SimulationReport report = sim::simulate(inst, scheduler, sim_cfg);
            const sim::PlacementStats stats =
                sim::placement_stats(inst, report.schedule.decisions);
            row.revenue.add(report.schedule.revenue);
            row.accepted.add(static_cast<double>(report.schedule.admitted));
            // Compute units reserved per admitted request (replicas x c(f) x
            // duration), normalized per request.
            double units = 0.0;
            for (std::size_t i = 0; i < report.schedule.decisions.size(); ++i) {
                const core::Decision& d = report.schedule.decisions[i];
                if (!d.admitted) continue;
                units += d.placement.compute_per_slot(
                             inst.catalog.compute_units(inst.requests[i].vnf)) *
                         inst.requests[i].duration;
            }
            if (report.schedule.admitted > 0) {
                row.compute_per_request.add(units /
                                            static_cast<double>(report.schedule.admitted));
            }
            row.availability.add(stats.mean_availability);
            row.empirical.add(report.empirical_availability());
            row.backup_hops.add(stats.mean_pairwise_hops);
        };

        core::OnsitePrimalDual onsite(inst);
        measure(onsite, onsite_row);
        core::OffsitePrimalDual offsite(inst);
        measure(offsite, offsite_row);
        core::HybridPrimalDual hybrid(inst);
        measure(hybrid, hybrid_row);
        const double total = static_cast<double>(hybrid.onsite_admissions() +
                                                 hybrid.offsite_admissions());
        if (total > 0) {
            hybrid_onsite_share.add(
                static_cast<double>(hybrid.onsite_admissions()) / total);
        }
    }

    report::Table table(
        {"metric", "on-site (Alg 1)", "off-site (Alg 2)", "hybrid (extension)"});
    const auto add = [&](const char* name, const common::RunningStats& a,
                         const common::RunningStats& b, const common::RunningStats& c,
                         int precision) {
        table.add_row({name, report::format_mean_ci(a.mean(), a.ci95_halfwidth(), precision),
                       report::format_mean_ci(b.mean(), b.ci95_halfwidth(), precision),
                       report::format_mean_ci(c.mean(), c.ci95_halfwidth(), precision)});
    };
    add("revenue", onsite_row.revenue, offsite_row.revenue, hybrid_row.revenue, 1);
    add("accepted requests", onsite_row.accepted, offsite_row.accepted, hybrid_row.accepted,
        1);
    add("compute units / request", onsite_row.compute_per_request,
        offsite_row.compute_per_request, hybrid_row.compute_per_request, 2);
    add("analytic availability", onsite_row.availability, offsite_row.availability,
        hybrid_row.availability, 4);
    add("empirical availability", onsite_row.empirical, offsite_row.empirical,
        hybrid_row.empirical, 4);
    add("mean backup hop distance", onsite_row.backup_hops, offsite_row.backup_hops,
        hybrid_row.backup_hops, 2);
    std::cout << table.to_text() << "\nhybrid on-site admission share: "
              << report::format_mean_ci(hybrid_onsite_share.mean() * 100.0,
                                        hybrid_onsite_share.ci95_halfwidth() * 100.0, 1)
              << "%\n"
              << "\non-site places all replicas in one cloudlet (0 backup hops, capped by\n"
                 "r(c)); off-site spreads instances across APs and pays the hop cost; the\n"
                 "hybrid extension picks per request whichever is cheaper at current "
                 "prices.\n";
    return 0;
}
