#include "serve/snapshot.hpp"

#include <cmath>
#include <limits>

#include "serve/vfs.hpp"

namespace vnfr::serve {

namespace {

constexpr std::string_view kMagic = "VNFRSNP1";

/// Upper bound on element counts decoded from length fields, so a fuzzed
/// length cannot drive a multi-gigabyte allocation before the CRC check
/// (the CRC runs first; this is belt-and-braces against crafted files
/// whose CRC happens to pass).
constexpr std::uint64_t kMaxElements = 1ULL << 28;

void check_count(const WireReader& reader, std::uint64_t count, const char* what) {
    if (count > kMaxElements) {
        throw CorruptStateError("snapshot", reader.offset(),
                                std::string(what) + " count " + std::to_string(count) +
                                    " exceeds the sanity bound");
    }
}

}  // namespace

std::string encode_snapshot(const ControllerSnapshot& snap) {
    WireWriter w;
    w.put_bytes(kMagic);
    w.put_u32(kSnapshotVersion);
    w.put_u8(snap.scheme);
    w.put_u64(snap.config_digest);
    w.put_u64(snap.cloudlets);
    w.put_u64(snap.horizon);
    w.put_u64(snap.wal_seq);
    w.put_u64(snap.metrics.processed);
    w.put_u64(snap.metrics.admitted);
    w.put_u64(snap.metrics.rejected);
    w.put_u64(snap.metrics.shed);
    w.put_f64(snap.metrics.revenue);
    w.put_f64(snap.metrics.shed_revenue);
    for (const auto& row : snap.lambda) {
        for (const double v : row) w.put_f64(v);
    }
    for (const double v : snap.usage) w.put_f64(v);
    w.put_u64(snap.covered_watermark);
    w.put_u64(snap.covered_sparse.size());
    for (const std::uint64_t s : snap.covered_sparse) w.put_u64(s);
    w.put_u64(snap.admitted.size());
    for (const AdmittedRecord& rec : snap.admitted) {
        w.put_u64(rec.seq);
        w.put_i64(rec.request_id);
        w.put_f64(rec.payment);
        w.put_u32(static_cast<std::uint32_t>(rec.sites.size()));
        for (const auto& [cloudlet, replicas] : rec.sites) {
            w.put_i64(cloudlet);
            w.put_i64(replicas);
        }
    }
    WireWriter out;
    out.put_bytes(w.bytes());
    out.put_u32(crc32(w.bytes()));
    return out.bytes();
}

ControllerSnapshot decode_snapshot(std::string_view bytes, const std::string& label) {
    // Header + CRC trailer must at least fit before anything is parsed.
    if (bytes.size() < kMagic.size() + 4 + 4) {
        throw CorruptStateError(label, bytes.size(),
                                "file too short to hold a snapshot header");
    }
    WireReader header(bytes, label);
    if (header.get_bytes(kMagic.size(), "magic") != kMagic) {
        throw CorruptStateError(label, 0, "bad magic (not a VNFR snapshot)");
    }
    const std::uint32_t version = header.get_u32("version");
    if (version != kSnapshotVersion) {
        throw CorruptStateError(label, kMagic.size(),
                                "unsupported snapshot version " + std::to_string(version) +
                                    " (expected " + std::to_string(kSnapshotVersion) + ")");
    }
    // CRC covers everything before the 4-byte trailer.
    const std::string_view body = bytes.substr(0, bytes.size() - 4);
    WireReader trailer(bytes.substr(bytes.size() - 4), label, bytes.size() - 4);
    const std::uint32_t stored_crc = trailer.get_u32("crc trailer");
    const std::uint32_t actual_crc = crc32(body);
    if (stored_crc != actual_crc) {
        throw CorruptStateError(label, bytes.size() - 4, "CRC mismatch: file corrupt");
    }

    WireReader r(body.substr(kMagic.size() + 4), label, kMagic.size() + 4);
    ControllerSnapshot snap;
    snap.scheme = r.get_u8("scheme");
    if (snap.scheme > 1) {
        throw CorruptStateError(label, r.offset() - 1,
                                "scheme byte " + std::to_string(snap.scheme) +
                                    " is neither onsite (0) nor offsite (1)");
    }
    snap.config_digest = r.get_u64("config digest");
    snap.cloudlets = r.get_u64("cloudlet count");
    snap.horizon = r.get_u64("horizon");
    check_count(r, snap.cloudlets, "cloudlet");
    check_count(r, snap.horizon, "horizon slot");
    check_count(r, snap.cloudlets * snap.horizon, "state cell");
    snap.wal_seq = r.get_u64("wal generation");
    snap.metrics.processed = r.get_u64("processed counter");
    snap.metrics.admitted = r.get_u64("admitted counter");
    snap.metrics.rejected = r.get_u64("rejected counter");
    snap.metrics.shed = r.get_u64("shed counter");
    if (snap.metrics.admitted + snap.metrics.rejected != snap.metrics.processed) {
        throw CorruptStateError(label, r.offset(),
                                "admitted + rejected != processed counters");
    }
    snap.metrics.revenue = r.get_f64("revenue");
    snap.metrics.shed_revenue = r.get_f64("shed revenue");
    if (!std::isfinite(snap.metrics.revenue) || !std::isfinite(snap.metrics.shed_revenue)) {
        throw CorruptStateError(label, r.offset(), "non-finite revenue counter");
    }
    snap.lambda.assign(snap.cloudlets, {});
    for (auto& row : snap.lambda) {
        row.resize(snap.horizon);
        for (double& v : row) {
            v = r.get_f64("lambda cell");
            if (!std::isfinite(v) || v < 0.0) {
                throw CorruptStateError(label, r.offset() - 8,
                                        "lambda cell is not finite and non-negative");
            }
        }
    }
    snap.usage.resize(snap.cloudlets * snap.horizon);
    for (double& v : snap.usage) {
        v = r.get_f64("usage cell");
        if (!std::isfinite(v) || v < 0.0) {
            throw CorruptStateError(label, r.offset() - 8,
                                    "usage cell is not finite and non-negative");
        }
    }
    snap.covered_watermark = r.get_u64("covered watermark");
    const std::uint64_t sparse_count = r.get_u64("sparse covered count");
    check_count(r, sparse_count, "sparse covered seq");
    snap.covered_sparse.resize(sparse_count);
    std::uint64_t prev = 0;
    bool first = true;
    for (std::uint64_t& s : snap.covered_sparse) {
        s = r.get_u64("sparse covered seq");
        // Invariant: the watermark seq itself is uncovered, so every sparse
        // entry lies strictly above it, in strictly ascending order.
        if (s <= snap.covered_watermark) {
            throw CorruptStateError(label, r.offset() - 8,
                                    "sparse covered seq at or below the watermark");
        }
        if (!first && s <= prev) {
            throw CorruptStateError(label, r.offset() - 8,
                                    "sparse covered seqs not strictly ascending");
        }
        prev = s;
        first = false;
    }
    const std::uint64_t admitted_count = r.get_u64("admitted record count");
    check_count(r, admitted_count, "admitted record");
    if (admitted_count != snap.metrics.admitted) {
        throw CorruptStateError(label, r.offset() - 8,
                                "admitted record count disagrees with the admitted "
                                "counter");
    }
    snap.admitted.resize(admitted_count);
    for (AdmittedRecord& rec : snap.admitted) {
        rec.seq = r.get_u64("admitted seq");
        rec.request_id = r.get_i64("admitted request id");
        rec.payment = r.get_f64("admitted payment");
        if (!std::isfinite(rec.payment) || rec.payment < 0.0) {
            throw CorruptStateError(label, r.offset() - 8,
                                    "admitted payment is not finite and non-negative");
        }
        const std::uint32_t site_count = r.get_u32("site count");
        check_count(r, site_count, "site");
        rec.sites.resize(site_count);
        for (auto& [cloudlet, replicas] : rec.sites) {
            cloudlet = r.get_i64("site cloudlet");
            replicas = r.get_i64("site replicas");
            if (cloudlet < 0 || static_cast<std::uint64_t>(cloudlet) >= snap.cloudlets) {
                throw CorruptStateError(label, r.offset() - 16,
                                        "site cloudlet id out of range");
            }
            if (replicas < 1) {
                throw CorruptStateError(label, r.offset() - 8,
                                        "site replica count below 1");
            }
        }
    }
    r.require_end("snapshot payload");
    return snap;
}

void save_snapshot(Vfs& vfs, const std::string& path,
                   const ControllerSnapshot& snap,
                   const StorageRetryPolicy& retry,
                   std::uint64_t* transient_retries) {
    const std::string bytes = encode_snapshot(snap);
    with_storage_retries(
        vfs, retry, [&] { atomic_write_file(vfs, path, bytes); },
        transient_retries);
}

void save_snapshot(const std::string& path, const ControllerSnapshot& snap) {
    save_snapshot(posix_vfs(), path, snap, StorageRetryPolicy{});
}

ControllerSnapshot load_snapshot(Vfs& vfs, const std::string& path) {
    return decode_snapshot(read_file(vfs, path), path);
}

ControllerSnapshot load_snapshot(const std::string& path) {
    return load_snapshot(posix_vfs(), path);
}

}  // namespace vnfr::serve
