// expect: namespace
// Positive fixture for the vnfr-lint rules (this file deliberately never
// opens the repo namespace, so the finding lands on line 1).
#include <cmath>

using namespace std;  // expect: using-std

static double availability_product(double a, double b) {
    double product = a * b;
    if (product == 1.0) {  // expect: float-eq
        return 1.0;
    }
    double penalty = std::log(product);  // expect: math-domain
    if (a == b) {  // expect: float-eq
        penalty += 0.5;
    }
    // A malformed (unjustified) suppression is a finding itself and
    // provides no coverage for the line below it.
    // vnfr-lint: allow(float-eq) // expect: suppression-format
    if (product == 0.0) {  // expect: float-eq
        return penalty;
    }
    if (penalty != 1.0) {  // vnfr-lint: allow(no-such-rule) unknown rule ids are rejected // expect: float-eq, suppression-format
        penalty -= 1.0;
    }
    return penalty;
}
