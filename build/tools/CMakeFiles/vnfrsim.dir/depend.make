# Empty dependencies file for vnfrsim.
# This may be replaced when dependencies are built.
