#include "serve/shard_plan.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/contracts.hpp"

namespace vnfr::serve {

ShardPlan::ShardPlan(std::size_t shards, TimeSlot horizon) : horizon_(horizon) {
    if (shards == 0) {
        throw std::invalid_argument("ShardPlan: shards must be >= 1");
    }
    if (horizon <= 0) {
        throw std::invalid_argument("ShardPlan: horizon must be positive");
    }
    // More bands than slots would leave some bands empty; clamping keeps
    // band_of a surjection and the wave planner free of degenerate bands.
    shards_ = std::min(shards, static_cast<std::size_t>(horizon));
}

std::size_t ShardPlan::band_of(TimeSlot t) const {
    VNFR_DCHECK(t >= 0 && t < horizon_, "slot ", t, " outside horizon ", horizon_);
    const auto slot = static_cast<std::size_t>(std::clamp<TimeSlot>(t, 0, horizon_ - 1));
    return slot * shards_ / static_cast<std::size_t>(horizon_);
}

ShardPlan::BandRange ShardPlan::bands(const workload::Request& request) const {
    BandRange range;
    range.first = band_of(request.arrival);
    // end() is one past the last occupied slot; the last band is the one
    // owning slot end() - 1 (duration >= 1 guarantees it exists).
    range.last = band_of(std::min<TimeSlot>(request.end(), horizon_) - 1);
    VNFR_DCHECK(range.first <= range.last, "inverted band range for request ",
                request.id.value);
    return range;
}

std::vector<std::vector<std::size_t>> build_waves(
    const ShardPlan& plan, const std::vector<workload::Request>& batch) {
    // Greedy list scheduling in stream order: request i runs one wave
    // after the latest wave of any band it touches. Same-band requests
    // keep their order (each bumps next_free past itself); disjoint
    // requests pack into the same wave.
    std::vector<std::size_t> next_free(plan.shard_count(), 0);
    std::vector<std::vector<std::size_t>> waves;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const ShardPlan::BandRange range = plan.bands(batch[i]);
        std::size_t wave = 0;
        for (std::size_t b = range.first; b <= range.last; ++b) {
            wave = std::max(wave, next_free[b]);
        }
        for (std::size_t b = range.first; b <= range.last; ++b) {
            next_free[b] = wave + 1;
        }
        if (wave == waves.size()) waves.emplace_back();
        VNFR_DCHECK(wave < waves.size(), "wave index skipped a level");
        waves[wave].push_back(i);
    }
    return waves;
}

}  // namespace vnfr::serve
