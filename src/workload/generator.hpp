// Synthetic request workload generation.
//
// The paper generates requests randomly with parameters shaped by the
// Google cluster data [19] and sweeps two ratios in Section VI:
//   H = pr_max / pr_min  — spread of request payment *rates*, where a
//       request's payment is pay_i = pr_i * d_i * c(f_i) * R_i,
//   K = rc_max / rc_min  — spread of cloudlet reliabilities (consumed by
//       the MEC builder, exposed here for symmetric sweep configuration).
//
// Since the original trace is not redistributable, the generator offers a
// uniform profile and a Google-cluster-like profile (Poisson arrivals,
// bounded-Pareto heavy-tailed durations); both are fully seeded.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "vnf/catalog.hpp"
#include "workload/request.hpp"

namespace vnfr::workload {

enum class ArrivalProcess {
    kUniform, ///< arrival slot uniform over the feasible range
    kPoisson, ///< slot-by-slot Poisson arrivals at a rate matching `count`
    /// Poisson arrivals with a sinusoidal day-shaped rate (quiet at the
    /// horizon edges, peak mid-horizon) — MEC user populations follow
    /// strong diurnal cycles. `diurnal_amplitude` sets the modulation.
    kDiurnal,
};

enum class DurationDistribution {
    kUniformInt,    ///< uniform integer in [duration_min, duration_max]
    kBoundedPareto, ///< heavy-tailed on [duration_min, duration_max]
};

struct GeneratorConfig {
    TimeSlot horizon{50};
    std::size_t count{200};

    ArrivalProcess arrivals{ArrivalProcess::kUniform};
    DurationDistribution durations{DurationDistribution::kUniformInt};

    TimeSlot duration_min{1};
    TimeSlot duration_max{10};
    double pareto_alpha{1.5};       ///< shape for kBoundedPareto
    double diurnal_amplitude{0.8};  ///< in [0, 1], for kDiurnal arrivals

    double requirement_min{0.90};
    double requirement_max{0.99};

    /// Payment-rate interval [pr_min, pr_max]; H = pr_max / pr_min.
    double payment_rate_min{1.0};
    double payment_rate_max{5.0};

    /// Apply `H` by fixing pr_max and setting pr_min = pr_max / H
    /// (the paper's sweep protocol for Fig. 2(a)).
    void set_payment_ratio(double h);
};

/// A Google-cluster-like preset: Poisson arrivals, bounded-Pareto durations.
GeneratorConfig google_cluster_like(TimeSlot horizon, std::size_t count);

/// Generates `config.count` requests sorted by arrival slot (FIFO ties by
/// id), every one satisfying fits_horizon(config.horizon).
/// Throws std::invalid_argument on inconsistent configuration or an empty
/// catalog.
std::vector<Request> generate(const GeneratorConfig& config, const vnf::Catalog& catalog,
                              common::Rng& rng);

/// The payment rate pr_i = pay_i / (d_i * c(f_i) * R_i) of a request, as
/// defined in Section VI.A. Needs the catalog for c(f_i).
double payment_rate(const Request& r, const vnf::Catalog& catalog);

}  // namespace vnfr::workload
