#!/usr/bin/env python3
"""Gate a bench JSON report against a committed baseline.

Usage: check_bench_regression.py <measured.json> <baseline.json>

The baseline file declares which top-level numeric metrics of the bench
report are gated and the floor each must stay above:

    {
      "bench": "serve_throughput",
      "tolerance": 0.8,
      "metrics": {"group_commit_speedup": 5.0, ...},
      "require": ["all_gates_passed", ...]
    }

A metric regresses when measured < tolerance * baseline — i.e. with the
default tolerance 0.8, a drop of more than 20% versus the committed
baseline fails the gate. Keys in `require` must be present and truthy in
the report (pass/fail flags the bench computed itself).

Exit status: 0 when every gate holds, 1 otherwise (or on malformed
input). Prints one line per gate so CI logs show the margins.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def fail(message: str) -> "int":
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 1
    measured_path, baseline_path = Path(argv[1]), Path(argv[2])
    try:
        measured = json.loads(measured_path.read_text())
        baseline = json.loads(baseline_path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        return fail(f"cannot load reports: {err}")

    if measured.get("bench") != baseline.get("bench"):
        return fail(
            f"bench mismatch: report is {measured.get('bench')!r}, "
            f"baseline is {baseline.get('bench')!r}"
        )

    tolerance = float(baseline.get("tolerance", 0.8))
    if not 0.0 < tolerance <= 1.0:
        return fail(f"baseline tolerance {tolerance} outside (0, 1]")

    ok = True
    metrics = baseline.get("metrics", {})
    if not metrics:
        return fail("baseline declares no gated metrics")
    for key, floor in sorted(metrics.items()):
        value = measured.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            print(f"MISSING {key}: not a number in {measured_path.name}")
            ok = False
            continue
        threshold = tolerance * float(floor)
        verdict = "ok" if value >= threshold else "REGRESSED"
        print(
            f"{verdict:>9}  {key}: {value:.1f} "
            f"(baseline {float(floor):.1f}, floor {threshold:.1f})"
        )
        if value < threshold:
            ok = False

    for key in baseline.get("require", []):
        value = measured.get(key)
        verdict = "ok" if bool(value) and value is not None else "REGRESSED"
        print(f"{verdict:>9}  {key}: {value!r} (required truthy)")
        if not value:
            ok = False

    if not ok:
        return fail(f"{measured_path.name} regressed versus {baseline_path.name}")
    print(f"PASS: {measured_path.name} within {100 * (1 - tolerance):.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
