// Shared plumbing for the chaos harnesses (chaos_study and the failover
// study): scratch-directory hygiene, the deterministic drive pattern, and
// the baseline-equivalence predicates every trial is gated on. Header-only
// so both studies compare runs with literally the same code.
#pragma once

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "serve/admission_controller.hpp"
#include "serve/vfs.hpp"

namespace vnfr::serve::chaos {

/// Creates `path` if needed and removes any controller state files left
/// by a previous run, so every trial starts from a virgin directory.
inline void fresh_state_dir(const std::string& path) {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
        throw std::invalid_argument("chaos study: cannot create state dir " + path);
    }
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) {
        throw std::invalid_argument("chaos study: cannot open state dir " + path);
    }
    std::vector<std::string> doomed;
    while (const dirent* entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name.starts_with("wal-") || name.starts_with("snapshot.bin")) {
            doomed.push_back(path + "/" + name);
        }
    }
    ::closedir(dir);
    for (const std::string& file : doomed) posix_vfs().unlink(file);
}

/// The WAL file in `path` with the highest generation number (the live
/// one under rotation — with retention enabled older generations linger),
/// or empty when none exists yet.
inline std::string newest_wal_file(const std::string& path) {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) return {};
    std::string found;
    std::uint64_t best_gen = 0;
    while (const dirent* entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (!name.starts_with("wal-") || !name.ends_with(".log")) continue;
        const std::string digits = name.substr(4, name.size() - 8);
        std::uint64_t gen = 0;
        bool numeric = !digits.empty();
        for (const char c : digits) {
            if (c < '0' || c > '9') {
                numeric = false;
                break;
            }
            gen = gen * 10 + static_cast<std::uint64_t>(c - '0');
        }
        if (!numeric) continue;
        if (found.empty() || gen > best_gen) {
            best_gen = gen;
            found = path + "/" + name;
        }
    }
    ::closedir(dir);
    return found;
}

inline std::uint64_t file_size(const std::string& path) {
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) return 0;
    return static_cast<std::uint64_t>(st.st_size);
}

/// Progress markers the driver updates as it goes, so a CrashInjected
/// unwind tells the recovery path exactly where the stream stood.
struct DriveProgress {
    std::size_t submitted{0};  ///< completed submit() calls
    bool in_drain{false};      ///< the crash interrupted a drain
};

/// Drives `requests[start..N)` into the controller with the studies'
/// deterministic pattern: drain after every `drain_every`-th submit
/// (position-based, so interrupted and resumed runs fire the same
/// drains), plus a final drain. When `refire_drain` is set, an
/// interrupted drain is completed first — before any new submissions —
/// which restores the exact decision order of the uninterrupted run.
/// `tick` (when set) runs after every submit/drain step; the failover
/// study uses it to pump replication at a configurable cadence.
template <typename Tick>
void drive_with_tick(AdmissionController& controller,
                     const std::vector<workload::Request>& requests,
                     std::size_t start, bool refire_drain,
                     std::size_t drain_every, DriveProgress& progress,
                     Tick&& tick) {
    progress.submitted = start;
    if (refire_drain) {
        progress.in_drain = true;
        controller.drain();
        progress.in_drain = false;
        tick();
    }
    for (std::size_t i = start; i < requests.size(); ++i) {
        progress.submitted = i;
        progress.in_drain = false;
        controller.submit(i, requests[i]);
        progress.submitted = i + 1;
        tick();
        if ((i + 1) % drain_every == 0) {
            progress.in_drain = true;
            controller.drain();
            progress.in_drain = false;
            tick();
        }
    }
    progress.in_drain = true;
    controller.drain();
    progress.in_drain = false;
    tick();
}

inline void drive(AdmissionController& controller,
                  const std::vector<workload::Request>& requests,
                  std::size_t start, bool refire_drain, std::size_t drain_every,
                  DriveProgress& progress) {
    drive_with_tick(controller, requests, start, refire_drain, drain_every,
                    progress, [] {});
}

/// Re-submits every not-yet-durable request below `through` (normal
/// submit path: covered seqs skip, shedding logic stays active), exactly
/// reconstructing the crash-time queue.
inline void rebuild_queue(AdmissionController& controller,
                          const std::vector<workload::Request>& requests,
                          std::size_t through) {
    for (std::uint64_t i = controller.resume_cursor(); i < through; ++i) {
        controller.submit(i, requests[static_cast<std::size_t>(i)]);
    }
}

/// Assembles a per-request decision vector from the controller's durable
/// admitted ledger (everything else default-rejected) for independent
/// verification.
inline std::vector<core::Decision> assemble_decisions(
    const core::Instance& instance, const AdmissionController& controller) {
    std::vector<core::Decision> decisions(instance.requests.size());
    for (const AdmittedRecord& rec : controller.admitted_records()) {
        if (rec.seq >= decisions.size()) continue;  // caught by admitted_match
        core::Decision& d = decisions[static_cast<std::size_t>(rec.seq)];
        d.admitted = true;
        d.placement.request = instance.requests[static_cast<std::size_t>(rec.seq)].id;
        for (const auto& [cloudlet, replicas] : rec.sites) {
            d.placement.sites.push_back(
                core::Site{CloudletId{cloudlet}, static_cast<int>(replicas)});
        }
    }
    return decisions;
}

inline bool same_admitted(const std::vector<AdmittedRecord>& a,
                          const std::vector<AdmittedRecord>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].seq != b[i].seq || a[i].request_id != b[i].request_id ||
            a[i].payment != b[i].payment || a[i].sites != b[i].sites) {
            return false;
        }
    }
    return true;
}

inline bool unique_admitted(const std::vector<AdmittedRecord>& records) {
    std::set<std::uint64_t> seqs;
    std::set<std::int64_t> ids;
    for (const AdmittedRecord& rec : records) {
        if (!seqs.insert(rec.seq).second) return false;
        if (!ids.insert(rec.request_id).second) return false;
    }
    return true;
}

inline bool metrics_equal(const ServeMetrics& a, const ServeMetrics& b) {
    return a.processed == b.processed && a.admitted == b.admitted &&
           a.rejected == b.rejected && a.shed == b.shed;
}

}  // namespace vnfr::serve::chaos
