// Golden regression over the figure trends: tiny fixed-seed sweeps in the
// golden_environment, diffed against committed CSV baselines. Because the
// experiment engine is deterministic by construction (counter-based RNG
// streams, thread-count-invariant reduction), the values should reproduce
// to the last bit on one platform; the comparison still allows a small
// relative tolerance so a different libm/compiler does not turn an
// ulp-level difference in a transcendental into a red build.
//
// Regenerate after an intentional behavior change with
//   VNFR_UPDATE_GOLDENS=1 ./build/tests/test_golden_regression
// and commit the rewritten files under tests/golden/.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/scenarios.hpp"

#ifndef VNFR_GOLDEN_DIR
#error "VNFR_GOLDEN_DIR must point at tests/golden"
#endif

namespace vnfr::sim {
namespace {

/// Values are compared as |got - want| <= kRelTol * max(1, |want|).
constexpr double kRelTol = 1e-6;

struct GoldenRow {
    std::string param;      ///< sweep coordinate, e.g. "n=40" or "K=1.05"
    std::string algorithm;
    double revenue{0};
    double acceptance{0};
    double admitted{0};
    double availability{0};
};

std::string row_key(const GoldenRow& row) { return row.param + "/" + row.algorithm; }

std::vector<GoldenRow> run_sweep_point(const core::InstanceConfig& config,
                                       const std::string& param,
                                       std::uint64_t base_seed) {
    ExperimentConfig cfg;
    cfg.algorithms = {Algorithm::kOnsitePrimalDual, Algorithm::kOnsiteGreedy,
                      Algorithm::kOffsitePrimalDual, Algorithm::kOffsiteGreedy};
    cfg.seeds = 3;
    cfg.base_seed = base_seed;
    const ExperimentOutcome out = run_experiment(make_config_factory(config), cfg);

    std::vector<GoldenRow> rows;
    for (const AlgorithmOutcome& a : out.per_algorithm) {
        GoldenRow row;
        row.param = param;
        row.algorithm = std::string(algorithm_name(a.algorithm));
        row.revenue = a.revenue.mean();
        row.acceptance = a.acceptance.mean();
        row.admitted = a.admitted.mean();
        row.availability = a.availability.mean();
        rows.push_back(row);
    }
    return rows;
}

/// fig1a/fig1b trend, shrunk: revenue and acceptance versus request count.
std::vector<GoldenRow> fig1a_small_rows() {
    std::vector<GoldenRow> rows;
    for (const std::size_t n : {std::size_t{40}, std::size_t{80}}) {
        const auto point = run_sweep_point(golden_environment(n), "n=" + std::to_string(n),
                                           common::stream_seed(0x601d, n));
        rows.insert(rows.end(), point.begin(), point.end());
    }
    return rows;
}

/// fig2b trend, shrunk: the reliability-ratio sweep K = rc_max / rc_min.
std::vector<GoldenRow> fig2b_small_rows() {
    const double sweep[] = {1.001, 1.05};
    std::vector<GoldenRow> rows;
    for (std::size_t i = 0; i < std::size(sweep); ++i) {
        core::InstanceConfig config = golden_environment(60);
        config.set_reliability_ratio(sweep[i]);
        std::ostringstream param;
        param << "K=" << sweep[i];
        const auto point =
            run_sweep_point(config, param.str(), common::stream_seed(0x601d2b, i));
        rows.insert(rows.end(), point.begin(), point.end());
    }
    return rows;
}

void write_golden(const std::string& path, const std::vector<GoldenRow>& rows) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << "param,algorithm,revenue,acceptance,admitted,availability\n";
    out.precision(17);
    for (const GoldenRow& row : rows) {
        out << row.param << ',' << row.algorithm << ',' << row.revenue << ','
            << row.acceptance << ',' << row.admitted << ',' << row.availability << '\n';
    }
}

std::map<std::string, GoldenRow> load_golden(const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in) << "missing golden file " << path
                    << " — regenerate with VNFR_UPDATE_GOLDENS=1";
    std::map<std::string, GoldenRow> rows;
    std::string line;
    std::getline(in, line);  // header
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        std::istringstream fields(line);
        GoldenRow row;
        std::string cell;
        std::getline(fields, row.param, ',');
        std::getline(fields, row.algorithm, ',');
        std::getline(fields, cell, ',');
        row.revenue = std::stod(cell);
        std::getline(fields, cell, ',');
        row.acceptance = std::stod(cell);
        std::getline(fields, cell, ',');
        row.admitted = std::stod(cell);
        std::getline(fields, cell, ',');
        row.availability = std::stod(cell);
        rows[row_key(row)] = row;
    }
    return rows;
}

void expect_close(double got, double want, const std::string& what) {
    EXPECT_LE(std::abs(got - want), kRelTol * std::max(1.0, std::abs(want))) << what;
}

void check_against_golden(const std::string& name, const std::vector<GoldenRow>& rows) {
    const std::string path = std::string(VNFR_GOLDEN_DIR) + "/" + name;
    if (std::getenv("VNFR_UPDATE_GOLDENS") != nullptr) {
        write_golden(path, rows);
        GTEST_SKIP() << "regenerated " << path;
    }
    const std::map<std::string, GoldenRow> want = load_golden(path);
    ASSERT_EQ(rows.size(), want.size()) << "row count drifted for " << name;
    for (const GoldenRow& got : rows) {
        const auto it = want.find(row_key(got));
        ASSERT_NE(it, want.end()) << "unexpected row " << row_key(got) << " in " << name;
        expect_close(got.revenue, it->second.revenue, row_key(got) + " revenue");
        expect_close(got.acceptance, it->second.acceptance, row_key(got) + " acceptance");
        expect_close(got.admitted, it->second.admitted, row_key(got) + " admitted");
        expect_close(got.availability, it->second.availability,
                     row_key(got) + " availability");
    }
}

TEST(GoldenRegression, Fig1aSmallTrendMatchesBaseline) {
    check_against_golden("fig1a_small.csv", fig1a_small_rows());
}

TEST(GoldenRegression, Fig2bSmallTrendMatchesBaseline) {
    check_against_golden("fig2b_small.csv", fig2b_small_rows());
}

}  // namespace
}  // namespace vnfr::sim
