
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_common_math.cpp" "tests/CMakeFiles/test_common.dir/test_common_math.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/test_common_math.cpp.o.d"
  "/root/repo/tests/test_common_misc.cpp" "tests/CMakeFiles/test_common.dir/test_common_misc.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/test_common_misc.cpp.o.d"
  "/root/repo/tests/test_common_rng.cpp" "tests/CMakeFiles/test_common.dir/test_common_rng.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/test_common_rng.cpp.o.d"
  "/root/repo/tests/test_common_stats.cpp" "tests/CMakeFiles/test_common.dir/test_common_stats.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/test_common_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vnfr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vnfr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sfc/CMakeFiles/vnfr_sfc.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/vnfr_report.dir/DependInfo.cmake"
  "/root/repo/build/src/edge/CMakeFiles/vnfr_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vnfr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vnfr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/vnf/CMakeFiles/vnfr_vnf.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/vnfr_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vnfr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
