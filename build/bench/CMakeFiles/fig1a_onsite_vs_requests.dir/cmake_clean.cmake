file(REMOVE_RECURSE
  "CMakeFiles/fig1a_onsite_vs_requests.dir/fig1a_onsite_vs_requests.cpp.o"
  "CMakeFiles/fig1a_onsite_vs_requests.dir/fig1a_onsite_vs_requests.cpp.o.d"
  "fig1a_onsite_vs_requests"
  "fig1a_onsite_vs_requests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1a_onsite_vs_requests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
