// Deterministic random number generation.
//
// Experiments must be bit-reproducible across platforms and standard
// libraries, so we implement both the generator (xoshiro256**) and every
// distribution ourselves instead of relying on std::<...>_distribution,
// whose outputs are implementation-defined.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace vnfr::common {

/// xoshiro256** PRNG seeded through SplitMix64, as recommended by the
/// xoshiro authors. Satisfies UniformRandomBitGenerator.
class Rng {
  public:
    using result_type = std::uint64_t;

    /// Seeds the four lanes of state from `seed` via SplitMix64.
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /// Next raw 64-bit output.
    std::uint64_t operator()();

    /// Uniform double in [0, 1) with 53 bits of precision.
    double uniform01();

    /// Uniform double in [lo, hi). Precondition: lo <= hi.
    double uniform(double lo, double hi);

    /// Uniform integer in the inclusive range [lo, hi] without modulo bias.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Bernoulli trial with success probability p in [0, 1].
    bool bernoulli(double p);

    /// Exponential variate with rate lambda > 0.
    double exponential(double lambda);

    /// Bounded Pareto variate on [lo, hi] with shape alpha > 0. Heavy-tailed
    /// durations (Google-cluster-like workloads) are drawn from this.
    double bounded_pareto(double alpha, double lo, double hi);

    /// Poisson variate with mean in (0, ~700); inversion by sequential search.
    int poisson(double mean);

    /// Normal variate via Marsaglia polar method.
    double normal(double mean, double stddev);

    /// Fisher-Yates shuffle of `items`.
    template <typename T>
    void shuffle(std::span<T> items) {
        for (std::size_t i = items.size(); i > 1; --i) {
            const auto j =
                static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
            using std::swap;
            swap(items[i - 1], items[j]);
        }
    }

    /// Sample k distinct indices from [0, n) in selection order.
    std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

    /// Derive an independent child generator; `stream` distinguishes children
    /// seeded from the same parent state.
    Rng split(std::uint64_t stream);

  private:
    std::uint64_t state_[4];
    double cached_normal_{0};
    bool has_cached_normal_{false};
};

/// Counter-based stream seeding for parallel experiments: a stateless hash
/// of (master_seed, stream), so replication `stream` draws the same random
/// sequence no matter which thread runs it, in what order, or how many
/// replications run beside it. This — not splitting a shared generator —
/// is what makes the experiment engine thread-count-invariant.
///
/// The hash finalizes two rounds of SplitMix64 over both inputs; distinct
/// (master_seed, stream) pairs map to distinct-looking seeds, and
/// stream_seed(s, k) != s + k, so streams never collide with the legacy
/// additive seeding scheme by construction of use.
std::uint64_t stream_seed(std::uint64_t master_seed, std::uint64_t stream);

/// Rng seeded with stream_seed(master_seed, stream).
Rng stream_rng(std::uint64_t master_seed, std::uint64_t stream);

}  // namespace vnfr::common
