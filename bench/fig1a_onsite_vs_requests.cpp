// Figure 1(a): revenue of the on-site algorithms vs the number of requests.
//
// Series: Algorithm 1 (capacity-checked, as evaluated in the paper via the
// scaling approach), the reliability-greedy baseline, and the offline LP
// bound standing in for the paper's CPLEX optimum (a true upper bound).
// Expected shape: near-optimal for small n; Algorithm 1 pulls ahead of
// greedy as the network saturates (paper: ~31.8% at n = 800).
#include "bench_common.hpp"

using namespace vnfr;

int main() {
    const std::vector<std::size_t> sweep = bench::quick_mode()
                                               ? std::vector<std::size_t>{100, 300}
                                               : std::vector<std::size_t>{100, 200, 300, 400,
                                                                          500, 600, 700, 800};
    const std::vector<sim::Algorithm> algorithms{sim::Algorithm::kOnsitePrimalDual,
                                                 sim::Algorithm::kOnsiteGreedy};

    bench::print_thread_note();
    std::vector<bench::SeriesRow> rows;
    for (const std::size_t n : sweep) {
        sim::ExperimentConfig cfg;
        cfg.algorithms = algorithms;
        cfg.seeds = bench::quick_mode() ? 2 : 5;
        cfg.base_seed = bench::scenario_seed("fig1a", n);
        cfg.compute_offline = true;
        cfg.offline_scheme = core::Scheme::kOnsite;
        cfg.offline.run_ilp = false;  // LP relaxation bound (upper bound on OPT)
        rows.push_back({static_cast<double>(n),
                        sim::run_experiment(bench::make_factory(bench::paper_environment(n)),
                                            cfg)});
    }
    bench::print_series("Figure 1(a): on-site scheme, revenue vs number of requests",
                        "requests", algorithms, rows, /*with_offline_bound=*/true);
    bench::print_final_gap(rows);
    return 0;
}
